#!/usr/bin/env python3
"""Coverage guard for ppsim-bench-v1 files (docs/OBSERVABILITY.md).

Compares a freshly emitted bench file against the committed baseline by
*names only* — ns_per_op / rss / wall values are machine-dependent and are
never compared. Two modes:

  default   every benchmark named in the baseline must be present in the
            current run: coverage must never silently shrink. Used by the
            BENCH_micro guard, where CI re-runs the whole suite.

  --subset  every benchmark named in the current run must be present in the
            baseline: the run is allowed to cover less (a smoke re-running
            one sweep point), but must not produce rows the committed
            trajectory does not track. Used by the BENCH_scale smoke.

--min-baseline-rows N additionally fails if the baseline itself holds fewer
than N rows — pinning, e.g., that BENCH_scale.json keeps >= 3 sweep points.

Exit status: 0 clean, 1 guard violation, 2 usage/file errors.
"""

import argparse
import json
import sys


def load(path):
    """Returns (schema, set-of-names) for one ppsim-bench-v1 NDJSON file."""
    schema = None
    names = set()
    try:
        with open(path) as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as e:
                    raise SystemExit(f"error: {path}:{lineno}: not JSON: {e}")
                if "bench_schema" in row:
                    schema = row["bench_schema"]
                elif "name" in row:
                    names.add(row["name"])
    except OSError as e:
        raise SystemExit(f"error: cannot read {path}: {e}")
    return schema, names


def main():
    parser = argparse.ArgumentParser(
        description="ppsim-bench-v1 coverage guard (names only, "
        "values are machine-dependent)")
    parser.add_argument("--baseline", required=True,
                        help="committed trajectory file, e.g. "
                        "bench/BENCH_micro.json")
    parser.add_argument("--current", required=True,
                        help="freshly emitted bench file")
    parser.add_argument("--subset", action="store_true",
                        help="require current ⊆ baseline instead of "
                        "baseline ⊆ current")
    parser.add_argument("--min-baseline-rows", type=int, default=0,
                        metavar="N",
                        help="fail if the baseline holds fewer than N rows")
    args = parser.parse_args()

    base_schema, baseline = load(args.baseline)
    cur_schema, current = load(args.current)
    for path, schema in ((args.baseline, base_schema),
                         (args.current, cur_schema)):
        if schema != "ppsim-bench-v1":
            raise SystemExit(
                f"error: {path}: bench_schema is {schema!r}, "
                "expected 'ppsim-bench-v1'")

    print(f"baseline={len(baseline)} rows ({args.baseline}), "
          f"current={len(current)} rows ({args.current})")

    ok = True
    if len(baseline) < args.min_baseline_rows:
        print(f"FAIL: baseline holds {len(baseline)} rows, "
              f"needs >= {args.min_baseline_rows}")
        ok = False
    if args.subset:
        unknown = sorted(current - baseline)
        if unknown:
            print("FAIL: current rows missing from the committed baseline "
                  f"(extend it deliberately): {unknown}")
            ok = False
    else:
        missing = sorted(baseline - current)
        if missing:
            print(f"FAIL: benchmarks missing vs baseline: {missing}")
            ok = False
    if ok:
        print("coverage ok")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
