#!/usr/bin/env python3
"""Coverage guard for ppsim-bench-v1 files (docs/OBSERVABILITY.md).

Compares a freshly emitted bench file against the committed baseline by
*names* — ns_per_op / rss / wall values are machine-dependent and are
never compared exactly. Two coverage modes:

  default   every benchmark named in the baseline must be present in the
            current run: coverage must never silently shrink. Used by the
            BENCH_micro guard, where CI re-runs the whole suite.

  --subset  every benchmark named in the current run must be present in the
            baseline: the run is allowed to cover less (a smoke re-running
            one sweep point), but must not produce rows the committed
            trajectory does not track. Used by the BENCH_scale smoke.

--min-baseline-rows N additionally fails if the baseline itself holds fewer
than N rows — pinning, e.g., that BENCH_scale.json keeps >= 3 sweep points.

--max-regress-pct X adds a loose per-row value check on top of coverage:
for every benchmark present in both files with a positive ns_per_op on both
sides, fail if the current ns/op exceeds baseline by more than X percent.
Absolute values stay machine-dependent, so X must be generous (CI uses
several hundred percent — the guard exists to catch order-of-magnitude
cliffs, not jitter). Rows missing ns_per_op on either side are skipped.

Exit status: 0 clean, 1 guard violation, 2 usage/file errors.
"""

import argparse
import json
import sys


def load(path):
    """Returns (schema, {name: ns_per_op-or-None}) for one ppsim-bench-v1
    NDJSON file."""
    schema = None
    rows = {}
    try:
        with open(path) as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as e:
                    raise SystemExit(f"error: {path}:{lineno}: not JSON: {e}")
                if "bench_schema" in row:
                    schema = row["bench_schema"]
                elif "name" in row:
                    ns = row.get("ns_per_op")
                    rows[row["name"]] = ns if isinstance(ns, (int, float)) \
                        else None
    except OSError as e:
        raise SystemExit(f"error: cannot read {path}: {e}")
    return schema, rows


def main():
    parser = argparse.ArgumentParser(
        description="ppsim-bench-v1 coverage guard (names always; values "
        "only via the loose --max-regress-pct threshold)")
    parser.add_argument("--baseline", required=True,
                        help="committed trajectory file, e.g. "
                        "bench/BENCH_micro.json")
    parser.add_argument("--current", required=True,
                        help="freshly emitted bench file")
    parser.add_argument("--subset", action="store_true",
                        help="require current ⊆ baseline instead of "
                        "baseline ⊆ current")
    parser.add_argument("--min-baseline-rows", type=int, default=0,
                        metavar="N",
                        help="fail if the baseline holds fewer than N rows")
    parser.add_argument("--max-regress-pct", type=float, default=0,
                        metavar="X",
                        help="fail if any shared benchmark's ns_per_op "
                        "worsens by more than X%% vs baseline (0 disables)")
    args = parser.parse_args()

    base_schema, baseline = load(args.baseline)
    cur_schema, current = load(args.current)
    for path, schema in ((args.baseline, base_schema),
                         (args.current, cur_schema)):
        if schema != "ppsim-bench-v1":
            raise SystemExit(
                f"error: {path}: bench_schema is {schema!r}, "
                "expected 'ppsim-bench-v1'")

    print(f"baseline={len(baseline)} rows ({args.baseline}), "
          f"current={len(current)} rows ({args.current})")

    ok = True
    if len(baseline) < args.min_baseline_rows:
        print(f"FAIL: baseline holds {len(baseline)} rows, "
              f"needs >= {args.min_baseline_rows}")
        ok = False
    if args.subset:
        unknown = sorted(set(current) - set(baseline))
        if unknown:
            print("FAIL: current rows missing from the committed baseline "
                  f"(extend it deliberately): {unknown}")
            ok = False
    else:
        missing = sorted(set(baseline) - set(current))
        if missing:
            print(f"FAIL: benchmarks missing vs baseline: {missing}")
            ok = False
    if args.max_regress_pct > 0:
        checked = 0
        for name in sorted(set(baseline) & set(current)):
            base_ns, cur_ns = baseline[name], current[name]
            if not base_ns or not cur_ns or base_ns <= 0 or cur_ns <= 0:
                continue
            checked += 1
            regress_pct = (cur_ns / base_ns - 1.0) * 100.0
            if regress_pct > args.max_regress_pct:
                print(f"FAIL: {name}: ns_per_op {base_ns:g} -> {cur_ns:g} "
                      f"(+{regress_pct:.0f}%, limit "
                      f"+{args.max_regress_pct:g}%)")
                ok = False
        print(f"regression check: {checked} shared rows vs "
              f"+{args.max_regress_pct:g}% limit")
    if ok:
        print("coverage ok")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
