// ppsim-node: one real-wire deployment node (docs/WIRE.md).
//
// Runs an unmodified proto entity — hub (bootstrap + tracker), source, or
// peer — over wire::UdpTransport on real UDP sockets, driven by the wall
// clock. A loopback deployment is one hub, one source and N peers on
// 127.0.0.0/8 sharing a port; tools/wire_smoke.py launches exactly that.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "wire/node.h"
#include "wire/telemetry.h"

namespace {

// Signal flag: handlers only set it; the node's run loop polls it between
// events, so shutdown always runs the full flush path in run_node().
volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

ppsim::net::IpAddress parse_ip(const char* flag, const std::string& value) {
  const auto ip = ppsim::net::IpAddress::parse(value);
  if (!ip.has_value()) {
    std::fprintf(stderr, "ppsim-node: %s: bad IPv4 address '%s'\n", flag,
                 value.c_str());
    std::exit(2);
  }
  return *ip;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: ppsim-node --role=hub|source|peer --ip=A.B.C.D --port=P\n"
      "  [--bootstrap=IP] [--tracker=IP] [--source=IP] [--epoch=N]\n"
      "  [--channel=N] [--bitrate-bps=R] [--duration-s=S] [--seed=N]\n"
      "  [--metrics-out=F] [--samples-out=F] [--trace-out=F]\n"
      "  [--sample-period-s=S] [--telemetry-to=IP:PORT]\n"
      "  [--telemetry-period-s=S]\n"
      "Addresses must be loopback (127.x/16 encodes the ISP; docs/WIRE.md).\n");
}

}  // namespace

int main(int argc, char** argv) {
  using ppsim::wire::NodeConfig;
  using ppsim::wire::NodeRole;

  NodeConfig config;
  config.channel.id = 1;
  config.channel.name = "wire";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--role") {
      if (value == "hub") config.role = NodeRole::kHub;
      else if (value == "source") config.role = NodeRole::kSource;
      else if (value == "peer") config.role = NodeRole::kPeer;
      else { usage(); return 2; }
    } else if (key == "--ip") {
      config.ip = parse_ip("--ip", value);
    } else if (key == "--bootstrap") {
      config.bootstrap = parse_ip("--bootstrap", value);
    } else if (key == "--tracker") {
      config.tracker = parse_ip("--tracker", value);
    } else if (key == "--source") {
      config.source = parse_ip("--source", value);
    } else if (key == "--port") {
      config.port = static_cast<std::uint16_t>(std::stoul(value));
    } else if (key == "--epoch") {
      config.epoch = static_cast<std::uint16_t>(std::stoul(value));
    } else if (key == "--channel") {
      config.channel.id = static_cast<std::uint32_t>(std::stoul(value));
    } else if (key == "--bitrate-bps") {
      config.channel.bitrate_bps = std::stod(value);
    } else if (key == "--duration-s") {
      config.duration = ppsim::sim::Time::from_seconds(std::stod(value));
    } else if (key == "--seed") {
      config.seed = std::stoull(value);
    } else if (key == "--metrics-out") {
      config.metrics_out = value;
    } else if (key == "--samples-out") {
      config.samples_out = value;
    } else if (key == "--trace-out") {
      config.trace_out = value;
    } else if (key == "--sample-period-s") {
      config.sample_period = ppsim::sim::Time::from_seconds(std::stod(value));
    } else if (key == "--telemetry-to") {
      ppsim::net::IpAddress collect_ip;
      std::uint16_t collect_port = 0;
      if (!ppsim::wire::parse_host_port(value, &collect_ip, &collect_port)) {
        std::fprintf(stderr, "ppsim-node: --telemetry-to: bad IP:PORT '%s'\n",
                     value.c_str());
        return 2;
      }
      config.telemetry_to = value;
    } else if (key == "--telemetry-period-s") {
      config.telemetry_period =
          ppsim::sim::Time::from_seconds(std::stod(value));
    } else if (key == "--help" || key == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "ppsim-node: unknown flag '%s'\n", key.c_str());
      usage();
      return 2;
    }
  }
  if (config.port == 0 || config.ip.is_unspecified()) {
    usage();
    return 2;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  const ppsim::wire::NodeReport report =
      ppsim::wire::run_node(config, [] { return g_stop != 0; });

  // One greppable summary line per node; wire_smoke.py asserts on these
  // fields. Keys mirror the sim CLI's report vocabulary.
  const char* role = config.role == NodeRole::kHub      ? "hub"
                     : config.role == NodeRole::kSource ? "source"
                                                        : "peer";
  std::printf(
      "ppsim-node role=%s ip=%s sent=%llu delivered=%llu "
      "uplink_drops=%llu downlink_drops=%llu dead_drops=%llu "
      "rx_errors=%llu telemetry_seq=%llu telemetry_datagrams=%llu\n",
      role, config.ip.to_string().c_str(),
      static_cast<unsigned long long>(report.transport.packets_sent),
      static_cast<unsigned long long>(report.transport.packets_delivered),
      static_cast<unsigned long long>(report.transport.uplink_drops),
      static_cast<unsigned long long>(report.transport.downlink_drops),
      static_cast<unsigned long long>(report.transport.dead_destination_drops),
      static_cast<unsigned long long>(report.rx_errors.total()),
      static_cast<unsigned long long>(report.telemetry_seq),
      static_cast<unsigned long long>(report.telemetry_datagrams));
  if (config.role == NodeRole::kPeer) {
    std::printf(
        "ppsim-node peer-report chunks_played=%llu chunks_missed=%llu "
        "continuity=%.4f data_replies=%llu locality=%.4f samples=%llu\n",
        static_cast<unsigned long long>(report.counters.chunks_played),
        static_cast<unsigned long long>(report.counters.chunks_missed),
        report.continuity,
        static_cast<unsigned long long>(report.counters.data_replies_received),
        report.delivered_locality,
        static_cast<unsigned long long>(report.samples_recorded));
  } else if (config.role == NodeRole::kSource) {
    std::printf(
        "ppsim-node source-report chunks_produced=%llu requests_served=%llu\n",
        static_cast<unsigned long long>(report.chunks_produced),
        static_cast<unsigned long long>(report.requests_served));
  } else {
    std::printf(
        "ppsim-node hub-report joins_served=%llu queries_served=%llu\n",
        static_cast<unsigned long long>(report.joins_served),
        static_cast<unsigned long long>(report.queries_served));
  }
  return 0;
}
