// Offline trace analysis: re-runs the paper's analysis pipeline over an
// archived probe capture (written by `ppsim --dump-trace` or
// capture::write_trace_file) without re-running any simulation — the
// simulated equivalent of re-processing the paper's saved Wireshark
// captures.
//
//   ppsim-analyze <trace-file> [--probe-ip A.B.C.D] [--section NAME ...]
//   ppsim-analyze --samples <samples.ndjson>
//   ppsim-analyze --samples <samples.ndjson> --fault-plan <plan.txt>
//   ppsim-analyze --health <trace.ndjson>
//   ppsim-analyze --postmortem <bundle.ndjson>
//   ppsim-analyze --spans <spans.ndjson>
//   ppsim-analyze --fleet --node IP=metrics[,samples] ...
//
// The probe IP is inferred from the records' local address when not given.
// Sections: returned, sources, data, response, contrib, rtt, all.
// --samples switches to time-series mode: it reads the NDJSON written by
// `ppsim --samples-out` and prints the Figure-6-style locality series, no
// simulation or packet trace involved. Adding --fault-plan also prints the
// per-window resilience timeline (continuity dip, time-to-recover,
// intra-ISP-share trajectory) for the plan the samples were recorded under
// (docs/FAULTS.md).
// --health reads a protocol-event trace (`ppsim --trace-out`) and prints
// the per-rule watchdog timeline — trip/clear sim-times and dip depth — in
// the same table style as the fault timeline, so watchdog runs and
// fault-plan runs read side by side (docs/OBSERVABILITY.md).
// --postmortem summarizes a flight-recorder bundle written under
// `ppsim --postmortem-dir`: the trigger, buffered event counts per event
// name, and the surrounding sampler window.
// --spans reads a causal-tracing artifact (`ppsim --spans-out`) and renders
// the referral-lineage table, the same-ISP referral-share series, and the
// startup critical-path percentiles from the recorded rows alone — no
// simulation involved (docs/OBSERVABILITY.md, "Causal tracing").
// --fleet folds per-node wire sink files (--metrics-out / --samples-out of
// each ppsim-node) into the fleet view: per-node table, merged counters and
// the global traffic matrix — the offline twin of ppsim-collect, sharing
// its fold code so both produce byte-identical artifacts.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include <memory>

#include "capture/analyzer.h"
#include "capture/trace_io.h"
#include "core/report.h"
#include "faults/plan.h"
#include "faults/resilience.h"
#include "net/asn_db.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/span_tracker.h"
#include "obs/telemetry.h"
#include "wire/collector.h"

namespace {

int analyze_samples(const std::string& path, const std::string& plan_path) {
  using namespace ppsim;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  std::size_t dropped = 0;
  std::string parse_error;
  const auto samples = obs::read_samples_ndjson(in, &dropped, &parse_error);
  if (samples.empty()) {
    if (!parse_error.empty())
      std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                   parse_error.c_str());
    else
      std::fprintf(stderr, "error: %s holds no valid samples\n", path.c_str());
    return 1;
  }
  std::printf("samples: %s (%zu rows", path.c_str(), samples.size());
  if (dropped > 0) std::printf(", %zu malformed dropped", dropped);
  std::printf(")\n\n");
  core::print_locality_timeseries(std::cout, samples);
  if (!plan_path.empty()) {
    faults::PlanParseResult plan = faults::load_fault_plan(plan_path);
    if (!plan.ok()) {
      std::fprintf(stderr, "error: fault plan %s: %s\n", plan_path.c_str(),
                   plan.error.c_str());
      return 1;
    }
    std::printf("\n");
    const auto rows = faults::analyze_resilience(plan.plan, samples);
    faults::print_fault_timeline(std::cout, rows);
  }
  return 0;
}

int analyze_health(const std::string& path) {
  using namespace ppsim;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  std::size_t dropped = 0;
  const auto transitions = obs::read_health_events_ndjson(in, &dropped);
  if (transitions.empty()) {
    std::fprintf(stderr, "error: %s holds no health events\n", path.c_str());
    return 1;
  }
  std::printf("health events: %s (%zu transitions", path.c_str(),
              transitions.size());
  if (dropped > 0) std::printf(", %zu malformed dropped", dropped);
  std::printf(")\n\n");
  obs::print_health_timeline(std::cout,
                             obs::analyze_health_timeline(transitions));
  return 0;
}

// Pulls the string value of "key" out of one NDJSON line, or "" when absent.
// Same tolerant scanning idiom as obs::read_samples_ndjson.
std::string find_json_string(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return "";
  const auto start = pos + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return "";
  return line.substr(start, end - start);
}

int analyze_postmortem(const std::string& path) {
  using namespace ppsim;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  std::string line;
  if (!std::getline(in, line) ||
      line.find("\"postmortem\"") == std::string::npos) {
    std::fprintf(stderr, "error: %s is not a post-mortem bundle\n",
                 path.c_str());
    return 1;
  }
  const std::string reason = find_json_string(line, "postmortem");
  std::string trigger_t = "?";
  if (const auto pos = line.find("\"t\":"); pos != std::string::npos) {
    const auto start = pos + 4;
    const auto end = line.find_first_of(",}", start);
    if (end != std::string::npos) trigger_t = line.substr(start, end - start);
  }
  std::printf("post-mortem: %s\n", path.c_str());
  std::printf("  trigger: %s at t=%ss\n", reason.c_str(), trigger_t.c_str());

  // Walk the section markers; count rows and tally event names. Truncated
  // marker rows (capped rings declare {"truncated":name,"kept":K,
  // "dropped":D} at the head of the events section) are reported
  // separately, never tallied as events.
  std::string section;
  std::map<std::string, std::uint64_t> events_by_name;
  std::map<std::string, std::uint64_t> dropped_by_name;
  std::uint64_t samples = 0, metrics = 0;
  while (std::getline(in, line)) {
    const std::string marker = find_json_string(line, "section");
    if (!marker.empty()) {
      section = marker;
      continue;
    }
    if (section == "events") {
      const std::string capped = find_json_string(line, "truncated");
      if (!capped.empty()) {
        double dropped_n = 0;
        if (const auto pos = line.find("\"dropped\":");
            pos != std::string::npos)
          dropped_n = std::strtod(line.c_str() + pos + 10, nullptr);
        dropped_by_name[capped] = static_cast<std::uint64_t>(dropped_n);
        continue;
      }
      ++events_by_name[find_json_string(line, "ev")];
    } else if (section == "samples") {
      ++samples;
    } else if (section == "metrics") {
      ++metrics;
    }
  }
  std::uint64_t events = 0;
  for (const auto& [name, n] : events_by_name) events += n;
  std::printf("  buffered events: %llu\n",
              static_cast<unsigned long long>(events));
  for (const auto& [name, n] : events_by_name) {
    std::printf("    %-24s %8llu",
                name.empty() ? "(unnamed)" : name.c_str(),
                static_cast<unsigned long long>(n));
    if (const auto it = dropped_by_name.find(name);
        it != dropped_by_name.end())
      std::printf("  (+%llu truncated)",
                  static_cast<unsigned long long>(it->second));
    std::printf("\n");
  }
  std::printf("  sampler window rows: %llu\n",
              static_cast<unsigned long long>(samples));
  std::printf("  metric rows: %llu\n",
              static_cast<unsigned long long>(metrics));
  return 0;
}

int analyze_spans(const std::string& path) {
  using namespace ppsim;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  obs::SpanFileData data;
  std::string error;
  if (!obs::read_spans_ndjson(in, &data, &error)) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  std::printf("spans: %s (%llu spans, %zu referrals, %zu critical paths)\n\n",
              path.c_str(),
              static_cast<unsigned long long>(data.header_spans),
              data.referrals.size(), data.paths.size());
  // The share series is recomputed from the referral rows (the file's
  // share rows are redundant), using the writer's default bucket width.
  core::print_referral_lineage(
      std::cout, obs::summarize_lineage(data.referrals),
      obs::referral_share_series(data.referrals, sim::Time::seconds(60)));
  core::print_critical_paths(std::cout, data.paths);
  return 0;
}

// --fleet: offline fold of per-node sink files through the exact code path
// ppsim-collect uses live (wire::fold_fleet_metrics / fold_fleet_matrix),
// so the artifacts the two produce over the same nodes are byte-identical —
// the self-check the collector smoke pins (docs/OBSERVABILITY.md, "Fleet
// telemetry").
int analyze_fleet(const std::vector<std::string>& node_specs,
                  const std::string& metrics_out,
                  const std::string& matrix_out) {
  using namespace ppsim;
  std::map<net::IpAddress, std::unique_ptr<obs::MetricsRegistry>> regs;
  std::map<net::IpAddress, obs::TrafficSample> last_samples;
  std::map<net::IpAddress, std::size_t> sample_counts;

  for (const auto& spec : node_specs) {
    const auto eq = spec.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr,
                   "error: --node wants IP=metrics.ndjson[,samples.ndjson], "
                   "got '%s'\n",
                   spec.c_str());
      return 2;
    }
    const auto ip = net::IpAddress::parse(spec.substr(0, eq));
    if (!ip.has_value()) {
      std::fprintf(stderr, "error: --node: bad IP in '%s'\n", spec.c_str());
      return 2;
    }
    const std::string paths = spec.substr(eq + 1);
    const auto comma = paths.find(',');
    const std::string metrics_path = paths.substr(0, comma);
    const std::string samples_path =
        comma == std::string::npos ? "" : paths.substr(comma + 1);

    if (!metrics_path.empty()) {
      std::ifstream in(metrics_path);
      if (!in) {
        std::fprintf(stderr, "warning: %s: cannot read, node %s skipped\n",
                     metrics_path.c_str(), spec.substr(0, eq).c_str());
        continue;
      }
      auto reg = std::make_unique<obs::MetricsRegistry>();
      std::size_t skipped = 0;
      obs::read_metrics_ndjson(in, reg.get(), &skipped);
      if (skipped > 0)
        std::fprintf(stderr, "warning: %s: %zu rows skipped\n",
                     metrics_path.c_str(), skipped);
      regs.emplace(*ip, std::move(reg));
    }
    if (!samples_path.empty()) {
      std::ifstream in(samples_path);
      if (in) {
        const auto samples = obs::read_samples_ndjson(in);
        if (!samples.empty()) {
          last_samples.emplace(*ip, samples.back());
          sample_counts.emplace(*ip, samples.size());
        }
      }
    }
  }
  if (regs.empty() && last_samples.empty()) {
    std::fprintf(stderr, "error: --fleet folded zero nodes\n");
    return 1;
  }

  std::map<net::IpAddress, const obs::MetricsRegistry*> reg_view;
  for (const auto& [ip, reg] : regs) reg_view.emplace(ip, reg.get());
  std::map<net::IpAddress, const obs::TrafficSample*> sample_view;
  for (const auto& [ip, s] : last_samples) sample_view.emplace(ip, &s);

  obs::MetricsRegistry merged;
  wire::fold_fleet_metrics(reg_view, &merged);
  obs::TrafficSample fleet;
  const bool have_matrix = wire::fold_fleet_matrix(sample_view, &fleet);

  std::printf("fleet: %zu nodes (%zu with metrics, %zu with samples)\n\n",
              std::max(regs.size(), last_samples.size()), regs.size(),
              last_samples.size());
  std::printf("  %-16s %12s %10s %10s %6s %8s\n", "node", "last_t",
              "intra_isp", "contin", "alive", "samples");
  for (const auto& [ip, s] : last_samples) {
    std::printf("  %-16s %12.6f %10.3f %10.3f %6llu %8zu\n",
                ip.to_string().c_str(), s.t.as_seconds(),
                s.same_isp_share_cum, s.avg_continuity,
                static_cast<unsigned long long>(s.alive_peers),
                sample_counts[ip]);
  }
  if (have_matrix) {
    std::printf(
        "\nfleet totals: t=%.6f intra_isp_share=%.3f interval_share=%.3f "
        "alive=%llu continuity=%.3f bytes=%llu\n",
        fleet.t.as_seconds(), fleet.same_isp_share_cum,
        fleet.same_isp_share_interval,
        static_cast<unsigned long long>(fleet.alive_peers),
        fleet.avg_continuity,
        static_cast<unsigned long long>(obs::matrix_total(fleet.bytes)));
  }
  std::printf("merged metric instances: %zu\n", merged.size());

  if (!metrics_out.empty()) {
    std::ofstream os(metrics_out);
    merged.write_ndjson(os);
  }
  if (!matrix_out.empty()) {
    std::ofstream os(matrix_out);
    if (have_matrix) obs::write_sample_ndjson(os, fleet);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ppsim;

  std::string path;
  std::string probe_ip_text;
  std::string samples_path;
  std::string fault_plan_path;
  std::string health_path;
  std::string postmortem_path;
  std::string spans_path;
  bool fleet = false;
  std::vector<std::string> fleet_nodes;
  std::string fleet_metrics_out;
  std::string fleet_matrix_out;
  std::vector<std::string> sections;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--probe-ip" && i + 1 < argc) {
      probe_ip_text = argv[++i];
    } else if (arg == "--section" && i + 1 < argc) {
      sections.push_back(argv[++i]);
    } else if (arg == "--samples" && i + 1 < argc) {
      samples_path = argv[++i];
    } else if (arg == "--fault-plan" && i + 1 < argc) {
      fault_plan_path = argv[++i];
    } else if (arg == "--health" && i + 1 < argc) {
      health_path = argv[++i];
    } else if (arg == "--postmortem" && i + 1 < argc) {
      postmortem_path = argv[++i];
    } else if (arg == "--spans" && i + 1 < argc) {
      spans_path = argv[++i];
    } else if (arg == "--fleet") {
      fleet = true;
    } else if (arg == "--node" && i + 1 < argc) {
      fleet_nodes.push_back(argv[++i]);
    } else if (arg == "--fleet-metrics-out" && i + 1 < argc) {
      fleet_metrics_out = argv[++i];
    } else if (arg == "--fleet-matrix-out" && i + 1 < argc) {
      fleet_matrix_out = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: ppsim-analyze <trace-file> [--probe-ip A.B.C.D] "
          "[--section returned|sources|data|response|contrib|rtt|all ...]\n"
          "       ppsim-analyze --samples <samples.ndjson> "
          "[--fault-plan plan.txt]\n"
          "       ppsim-analyze --health <trace.ndjson>\n"
          "       ppsim-analyze --postmortem <bundle.ndjson>\n"
          "       ppsim-analyze --spans <spans.ndjson>\n"
          "       ppsim-analyze --fleet --node IP=metrics[,samples] ...\n"
          "         [--fleet-metrics-out F] [--fleet-matrix-out F]\n");
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    }
  }
  if (!fault_plan_path.empty() && samples_path.empty()) {
    std::fprintf(stderr, "error: --fault-plan requires --samples\n");
    return 2;
  }
  if (fleet) {
    if (fleet_nodes.empty()) {
      std::fprintf(stderr, "error: --fleet requires at least one --node\n");
      return 2;
    }
    return analyze_fleet(fleet_nodes, fleet_metrics_out, fleet_matrix_out);
  }
  if (!health_path.empty()) return analyze_health(health_path);
  if (!postmortem_path.empty()) return analyze_postmortem(postmortem_path);
  if (!spans_path.empty()) return analyze_spans(spans_path);
  if (!samples_path.empty())
    return analyze_samples(samples_path, fault_plan_path);
  if (path.empty()) {
    std::fprintf(stderr, "error: no trace file given (see --help)\n");
    return 2;
  }
  if (sections.empty()) sections = {"data"};

  auto trace = capture::read_trace_file(path);
  if (!trace) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  if (trace->empty()) {
    std::fprintf(stderr, "error: %s holds no valid records\n", path.c_str());
    return 1;
  }

  net::IpAddress probe = trace->front().local;
  if (!probe_ip_text.empty()) {
    auto parsed = net::IpAddress::parse(probe_ip_text);
    if (!parsed) {
      std::fprintf(stderr, "error: bad --probe-ip %s\n",
                   probe_ip_text.c_str());
      return 2;
    }
    probe = *parsed;
  }

  // Attribute addresses with the standard topology's ASN database, exactly
  // as the experiments do. Tracker addresses cannot be recovered from the
  // trace alone; TrackerReply records are still classified correctly by
  // message type, so only the "_s" row split in the sources section relies
  // on this and tracker rows are labelled by replier ISP regardless.
  auto registry = net::IspRegistry::standard_topology();
  auto db = net::AsnDatabase::from_registry(registry);
  auto analysis = capture::analyze_trace(*trace, db, probe, {});

  const net::IspCategory probe_cat = db.category_or_foreign(probe);
  std::printf("trace: %s (%zu records), probe %s (%s)\n\n", path.c_str(),
              trace->size(), probe.to_string().c_str(),
              std::string(net::to_string(probe_cat)).c_str());

  auto wants = [&](const char* name) {
    for (const auto& s : sections)
      if (s == name || s == "all") return true;
    return false;
  };
  if (wants("returned")) core::print_returned_addresses(std::cout, analysis);
  if (wants("sources")) core::print_list_sources(std::cout, analysis);
  if (wants("data")) {
    core::print_data_by_isp(std::cout, analysis);
    std::cout << "locality: "
              << core::pct(analysis.byte_locality(probe_cat)) << " of bytes "
              << "from " << net::to_string(probe_cat) << " peers\n";
  }
  if (wants("response")) {
    core::print_response_times(std::cout, analysis, false);
    core::print_response_times(std::cout, analysis, true);
  }
  if (wants("contrib")) core::print_contributions(std::cout, analysis);
  if (wants("rtt")) core::print_rtt_rank(std::cout, analysis);
  return 0;
}
