// Offline trace analysis: re-runs the paper's analysis pipeline over an
// archived probe capture (written by `ppsim --dump-trace` or
// capture::write_trace_file) without re-running any simulation — the
// simulated equivalent of re-processing the paper's saved Wireshark
// captures.
//
//   ppsim-analyze <trace-file> [--probe-ip A.B.C.D] [--section NAME ...]
//   ppsim-analyze --samples <samples.ndjson>
//   ppsim-analyze --samples <samples.ndjson> --fault-plan <plan.txt>
//
// The probe IP is inferred from the records' local address when not given.
// Sections: returned, sources, data, response, contrib, rtt, all.
// --samples switches to time-series mode: it reads the NDJSON written by
// `ppsim --samples-out` and prints the Figure-6-style locality series, no
// simulation or packet trace involved. Adding --fault-plan also prints the
// per-window resilience timeline (continuity dip, time-to-recover,
// intra-ISP-share trajectory) for the plan the samples were recorded under
// (docs/FAULTS.md).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "capture/analyzer.h"
#include "capture/trace_io.h"
#include "core/report.h"
#include "faults/plan.h"
#include "faults/resilience.h"
#include "net/asn_db.h"
#include "obs/sampler.h"

namespace {

int analyze_samples(const std::string& path, const std::string& plan_path) {
  using namespace ppsim;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  std::size_t dropped = 0;
  const auto samples = obs::read_samples_ndjson(in, &dropped);
  if (samples.empty()) {
    std::fprintf(stderr, "error: %s holds no valid samples\n", path.c_str());
    return 1;
  }
  std::printf("samples: %s (%zu rows", path.c_str(), samples.size());
  if (dropped > 0) std::printf(", %zu malformed dropped", dropped);
  std::printf(")\n\n");
  core::print_locality_timeseries(std::cout, samples);
  if (!plan_path.empty()) {
    faults::PlanParseResult plan = faults::load_fault_plan(plan_path);
    if (!plan.ok()) {
      std::fprintf(stderr, "error: fault plan %s: %s\n", plan_path.c_str(),
                   plan.error.c_str());
      return 1;
    }
    std::printf("\n");
    const auto rows = faults::analyze_resilience(plan.plan, samples);
    faults::print_fault_timeline(std::cout, rows);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ppsim;

  std::string path;
  std::string probe_ip_text;
  std::string samples_path;
  std::string fault_plan_path;
  std::vector<std::string> sections;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--probe-ip" && i + 1 < argc) {
      probe_ip_text = argv[++i];
    } else if (arg == "--section" && i + 1 < argc) {
      sections.push_back(argv[++i]);
    } else if (arg == "--samples" && i + 1 < argc) {
      samples_path = argv[++i];
    } else if (arg == "--fault-plan" && i + 1 < argc) {
      fault_plan_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: ppsim-analyze <trace-file> [--probe-ip A.B.C.D] "
          "[--section returned|sources|data|response|contrib|rtt|all ...]\n"
          "       ppsim-analyze --samples <samples.ndjson> "
          "[--fault-plan plan.txt]\n");
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    }
  }
  if (!fault_plan_path.empty() && samples_path.empty()) {
    std::fprintf(stderr, "error: --fault-plan requires --samples\n");
    return 2;
  }
  if (!samples_path.empty())
    return analyze_samples(samples_path, fault_plan_path);
  if (path.empty()) {
    std::fprintf(stderr, "error: no trace file given (see --help)\n");
    return 2;
  }
  if (sections.empty()) sections = {"data"};

  auto trace = capture::read_trace_file(path);
  if (!trace) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  if (trace->empty()) {
    std::fprintf(stderr, "error: %s holds no valid records\n", path.c_str());
    return 1;
  }

  net::IpAddress probe = trace->front().local;
  if (!probe_ip_text.empty()) {
    auto parsed = net::IpAddress::parse(probe_ip_text);
    if (!parsed) {
      std::fprintf(stderr, "error: bad --probe-ip %s\n",
                   probe_ip_text.c_str());
      return 2;
    }
    probe = *parsed;
  }

  // Attribute addresses with the standard topology's ASN database, exactly
  // as the experiments do. Tracker addresses cannot be recovered from the
  // trace alone; TrackerReply records are still classified correctly by
  // message type, so only the "_s" row split in the sources section relies
  // on this and tracker rows are labelled by replier ISP regardless.
  auto registry = net::IspRegistry::standard_topology();
  auto db = net::AsnDatabase::from_registry(registry);
  auto analysis = capture::analyze_trace(*trace, db, probe, {});

  const net::IspCategory probe_cat = db.category_or_foreign(probe);
  std::printf("trace: %s (%zu records), probe %s (%s)\n\n", path.c_str(),
              trace->size(), probe.to_string().c_str(),
              std::string(net::to_string(probe_cat)).c_str());

  auto wants = [&](const char* name) {
    for (const auto& s : sections)
      if (s == name || s == "all") return true;
    return false;
  };
  if (wants("returned")) core::print_returned_addresses(std::cout, analysis);
  if (wants("sources")) core::print_list_sources(std::cout, analysis);
  if (wants("data")) {
    core::print_data_by_isp(std::cout, analysis);
    std::cout << "locality: "
              << core::pct(analysis.byte_locality(probe_cat)) << " of bytes "
              << "from " << net::to_string(probe_cat) << " peers\n";
  }
  if (wants("response")) {
    core::print_response_times(std::cout, analysis, false);
    core::print_response_times(std::cout, analysis, true);
  }
  if (wants("contrib")) core::print_contributions(std::cout, analysis);
  if (wants("rtt")) core::print_rtt_rank(std::cout, analysis);
  return 0;
}
