#!/usr/bin/env bash
# Runs clang-tidy over the ppsim sources against a compile_commands.json.
#
# Usage:
#   tools/run_tidy.sh [build-dir] [extra clang-tidy args...]
#
# The build dir defaults to the first of build-release/, build/, or any
# build-*/ containing a compile_commands.json (every CMake preset exports
# one). Exits 2 with a clear message when clang-tidy is not installed, so
# callers (and CI) can distinguish "findings" from "tool missing".
set -euo pipefail

cd "$(dirname "$0")/.."

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_tidy.sh: '$TIDY' not found; install clang-tidy or set CLANG_TIDY" >&2
  exit 2
fi

BUILD_DIR="${1:-}"
if [[ -n "$BUILD_DIR" ]]; then
  shift
else
  for candidate in build-release build build-*/; do
    if [[ -f "$candidate/compile_commands.json" ]]; then
      BUILD_DIR="$candidate"
      break
    fi
  done
fi
if [[ -z "$BUILD_DIR" || ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "run_tidy.sh: no compile_commands.json found; configure first, e.g." >&2
  echo "  cmake --preset release" >&2
  exit 2
fi

# All first-party translation units; third-party code never appears here
# because the repo vendors nothing.
mapfile -t SOURCES < <(find src tools bench examples -name '*.cc' -o -name '*.cpp' | sort)

echo "run_tidy.sh: ${#SOURCES[@]} files against $BUILD_DIR/compile_commands.json"

# clang-tidy has no built-in parallelism; fan out with xargs. Findings make
# any worker exit nonzero, which xargs propagates.
printf '%s\n' "${SOURCES[@]}" |
  xargs -P "$(nproc)" -n 4 "$TIDY" -p "$BUILD_DIR" --quiet "$@"

echo "run_tidy.sh: clean"
