#!/usr/bin/env python3
"""Loopback smoke deployment for the real-wire mode (docs/WIRE.md).

Launches one hub (bootstrap + tracker), one stream source and N peers as
separate ppsim-node processes on 127.0.0.0/8 — second octet encodes the
ISP, so peers land in different ISPs and the per-ISP sample matrix gets
off-diagonal traffic. Runs for --duration seconds, then asserts:

  * every process exits 0 and reports zero wire rx_errors;
  * the source produced chunks and served requests;
  * at least one surviving peer played chunks with continuity > 0;
  * a peer's --samples-out NDJSON parses via `ppsim-analyze --samples`;
  * (unless --no-kill) a peer SIGTERMed mid-run still exits 0 and still
    writes parseable metrics/samples NDJSON — the graceful-shutdown pin.

With --collect, a ppsim-collect process joins the deployment and every
node ships ppsim-telemetry-v1 snapshots to it; one extra peer is SIGKILLed
mid-run (when --peers >= 3) and the harness additionally asserts:

  * the collector sees every node, reports the SIGKILLed peer lost
    (event=node-lost) and the SIGTERMed peer closed (event=node-closed);
  * each closed node's collector-side last_seq equals the node's own
    reported telemetry_seq — the shutdown-ordering pin;
  * the final fleet summary carries a nonzero intra-ISP share;
  * the collector's merged-metrics and fleet-matrix artifacts are
    byte-identical to `ppsim-analyze --fleet` run offline over the closed
    nodes' sink files;
  * the live fleet samples stream parses via `ppsim-analyze --samples`.

The shared deployment port is picked automatically (--port 0, the
default): the harness reserves an OS-assigned UDP port and retries with a
fresh one (up to 3 attempts) if any node fails its bind — so parallel
smokes cannot flake on a busy machine. The collector always binds port 0
and announces the chosen port on stdout.

Exit 0 on success, 1 on any failed check, with a greppable FAIL line.

Usage:
  tools/wire_smoke.py --build-dir build [--peers 4] [--duration 30]
                      [--port 0] [--sample-period 5] [--no-kill]
                      [--collect] [--artifacts-dir DIR]
"""

import argparse
import filecmp
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time

# Peer addresses cycle through the loopback ISP blocks (127.<n>.0.0/16;
# see wire::loopback_registry): TELE, CNC, CER, OTHER_CN, FOREIGN.
HUB_BOOTSTRAP = "127.1.0.1"
HUB_TRACKER = "127.1.0.2"
SOURCE_IP = "127.1.0.3"
COLLECT_IP = "127.0.0.9"
PEER_BLOCKS = [1, 2, 3, 4, 5]

failures = []


def check(ok, what):
    tag = "ok" if ok else "FAIL"
    print(f"wire-smoke {tag}: {what}")
    if not ok:
        failures.append(what)


def parse_report(stdout):
    """Collects key=value fields from the ppsim-node summary lines."""
    fields = {}
    for line in stdout.splitlines():
        if not line.startswith("ppsim-node "):
            continue
        for token in line.split()[1:]:
            if "=" in token:
                key, _, value = token.partition("=")
                fields[key] = value
    return fields


def parse_collector_nodes(stdout):
    """Collects per-node report lines (`node=IP role=... last_seq=N`)."""
    nodes = {}
    for line in stdout.splitlines():
        if not line.startswith("node="):
            continue
        fields = {}
        for token in line.split():
            if "=" in token:
                key, _, value = token.partition("=")
                fields[key] = value
        nodes[fields["node"]] = fields
    return nodes


def ndjson_parses(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = [line for line in f if line.strip()]
        for line in lines:
            json.loads(line)
        return len(lines)
    except (OSError, json.JSONDecodeError):
        return -1


def pick_port():
    """Reserves an OS-assigned UDP port on loopback and releases it; the
    deployment then binds that port on its 127.x addresses. A lost race is
    caught by the bind-failure retry loop."""
    s = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    s.bind(("127.0.0.1", 0))
    port = s.getsockname()[1]
    s.close()
    return port


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", required=True)
    ap.add_argument("--peers", type=int, default=4)
    ap.add_argument("--duration", type=float, default=30.0)
    ap.add_argument("--port", type=int, default=0,
                    help="shared deployment UDP port (0 = pick a free one)")
    ap.add_argument("--sample-period", type=float, default=5.0)
    ap.add_argument("--no-kill", action="store_true",
                    help="skip the SIGTERM-mid-run graceful-shutdown check")
    ap.add_argument("--collect", action="store_true",
                    help="run ppsim-collect and the fleet-telemetry checks")
    ap.add_argument("--artifacts-dir", default=None,
                    help="keep NDJSON artifacts here (default: temp dir)")
    args = ap.parse_args()

    node = os.path.join(args.build_dir, "tools", "ppsim-node")
    analyze = os.path.join(args.build_dir, "tools", "ppsim-analyze")
    collect = os.path.join(args.build_dir, "tools", "ppsim-collect")
    needed = [node, analyze] + ([collect] if args.collect else [])
    for binary in needed:
        if not os.access(binary, os.X_OK):
            print(f"wire-smoke FAIL: missing binary {binary}")
            return 1

    out_dir = args.artifacts_dir or tempfile.mkdtemp(prefix="wire_smoke_")
    os.makedirs(out_dir, exist_ok=True)
    print(f"wire-smoke: artifacts in {out_dir}")

    kill_victim = None if args.no_kill or args.peers < 2 else args.peers - 1
    # The hard-loss victim only exists in collect mode: SIGKILL gives the
    # collector a node that vanishes without a closing snapshot.
    hard_victim = args.peers - 2 if args.collect and args.peers >= 3 else None

    server_duration = args.duration + 2.0

    collector = None
    telemetry_addr = None
    if args.collect:
        fleet_metrics = os.path.join(out_dir, "fleet_metrics.ndjson")
        fleet_matrix = os.path.join(out_dir, "fleet_matrix.ndjson")
        fleet_samples = os.path.join(out_dir, "fleet_samples.ndjson")
        log = open(os.path.join(out_dir, "collect.log"), "w+")
        collector = {
            "name": "collect",
            "log": log,
            "proc": subprocess.Popen(
                [collect, f"--bind={COLLECT_IP}:0",
                 "--heartbeat-timeout-s=4", "--summary-period-s=1",
                 f"--duration-s={server_duration + 20.0}",
                 f"--fleet-samples-out={fleet_samples}",
                 f"--fleet-metrics-out={fleet_metrics}",
                 f"--fleet-matrix-out={fleet_matrix}"],
                stdout=log, stderr=subprocess.STDOUT),
        }
        # The collector announces its OS-picked port before ingest starts.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and telemetry_addr is None:
            log.flush()
            with open(log.name, "r", encoding="utf-8") as f:
                for line in f:
                    if line.startswith("collect_listening="):
                        telemetry_addr = line.split("=", 1)[1].strip()
                        break
            if telemetry_addr is None:
                time.sleep(0.1)
        if telemetry_addr is None:
            print("wire-smoke FAIL: ppsim-collect never announced its port")
            collector["proc"].kill()
            return 1
        print(f"wire-smoke: collector at {telemetry_addr}")

    def spawn(name, role, ip, duration, port, extra=()):
        argv = [
            node, f"--role={role}", f"--ip={ip}", f"--port={port}",
            f"--duration-s={duration}",
            f"--sample-period-s={args.sample_period}",
            f"--bootstrap={HUB_BOOTSTRAP}", f"--tracker={HUB_TRACKER}",
            f"--source={SOURCE_IP}",
            f"--metrics-out={out_dir}/{name}_metrics.ndjson",
            f"--samples-out={out_dir}/{name}_samples.ndjson",
        ] + list(extra)
        if telemetry_addr is not None:
            argv += [f"--telemetry-to={telemetry_addr}",
                     "--telemetry-period-s=1"]
        log = open(os.path.join(out_dir, f"{name}.log"), "w+")
        proc = subprocess.Popen(argv, stdout=log, stderr=subprocess.STDOUT)
        return {"name": name, "ip": ip, "proc": proc, "log": log}

    def reap(entries):
        for entry in entries:
            entry["proc"].kill()
            entry["proc"].wait()
            entry["log"].close()

    procs = []
    peers = []
    for attempt in range(3):
        port = args.port if args.port else pick_port()
        procs = []
        peers = []
        # Servers outlive the peers slightly so departing goodbyes don't
        # land on closed sockets.
        procs.append(spawn("hub", "hub", HUB_BOOTSTRAP, server_duration,
                           port))
        time.sleep(0.3)
        if procs[0]["proc"].poll() is not None:
            print(f"wire-smoke: port {port} unusable (hub exited "
                  f"{procs[0]['proc'].returncode}), retrying")
            reap(procs)
            continue
        procs.append(spawn("source", "source", SOURCE_IP, server_duration,
                           port))
        time.sleep(0.3)
        for i in range(args.peers):
            block = PEER_BLOCKS[i % len(PEER_BLOCKS)]
            entry = spawn(f"peer{i}", "peer", f"127.{block}.0.{10 + i}",
                          args.duration, port, extra=[f"--seed={i + 1}"])
            peers.append(entry)
            procs.append(entry)
            time.sleep(0.1)
        if any(e["proc"].poll() is not None for e in procs):
            print(f"wire-smoke: port {port} unusable (early node exit), "
                  "retrying")
            reap(procs)
            continue
        print(f"wire-smoke: deployment on shared port {port}")
        break
    else:
        print("wire-smoke FAIL: no usable shared port after 3 attempts")
        if collector is not None:
            collector["proc"].kill()
        return 1

    if kill_victim is not None or hard_victim is not None:
        time.sleep(args.duration / 2.0)
        if hard_victim is not None:
            victim = peers[hard_victim]
            print(f"wire-smoke: SIGKILL {victim['name']} mid-run "
                  f"(pid {victim['proc'].pid})")
            victim["proc"].send_signal(signal.SIGKILL)
        if kill_victim is not None:
            victim = peers[kill_victim]
            print(f"wire-smoke: SIGTERM {victim['name']} mid-run "
                  f"(pid {victim['proc'].pid})")
            victim["proc"].send_signal(signal.SIGTERM)

    deadline = time.monotonic() + server_duration + 30.0
    for entry in procs:
        remaining = max(1.0, deadline - time.monotonic())
        try:
            entry["proc"].wait(timeout=remaining)
        except subprocess.TimeoutExpired:
            entry["proc"].kill()
            entry["proc"].wait()
            check(False, f"{entry['name']} hung past deadline")

    reports = {}
    for entry in procs:
        entry["log"].seek(0)
        stdout = entry["log"].read()
        entry["log"].close()
        reports[entry["name"]] = parse_report(stdout)
        if hard_victim is not None and entry is peers[hard_victim]:
            check(entry["proc"].returncode != 0,
                  f"{entry['name']} SIGKILLed (rc "
                  f"{entry['proc'].returncode})")
            continue
        check(entry["proc"].returncode == 0,
              f"{entry['name']} exit code {entry['proc'].returncode}")

    hard_name = peers[hard_victim]["name"] if hard_victim is not None else None
    for name, rep in reports.items():
        if name == hard_name:
            continue
        check(rep.get("rx_errors") == "0",
              f"{name} rx_errors={rep.get('rx_errors')}")

    src = reports["source"]
    check(int(src.get("chunks_produced", 0)) > 0,
          f"source chunks_produced={src.get('chunks_produced')}")
    check(int(src.get("requests_served", 0)) > 0,
          f"source requests_served={src.get('requests_served')}")
    check(int(reports["hub"].get("joins_served", 0)) >= args.peers,
          f"hub joins_served={reports['hub'].get('joins_served')}")

    survivors = [p for i, p in enumerate(peers)
                 if i != kill_victim and i != hard_victim]
    best = None
    for entry in survivors:
        rep = reports[entry["name"]]
        played = int(rep.get("chunks_played", 0))
        continuity = float(rep.get("continuity", 0.0))
        print(f"wire-smoke: {entry['name']} chunks_played={played} "
              f"continuity={continuity:.4f} "
              f"locality={rep.get('locality')}")
        if best is None or played > best[1]:
            best = (entry["name"], played, continuity)
    check(best is not None and best[1] > 0,
          f"delivered chunks on best surviving peer ({best})")
    check(best is not None and best[2] > 0.0,
          f"continuity > 0 on best surviving peer ({best})")

    sample_file = os.path.join(out_dir,
                               f"{survivors[0]['name']}_samples.ndjson")
    analyzed = subprocess.run([analyze, "--samples", sample_file],
                              capture_output=True, text=True)
    check(analyzed.returncode == 0,
          f"ppsim-analyze --samples {sample_file} "
          f"(rc={analyzed.returncode})")
    if analyzed.returncode == 0:
        print(analyzed.stdout.rstrip()[:2000])

    if kill_victim is not None:
        name = peers[kill_victim]["name"]
        # The SIGTERM path must flush complete NDJSON, not truncated lines.
        metric_rows = ndjson_parses(os.path.join(out_dir,
                                                 f"{name}_metrics.ndjson"))
        sample_rows = ndjson_parses(os.path.join(out_dir,
                                                 f"{name}_samples.ndjson"))
        check(metric_rows > 0, f"killed {name} metrics NDJSON parses "
                               f"({metric_rows} rows)")
        check(sample_rows > 0, f"killed {name} samples NDJSON parses "
                               f"({sample_rows} rows)")
        killed_analyzed = subprocess.run(
            [analyze, "--samples",
             os.path.join(out_dir, f"{name}_samples.ndjson")],
            capture_output=True, text=True)
        check(killed_analyzed.returncode == 0,
              f"ppsim-analyze on killed {name} samples "
              f"(rc={killed_analyzed.returncode})")

    if collector is not None:
        # All gracefully-exiting nodes send closing snapshots; once the
        # collector has marked the hard victim lost it has everything, so
        # SIGTERM ends it deterministically (duration-s is the backstop).
        try:
            collector["proc"].wait(timeout=6.0)
        except subprocess.TimeoutExpired:
            collector["proc"].send_signal(signal.SIGTERM)
            try:
                collector["proc"].wait(timeout=30.0)
            except subprocess.TimeoutExpired:
                collector["proc"].kill()
                collector["proc"].wait()
        collector["log"].seek(0)
        clog = collector["log"].read()
        collector["log"].close()
        check(collector["proc"].returncode == 0,
              f"collector exit code {collector['proc'].returncode}")

        cnodes = parse_collector_nodes(clog)
        expected_closed = [e for e in procs
                           if hard_victim is None or e is not peers[hard_victim]]
        check(len(cnodes) == len(procs),
              f"collector saw {len(cnodes)}/{len(procs)} nodes")
        for entry in expected_closed:
            crep = cnodes.get(entry["ip"], {})
            check(crep.get("status") == "closed",
                  f"collector status of {entry['name']} "
                  f"({entry['ip']}) = {crep.get('status')}")
            node_seq = reports[entry["name"]].get("telemetry_seq")
            check(node_seq is not None and crep.get("last_seq") == node_seq,
                  f"{entry['name']} closing seq: node={node_seq} "
                  f"collector={crep.get('last_seq')}")
            check(int(reports[entry["name"]].get("telemetry_datagrams", 0))
                  > 0,
                  f"{entry['name']} shipped telemetry datagrams")
        if hard_victim is not None:
            hv = peers[hard_victim]
            check(f"event=node-lost node={hv['ip']}" in clog,
                  f"collector declared {hv['name']} ({hv['ip']}) lost")
            check(cnodes.get(hv["ip"], {}).get("status") == "lost",
                  f"collector final status of {hv['name']} = "
                  f"{cnodes.get(hv['ip'], {}).get('status')}")
        if kill_victim is not None:
            tv = peers[kill_victim]
            check(f"event=node-closed node={tv['ip']}" in clog,
                  f"collector saw {tv['name']} ({tv['ip']}) close")

        summary = [l for l in clog.splitlines()
                   if l.startswith("[collect] t=")]
        check(bool(summary), "collector emitted fleet summaries")
        if summary:
            last = dict(tok.partition("=")[::2] for tok in
                        summary[-1].split() if "=" in tok)
            check(float(last.get("intra_isp_share", 0)) > 0.0,
                  f"fleet intra_isp_share="
                  f"{last.get('intra_isp_share')} > 0")

        # The self-verification pin: offline fold of the closed nodes' own
        # sink files must reproduce the collector's artifacts byte for
        # byte.
        specs = []
        for entry in expected_closed:
            specs += ["--node",
                      f"{entry['ip']}={out_dir}/{entry['name']}"
                      f"_metrics.ndjson,{out_dir}/{entry['name']}"
                      f"_samples.ndjson"]
        offline_metrics = os.path.join(out_dir, "offline_metrics.ndjson")
        offline_matrix = os.path.join(out_dir, "offline_matrix.ndjson")
        folded = subprocess.run(
            [analyze, "--fleet"] + specs +
            ["--fleet-metrics-out", offline_metrics,
             "--fleet-matrix-out", offline_matrix],
            capture_output=True, text=True)
        check(folded.returncode == 0,
              f"ppsim-analyze --fleet (rc={folded.returncode})")
        if folded.returncode == 0:
            print(folded.stdout.rstrip()[:2000])
            check(filecmp.cmp(fleet_metrics, offline_metrics, shallow=False),
                  "collector merged metrics == offline fold (byte-identical)")
            check(filecmp.cmp(fleet_matrix, offline_matrix, shallow=False),
                  "collector fleet matrix == offline fold (byte-identical)")
        fleet_rows = ndjson_parses(fleet_samples)
        check(fleet_rows > 0,
              f"fleet samples stream has rows ({fleet_rows})")
        fleet_analyzed = subprocess.run([analyze, "--samples", fleet_samples],
                                        capture_output=True, text=True)
        check(fleet_analyzed.returncode == 0,
              f"ppsim-analyze --samples on fleet stream "
              f"(rc={fleet_analyzed.returncode})")

    if failures:
        print(f"wire-smoke FAIL: {len(failures)} check(s) failed")
        return 1
    print("wire-smoke PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
