#!/usr/bin/env python3
"""Loopback smoke deployment for the real-wire mode (docs/WIRE.md).

Launches one hub (bootstrap + tracker), one stream source and N peers as
separate ppsim-node processes on 127.0.0.0/8 — second octet encodes the
ISP, so peers land in different ISPs and the per-ISP sample matrix gets
off-diagonal traffic. Runs for --duration seconds, then asserts:

  * every process exits 0 and reports zero wire rx_errors;
  * the source produced chunks and served requests;
  * at least one surviving peer played chunks with continuity > 0;
  * a peer's --samples-out NDJSON parses via `ppsim-analyze --samples`;
  * (unless --no-kill) a peer SIGTERMed mid-run still exits 0 and still
    writes parseable metrics/samples NDJSON — the graceful-shutdown pin.

Exit 0 on success, 1 on any failed check, with a greppable FAIL line.

Usage:
  tools/wire_smoke.py --build-dir build [--peers 4] [--duration 30]
                      [--port 47161] [--sample-period 5] [--no-kill]
                      [--artifacts-dir DIR]
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

# Peer addresses cycle through the loopback ISP blocks (127.<n>.0.0/16;
# see wire::loopback_registry): TELE, CNC, CER, OTHER_CN, FOREIGN.
HUB_BOOTSTRAP = "127.1.0.1"
HUB_TRACKER = "127.1.0.2"
SOURCE_IP = "127.1.0.3"
PEER_BLOCKS = [1, 2, 3, 4, 5]

failures = []


def check(ok, what):
    tag = "ok" if ok else "FAIL"
    print(f"wire-smoke {tag}: {what}")
    if not ok:
        failures.append(what)


def parse_report(stdout):
    """Collects key=value fields from the ppsim-node summary lines."""
    fields = {}
    for line in stdout.splitlines():
        if not line.startswith("ppsim-node "):
            continue
        for token in line.split()[1:]:
            if "=" in token:
                key, _, value = token.partition("=")
                fields[key] = value
    return fields


def ndjson_parses(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = [line for line in f if line.strip()]
        for line in lines:
            json.loads(line)
        return len(lines)
    except (OSError, json.JSONDecodeError):
        return -1


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", required=True)
    ap.add_argument("--peers", type=int, default=4)
    ap.add_argument("--duration", type=float, default=30.0)
    ap.add_argument("--port", type=int, default=47161)
    ap.add_argument("--sample-period", type=float, default=5.0)
    ap.add_argument("--no-kill", action="store_true",
                    help="skip the SIGTERM-mid-run graceful-shutdown check")
    ap.add_argument("--artifacts-dir", default=None,
                    help="keep NDJSON artifacts here (default: temp dir)")
    args = ap.parse_args()

    node = os.path.join(args.build_dir, "tools", "ppsim-node")
    analyze = os.path.join(args.build_dir, "tools", "ppsim-analyze")
    for binary in (node, analyze):
        if not os.access(binary, os.X_OK):
            print(f"wire-smoke FAIL: missing binary {binary}")
            return 1

    out_dir = args.artifacts_dir or tempfile.mkdtemp(prefix="wire_smoke_")
    os.makedirs(out_dir, exist_ok=True)
    print(f"wire-smoke: artifacts in {out_dir}")

    kill_victim = None if args.no_kill or args.peers < 2 else args.peers - 1

    def spawn(name, role, ip, duration, extra=()):
        argv = [
            node, f"--role={role}", f"--ip={ip}", f"--port={args.port}",
            f"--duration-s={duration}",
            f"--sample-period-s={args.sample_period}",
            f"--bootstrap={HUB_BOOTSTRAP}", f"--tracker={HUB_TRACKER}",
            f"--source={SOURCE_IP}",
            f"--metrics-out={out_dir}/{name}_metrics.ndjson",
            f"--samples-out={out_dir}/{name}_samples.ndjson",
        ] + list(extra)
        log = open(os.path.join(out_dir, f"{name}.log"), "w+")
        proc = subprocess.Popen(argv, stdout=log, stderr=subprocess.STDOUT)
        return {"name": name, "proc": proc, "log": log}

    procs = []
    # Servers outlive the peers slightly so departing goodbyes don't land on
    # closed sockets.
    server_duration = args.duration + 2.0
    procs.append(spawn("hub", "hub", HUB_BOOTSTRAP, server_duration))
    time.sleep(0.3)
    procs.append(spawn("source", "source", SOURCE_IP, server_duration))
    time.sleep(0.3)
    peers = []
    for i in range(args.peers):
        block = PEER_BLOCKS[i % len(PEER_BLOCKS)]
        entry = spawn(f"peer{i}", "peer", f"127.{block}.0.{10 + i}",
                      args.duration, extra=[f"--seed={i + 1}"])
        peers.append(entry)
        procs.append(entry)
        time.sleep(0.1)

    if kill_victim is not None:
        time.sleep(args.duration / 2.0)
        victim = peers[kill_victim]
        print(f"wire-smoke: SIGTERM {victim['name']} mid-run "
              f"(pid {victim['proc'].pid})")
        victim["proc"].send_signal(signal.SIGTERM)

    deadline = time.monotonic() + server_duration + 30.0
    for entry in procs:
        remaining = max(1.0, deadline - time.monotonic())
        try:
            entry["proc"].wait(timeout=remaining)
        except subprocess.TimeoutExpired:
            entry["proc"].kill()
            entry["proc"].wait()
            check(False, f"{entry['name']} hung past deadline")

    reports = {}
    for entry in procs:
        entry["log"].seek(0)
        stdout = entry["log"].read()
        entry["log"].close()
        reports[entry["name"]] = parse_report(stdout)
        check(entry["proc"].returncode == 0,
              f"{entry['name']} exit code {entry['proc'].returncode}")

    for name, rep in reports.items():
        check(rep.get("rx_errors") == "0",
              f"{name} rx_errors={rep.get('rx_errors')}")

    src = reports["source"]
    check(int(src.get("chunks_produced", 0)) > 0,
          f"source chunks_produced={src.get('chunks_produced')}")
    check(int(src.get("requests_served", 0)) > 0,
          f"source requests_served={src.get('requests_served')}")
    check(int(reports["hub"].get("joins_served", 0)) >= args.peers,
          f"hub joins_served={reports['hub'].get('joins_served')}")

    survivors = [p for i, p in enumerate(peers) if i != kill_victim]
    best = None
    for entry in survivors:
        rep = reports[entry["name"]]
        played = int(rep.get("chunks_played", 0))
        continuity = float(rep.get("continuity", 0.0))
        print(f"wire-smoke: {entry['name']} chunks_played={played} "
              f"continuity={continuity:.4f} "
              f"locality={rep.get('locality')}")
        if best is None or played > best[1]:
            best = (entry["name"], played, continuity)
    check(best is not None and best[1] > 0,
          f"delivered chunks on best surviving peer ({best})")
    check(best is not None and best[2] > 0.0,
          f"continuity > 0 on best surviving peer ({best})")

    sample_file = os.path.join(out_dir, f"{survivors[0]['name']}_samples.ndjson")
    analyzed = subprocess.run([analyze, "--samples", sample_file],
                              capture_output=True, text=True)
    check(analyzed.returncode == 0,
          f"ppsim-analyze --samples {sample_file} "
          f"(rc={analyzed.returncode})")
    if analyzed.returncode == 0:
        print(analyzed.stdout.rstrip()[:2000])

    if kill_victim is not None:
        name = peers[kill_victim]["name"]
        # The SIGTERM path must flush complete NDJSON, not truncated lines.
        metric_rows = ndjson_parses(os.path.join(out_dir,
                                                 f"{name}_metrics.ndjson"))
        sample_rows = ndjson_parses(os.path.join(out_dir,
                                                 f"{name}_samples.ndjson"))
        check(metric_rows > 0, f"killed {name} metrics NDJSON parses "
                               f"({metric_rows} rows)")
        check(sample_rows > 0, f"killed {name} samples NDJSON parses "
                               f"({sample_rows} rows)")
        killed_analyzed = subprocess.run(
            [analyze, "--samples",
             os.path.join(out_dir, f"{name}_samples.ndjson")],
            capture_output=True, text=True)
        check(killed_analyzed.returncode == 0,
              f"ppsim-analyze on killed {name} samples "
              f"(rc={killed_analyzed.returncode})")

    if failures:
        print(f"wire-smoke FAIL: {len(failures)} check(s) failed")
        return 1
    print("wire-smoke PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
