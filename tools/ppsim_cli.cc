// The ppsim command-line driver: run a traffic-locality experiment from a
// shell, pick probe sites/strategy/scale, print any of the paper's report
// sections, and optionally archive the probes' packet captures.
//
//   ppsim --channel popular --probe tele --probe mason --report all
//   ppsim --strategy tracker-only --report swarm
//   ppsim --dump-trace /tmp/run1 --report data

#include "core/cli.h"

int main(int argc, char** argv) {
  auto parsed = ppsim::core::parse_cli(argc, argv);
  if (parsed.error) {
    std::fprintf(stderr, "error: %s\n%s", parsed.error->c_str(),
                 ppsim::core::cli_usage().c_str());
    return 2;
  }
  return ppsim::core::run_cli(parsed.options);
}
