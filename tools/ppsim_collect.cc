// ppsim-collect: the fleet telemetry collector (docs/OBSERVABILITY.md,
// "Fleet telemetry").
//
// Binds one UDP socket, ingests ppsim-telemetry-v1 datagrams from a
// deployment's ppsim-node processes (--telemetry-to on the node side),
// and maintains the fleet view: per-node health (up / closed / lost via
// heartbeat timeout), merged counters, and the global per-ISP-pair
// traffic matrix with its intra-ISP share time series. Emits a periodic
// stderr summary plus node lifecycle events, a live fleet-level samples
// NDJSON stream, and — on shutdown — merged-metrics and fleet-matrix
// artifacts restricted to gracefully closed nodes, byte-identical to
// `ppsim-analyze --fleet` run offline over those nodes' sink files.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/metrics.h"
#include "obs/sampler.h"
#include "wire/clock.h"
#include "wire/collector.h"
#include "wire/telemetry.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

void usage() {
  std::fprintf(
      stderr,
      "usage: ppsim-collect --bind=IP:PORT\n"
      "  [--heartbeat-timeout-s=S] [--summary-period-s=S] [--duration-s=S]\n"
      "  [--expect-closed=N] [--fleet-samples-out=F] [--fleet-metrics-out=F]\n"
      "  [--fleet-matrix-out=F]\n"
      "--bind port 0 picks a free port; the chosen one is printed as\n"
      "collect_listening=IP:PORT on stdout before ingest starts.\n");
}

}  // namespace

int main(int argc, char** argv) {
  using ppsim::sim::Time;

  std::string bind_spec;
  double heartbeat_timeout_s = 10.0;
  double summary_period_s = 2.0;
  double duration_s = 0.0;
  std::size_t expect_closed = 0;
  std::string fleet_samples_out;
  std::string fleet_metrics_out;
  std::string fleet_matrix_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--bind") {
      bind_spec = value;
    } else if (key == "--heartbeat-timeout-s") {
      heartbeat_timeout_s = std::stod(value);
    } else if (key == "--summary-period-s") {
      summary_period_s = std::stod(value);
    } else if (key == "--duration-s") {
      duration_s = std::stod(value);
    } else if (key == "--expect-closed") {
      expect_closed = std::stoul(value);
    } else if (key == "--fleet-samples-out") {
      fleet_samples_out = value;
    } else if (key == "--fleet-metrics-out") {
      fleet_metrics_out = value;
    } else if (key == "--fleet-matrix-out") {
      fleet_matrix_out = value;
    } else if (key == "--help" || key == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "ppsim-collect: unknown flag '%s'\n", key.c_str());
      usage();
      return 2;
    }
  }

  ppsim::net::IpAddress bind_ip;
  std::uint16_t bind_port = 0;
  if (bind_spec.empty()) {
    usage();
    return 2;
  }
  // Port 0 ("pick one for me") is legal here, so only the IP goes through
  // the strict parser when the port part is "0".
  const auto colon = bind_spec.rfind(':');
  if (!ppsim::wire::parse_host_port(bind_spec, &bind_ip, &bind_port)) {
    if (colon == std::string::npos ||
        bind_spec.substr(colon + 1) != "0" ||
        !ppsim::net::IpAddress::parse(bind_spec.substr(0, colon))
             .has_value()) {
      std::fprintf(stderr, "ppsim-collect: --bind: bad IP:PORT '%s'\n",
                   bind_spec.c_str());
      return 2;
    }
    bind_ip = *ppsim::net::IpAddress::parse(bind_spec.substr(0, colon));
    bind_port = 0;
  }

  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    std::perror("ppsim-collect: socket");
    return 1;
  }
  int rcvbuf = 1 << 22;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(bind_port);
  sa.sin_addr.s_addr = htonl(bind_ip.value());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) != 0) {
    std::fprintf(stderr, "ppsim-collect: bind(%s) failed: %s\n",
                 bind_spec.c_str(), std::strerror(errno));
    ::close(fd);
    return 1;
  }
  socklen_t sa_len = sizeof sa;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &sa_len);
  bind_port = ntohs(sa.sin_port);
  std::printf("collect_listening=%s:%u\n", bind_ip.to_string().c_str(),
              unsigned{bind_port});
  std::fflush(stdout);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  std::ofstream samples_os;
  ppsim::wire::Collector::Config config;
  config.heartbeat_timeout = Time::from_seconds(heartbeat_timeout_s);
  config.events_out = &std::cerr;
  if (!fleet_samples_out.empty()) {
    samples_os.open(fleet_samples_out);
    config.fleet_samples_out = &samples_os;
  }
  ppsim::wire::Collector collector(config);

  ppsim::wire::WallClock clock;
  const Time duration = Time::from_seconds(duration_s);
  const Time summary_period = Time::from_seconds(summary_period_s);
  Time next_summary = summary_period;
  char buf[65536];
  while (g_stop == 0) {
    const Time now = clock.now();
    if (duration > Time::zero() && now >= duration) break;
    if (expect_closed > 0 && collector.closed_count() >= expect_closed) break;
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready > 0) {
      for (;;) {
        sockaddr_in from{};
        socklen_t from_len = sizeof from;
        const ssize_t n =
            ::recvfrom(fd, buf, sizeof buf, MSG_DONTWAIT,
                       reinterpret_cast<sockaddr*>(&from), &from_len);
        if (n < 0) break;
        collector.ingest(std::string(buf, static_cast<std::size_t>(n)),
                         clock.now());
      }
    }
    collector.tick(clock.now());
    if (summary_period > Time::zero() && clock.now() >= next_summary) {
      collector.write_summary(std::cerr, clock.now());
      next_summary = next_summary + summary_period;
    }
  }
  ::close(fd);

  // Declare stragglers before the final artifacts: a node that never sent
  // its closing snapshot stays out of the fold either way, but the final
  // summary/report should say "lost", not "up".
  collector.tick(clock.now() + config.heartbeat_timeout + Time::seconds(1));
  collector.write_summary(std::cerr, clock.now());

  if (!fleet_metrics_out.empty()) {
    ppsim::obs::MetricsRegistry merged;
    collector.fold_closed_metrics(&merged);
    std::ofstream os(fleet_metrics_out);
    merged.write_ndjson(os);
  }
  if (!fleet_matrix_out.empty()) {
    ppsim::obs::TrafficSample fleet;
    std::ofstream os(fleet_matrix_out);
    if (collector.fold_closed_matrix(&fleet))
      ppsim::obs::write_sample_ndjson(os, fleet);
  }

  std::printf(
      "ppsim-collect nodes=%zu closed=%zu lost=%zu datagrams=%llu "
      "dups=%llu malformed=%llu unknown_records=%llu metric_rows=%llu "
      "sample_rows=%llu\n",
      collector.node_count(), collector.closed_count(),
      collector.lost_count(),
      static_cast<unsigned long long>(collector.datagrams_accepted()),
      static_cast<unsigned long long>(collector.duplicates_dropped()),
      static_cast<unsigned long long>(collector.malformed_dropped()),
      static_cast<unsigned long long>(collector.unknown_records()),
      static_cast<unsigned long long>(collector.metric_rows_applied()),
      static_cast<unsigned long long>(collector.sample_rows_applied()));
  collector.write_node_reports(std::cout);
  return 0;
}
