#pragma once

// ppsim-lint-v1 — machine-readable findings stream, one JSON object per
// line (the same NDJSON discipline as ppsim-bench-v1 / ppsim-spans-v1):
//
//   {"lint_schema":"ppsim-lint-v1","root":"src","passes":["determinism",...]}
//   {"pass":"...","file":"...","line":12,"check":"...","token":"...",
//    "detail":"...","allowlisted":false}
//   ...
//   {"files_scanned":92,"findings":3,"reported":0,"allowlisted":3,"stale":0}
//
// First line: header. Middle lines: one per finding (allowlisted ones
// included — the committed BASELINE_audit.json tracks the full audit
// trajectory, not just the failures). Last line: summary. The reader
// round-trips everything the writer emits; tests/tools_lint_test.cc pins
// the round-trip byte-exactly.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace ppsim::lint {

inline constexpr std::string_view kLintSchema = "ppsim-lint-v1";

struct LintSummary {
  std::uint64_t files_scanned = 0;
  std::uint64_t findings = 0;
  std::uint64_t reported = 0;     // not allowlisted (these fail the build)
  std::uint64_t allowlisted = 0;
  std::uint64_t stale = 0;        // stale-allowlist findings (also reported)

  friend bool operator==(const LintSummary&, const LintSummary&) = default;
};

struct LintRun {
  std::string root;                 // scan root as given to the driver
  std::vector<std::string> passes;  // passes that ran, in order
  std::vector<Finding> findings;
  LintSummary summary;

  friend bool operator==(const LintRun&, const LintRun&) = default;
};

void write_lint_ndjson(std::ostream& os, const LintRun& run);

/// Parses a ppsim-lint-v1 stream. Returns false and sets *error on a
/// schema mismatch or malformed line.
bool read_lint_ndjson(std::istream& is, LintRun* run, std::string* error);

}  // namespace ppsim::lint
