#include "lint/allowlist.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace ppsim::lint {

namespace {

void trim(std::string* s) {
  auto issp = [](unsigned char c) { return std::isspace(c); };
  s->erase(s->begin(), std::find_if_not(s->begin(), s->end(), issp));
  s->erase(std::find_if_not(s->rbegin(), s->rend(), issp).base(), s->end());
}

bool entry_matches(const AllowEntry& e, const Finding& f) {
  if (e.pass != f.pass) return false;
  if (!f.file.ends_with(e.path_suffix)) return false;
  if (e.check != "*" && e.check != f.check) return false;
  return e.token == "*" || f.token.find(e.token) != std::string::npos;
}

}  // namespace

bool parse_allowlist(std::istream& in, Allowlist* out, std::string* error) {
  std::string section;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    trim(&line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        *error = "line " + std::to_string(lineno) +
                 ": unterminated section header: " + line;
        return false;
      }
      section = line.substr(1, line.size() - 2);
      trim(&section);
      if (section.empty()) {
        *error = "line " + std::to_string(lineno) + ": empty section header";
        return false;
      }
      continue;
    }
    if (section.empty()) {
      *error = "line " + std::to_string(lineno) +
               ": entry outside a [pass] section: " + line;
      return false;
    }
    const std::size_t c1 = line.find(':');
    const std::size_t c2 =
        c1 == std::string::npos ? std::string::npos : line.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos) {
      *error = "line " + std::to_string(lineno) +
               ": malformed entry (want path-suffix:check:token): " + line;
      return false;
    }
    out->entries.push_back(AllowEntry{section, line.substr(0, c1),
                                      line.substr(c1 + 1, c2 - c1 - 1),
                                      line.substr(c2 + 1), lineno});
  }
  return true;
}

bool load_allowlist(const std::string& path, Allowlist* out,
                    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "allowlist not readable: " + path;
    return false;
  }
  if (!parse_allowlist(in, out, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

void apply_allowlist(const Allowlist& allow,
                     const std::vector<std::string>& passes_run,
                     const std::string& allowlist_name,
                     std::vector<Finding>* findings) {
  std::vector<bool> used(allow.entries.size(), false);
  for (Finding& f : *findings) {
    for (std::size_t i = 0; i < allow.entries.size(); ++i) {
      if (entry_matches(allow.entries[i], f)) {
        f.allowlisted = true;
        used[i] = true;
      }
    }
  }
  for (std::size_t i = 0; i < allow.entries.size(); ++i) {
    if (used[i]) continue;
    const AllowEntry& e = allow.entries[i];
    if (std::find(passes_run.begin(), passes_run.end(), e.pass) ==
        passes_run.end())
      continue;  // that pass didn't run; can't judge staleness
    std::ostringstream token;
    token << e.path_suffix << ":" << e.check << ":" << e.token;
    findings->push_back(Finding{
        e.pass, allowlist_name, e.line, "stale-allowlist", token.str(),
        "allowlist entry matched no finding this run; the hazard it excused "
        "is gone — delete the entry",
        false});
  }
}

}  // namespace ppsim::lint
