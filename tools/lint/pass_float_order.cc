// Pass `float-order` — flags floating-point accumulation inside iteration
// loops in the scheduler/protocol/network hot paths (`sim`, `proto`,
// `net`). FP addition is not associative: `acc += x` over a container is a
// different number under the reordering that parallel reduction (ROADMAP
// item 2) introduces, and a different number is a different same-seed run.
// Each finding must either be restructured (integer/fixed-point
// accumulation, pairwise/Kahan summation with a pinned order) or
// allowlisted with a rationale for why its order can never be re-shuffled.
//
// Mechanics: identifiers declared `double`/`float` anywhere in the tree
// (headers feed their .cc files, so the registry is global, like the
// determinism pass's unordered registry) that appear on the left of
// `+=`/`-=`/`*=` inside a `for`/`while` body.

#include <cctype>
#include <set>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "lint/passes.h"
#include "lint/text.h"

namespace ppsim::lint {

namespace {

constexpr std::string_view kPass = "float-order";

bool in_hot_dirs(const SourceFile& f) {
  return f.module == "sim" || f.module == "proto" || f.module == "net";
}

/// Identifiers declared with a floating-point type: `double total = 0;`,
/// `float x;`, parameters `(double lambda, ...)`. Qualified names
/// (`double Rng::pareto(`) and template args (`vector<double>`) don't
/// declare an accumulator and are skipped.
void collect_float_decls(const std::string& text,
                         std::set<std::string>* registry) {
  static const std::string_view kTypes[] = {"double", "float"};
  for (const auto type : kTypes) {
    std::size_t pos = 0;
    while ((pos = text.find(type, pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += type.size();
      if (!word_match(text, at, type)) continue;
      std::size_t i = skip_ws(text, pos);
      std::size_t end = i;
      while (end < text.size() && is_ident_char(text[end])) ++end;
      if (end == i) continue;  // e.g. `vector<double>`
      const std::size_t after = skip_ws(text, end);
      if (after < text.size() &&
          (text[after] == '(' || text[after] == ':'))
        continue;  // function name or qualified definition
      registry->insert(text.substr(i, end - i));
    }
  }
}

struct Loop {
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
};

/// Body extents of for/while loops: `{...}` blocks or single statements.
std::vector<Loop> loop_bodies(const std::string& text) {
  std::vector<Loop> loops;
  static const std::string_view kHeads[] = {"for", "while"};
  for (const auto head : kHeads) {
    std::size_t pos = 0;
    while ((pos = text.find(head, pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += head.size();
      if (!word_match(text, at, head)) continue;
      std::size_t i = skip_ws(text, pos);
      if (i >= text.size() || text[i] != '(') continue;
      int depth = 0;
      std::size_t close = std::string::npos;
      for (std::size_t j = i; j < text.size(); ++j) {
        if (text[j] == '(') ++depth;
        else if (text[j] == ')' && --depth == 0) {
          close = j;
          break;
        }
      }
      if (close == std::string::npos) continue;
      std::size_t b = skip_ws(text, close + 1);
      if (b >= text.size()) continue;
      if (text[b] == '{') {
        int bd = 0;
        std::size_t j = b;
        for (; j < text.size(); ++j) {
          if (text[j] == '{') ++bd;
          else if (text[j] == '}' && --bd == 0) break;
        }
        loops.push_back(Loop{b + 1, j});
      } else if (text[b] == ';') {
        continue;  // `while (...);` — empty body
      } else {
        const std::size_t semi = text.find(';', b);
        loops.push_back(
            Loop{b, semi == std::string::npos ? text.size() : semi});
      }
    }
  }
  return loops;
}

}  // namespace

void pass_float_order(const Tree& tree, std::vector<Finding>* findings) {
  std::set<std::string> float_idents;
  for (const SourceFile& f : tree.files)
    collect_float_decls(f.stripped, &float_idents);
  std::set<std::tuple<std::string, int, std::string>> seen;  // dedupe nests
  for (const SourceFile& f : tree.files) {
    if (!in_hot_dirs(f)) continue;
    for (const Loop& loop : loop_bodies(f.stripped)) {
      for (std::size_t i = loop.body_begin; i + 1 < loop.body_end; ++i) {
        const char c = f.stripped[i];
        if ((c != '+' && c != '-' && c != '*') ||
            f.stripped[i + 1] != '=')
          continue;
        // Left-hand identifier (possibly `obj.member` — take the member).
        std::size_t end = i;
        while (end > loop.body_begin &&
               std::isspace(static_cast<unsigned char>(f.stripped[end - 1])))
          --end;
        std::size_t begin = end;
        while (begin > loop.body_begin && is_ident_char(f.stripped[begin - 1]))
          --begin;
        const std::string ident = f.stripped.substr(begin, end - begin);
        if (ident.empty() || !float_idents.contains(ident)) continue;
        const int line = line_of(f.stripped, i);
        if (!seen.insert({f.rel, line, ident}).second) continue;
        findings->push_back(Finding{
            std::string(kPass), f.rel, line, "float-accum", ident,
            "floating-point accumulation inside an iteration loop in a hot "
            "path: the sum depends on iteration order, which parallel "
            "reduction will change; accumulate in integers/fixed-point, or "
            "allowlist with a rationale for why this order is pinned"});
      }
    }
  }
}

}  // namespace ppsim::lint
