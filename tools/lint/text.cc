#include "lint/text.h"

#include <algorithm>
#include <cctype>

namespace ppsim::lint {

std::string strip_comments_and_strings(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State st = State::kCode;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (st) {
      case State::kCode:
        if (c == '/' && next == '/') {
          st = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          st = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == '"') {
          st = State::kString;
          out += ' ';
        } else if (c == '\'') {
          st = State::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          st = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          st = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out += "  ";
          ++i;
          if (i < in.size() && in[i] == '\n') out.back() = '\n';
        } else if (c == '"') {
          st = State::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          st = State::kCode;
          out += ' ';
        } else {
          out += ' ';
        }
        break;
    }
  }
  return out;
}

std::string blank_preprocessor_lines(const std::string& in) {
  std::string out = in;
  std::size_t i = 0;
  while (i < out.size()) {
    std::size_t j = skip_ws(out, i);
    const std::size_t eol_from = j;
    bool directive = j < out.size() && out[j] == '#';
    // Blank to end of line, honoring backslash continuations.
    std::size_t k = eol_from;
    while (k < out.size() && out[k] != '\n') ++k;
    if (directive) {
      bool cont = true;
      while (cont) {
        cont = false;
        std::size_t last = k;
        while (last > i && std::isspace(static_cast<unsigned char>(
                               out[last - 1])) && out[last - 1] != '\n')
          --last;
        if (last > i && out[last - 1] == '\\') {
          cont = true;
          if (k < out.size()) ++k;  // past the newline
          while (k < out.size() && out[k] != '\n') ++k;
        }
      }
      for (std::size_t b = i; b < k; ++b)
        if (out[b] != '\n') out[b] = ' ';
    }
    i = k < out.size() ? k + 1 : k;
  }
  return out;
}

int line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<int>(std::count(text.begin(), text.begin() +
                                             static_cast<std::ptrdiff_t>(pos),
                                         '\n'));
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool word_match(const std::string& text, std::size_t pos,
                std::string_view needle) {
  if (pos > 0 && is_ident_char(text[pos - 1])) return false;
  const std::size_t end = pos + needle.size();
  if (!needle.empty() && is_ident_char(needle.back()) && end < text.size() &&
      is_ident_char(text[end]))
    return false;
  return true;
}

bool contains_word(const std::string& text, std::string_view word) {
  std::size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    if (word_match(text, pos, word)) return true;
    pos += word.size();
  }
  return false;
}

std::size_t skip_ws(const std::string& s, std::size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return i;
}

std::size_t match_angle(const std::string& s, std::size_t pos) {
  int depth = 0;
  for (std::size_t i = pos; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    else if (s[i] == '>') {
      if (--depth == 0) return i + 1;
    } else if (s[i] == ';' && depth == 0) {
      return std::string::npos;
    }
  }
  return std::string::npos;
}

namespace {

/// Classifies the brace at `open` from its head: the text since the last
/// statement boundary (`;`, `{`, `}`) at the same nesting level.
ScopeKind classify_brace(const std::string& s, std::size_t head_start,
                         std::size_t open, ScopeKind parent) {
  std::string head = s.substr(head_start, open - head_start);
  if (contains_word(head, "namespace")) return ScopeKind::kNamespace;
  // Class-like head: keyword outside parentheses. `enum class E {` and
  // `struct Foo : Bar {` land here; function heads contain `(` but no
  // class keyword (`struct Foo bar() {` is rare enough to ignore).
  {
    std::string outside;
    int pdepth = 0;
    for (char c : head) {
      if (c == '(') ++pdepth;
      else if (c == ')') --pdepth;
      else if (pdepth == 0) outside += c;
    }
    if (contains_word(outside, "class") || contains_word(outside, "struct") ||
        contains_word(outside, "union") || contains_word(outside, "enum"))
      return ScopeKind::kClass;
  }
  // Braced initializer: `= {`, `{` in an argument list, `return {`, or a
  // nested init list — inherits the enclosing scope kind.
  std::size_t last = head.size();
  while (last > 0 &&
         std::isspace(static_cast<unsigned char>(head[last - 1])))
    --last;
  if (last == 0) return parent;
  const char tail = head[last - 1];
  if (tail == '=' || tail == '(' || tail == ',' || tail == '[') return parent;
  if (last >= 6 && head.compare(last - 6, 6, "return") == 0) return parent;
  // `int x{3};` — a declarator identifier directly before the brace at
  // namespace/class scope is an init, not a body.
  if (is_ident_char(tail) && parent != ScopeKind::kFunction) {
    // Function definitions end their head with ')' or identifiers like
    // `const`/`override`/`try`; those fall through to kFunction below.
    static const std::string_view kBodyTails[] = {"const",    "override",
                                                  "final",    "noexcept",
                                                  "try",      "else",
                                                  "do"};
    std::size_t ws = last;
    while (ws > 0 && is_ident_char(head[ws - 1])) --ws;
    const std::string word = head.substr(ws, last - ws);
    for (const auto t : kBodyTails)
      if (word == t) return ScopeKind::kFunction;
    if (head.find('(') == std::string::npos) return parent;
  }
  return ScopeKind::kFunction;
}

}  // namespace

std::vector<ScopeKind> scope_map(const std::string& stripped) {
  std::vector<ScopeKind> map(stripped.size(), ScopeKind::kNamespace);
  std::vector<ScopeKind> stack = {ScopeKind::kNamespace};
  std::vector<std::size_t> head_starts = {0};
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    const char c = stripped[i];
    map[i] = stack.back();
    if (c == '{') {
      const ScopeKind kind =
          classify_brace(stripped, head_starts.back(), i, stack.back());
      stack.push_back(kind);
      head_starts.back() = i + 1;
      head_starts.push_back(i + 1);
    } else if (c == '}') {
      if (stack.size() > 1) {
        stack.pop_back();
        head_starts.pop_back();
      }
      head_starts.back() = i + 1;
      map[i] = stack.back();
    } else if (c == ';') {
      head_starts.back() = i + 1;
    }
  }
  return map;
}

std::string collapse_ws(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  bool ws = false;
  for (char c : in) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      ws = true;
      continue;
    }
    if (ws && !out.empty()) out += ' ';
    ws = false;
    out += c;
  }
  return out;
}

}  // namespace ppsim::lint
