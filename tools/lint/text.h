#pragma once

// Shared lexing layer for the lint passes: comment/string stripping, word
// matching, and a lightweight scope classifier. Everything operates on
// plain std::string so passes stay allocation-cheap and dependency-free.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace ppsim::lint {

/// Replaces comments and string/char literals with spaces, preserving line
/// structure so reported line numbers stay exact.
std::string strip_comments_and_strings(const std::string& in);

/// Blanks preprocessor directive lines (leading-whitespace `#...`,
/// including continuation lines) with spaces. Run on already-stripped text
/// by the declaration-oriented passes so `#include`/`#pragma` never parse
/// as declarations. Layering reads raw text instead.
std::string blank_preprocessor_lines(const std::string& in);

/// 1-based line number of byte position `pos` in `text`.
int line_of(const std::string& text, std::size_t pos);

bool is_ident_char(char c);

/// True when text[pos..pos+needle) sits on identifier boundaries (so
/// `rand` does not match inside `grand` or `randomize`).
bool word_match(const std::string& text, std::size_t pos,
                std::string_view needle);

/// True when `text` contains `word` on identifier boundaries.
bool contains_word(const std::string& text, std::string_view word);

std::size_t skip_ws(const std::string& s, std::size_t i);

/// Parses a balanced template argument list starting at the '<' at `pos`;
/// returns the position one past the matching '>'. npos on imbalance.
std::size_t match_angle(const std::string& s, std::size_t pos);

/// What kind of scope a byte position lives in. File scope counts as
/// kNamespace (declarations there are globals all the same). Braced
/// initializers inherit the enclosing scope kind.
enum class ScopeKind { kNamespace, kClass, kFunction };

/// Classifies every byte of `stripped` (comments/strings already blanked)
/// by its innermost scope. Heuristic, not a parser: a brace whose head
/// contains `namespace` opens namespace scope; `class`/`struct`/`union`/
/// `enum` (outside parentheses) opens class scope; a head ending in `=`,
/// `(`, `,`, or `return` is a braced initializer (inherits); anything else
/// — function bodies, control blocks, lambdas — is function scope.
std::vector<ScopeKind> scope_map(const std::string& stripped);

/// Collapses every whitespace run in `in` to a single space. Used by
/// cross-file completeness checks so multi-line declarations match.
std::string collapse_ws(const std::string& in);

}  // namespace ppsim::lint
