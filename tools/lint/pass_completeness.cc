// Pass `completeness` — cross-checks every per-message-type table against
// the `Message` variant in proto/message.h, extending the in-file
// static_assert counter audit (proto/counters.h) to checks no compiler
// sees. A new message type must not be able to silently skip:
//
//   wire-size-visitor   SizeVisitor in proto/message.cc (wire_size)
//   name-visitor        NameVisitor in proto/message.cc (message_name),
//                       including the returned "TypeName" string literal
//   trace-io-write      the per-type serializer in capture/trace_io.cc
//   trace-io-parse      the per-type `type == "X"` parser branch there
//   span-member         the trailing SpanContext member (uniform layout)
//   span-doc            the span-propagation section of docs/PROTOCOL.md
//   span-stamp          a `<msg>.span = SpanContext{...}` stamping site in
//                       proto/*.cc for every type the doc table lists
//   variant-membership  struct list == variant list, both directions
//
// Plus the transport drop-counter audit ("every packet lands in exactly
// one bucket", PR 3): every `*_drops` field of net::Transport's Stats must
// have an increment site in net/ and appear in the total-drops
// reconciliation in core/experiment.cc.
//
// Plus the wire-codec audit (real-wire mode, docs/WIRE.md): every Message
// variant must have a Tag entry in wire/codec.h (wire-tag), an encode
// branch and a decode branch in wire/codec.cc (wire-encode / wire-decode),
// and a packet-table row in docs/WIRE.md (wire-doc) — and each of those
// four tables must name only variant members, both directions.
//
// Plus the resource-gauge audit (scale observatory): the gauge names
// obs::ResourceProbe publishes (kResourceGaugeNames in
// obs/resource_probe.h) and the "Resource and scheduler gauges" table in
// docs/OBSERVABILITY.md must list exactly the same set, both directions —
// an undocumented gauge or a documented phantom gauge is a finding.
//
// Plus the rx-error audit (fleet telemetry plane): every counter field of
// wire::UdpTransport::RxErrors must appear in kRxErrorBucketNames (the
// for_each_rx_error export table that feeds --metrics-out and telemetry
// snapshots) and in the "Rx error counters" table of docs/WIRE.md, both
// directions — a codec rejection bucket the fleet cannot see is a finding.
//
// Plus the telemetry-record audit: the kTelemetryRecordNames inventory in
// wire/telemetry.h and the "Telemetry record types" table in
// docs/OBSERVABILITY.md must list exactly the same record types.

#include <cctype>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/passes.h"
#include "lint/text.h"

namespace ppsim::lint {

namespace {

constexpr std::string_view kPass = "completeness";

const SourceFile* find_file(const Tree& tree, std::string_view rel) {
  for (const SourceFile& f : tree.files)
    if (f.rel == rel) return &f;
  return nullptr;
}

struct StructDecl {
  std::string name;
  int line = 0;
  std::string body;
};

std::vector<StructDecl> parse_structs(const std::string& stripped) {
  std::vector<StructDecl> out;
  std::size_t pos = 0;
  while ((pos = stripped.find("struct", pos)) != std::string::npos) {
    const std::size_t at = pos;
    pos += 6;
    if (!word_match(stripped, at, "struct")) continue;
    std::size_t i = skip_ws(stripped, at + 6);
    std::size_t end = i;
    while (end < stripped.size() && is_ident_char(stripped[end])) ++end;
    if (end == i) continue;
    const std::string name = stripped.substr(i, end - i);
    i = skip_ws(stripped, end);
    if (i >= stripped.size() || stripped[i] != '{') continue;  // fwd decl
    int depth = 0;
    std::size_t close = i;
    for (; close < stripped.size(); ++close) {
      if (stripped[close] == '{') ++depth;
      else if (stripped[close] == '}' && --depth == 0) break;
    }
    out.push_back(StructDecl{name, line_of(stripped, at),
                             stripped.substr(i + 1, close - i - 1)});
    pos = close;
  }
  return out;
}

/// Type names inside `using Message = std::variant<...>;`.
std::vector<std::string> parse_variant(const std::string& stripped) {
  std::vector<std::string> out;
  const std::size_t at = stripped.find("using Message");
  if (at == std::string::npos) return out;
  const std::size_t open = stripped.find('<', at);
  const std::size_t close = stripped.find(';', at);
  if (open == std::string::npos || close == std::string::npos) return out;
  std::size_t i = open;
  while (i < close) {
    if (!is_ident_char(stripped[i])) {
      ++i;
      continue;
    }
    std::size_t end = i;
    while (end < close && is_ident_char(stripped[end])) ++end;
    const std::string ident = stripped.substr(i, end - i);
    // Skip the std::variant scaffolding and qualification.
    if (ident != "std" && ident != "variant") out.push_back(ident);
    i = end;
  }
  return out;
}

/// The "## Causal span propagation" section of PROTOCOL.md, or empty.
std::string span_section(const Tree& tree) {
  const auto it = tree.docs.find("PROTOCOL.md");
  if (it == tree.docs.end()) return {};
  const std::size_t at = it->second.find("## Causal span propagation");
  if (at == std::string::npos) return {};
  std::size_t end = it->second.find("\n## ", at);
  if (end == std::string::npos) end = it->second.size();
  return it->second.substr(at, end - at);
}

int span_section_line(const Tree& tree) {
  const auto it = tree.docs.find("PROTOCOL.md");
  if (it == tree.docs.end()) return 0;
  const std::size_t at = it->second.find("## Causal span propagation");
  return at == std::string::npos ? 0 : line_of(it->second, at);
}

/// First backticked name of each `| `X` | ... |` table row in `section`.
std::set<std::string> table_entries(const std::string& section) {
  std::set<std::string> out;
  std::size_t pos = 0;
  while ((pos = section.find("\n| `", pos)) != std::string::npos) {
    const std::size_t begin = pos + 4;
    const std::size_t close = section.find('`', begin);
    if (close == std::string::npos) break;
    out.insert(section.substr(begin, close - begin));
    pos = close;
  }
  return out;
}

void add(std::vector<Finding>* findings, std::string file, int line,
         std::string check, std::string token, std::string detail) {
  findings->push_back(Finding{std::string(kPass), std::move(file), line,
                              std::move(check), std::move(token),
                              std::move(detail)});
}

int line_or_1(const std::string& text, std::size_t pos) {
  return pos == std::string::npos ? 1 : line_of(text, pos);
}

void check_message_tables(const Tree& tree, std::vector<Finding>* findings) {
  const SourceFile* msg_h = find_file(tree, "proto/message.h");
  if (msg_h == nullptr) return;  // tree without a protocol layer (fixtures)
  if (msg_h->stripped.find("using Message") == std::string::npos)
    return;  // no variant to audit against
  const std::vector<StructDecl> structs = parse_structs(msg_h->stripped);
  const std::vector<std::string> variant = parse_variant(msg_h->stripped);
  const int variant_line =
      line_of(msg_h->stripped, msg_h->stripped.find("using Message"));
  std::map<std::string, const StructDecl*> by_name;
  for (const StructDecl& s : structs) by_name[s.name] = &s;
  const std::set<std::string> in_variant(variant.begin(), variant.end());

  // variant-membership, both directions; span-member for every member.
  for (const StructDecl& s : structs) {
    if (!contains_word(s.body, "SpanContext")) continue;  // not a message
    if (!in_variant.contains(s.name))
      add(findings, msg_h->rel, s.line, "variant-membership", s.name,
          "message struct (has a SpanContext member) missing from the "
          "Message variant");
  }
  for (const std::string& name : variant) {
    const auto it = by_name.find(name);
    if (it == by_name.end()) {
      add(findings, msg_h->rel, variant_line, "variant-membership", name,
          "Message variant names a type not declared as a struct in "
          "proto/message.h");
      continue;
    }
    if (!contains_word(it->second->body, "SpanContext"))
      add(findings, msg_h->rel, it->second->line, "span-member", name,
          "message struct lacks the trailing `SpanContext span{};` member "
          "every wire message carries (docs/PROTOCOL.md)");
  }

  // Visitor tables in proto/message.cc.
  if (const SourceFile* msg_cc = find_file(tree, "proto/message.cc")) {
    const std::string flat = collapse_ws(msg_cc->stripped);
    const std::string flat_raw = collapse_ws(msg_cc->raw);
    const std::size_t size_at = flat.find("struct SizeVisitor");
    const std::size_t name_at = flat.find("struct NameVisitor");
    const int size_line =
        line_or_1(msg_cc->stripped, msg_cc->stripped.find("SizeVisitor"));
    const int name_line =
        line_or_1(msg_cc->stripped, msg_cc->stripped.find("NameVisitor"));
    for (const std::string& name : variant) {
      const std::string pat = "(const " + name + "&";
      const std::size_t in_size = flat.find(pat);
      if (size_at == std::string::npos || in_size == std::string::npos ||
          (name_at != std::string::npos && in_size > name_at))
        add(findings, msg_cc->rel, size_line, "wire-size-visitor", name,
            "message type has no operator() in SizeVisitor — wire_size() "
            "would not compile-break, it would std::visit the wrong "
            "overload set; add the per-type size");
      if (name_at == std::string::npos ||
          flat.find(pat, name_at) == std::string::npos)
        add(findings, msg_cc->rel, name_line, "name-visitor", name,
            "message type has no operator() in NameVisitor; traces and "
            "capture files would have no name for it");
      else if (flat_raw.find("\"" + name + "\"") == std::string::npos)
        add(findings, msg_cc->rel, name_line, "name-visitor", name,
            "NameVisitor never returns the literal \"" + name +
                "\"; capture round-trips key on that exact string");
    }
  }

  // Per-type serializer + parser in capture/trace_io.cc.
  if (const SourceFile* tio = find_file(tree, "capture/trace_io.cc")) {
    const std::string flat = collapse_ws(tio->stripped);
    const std::string flat_raw = collapse_ws(tio->raw);
    for (const std::string& name : variant) {
      if (flat.find("(const proto::" + name + "&") == std::string::npos &&
          flat.find("(const " + name + "&") == std::string::npos)
        add(findings, tio->rel, 1, "trace-io-write", name,
            "capture/trace_io.cc has no payload serializer for this "
            "message type; captured traces would drop it");
      if (flat_raw.find("type == \"" + name + "\"") == std::string::npos)
        add(findings, tio->rel, 1, "trace-io-parse", name,
            "capture/trace_io.cc has no parser branch (type == \"" + name +
                "\") for this message type; captured traces would not "
                "round-trip");
    }
  }

  // Span documentation + stamping sites.
  const std::string section = span_section(tree);
  if (!section.empty()) {
    const int doc_line = span_section_line(tree);
    for (const std::string& name : variant) {
      if (section.find("`" + name + "`") == std::string::npos)
        add(findings, "docs/PROTOCOL.md", doc_line, "span-doc", name,
            "message type missing from the span-propagation section: list "
            "it in the parentage table or the explicit not-stamped note");
    }
    const std::set<std::string> stamped_per_doc = table_entries(section);
    // Stamping evidence: `X ident ...; ... ident.span =` in one proto/*.cc.
    std::set<std::string> stamped;          // any binding
    std::set<std::string> stamped_unique;   // ident bound to exactly one type
    for (const SourceFile& f : tree.files) {
      if (f.module != "proto" || !f.rel.ends_with(".cc")) continue;
      std::map<std::string, std::set<std::string>> ident_types;
      for (const std::string& name : in_variant) {
        std::size_t pos = 0;
        while ((pos = f.stripped.find(name, pos)) != std::string::npos) {
          const std::size_t at = pos;
          pos += name.size();
          if (!word_match(f.stripped, at, name)) continue;
          std::size_t i = skip_ws(f.stripped, at + name.size());
          std::size_t end = i;
          while (end < f.stripped.size() && is_ident_char(f.stripped[end]))
            ++end;
          if (end == i) continue;
          const std::size_t after = skip_ws(f.stripped, end);
          if (after < f.stripped.size() &&
              (f.stripped[after] == ';' || f.stripped[after] == '{' ||
               f.stripped[after] == '='))
            ident_types[f.stripped.substr(i, end - i)].insert(name);
        }
      }
      for (const auto& [ident, types] : ident_types) {
        if (f.stripped.find(ident + ".span") == std::string::npos &&
            collapse_ws(f.stripped).find(ident + ".span") ==
                std::string::npos)
          continue;
        for (const std::string& t : types) {
          stamped.insert(t);
          if (types.size() == 1) stamped_unique.insert(t);
        }
      }
    }
    for (const std::string& name : stamped_per_doc) {
      if (!in_variant.contains(name)) continue;  // doc rows for non-messages
      if (!stamped.contains(name))
        add(findings, msg_h->rel, by_name.contains(name) ? by_name.at(name)->line : 1,
            "span-stamp", name,
            "the span-propagation table says this message is stamped, but "
            "no `<var>.span = ...` site exists in proto/*.cc; stamp it or "
            "move it to the not-stamped note");
    }
    for (const std::string& name : stamped_unique) {
      if (!stamped_per_doc.contains(name))
        add(findings, "docs/PROTOCOL.md", doc_line, "span-doc", name,
            "message is span-stamped in proto/*.cc but missing from the "
            "span-propagation table; document its parent");
    }
  }
}

void check_drop_counters(const Tree& tree, std::vector<Finding>* findings) {
  const SourceFile* th = find_file(tree, "net/transport.h");
  if (th == nullptr) return;
  std::vector<std::pair<std::string, int>> drop_fields;
  for (const StructDecl& s : parse_structs(th->stripped)) {
    if (s.name != "Stats") continue;
    std::size_t pos = 0;
    while (true) {
      pos = s.body.find("_drops", pos);
      if (pos == std::string::npos) break;
      std::size_t begin = pos;
      while (begin > 0 && is_ident_char(s.body[begin - 1])) --begin;
      const std::size_t end = pos + 6;
      if (end < s.body.size() && is_ident_char(s.body[end])) {
        pos = end;
        continue;
      }
      const std::string field = s.body.substr(begin, end - begin);
      // Only declarations count (`std::uint64_t x_drops = 0;`); member
      // accesses (`x.uplink_drops`, `p->core_drops`) inside body methods
      // are uses, not buckets.
      if (begin == 0 ||
          (s.body[begin - 1] != '.' && s.body[begin - 1] != '>'))
        drop_fields.push_back({field, s.line});
      pos = end;
    }
  }
  // Dedupe while keeping declaration order.
  std::set<std::string> seen;
  for (const auto& [field, line] : drop_fields) {
    if (!seen.insert(field).second) continue;
    bool incremented = false;
    for (const SourceFile& f : tree.files) {
      if (f.module != "net") continue;
      if (collapse_ws(f.stripped).find("++stats_." + field) !=
          std::string::npos) {
        incremented = true;
        break;
      }
    }
    if (!incremented)
      add(findings, th->rel, line, "drop-counter", field,
          "drop counter declared in Transport::Stats but never "
          "incremented in net/ — a drop bucket no packet can land in");
    const SourceFile* exp = find_file(tree, "core/experiment.cc");
    if (exp != nullptr && !contains_word(exp->stripped, field))
      add(findings, "core/experiment.cc", 1, "drop-counter", field,
          "drop counter missing from the total-drops reconciliation in "
          "core/experiment.cc — packets landing in this bucket would "
          "escape the every-packet-lands-in-one-bucket audit");
  }
}

/// Wire-codec coverage: proto/message.h's variant vs the four per-message
/// tables of the real-wire mode — the Tag enum (wire/codec.h), the encode
/// visitor and the decode switch (wire/codec.cc), and the packet-format
/// table in docs/WIRE.md. A message type silently missing from any of them
/// would be unsendable (encode falls through), undecodable (decode rejects
/// its tag), or undocumented on the wire.
void check_wire_codec(const Tree& tree, std::vector<Finding>* findings) {
  const SourceFile* codec_h = find_file(tree, "wire/codec.h");
  if (codec_h == nullptr) return;  // tree without the wire layer (fixtures)
  const SourceFile* msg_h = find_file(tree, "proto/message.h");
  if (msg_h == nullptr) return;
  const std::vector<std::string> variant = parse_variant(msg_h->stripped);
  if (variant.empty()) return;
  const std::set<std::string> in_variant(variant.begin(), variant.end());

  // Tag entries: `kX` enumerators inside `enum class Tag { ... }`.
  const std::size_t tag_at = codec_h->stripped.find("enum class Tag");
  if (tag_at == std::string::npos) {
    add(findings, codec_h->rel, 1, "wire-tag", "Tag",
        "wire/codec.h no longer declares `enum class Tag`; the codec "
        "coverage audit needs the per-message tag list");
    return;
  }
  const int tag_line = line_of(codec_h->stripped, tag_at);
  const std::size_t tag_open = codec_h->stripped.find('{', tag_at);
  const std::size_t tag_close = tag_open == std::string::npos
                                    ? std::string::npos
                                    : codec_h->stripped.find('}', tag_open);
  if (tag_close == std::string::npos) return;
  std::set<std::string> tags;
  for (std::size_t i = tag_open; i < tag_close;) {
    if (!is_ident_char(codec_h->stripped[i])) {
      ++i;
      continue;
    }
    std::size_t end = i;
    while (end < tag_close && is_ident_char(codec_h->stripped[end])) ++end;
    const std::string ident = codec_h->stripped.substr(i, end - i);
    if (ident.size() > 1 && ident[0] == 'k' &&
        (std::isupper(static_cast<unsigned char>(ident[1])) != 0))
      tags.insert(ident.substr(1));  // kJoinQuery -> JoinQuery
    i = end;
  }

  for (const std::string& name : variant)
    if (!tags.contains(name))
      add(findings, codec_h->rel, tag_line, "wire-tag", name,
          "message type has no enumerator in wire::Tag; the wire cannot "
          "carry it (add `k" + name + "` with the variant's index)");
  for (const std::string& name : tags)
    if (!in_variant.contains(name))
      add(findings, codec_h->rel, tag_line, "wire-tag", name,
          "wire::Tag names a type that is not a Message variant member; "
          "remove the stale enumerator");

  // Encode visitor + decode switch branches in wire/codec.cc.
  if (const SourceFile* codec_cc = find_file(tree, "wire/codec.cc")) {
    const std::string flat = collapse_ws(codec_cc->stripped);
    for (const std::string& name : variant) {
      if (flat.find("(const proto::" + name + "&") == std::string::npos &&
          flat.find("(const " + name + "&") == std::string::npos)
        add(findings, codec_cc->rel, 1, "wire-encode", name,
            "wire/codec.cc has no encode branch (operator() overload) for "
            "this message type; encode_message would not compile-break, "
            "it would visit the wrong overload set");
      if (flat.find("case Tag::k" + name + ":") == std::string::npos)
        add(findings, codec_cc->rel, 1, "wire-decode", name,
            "wire/codec.cc has no `case Tag::k" + name +
                ":` decode branch; datagrams carrying this tag would be "
                "rejected as undecodable");
    }
  }

  // Packet-format table in docs/WIRE.md, both directions.
  const auto doc = tree.docs.find("WIRE.md");
  if (doc == tree.docs.end()) {
    add(findings, "docs/WIRE.md", 1, "wire-doc", "WIRE.md",
        "the wire layer exists but docs/WIRE.md is missing; the packet "
        "format table is the format's only human-readable spec");
    return;
  }
  const std::size_t sec_at = doc->second.find("## Packet formats");
  if (sec_at == std::string::npos) {
    add(findings, "docs/WIRE.md", 1, "wire-doc", "Packet formats",
        "docs/WIRE.md has no \"## Packet formats\" section; the audit "
        "cross-checks its table against the Message variant");
    return;
  }
  std::size_t sec_end = doc->second.find("\n## ", sec_at);
  if (sec_end == std::string::npos) sec_end = doc->second.size();
  const std::string section = doc->second.substr(sec_at, sec_end - sec_at);
  const int doc_line = line_of(doc->second, sec_at);
  const std::set<std::string> documented = table_entries(section);
  for (const std::string& name : variant)
    if (!documented.contains(name))
      add(findings, "docs/WIRE.md", doc_line, "wire-doc", name,
          "message type missing from the packet-formats table; every "
          "variant's body layout must be documented");
  for (const std::string& name : documented)
    if (!in_variant.contains(name))
      add(findings, "docs/WIRE.md", doc_line, "wire-doc", name,
          "packet-formats table documents a type that is not a Message "
          "variant member; drop the stale row");
}

void check_resource_gauges(const Tree& tree, std::vector<Finding>* findings) {
  const SourceFile* probe = find_file(tree, "obs/resource_probe.h");
  if (probe == nullptr) return;  // tree without the probe (fixtures)
  // Locate the kResourceGaugeNames declaration in the stripped text (so a
  // comment mentioning the name cannot match), then read the array's string
  // literals from the raw text — stripping is offset-preserving, so the
  // brace positions line up.
  const std::size_t at = probe->stripped.find("kResourceGaugeNames");
  if (at == std::string::npos) {
    add(findings, probe->rel, 1, "resource-gauge-doc", "kResourceGaugeNames",
        "obs/resource_probe.h no longer declares kResourceGaugeNames; the "
        "docs cross-check needs the published gauge list");
    return;
  }
  const std::size_t open = probe->stripped.find('{', at);
  const std::size_t close = open == std::string::npos
                                ? std::string::npos
                                : probe->stripped.find('}', open);
  if (close == std::string::npos) return;
  std::vector<std::string> gauges;
  std::size_t pos = open;
  while (true) {
    const std::size_t q = probe->raw.find('"', pos);
    if (q == std::string::npos || q > close) break;
    const std::size_t q2 = probe->raw.find('"', q + 1);
    if (q2 == std::string::npos || q2 > close) break;
    gauges.push_back(probe->raw.substr(q + 1, q2 - q - 1));
    pos = q2 + 1;
  }
  const int decl_line = line_of(probe->raw, at);

  const auto it = tree.docs.find("OBSERVABILITY.md");
  if (it == tree.docs.end()) return;
  const std::size_t sec_at =
      it->second.find("### Resource and scheduler gauges");
  if (sec_at == std::string::npos) {
    add(findings, "docs/OBSERVABILITY.md", 1, "resource-gauge-doc",
        "kResourceGaugeNames",
        "obs/resource_probe.h publishes resource gauges but "
        "docs/OBSERVABILITY.md has no \"### Resource and scheduler "
        "gauges\" table documenting them");
    return;
  }
  std::size_t sec_end = it->second.find("\n## ", sec_at);
  const std::size_t sub_end = it->second.find("\n### ", sec_at + 1);
  if (sub_end != std::string::npos &&
      (sec_end == std::string::npos || sub_end < sec_end))
    sec_end = sub_end;
  if (sec_end == std::string::npos) sec_end = it->second.size();
  const std::string section = it->second.substr(sec_at, sec_end - sec_at);
  const int doc_line = line_of(it->second, sec_at);

  const std::set<std::string> documented = table_entries(section);
  const std::set<std::string> published(gauges.begin(), gauges.end());
  for (const std::string& g : gauges)
    if (!documented.contains(g))
      add(findings, "docs/OBSERVABILITY.md", doc_line, "resource-gauge-doc", g,
          "gauge published by obs::ResourceProbe (kResourceGaugeNames) "
          "missing from the resource-and-scheduler-gauges table");
  for (const std::string& d : documented)
    if (!published.contains(d))
      add(findings, probe->rel, decl_line, "resource-gauge-doc", d,
          "the resource-and-scheduler-gauges table documents a gauge "
          "kResourceGaugeNames does not declare; probe and docs must list "
          "the same names");
}

/// Reads the string literals of an `inline constexpr std::array<...> name
/// = { "...", ... };` declaration. The declaration is located in the
/// stripped text (so a comment mentioning the name cannot match) and the
/// literals come from the raw text — stripping is offset-preserving, so
/// the brace positions line up. Returns false when `name` is absent.
bool parse_string_array(const SourceFile& f, std::string_view name,
                        std::vector<std::string>* out, int* decl_line) {
  const std::size_t at = f.stripped.find(name);
  if (at == std::string::npos) return false;
  *decl_line = line_of(f.raw, at);
  const std::size_t open = f.stripped.find('{', at);
  const std::size_t close =
      open == std::string::npos ? std::string::npos
                                : f.stripped.find('}', open);
  if (close == std::string::npos) return true;
  std::size_t pos = open;
  while (true) {
    const std::size_t q = f.raw.find('"', pos);
    if (q == std::string::npos || q > close) break;
    const std::size_t q2 = f.raw.find('"', q + 1);
    if (q2 == std::string::npos || q2 > close) break;
    out->push_back(f.raw.substr(q + 1, q2 - q - 1));
    pos = q2 + 1;
  }
  return true;
}

/// One `### heading` (or `## heading`) doc section, ending at the next
/// heading of either level. Returns false when the doc or heading is
/// missing.
bool doc_section_of(const Tree& tree, const std::string& doc_name,
                    std::string_view heading, std::string* section,
                    int* line) {
  const auto it = tree.docs.find(doc_name);
  if (it == tree.docs.end()) return false;
  const std::size_t at = it->second.find(heading);
  if (at == std::string::npos) return false;
  std::size_t end = it->second.find("\n## ", at);
  const std::size_t sub = it->second.find("\n### ", at + 1);
  if (sub != std::string::npos && (end == std::string::npos || sub < end))
    end = sub;
  if (end == std::string::npos) end = it->second.size();
  *section = it->second.substr(at, end - at);
  *line = line_of(it->second, at);
  return true;
}

void check_rx_errors(const Tree& tree, std::vector<Finding>* findings) {
  const SourceFile* udp = find_file(tree, "wire/udp.h");
  if (udp == nullptr) return;  // tree without the wire layer (fixtures)

  // Counter fields declared inside `struct RxErrors { ... }` — an
  // identifier directly followed by `=` (skipping the total() helper and
  // its field uses, which are followed by `+`, `;` or `(`).
  std::vector<std::string> fields;
  int struct_line = 1;
  for (const StructDecl& s : parse_structs(udp->stripped)) {
    if (s.name != "RxErrors") continue;
    struct_line = s.line;
    std::size_t i = 0;
    while ((i = s.body.find("uint64_t", i)) != std::string::npos) {
      if (!word_match(s.body, i, "uint64_t")) {
        i += 8;
        continue;
      }
      std::size_t b = skip_ws(s.body, i + 8);
      std::size_t end = b;
      while (end < s.body.size() && is_ident_char(s.body[end])) ++end;
      const std::size_t after = skip_ws(s.body, end);
      if (end > b && after < s.body.size() && s.body[after] == '=')
        fields.push_back(s.body.substr(b, end - b));
      i = end;
    }
  }
  if (fields.empty()) return;  // no RxErrors struct to audit

  std::vector<std::string> buckets;
  int array_line = 1;
  if (!parse_string_array(*udp, "kRxErrorBucketNames", &buckets,
                          &array_line)) {
    add(findings, udp->rel, struct_line, "rx-error-export",
        "kRxErrorBucketNames",
        "wire/udp.h declares RxErrors but no kRxErrorBucketNames export "
        "table; nodes cannot publish the rejection buckets as labeled "
        "counters");
    return;
  }
  const std::set<std::string> exported(buckets.begin(), buckets.end());
  const std::set<std::string> declared(fields.begin(), fields.end());
  for (const std::string& f : fields)
    if (!exported.contains(f))
      add(findings, udp->rel, array_line, "rx-error-export", f,
          "RxErrors counter missing from kRxErrorBucketNames — codec "
          "rejections landing in this bucket never reach --metrics-out or "
          "telemetry snapshots");
  for (const std::string& b : buckets)
    if (!declared.contains(b))
      add(findings, udp->rel, array_line, "rx-error-export", b,
          "kRxErrorBucketNames exports a bucket RxErrors does not declare; "
          "for_each_rx_error and the struct must list the same fields");

  std::string section;
  int doc_line = 1;
  if (!doc_section_of(tree, "WIRE.md", "### Rx error counters", &section,
                      &doc_line)) {
    add(findings, "docs/WIRE.md", 1, "rx-error-doc", "Rx error counters",
        "wire/udp.h exports rx-error buckets but docs/WIRE.md has no "
        "\"### Rx error counters\" table documenting them");
    return;
  }
  const std::set<std::string> documented = table_entries(section);
  for (const std::string& b : buckets)
    if (!documented.contains(b))
      add(findings, "docs/WIRE.md", doc_line, "rx-error-doc", b,
          "exported rx-error bucket missing from the rx-error-counters "
          "table");
  for (const std::string& d : documented)
    if (!exported.contains(d))
      add(findings, udp->rel, array_line, "rx-error-doc", d,
          "the rx-error-counters table documents a bucket "
          "kRxErrorBucketNames does not export; table and export list "
          "must match");
}

void check_telemetry_records(const Tree& tree,
                             std::vector<Finding>* findings) {
  const SourceFile* th = find_file(tree, "wire/telemetry.h");
  if (th == nullptr) return;  // tree without the telemetry plane (fixtures)
  std::vector<std::string> records;
  int array_line = 1;
  if (!parse_string_array(*th, "kTelemetryRecordNames", &records,
                          &array_line)) {
    add(findings, th->rel, 1, "telemetry-record-doc", "kTelemetryRecordNames",
        "wire/telemetry.h no longer declares kTelemetryRecordNames; the "
        "docs cross-check needs the record-type inventory");
    return;
  }
  std::string section;
  int doc_line = 1;
  if (!doc_section_of(tree, "OBSERVABILITY.md", "### Telemetry record types",
                      &section, &doc_line)) {
    add(findings, "docs/OBSERVABILITY.md", 1, "telemetry-record-doc",
        "kTelemetryRecordNames",
        "wire/telemetry.h declares telemetry record types but "
        "docs/OBSERVABILITY.md has no \"### Telemetry record types\" "
        "table documenting the datagram layout");
    return;
  }
  const std::set<std::string> documented = table_entries(section);
  const std::set<std::string> declared(records.begin(), records.end());
  for (const std::string& r : records)
    if (!documented.contains(r))
      add(findings, "docs/OBSERVABILITY.md", doc_line,
          "telemetry-record-doc", r,
          "telemetry record type (kTelemetryRecordNames) missing from the "
          "telemetry-record-types table");
  for (const std::string& d : documented)
    if (!declared.contains(d))
      add(findings, th->rel, array_line, "telemetry-record-doc", d,
          "the telemetry-record-types table documents a record type "
          "kTelemetryRecordNames does not declare; inventory and docs "
          "must list the same names");
}

}  // namespace

void pass_completeness(const Tree& tree, std::vector<Finding>* findings) {
  check_message_tables(tree, findings);
  check_drop_counters(tree, findings);
  check_wire_codec(tree, findings);
  check_resource_gauges(tree, findings);
  check_rx_errors(tree, findings);
  check_telemetry_records(tree, findings);
}

}  // namespace ppsim::lint
