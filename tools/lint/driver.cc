// ppsim_lint — driver for the ppsim-audit pass framework.
//
//   ppsim_lint <source-root> [options]
//     --pass <name>       run only this pass (repeatable; default: all)
//     --allowlist <file>  sectioned allowlist (see allowlist.h)
//     --docs <dir>        docs root for cross-checks (completeness pass)
//     --ndjson <file>     write the ppsim-lint-v1 findings stream
//     --baseline <file>   compare (pass,file,check,token) against a
//                         committed ppsim-lint-v1 run; drift fails
//     --list-passes       print the registry and exit
//     --verbose           also print allowlisted findings
//
// Exit codes: 0 clean; 1 reported findings, stale allowlist entries, or
// baseline drift; 2 usage / IO error. Each ctest (lint_<pass>) runs one
// pass so a failure names the contract it broke.

#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "lint/allowlist.h"
#include "lint/lint.h"
#include "lint/ndjson.h"

namespace {

using ppsim::lint::Finding;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <source-root> [--pass <name>]... [--allowlist <file>]\n"
               "       [--docs <dir>] [--ndjson <file>] [--baseline <file>]\n"
               "       [--list-passes] [--verbose]\n";
  return 2;
}

/// Line-insensitive identity of a finding, for baseline comparison.
using Key = std::tuple<std::string, std::string, std::string, std::string>;

Key key_of(const Finding& f) { return {f.pass, f.file, f.check, f.token}; }

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string docs_root;
  std::string allowlist_path;
  std::string ndjson_path;
  std::string baseline_path;
  std::vector<std::string> pass_names;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "ppsim_lint: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--pass") {
      pass_names.push_back(value("--pass"));
    } else if (arg == "--allowlist") {
      allowlist_path = value("--allowlist");
    } else if (arg == "--docs") {
      docs_root = value("--docs");
    } else if (arg == "--ndjson") {
      ndjson_path = value("--ndjson");
    } else if (arg == "--baseline") {
      baseline_path = value("--baseline");
    } else if (arg == "--list-passes") {
      for (const auto& p : ppsim::lint::passes())
        std::cout << p.name << "  " << p.summary << "\n";
      return 0;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "ppsim_lint: unknown option " << arg << "\n";
      return usage(argv[0]);
    } else if (root.empty()) {
      root = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (root.empty()) return usage(argv[0]);

  std::string error;
  ppsim::lint::Tree tree;
  if (!ppsim::lint::load_tree(root, docs_root, &tree, &error)) {
    std::cerr << "ppsim_lint: " << error << "\n";
    return 2;
  }

  std::vector<Finding> findings =
      ppsim::lint::run_passes(tree, pass_names, &error);
  if (!error.empty()) {
    std::cerr << "ppsim_lint: " << error << "\n";
    return 2;
  }
  std::vector<std::string> ran;
  if (pass_names.empty()) {
    for (const auto& p : ppsim::lint::passes()) ran.push_back(p.name);
  } else {
    ran = pass_names;
  }

  if (!allowlist_path.empty()) {
    ppsim::lint::Allowlist allow;
    if (!ppsim::lint::load_allowlist(allowlist_path, &allow, &error)) {
      std::cerr << "ppsim_lint: " << error << "\n";
      return 2;
    }
    // Stale findings sort in with the rest below.
    ppsim::lint::apply_allowlist(allow, ran, allowlist_path, &findings);
  }

  ppsim::lint::LintRun run;
  run.root = root;
  run.passes = ran;
  run.findings = findings;
  run.summary.files_scanned = tree.files.size();
  run.summary.findings = findings.size();
  for (const Finding& f : findings) {
    if (f.allowlisted)
      ++run.summary.allowlisted;
    else
      ++run.summary.reported;
    if (f.check == "stale-allowlist") ++run.summary.stale;
  }

  if (!ndjson_path.empty()) {
    std::ofstream out(ndjson_path);
    if (!out) {
      std::cerr << "ppsim_lint: cannot write " << ndjson_path << "\n";
      return 2;
    }
    ppsim::lint::write_lint_ndjson(out, run);
  }

  // Human report: reported findings always; allowlisted under --verbose.
  for (const Finding& f : findings) {
    if (f.allowlisted && !verbose) continue;
    std::cout << f.file << ":" << f.line << ": [" << f.pass << "/" << f.check
              << "] " << f.token << (f.allowlisted ? "  (allowlisted)" : "")
              << "\n    " << f.detail << "\n";
  }

  bool baseline_drift = false;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::cerr << "ppsim_lint: cannot read baseline " << baseline_path
                << "\n";
      return 2;
    }
    ppsim::lint::LintRun base;
    if (!ppsim::lint::read_lint_ndjson(in, &base, &error)) {
      std::cerr << "ppsim_lint: baseline: " << error << "\n";
      return 2;
    }
    std::set<Key> base_keys;
    std::set<Key> run_keys;
    for (const Finding& f : base.findings) base_keys.insert(key_of(f));
    for (const Finding& f : findings) run_keys.insert(key_of(f));
    for (const Key& k : run_keys) {
      if (base_keys.contains(k)) continue;
      baseline_drift = true;
      std::cout << "baseline drift: NEW finding " << std::get<0>(k) << "/"
                << std::get<2>(k) << " in " << std::get<1>(k) << " ("
                << std::get<3>(k) << ")\n";
    }
    for (const Key& k : base_keys) {
      if (run_keys.contains(k)) continue;
      baseline_drift = true;
      std::cout << "baseline drift: RESOLVED finding " << std::get<0>(k)
                << "/" << std::get<2>(k) << " in " << std::get<1>(k) << " ("
                << std::get<3>(k)
                << ") — regenerate tools/lint/BASELINE_audit.json\n";
    }
  }

  std::ostringstream pass_list;
  for (std::size_t i = 0; i < ran.size(); ++i)
    pass_list << (i ? "," : "") << ran[i];
  std::cout << "ppsim_lint: " << run.summary.files_scanned << " files, passes="
            << pass_list.str() << ": " << run.summary.reported << " reported, "
            << run.summary.allowlisted << " allowlisted, " << run.summary.stale
            << " stale\n";
  if (run.summary.reported > 0 || baseline_drift) return 1;
  return 0;
}
