// Pass `layering` — enforces the declared module DAG over the #include
// graph. The declared layers (DESIGN.md / docs/TOOLING.md):
//
//   sim       depends on nothing (the deterministic event core)
//   net       -> sim
//   proto     -> net, sim            (protocol logic; emits via sim/trace.h)
//   analysis  -> sim
//   obs       -> net, sim            (observes; never feeds protocol back)
//   faults    -> net, obs, sim
//   workload  -> net, proto, sim
//   baseline  -> net, proto, sim
//   capture   -> analysis, net, proto, sim
//   wire      -> net, obs, proto, sim  (real-socket deployment mode)
//   core      -> everything (the composition root)
//
// Upward or undeclared edges get `illegal-include`; includes naming a
// module outside this table get `unknown-module`; and any cycle in the
// *actual* edge set (possible only via illegal edges, but reported
// separately because a cycle blocks per-layer builds outright) gets
// `layer-cycle`. ROADMAP items 1-2 shard this tree by layer; every edge
// added here is an edge the parallel refactor has to cut later.

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/passes.h"
#include "lint/text.h"

namespace ppsim::lint {

namespace {

constexpr std::string_view kPass = "layering";

const std::map<std::string, std::set<std::string>>& allowed_deps() {
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"sim", {}},
      {"net", {"sim"}},
      {"proto", {"net", "sim"}},
      {"analysis", {"sim"}},
      {"obs", {"net", "sim"}},
      {"faults", {"net", "obs", "sim"}},
      {"workload", {"net", "proto", "sim"}},
      {"baseline", {"net", "proto", "sim"}},
      {"capture", {"analysis", "net", "proto", "sim"}},
      {"wire", {"net", "obs", "proto", "sim"}},
      {"core",
       {"analysis", "baseline", "capture", "faults", "net", "obs", "proto",
        "sim", "workload"}},
  };
  return kAllowed;
}

struct Include {
  std::string path;  // as written, e.g. "proto/message.h"
  int line = 0;
};

/// Quoted includes from raw text (string literals survive there).
std::vector<Include> quoted_includes(const std::string& raw) {
  std::vector<Include> out;
  std::size_t pos = 0;
  while ((pos = raw.find("#include", pos)) != std::string::npos) {
    const std::size_t at = pos;
    pos += 8;
    // Only at start of line (modulo whitespace).
    std::size_t bol = at;
    while (bol > 0 && raw[bol - 1] != '\n') {
      if (raw[bol - 1] != ' ' && raw[bol - 1] != '\t') break;
      --bol;
    }
    if (bol > 0 && raw[bol - 1] != '\n') continue;
    std::size_t i = skip_ws(raw, pos);
    if (i >= raw.size() || raw[i] != '"') continue;
    const std::size_t close = raw.find('"', i + 1);
    if (close == std::string::npos) continue;
    out.push_back(Include{raw.substr(i + 1, close - i - 1), line_of(raw, at)});
  }
  return out;
}

}  // namespace

void pass_layering(const Tree& tree, std::vector<Finding>* findings) {
  // module -> (dep module -> first file:line evidence)
  std::map<std::string, std::map<std::string, std::pair<std::string, int>>>
      edges;
  for (const SourceFile& f : tree.files) {
    if (f.module.empty()) continue;
    for (const Include& inc : quoted_includes(f.raw)) {
      const std::size_t slash = inc.path.find('/');
      if (slash == std::string::npos) continue;  // same-directory include
      const std::string target = inc.path.substr(0, slash);
      if (target == f.module) continue;
      const auto own = allowed_deps().find(f.module);
      if (own == allowed_deps().end()) {
        findings->push_back(Finding{
            std::string(kPass), f.rel, inc.line, "unknown-module", f.module,
            "module is not in the declared layer table; add it to "
            "tools/lint/pass_layering.cc with its allowed dependencies"});
        continue;
      }
      if (!allowed_deps().contains(target)) {
        findings->push_back(Finding{
            std::string(kPass), f.rel, inc.line, "unknown-module", target,
            "include names a module outside the declared layer table"});
        continue;
      }
      auto& mod_edges = edges[f.module];
      if (!mod_edges.contains(target))
        mod_edges[target] = {f.rel, inc.line};
      if (!own->second.contains(target)) {
        findings->push_back(Finding{
            std::string(kPass), f.rel, inc.line, "illegal-include",
            f.module + " -> " + target,
            "include edge violates the declared module DAG (" + f.module +
                " may depend on" +
                [&] {
                  std::string s;
                  for (const auto& d : own->second) s += " " + d;
                  return s.empty() ? std::string(" nothing") : s;
                }() +
                "); move the shared type down a layer or invert the "
                "dependency"});
      }
    }
  }
  // Cycle detection over the actual edges (DFS, deterministic order).
  std::set<std::string> done;
  for (const auto& [start, unused] : edges) {
    (void)unused;
    if (done.contains(start)) continue;
    std::vector<std::string> stack = {start};
    std::set<std::string> on_path = {start};
    // Iterative DFS with an explicit path so the cycle can be printed.
    std::vector<std::map<std::string, std::pair<std::string, int>>::const_iterator>
        iters = {edges[start].begin()};
    while (!stack.empty()) {
      const std::string& node = stack.back();
      auto& it = iters.back();
      if (!edges.contains(node) || it == edges.at(node).end()) {
        done.insert(node);
        on_path.erase(node);
        stack.pop_back();
        iters.pop_back();
        continue;
      }
      const std::string next = it->first;
      const auto [file, line] = it->second;
      ++it;
      if (on_path.contains(next)) {
        std::string cycle = next;
        for (auto rit = stack.rbegin(); rit != stack.rend(); ++rit) {
          cycle = *rit + " -> " + cycle;
          if (*rit == next) break;
        }
        findings->push_back(Finding{
            std::string(kPass), file, line, "layer-cycle", cycle,
            "module cycle in the #include graph: no layer order can build "
            "these independently"});
        continue;
      }
      if (done.contains(next) || !edges.contains(next)) continue;
      stack.push_back(next);
      on_path.insert(next);
      iters.push_back(edges.at(next).begin());
    }
  }
}

}  // namespace ppsim::lint
