#include "lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>

#include "lint/passes.h"
#include "lint/text.h"

namespace fs = std::filesystem;

namespace ppsim::lint {

const std::vector<PassInfo>& passes() {
  static const std::vector<PassInfo> kPasses = {
      {"determinism",
       "wall-clock reads, hash-order iteration feeding the scheduler, "
       "pointer-keyed ordered containers",
       &pass_determinism},
      {"shared-state",
       "mutable globals, non-const static locals, static mutable data "
       "members (precondition for parallel execution)",
       &pass_shared_state},
      {"layering",
       "module DAG over the #include graph: no upward edges, no cycles",
       &pass_layering},
      {"float-order",
       "floating-point accumulation inside iteration loops in hot paths "
       "(order-dependent under parallel reduction)",
       &pass_float_order},
      {"completeness",
       "proto/message.h variant vs wire_size/name/trace-io/span/drop-counter "
       "tables: no message type may silently skip one",
       &pass_completeness},
  };
  return kPasses;
}

bool load_tree(const std::string& root, const std::string& docs_root,
               Tree* tree, std::string* error) {
  std::error_code ec;
  const fs::path root_path = fs::canonical(root, ec);
  if (ec) {
    *error = "cannot open source root: " + root;
    return false;
  }
  tree->root = root_path.generic_string();
  for (auto it = fs::recursive_directory_iterator(root_path);
       it != fs::recursive_directory_iterator(); ++it) {
    if (!it->is_regular_file()) continue;
    const fs::path& p = it->path();
    const std::string ext = p.extension().string();
    if (ext != ".h" && ext != ".hpp" && ext != ".cc" && ext != ".cpp")
      continue;
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    SourceFile f;
    f.rel = fs::relative(p, root_path).generic_string();
    f.module = f.rel.substr(0, f.rel.find('/'));
    if (f.module == f.rel) f.module.clear();  // top-level file, no module
    f.raw = ss.str();
    f.stripped = strip_comments_and_strings(f.raw);
    tree->files.push_back(std::move(f));
  }
  std::sort(tree->files.begin(), tree->files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel < b.rel;
            });
  if (!docs_root.empty()) {
    const fs::path docs_path = fs::canonical(docs_root, ec);
    if (ec) {
      *error = "cannot open docs root: " + docs_root;
      return false;
    }
    tree->docs_root = docs_path.generic_string();
    for (const auto& entry : fs::directory_iterator(docs_path)) {
      if (!entry.is_regular_file()) continue;
      if (entry.path().extension() != ".md") continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream ss;
      ss << in.rdbuf();
      tree->docs[entry.path().filename().string()] = ss.str();
    }
  }
  return true;
}

std::vector<Finding> run_passes(const Tree& tree,
                                const std::vector<std::string>& names,
                                std::string* error) {
  std::vector<Finding> findings;
  const auto& registry = passes();
  if (names.empty()) {
    for (const PassInfo& p : registry) p.fn(tree, &findings);
  } else {
    for (const std::string& name : names) {
      const auto it =
          std::find_if(registry.begin(), registry.end(),
                       [&](const PassInfo& p) { return p.name == name; });
      if (it == registry.end()) {
        if (error) {
          if (!error->empty()) *error += "; ";
          *error += "unknown pass: " + name;
        }
        continue;
      }
      it->fn(tree, &findings);
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.pass, a.file, a.line, a.check, a.token) <
                     std::tie(b.pass, b.file, b.line, b.check, b.token);
            });
  return findings;
}

}  // namespace ppsim::lint
