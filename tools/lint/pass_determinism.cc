// Pass `determinism` — the original ppsim_lint hazards, now one pass of
// the audit framework (history: this was the whole of tools/ppsim_lint.cc
// for PRs 1-5).
//
//   wall-clock     std::rand/srand, time(nullptr), std::chrono system/
//                  steady/high_resolution clocks, std::random_device,
//                  gettimeofday, ... inside the event-core modules. All
//                  randomness must flow from sim::Rng; all time from
//                  Simulator::now().
//
//   unordered-iter range-for over a std::unordered_* in a file that also
//                  schedules events, allocates span ids, or writes traces —
//                  hash-order traversal feeding the scheduler makes event
//                  order depend on the hash seed / load factors.
//
//   pointer-key    std::map/std::set keyed on a pointer type: iteration
//                  order is allocation-address order, which ASLR
//                  randomizes.

#include <cctype>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/passes.h"
#include "lint/text.h"

namespace ppsim::lint {

namespace {

constexpr std::string_view kPass = "determinism";

bool in_core_dirs(const SourceFile& f) {
  return f.module == "sim" || f.module == "proto" || f.module == "net" ||
         f.module == "faults" || f.module == "obs";
}

/// Collects identifiers declared with an unordered container type, e.g.
///   std::unordered_map<IpAddress, Neighbor> neighbors_;
/// Declarations from headers feed iteration checks in their .cc files, so
/// the registry is global across the scanned tree.
void collect_unordered_decls(const std::string& text,
                             std::set<std::string>* registry) {
  static const std::string_view kTypes[] = {"unordered_map", "unordered_set",
                                            "unordered_multimap",
                                            "unordered_multiset"};
  for (const auto type : kTypes) {
    std::size_t pos = 0;
    while ((pos = text.find(type, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += type.size();
      if (!word_match(text, start, type)) continue;
      std::size_t i = skip_ws(text, pos);
      if (i >= text.size() || text[i] != '<') continue;
      i = match_angle(text, i);
      if (i == std::string::npos) continue;
      i = skip_ws(text, i);
      // Declarator: identifier, possibly preceded by &/* (references to
      // unordered containers count too — iteration is equally unordered).
      while (i < text.size() && (text[i] == '&' || text[i] == '*'))
        i = skip_ws(text, i + 1);
      std::size_t end = i;
      while (end < text.size() && is_ident_char(text[end])) ++end;
      if (end > i) {
        // Function names register too — iterating over a call result is
        // just as hash-ordered as iterating the member itself.
        registry->insert(text.substr(i, end - i));
      }
    }
  }
}

void check_wall_clock(const SourceFile& f, std::vector<Finding>* findings) {
  if (!in_core_dirs(f)) return;
  static const std::string_view kBanned[] = {
      "std::rand",
      "srand",
      "time(nullptr)",
      "time(NULL)",
      "std::time",
      "system_clock",
      "high_resolution_clock",
      "steady_clock",
      "random_device",
      "gettimeofday",
      "clock_gettime",
      "getrandom",
  };
  for (const auto tok : kBanned) {
    std::size_t pos = 0;
    while ((pos = f.stripped.find(tok, pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += tok.size();
      if (!word_match(f.stripped, at, tok)) continue;
      findings->push_back(Finding{
          std::string(kPass), f.rel, line_of(f.stripped, at), "wall-clock",
          std::string(tok),
          "wall-clock / ambient randomness source; use sim::Rng and "
          "Simulator::now()"});
    }
  }
  // Unqualified rand( — matched separately so `rand` inside identifiers
  // like `operand` stays quiet.
  std::size_t pos = 0;
  while ((pos = f.stripped.find("rand", pos)) != std::string::npos) {
    const std::size_t at = pos;
    pos += 4;
    if (at > 0 &&
        (is_ident_char(f.stripped[at - 1]) || f.stripped[at - 1] == ':'))
      continue;
    std::size_t i = skip_ws(f.stripped, at + 4);
    if (i < f.stripped.size() && f.stripped[i] == '(') {
      findings->push_back(Finding{std::string(kPass), f.rel,
                                  line_of(f.stripped, at), "wall-clock",
                                  "rand(", "libc rand(); use sim::Rng"});
    }
  }
}

void check_unordered_iteration(const SourceFile& f,
                               const std::set<std::string>& registry,
                               std::vector<Finding>* findings) {
  // Only files that schedule events, allocate span ids, or emit to a trace
  // sink can convert hash order into event/span/serialization order; pure
  // data-analysis code may iterate however it likes.
  if (f.stripped.find("schedule") == std::string::npos &&
      f.stripped.find("allocate_span_id") == std::string::npos &&
      f.stripped.find("TraceSink") == std::string::npos)
    return;
  std::size_t pos = 0;
  while ((pos = f.stripped.find("for", pos)) != std::string::npos) {
    const std::size_t at = pos;
    pos += 3;
    if (!word_match(f.stripped, at, "for")) continue;
    std::size_t i = skip_ws(f.stripped, at + 3);
    if (i >= f.stripped.size() || f.stripped[i] != '(') continue;
    // Find the range-for colon at paren depth 1 (ignore `::`).
    int depth = 0;
    std::size_t colon = std::string::npos;
    std::size_t close = std::string::npos;
    for (std::size_t j = i; j < f.stripped.size(); ++j) {
      const char c = f.stripped[j];
      if (c == '(') ++depth;
      else if (c == ')') {
        if (--depth == 0) {
          close = j;
          break;
        }
      } else if (c == ':' && depth == 1) {
        const bool dbl =
            (j + 1 < f.stripped.size() && f.stripped[j + 1] == ':') ||
            (j > 0 && f.stripped[j - 1] == ':');
        if (!dbl) colon = j;
      } else if (c == ';' && depth == 1) {
        break;  // classic for(;;), not a range-for
      }
    }
    if (colon == std::string::npos || close == std::string::npos) continue;
    std::string range = f.stripped.substr(colon + 1, close - colon - 1);
    // Trailing identifier of the range expression: catches `neighbors_`,
    // `this->neighbors_`, `peer.neighbors_`; calls like `excluded_targets()`
    // end with ')', so strip one call-paren pair first.
    while (!range.empty() &&
           std::isspace(static_cast<unsigned char>(range.back())))
      range.pop_back();
    if (!range.empty() && range.back() == ')') {
      const std::size_t open = range.rfind('(');
      if (open != std::string::npos) range.erase(open);
    }
    std::size_t end = range.size();
    while (end > 0 && is_ident_char(range[end - 1])) --end;
    const std::string ident = range.substr(end);
    if (ident.empty()) continue;
    if (registry.contains(ident)) {
      findings->push_back(Finding{
          std::string(kPass), f.rel, line_of(f.stripped, at),
          "unordered-iter", ident,
          "range-for over an unordered container in a file that schedules "
          "events; iterate a deterministically ordered copy (std::map / "
          "sorted keys) instead"});
    }
  }
}

void check_pointer_keys(const SourceFile& f, std::vector<Finding>* findings) {
  static const std::string_view kTypes[] = {"std::map", "std::set",
                                            "std::multimap", "std::multiset"};
  for (const auto type : kTypes) {
    std::size_t pos = 0;
    while ((pos = f.stripped.find(type, pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += type.size();
      if (at > 0 && is_ident_char(f.stripped[at - 1])) continue;
      std::size_t i = skip_ws(f.stripped, pos);
      if (i >= f.stripped.size() || f.stripped[i] != '<') continue;
      // First template argument: up to a ',' or the matching '>' at depth 1.
      int depth = 0;
      std::size_t key_end = std::string::npos;
      for (std::size_t j = i; j < f.stripped.size(); ++j) {
        const char c = f.stripped[j];
        if (c == '<') ++depth;
        else if (c == '>') {
          if (--depth == 0) {
            key_end = j;
            break;
          }
        } else if (c == ',' && depth == 1) {
          key_end = j;
          break;
        } else if (c == ';' && depth == 0) {
          break;
        }
      }
      if (key_end == std::string::npos) continue;
      std::string key = f.stripped.substr(i + 1, key_end - i - 1);
      while (!key.empty() &&
             std::isspace(static_cast<unsigned char>(key.back())))
        key.pop_back();
      if (!key.empty() && key.back() == '*') {
        findings->push_back(Finding{
            std::string(kPass), f.rel, line_of(f.stripped, at), "pointer-key",
            std::string(type) + "<" + key + ">",
            "ordered container keyed on a pointer: iteration order is "
            "allocation order, which ASLR randomizes; key on a stable id"});
      }
    }
  }
}

}  // namespace

void pass_determinism(const Tree& tree, std::vector<Finding>* findings) {
  std::set<std::string> unordered_idents;
  for (const SourceFile& f : tree.files)
    collect_unordered_decls(f.stripped, &unordered_idents);
  for (const SourceFile& f : tree.files) {
    check_wall_clock(f, findings);
    check_unordered_iteration(f, unordered_idents, findings);
    check_pointer_keys(f, findings);
  }
}

}  // namespace ppsim::lint
