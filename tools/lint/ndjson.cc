#include "lint/ndjson.h"

#include <cctype>
#include <cstdio>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

namespace ppsim::lint {

namespace {

// Self-contained JSON string escaping; the lint tool deliberately does not
// link src/obs (the tools layer audits src, it must not depend on it).
void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Minimal parser for the flat one-line objects this schema emits: string,
/// integer, boolean, and array-of-string values only.
struct LineObject {
  std::map<std::string, std::string> strings;
  std::map<std::string, std::int64_t> ints;
  std::map<std::string, bool> bools;
  std::map<std::string, std::vector<std::string>> string_arrays;
};

bool parse_json_string(const std::string& s, std::size_t* i,
                       std::string* out) {
  if (*i >= s.size() || s[*i] != '"') return false;
  ++*i;
  out->clear();
  while (*i < s.size() && s[*i] != '"') {
    char c = s[*i];
    if (c == '\\') {
      ++*i;
      if (*i >= s.size()) return false;
      switch (s[*i]) {
        case 'n': *out += '\n'; break;
        case 't': *out += '\t'; break;
        case 'r': *out += '\r'; break;
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'u': {
          if (*i + 4 >= s.size()) return false;
          unsigned v = 0;
          for (int k = 1; k <= 4; ++k) {
            const char h = s[*i + k];
            v <<= 4;
            if (h >= '0' && h <= '9') v |= h - '0';
            else if (h >= 'a' && h <= 'f') v |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') v |= h - 'A' + 10;
            else return false;
          }
          // The writer only emits \u00xx control escapes.
          *out += static_cast<char>(v & 0xFF);
          *i += 4;
          break;
        }
        default: return false;
      }
    } else {
      *out += c;
    }
    ++*i;
  }
  if (*i >= s.size()) return false;
  ++*i;  // closing quote
  return true;
}

bool parse_line_object(const std::string& line, LineObject* obj) {
  std::size_t i = 0;
  auto ws = [&] { while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i; };
  ws();
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  ws();
  if (i < line.size() && line[i] == '}') return true;
  while (true) {
    ws();
    std::string key;
    if (!parse_json_string(line, &i, &key)) return false;
    ws();
    if (i >= line.size() || line[i] != ':') return false;
    ++i;
    ws();
    if (i >= line.size()) return false;
    if (line[i] == '"') {
      std::string v;
      if (!parse_json_string(line, &i, &v)) return false;
      obj->strings[key] = std::move(v);
    } else if (line[i] == '[') {
      ++i;
      std::vector<std::string> arr;
      ws();
      if (i < line.size() && line[i] == ']') {
        ++i;
      } else {
        while (true) {
          ws();
          std::string v;
          if (!parse_json_string(line, &i, &v)) return false;
          arr.push_back(std::move(v));
          ws();
          if (i < line.size() && line[i] == ',') { ++i; continue; }
          if (i < line.size() && line[i] == ']') { ++i; break; }
          return false;
        }
      }
      obj->string_arrays[key] = std::move(arr);
    } else if (line.compare(i, 4, "true") == 0) {
      obj->bools[key] = true;
      i += 4;
    } else if (line.compare(i, 5, "false") == 0) {
      obj->bools[key] = false;
      i += 5;
    } else {
      std::size_t j = i;
      if (j < line.size() && line[j] == '-') ++j;
      std::size_t digits = j;
      while (j < line.size() && std::isdigit(static_cast<unsigned char>(line[j]))) ++j;
      if (j == digits) return false;
      obj->ints[key] = std::stoll(line.substr(i, j - i));
      i = j;
    }
    ws();
    if (i < line.size() && line[i] == ',') { ++i; continue; }
    if (i < line.size() && line[i] == '}') break;
    return false;
  }
  return true;
}

}  // namespace

void write_lint_ndjson(std::ostream& os, const LintRun& run) {
  os << "{\"lint_schema\":";
  write_escaped(os, kLintSchema);
  os << ",\"root\":";
  write_escaped(os, run.root);
  os << ",\"passes\":[";
  for (std::size_t i = 0; i < run.passes.size(); ++i) {
    if (i) os << ',';
    write_escaped(os, run.passes[i]);
  }
  os << "]}\n";
  for (const Finding& f : run.findings) {
    os << "{\"pass\":";
    write_escaped(os, f.pass);
    os << ",\"file\":";
    write_escaped(os, f.file);
    os << ",\"line\":" << f.line << ",\"check\":";
    write_escaped(os, f.check);
    os << ",\"token\":";
    write_escaped(os, f.token);
    os << ",\"detail\":";
    write_escaped(os, f.detail);
    os << ",\"allowlisted\":" << (f.allowlisted ? "true" : "false") << "}\n";
  }
  const LintSummary& s = run.summary;
  os << "{\"files_scanned\":" << s.files_scanned << ",\"findings\":"
     << s.findings << ",\"reported\":" << s.reported << ",\"allowlisted\":"
     << s.allowlisted << ",\"stale\":" << s.stale << "}\n";
}

bool read_lint_ndjson(std::istream& is, LintRun* run, std::string* error) {
  std::string line;
  int lineno = 0;
  bool saw_header = false;
  bool saw_summary = false;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    LineObject obj;
    if (!parse_line_object(line, &obj)) {
      *error = "line " + std::to_string(lineno) + ": malformed JSON object";
      return false;
    }
    if (!saw_header) {
      const auto it = obj.strings.find("lint_schema");
      if (it == obj.strings.end() || it->second != kLintSchema) {
        *error = "line 1: missing or unknown lint_schema (want ppsim-lint-v1)";
        return false;
      }
      run->root = obj.strings["root"];
      run->passes = obj.string_arrays["passes"];
      saw_header = true;
      continue;
    }
    if (obj.strings.contains("pass")) {
      Finding f;
      f.pass = obj.strings["pass"];
      f.file = obj.strings["file"];
      f.line = static_cast<int>(obj.ints["line"]);
      f.check = obj.strings["check"];
      f.token = obj.strings["token"];
      f.detail = obj.strings["detail"];
      f.allowlisted = obj.bools["allowlisted"];
      run->findings.push_back(std::move(f));
      continue;
    }
    if (obj.ints.contains("files_scanned")) {
      run->summary.files_scanned =
          static_cast<std::uint64_t>(obj.ints["files_scanned"]);
      run->summary.findings = static_cast<std::uint64_t>(obj.ints["findings"]);
      run->summary.reported = static_cast<std::uint64_t>(obj.ints["reported"]);
      run->summary.allowlisted =
          static_cast<std::uint64_t>(obj.ints["allowlisted"]);
      run->summary.stale = static_cast<std::uint64_t>(obj.ints["stale"]);
      saw_summary = true;
      continue;
    }
    *error = "line " + std::to_string(lineno) + ": unrecognized row";
    return false;
  }
  if (!saw_header) {
    *error = "empty stream (no ppsim-lint-v1 header)";
    return false;
  }
  if (!saw_summary) {
    *error = "truncated stream (no summary row)";
    return false;
  }
  return true;
}

}  // namespace ppsim::lint
