// Pass `shared-state` — inventory of static mutable state across the whole
// tree. ROADMAP item 2 shards peers by ISP across threads; any mutable
// global, non-const static local, or static mutable data member is shared
// by every shard and would turn into a data race (or, before that, a
// hidden cross-shard coupling that silently breaks same-seed determinism).
// The inventory must be empty or explicitly rationale-allowlisted.
//
//   mutable-global  namespace-scope variable definition/declaration that is
//                   not const/constexpr (extern and constinit count: both
//                   name mutable storage).
//
//   static-local    function-scope `static`/`thread_local` without const —
//                   hidden cross-call, cross-peer state.
//
//   static-member   class-scope `static` data member without const.
//
// Heuristic scanner, not a compiler: it works off the scope classifier in
// text.h. Known accepted blind spots: `struct Foo bar() {` heads, and
// const-after-type declarators (`int* const p`), all absent from this
// codebase's style.

#include <cctype>
#include <string>
#include <string_view>
#include <vector>

#include "lint/passes.h"
#include "lint/text.h"

namespace ppsim::lint {

namespace {

constexpr std::string_view kPass = "shared-state";

/// Last identifier of a declaration head, ignoring array suffixes — the
/// declared name in `std::uint64_t hits[4]` or `Foo bar`.
std::string declarator_of(std::string head) {
  const std::size_t bracket = head.find('[');
  if (bracket != std::string::npos) head.erase(bracket);
  std::size_t end = head.size();
  while (end > 0 && std::isspace(static_cast<unsigned char>(head[end - 1])))
    --end;
  std::size_t begin = end;
  while (begin > 0 && is_ident_char(head[begin - 1])) --begin;
  return head.substr(begin, end - begin);
}

bool is_immutable_decl(const std::string& head) {
  // `constinit` deliberately excluded: it pins initialization order of a
  // *mutable* global. word_match keeps `const` from matching inside it.
  return contains_word(head, "const") || contains_word(head, "constexpr") ||
         contains_word(head, "consteval");
}

/// Scans namespace-scope statements for mutable variable definitions.
void check_globals(const SourceFile& f, const std::string& text,
                   const std::vector<ScopeKind>& scopes,
                   std::vector<Finding>* findings) {
  static const std::string_view kSkipLead[] = {
      "namespace", "using",  "typedef", "template",      "friend",
      "class",     "struct", "union",   "enum",          "static_assert",
      "public",    "private", "protected", "concept",    "requires"};
  std::size_t i = 0;
  while (i < text.size()) {
    i = skip_ws(text, i);
    if (i >= text.size()) break;
    if (scopes[i] != ScopeKind::kNamespace || text[i] == '}' ||
        text[i] == '{' || text[i] == ';') {
      ++i;
      continue;
    }
    // Statement head: up to the first `;` or `{` at this nesting level
    // (template args and parens skipped so `map<int, int> x;` stays one
    // statement).
    const std::size_t start = i;
    int angle = 0;
    int paren = 0;
    std::size_t end = std::string::npos;
    char terminator = '\0';
    for (std::size_t j = start; j < text.size(); ++j) {
      const char c = text[j];
      if (c == '<') ++angle;
      else if (c == '>') { if (angle > 0) --angle; }
      else if (c == '(') ++paren;
      else if (c == ')') { if (paren > 0) --paren; }
      else if ((c == ';' || c == '{') && angle == 0 && paren == 0) {
        end = j;
        terminator = c;
        break;
      } else if (c == '}') {
        end = j;
        terminator = c;
        break;
      }
    }
    if (end == std::string::npos) break;
    const std::string head = text.substr(start, end - start);
    i = end + 1;
    // Heads that open namespaces/types/functions or alias types are not
    // variable declarations.
    bool skip = head.empty();
    for (const auto lead : kSkipLead)
      if (!skip && contains_word(head, lead)) skip = true;
    if (!skip && contains_word(head, "operator")) skip = true;
    if (!skip && is_immutable_decl(head)) skip = true;
    if (!skip) {
      // A parenthesis before any `=` means a function declaration or
      // definition (`int f()`, `Foo g(int) {`); after `=` it is an
      // initializer call (`int x = f();`) and still a variable.
      const std::size_t eq = head.find('=');
      const std::size_t paren_at = head.find('(');
      if (paren_at != std::string::npos &&
          (eq == std::string::npos || paren_at < eq))
        skip = true;
    }
    if (skip) {
      // Definitions (terminator `{`) still contain declarations inside;
      // the outer while-loop keeps scanning inside them because statement
      // scanning restarts after the `{`.
      continue;
    }
    if (terminator == '}') continue;
    std::string decl = head;
    const std::size_t eq = decl.find('=');
    if (eq != std::string::npos) decl.erase(eq);
    const std::string name = declarator_of(decl);
    if (name.empty()) continue;
    findings->push_back(Finding{
        std::string(kPass), f.rel, line_of(text, start), "mutable-global",
        name,
        "namespace-scope mutable variable: shared by every future "
        "execution shard; make it const/constexpr, or move it into the "
        "simulation state that is explicitly per-run"});
  }
}

/// Scans `static` / `thread_local` keywords at function and class scope.
void check_statics(const SourceFile& f, const std::string& text,
                   const std::vector<ScopeKind>& scopes,
                   std::vector<Finding>* findings) {
  static const std::string_view kKeywords[] = {"static", "thread_local"};
  for (const auto kw : kKeywords) {
    std::size_t pos = 0;
    while ((pos = text.find(kw, pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += kw.size();
      if (!word_match(text, at, kw)) continue;
      const ScopeKind scope = scopes[at];
      if (scope == ScopeKind::kNamespace) continue;  // check_globals' job
      // Declaration head: from the keyword to the first `;`, `=`, `{`, or
      // `(` outside template args. A `(` means a function declaration —
      // static member functions and local helpers hold no state.
      int angle = 0;
      std::size_t end = text.size();
      bool is_function = false;
      for (std::size_t j = at; j < text.size(); ++j) {
        const char c = text[j];
        if (c == '<') ++angle;
        else if (c == '>') { if (angle > 0) --angle; }
        else if (angle == 0 &&
                 (c == ';' || c == '=' || c == '{' || c == '(' || c == '}')) {
          is_function = c == '(';
          end = j;
          break;
        }
      }
      const std::string head = text.substr(at, end - at);
      if (is_function || is_immutable_decl(head)) continue;
      const std::string name = declarator_of(head);
      if (name.empty()) continue;
      if (scope == ScopeKind::kFunction) {
        findings->push_back(Finding{
            std::string(kPass), f.rel, line_of(text, at), "static-local",
            name,
            "non-const function-local static: hidden cross-call shared "
            "state; hoist it into an explicit per-run object or make it "
            "const"});
      } else {
        findings->push_back(Finding{
            std::string(kPass), f.rel, line_of(text, at), "static-member",
            name,
            "non-const static data member: process-wide state shared by "
            "every instance and every future shard; make it per-instance "
            "or const"});
      }
    }
  }
}

}  // namespace

void pass_shared_state(const Tree& tree, std::vector<Finding>* findings) {
  for (const SourceFile& f : tree.files) {
    const std::string text = blank_preprocessor_lines(f.stripped);
    const std::vector<ScopeKind> scopes = scope_map(text);
    check_globals(f, text, scopes, findings);
    check_statics(f, text, scopes, findings);
  }
}

}  // namespace ppsim::lint
