#pragma once

// ppsim-audit — multi-pass static analysis over the simulator source tree.
//
// The simulator's contract is a total, reproducible event order: the same
// seed must yield bit-identical traces on any machine. The roadmap adds two
// more structural contracts on top: no hidden shared mutable state (the
// precondition for ISP-sharded parallel execution) and a strict module DAG
// (the precondition for carving the tree into independently buildable,
// independently schedulable layers). This framework scans the tree for
// violations of all of them, long before a flaky benchmark or a failed
// parallel-refactor would reveal them.
//
// Architecture: a registry of passes (see passes.h / registry in lint.cc),
// each a pure function over an immutable Tree snapshot producing Findings.
// The driver (driver.cc) runs one pass per ctest, applies the sectioned
// allowlist (allowlist.h), and emits human + ppsim-lint-v1 NDJSON reports
// (ndjson.h). docs/TOOLING.md is the operator's manual.

#include <map>
#include <string>
#include <vector>

namespace ppsim::lint {

/// One finding: a location, the check that fired, and the offending token.
/// (pass, file, check, token) identifies a finding across line renumbering;
/// the committed baseline (BASELINE_audit.json) compares that tuple only.
struct Finding {
  std::string pass;
  std::string file;  // path relative to the scan root, generic separators
  int line = 0;
  std::string check;
  std::string token;
  std::string detail;
  bool allowlisted = false;

  friend bool operator==(const Finding&, const Finding&) = default;
};

/// One scanned source file. `stripped` has comments and string/char
/// literals blanked with line structure preserved (see text.h), so checks
/// never fire on prose; `raw` is kept for the checks that must see string
/// literals and #include paths (layering, completeness).
struct SourceFile {
  std::string rel;     // e.g. "sim/simulator.cc"
  std::string module;  // first path component, e.g. "sim"
  std::string raw;
  std::string stripped;
};

/// Immutable snapshot of everything the passes may look at: the source
/// tree plus the docs the completeness pass cross-checks against.
struct Tree {
  std::string root;       // canonical scan root
  std::string docs_root;  // may be empty: doc cross-checks are skipped
  std::vector<SourceFile> files;            // sorted by rel
  std::map<std::string, std::string> docs;  // filename -> raw text
};

using PassFn = void (*)(const Tree&, std::vector<Finding>*);

struct PassInfo {
  std::string name;     // e.g. "shared-state"; also the allowlist section
  std::string summary;  // one line for --list-passes and docs
  PassFn fn;
};

/// The pass registry, in execution/report order.
const std::vector<PassInfo>& passes();

/// Loads .h/.hpp/.cc/.cpp files under `root` (sorted by relative path) and
/// PROTOCOL.md under `docs_root` when given. Returns false and sets *error
/// on an unreadable root.
bool load_tree(const std::string& root, const std::string& docs_root,
               Tree* tree, std::string* error);

/// Runs the named passes (all registered passes when `names` is empty) and
/// returns their findings sorted by (pass, file, line, check, token).
/// Unknown names are reported through *error and skipped.
std::vector<Finding> run_passes(const Tree& tree,
                                const std::vector<std::string>& names,
                                std::string* error);

}  // namespace ppsim::lint
