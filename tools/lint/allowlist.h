#pragma once

// Sectioned allowlist for the lint passes.
//
// Format (tools/lint/allowlist.txt):
//
//   # comment
//   [pass-name]
//   path-suffix:check:token     # rationale
//
// `[pass-name]` opens the section for one registered pass; entries apply
// only to findings of that pass. `check` may be `*`; `token` is matched as
// a substring, `*` matches anything. Every entry must sit inside a section,
// and every entry must still match at least one finding each run — a stale
// entry (the hazard it excused is gone) is itself reported as a
// `stale-allowlist` finding, so the file can only shrink as code improves.

#include <iosfwd>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace ppsim::lint {

struct AllowEntry {
  std::string pass;  // section the entry appeared under
  std::string path_suffix;
  std::string check;  // "*" matches any
  std::string token;  // "*" matches any; else substring match
  int line = 0;       // line in the allowlist file, for stale reporting
};

struct Allowlist {
  std::vector<AllowEntry> entries;
};

/// Parses the sectioned format. Returns false and sets *error on a
/// malformed line or an entry outside any section.
bool parse_allowlist(std::istream& in, Allowlist* out, std::string* error);
bool load_allowlist(const std::string& path, Allowlist* out,
                    std::string* error);

/// Marks findings matched by an entry of their own pass's section as
/// allowlisted, then appends one `stale-allowlist` finding per entry (in a
/// section of `passes_run`) that matched nothing. Stale findings carry
/// pass = the section name, file = `allowlist_name`, line = entry line.
void apply_allowlist(const Allowlist& allow,
                     const std::vector<std::string>& passes_run,
                     const std::string& allowlist_name,
                     std::vector<Finding>* findings);

}  // namespace ppsim::lint
