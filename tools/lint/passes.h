#pragma once

// Forward declarations of the registered passes. To add a pass: write
// pass_<name>.cc exposing one of these functions, declare it here, append
// a PassInfo row to the registry in lint.cc, add the ctest in
// tools/lint/CMakeLists.txt, and document it in docs/TOOLING.md. The
// fixture self-tests (tests/tools_lint_test.cc) should grow a known-bad
// fixture for every check the pass can emit.

#include <vector>

#include "lint/lint.h"

namespace ppsim::lint {

/// wall-clock / unordered-iter / pointer-key: the original determinism
/// hazards — ambient entropy, hash-order iteration feeding the scheduler,
/// pointer-keyed ordered containers.
void pass_determinism(const Tree& tree, std::vector<Finding>* findings);

/// mutable-global / static-local / static-member: inventory of every piece
/// of static mutable state. Must be empty (or rationale-allowlisted): this
/// is the precondition for ISP-sharded parallel execution.
void pass_shared_state(const Tree& tree, std::vector<Finding>* findings);

/// illegal-include / unknown-module / layer-cycle: enforces the declared
/// module DAG over the #include graph.
void pass_layering(const Tree& tree, std::vector<Finding>* findings);

/// float-accum: floating-point accumulation inside iteration loops in the
/// scheduler/protocol/network hot paths — results change under the
/// reordering that parallel reduction will introduce.
void pass_float_order(const Tree& tree, std::vector<Finding>* findings);

/// variant-membership / span-member / wire-size-visitor / name-visitor /
/// trace-io-write / trace-io-parse / span-doc / span-stamp / drop-counter /
/// wire-tag / wire-encode / wire-decode / wire-doc / resource-gauge-doc:
/// cross-checks the proto/message.h variant against every per-message-type
/// table so a new message type cannot silently skip one — including the
/// wire codec's Tag enum, encode/decode branches and docs/WIRE.md packet
/// table — and the ResourceProbe gauge list against its docs table.
void pass_completeness(const Tree& tree, std::vector<Finding>* findings);

}  // namespace ppsim::lint
