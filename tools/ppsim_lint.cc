// ppsim_lint — static determinism linter for the simulator source tree.
//
// The simulator's contract is a total, reproducible event order: the same
// seed must yield bit-identical traces (see src/sim/simulator.h and
// tests/sim_determinism_test.cc for the runtime half of this guarantee).
// This tool scans the tree for code patterns that silently break that
// contract long before a flaky benchmark would reveal them:
//
//   wall-clock   std::rand/srand, time(nullptr), std::chrono::system_clock,
//                std::random_device, gettimeofday, ... inside src/sim,
//                src/proto, or src/net. All randomness must flow from
//                sim::Rng; all time from Simulator::now().
//
//   unordered-iter   range-for over a std::unordered_map/unordered_set in a
//                file that also calls schedule( — hash-order traversal
//                feeding the scheduler makes event order depend on the
//                standard library's hash seed / load factors.
//
//   pointer-key  std::map/std::set keyed on a pointer type: iteration order
//                is allocation-address order, which ASLR randomizes.
//
// Findings can be suppressed through an allowlist file (one entry per
// line, `path-suffix:check:token`, `*` wildcards the token). Exit status is
// 0 when every finding is allowlisted, 1 otherwise — the build registers
// this as the `determinism_lint` ctest.
//
// Usage: ppsim_lint <source-root> [--allowlist <file>] [--verbose]

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;   // path relative to the scan root
  int line = 0;
  std::string check;  // "wall-clock", "unordered-iter", "pointer-key"
  std::string token;  // the offending identifier / call
  std::string detail;
};

struct AllowEntry {
  std::string path_suffix;
  std::string check;
  std::string token;  // "*" matches any
};

/// Replaces comments and string/char literals with spaces, preserving line
/// structure so reported line numbers stay exact.
std::string strip_comments_and_strings(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State st = State::kCode;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (st) {
      case State::kCode:
        if (c == '/' && next == '/') {
          st = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          st = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == '"') {
          st = State::kString;
          out += ' ';
        } else if (c == '\'') {
          st = State::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          st = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          st = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out += "  ";
          ++i;
          if (i < in.size() && in[i] == '\n') out.back() = '\n';
        } else if (c == '"') {
          st = State::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          st = State::kCode;
          out += ' ';
        } else {
          out += ' ';
        }
        break;
    }
  }
  return out;
}

int line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<int>(std::count(text.begin(), text.begin() +
                                             static_cast<std::ptrdiff_t>(pos),
                                         '\n'));
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// True when text[pos..pos+needle) sits on identifier boundaries (so
/// `rand` does not match inside `grand` or `randomize`).
bool word_match(const std::string& text, std::size_t pos,
                std::string_view needle) {
  if (pos > 0 && is_ident_char(text[pos - 1])) return false;
  const std::size_t end = pos + needle.size();
  if (!needle.empty() && is_ident_char(needle.back()) && end < text.size() &&
      is_ident_char(text[end]))
    return false;
  return true;
}

std::size_t skip_ws(const std::string& s, std::size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return i;
}

/// Parses a balanced template argument list starting at the '<' in `pos`;
/// returns the position one past the matching '>'. npos on imbalance.
std::size_t match_angle(const std::string& s, std::size_t pos) {
  int depth = 0;
  for (std::size_t i = pos; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    else if (s[i] == '>') {
      if (--depth == 0) return i + 1;
    } else if (s[i] == ';' && depth == 0) {
      return std::string::npos;
    }
  }
  return std::string::npos;
}

/// Collects identifiers declared with an unordered container type, e.g.
///   std::unordered_map<IpAddress, Neighbor> neighbors_;
/// Declarations from headers feed iteration checks in their .cc files, so
/// the registry is global across the scanned tree.
void collect_unordered_decls(const std::string& text,
                             std::set<std::string>* registry) {
  static const std::string_view kTypes[] = {"unordered_map", "unordered_set",
                                            "unordered_multimap",
                                            "unordered_multiset"};
  for (const auto type : kTypes) {
    std::size_t pos = 0;
    while ((pos = text.find(type, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += type.size();
      if (!word_match(text, start, type)) continue;
      std::size_t i = skip_ws(text, pos);
      if (i >= text.size() || text[i] != '<') continue;
      i = match_angle(text, i);
      if (i == std::string::npos) continue;
      i = skip_ws(text, i);
      // Declarator: identifier, possibly preceded by &/* (references to
      // unordered containers count too — iteration is equally unordered).
      while (i < text.size() && (text[i] == '&' || text[i] == '*'))
        i = skip_ws(text, i + 1);
      std::size_t end = i;
      while (end < text.size() && is_ident_char(text[end])) ++end;
      if (end > i) {
        // Skip type-alias heads (`using Foo = std::unordered_map<...>` has
        // no declarator after the template args) and function return types
        // (`unordered_set<T> excluded_targets() const`): a '(' right after
        // the identifier means it's a function name, which we register
        // anyway — iterating over a call result is just as hash-ordered.
        registry->insert(text.substr(i, end - i));
      }
    }
  }
}

struct FileText {
  fs::path path;
  std::string rel;
  std::string stripped;
};

bool in_core_dirs(const std::string& rel) {
  return rel.starts_with("sim/") || rel.starts_with("proto/") ||
         rel.starts_with("net/") || rel.starts_with("faults/") ||
         rel.starts_with("obs/");
}

void check_wall_clock(const FileText& f, std::vector<Finding>* findings) {
  if (!in_core_dirs(f.rel)) return;
  static const std::string_view kBanned[] = {
      "std::rand",
      "srand",
      "time(nullptr)",
      "time(NULL)",
      "std::time",
      "system_clock",
      "high_resolution_clock",
      "steady_clock",
      "random_device",
      "gettimeofday",
      "clock_gettime",
      "getrandom",
  };
  for (const auto tok : kBanned) {
    std::size_t pos = 0;
    while ((pos = f.stripped.find(tok, pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += tok.size();
      if (!word_match(f.stripped, at, tok)) continue;
      // `rand(`-style call of the unqualified C function.
      findings->push_back(Finding{
          f.rel, line_of(f.stripped, at), "wall-clock", std::string(tok),
          "wall-clock / ambient randomness source; use sim::Rng and "
          "Simulator::now()"});
    }
  }
  // Unqualified rand( — matched separately so `rand` inside identifiers
  // like `operand` stays quiet.
  std::size_t pos = 0;
  while ((pos = f.stripped.find("rand", pos)) != std::string::npos) {
    const std::size_t at = pos;
    pos += 4;
    if (at > 0 && (is_ident_char(f.stripped[at - 1]) ||
                   f.stripped[at - 1] == ':'))
      continue;
    std::size_t i = skip_ws(f.stripped, at + 4);
    if (i < f.stripped.size() && f.stripped[i] == '(') {
      findings->push_back(Finding{f.rel, line_of(f.stripped, at),
                                  "wall-clock", "rand(",
                                  "libc rand(); use sim::Rng"});
    }
  }
}

void check_unordered_iteration(const FileText& f,
                               const std::set<std::string>& registry,
                               std::vector<Finding>* findings) {
  // Only files that schedule events, allocate span ids, or emit to a trace
  // sink can convert hash order into event/span/serialization order; pure
  // data-analysis code may iterate however it likes.
  if (f.stripped.find("schedule") == std::string::npos &&
      f.stripped.find("allocate_span_id") == std::string::npos &&
      f.stripped.find("TraceSink") == std::string::npos)
    return;
  std::size_t pos = 0;
  while ((pos = f.stripped.find("for", pos)) != std::string::npos) {
    const std::size_t at = pos;
    pos += 3;
    if (!word_match(f.stripped, at, "for")) continue;
    if (at > 0 && is_ident_char(f.stripped[at - 1])) continue;
    std::size_t i = skip_ws(f.stripped, at + 3);
    if (i >= f.stripped.size() || f.stripped[i] != '(') continue;
    // Find the range-for colon at paren depth 1 (ignore `::`).
    int depth = 0;
    std::size_t colon = std::string::npos;
    std::size_t close = std::string::npos;
    for (std::size_t j = i; j < f.stripped.size(); ++j) {
      const char c = f.stripped[j];
      if (c == '(') ++depth;
      else if (c == ')') {
        if (--depth == 0) {
          close = j;
          break;
        }
      } else if (c == ':' && depth == 1) {
        const bool dbl = (j + 1 < f.stripped.size() &&
                          f.stripped[j + 1] == ':') ||
                         (j > 0 && f.stripped[j - 1] == ':');
        if (!dbl) colon = j;
      } else if (c == ';' && depth == 1) {
        break;  // classic for(;;), not a range-for
      }
    }
    if (colon == std::string::npos || close == std::string::npos) continue;
    std::string range = f.stripped.substr(colon + 1, close - colon - 1);
    // Trailing identifier of the range expression: catches `neighbors_`,
    // `this->neighbors_`, `peer.neighbors_`; calls like `excluded_targets()`
    // end with ')', so strip one call-paren pair first.
    while (!range.empty() &&
           std::isspace(static_cast<unsigned char>(range.back())))
      range.pop_back();
    if (!range.empty() && range.back() == ')') {
      const std::size_t open = range.rfind('(');
      if (open != std::string::npos) range.erase(open);
    }
    std::size_t end = range.size();
    while (end > 0 && is_ident_char(range[end - 1])) --end;
    const std::string ident = range.substr(end);
    if (ident.empty()) continue;
    if (registry.contains(ident)) {
      findings->push_back(Finding{
          f.rel, line_of(f.stripped, at), "unordered-iter", ident,
          "range-for over an unordered container in a file that schedules "
          "events; iterate a deterministically ordered copy (std::map / "
          "sorted keys) instead"});
    }
  }
}

void check_pointer_keys(const FileText& f, std::vector<Finding>* findings) {
  static const std::string_view kTypes[] = {"std::map", "std::set",
                                            "std::multimap", "std::multiset"};
  for (const auto type : kTypes) {
    std::size_t pos = 0;
    while ((pos = f.stripped.find(type, pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += type.size();
      if (at > 0 && is_ident_char(f.stripped[at - 1])) continue;
      std::size_t i = skip_ws(f.stripped, pos);
      if (i >= f.stripped.size() || f.stripped[i] != '<') continue;
      // First template argument: up to a ',' or the matching '>' at depth 1.
      int depth = 0;
      std::size_t key_end = std::string::npos;
      for (std::size_t j = i; j < f.stripped.size(); ++j) {
        const char c = f.stripped[j];
        if (c == '<') ++depth;
        else if (c == '>') {
          if (--depth == 0) {
            key_end = j;
            break;
          }
        } else if (c == ',' && depth == 1) {
          key_end = j;
          break;
        } else if (c == ';' && depth == 0) {
          break;
        }
      }
      if (key_end == std::string::npos) continue;
      std::string key = f.stripped.substr(i + 1, key_end - i - 1);
      while (!key.empty() &&
             std::isspace(static_cast<unsigned char>(key.back())))
        key.pop_back();
      if (!key.empty() && key.back() == '*') {
        findings->push_back(Finding{
            f.rel, line_of(f.stripped, at), "pointer-key",
            std::string(type) + "<" + key + ">",
            "ordered container keyed on a pointer: iteration order is "
            "allocation order, which ASLR randomizes; key on a stable id"});
      }
    }
  }
}

std::vector<AllowEntry> load_allowlist(const std::string& path) {
  std::vector<AllowEntry> entries;
  std::ifstream in(path);
  if (!in) {
    std::cerr << "ppsim_lint: warning: allowlist not readable: " << path
              << "\n";
    return entries;
  }
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    // Trim.
    auto issp = [](unsigned char c) { return std::isspace(c); };
    line.erase(line.begin(),
               std::find_if_not(line.begin(), line.end(), issp));
    line.erase(std::find_if_not(line.rbegin(), line.rend(), issp).base(),
               line.end());
    if (line.empty()) continue;
    const std::size_t c1 = line.find(':');
    const std::size_t c2 = c1 == std::string::npos ? std::string::npos
                                                   : line.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos) {
      std::cerr << "ppsim_lint: warning: malformed allowlist entry: " << line
                << "\n";
      continue;
    }
    entries.push_back(AllowEntry{line.substr(0, c1),
                                 line.substr(c1 + 1, c2 - c1 - 1),
                                 line.substr(c2 + 1)});
  }
  return entries;
}

bool allowlisted(const Finding& f, const std::vector<AllowEntry>& allow) {
  return std::any_of(allow.begin(), allow.end(), [&](const AllowEntry& e) {
    if (!f.file.ends_with(e.path_suffix)) return false;
    if (e.check != "*" && e.check != f.check) return false;
    return e.token == "*" || f.token.find(e.token) != std::string::npos;
  });
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string allowlist_path;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--allowlist" && i + 1 < argc) {
      allowlist_path = argv[++i];
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (root.empty()) {
      root = arg;
    } else {
      std::cerr << "usage: ppsim_lint <source-root> [--allowlist <file>] "
                   "[--verbose]\n";
      return 2;
    }
  }
  if (root.empty()) {
    std::cerr << "usage: ppsim_lint <source-root> [--allowlist <file>] "
                 "[--verbose]\n";
    return 2;
  }
  std::error_code ec;
  const fs::path root_path = fs::canonical(root, ec);
  if (ec) {
    std::cerr << "ppsim_lint: cannot open source root: " << root << "\n";
    return 2;
  }

  std::vector<FileText> files;
  for (auto it = fs::recursive_directory_iterator(root_path);
       it != fs::recursive_directory_iterator(); ++it) {
    if (!it->is_regular_file()) continue;
    const fs::path& p = it->path();
    const std::string ext = p.extension().string();
    if (ext != ".h" && ext != ".hpp" && ext != ".cc" && ext != ".cpp")
      continue;
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    files.push_back(FileText{
        p, fs::relative(p, root_path).generic_string(),
        strip_comments_and_strings(ss.str())});
  }
  std::sort(files.begin(), files.end(),
            [](const FileText& a, const FileText& b) { return a.rel < b.rel; });

  // Pass 1: registry of identifiers declared with unordered container types
  // anywhere in the tree (headers feed their .cc files).
  std::set<std::string> unordered_idents;
  for (const auto& f : files) collect_unordered_decls(f.stripped, &unordered_idents);
  if (verbose) {
    std::cerr << "unordered-container identifiers:";
    for (const auto& id : unordered_idents) std::cerr << ' ' << id;
    std::cerr << "\n";
  }

  // Pass 2: per-file checks.
  std::vector<Finding> findings;
  for (const auto& f : files) {
    check_wall_clock(f, &findings);
    check_unordered_iteration(f, unordered_idents, &findings);
    check_pointer_keys(f, &findings);
  }

  const std::vector<AllowEntry> allow =
      allowlist_path.empty() ? std::vector<AllowEntry>{}
                             : load_allowlist(allowlist_path);

  int reported = 0;
  int suppressed = 0;
  for (const auto& f : findings) {
    if (allowlisted(f, allow)) {
      ++suppressed;
      if (verbose)
        std::cerr << "allowlisted: " << f.file << ":" << f.line << " ["
                  << f.check << "] " << f.token << "\n";
      continue;
    }
    ++reported;
    std::cerr << f.file << ":" << f.line << ": [" << f.check << "] "
              << f.token << "\n    " << f.detail << "\n";
  }
  std::cerr << "ppsim_lint: scanned " << files.size() << " files, "
            << reported << " finding(s), " << suppressed
            << " allowlisted\n";
  return reported == 0 ? 0 : 1;
}
