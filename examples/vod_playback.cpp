// On-demand (VoD) playback: PPLive's other streaming service (paper
// Section 2 mentions both; the measurements cover live). A 5-minute
// program is published up front; viewers join at staggered times, each
// playing from the beginning, and later joiners pull the program's prefix
// from earlier joiners instead of the source.

#include <cstdio>

#include "net/latency.h"
#include "net/prefix_alloc.h"
#include "proto/bootstrap.h"
#include "proto/peer.h"
#include "proto/source.h"
#include "proto/tracker.h"
#include "sim/simulator.h"

int main() {
  using namespace ppsim;
  using namespace ppsim::proto;

  sim::Simulator simulator;
  sim::Rng rng(12);
  auto registry = net::IspRegistry::standard_topology();
  net::PrefixAllocator allocator(registry);
  PeerNetwork network(simulator, net::LatencyModel{}, rng.fork(0));

  ChannelSpec channel{9, "vod-movie", 400e3, 1380, 4};
  channel.mode = StreamMode::kVod;
  channel.vod_chunks = 2700;  // ~5 minutes of content

  auto identity = [&](net::IspCategory cat, double up_bps) {
    const auto isps = registry.in_category(cat);
    HostIdentity id{allocator.allocate(isps.front()), isps.front(), cat,
                    net::AccessProfile{50e6, up_bps}};
    return id;
  };

  BootstrapServer bootstrap(simulator, network,
                            identity(net::IspCategory::kTele, 1e9));
  TrackerServer tracker(simulator, network,
                        identity(net::IspCategory::kTele, 1e9), rng.fork(1));
  StreamSource source(simulator, network,
                      identity(net::IspCategory::kTele, 8e6), channel,
                      {tracker.ip()}, rng.fork(2));
  BootstrapServer::ChannelEntry entry;
  entry.channel = channel.id;
  entry.source = source.ip();
  entry.tracker_groups = {{tracker.ip()}};
  bootstrap.register_channel(std::move(entry));
  source.start();

  PeerConfig config;
  config.chunk_retention = 4096;  // VoD viewers keep the whole program

  std::vector<std::unique_ptr<Peer>> viewers;
  for (int i = 0; i < 6; ++i) {
    viewers.push_back(std::make_unique<Peer>(
        simulator, network, identity(net::IspCategory::kTele, 2e6), channel,
        bootstrap.ip(), rng.fork(100 + i), config));
    Peer* p = viewers.back().get();
    simulator.schedule(sim::Time::seconds(40 * i), [p] { p->join(); });
  }

  simulator.run_until(sim::Time::minutes(9));

  std::printf("VoD program: %llu chunks (~%.0f s of content)\n",
              static_cast<unsigned long long>(channel.vod_chunks),
              static_cast<double>(channel.vod_chunks) *
                  channel.chunk_duration().as_seconds());
  std::printf("%-8s %10s %10s %12s %12s\n", "viewer", "join(s)", "played",
              "continuity", "served-reqs");
  for (std::size_t i = 0; i < viewers.size(); ++i) {
    const auto& c = viewers[i]->counters();
    std::printf("%-8zu %10d %10llu %11.1f%% %12llu\n", i + 1,
                static_cast<int>(40 * i),
                static_cast<unsigned long long>(c.chunks_played),
                100.0 * c.continuity(),
                static_cast<unsigned long long>(c.data_requests_served));
  }
  std::printf("source served %llu requests (later viewers lean on earlier "
              "ones for the prefix)\n",
              static_cast<unsigned long long>(source.requests_served()));
  return 0;
}
