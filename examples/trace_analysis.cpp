// Demonstrates the capture + analysis pipeline on its own: attach a
// Wireshark-style sniffer to a probe, run a session, and walk the raw
// trace records before handing them to the analyzer — useful when
// extending the analyzer with new per-packet metrics.

#include <cstdio>
#include <iostream>

#include "capture/analyzer.h"
#include "core/experiment.h"
#include "core/report.h"
#include "workload/scenario.h"

int main() {
  using namespace ppsim;

  core::ExperimentConfig config;
  config.scenario = workload::popular_channel();
  config.scenario.viewers = 120;
  config.scenario.duration = sim::Time::minutes(5);
  config.scenario.seed = 4;
  config.probes = {core::tele_probe()};

  auto result = core::run_experiment(config);
  const auto& probe = result.probes.front();

  // The analyzer's input is exactly what a packet capture would contain;
  // everything below derives from that trace alone.
  std::printf("probe %s (%s)\n", probe.label.c_str(),
              probe.ip.to_string().c_str());
  std::printf("  matched data transmissions: %llu\n",
              static_cast<unsigned long long>(
                  probe.analysis.data_transmissions.total()));
  std::printf("  peer-list exchanges matched: %zu (unanswered: %llu)\n",
              probe.analysis.list_responses.size(),
              static_cast<unsigned long long>(
                  probe.analysis.list_requests_unanswered));
  std::printf("  unique peers listed: %llu, used for data: %llu\n",
              static_cast<unsigned long long>(probe.analysis.unique_listed_ips),
              static_cast<unsigned long long>(
                  probe.analysis.unique_data_peers.total()));

  std::cout << "\nPer-ISP breakdown of the downloaded stream:\n";
  core::print_data_by_isp(std::cout, probe.analysis);

  std::cout << "\nRank/RTT view (Figures 15-18 for this capture):\n";
  core::print_rtt_rank(std::cout, probe.analysis);
  return 0;
}
