// Uses the baseline library to contrast peer-selection strategies on the
// same workload — the discussion of Sections 1 and 4 made runnable: how
// much locality does PPLive's decentralized policy buy compared with
// BitTorrent-style tracker selection, and how close does it get to an
// oracle with full topology knowledge?

#include <cstdio>
#include <iostream>

#include "baseline/policies.h"
#include "core/experiment.h"
#include "workload/scenario.h"

int main() {
  using namespace ppsim;

  std::cout << "Peer-selection strategy comparison (popular channel, "
               "TELE probe)\n\n";
  std::printf("%-20s %12s %14s %12s\n", "strategy", "swarm-loc",
              "crossISP-MB", "continuity");

  for (auto strategy :
       {baseline::Strategy::kPplive, baseline::Strategy::kTrackerOnly,
        baseline::Strategy::kIspBiased, baseline::Strategy::kNoRush}) {
    core::ExperimentConfig config;
    config.scenario = workload::popular_channel();
    config.scenario.viewers = 240;
    config.scenario.duration = sim::Time::minutes(8);
    config.scenario.seed = 9;
    config.probes = {core::tele_probe()};
    config.strategy = strategy;

    auto result = core::run_experiment(config);
    std::printf("%-20s %11.1f%% %14.1f %11.1f%%\n",
                std::string(baseline::to_string(strategy)).c_str(),
                100.0 * result.traffic.locality(),
                static_cast<double>(result.traffic.cross_isp()) / 1e6,
                100.0 * result.swarm.avg_continuity);
  }

  std::cout << "\nPPLive's referral policy recovers much of the oracle's\n"
               "locality without any topology information — the paper's\n"
               "headline observation.\n";
  return 0;
}
