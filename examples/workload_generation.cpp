// The paper notes its workload characterization "provides a basis to
// generate practical P2P streaming workloads for simulation based
// studies". This example is that basis, made executable:
//
//  1. generate a synthetic per-peer request workload following the
//     stretched-exponential model with the paper's fitted parameters
//     (Figure 11(b): c=0.35, a=5.483, n=326);
//  2. verify with the analysis library that the synthetic workload has the
//     paper's statistical fingerprints (SE fit beats Zipf, top-10% share);
//  3. generate a 28-day audience plan with the campaign model.

#include <cstdio>
#include <iostream>

#include "analysis/cdf.h"
#include "analysis/fit.h"
#include "workload/campaign.h"
#include "workload/scenario.h"

int main() {
  using namespace ppsim;

  // --- 1. synthetic request workload, paper Fig 11(b) parameters ---
  const std::size_t n_peers = 326;
  const double c = 0.35, a = 5.483;
  auto requests = analysis::stretched_exponential_series(n_peers, c, a);
  std::printf("synthetic workload: %zu peers, rank-1 peer gets %.0f "
              "requests, rank-%zu gets %.0f\n",
              n_peers, requests.front(), n_peers, requests.back());

  // --- 2. statistical fingerprints ---
  auto se = analysis::fit_stretched_exponential(requests);
  auto zipf = analysis::fit_zipf(requests);
  std::printf("  SE fit:   c=%.2f a=%.3f b=%.3f R2=%.6f\n", se.c, se.a, se.b,
              se.r2);
  std::printf("  Zipf fit: alpha=%.3f R2=%.6f  (SE must beat this)\n",
              zipf.alpha, zipf.r2);
  std::printf("  top 10%% of peers issue %.1f%% of requests (paper: ~73%%)\n",
              100.0 * analysis::top_share(requests, 0.10));

  // --- 3. a 28-day audience plan ---
  workload::CampaignConfig campaign;
  campaign.seed = 1;
  auto days = workload::campaign_scenarios(workload::popular_channel(),
                                           campaign);
  std::printf("\n28-day audience plan for '%s':\n", "popular-live");
  std::printf("  day | viewers | foreign-share\n");
  for (std::size_t d = 0; d < days.size(); d += 7) {
    std::printf("  %3zu | %7d | %6.3f\n", d + 1, days[d].viewers,
                days[d].mix[net::IspCategory::kForeign]);
  }
  std::printf("  (foreign share swings much harder than the audience size —\n"
              "   the driver of the Mason probe's Figure-6 variance)\n");
  return 0;
}
