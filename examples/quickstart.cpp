// Quickstart: run one small traffic-locality experiment and print what a
// probe host in ChinaTelecom observes.
//
// This is the minimal end-to-end use of the library: pick a workload
// scenario, deploy a probe, run, and read the analysis — the same flow the
// figure benches use at larger scale.

#include <iostream>

#include "core/experiment.h"
#include "core/report.h"
#include "workload/scenario.h"

int main() {
  using namespace ppsim;

  core::ExperimentConfig config;
  config.scenario = workload::popular_channel();
  config.scenario.viewers = 150;                       // small & fast
  config.scenario.duration = sim::Time::minutes(8);
  config.scenario.seed = 7;
  config.probes = {core::tele_probe()};

  std::cout << "Running scenario '" << config.scenario.name << "' with "
            << config.scenario.viewers << " viewers for "
            << config.scenario.duration.to_string() << " (simulated)...\n\n";

  core::ExperimentResult result = core::run_experiment(config);

  const core::ProbeResult& probe = result.probes.front();
  std::cout << "Probe " << probe.label << " (" << probe.ip.to_string()
            << ", " << net::to_string(probe.category) << ")\n\n";

  core::print_returned_addresses(std::cout, probe.analysis);
  std::cout << "\n";
  core::print_data_by_isp(std::cout, probe.analysis);
  std::cout << "\nTraffic locality at the probe: "
            << core::pct(probe.analysis.byte_locality(probe.category))
            << " of downloaded bytes came from "
            << net::to_string(probe.category) << " peers\n\n";

  std::cout << "Swarm ground truth:\n";
  core::print_traffic_matrix(std::cout, result.traffic);
  std::cout << "\nPlayback continuity across viewers: "
            << core::pct(result.swarm.avg_continuity) << "\n"
            << "Probe continuity: "
            << core::pct(probe.counters.continuity()) << "\n"
            << "Events executed: " << result.swarm.events_executed << "\n";
  return 0;
}
