// Live node: an in-process loopback deployment of the real-wire mode
// (docs/WIRE.md) — the same protocol entities the simulator runs, but
// exchanging actual UDP datagrams through the kernel.
//
// One wire::UdpTransport binds five loopback addresses (hub's bootstrap +
// tracker, the stream source, and two peers in different ISPs) on a shared
// port; a wall-clock loop slaves the simulator to real time and alternates
// socket polling with event dispatch. Multi-process deployments run the
// same stack via the `ppsim-node` binary (tools/wire_smoke.py launches a
// whole swarm); this example keeps everything in one process so it stays a
// ~10-second runnable demo.

#include <iostream>
#include <vector>

#include "net/asn_db.h"
#include "proto/bootstrap.h"
#include "proto/peer.h"
#include "proto/source.h"
#include "proto/tracker.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "wire/clock.h"
#include "wire/node.h"
#include "wire/udp.h"

int main() {
  using namespace ppsim;

  const net::IspRegistry registry = wire::loopback_registry();
  const net::AsnDatabase db = net::AsnDatabase::from_registry(registry);
  const auto identity = [&](net::IpAddress ip) {
    const net::IspCategory category = db.category_or_foreign(ip);
    return proto::HostIdentity{ip, registry.in_category(category).front(),
                               category, net::AccessProfile{}};
  };

  // Second loopback octet encodes the ISP: 127.1/16 = TELE, 127.2/16 = CNC.
  const net::IpAddress bootstrap_ip(127, 1, 0, 1);
  const net::IpAddress tracker_ip(127, 1, 0, 2);
  const net::IpAddress source_ip(127, 1, 0, 3);
  const net::IpAddress peer_a_ip(127, 1, 0, 10);  // same ISP as the source
  const net::IpAddress peer_b_ip(127, 2, 0, 10);  // cross-ISP viewer

  sim::Simulator simulator;
  wire::UdpTransport transport({.port = 47191, .epoch = 1});
  sim::Rng rng(7);

  proto::ChannelSpec channel;
  channel.id = 1;
  channel.name = "live";

  proto::BootstrapServer bootstrap(simulator, transport,
                                   identity(bootstrap_ip));
  proto::TrackerServer tracker(simulator, transport, identity(tracker_ip),
                               rng.fork(1));
  proto::BootstrapServer::ChannelEntry entry;
  entry.channel = channel.id;
  entry.source = source_ip;
  entry.tracker_groups = {{tracker_ip}};
  bootstrap.register_channel(std::move(entry));

  proto::StreamSource source(simulator, transport, identity(source_ip),
                             channel, {tracker_ip}, rng.fork(2));
  source.start();

  proto::Peer peer_a(simulator, transport, identity(peer_a_ip), channel,
                     bootstrap_ip, rng.fork(3));
  proto::Peer peer_b(simulator, transport, identity(peer_b_ip), channel,
                     bootstrap_ip, rng.fork(4));
  peer_a.join();
  peer_b.join();

  std::cout << "Live loopback deployment on 127.0.0.0/8 port 47191: "
            << "hub + source + 2 peers, 10 wall-clock seconds...\n";

  wire::WallClock clock;
  const sim::Time deadline = sim::Time::from_seconds(10.0);
  while (clock.now() < deadline) {
    wire::advance_to_wall(simulator, clock.now());
    transport.poll(/*timeout_ms=*/2);
    transport.dispatch(simulator.now());
  }
  peer_a.leave();
  peer_b.leave();
  source.stop();

  const auto report = [&](const char* label, const proto::Peer& p) {
    const auto& c = p.counters();
    std::cout << label << ": played " << c.chunks_played << " chunks, missed "
              << c.chunks_missed << ", continuity "
              << (c.chunks_played + c.chunks_missed == 0
                      ? 0.0
                      : 100.0 * c.continuity())
              << "%\n";
  };
  report("peer A (TELE, same ISP as source)", peer_a);
  report("peer B (CNC, cross-ISP)", peer_b);

  const auto& stats = transport.stats();
  std::cout << "wire: " << stats.packets_sent << " datagrams sent, "
            << stats.packets_delivered << " delivered, "
            << transport.rx_errors().total() << " rx errors\n"
            << "Every datagram was a real UDP packet; the entities are the "
               "unmodified sim protocol code.\n";
  return 0;
}
