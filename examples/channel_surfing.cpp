// Multi-channel deployment: two live channels share the bootstrap and
// tracker infrastructure (as PPLive's 150+ channels did), viewers
// channel-surf on departure, and one probe watches each channel. Shows
// that locality emerges per channel even with a shared control plane and
// cross-channel audience flow.

#include <cstdio>

#include "core/experiment.h"
#include "core/report.h"
#include "workload/scenario.h"

int main() {
  using namespace ppsim;

  core::MultiChannelConfig config;
  auto popular = workload::popular_channel();
  popular.viewers = 160;
  auto unpopular = workload::unpopular_channel();
  unpopular.viewers = 50;
  config.channels.push_back(
      core::ChannelPlan{popular, {core::tele_probe()}});
  config.channels.push_back(
      core::ChannelPlan{unpopular, {core::tele_probe()}});
  config.duration = sim::Time::minutes(8);
  config.seed = 303;
  config.surf_probability = 0.4;  // 40% of departing viewers switch channel

  auto result = core::run_multi_channel(config);

  std::printf("two channels, shared trackers, surf probability %.0f%%\n\n",
              100.0 * config.surf_probability);
  std::printf("%-10s %-8s %10s %12s %12s\n", "channel", "probe", "locality",
              "uniq-peers", "continuity");
  for (const auto& probe : result.probes) {
    std::printf("%-10u %-8s %9.1f%% %12llu %11.1f%%\n", probe.channel,
                probe.label.c_str(),
                100.0 * probe.analysis.byte_locality(probe.category),
                static_cast<unsigned long long>(
                    probe.analysis.unique_data_peers.total()),
                100.0 * probe.counters.continuity());
  }

  std::uint64_t surf_arrivals[3] = {};
  for (const auto& s : result.sessions)
    if (s.channel <= 2) ++surf_arrivals[s.channel];
  std::printf("\nsessions observed: channel 1: %llu, channel 2: %llu "
              "(initial audiences: %d and %d — the surplus surfed)\n",
              static_cast<unsigned long long>(surf_arrivals[1]),
              static_cast<unsigned long long>(surf_arrivals[2]),
              popular.viewers, unpopular.viewers);
  std::printf("swarm-wide intra-ISP share: %s\n",
              core::pct(result.traffic.locality()).c_str());
  return 0;
}
