// Fault injection: run a swarm through a scripted outage and read the
// resilience timeline.
//
// The plan is built in code here; the equivalent text form (loadable with
// `ppsim --fault-plan`, format in docs/FAULTS.md) is printed first so the
// two entry points stay connected. The canned schedule overlaps a
// full tracker blackout with a TELE<->CNC throttle, then crashes 20% of
// the audience at once.

#include <iostream>

#include "core/experiment.h"
#include "faults/plan.h"
#include "faults/resilience.h"
#include "workload/scenario.h"

int main() {
  using namespace ppsim;

  core::ExperimentConfig config;
  config.scenario = workload::unpopular_channel();
  config.scenario.viewers = 120;
  config.scenario.duration = sim::Time::minutes(8);
  config.scenario.seed = 7;
  config.faults.plan = faults::tracker_blackout_throttle_plan();
  config.observability.sample_period = sim::Time::seconds(15);

  std::cout << "Fault plan (text form, loadable with --fault-plan):\n\n";
  faults::write_fault_plan(std::cout, config.faults.plan);

  core::ExperimentResult result = core::run_experiment(config);

  std::cout << "\nRun finished: " << result.fault_windows_applied
            << " fault windows applied, " << result.fault_windows_reverted
            << " reverted, " << result.fault_peers_crashed
            << " peers crashed.\n"
            << "Swarm continuity over the whole run: "
            << static_cast<int>(result.swarm.avg_continuity * 100) << "%\n\n";

  const auto rows =
      faults::analyze_resilience(config.faults.plan, result.samples);
  faults::print_fault_timeline(std::cout, rows);

  std::cout << "\nReading the table: the cross-ISP throttle should *raise* "
               "the intra-ISP\nshare while active (the locality mechanisms "
               "steer around the damaged\npath) and the swarm should recover "
               "baseline continuity within a couple\nof sample periods of "
               "each window closing.\n";
  return 0;
}
