// Compares what probes in different ISPs observe on a popular vs an
// unpopular live channel — the paper's central experimental contrast
// (Figures 2-5): locality is strong everywhere on the popular channel, but
// degrades for observers whose ISP has too few viewers of a thin channel.

#include <cstdio>
#include <iostream>

#include "core/experiment.h"
#include "core/report.h"
#include "workload/scenario.h"

namespace {

using namespace ppsim;

void run_channel(workload::ScenarioSpec scenario, const char* title) {
  scenario.duration = sim::Time::minutes(8);
  scenario.seed = 77;

  core::ExperimentConfig config;
  config.scenario = std::move(scenario);
  config.probes = {core::tele_probe(), core::cnc_probe(),
                   core::mason_probe()};
  auto result = core::run_experiment(config);

  std::printf("%s (%d viewers)\n", title, config.scenario.viewers);
  std::printf("  %-6s %-10s %10s %12s %12s\n", "probe", "ISP", "locality",
              "unique-peers", "continuity");
  for (const auto& probe : result.probes) {
    std::printf("  %-6s %-10s %9.1f%% %12llu %11.1f%%\n", probe.label.c_str(),
                std::string(net::to_string(probe.category)).c_str(),
                100.0 * probe.analysis.byte_locality(probe.category),
                static_cast<unsigned long long>(
                    probe.analysis.unique_data_peers.total()),
                100.0 * probe.counters.continuity());
  }
  std::printf("  swarm-wide intra-ISP share: %s\n\n",
              core::pct(result.traffic.locality()).c_str());
}

}  // namespace

int main() {
  std::cout << "Popular vs unpopular channel, three probe sites\n\n";
  run_channel(workload::popular_channel(), "POPULAR channel");
  run_channel(workload::unpopular_channel(), "UNPOPULAR channel");
  std::cout << "Expected: China probes stay local on both channels; the\n"
               "Mason probe's locality collapses on the unpopular channel\n"
               "because almost no foreign viewers watch it.\n";
  return 0;
}
