#include "proto/counters.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

namespace ppsim::proto {
namespace {

// Fills every field with a distinct value derived from its position, so a
// field that aggregation drops or double-counts is caught by value.
PeerCounters filled(std::uint64_t base) {
  PeerCounters c;
  std::vector<std::uint64_t*> fields;
  for_each_field(c, [&](const char*, const std::uint64_t& v) {
    fields.push_back(const_cast<std::uint64_t*>(&v));
  });
  for (std::size_t i = 0; i < fields.size(); ++i)
    *fields[i] = base + i * 1000;
  return c;
}

TEST(PeerCounters, ForEachFieldVisitsEveryFieldExactlyOnce) {
  const PeerCounters c = filled(1);
  std::vector<std::string> names;
  std::uint64_t sum = 0;
  for_each_field(c, [&](const char* name, const std::uint64_t& v) {
    names.push_back(name);
    sum += v;
  });
  EXPECT_EQ(names.size(), sizeof(PeerCounters) / sizeof(std::uint64_t));
  // Names are unique.
  auto sorted = names;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
  // The visited references really alias the struct's storage: summing the
  // raw memory gives the same total.
  std::uint64_t raw[sizeof(PeerCounters) / sizeof(std::uint64_t)];
  std::memcpy(raw, &c, sizeof c);
  std::uint64_t raw_sum = 0;
  for (auto v : raw) raw_sum += v;
  EXPECT_EQ(sum, raw_sum);
}

TEST(PeerCounters, PlusEqualsAddsEveryField) {
  PeerCounters a = filled(10);
  const PeerCounters b = filled(7);
  a += b;

  std::vector<std::uint64_t> got;
  for_each_field(a, [&](const char*, const std::uint64_t& v) {
    got.push_back(v);
  });
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], (10 + i * 1000) + (7 + i * 1000)) << "field index " << i;
  }
}

TEST(PeerCounters, PlusEqualsFromZeroIsCopy) {
  PeerCounters zero;
  const PeerCounters b = filled(3);
  zero += b;
  for_each_field(zero, [&, i = std::size_t{0}](
                           const char*, const std::uint64_t& v) mutable {
    EXPECT_EQ(v, 3 + i * 1000);
    ++i;
  });
}

TEST(PeerCounters, BinaryPlusDoesNotMutateOperands) {
  const PeerCounters a = filled(1);
  const PeerCounters b = filled(2);
  const PeerCounters c = a + b;
  EXPECT_EQ(c.tracker_queries_sent, 3u);
  EXPECT_EQ(a.tracker_queries_sent, 1u);
  EXPECT_EQ(b.tracker_queries_sent, 2u);
  EXPECT_EQ(c.chunks_missed,
            a.chunks_missed + b.chunks_missed);
}

TEST(PeerCounters, ContinuityUnaffectedByAggregationIdentity) {
  PeerCounters a;
  a.chunks_played = 90;
  a.chunks_missed = 10;
  PeerCounters b;
  b.chunks_played = 50;
  b.chunks_missed = 50;
  a += b;
  EXPECT_EQ(a.chunks_played, 140u);
  EXPECT_EQ(a.chunks_missed, 60u);
  EXPECT_DOUBLE_EQ(a.continuity(), 0.7);
}

}  // namespace
}  // namespace ppsim::proto
