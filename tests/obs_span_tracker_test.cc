#include "obs/span_tracker.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sim/time.h"

namespace ppsim::obs {
namespace {

TraceEvent ev(double t_s, const char* name) {
  return TraceEvent(sim::Time::from_seconds(t_s), name);
}

// A resolver over a tiny static world: 10.1.* is TELE, 10.2.* is CNC.
SpanTracker::Options test_options() {
  SpanTracker::Options options;
  options.isp_of = [](std::string_view ip) -> std::string {
    if (ip.substr(0, 5) == "10.1.") return "TELE";
    if (ip.substr(0, 5) == "10.2.") return "CNC";
    return {};
  };
  return options;
}

TEST(SpanTracker, ReconstructsSpanTreeFromSpanBearingEvents) {
  SpanTracker tracker;
  tracker.write(ev(1.0, "join_reply").field("peer", "10.1.0.1")
                    .field("span", std::uint64_t{1}));
  tracker.write(ev(1.1, "tracker_query").field("span", std::uint64_t{2})
                    .field("parent", std::uint64_t{1}));
  tracker.write(ev(1.2, "tracker_reply").field("peer", "10.1.0.1")
                    .field("span", std::uint64_t{3})
                    .field("parent", std::uint64_t{2}));

  EXPECT_EQ(tracker.span_count(), 3u);
  EXPECT_EQ(tracker.parent_of(3), 2u);
  EXPECT_EQ(tracker.parent_of(2), 1u);
  EXPECT_EQ(tracker.parent_of(1), 0u);
  EXPECT_EQ(tracker.parent_of(99), 0u);
  EXPECT_EQ(tracker.ancestry(3), (std::vector<std::uint64_t>{3, 2, 1}));
  EXPECT_TRUE(tracker.ancestry(99).empty());
}

TEST(SpanTracker, FirstOccurrenceOfASpanWins) {
  SpanTracker tracker;
  // The same reply span surfaces in the server's serve event and the
  // client's receive event; the duplicate must not re-root the node.
  tracker.write(ev(1.0, "tracker_serve").field("span", std::uint64_t{5})
                    .field("parent", std::uint64_t{4}));
  tracker.write(ev(1.2, "tracker_reply").field("peer", "10.1.0.1")
                    .field("span", std::uint64_t{5})
                    .field("parent", std::uint64_t{4}));
  EXPECT_EQ(tracker.span_count(), 1u);
  EXPECT_EQ(tracker.parent_of(5), 4u);
}

TEST(SpanTracker, IgnoresUnrelatedEvents) {
  SpanTracker tracker;
  tracker.write(ev(1.0, "gossip_query").field("peer", "10.1.0.1"));
  tracker.write(ev(2.0, "totally_unknown").field("x", std::uint64_t{7}));
  EXPECT_EQ(tracker.events_observed(), 2u);
  EXPECT_EQ(tracker.span_count(), 0u);
  EXPECT_TRUE(tracker.referrals().empty());
  EXPECT_TRUE(tracker.critical_paths().empty());
}

TEST(SpanTracker, RecordsReferralsWithIspResolution) {
  SpanTracker tracker(test_options());
  tracker.write(ev(1.0, "peer_join").field("peer", "10.1.0.1")
                    .field("isp", "TELE"));
  tracker.write(ev(2.0, "connect_result").field("peer", "10.1.0.1")
                    .field("from", "10.1.0.9").field("outcome", "accepted")
                    .field("via", "tracker").field("introducer", "10.1.0.7"));
  tracker.write(ev(3.0, "connect_result").field("peer", "10.1.0.1")
                    .field("from", "10.2.0.2").field("outcome", "accepted")
                    .field("via", "gossip").field("introducer", "10.2.0.3"));
  // Rejected handshakes are not referrals.
  tracker.write(ev(4.0, "connect_result").field("peer", "10.1.0.1")
                    .field("from", "10.2.0.4").field("outcome", "rejected")
                    .field("via", "gossip").field("introducer", "10.2.0.3"));

  ASSERT_EQ(tracker.referrals().size(), 2u);
  const ReferralRecord& same = tracker.referrals()[0];
  EXPECT_EQ(same.via, "tracker");
  EXPECT_EQ(same.peer_isp, "TELE");
  EXPECT_EQ(same.introducer_isp, "TELE");
  EXPECT_TRUE(same.same_isp);
  const ReferralRecord& cross = tracker.referrals()[1];
  EXPECT_EQ(cross.introducer_isp, "CNC");
  EXPECT_FALSE(cross.same_isp);

  const LineageSummary lineage = tracker.lineage();
  EXPECT_EQ(lineage.total.referrals, 2u);
  EXPECT_EQ(lineage.total.same_isp, 1u);
  EXPECT_DOUBLE_EQ(lineage.by_via.at("tracker").share(), 1.0);
  EXPECT_DOUBLE_EQ(lineage.by_via.at("gossip").share(), 0.0);
}

TEST(SpanTracker, ReferralShareSeriesBucketsByTime) {
  std::vector<ReferralRecord> referrals;
  const auto add = [&](double t_s, bool same) {
    ReferralRecord r;
    r.t = sim::Time::from_seconds(t_s);
    r.same_isp = same;
    referrals.push_back(r);
  };
  add(10, true);
  add(50, false);
  add(70, true);  // second bucket

  const auto series = referral_share_series(referrals, sim::Time::seconds(60));
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].t_start, sim::Time::zero());
  EXPECT_EQ(series[0].t_end, sim::Time::seconds(60));
  EXPECT_EQ(series[0].referrals, 2u);
  EXPECT_DOUBLE_EQ(series[0].share(), 0.5);
  EXPECT_EQ(series[1].referrals, 1u);
  EXPECT_DOUBLE_EQ(series[1].share(), 1.0);
  EXPECT_TRUE(
      referral_share_series(referrals, sim::Time::zero()).empty());
}

// Feeds one peer's full startup milestone sequence and checks the stage
// decomposition is exact: stages in kStartupStageNames order, each the
// delta to the previous milestone, summing to playback - join.
TEST(SpanTracker, CriticalPathStagesSumExactlyToStartupDelay) {
  SpanTracker tracker(test_options());
  tracker.write(ev(1.0, "peer_join").field("peer", "10.1.0.1")
                    .field("isp", "TELE"));
  tracker.write(ev(1.25, "join_reply").field("peer", "10.1.0.1"));
  tracker.write(ev(1.375, "tracker_reply").field("peer", "10.1.0.1"));
  tracker.write(ev(1.4, "connect_attempt").field("peer", "10.1.0.1"));
  tracker.write(ev(1.55, "connect_result").field("peer", "10.1.0.1")
                    .field("from", "10.1.0.9").field("outcome", "accepted"));
  tracker.write(ev(1.8, "chunk_delivered").field("peer", "10.1.0.1"));
  tracker.write(ev(3.0, "playback_start").field("peer", "10.1.0.1"));

  const auto paths = tracker.critical_paths();
  ASSERT_EQ(paths.size(), 1u);
  const CriticalPath& p = paths[0];
  EXPECT_EQ(p.peer, "10.1.0.1");
  EXPECT_EQ(p.isp, "TELE");
  EXPECT_EQ(p.t_join, sim::Time::from_seconds(1.0));
  EXPECT_EQ(p.startup, sim::Time::seconds(2));
  EXPECT_EQ(p.stages[0], sim::Time::micros(250'000));   // bootstrap_wait
  EXPECT_EQ(p.stages[1], sim::Time::micros(125'000));   // tracker_rtt
  EXPECT_EQ(p.stages[2], sim::Time::micros(25'000));    // list_arrival
  EXPECT_EQ(p.stages[3], sim::Time::micros(150'000));   // first_connect
  EXPECT_EQ(p.stages[4], sim::Time::micros(250'000));   // first_chunk
  EXPECT_EQ(p.stages[5], sim::Time::micros(1'200'000)); // buffer_fill
  sim::Time sum = sim::Time::zero();
  for (const sim::Time s : p.stages) sum += s;
  EXPECT_EQ(sum, p.startup);
}

// Missing and out-of-order milestones must clamp to zero-length stages —
// never negative ones — and preserve the exact sum.
TEST(SpanTracker, CriticalPathClampsMissingAndOutOfOrderMilestones) {
  SpanTracker tracker;
  tracker.write(ev(10.0, "peer_join").field("peer", "10.2.0.2")
                    .field("isp", "CNC"));
  // No join_reply / tracker_reply at all; a connect attempt recorded
  // *before* the join would otherwise produce a negative stage.
  tracker.write(ev(9.0, "connect_attempt").field("peer", "10.2.0.2"));
  tracker.write(ev(11.0, "chunk_delivered").field("peer", "10.2.0.2"));
  tracker.write(ev(12.0, "playback_start").field("peer", "10.2.0.2"));

  const auto paths = tracker.critical_paths();
  ASSERT_EQ(paths.size(), 1u);
  const CriticalPath& p = paths[0];
  EXPECT_EQ(p.startup, sim::Time::seconds(2));
  sim::Time sum = sim::Time::zero();
  for (const sim::Time s : p.stages) {
    EXPECT_FALSE(s.is_negative());
    sum += s;
  }
  EXPECT_EQ(sum, p.startup);
  EXPECT_EQ(p.stages[4], sim::Time::seconds(1));  // first_chunk
  EXPECT_EQ(p.stages[5], sim::Time::seconds(1));  // buffer_fill
}

TEST(SpanTracker, PeersWithoutPlaybackAreExcluded) {
  SpanTracker tracker;
  tracker.write(ev(1.0, "peer_join").field("peer", "10.1.0.1"));
  tracker.write(ev(1.5, "chunk_delivered").field("peer", "10.1.0.1"));
  EXPECT_TRUE(tracker.critical_paths().empty());
}

TEST(SpanTracker, NdjsonRoundTripsReferralsAndPaths) {
  SpanTracker tracker(test_options());
  tracker.write(ev(1.0, "peer_join").field("peer", "10.1.0.1")
                    .field("isp", "TELE"));
  tracker.write(ev(1.5, "connect_result").field("peer", "10.1.0.1")
                    .field("from", "10.1.0.9").field("outcome", "accepted")
                    .field("via", "tracker").field("introducer", "10.1.0.7")
                    .field("span", std::uint64_t{11})
                    .field("parent", std::uint64_t{10}));
  tracker.write(ev(1.8, "chunk_delivered").field("peer", "10.1.0.1"));
  tracker.write(ev(2.5, "playback_start").field("peer", "10.1.0.1"));

  std::ostringstream os;
  tracker.write_ndjson(os);

  std::istringstream is(os.str());
  SpanFileData data;
  std::string error;
  ASSERT_TRUE(read_spans_ndjson(is, &data, &error)) << error;
  EXPECT_EQ(data.header_spans, tracker.span_count());
  ASSERT_EQ(data.referrals.size(), 1u);
  EXPECT_EQ(data.referrals[0].peer, "10.1.0.1");
  EXPECT_EQ(data.referrals[0].via, "tracker");
  EXPECT_EQ(data.referrals[0].introducer_isp, "TELE");
  EXPECT_TRUE(data.referrals[0].same_isp);
  EXPECT_EQ(data.referrals[0].t, sim::Time::from_seconds(1.5));
  ASSERT_EQ(data.paths.size(), 1u);
  EXPECT_EQ(data.paths[0].startup, sim::Time::micros(1'500'000));
  sim::Time sum = sim::Time::zero();
  for (const sim::Time s : data.paths[0].stages) sum += s;
  // Exact-sum survives serialization: times travel as integer micros.
  EXPECT_EQ(sum, data.paths[0].startup);

  // Same tracker state, second serialization: byte-identical.
  std::ostringstream os2;
  tracker.write_ndjson(os2);
  EXPECT_EQ(os.str(), os2.str());
}

TEST(ReadSpansNdjson, RejectsForeignHeaders) {
  std::istringstream is("{\"samples_schema\":\"ppsim-samples-v1\"}\n");
  SpanFileData data;
  std::string error;
  EXPECT_FALSE(read_spans_ndjson(is, &data, &error));
  EXPECT_NE(error.find("header"), std::string::npos);
}

}  // namespace
}  // namespace ppsim::obs
