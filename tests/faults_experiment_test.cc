// End-to-end fault injection through run_experiment: the canned
// "tracker blackout + cross-ISP throttling" schedule runs to completion,
// the swarm dips and recovers instead of wedging, and a fault-driven run
// is as byte-deterministic as a fault-free one.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/experiment.h"
#include "faults/plan.h"
#include "faults/resilience.h"
#include "obs/trace.h"
#include "workload/scenario.h"

namespace ppsim {
namespace {

core::ExperimentConfig faulted_config(std::uint64_t seed) {
  core::ExperimentConfig config;
  config.scenario = workload::unpopular_channel();
  config.scenario.viewers = 30;
  // All fault windows close by t=150 s; the remaining minutes give the
  // swarm room to demonstrate recovery in the sampled timeline.
  config.scenario.duration = sim::Time::minutes(6);
  config.scenario.seed = seed;
  config.probes = {core::tele_probe()};
  config.faults.plan = faults::tracker_blackout_throttle_plan();
  return config;
}

TEST(FaultExperimentTest, CannedPlanRunsToCompletion) {
  auto config = faulted_config(7);
  config.observability.sample_period = sim::Time::seconds(15);
  const auto result = core::run_experiment(config);

  // Two windowed faults applied and reverted, plus one instantaneous burst.
  EXPECT_EQ(result.fault_windows_applied, 3u);
  EXPECT_EQ(result.fault_windows_reverted, 2u);
  EXPECT_GT(result.fault_peers_crashed, 0u);

  // Crashed viewers count as departures and are respawned, so the audience
  // does not shrink below the scenario's size.
  EXPECT_GE(result.swarm.departures, result.fault_peers_crashed);
  EXPECT_GE(result.sessions.size(), 30u);

  // Nobody wedged: the swarm keeps playing through the outage and ends the
  // run with reasonable overall continuity.
  EXPECT_GT(result.swarm.avg_continuity, 0.5);
  for (const auto& probe : result.probes)
    EXPECT_GT(probe.counters.continuity(), 0.5) << probe.label;

  // The resilience analysis covers the windowed faults and sees recovery.
  const auto rows =
      faults::analyze_resilience(config.faults.plan, result.samples);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_TRUE(rows[0].has_samples);
  EXPECT_TRUE(rows[0].recovered)
      << "swarm never recovered from the tracker outage";
  EXPECT_TRUE(rows[1].recovered)
      << "swarm never recovered from the link degrade";
}

TEST(FaultExperimentTest, FaultsActuallyBite) {
  // The same run with and without the plan: the faulted one must show
  // impairment drops and crashes — guarding against a silently inert
  // driver (which would also make every resilience claim vacuous).
  auto faulted = faulted_config(7);
  const auto with_faults = core::run_experiment(faulted);
  auto clean = faulted_config(7);
  clean.faults.plan.windows.clear();
  const auto without = core::run_experiment(clean);

  EXPECT_GT(with_faults.fault_peers_crashed, 0u);
  EXPECT_EQ(without.fault_peers_crashed, 0u);
  EXPECT_GT(with_faults.swarm.packets_dropped, without.swarm.packets_dropped);
}

std::string faulted_trace(std::uint64_t seed, std::uint64_t fault_seed) {
  auto config = faulted_config(seed);
  config.faults.fault_seed = fault_seed;
  std::ostringstream os;
  obs::NdjsonTraceSink sink(os);
  config.observability.trace = &sink;
  core::run_experiment(config);
  return os.str();
}

TEST(FaultExperimentTest, FaultedTraceIsByteIdenticalAcrossRuns) {
  // Determinism extends through the fault driver: same (seed, plan, fault
  // seed) => byte-identical NDJSON, including the fault_begin/fault_end
  // events and every downstream consequence of the injected faults.
  const std::string first = faulted_trace(7, 0);
  const std::string second = faulted_trace(7, 0);
  ASSERT_FALSE(first.empty());
  EXPECT_NE(first.find("fault_begin"), std::string::npos);
  EXPECT_NE(first.find("fault_end"), std::string::npos);
  EXPECT_NE(first.find("peer_crash"), std::string::npos);
  EXPECT_EQ(first, second) << "same-seed faulted traces diverged";
}

TEST(FaultExperimentTest, FaultSeedVariesVictimsOnly) {
  // A different fault seed picks different churn-burst victims, so the
  // trace diverges — while the run seed (workload, topology) is unchanged.
  EXPECT_NE(faulted_trace(7, 1), faulted_trace(7, 2));
}

}  // namespace
}  // namespace ppsim
