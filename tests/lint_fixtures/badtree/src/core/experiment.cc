// Fixture: total-drops reconciliation that forgot ghost_drops.
#include <cstdint>

#include "net/transport.h"

namespace ppsim::core {

std::uint64_t total_drops(std::uint64_t uplink_drops) {
  return uplink_drops;
}

}  // namespace ppsim::core
