// Fixture: drop-counter audit holes.
#pragma once
#include <cstdint>

namespace ppsim::net {

class Transport {
 public:
  struct Stats {
    std::uint64_t uplink_drops = 0;
    std::uint64_t ghost_drops = 0;  // completeness: drop-counter (x2)
  };

  void drop_uplink();

 private:
  Stats stats_;
};

}  // namespace ppsim::net
