// Fixture: increments uplink_drops (so it is a live bucket) but never
// ghost_drops.
#include "net/transport.h"

namespace ppsim::net {

void Transport::drop_uplink() { ++stats_.uplink_drops; }

}  // namespace ppsim::net
