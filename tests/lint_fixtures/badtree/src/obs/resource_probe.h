#pragma once

// Fixture: kResourceGaugeNames disagrees with the docs table in both
// directions. sched_undocumented_gauge is published but missing from the
// table; the table documents phantom_gauge, which is never published.

namespace ppsim::obs {

inline constexpr const char* kResourceGaugeNames[] = {
    "resource_rss_bytes",
    "sched_undocumented_gauge",
};

}  // namespace ppsim::obs
