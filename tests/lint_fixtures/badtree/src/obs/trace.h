// Fixture: the obs -> sim edge is legal on its own, but combined with
// sim/clock.cc's sim -> obs include it closes a module cycle.
#pragma once
#include "sim/sched.h"

namespace ppsim::obs {

class NullSink {};

}  // namespace ppsim::obs
