// Fixture: capture serializer/parser with deliberate holes.
#include <string>

#include "proto/message.h"

namespace ppsim::capture {

struct PayloadWriter {
  // Pong, Ghost: completeness: trace-io-write
  void operator()(const proto::Ping&) const {}
};

bool parse_message(const std::string& type) {
  if (type == "Ping") return true;
  if (type == "Pong") return true;
  // Ghost: completeness: trace-io-parse
  return false;
}

}  // namespace ppsim::capture
