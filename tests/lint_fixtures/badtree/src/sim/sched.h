// Fixture: unordered iteration feeding the scheduler + pointer-keyed map
// + a static data member.
#pragma once
#include <map>
#include <unordered_map>

namespace ppsim::sim {

struct Ev {
  int id = 0;
};

class Sched {
 public:
  void schedule(int id);
  void run() {
    for (const auto& [id, ev] : pending_) {  // determinism: unordered-iter
      schedule(id);
      (void)ev;
    }
  }

  static int live_instances;  // shared-state: static-member

 private:
  std::unordered_map<int, Ev> pending_;
  std::map<Ev*, int> by_addr_;  // determinism: pointer-key
};

}  // namespace ppsim::sim
