// Fixture: known-bad sim/ file. Every construct below is a deliberate
// violation; tests/tools_lint_test.cc pins the exact findings.
#include <chrono>

#include "obs/trace.h"    // layering: sim -> obs is an upward edge
#include "vendor/blob.h"  // layering: module outside the declared table

namespace ppsim::sim {

int g_tick_count = 0;  // shared-state: mutable-global

double jitter_sum(const double* xs, int n) {
  static int calls = 0;  // shared-state: static-local
  ++calls;
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    total += xs[i];  // float-order: float-accum
  }
  return total;
}

long now_ns() {
  // determinism: wall-clock
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace ppsim::sim
