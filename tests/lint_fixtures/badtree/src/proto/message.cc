// Fixture: visitor tables with deliberate holes.
#include "proto/message.h"

#include <variant>

namespace ppsim::proto {
namespace {

struct SizeVisitor {
  // Pong, Ghost: completeness: wire-size-visitor
  std::size_t operator()(const Ping&) const { return 8; }
};

struct NameVisitor {
  std::string operator()(const Ping&) const { return "Ping"; }
  // returns the wrong literal (all-caps): completeness: name-visitor
  std::string operator()(const Pong&) const { return "PONG"; }
  // Ghost: completeness: name-visitor (no overload at all)
};

}  // namespace

std::size_t wire_size(const Message& m) {
  return std::visit(SizeVisitor{}, m);
}

std::string message_name(const Message& m) {
  return std::visit(NameVisitor{}, m);
}

}  // namespace ppsim::proto
