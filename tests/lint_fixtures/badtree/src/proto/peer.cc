// Fixture: stamps Pong's span, but Pong has no row in the PROTOCOL.md
// span table (completeness: span-doc, reverse direction). Ping IS in the
// table but nothing here stamps it (completeness: span-stamp).
#include "proto/message.h"

namespace ppsim::proto {

Pong make_pong(std::uint64_t nonce) {
  Pong p;
  p.nonce = nonce;
  p.span = SpanContext{};
  return p;
}

}  // namespace ppsim::proto
