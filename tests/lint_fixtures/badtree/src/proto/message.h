// Fixture: message table with deliberate completeness holes.
#pragma once
#include <cstdint>
#include <string>
#include <variant>

namespace ppsim::proto {

struct SpanContext {
  std::uint64_t id = 0;
};

struct Ping {
  std::uint64_t nonce = 0;
  SpanContext span{};
};

struct Pong {  // completeness: span-member (no SpanContext)
  std::uint64_t nonce = 0;
};

struct Stray {  // completeness: variant-membership (not in the variant)
  SpanContext span{};
};

// Ghost: completeness: variant-membership (no struct declares it)
using Message = std::variant<Ping, Pong, Ghost>;

std::size_t wire_size(const Message& m);
std::string message_name(const Message& m);

}  // namespace ppsim::proto
