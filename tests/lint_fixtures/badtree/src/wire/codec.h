// Fixture: wire codec tag table with completeness holes.
#pragma once
#include <cstdint>

#include "proto/message.h"

namespace ppsim::wire {

enum class Tag : std::uint8_t {
  kPing = 0,
  kStale = 1,  // completeness: wire-tag (not a Message variant member)
};

std::uint8_t encode(const proto::Message& m);

}  // namespace ppsim::wire
