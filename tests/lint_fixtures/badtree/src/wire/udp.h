#pragma once

// Fixture: rx-error buckets disagree everywhere. bad_unexported is a
// declared counter missing from kRxErrorBucketNames; bad_ghost is
// exported but never declared; bad_magic and bad_ghost are missing from
// the docs table, which in turn documents bad_doc_phantom.

namespace ppsim::wire {

class UdpTransport {
 public:
  struct RxErrors {
    std::uint64_t truncated = 0;
    std::uint64_t bad_magic = 0;
    std::uint64_t bad_unexported = 0;
    std::uint64_t total() const { return truncated + bad_magic; }
  };
};

inline constexpr const char* kRxErrorBucketNames[] = {
    "truncated",
    "bad_magic",
    "bad_ghost",
};

}  // namespace ppsim::wire
