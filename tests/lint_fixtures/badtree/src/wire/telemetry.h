#pragma once

// Fixture: the record inventory declares Ghost, which the docs table
// never mentions; the table documents Phantom, which is never declared.

namespace ppsim::wire {

inline constexpr const char* kTelemetryRecordNames[] = {
    "Heartbeat",
    "Ghost",
};

}  // namespace ppsim::wire
