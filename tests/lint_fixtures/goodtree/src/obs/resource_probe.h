#pragma once

// Fixture: the published gauge inventory and the docs table agree exactly,
// so the resource-gauge-doc check stays silent.

namespace ppsim::obs {

inline constexpr const char* kResourceGaugeNames[] = {
    "resource_rss_bytes",
    "sched_queue_depth",
};

}  // namespace ppsim::obs
