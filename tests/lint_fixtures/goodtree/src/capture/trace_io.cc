// Fixture: complete capture serializer/parser.
#include <string>

#include "proto/message.h"

namespace ppsim::capture {

struct PayloadWriter {
  void operator()(const proto::Ping&) const {}
};

bool parse_message(const std::string& type) {
  if (type == "Ping") return true;
  return false;
}

}  // namespace ppsim::capture
