// Fixture: encode branch + decode branch for every variant member.
#include "wire/codec.h"

namespace ppsim::wire {

struct EncodeVisitor {
  std::uint8_t operator()(const proto::Ping&) const { return 0; }
};

std::uint8_t decode(std::uint8_t tag) {
  switch (static_cast<Tag>(tag)) {
    case Tag::kPing:
      return 0;
  }
  return 1;
}

std::uint8_t encode(const proto::Message& m) {
  return std::visit(EncodeVisitor{}, m);
}

}  // namespace ppsim::wire
