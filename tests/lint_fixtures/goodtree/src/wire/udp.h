#pragma once

// Fixture: the RxErrors counter fields, the kRxErrorBucketNames export
// table and the "Rx error counters" table in docs/WIRE.md agree exactly,
// so rx-error-export and rx-error-doc stay silent. The total() helper and
// its field uses must not parse as extra buckets.

namespace ppsim::wire {

class UdpTransport {
 public:
  struct RxErrors {
    std::uint64_t truncated = 0;
    std::uint64_t bad_magic = 0;
    std::uint64_t total() const { return truncated + bad_magic; }
  };
};

inline constexpr const char* kRxErrorBucketNames[] = {
    "truncated",
    "bad_magic",
};

}  // namespace ppsim::wire
