// Fixture: complete wire codec tag table for the single-message variant.
#pragma once
#include <cstdint>

#include "proto/message.h"

namespace ppsim::wire {

enum class Tag : std::uint8_t {
  kPing = 0,
};

std::uint8_t encode(const proto::Message& m);

}  // namespace ppsim::wire
