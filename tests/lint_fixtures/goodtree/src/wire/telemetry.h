#pragma once

// Fixture: the telemetry record-type inventory and the "Telemetry record
// types" table in docs/OBSERVABILITY.md agree exactly, so
// telemetry-record-doc stays silent.

namespace ppsim::wire {

inline constexpr const char* kTelemetryRecordNames[] = {
    "Heartbeat",
    "Metric",
};

}  // namespace ppsim::wire
