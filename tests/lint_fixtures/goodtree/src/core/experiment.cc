// Fixture: total-drops reconciliation covering every bucket.
#include <cstdint>

#include "net/transport.h"

namespace ppsim::core {

std::uint64_t total_drops(std::uint64_t uplink_drops) {
  return uplink_drops;
}

}  // namespace ppsim::core
