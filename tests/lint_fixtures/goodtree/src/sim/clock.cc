// Fixture: clean sim/ file — simulated time only, integer accumulation,
// no static state.
#include <cstdint>
#include <vector>

namespace ppsim::sim {

constexpr std::uint64_t kTicksPerSecond = 1000;

std::uint64_t sum_ticks(const std::vector<std::uint64_t>& xs) {
  std::uint64_t total = 0;
  for (const std::uint64_t x : xs) total += x;
  return total;
}

}  // namespace ppsim::sim
