// Fixture: every drop bucket is incremented and reconciled.
#pragma once
#include <cstdint>

namespace ppsim::net {

class Transport {
 public:
  struct Stats {
    std::uint64_t uplink_drops = 0;
  };

  void drop_uplink();

 private:
  Stats stats_;
};

}  // namespace ppsim::net
