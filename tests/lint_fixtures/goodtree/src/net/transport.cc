#include "net/transport.h"

namespace ppsim::net {

void Transport::drop_uplink() { ++stats_.uplink_drops; }

}  // namespace ppsim::net
