// Fixture: complete visitor tables.
#include "proto/message.h"

#include <variant>

namespace ppsim::proto {
namespace {

struct SizeVisitor {
  std::size_t operator()(const Ping&) const { return 8; }
};

struct NameVisitor {
  std::string operator()(const Ping&) const { return "Ping"; }
};

}  // namespace

std::size_t wire_size(const Message& m) {
  return std::visit(SizeVisitor{}, m);
}

std::string message_name(const Message& m) {
  return std::visit(NameVisitor{}, m);
}

}  // namespace ppsim::proto
