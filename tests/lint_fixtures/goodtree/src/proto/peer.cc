// Fixture: stamps Ping's span, matching the PROTOCOL.md table row.
#include "proto/message.h"

namespace ppsim::proto {

Ping make_ping(std::uint64_t nonce) {
  Ping p;
  p.nonce = nonce;
  p.span = SpanContext{};
  return p;
}

}  // namespace ppsim::proto
