// Fixture: complete single-message table.
#pragma once
#include <cstdint>
#include <string>
#include <variant>

namespace ppsim::proto {

struct SpanContext {
  std::uint64_t id = 0;
};

struct Ping {
  std::uint64_t nonce = 0;
  SpanContext span{};
};

using Message = std::variant<Ping>;

std::size_t wire_size(const Message& m);
std::string message_name(const Message& m);

}  // namespace ppsim::proto
