// Self-tests for the ppsim-audit framework (tools/lint/): drive the pass
// registry in-process over known-bad and known-good fixture trees
// (tests/lint_fixtures/) and pin the exact findings, then exercise the
// allowlist (suppression + stale-entry reporting) and the ppsim-lint-v1
// NDJSON round-trip.

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "lint/allowlist.h"
#include "lint/lint.h"
#include "lint/ndjson.h"

namespace ppsim::lint {
namespace {

std::string fixture(const std::string& rel) {
  return std::string(PPSIM_LINT_FIXTURES_DIR) + "/" + rel;
}

Tree load(const std::string& name) {
  Tree tree;
  std::string error;
  EXPECT_TRUE(load_tree(fixture(name + "/src"), fixture(name + "/docs"),
                        &tree, &error))
      << error;
  return tree;
}

std::vector<Finding> run_all(const Tree& tree) {
  std::string error;
  std::vector<Finding> findings = run_passes(tree, {}, &error);
  EXPECT_TRUE(error.empty()) << error;
  return findings;
}

bool has(const std::vector<Finding>& findings, const std::string& file,
         int line, const std::string& check, const std::string& token) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.file == file && f.line == line && f.check == check &&
           f.token == token;
  });
}

TEST(LintRegistry, FivePassesInOrder) {
  const std::vector<PassInfo>& reg = passes();
  ASSERT_EQ(reg.size(), 5u);
  EXPECT_EQ(reg[0].name, "determinism");
  EXPECT_EQ(reg[1].name, "shared-state");
  EXPECT_EQ(reg[2].name, "layering");
  EXPECT_EQ(reg[3].name, "float-order");
  EXPECT_EQ(reg[4].name, "completeness");
  for (const PassInfo& p : reg) {
    EXPECT_NE(p.fn, nullptr);
    EXPECT_FALSE(p.summary.empty());
  }
}

TEST(LintGoodTree, NoFindings) {
  const Tree tree = load("goodtree");
  EXPECT_EQ(tree.files.size(), 13u);
  const std::vector<Finding> findings = run_all(tree);
  EXPECT_TRUE(findings.empty()) << findings.size() << " findings; first: "
                                << (findings.empty()
                                        ? ""
                                        : findings[0].file + " " +
                                              findings[0].check);
}

TEST(LintBadTree, DeterminismFindings) {
  const std::vector<Finding> f = run_all(load("badtree"));
  EXPECT_TRUE(has(f, "sim/clock.cc", 24, "wall-clock", "steady_clock"));
  EXPECT_TRUE(has(f, "sim/sched.h", 17, "unordered-iter", "pending_"));
  EXPECT_TRUE(has(f, "sim/sched.h", 27, "pointer-key", "std::map<Ev*>"));
}

TEST(LintBadTree, SharedStateInventory) {
  const std::vector<Finding> f = run_all(load("badtree"));
  EXPECT_TRUE(has(f, "sim/clock.cc", 10, "mutable-global", "g_tick_count"));
  EXPECT_TRUE(has(f, "sim/clock.cc", 13, "static-local", "calls"));
  EXPECT_TRUE(has(f, "sim/sched.h", 23, "static-member", "live_instances"));
}

TEST(LintBadTree, LayeringFindings) {
  const std::vector<Finding> f = run_all(load("badtree"));
  EXPECT_TRUE(has(f, "sim/clock.cc", 5, "illegal-include", "sim -> obs"));
  EXPECT_TRUE(has(f, "sim/clock.cc", 6, "unknown-module", "vendor"));
  EXPECT_TRUE(has(f, "sim/clock.cc", 5, "layer-cycle", "obs -> sim -> obs"));
}

TEST(LintBadTree, FloatOrderFindings) {
  const std::vector<Finding> f = run_all(load("badtree"));
  EXPECT_TRUE(has(f, "sim/clock.cc", 17, "float-accum", "total"));
}

TEST(LintBadTree, CompletenessFindings) {
  const std::vector<Finding> f = run_all(load("badtree"));
  // Variant / struct / span-member triangulation.
  EXPECT_TRUE(has(f, "proto/message.h", 22, "variant-membership", "Stray"));
  EXPECT_TRUE(has(f, "proto/message.h", 27, "variant-membership", "Ghost"));
  EXPECT_TRUE(has(f, "proto/message.h", 18, "span-member", "Pong"));
  // Visitor tables in proto/message.cc.
  EXPECT_TRUE(has(f, "proto/message.cc", 9, "wire-size-visitor", "Pong"));
  EXPECT_TRUE(has(f, "proto/message.cc", 9, "wire-size-visitor", "Ghost"));
  EXPECT_TRUE(has(f, "proto/message.cc", 14, "name-visitor", "Ghost"));
  EXPECT_TRUE(has(f, "proto/message.cc", 14, "name-visitor", "Pong"));
  // Capture serializer/parser.
  EXPECT_TRUE(has(f, "capture/trace_io.cc", 1, "trace-io-write", "Pong"));
  EXPECT_TRUE(has(f, "capture/trace_io.cc", 1, "trace-io-write", "Ghost"));
  EXPECT_TRUE(has(f, "capture/trace_io.cc", 1, "trace-io-parse", "Ghost"));
  // Span docs: Ghost undocumented; Pong stamped but not in the table.
  EXPECT_TRUE(has(f, "docs/PROTOCOL.md", 3, "span-doc", "Ghost"));
  EXPECT_TRUE(has(f, "docs/PROTOCOL.md", 3, "span-doc", "Pong"));
  // Ping documented as stamped but never stamped in proto/*.cc.
  EXPECT_TRUE(has(f, "proto/message.h", 13, "span-stamp", "Ping"));
  // Drop buckets: declared-but-dead and unreconciled.
  EXPECT_TRUE(has(f, "net/transport.h", 9, "drop-counter", "ghost_drops"));
  EXPECT_TRUE(has(f, "core/experiment.cc", 1, "drop-counter", "ghost_drops"));
  // uplink_drops is live and reconciled — no finding.
  EXPECT_FALSE(has(f, "net/transport.h", 9, "drop-counter", "uplink_drops"));
  // Wire codec coverage: Tag enum, encode/decode branches, docs table —
  // missing members and stale extras in both directions.
  EXPECT_TRUE(has(f, "wire/codec.h", 9, "wire-tag", "Pong"));
  EXPECT_TRUE(has(f, "wire/codec.h", 9, "wire-tag", "Ghost"));
  EXPECT_TRUE(has(f, "wire/codec.h", 9, "wire-tag", "Stale"));
  EXPECT_FALSE(has(f, "wire/codec.h", 9, "wire-tag", "Ping"));
  EXPECT_TRUE(has(f, "wire/codec.cc", 1, "wire-encode", "Pong"));
  EXPECT_TRUE(has(f, "wire/codec.cc", 1, "wire-encode", "Ghost"));
  EXPECT_TRUE(has(f, "wire/codec.cc", 1, "wire-decode", "Pong"));
  EXPECT_TRUE(has(f, "wire/codec.cc", 1, "wire-decode", "Ghost"));
  EXPECT_TRUE(has(f, "docs/WIRE.md", 3, "wire-doc", "Pong"));
  EXPECT_TRUE(has(f, "docs/WIRE.md", 3, "wire-doc", "Ghost"));
  EXPECT_TRUE(has(f, "docs/WIRE.md", 3, "wire-doc", "Phantom"));
  EXPECT_FALSE(has(f, "docs/WIRE.md", 3, "wire-doc", "Ping"));
  // Resource gauges vs docs table, both directions.
  EXPECT_TRUE(has(f, "docs/OBSERVABILITY.md", 3, "resource-gauge-doc",
                  "sched_undocumented_gauge"));
  EXPECT_TRUE(has(f, "obs/resource_probe.h", 9, "resource-gauge-doc",
                  "phantom_gauge"));
  // The gauge documented and published both ways stays clean.
  EXPECT_FALSE(has(f, "docs/OBSERVABILITY.md", 3, "resource-gauge-doc",
                   "resource_rss_bytes"));
  // Rx-error buckets: struct field vs export table vs docs table.
  EXPECT_TRUE(has(f, "wire/udp.h", 20, "rx-error-export", "bad_unexported"));
  EXPECT_TRUE(has(f, "wire/udp.h", 20, "rx-error-export", "bad_ghost"));
  EXPECT_TRUE(has(f, "docs/WIRE.md", 12, "rx-error-doc", "bad_magic"));
  EXPECT_TRUE(has(f, "docs/WIRE.md", 12, "rx-error-doc", "bad_ghost"));
  EXPECT_TRUE(has(f, "wire/udp.h", 20, "rx-error-doc", "bad_doc_phantom"));
  // truncated is declared, exported and documented — no finding.
  EXPECT_FALSE(has(f, "wire/udp.h", 20, "rx-error-export", "truncated"));
  // Telemetry record inventory vs docs table, both directions.
  EXPECT_TRUE(has(f, "docs/OBSERVABILITY.md", 10, "telemetry-record-doc",
                  "Ghost"));
  EXPECT_TRUE(has(f, "wire/telemetry.h", 8, "telemetry-record-doc",
                  "Phantom"));
  EXPECT_FALSE(has(f, "docs/OBSERVABILITY.md", 10, "telemetry-record-doc",
                   "Heartbeat"));
}

TEST(LintBadTree, ExactFindingCountAndSorted) {
  const std::vector<Finding> f = run_all(load("badtree"));
  EXPECT_EQ(f.size(), 44u);
  EXPECT_TRUE(std::is_sorted(f.begin(), f.end(), [](const Finding& a,
                                                    const Finding& b) {
    return std::tie(a.pass, a.file, a.line, a.check, a.token) <
           std::tie(b.pass, b.file, b.line, b.check, b.token);
  }));
}

TEST(LintBadTree, SinglePassSelection) {
  const Tree tree = load("badtree");
  std::string error;
  const std::vector<Finding> f = run_passes(tree, {"shared-state"}, &error);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_EQ(f.size(), 3u);
  for (const Finding& x : f) EXPECT_EQ(x.pass, "shared-state");
}

TEST(LintBadTree, UnknownPassReportsError) {
  const Tree tree = load("badtree");
  std::string error;
  run_passes(tree, {"no-such-pass"}, &error);
  EXPECT_FALSE(error.empty());
}

TEST(LintAllowlist, SuppressesMatchedFindingsOnly) {
  std::istringstream in(
      "# rationale\n"
      "[shared-state]\n"
      "sim/clock.cc:mutable-global:g_tick_count\n"
      "[float-order]\n"
      "sim/clock.cc:float-accum:*\n");
  Allowlist allow;
  std::string error;
  ASSERT_TRUE(parse_allowlist(in, &allow, &error)) << error;
  ASSERT_EQ(allow.entries.size(), 2u);

  std::vector<Finding> f = run_all(load("badtree"));
  apply_allowlist(allow, {"determinism", "shared-state", "layering",
                          "float-order", "completeness"},
                  "allow.txt", &f);
  int allowlisted = 0;
  for (const Finding& x : f)
    if (x.allowlisted) ++allowlisted;
  EXPECT_EQ(allowlisted, 2);  // the global + the float-accum, nothing else
  // A shared-state entry never suppresses another pass's finding at the
  // same location/token.
  for (const Finding& x : f) {
    if (x.check == "static-local") {
      EXPECT_FALSE(x.allowlisted);
    }
  }
  // No stale entries: every entry matched.
  for (const Finding& x : f) EXPECT_NE(x.check, "stale-allowlist");
}

TEST(LintAllowlist, StaleEntryIsReported) {
  std::istringstream in(
      "[determinism]\n"
      "sim/gone.cc:wall-clock:time\n");
  Allowlist allow;
  std::string error;
  ASSERT_TRUE(parse_allowlist(in, &allow, &error)) << error;

  std::vector<Finding> f = run_all(load("badtree"));
  const std::size_t before = f.size();
  apply_allowlist(allow, {"determinism"}, "allow.txt", &f);
  ASSERT_EQ(f.size(), before + 1);
  const auto it =
      std::find_if(f.begin(), f.end(),
                   [](const Finding& x) { return x.check == "stale-allowlist"; });
  ASSERT_NE(it, f.end());
  EXPECT_EQ(it->pass, "determinism");
  EXPECT_EQ(it->file, "allow.txt");
  EXPECT_EQ(it->line, 2);
  EXPECT_EQ(it->token, "sim/gone.cc:wall-clock:time");
  EXPECT_FALSE(it->allowlisted);
}

TEST(LintAllowlist, StaleEntryIgnoredWhenItsPassDidNotRun) {
  std::istringstream in(
      "[determinism]\n"
      "sim/gone.cc:wall-clock:time\n");
  Allowlist allow;
  std::string error;
  ASSERT_TRUE(parse_allowlist(in, &allow, &error)) << error;
  std::vector<Finding> f;
  apply_allowlist(allow, {"layering"}, "allow.txt", &f);
  EXPECT_TRUE(f.empty());
}

TEST(LintAllowlist, EntryOutsideSectionIsAnError) {
  std::istringstream in("sim/clock.cc:wall-clock:steady_clock\n");
  Allowlist allow;
  std::string error;
  EXPECT_FALSE(parse_allowlist(in, &allow, &error));
  EXPECT_FALSE(error.empty());
}

TEST(LintAllowlist, MalformedEntryIsAnError) {
  std::istringstream in(
      "[determinism]\n"
      "just-a-path-no-colons\n");
  Allowlist allow;
  std::string error;
  EXPECT_FALSE(parse_allowlist(in, &allow, &error));
}

TEST(LintNdjson, RoundTripsEverything) {
  LintRun run;
  run.root = "src";
  run.passes = {"determinism", "shared-state"};
  run.findings.push_back(Finding{"determinism", "sim/clock.cc", 24,
                                 "wall-clock", "steady_clock",
                                 "detail with \"quotes\" and \\ backslash",
                                 true});
  run.findings.push_back(
      Finding{"shared-state", "sim/sched.h", 23, "static-member",
              "live_instances", "plain detail", false});
  run.summary.files_scanned = 10;
  run.summary.findings = 2;
  run.summary.reported = 1;
  run.summary.allowlisted = 1;
  run.summary.stale = 0;

  std::ostringstream out;
  write_lint_ndjson(out, run);

  std::istringstream in(out.str());
  LintRun back;
  std::string error;
  ASSERT_TRUE(read_lint_ndjson(in, &back, &error)) << error;
  EXPECT_EQ(back, run);

  // Write -> read -> write is byte-stable.
  std::ostringstream out2;
  write_lint_ndjson(out2, back);
  EXPECT_EQ(out.str(), out2.str());
}

TEST(LintNdjson, RejectsWrongSchema) {
  std::istringstream in(
      "{\"lint_schema\":\"ppsim-lint-v0\",\"root\":\"src\",\"passes\":[]}\n");
  LintRun back;
  std::string error;
  EXPECT_FALSE(read_lint_ndjson(in, &back, &error));
  EXPECT_FALSE(error.empty());
}

TEST(LintNdjson, BaselineFileParses) {
  // The committed audit baseline must always stay readable by the
  // round-trip reader the lint_baseline ctest depends on.
  std::ifstream in(std::string(PPSIM_LINT_BASELINE_FILE));
  ASSERT_TRUE(in.good());
  LintRun base;
  std::string error;
  ASSERT_TRUE(read_lint_ndjson(in, &base, &error)) << error;
  EXPECT_EQ(base.root, "src");
  EXPECT_EQ(base.passes.size(), 5u);
  EXPECT_EQ(base.summary.reported, 0u)
      << "committed baseline contains unallowlisted findings";
  EXPECT_EQ(base.summary.findings, base.findings.size());
}

}  // namespace
}  // namespace ppsim::lint
