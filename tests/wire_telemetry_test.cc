// The fleet telemetry plane (docs/OBSERVABILITY.md, "Fleet telemetry"):
// delta snapshots, the ppsim-telemetry-v1 datagram format, metric-row
// round-trips, the Collector ingest core (dedup, closing snapshots,
// heartbeat-timeout loss), and the pinned byte-identity between the
// collector's folds and the offline folds over the same per-node inputs.

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/telemetry.h"
#include "sim/time.h"
#include "wire/collector.h"
#include "wire/telemetry.h"

namespace ppsim::wire {
namespace {

using obs::MetricsDeltaTracker;
using obs::MetricsRegistry;
using obs::ParsedMetric;
using obs::TrafficSample;
using sim::Time;

std::string registry_ndjson(const MetricsRegistry& registry) {
  std::ostringstream os;
  registry.write_ndjson(os);
  return os.str();
}

std::string sample_row(const TrafficSample& s) {
  std::ostringstream os;
  obs::write_sample_ndjson(os, s);
  std::string row = os.str();
  if (!row.empty() && row.back() == '\n') row.pop_back();
  return row;
}

TEST(MetricsDeltaTracker, ShipsOnlyChangedRows) {
  MetricsRegistry registry;
  registry.counter("chunks").inc(3);
  registry.gauge("continuity").set(0.5);

  MetricsDeltaTracker tracker;
  EXPECT_EQ(tracker.collect(registry).size(), 2u);
  EXPECT_TRUE(tracker.collect(registry).empty());  // nothing changed

  registry.counter("chunks").inc();
  const std::vector<std::string> delta = tracker.collect(registry);
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_NE(delta[0].find("\"chunks\""), std::string::npos);
  EXPECT_NE(delta[0].find("\"value\":4"), std::string::npos);

  // collect_full re-ships everything and resets the delta baseline.
  EXPECT_EQ(tracker.collect_full(registry).size(), 2u);
  EXPECT_TRUE(tracker.collect(registry).empty());
}

TEST(TelemetryMetricRow, ParsesAndAppliesCounterAndGauge) {
  MetricsRegistry registry;
  registry.counter("sent", {{"isp", "tele"}}).inc(42);
  registry.gauge("rss").set(1.25e8);

  MetricsRegistry back;
  std::istringstream in(registry_ndjson(registry));
  std::size_t skipped = 7;
  EXPECT_EQ(obs::read_metrics_ndjson(in, &back, &skipped), 2u);
  EXPECT_EQ(skipped, 0u);
  // The round-trip is byte-stable — the collector-side registry
  // re-serializes to the exact sink bytes.
  EXPECT_EQ(registry_ndjson(back), registry_ndjson(registry));
}

TEST(TelemetryMetricRow, CounterApplyIsMonotonicGaugeIsLastWriteWins) {
  ParsedMetric m;
  ASSERT_TRUE(obs::parse_metric_ndjson(
      R"({"metric":"sent","type":"counter","labels":{},"value":10})", &m));
  ASSERT_EQ(m.kind, ParsedMetric::Kind::kCounter);
  EXPECT_EQ(m.counter_value, 10u);

  MetricsRegistry registry;
  EXPECT_TRUE(obs::apply_metric(m, &registry));
  m.counter_value = 5;  // a stale replay can never rewind the counter
  EXPECT_TRUE(obs::apply_metric(m, &registry));
  EXPECT_EQ(registry.counter("sent").value(), 10u);
  m.counter_value = 12;
  EXPECT_TRUE(obs::apply_metric(m, &registry));
  EXPECT_EQ(registry.counter("sent").value(), 12u);

  ParsedMetric g;
  ASSERT_TRUE(obs::parse_metric_ndjson(
      R"({"metric":"rss","type":"gauge","labels":{},"value":7.5})", &g));
  ASSERT_EQ(g.kind, ParsedMetric::Kind::kGauge);
  EXPECT_TRUE(obs::apply_metric(g, &registry));
  g.gauge_value = 2.5;
  EXPECT_TRUE(obs::apply_metric(g, &registry));
  EXPECT_EQ(registry.gauge("rss").value(), 2.5);
}

TEST(TelemetryMetricRow, HistogramRowsAreRecognizedButSkipped) {
  MetricsRegistry registry;
  registry.histogram("lat", {1.0, 2.0}).observe(1.5);
  const std::string rows = registry_ndjson(registry);

  ParsedMetric m;
  std::istringstream lines(rows);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_TRUE(obs::parse_metric_ndjson(line, &m));
  EXPECT_EQ(m.kind, ParsedMetric::Kind::kSkipped);
  MetricsRegistry back;
  EXPECT_FALSE(obs::apply_metric(m, &back));

  std::istringstream in(rows);
  std::size_t skipped = 0;
  EXPECT_EQ(obs::read_metrics_ndjson(in, &back, &skipped), 0u);
  EXPECT_EQ(skipped, 1u);

  EXPECT_FALSE(obs::parse_metric_ndjson("not a metric row", &m));
  EXPECT_FALSE(obs::parse_metric_ndjson(R"({"t":0.5,"alive":3})", &m));
}

TEST(TelemetryHeartbeat, EncodeDecodeRoundTrip) {
  TelemetryHeartbeat hb;
  hb.node = net::IpAddress(127, 2, 0, 10);
  hb.role = "peer";
  hb.epoch = 3;
  hb.seq = 17;
  hb.uptime = Time::from_seconds(12.5);
  hb.closing = false;

  const std::string line = encode_heartbeat(hb);
  EXPECT_EQ(classify_telemetry_record(line), TelemetryRecord::kHeartbeat);
  EXPECT_NE(line.find("\"telemetry_schema\":\"ppsim-telemetry-v1\""),
            std::string::npos);
  EXPECT_NE(line.find("\"state\":\"up\""), std::string::npos);

  TelemetryHeartbeat back;
  ASSERT_TRUE(decode_heartbeat(line, &back));
  EXPECT_EQ(back.node, hb.node);
  EXPECT_EQ(back.role, "peer");
  EXPECT_EQ(back.epoch, 3);
  EXPECT_EQ(back.seq, 17u);
  EXPECT_EQ(back.uptime, hb.uptime);
  EXPECT_FALSE(back.closing);

  hb.closing = true;
  ASSERT_TRUE(decode_heartbeat(encode_heartbeat(hb), &back));
  EXPECT_TRUE(back.closing);

  EXPECT_FALSE(decode_heartbeat("", &back));
  EXPECT_FALSE(decode_heartbeat("{\"metric\":\"x\"}", &back));
  EXPECT_FALSE(decode_heartbeat(
      "{\"telemetry_schema\":\"ppsim-telemetry-v2\",\"node\":\"127.0.0.1\","
      "\"role\":\"peer\",\"epoch\":1,\"seq\":0,\"uptime_s\":0.000000,"
      "\"state\":\"up\"}",
      &back));
}

TEST(TelemetryRecordInventory, ClassifiesByPrefix) {
  EXPECT_EQ(classify_telemetry_record("{\"metric\":\"x\",\"type\":..."),
            TelemetryRecord::kMetric);
  EXPECT_EQ(classify_telemetry_record("{\"t\":0.500000,\"alive\":3"),
            TelemetryRecord::kSample);
  EXPECT_EQ(classify_telemetry_record("{\"bench_schema\":\"x\"}"),
            TelemetryRecord::kUnknown);
  // One display name per non-unknown enumerator, audited against docs.
  EXPECT_EQ(kTelemetryRecordNames.size(), 3u);
}

TEST(TelemetryDatagrams, PacksRowsBehindPerDatagramHeartbeats) {
  TelemetryHeartbeat hb;
  hb.node = net::IpAddress(127, 1, 0, 10);
  hb.role = "peer";
  hb.seq = 5;

  // No payload: one heartbeat-only datagram.
  const auto empty = build_telemetry_datagrams(hb, {}, {});
  ASSERT_EQ(empty.size(), 1u);
  TelemetryHeartbeat back;
  ASSERT_TRUE(decode_heartbeat(empty[0], &back));
  EXPECT_EQ(back.seq, 5u);

  // Small payload: heartbeat first, then metric rows, then sample rows.
  const std::string metric =
      R"({"metric":"sent","type":"counter","labels":{},"value":1})";
  TrafficSample s;
  s.t = Time::from_seconds(2.0);
  const auto one = build_telemetry_datagrams(hb, {metric}, {sample_row(s)});
  ASSERT_EQ(one.size(), 1u);
  std::istringstream lines(one[0]);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(classify_telemetry_record(line), TelemetryRecord::kHeartbeat);
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, metric);
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, sample_row(s));
  EXPECT_FALSE(std::getline(lines, line));
}

TEST(TelemetryDatagrams, SplitsOversizedSnapshotsWithConsecutiveSeqs) {
  TelemetryHeartbeat hb;
  hb.node = net::IpAddress(127, 1, 0, 10);
  hb.role = "peer";
  hb.seq = 100;

  std::vector<std::string> rows;
  for (int i = 0; i < 8; ++i)
    rows.push_back("{\"metric\":\"m" + std::to_string(i) +
                   "\",\"type\":\"counter\",\"labels\":{},\"value\":1}");
  // A cap close to one heartbeat + one row forces one row per datagram.
  const std::size_t cap = encode_heartbeat(hb).size() + rows[0].size() + 8;
  const auto datagrams = build_telemetry_datagrams(hb, rows, {}, cap);
  ASSERT_GT(datagrams.size(), 1u);

  std::vector<std::string> reassembled;
  for (std::size_t i = 0; i < datagrams.size(); ++i) {
    std::istringstream lines(datagrams[i]);
    std::string line;
    ASSERT_TRUE(std::getline(lines, line));
    TelemetryHeartbeat back;
    ASSERT_TRUE(decode_heartbeat(line, &back));
    EXPECT_EQ(back.seq, 100u + i);  // consecutive, each its own heartbeat
    while (std::getline(lines, line)) reassembled.push_back(line);
  }
  EXPECT_EQ(reassembled, rows);

  // A single row larger than the cap still ships (alone), never dropped.
  const std::string huge(2 * cap, 'x');
  const auto overweight = build_telemetry_datagrams(hb, {huge}, {}, cap);
  ASSERT_EQ(overweight.size(), 1u);
  EXPECT_NE(overweight[0].find(huge), std::string::npos);
}

TEST(TelemetryParseHostPort, AcceptsIpPortRejectsJunk) {
  net::IpAddress ip;
  std::uint16_t port = 0;
  ASSERT_TRUE(parse_host_port("127.0.0.9:47500", &ip, &port));
  EXPECT_EQ(ip, net::IpAddress(127, 0, 0, 9));
  EXPECT_EQ(port, 47500);
  EXPECT_FALSE(parse_host_port("127.0.0.9", &ip, &port));
  EXPECT_FALSE(parse_host_port("127.0.0.9:0", &ip, &port));
  EXPECT_FALSE(parse_host_port("127.0.0.9:99999", &ip, &port));
  EXPECT_FALSE(parse_host_port("not-an-ip:123", &ip, &port));
  EXPECT_FALSE(parse_host_port("", &ip, &port));
}

// --- Collector ---

std::string closing_snapshot(net::IpAddress node, const std::string& role,
                             std::uint64_t seq,
                             const MetricsRegistry& registry,
                             const std::vector<std::string>& sample_rows) {
  TelemetryHeartbeat hb;
  hb.node = node;
  hb.role = role;
  hb.seq = seq;
  hb.closing = true;
  MetricsDeltaTracker tracker;
  const auto datagrams =
      build_telemetry_datagrams(hb, tracker.collect_full(registry),
                                sample_rows);
  // Tests keep snapshots under one datagram; join if that ever changes.
  EXPECT_EQ(datagrams.size(), 1u);
  return datagrams[0];
}

TEST(Collector, DedupsBySeqAndTracksLifecycle) {
  std::ostringstream events;
  Collector::Config config;
  config.heartbeat_timeout = Time::seconds(4);
  config.events_out = &events;
  Collector collector(config);

  const net::IpAddress peer(127, 2, 0, 10);
  TelemetryHeartbeat hb;
  hb.node = peer;
  hb.role = "peer";
  hb.seq = 1;
  const std::string d1 = build_telemetry_datagrams(hb, {}, {})[0];
  EXPECT_TRUE(collector.ingest(d1, Time::seconds(1)));
  EXPECT_FALSE(collector.ingest(d1, Time::seconds(1)));  // duplicate seq
  EXPECT_EQ(collector.node_count(), 1u);
  EXPECT_EQ(collector.duplicates_dropped(), 1u);
  EXPECT_FALSE(collector.ingest("garbage\n", Time::seconds(1)));
  EXPECT_EQ(collector.malformed_dropped(), 1u);
  EXPECT_NE(events.str().find("event=node-up node=127.2.0.10"),
            std::string::npos);

  // Silence past the heartbeat timeout: lost; a later datagram: recovered.
  collector.tick(Time::seconds(6));
  EXPECT_EQ(collector.lost_count(), 1u);
  EXPECT_NE(events.str().find("event=node-lost node=127.2.0.10"),
            std::string::npos);
  hb.seq = 2;
  EXPECT_TRUE(collector.ingest(build_telemetry_datagrams(hb, {}, {})[0],
                               Time::seconds(7)));
  EXPECT_EQ(collector.lost_count(), 0u);
  EXPECT_NE(events.str().find("event=node-recovered node=127.2.0.10"),
            std::string::npos);

  // Closing snapshot: closed, and immune to the timeout scan.
  hb.seq = 3;
  hb.closing = true;
  EXPECT_TRUE(collector.ingest(build_telemetry_datagrams(hb, {}, {})[0],
                               Time::seconds(8)));
  EXPECT_EQ(collector.closed_count(), 1u);
  collector.tick(Time::seconds(60));
  EXPECT_EQ(collector.closed_count(), 1u);
  EXPECT_EQ(collector.lost_count(), 0u);

  std::ostringstream report;
  collector.write_node_reports(report);
  EXPECT_NE(report.str().find("node=127.2.0.10 role=peer status=closed "
                              "last_seq=3"),
            std::string::npos);
}

TEST(Collector, FoldsAreByteIdenticalToOfflineFolds) {
  // Two nodes with overlapping counters, distinct gauges and one sample
  // each — the collector path (ingest datagrams) and the offline path
  // (fold the registries/samples directly) must produce identical bytes.
  MetricsRegistry reg_a;
  reg_a.counter("wire_packets_sent").inc(10);
  reg_a.counter("wire_rx_errors", {{"bucket", "truncated"}}).inc(2);
  reg_a.gauge("peer_continuity").set(0.875);
  TrafficSample sample_a;
  sample_a.t = Time::from_seconds(4.0);
  sample_a.bytes[0][0] = 900;
  sample_a.bytes[0][1] = 100;
  sample_a.same_isp_share_cum = 0.9;
  sample_a.neighbor_same_isp_share = 0.5;
  sample_a.avg_continuity = 0.875;
  sample_a.alive_peers = 1;

  MetricsRegistry reg_b;
  reg_b.counter("wire_packets_sent").inc(32);
  reg_b.gauge("resource_rss_bytes").set(8.0e7);
  TrafficSample sample_b;
  sample_b.t = Time::from_seconds(6.0);
  sample_b.bytes[1][1] = 300;
  sample_b.bytes[1][0] = 700;
  sample_b.same_isp_share_cum = 0.3;
  sample_b.neighbor_same_isp_share = 0.25;
  sample_b.avg_continuity = 0.5;
  sample_b.alive_peers = 3;

  const net::IpAddress ip_a(127, 1, 0, 10);
  const net::IpAddress ip_b(127, 2, 0, 11);

  Collector collector(Collector::Config{});
  EXPECT_TRUE(collector.ingest(
      closing_snapshot(ip_a, "peer", 1, reg_a, {sample_row(sample_a)}),
      Time::seconds(1)));
  EXPECT_TRUE(collector.ingest(
      closing_snapshot(ip_b, "peer", 1, reg_b, {sample_row(sample_b)}),
      Time::seconds(1)));
  // The closing resend (fresh seq, identical rows) must not change state.
  EXPECT_TRUE(collector.ingest(
      closing_snapshot(ip_a, "peer", 2, reg_a, {sample_row(sample_a)}),
      Time::seconds(1)));
  EXPECT_EQ(collector.closed_count(), 2u);

  MetricsRegistry live_fold;
  collector.fold_closed_metrics(&live_fold);
  TrafficSample live_matrix;
  ASSERT_TRUE(collector.fold_closed_matrix(&live_matrix));

  MetricsRegistry offline_fold;
  fold_fleet_metrics({{ip_a, &reg_a}, {ip_b, &reg_b}}, &offline_fold);
  TrafficSample offline_matrix;
  ASSERT_TRUE(fold_fleet_matrix({{ip_a, &sample_a}, {ip_b, &sample_b}},
                                &offline_matrix));

  EXPECT_EQ(registry_ndjson(live_fold), registry_ndjson(offline_fold));
  EXPECT_EQ(sample_row(live_matrix), sample_row(offline_matrix));

  // Fold semantics: counters total across nodes plus node-labeled rows;
  // the matrix sums elementwise with t = max and alive-weighted means.
  EXPECT_EQ(offline_fold.counter("wire_packets_sent").value(), 42u);
  EXPECT_EQ(offline_fold
                .counter("wire_packets_sent", {{"node", "127.1.0.10"}})
                .value(),
            10u);
  EXPECT_EQ(offline_matrix.t, Time::from_seconds(6.0));
  EXPECT_EQ(offline_matrix.bytes[0][0], 900u);
  EXPECT_EQ(offline_matrix.bytes[1][1], 300u);
  EXPECT_EQ(offline_matrix.alive_peers, 4u);
  // (900 + 300) intra of 2000 total; neighbor mean = (0.5*1 + 0.25*3)/4.
  EXPECT_DOUBLE_EQ(offline_matrix.same_isp_share_cum, 0.6);
  EXPECT_DOUBLE_EQ(offline_matrix.neighbor_same_isp_share, 0.3125);
  EXPECT_DOUBLE_EQ(offline_matrix.avg_continuity,
                   (0.875 * 1 + 0.5 * 3) / 4.0);
}

TEST(Collector, LostNodesStayOutOfFinalArtifacts) {
  MetricsRegistry reg;
  reg.counter("wire_packets_sent").inc(5);

  const net::IpAddress closed_ip(127, 1, 0, 10);
  const net::IpAddress lost_ip(127, 2, 0, 11);

  Collector collector(Collector::Config{});
  EXPECT_TRUE(collector.ingest(closing_snapshot(closed_ip, "peer", 1, reg, {}),
                               Time::seconds(1)));
  TelemetryHeartbeat hb;
  hb.node = lost_ip;
  hb.role = "peer";
  hb.seq = 1;
  MetricsDeltaTracker tracker;
  EXPECT_TRUE(collector.ingest(
      build_telemetry_datagrams(hb, tracker.collect_full(reg), {})[0],
      Time::seconds(1)));
  collector.tick(Time::seconds(60));
  EXPECT_EQ(collector.closed_count(), 1u);
  EXPECT_EQ(collector.lost_count(), 1u);

  // Only the closed node folds — matching the offline fold over the sink
  // files that exist (the lost node never wrote any).
  MetricsRegistry folded;
  collector.fold_closed_metrics(&folded);
  MetricsRegistry offline;
  fold_fleet_metrics({{closed_ip, &reg}}, &offline);
  EXPECT_EQ(registry_ndjson(folded), registry_ndjson(offline));
  EXPECT_EQ(folded.counter("wire_packets_sent").value(), 5u);
}

TEST(Collector, EmitsFleetSamplesWhenTheSampleClockAdvances) {
  std::ostringstream fleet;
  Collector::Config config;
  config.fleet_samples_out = &fleet;
  Collector collector(config);

  TrafficSample s;
  s.t = Time::from_seconds(2.0);
  s.bytes[0][0] = 100;
  s.alive_peers = 1;
  TelemetryHeartbeat hb;
  hb.node = net::IpAddress(127, 1, 0, 10);
  hb.role = "peer";
  hb.seq = 1;
  ASSERT_TRUE(collector.ingest(
      build_telemetry_datagrams(hb, {}, {sample_row(s)})[0],
      Time::seconds(2)));
  collector.tick(Time::seconds(2));
  collector.tick(Time::seconds(3));  // no advance — no duplicate row

  s.t = Time::from_seconds(4.0);
  s.bytes[0][0] = 250;
  hb.seq = 2;
  ASSERT_TRUE(collector.ingest(
      build_telemetry_datagrams(hb, {}, {sample_row(s)})[0],
      Time::seconds(4)));
  collector.tick(Time::seconds(4));

  // Exactly one row per fleet-t advance; the stream parses as the
  // standard samples NDJSON (duplicate t would be rejected here).
  std::istringstream in(fleet.str());
  const std::vector<TrafficSample> rows = obs::read_samples_ndjson(in);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].t, Time::from_seconds(2.0));
  EXPECT_EQ(rows[1].t, Time::from_seconds(4.0));
  EXPECT_EQ(rows[1].bytes[0][0], 250u);

  // The summary's t is the collector's wall clock (the `now` we pass),
  // not the folded fleet sample time.
  std::ostringstream summary;
  collector.write_summary(summary, Time::seconds(5));
  EXPECT_NE(summary.str().find("[collect] t=5.0 nodes=1"),
            std::string::npos);
  EXPECT_NE(summary.str().find("intra_isp_share=1.000"), std::string::npos);
}

}  // namespace
}  // namespace ppsim::wire
