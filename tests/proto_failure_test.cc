// Failure-injection tests: the swarm must degrade gracefully, not crash or
// wedge, when infrastructure or peers disappear mid-run.

#include <gtest/gtest.h>

#include "proto_testutil.h"

namespace ppsim::proto {
namespace {

using testing::MiniWorld;

TEST(FailureTest, SourceStopsMidBroadcast) {
  MiniWorld world;
  Peer& viewer = world.add_peer(net::IspCategory::kTele);
  viewer.join();
  world.simulator().run_until(sim::Time::minutes(2));
  ASSERT_TRUE(viewer.playback_started());
  const auto played_before = viewer.counters().chunks_played;

  world.source().stop();  // the channel goes dark
  world.simulator().run_until(sim::Time::minutes(6));

  // The viewer drains its buffer and then stalls at the frozen live edge —
  // playback neither crashes nor runs ahead of available data.
  EXPECT_LE(viewer.playback_position(), viewer.live_edge_estimate() + 1);
  EXPECT_GT(viewer.counters().chunks_played, played_before);
  // Misses don't explode: the peer stops at the edge rather than skipping
  // forever.
  EXPECT_LT(viewer.counters().chunks_missed,
            viewer.counters().chunks_played);
}

TEST(FailureTest, MassDeparture) {
  MiniWorld world;
  std::vector<Peer*> crowd;
  for (int i = 0; i < 12; ++i)
    crowd.push_back(&world.add_peer(net::IspCategory::kTele));
  Peer& survivor = world.add_peer(net::IspCategory::kTele);
  for (auto* p : crowd) p->join();
  survivor.join();
  world.simulator().run_until(sim::Time::minutes(2));
  ASSERT_GT(survivor.neighbor_count(), 0u);

  // Everyone else leaves at once (the broadcast "ends" for them).
  world.simulator().schedule(sim::Time::zero(), [&] {
    for (auto* p : crowd) p->leave();
  });
  world.simulator().run_until(sim::Time::minutes(5));

  // The survivor falls back to the source and keeps playing.
  EXPECT_TRUE(survivor.alive());
  EXPECT_GT(survivor.counters().continuity(), 0.8);
}

TEST(FailureTest, AbruptDepartureWithoutGoodbye) {
  // A peer vanishing silently (detach, no Goodbye) must be aged out by its
  // neighbors' idle timers and its in-flight requests must time out.
  MiniWorld world;
  PeerConfig config;
  config.neighbor_idle_timeout = sim::Time::seconds(30);
  Peer& a = world.add_peer(net::IspCategory::kTele, config);
  Peer& b = world.add_peer(net::IspCategory::kTele, config);
  a.join();
  b.join();
  world.simulator().run_until(sim::Time::minutes(2));
  auto a_neighbors = a.neighbor_ips();
  ASSERT_TRUE(std::find(a_neighbors.begin(), a_neighbors.end(), b.ip()) !=
              a_neighbors.end());

  // Simulate a crash: detach from the network without protocol goodbyes.
  world.network().detach(b.ip());
  world.simulator().run_until(sim::Time::minutes(4));

  a_neighbors = a.neighbor_ips();
  EXPECT_TRUE(std::find(a_neighbors.begin(), a_neighbors.end(), b.ip()) ==
              a_neighbors.end())
      << "crashed neighbor was never aged out";
  EXPECT_GT(a.counters().neighbors_dropped_idle +
                a.counters().neighbors_dropped_optimized,
            0u);
  EXPECT_GT(a.counters().continuity(), 0.8);
}

TEST(FailureTest, TrackerUnreachableStillJoinsViaReferral) {
  // If every tracker query is lost, a client can still join: the join
  // reply carries the playlink, and the source's referral bootstrap the
  // neighborhood.
  MiniWorld world;
  Peer& viewer = world.add_peer(net::IspCategory::kTele);
  // Kill the tracker before the viewer joins.
  world.simulator().schedule(sim::Time::zero(), [&] {
    world.network().detach(world.tracker().ip());
  });
  viewer.join();
  world.simulator().run_until(sim::Time::minutes(3));
  EXPECT_TRUE(viewer.playback_started());
  EXPECT_GT(viewer.counters().continuity(), 0.5);
}

TEST(FailureTest, RejoinAfterLeave) {
  // leave() is terminal for a Peer object; a "rejoining user" is a new Peer
  // on a fresh address. The old address's in-flight traffic must not leak
  // into the new peer.
  MiniWorld world;
  Peer& first = world.add_peer(net::IspCategory::kTele);
  first.join();
  world.simulator().run_until(sim::Time::minutes(1));
  first.leave();
  Peer& second = world.add_peer(net::IspCategory::kTele);
  second.join();
  world.simulator().run_until(sim::Time::minutes(4));
  EXPECT_TRUE(second.playback_started());
  EXPECT_GT(second.counters().continuity(), 0.8);
  EXPECT_FALSE(first.alive());
}

}  // namespace
}  // namespace ppsim::proto
