// End-to-end causal tracing: CLI flag plumbing, referral lineage and
// startup critical paths riding ExperimentResult, behavior invariance
// (causal tracing is passive), and spans-file determinism.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/cli.h"
#include "core/experiment.h"
#include "obs/span_tracker.h"
#include "obs/trace.h"
#include "workload/scenario.h"

namespace ppsim::core {
namespace {

CliParseResult parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"ppsim"};
  argv.insert(argv.end(), args.begin(), args.end());
  return parse_cli(static_cast<int>(argv.size()), argv.data());
}

TEST(CausalCli, CausalTraceFlagParses) {
  auto r = parse({"--causal-trace"});
  ASSERT_FALSE(r.error.has_value());
  EXPECT_TRUE(r.options.causal_trace);
  EXPECT_TRUE(r.options.spans_out.empty());
  EXPECT_FALSE(parse({}).options.causal_trace);
}

TEST(CausalCli, SpansOutImpliesCausalTrace) {
  auto r = parse({"--spans-out", "/tmp/spans.ndjson"});
  ASSERT_FALSE(r.error.has_value());
  EXPECT_TRUE(r.options.causal_trace);
  EXPECT_EQ(r.options.spans_out, "/tmp/spans.ndjson");
  EXPECT_TRUE(parse({"--spans-out"}).error.has_value());
}

ExperimentConfig small_config(std::uint64_t seed = 7) {
  ExperimentConfig config;
  config.scenario = workload::unpopular_channel();
  config.scenario.viewers = 25;
  config.scenario.duration = sim::Time::minutes(3);
  config.scenario.seed = seed;
  config.probes = {tele_probe()};
  return config;
}

TEST(CausalExperiment, LineageAndCriticalPathsRideTheResult) {
  ExperimentConfig config = small_config();
  obs::SpanTracker spans;
  config.observability.spans = &spans;
  const ExperimentResult result = run_experiment(config);

  EXPECT_GT(spans.span_count(), 0u);
  ASSERT_GT(result.lineage.total.referrals, 0u);
  // Referrals decompose exactly across introduction channels.
  std::uint64_t by_via = 0;
  for (const auto& [via, bucket] : result.lineage.by_via)
    by_via += bucket.referrals;
  EXPECT_GE(result.lineage.by_via.count("tracker"), 1u);
  EXPECT_EQ(by_via, result.lineage.total.referrals);
  std::uint64_t bucketed = 0;
  for (const auto& b : result.referral_share) bucketed += b.referrals;
  EXPECT_EQ(bucketed, result.lineage.total.referrals);

  // The headline acceptance: every playback-reaching peer's stage vector
  // sums exactly (in integer microseconds) to its measured startup delay.
  ASSERT_GT(result.critical_paths.size(), 0u);
  for (const auto& p : result.critical_paths) {
    sim::Time sum = sim::Time::zero();
    for (const sim::Time s : p.stages) {
      EXPECT_FALSE(s.is_negative()) << p.peer;
      sum += s;
    }
    EXPECT_EQ(sum, p.startup) << p.peer;
    EXPECT_FALSE(p.isp.empty()) << p.peer;
  }
}

TEST(CausalExperiment, CausalTracingDoesNotPerturbTheSimulation) {
  const ExperimentResult base = run_experiment(small_config());

  ExperimentConfig causal = small_config();
  obs::SpanTracker spans;
  causal.observability.spans = &spans;
  causal.observability.causal_trace = true;
  const ExperimentResult traced = run_experiment(causal);

  // Span ids are bookkeeping on existing messages; no extra sim events,
  // no behavioral drift anywhere in the ground truth.
  EXPECT_EQ(base.traffic.bytes, traced.traffic.bytes);
  EXPECT_EQ(base.swarm.events_executed, traced.swarm.events_executed);
  EXPECT_EQ(base.swarm.peers_spawned, traced.swarm.peers_spawned);
  EXPECT_EQ(base.counter_totals.bytes_downloaded,
            traced.counter_totals.bytes_downloaded);
  ASSERT_EQ(base.sessions.size(), traced.sessions.size());
  for (std::size_t i = 0; i < base.sessions.size(); ++i) {
    EXPECT_EQ(base.sessions[i].joined, traced.sessions[i].joined);
    EXPECT_EQ(base.sessions[i].left, traced.sessions[i].left);
  }
}

TEST(CausalExperiment, SpansFileIsDeterministicAcrossRuns) {
  auto run_spans = [] {
    ExperimentConfig config = small_config();
    obs::SpanTracker spans;
    config.observability.spans = &spans;
    run_experiment(config);
    std::ostringstream os;
    spans.write_ndjson(os);
    return os.str();
  };
  const std::string first = run_spans();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run_spans());
}

TEST(CausalExperiment, CausalEventsAppendToTheExistingVocabulary) {
  ExperimentConfig config = small_config();
  obs::SpanTracker spans;
  obs::CountingTraceSink trace;
  config.observability.spans = &spans;
  config.observability.trace = &trace;
  run_experiment(config);

  // New milestone events appear only under causal tracing; the tee hands
  // the trace sink and the tracker the same stream.
  EXPECT_GT(trace.count("join_reply"), 0u);
  EXPECT_GT(trace.count("chunk_delivered"), 0u);
  EXPECT_GT(trace.count("playback_start"), 0u);
  EXPECT_GT(trace.count("bootstrap_serve"), 0u);
  EXPECT_EQ(trace.total(), spans.events_observed());
}

}  // namespace
}  // namespace ppsim::core
