#include <gtest/gtest.h>

#include <cmath>

#include "workload/campaign.h"
#include "workload/scenario.h"

namespace ppsim::workload {
namespace {

TEST(IspMixTest, SampleFollowsWeights) {
  IspMix mix;
  mix[net::IspCategory::kTele] = 0.7;
  mix[net::IspCategory::kCnc] = 0.3;
  sim::Rng rng(5);
  int tele = 0, cnc = 0, other = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    switch (mix.sample(rng)) {
      case net::IspCategory::kTele:
        ++tele;
        break;
      case net::IspCategory::kCnc:
        ++cnc;
        break;
      default:
        ++other;
    }
  }
  EXPECT_EQ(other, 0);
  EXPECT_NEAR(static_cast<double>(tele) / n, 0.7, 0.02);
  EXPECT_NEAR(static_cast<double>(cnc) / n, 0.3, 0.02);
}

TEST(ScenarioTest, PopularChannelShape) {
  ScenarioSpec s = popular_channel();
  EXPECT_GT(s.viewers, 200);
  // TELE-dominated audience, as in Figure 2(a).
  EXPECT_GT(s.mix[net::IspCategory::kTele], s.mix[net::IspCategory::kCnc]);
  EXPECT_GT(s.mix[net::IspCategory::kTele], 0.5);
  EXPECT_GT(s.mix[net::IspCategory::kForeign], 0.0);
}

TEST(ScenarioTest, UnpopularChannelShape) {
  ScenarioSpec s = unpopular_channel();
  EXPECT_LT(s.viewers, popular_channel().viewers / 2);
  // CNC slightly ahead of TELE, as in Figure 3(a).
  EXPECT_GT(s.mix[net::IspCategory::kCnc], s.mix[net::IspCategory::kTele]);
  // Scarce foreign audience (the paper's explanation for Fig 5).
  EXPECT_LT(s.mix[net::IspCategory::kForeign], 0.06);
}

TEST(ScenarioTest, ChannelsDiffer) {
  EXPECT_NE(popular_channel().channel.id, unpopular_channel().channel.id);
}

TEST(AccessClassTest, CategoryMapping) {
  sim::Rng rng(1);
  EXPECT_EQ(access_class_for(net::IspCategory::kCer, rng),
            net::AccessClass::kCampus);
  EXPECT_EQ(access_class_for(net::IspCategory::kTele, rng),
            net::AccessClass::kAdsl);
  EXPECT_EQ(access_class_for(net::IspCategory::kCnc, rng),
            net::AccessClass::kAdsl);
  // Foreign access is mixed cable/campus.
  bool saw_cable = false, saw_campus = false;
  for (int i = 0; i < 200; ++i) {
    auto c = access_class_for(net::IspCategory::kForeign, rng);
    saw_cable |= (c == net::AccessClass::kCable);
    saw_campus |= (c == net::AccessClass::kCampus);
  }
  EXPECT_TRUE(saw_cable);
  EXPECT_TRUE(saw_campus);
}

TEST(CampaignTest, Deterministic) {
  CampaignConfig cfg;
  auto a = day_scenario(popular_channel(), cfg, 5);
  auto b = day_scenario(popular_channel(), cfg, 5);
  EXPECT_EQ(a.viewers, b.viewers);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_DOUBLE_EQ(a.mix[net::IspCategory::kForeign],
                   b.mix[net::IspCategory::kForeign]);
}

TEST(CampaignTest, DaysDiffer) {
  CampaignConfig cfg;
  auto d1 = day_scenario(popular_channel(), cfg, 1);
  auto d2 = day_scenario(popular_channel(), cfg, 2);
  EXPECT_NE(d1.seed, d2.seed);
  // Audience/foreign share drift day to day (almost surely different).
  EXPECT_TRUE(d1.viewers != d2.viewers ||
              d1.mix[net::IspCategory::kForeign] !=
                  d2.mix[net::IspCategory::kForeign]);
}

TEST(CampaignTest, TwentyEightDays) {
  CampaignConfig cfg;
  auto days = campaign_scenarios(popular_channel(), cfg);
  EXPECT_EQ(days.size(), 28u);
  for (const auto& d : days) {
    EXPECT_GE(d.viewers, 30);
    EXPECT_GE(d.mix[net::IspCategory::kForeign], 0.002);
    EXPECT_LE(d.mix[net::IspCategory::kForeign], 0.45);
  }
}

TEST(CampaignTest, ForeignShareSwingsMoreThanAudience) {
  // The design calls for foreign-share volatility >> audience volatility
  // (it drives the Mason probe's unstable locality in Figure 6).
  CampaignConfig cfg;
  auto base = popular_channel();
  auto days = campaign_scenarios(base, cfg);
  double max_aud = 0, min_aud = 1e9, max_for = 0, min_for = 1e9;
  for (const auto& d : days) {
    max_aud = std::max(max_aud, static_cast<double>(d.viewers));
    min_aud = std::min(min_aud, static_cast<double>(d.viewers));
    max_for = std::max(max_for, d.mix[net::IspCategory::kForeign]);
    min_for = std::min(min_for, d.mix[net::IspCategory::kForeign]);
  }
  EXPECT_GT(max_for / min_for, max_aud / min_aud);
}

TEST(CampaignTest, WeekendBoost) {
  CampaignConfig cfg;
  cfg.audience_sigma = 0.0;  // isolate the weekend effect
  auto base = popular_channel();
  auto mon = day_scenario(base, cfg, 1);
  auto sat = day_scenario(base, cfg, 6);
  EXPECT_GT(sat.viewers, mon.viewers);
  EXPECT_NEAR(static_cast<double>(sat.viewers) / mon.viewers,
              cfg.weekend_boost, 0.02);
}

}  // namespace
}  // namespace ppsim::workload
