// Resilience analysis over synthetic time-series: dip depth,
// time-to-recover, and the intra-ISP-share trajectory are computed from
// obs::TrafficSample rows without running any simulation.

#include "faults/resilience.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ppsim::faults {
namespace {

obs::TrafficSample sample_at(int t_s, double continuity, double share) {
  obs::TrafficSample s;
  s.t = sim::Time::seconds(t_s);
  s.avg_continuity = continuity;
  s.same_isp_share_interval = share;
  return s;
}

FaultPlan one_window(int start_s, int end_s) {
  FaultPlan plan;
  FaultWindow w;
  w.kind = FaultKind::kBlackout;
  w.start = sim::Time::seconds(start_s);
  w.end = sim::Time::seconds(end_s);
  w.label = "test-window";
  plan.windows.push_back(w);
  return plan;
}

TEST(ResilienceTest, DipAndRecoveryMeasured) {
  // Healthy at 0.9, dips to 0.5 during a 60-120 s window, back over the
  // threshold at t=150.
  std::vector<obs::TrafficSample> samples;
  for (int t = 10; t <= 60; t += 10) samples.push_back(sample_at(t, 0.9, 0.6));
  samples.push_back(sample_at(80, 0.7, 0.8));
  samples.push_back(sample_at(100, 0.5, 0.8));
  samples.push_back(sample_at(120, 0.6, 0.8));
  samples.push_back(sample_at(140, 0.8, 0.7));
  samples.push_back(sample_at(150, 0.88, 0.6));

  const auto rows = analyze_resilience(one_window(60, 120), samples);
  ASSERT_EQ(rows.size(), 1u);
  const WindowResilience& r = rows[0];
  EXPECT_TRUE(r.has_samples);
  EXPECT_NEAR(r.baseline_continuity, 0.9, 1e-9);
  EXPECT_NEAR(r.min_continuity, 0.5, 1e-9);
  EXPECT_NEAR(r.dip_depth, 0.4, 1e-9);
  ASSERT_TRUE(r.recovered);
  // First sample at/after the window end that clears 0.95 * 0.9 = 0.855 is
  // t=150, i.e. 30 s after the window closed.
  EXPECT_NEAR(r.time_to_recover_s, 30.0, 1e-9);
  // Intra-ISP share rose under impairment and relaxed afterwards.
  EXPECT_GT(r.share_during, r.share_before);
  EXPECT_LT(r.share_after, r.share_during);
}

TEST(ResilienceTest, NeverRecoveredWindow) {
  std::vector<obs::TrafficSample> samples;
  for (int t = 10; t <= 60; t += 10) samples.push_back(sample_at(t, 0.9, 0.5));
  for (int t = 70; t <= 200; t += 10)
    samples.push_back(sample_at(t, 0.3, 0.5));
  const auto rows = analyze_resilience(one_window(60, 120), samples);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0].has_samples);
  EXPECT_FALSE(rows[0].recovered);
  EXPECT_NEAR(rows[0].min_continuity, 0.3, 1e-9);
}

TEST(ResilienceTest, NoDipMeansInstantRecovery) {
  std::vector<obs::TrafficSample> samples;
  for (int t = 10; t <= 200; t += 10)
    samples.push_back(sample_at(t, 0.95, 0.5));
  const auto rows = analyze_resilience(one_window(60, 120), samples);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0].recovered);
  EXPECT_NEAR(rows[0].dip_depth, 0.0, 1e-9);
  EXPECT_NEAR(rows[0].time_to_recover_s, 0.0, 1e-9);
}

TEST(ResilienceTest, UncoveredWindowFlagged) {
  std::vector<obs::TrafficSample> samples;
  for (int t = 10; t <= 50; t += 10) samples.push_back(sample_at(t, 0.9, 0.5));
  // Window entirely after the series ends.
  const auto rows = analyze_resilience(one_window(300, 360), samples);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_FALSE(rows[0].has_samples);
  // An empty series covers nothing.
  const auto empty_rows = analyze_resilience(one_window(60, 120), {});
  ASSERT_EQ(empty_rows.size(), 1u);
  EXPECT_FALSE(empty_rows[0].has_samples);
}

TEST(ResilienceTest, LookbackOptionBoundsBaseline) {
  std::vector<obs::TrafficSample> samples;
  samples.push_back(sample_at(10, 0.2, 0.5));  // ancient history
  samples.push_back(sample_at(55, 0.9, 0.5));
  samples.push_back(sample_at(130, 0.9, 0.5));
  ResilienceOptions options;
  options.lookback = sim::Time::seconds(10);
  const auto rows =
      analyze_resilience(one_window(60, 120), samples, options);
  ASSERT_EQ(rows.size(), 1u);
  // Only the t=55 sample is inside the 10 s lookback.
  EXPECT_NEAR(rows[0].baseline_continuity, 0.9, 1e-9);
}

TEST(ResilienceTest, TimelineTablePrints) {
  std::vector<obs::TrafficSample> samples;
  for (int t = 10; t <= 200; t += 10)
    samples.push_back(sample_at(t, t < 60 || t > 130 ? 0.9 : 0.6, 0.5));
  const auto rows = analyze_resilience(one_window(60, 120), samples);
  std::ostringstream os;
  print_fault_timeline(os, rows);
  const std::string text = os.str();
  EXPECT_NE(text.find("blackout"), std::string::npos);
  EXPECT_NE(text.find("test-window"), std::string::npos);
  EXPECT_NE(text.find("60-120"), std::string::npos);
  EXPECT_NE(text.find("share b/d/a"), std::string::npos);
}

}  // namespace
}  // namespace ppsim::faults
