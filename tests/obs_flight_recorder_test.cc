#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace ppsim::obs {
namespace {

namespace fs = std::filesystem;

// Fresh per-test scratch directory under the system temp dir.
class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ppsim_fr_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }
  fs::path dir_;
};

TraceEvent chunk_event(double t, int n) {
  TraceEvent event(sim::Time::seconds(t), "chunk_delivered");
  event.field("n", n);
  return event;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST_F(FlightRecorderTest, ForwardsDownstreamAndBoundsRings) {
  CountingTraceSink downstream;
  FlightRecorder::Options options;
  options.ring_capacity = 4;
  options.downstream = &downstream;
  FlightRecorder recorder(options);

  for (int i = 0; i < 10; ++i) recorder.write(chunk_event(i, i));
  recorder.write(TraceEvent(sim::Time::seconds(11), "peer_join"));

  EXPECT_EQ(downstream.total(), 11u);  // tee forwards everything
  // Ring keeps only the last 4 chunk events, but the rare event survives.
  EXPECT_EQ(recorder.events_buffered(), 5u);
}

TEST_F(FlightRecorderTest, TriggerDumpsBundleWithSections) {
  MetricsRegistry metrics;
  metrics.counter("chunks").inc(7);
  FlightRecorder::Options options;
  options.dir = dir();
  options.metrics = &metrics;
  FlightRecorder recorder(options);

  for (int i = 0; i < 3; ++i) recorder.write(chunk_event(i, i));
  TrafficSample sample;
  sample.t = sim::Time::seconds(2);
  sample.alive_peers = 42;
  recorder.note_sample(sample);

  ASSERT_TRUE(recorder.trigger(sim::Time::seconds(3), "test-reason"));
  EXPECT_EQ(recorder.dumps_written(), 1u);
  EXPECT_EQ(recorder.dump_failures(), 0u);
  ASSERT_EQ(recorder.dump_paths().size(), 1u);

  const std::string bundle = slurp(recorder.dump_paths()[0]);
  EXPECT_NE(bundle.find("\"postmortem\":\"test-reason\""), std::string::npos);
  EXPECT_NE(bundle.find("\"section\":\"events\""), std::string::npos);
  EXPECT_NE(bundle.find("\"section\":\"samples\""), std::string::npos);
  EXPECT_NE(bundle.find("\"section\":\"metrics\""), std::string::npos);
  EXPECT_NE(bundle.find("chunk_delivered"), std::string::npos);
  EXPECT_NE(bundle.find("\"alive\":42"), std::string::npos);
  // The postmortem_dumps self-counter is incremented after the snapshot, so
  // the bundle reflects the pre-dump metric state.
  EXPECT_EQ(metrics.find_counter("postmortem_dumps")->value(), 1u);
}

TEST_F(FlightRecorderTest, DumpFilenameUsesSimTimeAndSanitizedReason) {
  FlightRecorder::Options options;
  options.dir = dir();
  FlightRecorder recorder(options);
  ASSERT_TRUE(recorder.trigger(sim::Time::millis(1500), "health x/y"));
  const std::string path = recorder.dump_paths()[0];
  EXPECT_NE(path.find("postmortem-000-health-x-y-t1500000.ndjson"),
            std::string::npos)
      << path;
}

TEST_F(FlightRecorderTest, DebounceAndBudgetLimitDumps) {
  FlightRecorder::Options options;
  options.dir = dir();
  options.min_dump_gap = sim::Time::seconds(30);
  options.max_dumps = 2;
  FlightRecorder recorder(options);

  EXPECT_TRUE(recorder.trigger(sim::Time::seconds(10), "a"));
  EXPECT_FALSE(recorder.trigger(sim::Time::seconds(20), "b"));  // inside gap
  EXPECT_TRUE(recorder.trigger(sim::Time::seconds(50), "c"));
  EXPECT_FALSE(recorder.trigger(sim::Time::seconds(100), "d"));  // budget
  EXPECT_EQ(recorder.dumps_written(), 2u);
}

TEST_F(FlightRecorderTest, NoDirMeansNoDump) {
  FlightRecorder recorder(FlightRecorder::Options{});
  recorder.write(chunk_event(1, 1));
  EXPECT_FALSE(recorder.trigger(sim::Time::seconds(2), "nope"));
  EXPECT_EQ(recorder.dumps_written(), 0u);
}

TEST_F(FlightRecorderTest, AutoTriggersOnCrashAndFaultBegin) {
  FlightRecorder::Options options;
  options.dir = dir();
  options.min_dump_gap = sim::Time::seconds(1);
  FlightRecorder recorder(options);

  recorder.write(TraceEvent(sim::Time::seconds(5), "peer_crash"));
  EXPECT_EQ(recorder.dumps_written(), 1u);
  recorder.write(TraceEvent(sim::Time::seconds(10), "fault_begin"));
  EXPECT_EQ(recorder.dumps_written(), 2u);
  recorder.write(TraceEvent(sim::Time::seconds(15), "chunk_delivered"));
  EXPECT_EQ(recorder.dumps_written(), 2u);  // ordinary events don't trigger
}

TEST_F(FlightRecorderTest, SameInputsDumpByteIdenticalBundles) {
  auto run_once = [](const std::string& dir) {
    FlightRecorder::Options options;
    options.dir = dir;
    FlightRecorder recorder(options);
    for (int i = 0; i < 5; ++i) recorder.write(chunk_event(i, i));
    TrafficSample sample;
    sample.t = sim::Time::seconds(4);
    sample.alive_peers = 9;
    recorder.note_sample(sample);
    recorder.trigger(sim::Time::seconds(5), "same");
    return recorder.dump_paths()[0];
  };
  const fs::path dir_b = dir_ / "b";
  const std::string a = run_once((dir_ / "a").string());
  const std::string b = run_once(dir_b.string());
  EXPECT_EQ(fs::path(a).filename(), fs::path(b).filename());
  EXPECT_EQ(slurp(a), slurp(b));
}

TEST_F(FlightRecorderTest, DumpCapTruncatesPerCategoryWithMarkerRows) {
  FlightRecorder::Options options;
  options.dir = dir();
  options.ring_capacity = 8;        // buffer more than the dump allows
  options.max_dump_per_category = 3;
  FlightRecorder recorder(options);

  for (int i = 0; i < 8; ++i) recorder.write(chunk_event(i, i));
  recorder.write(TraceEvent(sim::Time::seconds(9), "peer_join"));  // under cap

  ASSERT_TRUE(recorder.trigger(sim::Time::seconds(10), "cap-test"));
  const std::string bundle = slurp(recorder.dump_paths()[0]);

  // Header + section marker count only the kept events and declare the cut.
  EXPECT_NE(bundle.find("\"events\":4,"), std::string::npos) << bundle;
  EXPECT_NE(bundle.find("\"section\":\"events\",\"count\":4,\"truncated\":1"),
            std::string::npos)
      << bundle;
  // One marker row for the capped ring; the uncapped one gets none.
  EXPECT_NE(bundle.find(
                "{\"truncated\":\"chunk_delivered\",\"kept\":3,\"dropped\":5}"),
            std::string::npos)
      << bundle;
  EXPECT_EQ(bundle.find("\"truncated\":\"peer_join\""), std::string::npos);
  // The kept events are the newest 3: n=5,6,7 survive, n=4 does not.
  EXPECT_NE(bundle.find("\"n\":7"), std::string::npos);
  EXPECT_NE(bundle.find("\"n\":5"), std::string::npos);
  EXPECT_EQ(bundle.find("\"n\":4"), std::string::npos);
}

TEST_F(FlightRecorderTest, DefaultDumpCapLeavesBundlesUntouched) {
  // Default ring capacity == default dump cap, so a default-config bundle
  // must carry no truncation vocabulary at all — existing consumers and
  // byte-identity goldens stay valid.
  FlightRecorder::Options options;
  options.dir = dir();
  FlightRecorder recorder(options);
  for (int i = 0; i < 100; ++i) recorder.write(chunk_event(i, i));
  ASSERT_TRUE(recorder.trigger(sim::Time::seconds(101), "no-cap"));
  const std::string bundle = slurp(recorder.dump_paths()[0]);
  EXPECT_EQ(bundle.find("truncated"), std::string::npos);
}

TEST_F(FlightRecorderTest, StandaloneSamplingTickStopsCleanly) {
  sim::Simulator simulator;
  FlightRecorder recorder(FlightRecorder::Options{});
  int captures = 0;
  recorder.start_sampling(simulator, sim::Time::seconds(1), [&] {
    ++captures;
    TrafficSample sample;
    sample.t = simulator.now();
    return sample;
  });
  EXPECT_TRUE(recorder.sampling_active());
  simulator.schedule(sim::Time::millis(3500),
                     [&] { recorder.stop_sampling(); });
  simulator.run();  // must terminate: the stopped chain re-arms no further
  EXPECT_FALSE(recorder.sampling_active());
  EXPECT_EQ(captures, 3);
  EXPECT_EQ(simulator.pending_events(), 0u);
}

}  // namespace
}  // namespace ppsim::obs
