#include "wire/udp.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/bandwidth.h"
#include "net/ip.h"
#include "proto/message.h"
#include "sim/time.h"

namespace ppsim::wire {
namespace {

// Each test binds its own far-corner port so parallel ctest shards never
// collide; sockets close with the transport at the end of the test body.
constexpr std::uint16_t kBasePort = 46310;

net::AccessProfile test_profile() { return net::AccessProfile{}; }

proto::Message sample_query() { return proto::JoinQuery{42}; }

struct Inbox {
  std::vector<proto::PeerTransport::Delivery> deliveries;
  proto::PeerTransport::Handler handler() {
    return [this](const proto::PeerTransport::Delivery& d) {
      deliveries.push_back(d);
    };
  }
};

TEST(WireUdpTransport, DeliversBetweenAttachedHosts) {
  UdpTransport transport({.port = kBasePort, .epoch = 3});
  const net::IpAddress a(127, 1, 0, 1);
  const net::IpAddress b(127, 2, 0, 1);
  Inbox inbox_a, inbox_b;
  transport.attach(a, net::IspId{1}, net::IspCategory::kTele, test_profile(),
                   inbox_a.handler());
  transport.attach(b, net::IspId{2}, net::IspCategory::kCnc, test_profile(),
                   inbox_b.handler());
  EXPECT_TRUE(transport.attached(a));
  EXPECT_TRUE(transport.attached(b));
  EXPECT_EQ(transport.host_count(), 2u);

  const proto::Message m = sample_query();
  const std::uint64_t bytes = proto::wire_size(m);
  ASSERT_TRUE(transport.send(a, b, m, bytes));
  ASSERT_GE(transport.poll(500), 1);
  EXPECT_EQ(transport.rx_queue_depth(), 1u);
  EXPECT_EQ(transport.dispatch(sim::Time::from_seconds(1.0)), 1);

  ASSERT_EQ(inbox_b.deliveries.size(), 1u);
  EXPECT_TRUE(inbox_a.deliveries.empty());
  const auto& d = inbox_b.deliveries.front();
  EXPECT_EQ(d.from, a);
  EXPECT_EQ(d.to, b);
  EXPECT_EQ(d.wire_bytes, bytes);
  EXPECT_EQ(d.sent_at, sim::Time::from_seconds(1.0));
  ASSERT_TRUE(std::holds_alternative<proto::JoinQuery>(d.payload));
  EXPECT_EQ(std::get<proto::JoinQuery>(d.payload).channel, 42u);

  const auto& stats = transport.stats();
  EXPECT_EQ(stats.packets_sent, 1u);
  EXPECT_EQ(stats.packets_delivered, 1u);
  EXPECT_EQ(stats.bytes_sent, bytes);
  EXPECT_EQ(transport.rx_errors().total(), 0u);
}

TEST(WireUdpTransport, UnknownSenderIsRejectedUncounted) {
  UdpTransport transport({.port = kBasePort + 1});
  const net::IpAddress b(127, 2, 0, 1);
  Inbox inbox;
  transport.attach(b, net::IspId{2}, net::IspCategory::kCnc, test_profile(),
                   inbox.handler());
  // Mirrors the sim Network: a send from a host that never attached is a
  // caller bug, refused without touching the packet ledger.
  EXPECT_FALSE(transport.send(net::IpAddress(127, 9, 0, 9), b, sample_query(),
                              proto::wire_size(sample_query())));
  EXPECT_EQ(transport.stats().packets_sent, 0u);
}

TEST(WireUdpTransport, DetachedDestinationCountsDeadDrop) {
  UdpTransport transport({.port = kBasePort + 2});
  const net::IpAddress a(127, 1, 0, 1);
  const net::IpAddress b(127, 2, 0, 1);
  Inbox inbox_a, inbox_b;
  transport.attach(a, net::IspId{1}, net::IspCategory::kTele, test_profile(),
                   inbox_a.handler());
  transport.attach(b, net::IspId{2}, net::IspCategory::kCnc, test_profile(),
                   inbox_b.handler());
  ASSERT_TRUE(transport.send(a, b, sample_query(),
                             proto::wire_size(sample_query())));
  ASSERT_GE(transport.poll(500), 1);
  transport.detach(b);  // departs while the datagram sits in the rx queue
  EXPECT_FALSE(transport.attached(b));
  EXPECT_EQ(transport.dispatch(sim::Time()), 0);
  EXPECT_TRUE(inbox_b.deliveries.empty());
  EXPECT_EQ(transport.stats().dead_destination_drops, 1u);
  EXPECT_EQ(transport.stats().packets_delivered, 0u);
}

TEST(WireUdpTransport, ReceiveQueueOverflowCountsDownlinkDrops) {
  UdpTransport transport({.port = kBasePort + 3, .rx_queue_limit = 2});
  const net::IpAddress a(127, 1, 0, 1);
  const net::IpAddress b(127, 2, 0, 1);
  Inbox inbox_a, inbox_b;
  transport.attach(a, net::IspId{1}, net::IspCategory::kTele, test_profile(),
                   inbox_a.handler());
  transport.attach(b, net::IspId{2}, net::IspCategory::kCnc, test_profile(),
                   inbox_b.handler());
  const proto::Message m = sample_query();
  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(transport.send(a, b, m, proto::wire_size(m)));
  // Give the kernel a beat to surface all five datagrams, then drain.
  int enqueued = 0;
  for (int tries = 0; tries < 50 && enqueued < 2; ++tries)
    enqueued += transport.poll(100);
  EXPECT_EQ(transport.rx_queue_depth(), 2u);
  EXPECT_EQ(transport.stats().downlink_drops, 3u);
  EXPECT_EQ(transport.dispatch(sim::Time()), 2);
  EXPECT_EQ(inbox_b.deliveries.size(), 2u);
}

TEST(WireUdpTransport, EpochMismatchIsCountedNotDelivered) {
  // Two transports = two deployments sharing the loopback wire but keyed
  // to different channel epochs; the stale sender's packets must be
  // rejected at decode, before any handler.
  UdpTransport current({.port = kBasePort + 4, .epoch = 2});
  UdpTransport stale({.port = kBasePort + 4, .epoch = 1});
  const net::IpAddress a(127, 1, 0, 1);
  const net::IpAddress b(127, 2, 0, 1);
  Inbox inbox_a, inbox_b;
  stale.attach(a, net::IspId{1}, net::IspCategory::kTele, test_profile(),
               inbox_a.handler());
  current.attach(b, net::IspId{2}, net::IspCategory::kCnc, test_profile(),
                 inbox_b.handler());
  ASSERT_TRUE(stale.send(a, b, sample_query(),
                         proto::wire_size(sample_query())));
  int enqueued = 0;
  for (int tries = 0; tries < 50 && current.rx_errors().bad_epoch == 0;
       ++tries)
    enqueued += current.poll(100);
  EXPECT_EQ(enqueued, 0);
  EXPECT_EQ(current.rx_errors().bad_epoch, 1u);
  EXPECT_EQ(current.rx_errors().total(), 1u);
  EXPECT_EQ(current.dispatch(sim::Time()), 0);
  EXPECT_TRUE(inbox_b.deliveries.empty());
}

TEST(WireUdpTransport, DeliveryTapSeesEveryDelivery) {
  UdpTransport transport({.port = kBasePort + 5});
  const net::IpAddress a(127, 1, 0, 1);
  const net::IpAddress b(127, 2, 0, 1);
  Inbox inbox_a, inbox_b;
  transport.attach(a, net::IspId{1}, net::IspCategory::kTele, test_profile(),
                   inbox_a.handler());
  transport.attach(b, net::IspId{2}, net::IspCategory::kCnc, test_profile(),
                   inbox_b.handler());
  int tapped = 0;
  transport.set_delivery_tap([&](const proto::PeerTransport::Delivery& d) {
    ++tapped;
    EXPECT_EQ(d.to, b);
  });
  const proto::Message m = sample_query();
  ASSERT_TRUE(transport.send(a, b, m, proto::wire_size(m)));
  ASSERT_TRUE(transport.send(a, b, m, proto::wire_size(m)));
  int enqueued = 0;
  for (int tries = 0; tries < 50 && enqueued < 2; ++tries)
    enqueued += transport.poll(100);
  EXPECT_EQ(transport.dispatch(sim::Time()), 2);
  EXPECT_EQ(tapped, 2);
  EXPECT_EQ(inbox_b.deliveries.size(), 2u);
}

}  // namespace
}  // namespace ppsim::wire
