#include "sim/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace ppsim::sim {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkIndependence) {
  Rng parent(99);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  // Children have distinct streams.
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (c1.next_u64() == c2.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkDeterministic) {
  Rng p1(7), p2(7);
  Rng c1 = p1.fork(5), c2 = p2.fork(5);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

class RngSeededTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeededTest, NextBelowInRange) {
  Rng rng(GetParam());
  for (std::uint64_t n : {1ULL, 2ULL, 7ULL, 100ULL, 1'000'000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(n), n);
  }
}

TEST_P(RngSeededTest, UniformIntInclusiveBounds) {
  Rng rng(GetParam());
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST_P(RngSeededTest, UniformInHalfOpenUnit) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST_P(RngSeededTest, UniformMeanNearHalf) {
  Rng rng(GetParam());
  double acc = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.02);
}

TEST_P(RngSeededTest, ExponentialMean) {
  Rng rng(GetParam());
  double acc = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) acc += rng.exponential(3.0);
  EXPECT_NEAR(acc / n, 3.0, 0.15);
}

TEST_P(RngSeededTest, NormalMoments) {
  Rng rng(GetParam());
  double acc = 0, acc2 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal(10.0, 2.0);
    acc += x;
    acc2 += x * x;
  }
  const double mean = acc / n;
  const double var = acc2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST_P(RngSeededTest, LognormalMedian) {
  Rng rng(GetParam());
  std::vector<double> xs(20001);
  for (auto& x : xs) x = rng.lognormal_median(5.0, 0.5);
  std::nth_element(xs.begin(), xs.begin() + 10000, xs.end());
  EXPECT_NEAR(xs[10000], 5.0, 0.3);
}

TEST_P(RngSeededTest, ParetoBoundedBelow) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST_P(RngSeededTest, WeibullPositive) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.weibull(10.0, 0.6), 0.0);
}

TEST_P(RngSeededTest, ChanceExtremes) {
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST_P(RngSeededTest, ChanceFrequency) {
  Rng rng(GetParam());
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST_P(RngSeededTest, WeightedIndexRespectsWeights) {
  Rng rng(GetParam());
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {};
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST_P(RngSeededTest, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(GetParam());
  std::vector<double> w = {0.0, 0.0, 0.0, 0.0};
  int counts[4] = {};
  for (int i = 0; i < 8000; ++i) ++counts[rng.weighted_index(w)];
  for (int c : counts) EXPECT_GT(c, 1500);
}

TEST_P(RngSeededTest, SampleDistinctAndFromSource) {
  Rng rng(GetParam());
  std::vector<int> v;
  for (int i = 0; i < 50; ++i) v.push_back(i);
  auto s = rng.sample(v, 10);
  EXPECT_EQ(s.size(), 10u);
  std::set<int> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
  for (int x : s) EXPECT_TRUE(x >= 0 && x < 50);
}

TEST_P(RngSeededTest, SampleMoreThanAvailableReturnsAll) {
  Rng rng(GetParam());
  std::vector<int> v = {1, 2, 3};
  auto s = rng.sample(v, 10);
  EXPECT_EQ(s.size(), 3u);
  std::set<int> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq, (std::set<int>{1, 2, 3}));
}

TEST_P(RngSeededTest, ShufflePreservesElements) {
  Rng rng(GetParam());
  std::vector<int> v;
  for (int i = 0; i < 30; ++i) v.push_back(i);
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeededTest,
                         ::testing::Values(1, 42, 12345, 0xDEADBEEF,
                                           0xFFFFFFFFFFFFFFFFULL));

TEST(Mix64Test, StableAndSpreads) {
  EXPECT_EQ(mix64(1), mix64(1));
  EXPECT_NE(mix64(1), mix64(2));
  // Avalanche smoke check: flipping one input bit changes many output bits.
  const std::uint64_t a = mix64(0x1234);
  const std::uint64_t b = mix64(0x1235);
  EXPECT_GT(__builtin_popcountll(a ^ b), 16);
}

TEST(HashCombineTest, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_EQ(hash_combine(1, 2), hash_combine(1, 2));
}

}  // namespace
}  // namespace ppsim::sim
