// Property tests of the transport: conservation of packets across all
// accounting buckets under random traffic, churn, and loss.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/transport.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace ppsim::net {
namespace {

using TestNetwork = Network<int>;

class TransportConservation : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(TransportConservation, PacketsAreConserved) {
  sim::Simulator simulator;
  LatencyConfig lc;
  lc.transoceanic_loss = 0.1;  // force some core drops
  lc.china_cross_loss = 0.05;
  TestNetwork network(simulator, LatencyModel(lc), sim::Rng(GetParam()),
                      /*max_backlog=*/sim::Time::millis(50));

  sim::Rng rng(GetParam() ^ 0xABCD);
  std::vector<IpAddress> hosts;
  std::uint64_t handled = 0;
  for (int i = 0; i < 12; ++i) {
    IpAddress ip(static_cast<std::uint32_t>(0x0A000001 + i * 7));
    const auto cat = static_cast<IspCategory>(i % kNumIspCategories);
    // Slow uplinks so backlog drops occur too.
    network.attach(ip, IspId{static_cast<std::uint32_t>(i)}, cat,
                   AccessProfile{2e6, 256e3},
                   [&handled](const TestNetwork::Delivery&) { ++handled; });
    hosts.push_back(ip);
  }

  std::uint64_t send_calls = 0;
  for (int round = 0; round < 400; ++round) {
    const auto from =
        hosts[static_cast<std::size_t>(rng.next_below(hosts.size()))];
    const auto to =
        hosts[static_cast<std::size_t>(rng.next_below(hosts.size()))];
    if (from == to) continue;
    network.send(from, to, round,
                 static_cast<std::uint64_t>(rng.uniform_int(40, 4000)));
    ++send_calls;
    // Occasionally churn a host out and back in.
    if (rng.chance(0.02)) {
      const auto victim =
          hosts[static_cast<std::size_t>(rng.next_below(hosts.size()))];
      const auto ep = network.endpoint(victim);
      network.detach(victim);
      network.attach(victim, ep.isp, ep.category, AccessProfile{2e6, 256e3},
                     [&handled](const TestNetwork::Delivery&) { ++handled; });
    }
    simulator.run_until(simulator.now() + sim::Time::millis(
                                              rng.uniform_int(0, 30)));
  }
  simulator.run();

  const auto& stats = network.stats();
  EXPECT_EQ(stats.packets_sent, send_calls);
  // Every sent packet lands in exactly one bucket.
  EXPECT_EQ(stats.packets_sent,
            stats.packets_delivered + stats.uplink_drops + stats.core_drops +
                stats.downlink_drops + stats.dead_destination_drops);
  EXPECT_EQ(handled, stats.packets_delivered);
  EXPECT_GT(stats.packets_delivered, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransportConservation,
                         ::testing::Values(1, 7, 99, 1234));

TEST(TransportConservationTest, WithInterconnects) {
  sim::Simulator simulator;
  LatencyConfig lc;
  lc.intra_isp_loss = 0;
  lc.china_cross_loss = 0;
  lc.transoceanic_loss = 0;
  lc.foreign_cross_loss = 0;
  TestNetwork network(simulator, LatencyModel(lc), sim::Rng(5));
  InterconnectConfig ic;
  ic.default_bps = 64e3;
  ic.max_backlog = sim::Time::millis(20);
  network.set_interconnects(ic);

  int handled = 0;
  network.attach(IpAddress(1), IspId{0}, IspCategory::kTele,
                 AccessProfile{1e9, 1e9}, nullptr);
  network.attach(IpAddress(2), IspId{1}, IspCategory::kCnc,
                 AccessProfile{1e9, 1e9},
                 [&](const TestNetwork::Delivery&) { ++handled; });
  for (int i = 0; i < 50; ++i) network.send(IpAddress(1), IpAddress(2), i, 1000);
  simulator.run();

  const auto& stats = network.stats();
  EXPECT_EQ(stats.packets_sent, 50u);
  EXPECT_EQ(stats.packets_sent, stats.packets_delivered + stats.core_drops);
  EXPECT_GT(stats.core_drops, 0u);  // the 64 kbps pipe cannot carry this
  EXPECT_EQ(static_cast<std::uint64_t>(handled), stats.packets_delivered);
}

}  // namespace
}  // namespace ppsim::net
