// Tests for the mechanisms behind the emergent locality (DESIGN.md §5):
// the connect-on-arrival race, latency-driven neighborhood turnover, the
// control-RTT vs service-latency split, and NAT behaviour.

#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/policies.h"
#include "proto/peer.h"
#include "proto_testutil.h"

namespace ppsim::proto {
namespace {

using testing::MiniWorld;

TEST(NatTest, NatedPeerIgnoresStrangers) {
  MiniWorld world;
  PeerConfig nat_config;
  nat_config.behind_nat = true;
  Peer& nated = world.add_peer(net::IspCategory::kTele, nat_config);
  Peer& open = world.add_peer(net::IspCategory::kTele);
  (void)nated;
  open.join();
  // `open` learns about nobody except the source; directly attempt the
  // NATed peer: the handshake must time out.
  world.simulator().run_until(sim::Time::seconds(5));
  world.network().send(open.ip(), nated.ip(),
                       Message{ConnectQuery{world.channel().id}},
                       wire_size(Message{ConnectQuery{world.channel().id}}));
  world.simulator().run_until(sim::Time::seconds(10));
  auto open_neighbors = open.neighbor_ips();
  EXPECT_TRUE(std::find(open_neighbors.begin(), open_neighbors.end(),
                        nated.ip()) == open_neighbors.end());
}

TEST(NatTest, NatedPeerCanInitiate) {
  MiniWorld world;
  PeerConfig nat_config;
  nat_config.behind_nat = true;
  Peer& nated = world.add_peer(net::IspCategory::kTele, nat_config);
  nated.join();
  world.simulator().run_until(sim::Time::minutes(2));
  // Outbound connectivity is unaffected: the NATed client joins, connects
  // to the source, and streams.
  EXPECT_GT(nated.neighbor_count(), 0u);
  EXPECT_GT(nated.counters().bytes_downloaded, 0u);
}

TEST(NatTest, EstablishedConnectionWorksBothWays) {
  MiniWorld world;
  PeerConfig nat_config;
  nat_config.behind_nat = true;
  Peer& nated = world.add_peer(net::IspCategory::kTele, nat_config);
  Peer& open = world.add_peer(net::IspCategory::kTele);
  nated.join();
  open.join();
  world.simulator().run_until(sim::Time::minutes(3));
  // Once the NATed peer initiated a connection (pinhole open), both sides
  // hold it as a neighbor — the NATed side is reachable through it.
  auto open_neighbors = open.neighbor_ips();
  if (std::find(open_neighbors.begin(), open_neighbors.end(), nated.ip()) !=
      open_neighbors.end()) {
    auto nated_neighbors = nated.neighbor_ips();
    EXPECT_TRUE(std::find(nated_neighbors.begin(), nated_neighbors.end(),
                          open.ip()) != nated_neighbors.end());
  }
  // Both clients stream successfully regardless.
  EXPECT_GT(open.counters().bytes_downloaded, 0u);
  EXPECT_GT(nated.counters().bytes_downloaded, 0u);
}

TEST(RaceTest, LateCompletionsAreTurnedAway) {
  // A peer with a tiny neighbor budget attempting many candidates must turn
  // away the race losers.
  MiniWorld world;
  PeerConfig tiny;
  tiny.max_neighbors = 2;
  tiny.min_neighbors = 1;
  tiny.connect_batch = 6;
  Peer& chooser = world.add_peer(net::IspCategory::kTele, tiny);
  for (int i = 0; i < 8; ++i) world.add_peer(net::IspCategory::kTele).join();
  chooser.join();
  world.simulator().run_until(sim::Time::minutes(3));
  EXPECT_LE(chooser.neighbor_count(), 2u + 4u);  // inbound slack only
  EXPECT_GT(chooser.counters().connects_lost_race, 0u);
}

TEST(TurnoverTest, OptimizationDropsSlowestNeighbor) {
  MiniWorld world;
  PeerConfig config;
  config.min_neighbors = 1;  // allow turnover with few neighbors
  config.optimize_period = sim::Time::seconds(5);
  config.optimize_grace = sim::Time::seconds(5);
  Peer& peer = world.add_peer(net::IspCategory::kTele, config);
  // One nearby and one transoceanic neighbor; turnover should displace the
  // far one over time.
  Peer& near = world.add_peer(net::IspCategory::kTele);
  Peer& far = world.add_peer(net::IspCategory::kForeign);
  near.join();
  far.join();
  peer.join();
  world.simulator().run_until(sim::Time::minutes(4));
  // Turnover happened (the far neighbor keeps being displaced — it may be
  // transiently re-added from the candidate pool, so membership at the
  // sampling instant is not asserted)...
  EXPECT_GT(peer.counters().neighbors_dropped_optimized, 1u);
  // ...and the near neighbor, never the slowest, is retained.
  auto neighbors = peer.neighbor_ips();
  EXPECT_TRUE(std::find(neighbors.begin(), neighbors.end(), near.ip()) !=
              neighbors.end());
}

TEST(TurnoverTest, DisabledWhenPolicySaysSo) {
  MiniWorld world;
  PeerConfig config;
  config.optimize_period = sim::Time::seconds(5);
  Peer& peer = world.add_peer(net::IspCategory::kTele, config,
                              std::make_unique<baseline::TrackerOnlyPolicy>());
  for (int i = 0; i < 5; ++i) world.add_peer(net::IspCategory::kTele).join();
  peer.join();
  world.simulator().run_until(sim::Time::minutes(3));
  // Tracker-only policy rotates blindly; it still drops (rotation), but the
  // drops must not be latency-ranked — verified indirectly: the peer keeps
  // functioning and drops occur.
  EXPECT_GT(peer.counters().bytes_downloaded, 0u);
}

TEST(RttSplitTest, ControlRttTracksProximity) {
  MiniWorld world;
  Peer& peer = world.add_peer(net::IspCategory::kTele);
  Peer& near = world.add_peer(net::IspCategory::kTele);
  Peer& far = world.add_peer(net::IspCategory::kForeign);
  PeerConfig no_turnover;
  no_turnover.optimize_period = sim::Time::hours(1);
  // Rebuild `peer` semantics: we cannot reconfigure after construction, so
  // compare estimates while both neighbors are present (before turnover).
  near.join();
  far.join();
  peer.join();
  world.simulator().run_until(sim::Time::seconds(50));
  const double near_rtt = peer.neighbor_latency_estimate(near.ip());
  const double far_rtt = peer.neighbor_latency_estimate(far.ip());
  if (near_rtt > 0 && far_rtt > 0) {
    EXPECT_LT(near_rtt, far_rtt);
  } else {
    // At minimum the near peer must have been measured.
    EXPECT_GT(near_rtt, 0.0);
  }
}

TEST(RaceTest, NoRushPolicyAvoidsRaces) {
  MiniWorld world;
  Peer& peer = world.add_peer(net::IspCategory::kTele, PeerConfig{},
                              std::make_unique<baseline::NoRushPolicy>());
  for (int i = 0; i < 5; ++i) world.add_peer(net::IspCategory::kTele).join();
  peer.join();
  world.simulator().run_until(sim::Time::minutes(3));
  // Without connect-on-arrival the client still reaches playback via the
  // periodic top-up path.
  EXPECT_TRUE(peer.playback_started());
  EXPECT_GT(peer.neighbor_count(), 0u);
}

}  // namespace
}  // namespace ppsim::proto
