#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace ppsim::obs {
namespace {

TEST(MetricsRegistry, CounterRegistersOnceAndAccumulates) {
  MetricsRegistry reg;
  Counter& c = reg.counter("requests");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Same identity returns the same instance.
  EXPECT_EQ(&reg.counter("requests"), &c);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, LabelsDistinguishInstances) {
  MetricsRegistry reg;
  Counter& a = reg.counter("bytes", {{"isp", "TELE"}});
  Counter& b = reg.counter("bytes", {{"isp", "CNC"}});
  EXPECT_NE(&a, &b);
  a.inc(10);
  b.inc(20);
  EXPECT_EQ(reg.find_counter("bytes", {{"isp", "TELE"}})->value(), 10u);
  EXPECT_EQ(reg.find_counter("bytes", {{"isp", "CNC"}})->value(), 20u);
}

TEST(MetricsRegistry, LabelOrderDoesNotMatter) {
  MetricsRegistry reg;
  Counter& a = reg.counter("m", {{"a", "1"}, {"b", "2"}});
  Counter& b = reg.counter("m", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, FindReturnsNullForUnknown) {
  MetricsRegistry reg;
  reg.counter("known");
  EXPECT_EQ(reg.find_counter("unknown"), nullptr);
  EXPECT_EQ(reg.find_gauge("known"), nullptr);  // wrong kind
  EXPECT_EQ(reg.find_counter("known", {{"k", "v"}}), nullptr);
}

TEST(MetricsRegistry, GaugeLastWriteWins) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("continuity");
  g.set(0.5);
  g.set(0.97);
  EXPECT_DOUBLE_EQ(reg.find_gauge("continuity")->value(), 0.97);
}

TEST(Histogram, BucketsAreUpperInclusiveWithOverflow) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (inclusive upper edge)
  h.observe(5.0);    // <= 10
  h.observe(1000.0); // overflow
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 0u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
}

TEST(Histogram, QuantileOfEmptyIsNaN) {
  Histogram h({1.0, 10.0});
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
}

TEST(Histogram, QuantileSingleSampleReturnsItsBucketBound) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(5.0);
  // Every quantile of a one-sample histogram is that sample's tightest
  // upper bucket bound — including q=0 (rank clamps to the first sample).
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(Histogram, QuantileAtExactBucketBoundaries) {
  Histogram h({1.0, 10.0, 100.0});
  // Samples on upper-inclusive edges land in the bound's own bucket, so the
  // reported quantile is the edge itself, not the next bound up.
  h.observe(1.0);
  h.observe(10.0);
  h.observe(100.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0 / 3.0), 1.0);   // rank 1 -> first bucket
  EXPECT_DOUBLE_EQ(h.quantile(2.0 / 3.0), 10.0);  // rank 2 -> second
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);       // rank 3 -> third
  // Just past a rank boundary selects the next bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.34), 10.0);
}

TEST(Histogram, QuantileOverflowBucketIsInfinity) {
  Histogram h({1.0});
  h.observe(0.5);
  h.observe(100.0);  // overflow
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
  EXPECT_TRUE(std::isinf(h.quantile(1.0)));
}

TEST(Histogram, QuantileClampsOutOfRangeQ) {
  Histogram h({1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), 1.0);  // treated as q=0
  EXPECT_DOUBLE_EQ(h.quantile(2.0), 10.0);  // treated as q=1
}

TEST(MetricsRegistry, HistogramRegistersAndReuses) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("latency", {0.1, 1.0});
  h.observe(0.05);
  EXPECT_EQ(&reg.histogram("latency", {0.1, 1.0}), &h);
  EXPECT_EQ(reg.find_histogram("latency")->count(), 1u);
}

TEST(MetricsRegistry, NdjsonIsStableAndSorted) {
  MetricsRegistry reg;
  // Register in non-sorted order; dump must come out sorted by identity.
  reg.counter("zz").inc(1);
  reg.counter("aa", {{"isp", "TELE"}}).inc(7);
  reg.gauge("mid").set(1.5);

  std::ostringstream first;
  reg.write_ndjson(first);
  std::ostringstream second;
  reg.write_ndjson(second);
  EXPECT_EQ(first.str(), second.str());

  const std::string dump = first.str();
  const auto aa = dump.find("\"aa\"");
  const auto mid = dump.find("\"mid\"");
  const auto zz = dump.find("\"zz\"");
  ASSERT_NE(aa, std::string::npos);
  ASSERT_NE(mid, std::string::npos);
  ASSERT_NE(zz, std::string::npos);
  EXPECT_LT(aa, mid);
  EXPECT_LT(mid, zz);
  EXPECT_NE(dump.find("{\"metric\":\"aa\",\"type\":\"counter\",\"labels\":"
                      "{\"isp\":\"TELE\"},\"value\":7}"),
            std::string::npos);
}

TEST(Histogram, MergeAddsBucketsCountAndSum) {
  Histogram a({1.0, 10.0});
  Histogram b({1.0, 10.0});
  a.observe(0.5);
  a.observe(5.0);
  b.observe(5.0);
  b.observe(50.0);  // overflow bucket
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.sum(), 60.5);
  EXPECT_EQ(a.bucket_counts()[0], 1u);
  EXPECT_EQ(a.bucket_counts()[1], 2u);
  EXPECT_EQ(a.bucket_counts()[2], 1u);  // overflow
}

TEST(Histogram, MergeIsDeterministicLeftFold) {
  // Integer-valued observations make FP addition exact, so any fold order
  // gives the same sum — but the contract is the *caller's* order, and the
  // serialized form must come out byte-identical for the same fold.
  auto make = [](double v) {
    Histogram h({1.0, 10.0});
    h.observe(v);
    return h;
  };
  Histogram left({1.0, 10.0});
  for (const double v : {0.5, 5.0, 50.0, 7.0}) left.merge(make(v));
  Histogram again({1.0, 10.0});
  for (const double v : {0.5, 5.0, 50.0, 7.0}) again.merge(make(v));
  EXPECT_EQ(left.count(), again.count());
  EXPECT_DOUBLE_EQ(left.sum(), again.sum());
  EXPECT_EQ(left.bucket_counts(), again.bucket_counts());
}

TEST(MetricsRegistry, MergeFromCombinesAllInstrumentKinds) {
  MetricsRegistry into;
  into.counter("events").inc(10);
  into.gauge("continuity").set(0.5);
  into.histogram("lat", {1.0}).observe(0.5);

  MetricsRegistry from;
  from.counter("events").inc(5);
  from.counter("only_there").inc(3);
  from.gauge("continuity").set(0.9);
  from.histogram("lat", {1.0}).observe(2.0);

  into.merge_from(from);
  EXPECT_EQ(into.find_counter("events")->value(), 15u);
  EXPECT_EQ(into.find_counter("only_there")->value(), 3u);
  // Gauges are last-write-wins; the merged-in value is the later write.
  EXPECT_DOUBLE_EQ(into.find_gauge("continuity")->value(), 0.9);
  EXPECT_EQ(into.find_histogram("lat")->count(), 2u);
}

TEST(MetricsWindowRing, RotateSealsAndEvictsBeyondCapacity) {
  MetricsWindowRing ring(2);
  ring.current().counter("n").inc(1);
  ring.rotate("w0");
  ring.current().counter("n").inc(2);
  ring.rotate("w1");
  ring.current().counter("n").inc(4);
  ring.rotate("w2");  // evicts w0
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.windows_sealed(), 3u);
  EXPECT_EQ(ring.label(0), "w1");
  EXPECT_EQ(ring.label(1), "w2");
  EXPECT_EQ(ring.window(0).find_counter("n")->value(), 2u);
}

TEST(MetricsWindowRing, MergedFoldsRetainedWindowsThenCurrent) {
  MetricsWindowRing ring(4);
  ring.current().counter("n").inc(1);
  ring.rotate("w0");
  ring.current().counter("n").inc(2);
  ring.rotate("w1");
  ring.current().counter("n").inc(4);  // stays in the open window
  MetricsRegistry out;
  ring.merged(&out);
  EXPECT_EQ(out.find_counter("n")->value(), 7u);
}

TEST(MetricsWindowRing, MergedDumpIsByteStable) {
  auto fill = [](MetricsWindowRing* ring) {
    ring->current().counter("c", {{"isp", "TELE"}}).inc(2);
    ring->current().histogram("h", {1.0}).observe(0.5);
    ring->rotate("w0");
    ring->current().counter("c", {{"isp", "TELE"}}).inc(3);
    ring->current().histogram("h", {1.0}).observe(5.0);
  };
  MetricsWindowRing a(8), b(8);
  fill(&a);
  fill(&b);
  MetricsRegistry ma, mb;
  a.merged(&ma);
  b.merged(&mb);
  std::ostringstream da, db;
  ma.write_ndjson(da);
  mb.write_ndjson(db);
  EXPECT_EQ(da.str(), db.str());
}

TEST(MetricsRegistry, NdjsonHistogramRow) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("d", {1.0});
  h.observe(0.5);
  h.observe(2.0);
  std::ostringstream os;
  reg.write_ndjson(os);
  const std::string dump = os.str();
  EXPECT_NE(dump.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(dump.find("\"count\":2"), std::string::npos);
  EXPECT_NE(dump.find("\"le\":\"+inf\""), std::string::npos);
}

}  // namespace
}  // namespace ppsim::obs
