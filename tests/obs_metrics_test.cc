#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace ppsim::obs {
namespace {

TEST(MetricsRegistry, CounterRegistersOnceAndAccumulates) {
  MetricsRegistry reg;
  Counter& c = reg.counter("requests");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Same identity returns the same instance.
  EXPECT_EQ(&reg.counter("requests"), &c);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, LabelsDistinguishInstances) {
  MetricsRegistry reg;
  Counter& a = reg.counter("bytes", {{"isp", "TELE"}});
  Counter& b = reg.counter("bytes", {{"isp", "CNC"}});
  EXPECT_NE(&a, &b);
  a.inc(10);
  b.inc(20);
  EXPECT_EQ(reg.find_counter("bytes", {{"isp", "TELE"}})->value(), 10u);
  EXPECT_EQ(reg.find_counter("bytes", {{"isp", "CNC"}})->value(), 20u);
}

TEST(MetricsRegistry, LabelOrderDoesNotMatter) {
  MetricsRegistry reg;
  Counter& a = reg.counter("m", {{"a", "1"}, {"b", "2"}});
  Counter& b = reg.counter("m", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, FindReturnsNullForUnknown) {
  MetricsRegistry reg;
  reg.counter("known");
  EXPECT_EQ(reg.find_counter("unknown"), nullptr);
  EXPECT_EQ(reg.find_gauge("known"), nullptr);  // wrong kind
  EXPECT_EQ(reg.find_counter("known", {{"k", "v"}}), nullptr);
}

TEST(MetricsRegistry, GaugeLastWriteWins) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("continuity");
  g.set(0.5);
  g.set(0.97);
  EXPECT_DOUBLE_EQ(reg.find_gauge("continuity")->value(), 0.97);
}

TEST(Histogram, BucketsAreUpperInclusiveWithOverflow) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (inclusive upper edge)
  h.observe(5.0);    // <= 10
  h.observe(1000.0); // overflow
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 0u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
}

TEST(Histogram, QuantileOfEmptyIsNaN) {
  Histogram h({1.0, 10.0});
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
}

TEST(Histogram, QuantileSingleSampleReturnsItsBucketBound) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(5.0);
  // Every quantile of a one-sample histogram is that sample's tightest
  // upper bucket bound — including q=0 (rank clamps to the first sample).
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(Histogram, QuantileAtExactBucketBoundaries) {
  Histogram h({1.0, 10.0, 100.0});
  // Samples on upper-inclusive edges land in the bound's own bucket, so the
  // reported quantile is the edge itself, not the next bound up.
  h.observe(1.0);
  h.observe(10.0);
  h.observe(100.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0 / 3.0), 1.0);   // rank 1 -> first bucket
  EXPECT_DOUBLE_EQ(h.quantile(2.0 / 3.0), 10.0);  // rank 2 -> second
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);       // rank 3 -> third
  // Just past a rank boundary selects the next bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.34), 10.0);
}

TEST(Histogram, QuantileOverflowBucketIsInfinity) {
  Histogram h({1.0});
  h.observe(0.5);
  h.observe(100.0);  // overflow
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
  EXPECT_TRUE(std::isinf(h.quantile(1.0)));
}

TEST(Histogram, QuantileClampsOutOfRangeQ) {
  Histogram h({1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), 1.0);  // treated as q=0
  EXPECT_DOUBLE_EQ(h.quantile(2.0), 10.0);  // treated as q=1
}

TEST(MetricsRegistry, HistogramRegistersAndReuses) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("latency", {0.1, 1.0});
  h.observe(0.05);
  EXPECT_EQ(&reg.histogram("latency", {0.1, 1.0}), &h);
  EXPECT_EQ(reg.find_histogram("latency")->count(), 1u);
}

TEST(MetricsRegistry, NdjsonIsStableAndSorted) {
  MetricsRegistry reg;
  // Register in non-sorted order; dump must come out sorted by identity.
  reg.counter("zz").inc(1);
  reg.counter("aa", {{"isp", "TELE"}}).inc(7);
  reg.gauge("mid").set(1.5);

  std::ostringstream first;
  reg.write_ndjson(first);
  std::ostringstream second;
  reg.write_ndjson(second);
  EXPECT_EQ(first.str(), second.str());

  const std::string dump = first.str();
  const auto aa = dump.find("\"aa\"");
  const auto mid = dump.find("\"mid\"");
  const auto zz = dump.find("\"zz\"");
  ASSERT_NE(aa, std::string::npos);
  ASSERT_NE(mid, std::string::npos);
  ASSERT_NE(zz, std::string::npos);
  EXPECT_LT(aa, mid);
  EXPECT_LT(mid, zz);
  EXPECT_NE(dump.find("{\"metric\":\"aa\",\"type\":\"counter\",\"labels\":"
                      "{\"isp\":\"TELE\"},\"value\":7}"),
            std::string::npos);
}

TEST(MetricsRegistry, NdjsonHistogramRow) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("d", {1.0});
  h.observe(0.5);
  h.observe(2.0);
  std::ostringstream os;
  reg.write_ndjson(os);
  const std::string dump = os.str();
  EXPECT_NE(dump.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(dump.find("\"count\":2"), std::string::npos);
  EXPECT_NE(dump.find("\"le\":\"+inf\""), std::string::npos);
}

}  // namespace
}  // namespace ppsim::obs
