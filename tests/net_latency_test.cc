#include "net/latency.h"

#include <gtest/gtest.h>

#include "net/isp.h"
#include "sim/rng.h"

namespace ppsim::net {
namespace {

Endpoint ep(std::uint32_t ip, std::uint32_t isp, IspCategory c) {
  return Endpoint{IpAddress(ip), IspId{isp}, c};
}

class LatencyModelTest : public ::testing::Test {
 protected:
  LatencyModel model_;
  Endpoint tele_a_ = ep(0x3D800001, 0, IspCategory::kTele);
  Endpoint tele_b_ = ep(0x3D800002, 0, IspCategory::kTele);
  Endpoint cnc_ = ep(0x3C000001, 1, IspCategory::kCnc);
  Endpoint cer_ = ep(0xA66F0001, 2, IspCategory::kCer);
  Endpoint other_cn_ = ep(0xD2000001, 3, IspCategory::kOtherCn);
  Endpoint foreign_a_ = ep(0x81AE0001, 6, IspCategory::kForeign);
  Endpoint foreign_b_ = ep(0x18000001, 7, IspCategory::kForeign);
  Endpoint foreign_a2_ = ep(0x81AE0002, 6, IspCategory::kForeign);
};

TEST_F(LatencyModelTest, IntraIspFastest) {
  const auto intra = model_.base_rtt(tele_a_, tele_b_);
  EXPECT_LT(intra, model_.base_rtt(tele_a_, cnc_));
  EXPECT_LT(intra, model_.base_rtt(tele_a_, cer_));
  EXPECT_LT(intra, model_.base_rtt(tele_a_, foreign_a_));
}

TEST_F(LatencyModelTest, TransoceanicSlowest) {
  const auto transoceanic = model_.base_rtt(tele_a_, foreign_a_);
  EXPECT_GT(transoceanic, model_.base_rtt(tele_a_, cnc_));
  EXPECT_GT(transoceanic, model_.base_rtt(tele_a_, cer_));
  EXPECT_GT(transoceanic, model_.base_rtt(foreign_a_, foreign_b_));
}

TEST_F(LatencyModelTest, CernetCommercialPeeringIsWorstInChina) {
  // CERNET's thin commercial peering makes CER<->TELE/CNC the slowest
  // domestic path class.
  EXPECT_GT(model_.base_rtt(tele_a_, cer_), model_.base_rtt(tele_a_, cnc_));
  EXPECT_LT(model_.base_rtt(tele_a_, cer_),
            model_.base_rtt(tele_a_, foreign_a_));
}

TEST_F(LatencyModelTest, BaseRttSymmetric) {
  const Endpoint endpoints[] = {tele_a_, cnc_, cer_, other_cn_, foreign_a_};
  for (const auto& a : endpoints)
    for (const auto& b : endpoints)
      EXPECT_EQ(model_.base_rtt(a, b), model_.base_rtt(b, a));
}

TEST_F(LatencyModelTest, SameForeignAsIsIntraIsp) {
  EXPECT_EQ(model_.base_rtt(foreign_a_, foreign_a2_),
            model_.config().intra_isp_rtt);
}

TEST_F(LatencyModelTest, DifferentForeignAsesUseCrossRate) {
  EXPECT_EQ(model_.base_rtt(foreign_a_, foreign_b_),
            model_.config().foreign_cross_rtt);
}

TEST_F(LatencyModelTest, PairFactorStableAndSymmetric) {
  const double f1 = model_.pair_factor(tele_a_.ip, cnc_.ip);
  const double f2 = model_.pair_factor(cnc_.ip, tele_a_.ip);
  EXPECT_DOUBLE_EQ(f1, f2);
  EXPECT_DOUBLE_EQ(f1, model_.pair_factor(tele_a_.ip, cnc_.ip));
  EXPECT_GT(f1, 0.0);
}

TEST_F(LatencyModelTest, PairFactorVariesAcrossPairs) {
  // With sigma=0.35, two different pairs almost surely differ.
  const double f1 = model_.pair_factor(IpAddress(1), IpAddress(2));
  const double f2 = model_.pair_factor(IpAddress(1), IpAddress(3));
  EXPECT_NE(f1, f2);
}

TEST_F(LatencyModelTest, DifferentSaltRerollsFactors) {
  LatencyConfig cfg;
  cfg.pair_salt = 123;
  LatencyModel other(cfg);
  EXPECT_NE(model_.pair_factor(IpAddress(1), IpAddress(2)),
            other.pair_factor(IpAddress(1), IpAddress(2)));
}

TEST_F(LatencyModelTest, PairFactorMedianNearOne) {
  int above = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    if (model_.pair_factor(IpAddress(static_cast<std::uint32_t>(i)),
                           IpAddress(static_cast<std::uint32_t>(i + 100000))) >
        1.0)
      ++above;
  }
  EXPECT_NEAR(static_cast<double>(above) / n, 0.5, 0.05);
}

TEST_F(LatencyModelTest, SampleOneWayRoughlyHalfRtt) {
  sim::Rng rng(5);
  const sim::Time rtt = model_.pair_rtt(tele_a_, tele_b_);
  double acc = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i)
    acc += model_.sample_one_way(tele_a_, tele_b_, rng).as_seconds();
  EXPECT_NEAR(acc / n, rtt.as_seconds() / 2, rtt.as_seconds() * 0.05);
}

TEST_F(LatencyModelTest, SampleHasFloor) {
  sim::Rng rng(5);
  LatencyConfig cfg;
  cfg.intra_isp_rtt = sim::Time::micros(1);
  LatencyModel tiny(cfg);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(tiny.sample_one_way(tele_a_, tele_b_, rng),
              sim::Time::micros(200));
  }
}

TEST_F(LatencyModelTest, LossOrdering) {
  EXPECT_LT(model_.loss_probability(tele_a_, tele_b_),
            model_.loss_probability(tele_a_, cnc_));
  EXPECT_LT(model_.loss_probability(tele_a_, cnc_),
            model_.loss_probability(tele_a_, foreign_a_));
}

TEST_F(LatencyModelTest, ChinaCrossUsesCongestedInterconnect) {
  EXPECT_EQ(model_.base_rtt(tele_a_, cnc_),
            model_.config().china_cross_isp_rtt);
  EXPECT_EQ(model_.base_rtt(other_cn_, tele_a_),
            model_.config().china_cross_isp_rtt);
}

}  // namespace
}  // namespace ppsim::net
