#include <gtest/gtest.h>

#include "analysis/goodness.h"
#include "analysis/stats.h"

#include <algorithm>
#include "core/experiment.h"
#include "workload/scenario.h"

namespace ppsim::core {
namespace {

ExperimentConfig churny_config() {
  ExperimentConfig config;
  config.scenario = workload::popular_channel();
  config.scenario.viewers = 60;
  config.scenario.duration = sim::Time::minutes(8);
  config.scenario.mean_session = sim::Time::minutes(3);  // fast churn
  config.scenario.seed = 17;
  config.probes = {tele_probe()};
  return config;
}

TEST(SessionLogTest, OneRecordPerViewer) {
  auto result = run_experiment(churny_config());
  // Initial audience + churn replacements; probes excluded.
  EXPECT_EQ(result.sessions.size(), result.swarm.peers_spawned -
                                        /*probe count*/ 1);
  EXPECT_GT(result.sessions.size(), 60u);
}

TEST(SessionLogTest, CompletedSessionsHaveSaneDurations) {
  auto config = churny_config();
  auto result = run_experiment(config);
  std::uint64_t completed = 0;
  for (const auto& s : result.sessions) {
    EXPECT_GE(s.left, s.joined);
    EXPECT_LE(s.left, config.scenario.duration);
    if (s.completed) {
      ++completed;
      EXPECT_GE(s.duration_seconds(), 10.0);  // clamp floor in the runner
    }
  }
  EXPECT_EQ(completed, result.swarm.departures);
  EXPECT_GT(completed, 10u);  // with 3-minute sessions over 8 minutes
}

TEST(SessionLogTest, CategoriesFollowMix) {
  auto result = run_experiment(churny_config());
  std::uint64_t tele = 0;
  for (const auto& s : result.sessions)
    if (s.category == net::IspCategory::kTele) ++tele;
  const double share =
      static_cast<double>(tele) / static_cast<double>(result.sessions.size());
  EXPECT_GT(share, 0.35);  // mix says 0.56; tolerate small-sample noise
  EXPECT_LT(share, 0.75);
}

TEST(SessionLogTest, MostViewersDownloadData) {
  auto result = run_experiment(churny_config());
  std::uint64_t with_data = 0;
  for (const auto& s : result.sessions)
    if (s.bytes_downloaded > 0) ++with_data;
  EXPECT_GT(static_cast<double>(with_data) /
                static_cast<double>(result.sessions.size()),
            0.85);
}

TEST(SessionLogTest, NatFlagRecorded) {
  auto result = run_experiment(churny_config());
  std::uint64_t nated = 0;
  for (const auto& s : result.sessions)
    if (s.behind_nat) ++nated;
  // ~65% of ADSL viewers; the audience is mostly ADSL.
  const double share =
      static_cast<double>(nated) / static_cast<double>(result.sessions.size());
  EXPECT_GT(share, 0.3);
  EXPECT_LT(share, 0.85);
}

TEST(SessionLogTest, DurationsAreHeavyTailed) {
  // The runner draws Weibull(k=0.6) sessions; completed-session durations
  // (censored at the run end) should fit a Weibull with shape < 1 —
  // the heavy-tailed zapping behaviour the workload model encodes.
  auto config = churny_config();
  config.scenario.viewers = 150;
  auto result = run_experiment(config);
  std::vector<double> durations;
  for (const auto& s : result.sessions)
    if (s.completed) durations.push_back(s.duration_seconds());
  ASSERT_GT(durations.size(), 60u);
  // Clamping and right-censoring make parametric recovery unreliable, so
  // test the tail property directly: for heavy-tailed sessions the mean
  // far exceeds the median (an exponential would give mean/median = 1.44;
  // Weibull k=0.6 gives ~2.8, and censoring only pulls the ratio down).
  const double ratio = analysis::mean(durations) /
                       std::max(1.0, analysis::median(durations));
  EXPECT_GT(ratio, 1.5);
}

}  // namespace
}  // namespace ppsim::core
