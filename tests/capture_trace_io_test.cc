#include "capture/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ppsim::capture {
namespace {

proto::BufferMap make_map(proto::ChunkSeq base, std::initializer_list<bool> bits) {
  proto::BufferMap m;
  m.base = base;
  m.have.assign(bits);
  return m;
}

PacketTrace sample_trace() {
  PacketTrace trace;
  auto add = [&](std::int64_t us, net::Direction dir, std::uint32_t remote,
                 proto::Message m) {
    TraceRecord rec;
    rec.time = sim::Time::micros(us);
    rec.direction = dir;
    rec.local = net::IpAddress(0x0A000001);
    rec.remote = net::IpAddress(remote);
    rec.wire_bytes = proto::wire_size(m);
    rec.payload = std::move(m);
    trace.push_back(std::move(rec));
  };
  using namespace proto;
  add(100, net::Direction::kOutgoing, 0x14000001, Message{JoinQuery{3}});
  add(250, net::Direction::kIncoming, 0x14000001,
      Message{JoinReply{3, net::IpAddress(0x1E000001),
                        {net::IpAddress(1), net::IpAddress(2)}}});
  add(300, net::Direction::kOutgoing, 0x14000002, Message{TrackerQuery{3}});
  add(400, net::Direction::kIncoming, 0x14000002,
      Message{TrackerReply{3, {net::IpAddress(7)}}});
  add(500, net::Direction::kOutgoing, 7,
      Message{PeerListQuery{3, {net::IpAddress(9), net::IpAddress(11)}}});
  add(700, net::Direction::kIncoming, 7, Message{PeerListReply{3, {}}});
  add(800, net::Direction::kOutgoing, 7, Message{ConnectQuery{3}});
  add(900, net::Direction::kIncoming, 7,
      Message{ConnectReply{3, true, make_map(40, {true, false, true, true,
                                                  false})}});
  add(1000, net::Direction::kIncoming, 7,
      Message{BufferMapAnnounce{3, make_map(42, {true, true})}});
  add(1100, net::Direction::kOutgoing, 7, Message{DataQuery{3, 42}});
  add(1300, net::Direction::kIncoming, 7,
      Message{DataReply{3, 42, 4, 5520}});
  add(1400, net::Direction::kOutgoing, 7, Message{Goodbye{3}});
  add(1500, net::Direction::kOutgoing, 0x14000001,
      Message{ChannelListQuery{}});
  add(1600, net::Direction::kIncoming, 0x14000001,
      Message{ChannelListReply{{1, 2, 3}}});
  return trace;
}

bool records_equal(const TraceRecord& a, const TraceRecord& b) {
  if (a.time != b.time || a.direction != b.direction || a.local != b.local ||
      a.remote != b.remote || a.wire_bytes != b.wire_bytes)
    return false;
  // Compare payloads via their serialized form (Message has no ==).
  std::ostringstream sa, sb;
  PacketTrace ta{a}, tb{b};
  write_trace(sa, ta);
  write_trace(sb, tb);
  return sa.str() == sb.str();
}

TEST(TraceIoTest, RoundTripIdentity) {
  PacketTrace original = sample_trace();
  std::stringstream buffer;
  EXPECT_EQ(write_trace(buffer, original), original.size());

  std::size_t dropped = 99;
  PacketTrace restored = read_trace(buffer, &dropped);
  EXPECT_EQ(dropped, 0u);
  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_TRUE(records_equal(original[i], restored[i])) << "record " << i;
    EXPECT_EQ(proto::message_name(restored[i].payload),
              proto::message_name(original[i].payload));
  }
}

TEST(TraceIoTest, BufferMapBitsSurviveRoundTrip) {
  PacketTrace trace;
  TraceRecord rec;
  rec.time = sim::Time::millis(5);
  rec.direction = net::Direction::kIncoming;
  rec.local = net::IpAddress(1);
  rec.remote = net::IpAddress(2);
  proto::BufferMap map;
  map.base = 1000;
  for (int i = 0; i < 37; ++i) map.have.push_back(i % 3 == 0);
  rec.payload = proto::Message{proto::BufferMapAnnounce{9, map}};
  rec.wire_bytes = proto::wire_size(rec.payload);
  trace.push_back(rec);

  std::stringstream buffer;
  write_trace(buffer, trace);
  auto restored = read_trace(buffer);
  ASSERT_EQ(restored.size(), 1u);
  const auto* ann =
      std::get_if<proto::BufferMapAnnounce>(&restored[0].payload);
  ASSERT_NE(ann, nullptr);
  EXPECT_EQ(ann->map.base, 1000u);
  ASSERT_EQ(ann->map.have.size(), 37u);
  for (int i = 0; i < 37; ++i)
    EXPECT_EQ(ann->map.have[static_cast<std::size_t>(i)], i % 3 == 0) << i;
}

TEST(TraceIoTest, MalformedLinesSkippedAndCounted) {
  std::stringstream buffer;
  buffer << "garbage\n";
  buffer << "100,out,1,2,50,DataQuery,3,42\n";  // valid
  buffer << "100,sideways,1,2,50,DataQuery,3,42\n";
  buffer << "100,out,1,2,50,NoSuchMessage,3\n";
  buffer << "100,out,1,2,50,DataQuery\n";  // missing fields
  buffer << "\n";
  std::size_t dropped = 0;
  auto trace = read_trace(buffer, &dropped);
  EXPECT_EQ(trace.size(), 1u);
  EXPECT_EQ(dropped, 4u);
}

TEST(TraceIoTest, ParseRecordSingle) {
  auto rec = parse_record("1500000,in,167772161,335544321,5560,DataReply,1,42,4,5520");
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->time, sim::Time::millis(1500));
  EXPECT_EQ(rec->direction, net::Direction::kIncoming);
  const auto* dr = std::get_if<proto::DataReply>(&rec->payload);
  ASSERT_NE(dr, nullptr);
  EXPECT_EQ(dr->chunk, 42u);
  EXPECT_EQ(dr->payload_bytes, 5520u);
}

TEST(TraceIoTest, FileRoundTrip) {
  PacketTrace original = sample_trace();
  const std::string path = ::testing::TempDir() + "/ppsim_trace_test.csv";
  ASSERT_TRUE(write_trace_file(path, original));
  auto restored = read_trace_file(path);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->size(), original.size());
}

TEST(TraceIoTest, MissingFileIsNull) {
  EXPECT_FALSE(read_trace_file("/nonexistent/dir/trace.csv").has_value());
}

TEST(TraceIoTest, EmptyTrace) {
  std::stringstream buffer;
  EXPECT_EQ(write_trace(buffer, {}), 0u);
  EXPECT_TRUE(read_trace(buffer).empty());
}

}  // namespace
}  // namespace ppsim::capture
