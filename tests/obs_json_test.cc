// Pins the NDJSON formatting primitives every observability emitter routes
// through (obs/json.h). These are byte-level contracts: the determinism
// harness diffs whole files, so any drift here silently breaks byte-identity
// between builds. Each expectation is an exact string.
#include "obs/json.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/time.h"

namespace ppsim::obs {
namespace {

std::string escaped(std::string_view s) {
  std::ostringstream os;
  write_json_escaped(os, s);
  return os.str();
}

std::string quoted(std::string_view s) {
  std::ostringstream os;
  write_json_string(os, s);
  return os.str();
}

TEST(WriteJsonEscaped, NamedControlEscapes) {
  EXPECT_EQ(escaped("a\nb"), "a\\nb");
  EXPECT_EQ(escaped("a\rb"), "a\\rb");
  EXPECT_EQ(escaped("a\tb"), "a\\tb");
}

TEST(WriteJsonEscaped, QuotesAndBackslashes) {
  EXPECT_EQ(escaped("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(escaped("C:\\path\\file"), "C:\\\\path\\\\file");
  // A backslash before a quote must not merge into one escape.
  EXPECT_EQ(escaped("\\\""), "\\\\\\\"");
}

TEST(WriteJsonEscaped, OtherControlCharsUseLowercaseUnicodeEscapes) {
  EXPECT_EQ(escaped(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(escaped(std::string("\x1f", 1)), "\\u001f");
  EXPECT_EQ(escaped(std::string("a\0b", 3)), "a\\u0000b");
  // 0x20 (space) and above pass through.
  EXPECT_EQ(escaped(" ~"), " ~");
}

TEST(WriteJsonEscaped, Utf8BytesPassThroughUnchanged) {
  // Multi-byte UTF-8 sequences have every byte >= 0x80; the escaper must
  // not mangle them into \u escapes or drop bytes.
  const std::string cafe = "caf\xc3\xa9";
  EXPECT_EQ(escaped(cafe), cafe);
  const std::string kanji = "\xe6\x97\xa5\xe6\x9c\xac";  // 日本
  EXPECT_EQ(escaped(kanji), kanji);
}

TEST(WriteJsonString, QuotesAndEscapesBody) {
  EXPECT_EQ(quoted("plain"), "\"plain\"");
  EXPECT_EQ(quoted("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(quoted(""), "\"\"");
}

TEST(WriteJsonDouble, StableShortestishFormatting) {
  const auto fmt = [](double v) {
    std::ostringstream os;
    write_json_double(os, v);
    return os.str();
  };
  EXPECT_EQ(fmt(0.5), "0.5");
  EXPECT_EQ(fmt(0.0), "0");
  EXPECT_EQ(fmt(-3.0), "-3");
  EXPECT_EQ(fmt(1e-9), "1e-09");
}

TEST(WriteJsonSimTime, FixedMicrosecondPrecision) {
  const auto fmt = [](sim::Time t) {
    std::ostringstream os;
    write_json_sim_time(os, t);
    return os.str();
  };
  EXPECT_EQ(fmt(sim::Time::zero()), "0.000000");
  EXPECT_EQ(fmt(sim::Time::micros(12'345'678)), "12.345678");
  EXPECT_EQ(fmt(sim::Time::micros(1)), "0.000001");
  EXPECT_EQ(fmt(sim::Time::seconds(90)), "90.000000");
}

}  // namespace
}  // namespace ppsim::obs
