#include "obs/health.h"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppsim::obs {
namespace {

HealthRuleSet one_rule(HealthRule rule) {
  HealthRuleSet set;
  set.rules.push_back(std::move(rule));
  return set;
}

HealthRule continuity_rule() {
  HealthRule rule;
  rule.kind = HealthRuleKind::kContinuityFloor;
  rule.warn = 0.9;
  rule.critical = 0.7;
  rule.label = "cont";
  return rule;
}

HealthInput healthy_at(double t_seconds) {
  HealthInput input;
  input.t = sim::Time::from_seconds(t_seconds);
  input.avg_continuity = 0.99;
  input.same_isp_share_interval = 0.8;
  input.interval_bytes = 1 << 20;
  input.alive_peers = 50;
  return input;
}

TEST(HealthRules, ParsesEveryKindAndRoundTrips) {
  std::istringstream in(
      "# comment\n"
      "rule kind=continuity_floor warn=0.9 critical=0.75 after=45 "
      "label=continuity\n"
      "rule kind=peer_isolation warn=3 critical=8\n"
      "rule kind=isp_share_drift warn=0.35 critical=0.6 trailing=4\n"
      "rule kind=startup_delay_slo warn=3 critical=10 slo_s=30\n"
      "rule kind=queue_depth_ceiling warn=20000 critical=50000\n");
  auto parsed = parse_health_rules(in);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.rules.rules.size(), 5u);
  EXPECT_EQ(parsed.rules.rules[0].kind, HealthRuleKind::kContinuityFloor);
  EXPECT_EQ(parsed.rules.rules[0].label, "continuity");
  EXPECT_EQ(parsed.rules.rules[0].after, sim::Time::seconds(45));
  EXPECT_EQ(parsed.rules.rules[2].trailing, 4);
  EXPECT_DOUBLE_EQ(parsed.rules.rules[3].slo_s, 30.0);

  std::ostringstream out;
  write_health_rules(out, parsed.rules);
  std::istringstream again(out.str());
  auto reparsed = parse_health_rules(again);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error;
  ASSERT_EQ(reparsed.rules.rules.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(reparsed.rules.rules[i].kind, parsed.rules.rules[i].kind);
    EXPECT_DOUBLE_EQ(reparsed.rules.rules[i].warn, parsed.rules.rules[i].warn);
    EXPECT_DOUBLE_EQ(reparsed.rules.rules[i].critical,
                     parsed.rules.rules[i].critical);
  }
}

TEST(HealthRules, RejectsBadInput) {
  auto expect_error = [](const char* text, const char* what) {
    std::istringstream in(text);
    auto parsed = parse_health_rules(in);
    EXPECT_FALSE(parsed.ok()) << what;
    EXPECT_TRUE(parsed.rules.empty()) << "rules must clear on error";
  };
  expect_error("rule warn=1 critical=2\n", "missing kind");
  expect_error("rule kind=bogus warn=1 critical=2\n", "unknown kind");
  expect_error("rule kind=peer_isolation warn=3\n", "missing critical");
  expect_error("rule kind=continuity_floor warn=0.7 critical=0.9\n",
               "floor ordering: critical must be <= warn");
  expect_error("rule kind=peer_isolation warn=8 critical=3\n",
               "ceiling ordering: critical must be >= warn");
  expect_error("rule kind=continuity_floor warn=1.5 critical=0.5\n",
               "continuity out of [0,1]");
  expect_error("rule kind=isp_share_drift warn=0.3 critical=0.6 trailing=1\n",
               "trailing window too short");
  expect_error("bogus kind=continuity_floor warn=0.9 critical=0.7\n",
               "unknown directive");
}

TEST(HealthRules, DefaultRulesAreValid) {
  const auto rules = default_health_rules();
  EXPECT_EQ(rules.rules.size(), 5u);
  EXPECT_TRUE(validate(rules).empty()) << validate(rules);
}

TEST(HealthMonitor, StaysOkOnHealthyInput) {
  HealthMonitor monitor(default_health_rules());
  for (int i = 1; i <= 20; ++i) monitor.evaluate(healthy_at(10.0 * i));
  const auto summary = monitor.summary();
  EXPECT_EQ(summary.worst, HealthState::kOk);
  EXPECT_FALSE(summary.ever_tripped());
  EXPECT_EQ(monitor.evaluations(), 20u);
}

TEST(HealthMonitor, ContinuityFloorTripsAndClears) {
  std::ostringstream trace_out;
  NdjsonTraceSink trace(trace_out);
  MetricsRegistry metrics;
  HealthMonitor monitor(one_rule(continuity_rule()),
                        {.trace = &trace, .metrics = &metrics});

  auto dip = healthy_at(10);
  monitor.evaluate(dip);  // ok
  dip.t = sim::Time::seconds(20);
  dip.avg_continuity = 0.85;  // below warn
  monitor.evaluate(dip);
  dip.t = sim::Time::seconds(30);
  dip.avg_continuity = 0.60;  // below critical
  monitor.evaluate(dip);
  dip.t = sim::Time::seconds(40);
  dip.avg_continuity = 0.95;  // recovered
  monitor.evaluate(dip);

  const auto summary = monitor.summary();
  ASSERT_EQ(summary.rules.size(), 1u);
  const auto& status = summary.rules[0].second;
  EXPECT_EQ(summary.worst, HealthState::kCritical);
  EXPECT_EQ(status.state, HealthState::kOk);
  EXPECT_EQ(status.worst, HealthState::kCritical);
  EXPECT_EQ(status.trips, 1u);
  EXPECT_EQ(status.criticals, 1u);
  EXPECT_EQ(status.clears, 1u);
  EXPECT_EQ(status.first_trip, sim::Time::seconds(20));
  EXPECT_DOUBLE_EQ(status.worst_value, 0.60);
  EXPECT_DOUBLE_EQ(status.last_value, 0.95);

  // One trace row per transition, parseable by the offline half.
  std::istringstream trace_in(trace_out.str());
  const auto transitions = read_health_events_ndjson(trace_in);
  ASSERT_EQ(transitions.size(), 3u);
  EXPECT_EQ(transitions[0].to, HealthState::kWarn);
  EXPECT_EQ(transitions[1].to, HealthState::kCritical);
  EXPECT_EQ(transitions[2].to, HealthState::kOk);
  EXPECT_EQ(transitions[1].label, "cont");

  EXPECT_EQ(metrics.find_counter("health_trips", {{"rule", "cont"}})->value(),
            1u);
  EXPECT_EQ(
      metrics.find_counter("health_criticals", {{"rule", "cont"}})->value(),
      1u);
  EXPECT_EQ(metrics.find_counter("health_clears", {{"rule", "cont"}})->value(),
            1u);
}

TEST(HealthMonitor, AfterSuppressesWarmup) {
  auto rule = continuity_rule();
  rule.after = sim::Time::seconds(45);
  HealthMonitor monitor(one_rule(rule));
  auto input = healthy_at(10);
  input.avg_continuity = 0.0;  // would be critical, but inside warm-up
  monitor.evaluate(input);
  EXPECT_FALSE(monitor.summary().ever_tripped());
  input.t = sim::Time::seconds(50);
  monitor.evaluate(input);
  EXPECT_TRUE(monitor.summary().ever_tripped());
}

TEST(HealthMonitor, DriftComparesAgainstTrailingWindow) {
  HealthRule rule;
  rule.kind = HealthRuleKind::kIspShareDrift;
  rule.warn = 0.3;
  rule.critical = 0.6;
  rule.trailing = 3;
  HealthMonitor monitor(one_rule(rule));

  // Fill the trailing window with a steady 0.8 share.
  for (int i = 1; i <= 3; ++i) {
    auto input = healthy_at(10.0 * i);
    monitor.evaluate(input);
  }
  EXPECT_FALSE(monitor.summary().ever_tripped());

  // Collapse to 0.2: drift = (0.8 - 0.2) / 0.8 = 0.75 > critical.
  auto input = healthy_at(40);
  input.same_isp_share_interval = 0.2;
  monitor.evaluate(input);
  const auto summary = monitor.summary();
  EXPECT_EQ(summary.worst, HealthState::kCritical);

  // Idle intervals abstain rather than reading a meaningless share.
  auto idle = healthy_at(50);
  idle.same_isp_share_interval = 0.0;
  idle.interval_bytes = 0;
  monitor.evaluate(idle);
  EXPECT_EQ(monitor.summary().rules[0].second.state, HealthState::kCritical);
}

TEST(HealthMonitor, StartupSloCountsLateViewers) {
  HealthRule rule;
  rule.kind = HealthRuleKind::kStartupDelaySlo;
  rule.warn = 2;
  rule.critical = 4;
  rule.slo_s = 30.0;
  HealthMonitor monitor(one_rule(rule));
  auto input = healthy_at(60);
  input.startup_waits_s = {5.0, 31.0, 40.0, 29.9};  // two over budget
  monitor.evaluate(input);
  const auto summary = monitor.summary();
  const auto& status = summary.rules[0].second;
  EXPECT_EQ(status.state, HealthState::kWarn);
  EXPECT_DOUBLE_EQ(status.last_value, 2.0);
}

TEST(HealthMonitor, CriticalHookFiresOncePerEntry) {
  auto rule = continuity_rule();
  HealthMonitor monitor(one_rule(rule));
  int hooks = 0;
  monitor.set_critical_hook(
      [&](sim::Time, const HealthRule&, double) { ++hooks; });
  auto input = healthy_at(10);
  input.avg_continuity = 0.5;
  monitor.evaluate(input);  // ok -> critical: hook
  input.t = sim::Time::seconds(20);
  monitor.evaluate(input);  // stays critical: no hook
  input.t = sim::Time::seconds(30);
  input.avg_continuity = 0.99;
  monitor.evaluate(input);  // clears
  input.t = sim::Time::seconds(40);
  input.avg_continuity = 0.5;
  monitor.evaluate(input);  // re-enters: hook
  EXPECT_EQ(hooks, 2);
}

TEST(HealthTimeline, DigestsTransitionStream) {
  std::ostringstream trace_out;
  NdjsonTraceSink trace(trace_out);
  HealthRuleSet rules;
  rules.rules.push_back(continuity_rule());
  HealthRule queue;
  queue.kind = HealthRuleKind::kQueueDepthCeiling;
  queue.warn = 100;
  queue.critical = 200;
  rules.rules.push_back(queue);
  HealthMonitor monitor(std::move(rules), {.trace = &trace});

  auto input = healthy_at(10);
  input.queue_depth = 150;  // queue warn
  input.avg_continuity = 0.5;  // continuity critical
  monitor.evaluate(input);
  input.t = sim::Time::seconds(20);
  input.queue_depth = 10;
  input.avg_continuity = 0.99;
  monitor.evaluate(input);  // both clear

  std::istringstream trace_in(trace_out.str());
  const auto rows = analyze_health_timeline(read_health_events_ndjson(trace_in));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].rule, 0u);
  EXPECT_EQ(rows[0].kind, HealthRuleKind::kContinuityFloor);
  EXPECT_EQ(rows[0].trips, 1u);
  EXPECT_EQ(rows[0].criticals, 1u);
  EXPECT_EQ(rows[0].clears, 1u);
  EXPECT_EQ(rows[0].first_trip, sim::Time::seconds(10));
  EXPECT_EQ(rows[0].last_clear, sim::Time::seconds(20));
  EXPECT_EQ(rows[0].final_state, HealthState::kOk);
  ASSERT_TRUE(rows[0].has_worst);
  EXPECT_DOUBLE_EQ(rows[0].worst_value, 0.5);
  EXPECT_EQ(rows[1].kind, HealthRuleKind::kQueueDepthCeiling);
  EXPECT_EQ(rows[1].criticals, 0u);

  std::ostringstream table;
  print_health_timeline(table, rows);
  EXPECT_NE(table.str().find("continuity_floor"), std::string::npos);
  EXPECT_NE(table.str().find("queue_depth_ceiling"), std::string::npos);
}

TEST(HealthTimeline, ReaderSkipsForeignLinesAndCountsMalformed) {
  std::istringstream in(
      "{\"t\":1.000000,\"ev\":\"peer_join\",\"peer\":1}\n"
      "{\"t\":2.000000,\"ev\":\"health.warn\",\"rule\":0,"
      "\"kind\":\"continuity_floor\",\"label\":\"c\",\"from\":\"ok\","
      "\"to\":\"warn\",\"value\":0.85,\"warn\":0.9,\"critical\":0.7}\n"
      "{\"t\":3.000000,\"ev\":\"health.clear\"}\n"  // malformed: no rule
      "not json at all\n");
  std::size_t dropped = 0;
  const auto transitions = read_health_events_ndjson(in, &dropped);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].to, HealthState::kWarn);
  EXPECT_EQ(dropped, 1u);
}

}  // namespace
}  // namespace ppsim::obs
