#include "core/report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ppsim::core {
namespace {

capture::TraceAnalysis sample_analysis() {
  capture::TraceAnalysis a;
  a.returned_addresses.add(net::IspCategory::kTele, 70);
  a.returned_addresses.add(net::IspCategory::kCnc, 20);
  a.returned_addresses.add(net::IspCategory::kForeign, 10);
  a.unique_listed_ips = 42;
  a.lists_from_peers = 9;
  a.lists_from_trackers = 2;

  capture::ListSourceRow row;
  row.replier_category = net::IspCategory::kTele;
  row.replier_is_tracker = false;
  row.listed.add(net::IspCategory::kTele, 55);
  row.listed.add(net::IspCategory::kCnc, 5);
  a.list_sources.push_back(row);
  row.replier_is_tracker = true;
  a.list_sources.push_back(row);

  a.data_transmissions.add(net::IspCategory::kTele, 850);
  a.data_transmissions.add(net::IspCategory::kCnc, 150);
  a.data_bytes.add(net::IspCategory::kTele, 850'000);
  a.data_bytes.add(net::IspCategory::kCnc, 150'000);

  for (int i = 0; i < 20; ++i) {
    capture::ResponseSample s;
    s.request_time = sim::Time::seconds(i);
    s.response_seconds = 0.1 * (1 + i % 3);
    s.group = i % 2 == 0 ? net::ResponseGroup::kTele : net::ResponseGroup::kCnc;
    a.list_responses.push_back(s);
    a.data_responses.push_back(s);
  }

  for (int i = 0; i < 10; ++i) {
    capture::PeerActivity p;
    p.ip = net::IpAddress(static_cast<std::uint32_t>(i + 1));
    p.category = net::IspCategory::kTele;
    p.data_requests_matched = static_cast<std::uint64_t>(100 / (i + 1));
    p.bytes_contributed = p.data_requests_matched * 1000;
    p.min_response_seconds = 0.01 * (i + 1);
    a.peers.push_back(p);
    a.unique_data_peers.add(p.category);
  }
  return a;
}

TEST(ReportTest, ReturnedAddressesMentionsSharesAndUnique) {
  std::ostringstream os;
  print_returned_addresses(os, sample_analysis());
  const std::string out = os.str();
  EXPECT_NE(out.find("total=100"), std::string::npos);
  EXPECT_NE(out.find("unique=42"), std::string::npos);
  EXPECT_NE(out.find("70.0%"), std::string::npos);
  EXPECT_NE(out.find("TELE"), std::string::npos);
}

TEST(ReportTest, ListSourcesShowsPeerAndTrackerRows) {
  std::ostringstream os;
  print_list_sources(os, sample_analysis());
  const std::string out = os.str();
  EXPECT_NE(out.find("TELE_p"), std::string::npos);
  EXPECT_NE(out.find("TELE_s"), std::string::npos);
  EXPECT_NE(out.find("from peers: 9"), std::string::npos);
  EXPECT_NE(out.find("from trackers: 2"), std::string::npos);
}

TEST(ReportTest, DataByIspShowsBothPanels) {
  std::ostringstream os;
  print_data_by_isp(os, sample_analysis());
  const std::string out = os.str();
  EXPECT_NE(out.find("Data transmissions by ISP, total=1000"),
            std::string::npos);
  EXPECT_NE(out.find("Downloaded bytes by ISP, total=1000000"),
            std::string::npos);
  EXPECT_NE(out.find("85.0%"), std::string::npos);
}

TEST(ReportTest, ResponseTimesBothKinds) {
  std::ostringstream os;
  print_response_times(os, sample_analysis(), /*data_requests=*/false);
  EXPECT_NE(os.str().find("Peer-list response times"), std::string::npos);
  EXPECT_NE(os.str().find("unanswered"), std::string::npos);
  std::ostringstream os2;
  print_response_times(os2, sample_analysis(), /*data_requests=*/true);
  EXPECT_NE(os2.str().find("Data-request response times"), std::string::npos);
  EXPECT_NE(os2.str().find("series TELE"), std::string::npos);
}

TEST(ReportTest, ResponseTimesEmptyAnalysis) {
  capture::TraceAnalysis empty;
  std::ostringstream os;
  print_response_times(os, empty, false);  // must not crash or divide by 0
  EXPECT_FALSE(os.str().empty());
}

TEST(ReportTest, ContributionsShowsFitsAndShares) {
  std::ostringstream os;
  print_contributions(os, sample_analysis());
  const std::string out = os.str();
  EXPECT_NE(out.find("stretched-exponential"), std::string::npos);
  EXPECT_NE(out.find("zipf"), std::string::npos);
  EXPECT_NE(out.find("top 10%"), std::string::npos);
  EXPECT_NE(out.find("Unique peers connected for data transfer: 10"),
            std::string::npos);
}

TEST(ReportTest, RttRankShowsCorrelation) {
  std::ostringstream os;
  print_rtt_rank(os, sample_analysis());
  const std::string out = os.str();
  EXPECT_NE(out.find("correlation coefficient"), std::string::npos);
  EXPECT_NE(out.find("rank |"), std::string::npos);
  // Our synthetic peers: more requests <=> smaller RTT, exactly inverse in
  // log space, so the printed coefficient is -1.000.
  EXPECT_NE(out.find("coefficient: -1.000"), std::string::npos);
}

TEST(ReportTest, TrafficMatrixRowsAndShare) {
  TrafficMatrix m;
  m.bytes[0][0] = 800;
  m.bytes[0][1] = 200;
  std::ostringstream os;
  print_traffic_matrix(os, m);
  const std::string out = os.str();
  EXPECT_NE(out.find("80.0%"), std::string::npos);
  EXPECT_NE(out.find("TELE"), std::string::npos);
  EXPECT_NE(out.find("Foreign"), std::string::npos);
}

}  // namespace
}  // namespace ppsim::core
