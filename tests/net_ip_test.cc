#include "net/ip.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>

namespace ppsim::net {
namespace {

TEST(IpAddressTest, OctetConstruction) {
  IpAddress ip(192, 168, 1, 5);
  EXPECT_EQ(ip.value(), 0xC0A80105u);
  EXPECT_EQ(ip.to_string(), "192.168.1.5");
}

TEST(IpAddressTest, DefaultUnspecified) {
  IpAddress ip;
  EXPECT_TRUE(ip.is_unspecified());
  EXPECT_EQ(ip.to_string(), "0.0.0.0");
}

struct RoundTripCase {
  std::string text;
};

class IpParseRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(IpParseRoundTrip, ParseThenFormat) {
  auto ip = IpAddress::parse(GetParam().text);
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->to_string(), GetParam().text);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, IpParseRoundTrip,
    ::testing::Values(RoundTripCase{"0.0.0.0"}, RoundTripCase{"1.2.3.4"},
                      RoundTripCase{"61.128.0.1"},
                      RoundTripCase{"255.255.255.255"},
                      RoundTripCase{"129.174.10.20"},
                      RoundTripCase{"202.112.0.44"}));

class IpParseRejects : public ::testing::TestWithParam<std::string> {};

TEST_P(IpParseRejects, MalformedInput) {
  EXPECT_FALSE(IpAddress::parse(GetParam()).has_value());
}

INSTANTIATE_TEST_SUITE_P(Cases, IpParseRejects,
                         ::testing::Values("", "1.2.3", "256.1.1.1",
                                           "1.2.3.4.5", "a.b.c.d",
                                           "1.2.3.999"));

TEST(IpAddressTest, Ordering) {
  EXPECT_LT(IpAddress(1, 0, 0, 0), IpAddress(2, 0, 0, 0));
  EXPECT_EQ(IpAddress(9, 9, 9, 9), IpAddress(9, 9, 9, 9));
}

TEST(IpAddressTest, HashSpreadsSequentialAddresses) {
  std::unordered_set<std::size_t> hashes;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    hashes.insert(std::hash<IpAddress>{}(IpAddress(0x0A000000u + i)));
  }
  EXPECT_EQ(hashes.size(), 1000u);  // no collisions in a tiny dense range
}

TEST(PrefixTest, MaskValues) {
  EXPECT_EQ(Prefix::mask(0), 0u);
  EXPECT_EQ(Prefix::mask(8), 0xFF000000u);
  EXPECT_EQ(Prefix::mask(16), 0xFFFF0000u);
  EXPECT_EQ(Prefix::mask(32), 0xFFFFFFFFu);
}

TEST(PrefixTest, NetworkMaskedOnConstruction) {
  Prefix p(IpAddress(10, 1, 2, 3), 8);
  EXPECT_EQ(p.network(), IpAddress(10, 0, 0, 0));
  EXPECT_EQ(p.length(), 8);
}

TEST(PrefixTest, Contains) {
  Prefix p(IpAddress(61, 128, 0, 0), 10);
  EXPECT_TRUE(p.contains(IpAddress(61, 128, 0, 1)));
  EXPECT_TRUE(p.contains(IpAddress(61, 191, 255, 255)));
  EXPECT_FALSE(p.contains(IpAddress(61, 192, 0, 0)));
  EXPECT_FALSE(p.contains(IpAddress(62, 128, 0, 1)));
}

TEST(PrefixTest, ZeroLengthContainsEverything) {
  Prefix p(IpAddress(1, 2, 3, 4), 0);
  EXPECT_TRUE(p.contains(IpAddress(255, 255, 255, 255)));
  EXPECT_TRUE(p.contains(IpAddress()));
}

TEST(PrefixTest, SizeIsPowerOfTwo) {
  EXPECT_EQ(Prefix(IpAddress(10, 0, 0, 0), 8).size(), 1u << 24);
  EXPECT_EQ(Prefix(IpAddress(10, 0, 0, 0), 32).size(), 1u);
  EXPECT_EQ(Prefix(IpAddress(10, 0, 0, 0), 16).size(), 65536u);
}

TEST(PrefixTest, ToString) {
  EXPECT_EQ(Prefix(IpAddress(202, 112, 0, 0), 13).to_string(),
            "202.112.0.0/13");
}

}  // namespace
}  // namespace ppsim::net
