// Sink-composition contract: when the flight recorder is teed in front of
// an NDJSON sink and a span tracker, every sink observes the identical
// event sequence — pinned by byte-comparing the recorder's ring-buffer
// dump (its events section) against the NDJSON sink's output.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/flight_recorder.h"
#include "obs/span_tracker.h"
#include "obs/trace.h"
#include "sim/time.h"

namespace ppsim::obs {
namespace {

std::string events_section(const std::string& bundle_path) {
  std::ifstream in(bundle_path);
  std::string line, out;
  bool in_events = false;
  while (std::getline(in, line)) {
    if (line.find("\"section\":") != std::string::npos) {
      in_events = line.find("\"section\":\"events\"") != std::string::npos;
      continue;
    }
    if (in_events) out += line + "\n";
  }
  return out;
}

TEST(SinkComposition, RecorderTeeAndSpanTrackerSeeIdenticalSequences) {
  std::ostringstream ndjson_os;
  NdjsonTraceSink ndjson(ndjson_os);
  SpanTracker tracker;
  TeeTraceSink tee{&ndjson, &tracker};

  FlightRecorder::Options options;
  options.ring_capacity = 1024;  // far above the event count: nothing evicts
  options.dir = ::testing::TempDir();
  options.downstream = &tee;
  FlightRecorder recorder(options);

  // A deterministic mixed stream: span-bearing protocol events plus one
  // peer's startup milestones. All emission goes through the recorder, the
  // composition the runner builds for --postmortem-dir + --spans-out.
  recorder.write(TraceEvent(sim::Time::seconds(1), "peer_join")
                     .field("peer", "10.1.0.1").field("isp", "TELE")
                     .field("span", std::uint64_t{1}));
  for (int i = 0; i < 50; ++i) {
    recorder.write(TraceEvent(sim::Time::seconds(2 + i), "data_request")
                       .field("peer", "10.1.0.1")
                       .field("chunk", static_cast<std::uint64_t>(i))
                       .field("span", static_cast<std::uint64_t>(10 + i))
                       .field("parent", std::uint64_t{1}));
  }
  recorder.write(TraceEvent(sim::Time::seconds(60), "playback_start")
                     .field("peer", "10.1.0.1")
                     .field("span", std::uint64_t{99})
                     .field("parent", std::uint64_t{1}));

  // Every sink behind the tee saw every event, in order.
  EXPECT_EQ(ndjson.events_written(), 52u);
  EXPECT_EQ(tracker.events_observed(), 52u);
  EXPECT_EQ(tracker.span_count(), 52u);
  EXPECT_EQ(tracker.parent_of(99), 1u);

  ASSERT_TRUE(recorder.trigger(sim::Time::seconds(61), "test"));
  ASSERT_EQ(recorder.dump_paths().size(), 1u);
  const std::string dumped = events_section(recorder.dump_paths()[0]);
  // Ring dump vs live sink tail: byte-identical. The recorder buffered
  // every event (capacity exceeds the stream), so the full sequences match.
  EXPECT_EQ(dumped, ndjson_os.str());
  std::remove(recorder.dump_paths()[0].c_str());
}

TEST(SinkComposition, TeeSkipsNullSinksAndPreservesOrder) {
  std::ostringstream a_os, b_os;
  NdjsonTraceSink a(a_os), b(b_os);
  TeeTraceSink tee{&a, nullptr, &b};
  tee.write(TraceEvent(sim::Time::seconds(1), "x").field("n", 1));
  tee.write(TraceEvent(sim::Time::seconds(2), "y").field("n", 2));
  EXPECT_EQ(a_os.str(), b_os.str());
  EXPECT_EQ(a.events_written(), 2u);
  EXPECT_EQ(b.events_written(), 2u);
}

}  // namespace
}  // namespace ppsim::obs
