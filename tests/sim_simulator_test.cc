#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/observer.h"
#include "sim/time.h"

namespace ppsim::sim {
namespace {

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule(Time::seconds(3), [&] { order.push_back(3); });
  simulator.schedule(Time::seconds(1), [&] { order.push_back(1); });
  simulator.schedule(Time::seconds(2), [&] { order.push_back(2); });
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, SameTimeEventsFifo) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    simulator.schedule(Time::seconds(1), [&order, i] { order.push_back(i); });
  simulator.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, NowAdvancesToEventTime) {
  Simulator simulator;
  Time seen;
  simulator.schedule(Time::millis(1500), [&] { seen = simulator.now(); });
  simulator.run();
  EXPECT_EQ(seen, Time::millis(1500));
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator simulator;
  bool ran = false;
  simulator.schedule(Time::seconds(1), [&] {
    simulator.schedule(Time::seconds(-5), [&] {
      ran = true;
      EXPECT_EQ(simulator.now(), Time::seconds(1));
    });
  });
  simulator.run();
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, RunUntilStopsAtHorizonInclusive) {
  Simulator simulator;
  int count = 0;
  simulator.schedule(Time::seconds(1), [&] { ++count; });
  simulator.schedule(Time::seconds(2), [&] { ++count; });
  simulator.schedule(Time::seconds(3), [&] { ++count; });
  simulator.run_until(Time::seconds(2));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(simulator.pending_events(), 1u);
  simulator.run_until(Time::seconds(10));
  EXPECT_EQ(count, 3);
}

TEST(SimulatorTest, ClockAdvancesToHorizonWhenIdle) {
  Simulator simulator;
  simulator.run_until(Time::seconds(42));
  EXPECT_EQ(simulator.now(), Time::seconds(42));
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator simulator;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) simulator.schedule(Time::millis(10), recurse);
  };
  simulator.schedule(Time::millis(10), recurse);
  simulator.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(simulator.now(), Time::millis(50));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator simulator;
  bool ran = false;
  auto h = simulator.schedule(Time::seconds(1), [&] { ran = true; });
  EXPECT_TRUE(simulator.cancel(h));
  simulator.run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CancelAfterFireReturnsFalse) {
  Simulator simulator;
  bool ran = false;
  auto h = simulator.schedule(Time::seconds(1), [&] { ran = true; });
  simulator.run();
  EXPECT_TRUE(ran);
  // The event already fired; cancelling its handle must report failure and
  // must not disturb later events.
  EXPECT_FALSE(simulator.cancel(h));
  bool later = false;
  simulator.schedule(Time::seconds(1), [&] { later = true; });
  simulator.run();
  EXPECT_TRUE(later);
}

TEST(SimulatorTest, CancelAfterFireDoesNotTombstoneLaterEvents) {
  Simulator simulator;
  int fired = 0;
  auto h = simulator.schedule(Time::seconds(1), [&] { ++fired; });
  // Keep the queue non-empty across the cancel so stale tombstones would
  // survive into the next pop if cancel() planted one.
  simulator.schedule(Time::seconds(3), [&] { ++fired; });
  simulator.run_until(Time::seconds(2));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(simulator.cancel(h));
  simulator.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, CancelDuringCallbackSuppressesSameInstantEvent) {
  Simulator simulator;
  bool b_ran = false;
  TimerHandle b;
  simulator.schedule(Time::seconds(1), [&] {
    EXPECT_TRUE(simulator.cancel(b));
  });
  b = simulator.schedule(Time::seconds(1), [&] { b_ran = true; });
  simulator.run();
  EXPECT_FALSE(b_ran);
  EXPECT_EQ(simulator.pending_events(), 0u);
}

TEST(SimulatorTest, CancelledEventsLeavePendingCount) {
  Simulator simulator;
  auto h = simulator.schedule(Time::seconds(1), [] {});
  simulator.schedule(Time::seconds(2), [] {});
  EXPECT_EQ(simulator.pending_events(), 2u);
  EXPECT_TRUE(simulator.cancel(h));
  EXPECT_EQ(simulator.pending_events(), 1u);
  simulator.run();
  EXPECT_EQ(simulator.pending_events(), 0u);
}

TEST(SimulatorTest, CancelTwiceReturnsFalse) {
  Simulator simulator;
  auto h = simulator.schedule(Time::seconds(1), [] {});
  EXPECT_TRUE(simulator.cancel(h));
  EXPECT_FALSE(simulator.cancel(h));
}

TEST(SimulatorTest, CancelInvalidHandle) {
  Simulator simulator;
  TimerHandle h;
  EXPECT_FALSE(simulator.cancel(h));
}

TEST(SimulatorTest, CancelledEventsNotCounted) {
  Simulator simulator;
  auto h = simulator.schedule(Time::seconds(1), [] {});
  simulator.schedule(Time::seconds(2), [] {});
  simulator.cancel(h);
  EXPECT_EQ(simulator.run(), 1u);
  EXPECT_EQ(simulator.events_executed(), 1u);
}

TEST(SimulatorTest, RequestStopHaltsLoop) {
  Simulator simulator;
  int count = 0;
  simulator.schedule(Time::seconds(1), [&] {
    ++count;
    simulator.request_stop();
  });
  simulator.schedule(Time::seconds(2), [&] { ++count; });
  simulator.run();
  EXPECT_EQ(count, 1);
  // Stop only interrupts the current loop; a new run resumes.
  simulator.run();
  EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, PeriodicUntilFalse) {
  Simulator simulator;
  int ticks = 0;
  schedule_periodic(simulator, Time::seconds(10), [&] {
    ++ticks;
    return ticks < 4;
  });
  simulator.run();
  EXPECT_EQ(ticks, 4);
  EXPECT_EQ(simulator.now(), Time::seconds(40));
}

TEST(SimulatorTest, PeriodicStoppedByTickLeavesNoPendingEvents) {
  Simulator simulator;
  int ticks = 0;
  schedule_periodic(simulator, Time::seconds(1), [&] {
    ++ticks;
    return false;  // stop immediately after the first firing
  });
  simulator.run();
  EXPECT_EQ(ticks, 1);
  EXPECT_EQ(simulator.pending_events(), 0u);
}

TEST(SimulatorTest, RequestStopMidQueueKeepsRemainderPending) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule(Time::seconds(1), [&] { order.push_back(1); });
  simulator.schedule(Time::seconds(1), [&] {
    order.push_back(2);
    simulator.request_stop();
  });
  simulator.schedule(Time::seconds(1), [&] { order.push_back(3); });
  simulator.schedule(Time::seconds(2), [&] { order.push_back(4); });
  simulator.run();
  // Stop takes effect after the current event; same-instant successors stay
  // queued in FIFO order for the next run.
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(simulator.pending_events(), 2u);
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(SimulatorTest, RequestStopDuringPeriodicResumesCleanly) {
  Simulator simulator;
  int ticks = 0;
  schedule_periodic(simulator, Time::seconds(10), [&] {
    if (++ticks == 2) simulator.request_stop();
    return ticks < 5;
  });
  simulator.run();
  EXPECT_EQ(ticks, 2);
  simulator.run();
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(simulator.now(), Time::seconds(50));
}

TEST(SimulatorTest, ScheduleAtPastClampsToNow) {
  Simulator simulator;
  bool ran = false;
  simulator.schedule(Time::seconds(5), [&] {
    simulator.schedule_at(Time::seconds(1), [&] {
      ran = true;
      EXPECT_EQ(simulator.now(), Time::seconds(5));
    });
  });
  simulator.run();
  EXPECT_TRUE(ran);
}

// Records every observer hook invocation for assertions.
class RecordingObserver final : public SimObserver {
 public:
  struct Begin {
    Time now;
    std::uint64_t seq;
    std::string category;
    std::size_t queue_depth;
  };
  void on_event_begin(Time now, std::uint64_t seq, const char* category,
                      std::size_t queue_depth) override {
    begins.push_back(Begin{now, seq, category, queue_depth});
  }
  void on_event_end(Time now, const char* category) override {
    ends.push_back({now, category});
  }
  std::vector<Begin> begins;
  std::vector<std::pair<Time, std::string>> ends;
};

TEST(SimulatorObserver, SeesEveryEventWithItsCategory) {
  Simulator simulator;
  RecordingObserver obs;
  simulator.add_observer(&obs);
  simulator.schedule(Time::seconds(1), [] {}, "first");
  simulator.schedule(Time::seconds(2), [] {});  // untagged -> ""
  simulator.run();

  ASSERT_EQ(obs.begins.size(), 2u);
  ASSERT_EQ(obs.ends.size(), 2u);
  EXPECT_EQ(obs.begins[0].now, Time::seconds(1));
  EXPECT_EQ(obs.begins[0].category, "first");
  EXPECT_EQ(obs.begins[1].category, "");
  EXPECT_EQ(obs.ends[0].second, "first");
  // Begin/end pair on the same event: same category, same timestamp.
  EXPECT_EQ(obs.ends[0].first, obs.begins[0].now);
  // Sequence numbers reflect scheduling order.
  EXPECT_LT(obs.begins[0].seq, obs.begins[1].seq);
}

TEST(SimulatorObserver, QueueDepthExcludesTheFiringEvent) {
  Simulator simulator;
  RecordingObserver obs;
  simulator.add_observer(&obs);
  simulator.schedule(Time::seconds(1), [] {}, "a");
  simulator.schedule(Time::seconds(2), [] {}, "b");
  simulator.schedule(Time::seconds(3), [] {}, "c");
  simulator.run();
  ASSERT_EQ(obs.begins.size(), 3u);
  EXPECT_EQ(obs.begins[0].queue_depth, 2u);
  EXPECT_EQ(obs.begins[1].queue_depth, 1u);
  EXPECT_EQ(obs.begins[2].queue_depth, 0u);
}

TEST(SimulatorObserver, RemoveObserverStopsDelivery) {
  Simulator simulator;
  RecordingObserver obs;
  simulator.add_observer(&obs);
  simulator.schedule(Time::seconds(1), [] {}, "seen");
  simulator.run();
  simulator.remove_observer(&obs);
  simulator.schedule(Time::seconds(1), [] {}, "unseen");
  simulator.run();
  ASSERT_EQ(obs.begins.size(), 1u);
  EXPECT_EQ(obs.begins[0].category, "seen");
}

TEST(SimulatorObserver, MultipleObserversAllNotified) {
  Simulator simulator;
  RecordingObserver a, b;
  simulator.add_observer(&a);
  simulator.add_observer(&b);
  simulator.schedule(Time::seconds(1), [] {}, "x");
  simulator.run();
  EXPECT_EQ(a.begins.size(), 1u);
  EXPECT_EQ(b.begins.size(), 1u);
}

TEST(SimulatorTest, PeriodicReturnsHandleOfFirstFiring) {
  Simulator simulator;
  int ticks = 0;
  TimerHandle h = schedule_periodic(simulator, Time::seconds(10), [&] {
    ++ticks;
    return true;
  });
  // Cancelling before the first firing stops the whole chain: no tick ever
  // runs and nothing is left pending.
  EXPECT_TRUE(simulator.cancel(h));
  simulator.run();
  EXPECT_EQ(ticks, 0);
  EXPECT_EQ(simulator.pending_events(), 0u);
}

TEST(SimulatorTest, PeriodicHandleStaleAfterFirstFiring) {
  Simulator simulator;
  int ticks = 0;
  TimerHandle h = schedule_periodic(simulator, Time::seconds(10), [&] {
    ++ticks;
    return ticks < 3;
  });
  simulator.run_until(Time::seconds(10));
  EXPECT_EQ(ticks, 1);
  // After the first firing the chain re-arms under fresh handles, so the
  // returned handle is stale: cancel fails and the chain keeps ticking.
  EXPECT_FALSE(simulator.cancel(h));
  simulator.run();
  EXPECT_EQ(ticks, 3);
}

TEST(SimulatorTest, PeriodicCarriesItsCategoryToObservers) {
  Simulator simulator;
  RecordingObserver obs;
  simulator.add_observer(&obs);
  int ticks = 0;
  schedule_periodic(
      simulator, Time::seconds(5),
      [&] {
        ++ticks;
        return ticks < 3;
      },
      "tick.cat");
  simulator.run();
  ASSERT_EQ(obs.begins.size(), 3u);
  for (const auto& b : obs.begins) EXPECT_EQ(b.category, "tick.cat");
}

TEST(SimulatorTest, ManyEventsStressOrdering) {
  Simulator simulator;
  Time last = Time::zero();
  bool monotonic = true;
  for (int i = 0; i < 10000; ++i) {
    // Pseudo-scattered times.
    const Time when = Time::micros((i * 7919) % 100000);
    simulator.schedule_at(when, [&, when] {
      if (simulator.now() < last) monotonic = false;
      last = simulator.now();
    });
  }
  simulator.run();
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(simulator.events_executed(), 10000u);
}

}  // namespace
}  // namespace ppsim::sim
