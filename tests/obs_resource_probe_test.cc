#include "obs/resource_probe.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "sim/time.h"

namespace ppsim::obs {
namespace {

ResourceProbe::Inputs inputs_at(double t, std::uint64_t events,
                                double wall_s) {
  ResourceProbe::Inputs in;
  in.now = sim::Time::seconds(t);
  in.queue_depth = 100;
  in.event_horizon = sim::Time::seconds(5);
  in.events_executed = events;
  in.queue_bytes = 4096;
  in.live_peers = 7;
  in.live_peer_bytes = 70000;
  in.wall_seconds = wall_s;
  return in;
}

TEST(ResourceProbe, RecordsSchedulerInputsVerbatim) {
  ResourceProbe probe;
  const auto& s = probe.sample(inputs_at(10, 1000, 0));
  EXPECT_EQ(s.t.as_micros(), sim::Time::seconds(10).as_micros());
  EXPECT_EQ(s.queue_depth, 100u);
  EXPECT_DOUBLE_EQ(s.event_horizon_s, 5.0);
  EXPECT_EQ(s.events_executed, 1000u);
  EXPECT_EQ(s.queue_bytes, 4096u);
  EXPECT_EQ(s.live_peers, 7u);
  EXPECT_EQ(s.live_peer_bytes, 70000u);
  EXPECT_EQ(probe.samples_taken(), 1u);
}

TEST(ResourceProbe, ThroughputIsDeltaEventsOverDeltaWall) {
  ResourceProbe probe;
  probe.sample(inputs_at(10, 1000, 1.0));
  const auto& s = probe.sample(inputs_at(20, 5000, 3.0));
  // 4000 events over 2 wall seconds.
  EXPECT_DOUBLE_EQ(s.events_per_wall_s, 2000.0);
}

TEST(ResourceProbe, ThroughputStaysZeroWithoutWallClock) {
  // No profiler attached -> wall_seconds stays 0; the probe must not
  // invent a rate (division by a zero interval).
  ResourceProbe probe;
  probe.sample(inputs_at(10, 1000, 0));
  const auto& s = probe.sample(inputs_at(20, 5000, 0));
  EXPECT_DOUBLE_EQ(s.events_per_wall_s, 0.0);
}

TEST(ResourceProbe, RingIsBoundedByRetain) {
  ResourceProbe probe(/*retain=*/3);
  for (int i = 0; i < 10; ++i)
    probe.sample(inputs_at(i, 100 * i, 0));
  EXPECT_EQ(probe.samples().size(), 3u);
  EXPECT_EQ(probe.samples_taken(), 10u);
  EXPECT_EQ(probe.samples().back().events_executed, 900u);
}

TEST(ResourceProbe, PublishesEveryInventoriedGauge) {
  MetricsRegistry metrics;
  ResourceProbe probe;
  probe.bind_metrics(&metrics);
  probe.sample(inputs_at(10, 1000, 1.0));
  for (const std::string_view name : kResourceGaugeNames)
    EXPECT_NE(metrics.find_gauge(std::string(name)), nullptr)
        << "gauge not published: " << name;
  EXPECT_EQ(metrics.size(), kResourceGaugeNames.size());
  EXPECT_DOUBLE_EQ(metrics.find_gauge("sched_queue_depth")->value(), 100.0);
  EXPECT_DOUBLE_EQ(metrics.find_gauge("live_peers")->value(), 7.0);
}

TEST(ResourceProbe, RssReadbackWorksOnLinux) {
#ifdef __linux__
  // A live process must have a nonzero resident set, peak >= current, and
  // the probe tracks the largest peak it has seen.
  const std::uint64_t rss = ResourceProbe::current_rss_bytes();
  const std::uint64_t peak = ResourceProbe::peak_rss_bytes();
  EXPECT_GT(rss, 0u);
  EXPECT_GE(peak, rss);
  ResourceProbe probe;
  probe.sample(inputs_at(1, 1, 0));
  EXPECT_GE(probe.peak_rss_bytes_seen(), rss);
#else
  EXPECT_EQ(ResourceProbe::current_rss_bytes(), 0u);
#endif
}

}  // namespace
}  // namespace ppsim::obs
