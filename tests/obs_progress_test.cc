#include "obs/progress.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "sim/time.h"

namespace ppsim::obs {
namespace {

ProgressMeter::State state_at(double t) {
  ProgressMeter::State s;
  s.now = sim::Time::seconds(t);
  s.events_executed = 804905;
  s.peers_alive = 121;
  s.queue_depth = 5417;
  s.rss_bytes = 512u * 1024 * 1024 + 314573;  // ~512.3MB
  return s;
}

TEST(ProgressMeter, FormatsWallFreeLineWithDashes) {
  // No profiler attached: wall, rate, and ETA columns must render as "-"
  // rather than inventing a clock.
  ProgressMeter meter({.out = nullptr, .profiler = nullptr,
                       .total = sim::Time::seconds(360)});
  EXPECT_EQ(meter.format_line(state_at(120)),
            "[progress] t=120.0s/360s (33.3%) wall=- events=804905 (-/s) "
            "peers=121 queue=5417 rss=512.3MB eta=-");
}

TEST(ProgressMeter, OmitsPercentWithoutTotalAndDashesZeroRss) {
  ProgressMeter meter({});
  auto s = state_at(42);
  s.rss_bytes = 0;
  EXPECT_EQ(meter.format_line(s),
            "[progress] t=42.0s wall=- events=804905 (-/s) "
            "peers=121 queue=5417 rss=- eta=-");
}

TEST(ProgressMeter, TickWritesOneLinePerCallAndCounts) {
  std::ostringstream err;
  ProgressMeter meter(
      {.out = &err, .profiler = nullptr, .total = sim::Time::seconds(60)});
  meter.tick(state_at(30));
  meter.tick(state_at(60));
  EXPECT_EQ(meter.lines_written(), 2u);
  const std::string out = err.str();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
  EXPECT_NE(out.find("[progress] t=30.0s/60s (50.0%)"), std::string::npos);
  EXPECT_NE(out.find("[progress] t=60.0s/60s (100.0%)"), std::string::npos);
}

TEST(ProgressMeter, NullStreamTickIsANoOp) {
  ProgressMeter meter({});
  meter.tick(state_at(1));
  EXPECT_EQ(meter.lines_written(), 0u);
}

}  // namespace
}  // namespace ppsim::obs
