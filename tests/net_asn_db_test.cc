#include "net/asn_db.h"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "sim/rng.h"

namespace ppsim::net {
namespace {

TEST(AsnDatabaseTest, EmptyLookupIsNull) {
  AsnDatabase db;
  EXPECT_FALSE(db.lookup(IpAddress(1, 2, 3, 4)).has_value());
  EXPECT_EQ(db.category_or_foreign(IpAddress(1, 2, 3, 4)),
            IspCategory::kForeign);
}

TEST(AsnDatabaseTest, ExactPrefixMatch) {
  AsnDatabase db;
  db.insert(Prefix(IpAddress(61, 128, 0, 0), 10), 4134, "CHINANET",
            IspCategory::kTele);
  auto rec = db.lookup(IpAddress(61, 130, 5, 5));
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->asn, 4134u);
  EXPECT_EQ(rec->as_name, "CHINANET");
  EXPECT_EQ(rec->category, IspCategory::kTele);
  EXPECT_FALSE(db.lookup(IpAddress(61, 192, 0, 0)).has_value());
}

TEST(AsnDatabaseTest, LongestPrefixWins) {
  AsnDatabase db;
  db.insert(Prefix(IpAddress(61, 0, 0, 0), 8), 100, "COARSE",
            IspCategory::kOtherCn);
  db.insert(Prefix(IpAddress(61, 128, 0, 0), 10), 200, "FINE",
            IspCategory::kTele);
  EXPECT_EQ(db.lookup(IpAddress(61, 128, 1, 1))->asn, 200u);
  EXPECT_EQ(db.lookup(IpAddress(61, 1, 1, 1))->asn, 100u);
}

TEST(AsnDatabaseTest, NestedThreeLevels) {
  AsnDatabase db;
  db.insert(Prefix(IpAddress(10, 0, 0, 0), 8), 1, "L8", IspCategory::kTele);
  db.insert(Prefix(IpAddress(10, 16, 0, 0), 12), 2, "L12", IspCategory::kCnc);
  db.insert(Prefix(IpAddress(10, 16, 16, 0), 24), 3, "L24",
            IspCategory::kCer);
  EXPECT_EQ(db.lookup(IpAddress(10, 200, 0, 1))->asn, 1u);
  EXPECT_EQ(db.lookup(IpAddress(10, 17, 0, 1))->asn, 2u);
  EXPECT_EQ(db.lookup(IpAddress(10, 16, 16, 200))->asn, 3u);
}

TEST(AsnDatabaseTest, ReinsertOverwritesWithoutCountGrowth) {
  AsnDatabase db;
  db.insert(Prefix(IpAddress(10, 0, 0, 0), 8), 1, "A", IspCategory::kTele);
  db.insert(Prefix(IpAddress(10, 0, 0, 0), 8), 2, "B", IspCategory::kCnc);
  EXPECT_EQ(db.prefix_count(), 1u);
  EXPECT_EQ(db.lookup(IpAddress(10, 1, 1, 1))->asn, 2u);
}

TEST(AsnDatabaseTest, HostRoute) {
  AsnDatabase db;
  db.insert(Prefix(IpAddress(9, 9, 9, 9), 32), 7, "HOST",
            IspCategory::kForeign);
  EXPECT_TRUE(db.lookup(IpAddress(9, 9, 9, 9)).has_value());
  EXPECT_FALSE(db.lookup(IpAddress(9, 9, 9, 8)).has_value());
}

TEST(AsnDatabaseTest, DefaultRoute) {
  AsnDatabase db;
  db.insert(Prefix(IpAddress(0, 0, 0, 0), 0), 1, "DEFAULT",
            IspCategory::kForeign);
  db.insert(Prefix(IpAddress(61, 128, 0, 0), 10), 2, "SPECIFIC",
            IspCategory::kTele);
  EXPECT_EQ(db.lookup(IpAddress(200, 1, 1, 1))->asn, 1u);
  EXPECT_EQ(db.lookup(IpAddress(61, 129, 1, 1))->asn, 2u);
}

TEST(AsnDatabaseTest, FromRegistryCoversAllPrefixes) {
  IspRegistry reg = IspRegistry::standard_topology();
  AsnDatabase db = AsnDatabase::from_registry(reg);
  std::size_t expected = 0;
  for (const auto& isp : reg.all()) expected += isp.prefixes.size();
  EXPECT_EQ(db.prefix_count(), expected);
  for (const auto& isp : reg.all()) {
    for (const auto& p : isp.prefixes) {
      auto rec = db.lookup(IpAddress(p.network().value() + 1));
      ASSERT_TRUE(rec.has_value()) << p.to_string();
      EXPECT_EQ(rec->asn, isp.asn);
      EXPECT_EQ(rec->category, isp.category);
    }
  }
}

/// Property test: the trie agrees with a brute-force longest-prefix scan
/// over randomly generated prefix tables and random query addresses.
class AsnDbPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AsnDbPropertyTest, MatchesBruteForce) {
  sim::Rng rng(GetParam());
  struct Entry {
    Prefix prefix;
    std::uint32_t asn;
  };
  std::vector<Entry> entries;
  AsnDatabase db;
  for (int i = 0; i < 200; ++i) {
    const int len = static_cast<int>(rng.uniform_int(4, 28));
    const IpAddress net(static_cast<std::uint32_t>(rng.next_u64()));
    const Prefix p(net, len);
    const auto asn = static_cast<std::uint32_t>(i + 1);
    // Skip duplicates of the same masked prefix to keep the oracle simple.
    bool dup = false;
    for (const auto& e : entries)
      if (e.prefix == p) dup = true;
    if (dup) continue;
    entries.push_back({p, asn});
    db.insert(p, asn, "X", IspCategory::kOtherCn);
  }

  auto brute = [&](IpAddress ip) -> std::optional<std::uint32_t> {
    int best_len = -1;
    std::uint32_t best_asn = 0;
    for (const auto& e : entries) {
      if (e.prefix.contains(ip) && e.prefix.length() > best_len) {
        best_len = e.prefix.length();
        best_asn = e.asn;
      }
    }
    if (best_len < 0) return std::nullopt;
    return best_asn;
  };

  for (int q = 0; q < 2000; ++q) {
    const IpAddress ip(static_cast<std::uint32_t>(rng.next_u64()));
    auto expected = brute(ip);
    auto actual = db.lookup(ip);
    ASSERT_EQ(actual.has_value(), expected.has_value()) << ip.to_string();
    if (expected) {
      EXPECT_EQ(actual->asn, *expected) << ip.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsnDbPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace ppsim::net
