// Timeout-path and fault-recovery coverage for the client: sustained 100%
// loss must drive the connect / request / idle timers, and the peer must
// shed dead neighbors and recover once the network heals — never wedge.
// Also covers the two resilience behaviours added for fault injection:
// tracker-query backoff while a region is dark, and emergency neighbor
// re-acquisition after total isolation.

#include <gtest/gtest.h>

#include <algorithm>

#include "net/impairment.h"
#include "proto_testutil.h"

namespace ppsim::proto {
namespace {

using testing::MiniWorld;

/// Browns out (100% uplink loss) each victim — their packets stop arriving
/// anywhere, but they stay attached, so only timeouts (never
/// dead-destination handling) can detect the silence.
void brown_out(net::ImpairmentOverlay& overlay,
               const std::vector<net::IpAddress>& victims) {
  for (const auto& ip : victims) overlay.set_uplink_loss(ip, 1.0);
}

TEST(ProtoResilienceTest, RequestTimeoutsFireUnderTotalLoss) {
  // The overlay must outlive the world: peers consult it on the way out
  // (leave() sends goodbyes through the network during ~MiniWorld).
  net::ImpairmentOverlay overlay;
  MiniWorld world;
  world.network().set_impairments(&overlay);

  Peer& viewer = world.add_peer(net::IspCategory::kTele);
  viewer.join();
  world.simulator().run_until(sim::Time::minutes(2));
  ASSERT_TRUE(viewer.playback_started());
  const auto before = viewer.counters();

  // The viewer's own uplink dies: buffer-map announcements still arrive
  // (the live edge keeps advancing, so requests keep being issued), but
  // every request dies on the wire and no reply can ever come back.
  world.simulator().schedule(sim::Time::zero(), [&] {
    brown_out(overlay, {viewer.ip()});
  });
  world.simulator().run_until(sim::Time::minutes(3));

  // The request timer reclaimed the dead in-flight slots — repeatedly, or
  // the pipeline caps would have wedged the scheduler after one window.
  EXPECT_GT(viewer.counters().request_timeouts,
            before.request_timeouts + 10);
  EXPECT_TRUE(viewer.alive());

  // The network heals: the viewer must resume downloading and playing.
  world.simulator().schedule(sim::Time::zero(), [&] { overlay.clear_all(); });
  const auto at_heal = viewer.counters();
  world.simulator().run_until(sim::Time::minutes(6));
  EXPECT_GT(viewer.counters().bytes_downloaded, at_heal.bytes_downloaded);
  EXPECT_GT(viewer.counters().chunks_played, at_heal.chunks_played)
      << "viewer wedged after the loss window lifted";
}

TEST(ProtoResilienceTest, IdleTimeoutShedsSilentNeighborAndRecovers) {
  // The overlay must outlive the world: peers consult it on the way out
  // (leave() sends goodbyes through the network during ~MiniWorld).
  net::ImpairmentOverlay overlay;
  MiniWorld world;
  world.network().set_impairments(&overlay);

  PeerConfig config;
  config.neighbor_idle_timeout = sim::Time::seconds(30);
  Peer& viewer = world.add_peer(net::IspCategory::kTele, config);
  Peer& silent = world.add_peer(net::IspCategory::kTele, config);
  viewer.join();
  silent.join();
  world.simulator().run_until(sim::Time::minutes(2));
  auto ips = viewer.neighbor_ips();
  ASSERT_TRUE(std::find(ips.begin(), ips.end(), silent.ip()) != ips.end());

  // The neighbor's uplink dies completely — it stays attached (so packets
  // to it are NOT dead-destination drops) but can no longer say anything.
  world.simulator().schedule(sim::Time::zero(), [&] {
    overlay.set_uplink_loss(silent.ip(), 1.0);
  });
  world.simulator().run_until(sim::Time::minutes(4));

  ips = viewer.neighbor_ips();
  EXPECT_TRUE(std::find(ips.begin(), ips.end(), silent.ip()) == ips.end())
      << "silent neighbor was never aged out by the idle timer";
  EXPECT_GT(viewer.counters().neighbors_dropped_idle, 0u);
  // Shedding, not wedging: playback went on against the source.
  EXPECT_TRUE(viewer.alive());
  EXPECT_GT(viewer.counters().continuity(), 0.6);
}

TEST(ProtoResilienceTest, ConnectTimeoutsCountedUnderTotalLoss) {
  // The overlay must outlive the world: peers consult it on the way out
  // (leave() sends goodbyes through the network during ~MiniWorld).
  net::ImpairmentOverlay overlay;
  MiniWorld world;
  world.network().set_impairments(&overlay);

  PeerConfig config;
  config.neighbor_idle_timeout = sim::Time::seconds(30);
  Peer& viewer = world.add_peer(net::IspCategory::kTele, config);
  std::vector<Peer*> crowd;
  for (int i = 0; i < 4; ++i)
    crowd.push_back(&world.add_peer(net::IspCategory::kTele, config));
  viewer.join();
  for (auto* p : crowd) p->join();
  world.simulator().run_until(sim::Time::minutes(2));
  const auto before = viewer.counters();

  // The whole crowd goes silent. Idle timers clear the neighborhood, and
  // every top-up attempt toward the (still-remembered) candidates must run
  // into the connect timeout — no ConnectReply can arrive.
  world.simulator().schedule(sim::Time::zero(), [&] {
    std::vector<net::IpAddress> victims;
    for (auto* p : crowd) victims.push_back(p->ip());
    brown_out(overlay, victims);
  });
  world.simulator().run_until(sim::Time::minutes(5));

  EXPECT_GT(viewer.counters().connects_timed_out, before.connects_timed_out)
      << "no connect attempt timed out despite a fully silent candidate set";
  EXPECT_TRUE(viewer.alive());

  // Heal: the viewer rebuilds a neighborhood from the same candidates.
  world.simulator().schedule(sim::Time::zero(), [&] { overlay.clear_all(); });
  world.simulator().run_until(sim::Time::minutes(8));
  bool reconnected = false;
  for (auto* p : crowd) {
    const auto ips = viewer.neighbor_ips();
    if (std::find(ips.begin(), ips.end(), p->ip()) != ips.end())
      reconnected = true;
  }
  EXPECT_TRUE(reconnected) << "viewer never re-acquired a crowd neighbor";
}

TEST(ProtoResilienceTest, TrackerBackoffWhileRegionDark) {
  // A dark tracker region should be probed at a decaying cadence, not
  // hammered every 30 s forever. Compare total query traffic with the
  // backoff enabled vs disabled over the same dark period.
  const auto queries_sent = [](int backoff_after) {
    MiniWorld world;
    world.tracker().set_dark(true);
    PeerConfig config;
    config.tracker_backoff_after = backoff_after;
    Peer& viewer = world.add_peer(net::IspCategory::kTele, config);
    viewer.join();
    world.simulator().run_until(sim::Time::minutes(30));
    EXPECT_TRUE(viewer.alive());
    return viewer.counters().tracker_queries_sent;
  };
  const auto with_backoff = queries_sent(3);
  const auto without_backoff = queries_sent(1 << 20);  // threshold never hit
  EXPECT_LT(with_backoff, without_backoff / 2)
      << "backoff saved less than half the query traffic";
  EXPECT_GT(with_backoff, 2u) << "backoff must keep probing, not go mute";
}

TEST(ProtoResilienceTest, TrackerReplyResetsBackoff) {
  MiniWorld world;
  world.tracker().set_dark(true);
  Peer& viewer = world.add_peer(net::IspCategory::kTele);
  viewer.join();
  world.simulator().run_until(sim::Time::minutes(10));
  EXPECT_GE(viewer.tracker_silent_rounds(),
            viewer.config().tracker_backoff_after);

  world.tracker().set_dark(false);
  world.simulator().run_until(sim::Time::minutes(25));
  EXPECT_EQ(viewer.tracker_silent_rounds(), 0)
      << "a tracker reply did not reset the silent-round streak";
}

TEST(ProtoResilienceTest, EmergencyReacquireAfterBlackout) {
  // A regional blackout empties an established peer's neighborhood; once
  // it lifts, the emergency path (all-group tracker sweep + connect burst
  // from the pool) must rebuild it faster than doing nothing would.
  // The overlay must outlive the world: peers consult it on the way out
  // (leave() sends goodbyes through the network during ~MiniWorld).
  net::ImpairmentOverlay overlay;
  MiniWorld world;
  world.network().set_impairments(&overlay);

  PeerConfig config;
  config.neighbor_idle_timeout = sim::Time::seconds(30);
  Peer& viewer = world.add_peer(net::IspCategory::kTele, config);
  std::vector<Peer*> crowd;
  for (int i = 0; i < 4; ++i)
    crowd.push_back(&world.add_peer(net::IspCategory::kTele, config));
  viewer.join();
  for (auto* p : crowd) p->join();
  world.simulator().run_until(sim::Time::minutes(2));
  ASSERT_GT(viewer.neighbor_count(), 0u);

  // Total TELE blackout for 2 minutes: nobody in the category can send.
  world.simulator().schedule(sim::Time::zero(), [&] {
    overlay.set_category_blocked(net::IspCategory::kTele, true);
  });
  world.simulator().schedule(sim::Time::minutes(2), [&] {
    overlay.set_category_blocked(net::IspCategory::kTele, false);
  });
  world.simulator().run_until(sim::Time::minutes(8));

  EXPECT_GE(viewer.emergency_reacquires(), 1u)
      << "total isolation never triggered the emergency re-acquisition";
  EXPECT_GT(viewer.neighbor_count(), 0u)
      << "neighborhood was not rebuilt after the blackout lifted";
  EXPECT_TRUE(viewer.alive());
}

}  // namespace
}  // namespace ppsim::proto
