#include "net/isp.h"

#include <gtest/gtest.h>

#include <set>

namespace ppsim::net {
namespace {

TEST(IspCategoryTest, Names) {
  EXPECT_EQ(to_string(IspCategory::kTele), "TELE");
  EXPECT_EQ(to_string(IspCategory::kCnc), "CNC");
  EXPECT_EQ(to_string(IspCategory::kCer), "CER");
  EXPECT_EQ(to_string(IspCategory::kOtherCn), "OtherCN");
  EXPECT_EQ(to_string(IspCategory::kForeign), "Foreign");
}

TEST(ResponseGroupTest, PaperGrouping) {
  // Figures 7-10 collapse CER/OtherCN/Foreign into OTHER.
  EXPECT_EQ(response_group(IspCategory::kTele), ResponseGroup::kTele);
  EXPECT_EQ(response_group(IspCategory::kCnc), ResponseGroup::kCnc);
  EXPECT_EQ(response_group(IspCategory::kCer), ResponseGroup::kOther);
  EXPECT_EQ(response_group(IspCategory::kOtherCn), ResponseGroup::kOther);
  EXPECT_EQ(response_group(IspCategory::kForeign), ResponseGroup::kOther);
}

TEST(IspRegistryTest, AddAndLookup) {
  IspRegistry reg;
  IspId id = reg.add("TEST-AS", 65000, IspCategory::kCnc);
  reg.add_prefix(id, Prefix(IpAddress(10, 0, 0, 0), 8));
  const IspInfo& info = reg.info(id);
  EXPECT_EQ(info.as_name, "TEST-AS");
  EXPECT_EQ(info.asn, 65000u);
  EXPECT_EQ(info.category, IspCategory::kCnc);
  ASSERT_EQ(info.prefixes.size(), 1u);
  EXPECT_EQ(info.prefixes[0].length(), 8);
}

TEST(IspRegistryTest, InCategory) {
  IspRegistry reg;
  reg.add("A", 1, IspCategory::kForeign);
  reg.add("B", 2, IspCategory::kTele);
  reg.add("C", 3, IspCategory::kForeign);
  auto foreign = reg.in_category(IspCategory::kForeign);
  EXPECT_EQ(foreign.size(), 2u);
  EXPECT_EQ(reg.in_category(IspCategory::kCer).size(), 0u);
}

TEST(StandardTopologyTest, EveryCategoryPopulated) {
  IspRegistry reg = IspRegistry::standard_topology();
  for (auto c : kAllIspCategories) {
    EXPECT_FALSE(reg.in_category(c).empty())
        << "no ISP in category " << to_string(c);
  }
}

TEST(StandardTopologyTest, EveryIspHasPrefixes) {
  IspRegistry reg = IspRegistry::standard_topology();
  for (const auto& isp : reg.all()) {
    EXPECT_FALSE(isp.prefixes.empty()) << isp.as_name;
    EXPECT_GT(isp.asn, 0u);
  }
}

TEST(StandardTopologyTest, PrefixesDisjoint) {
  IspRegistry reg = IspRegistry::standard_topology();
  std::vector<Prefix> all;
  for (const auto& isp : reg.all())
    for (const auto& p : isp.prefixes) all.push_back(p);
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      // Overlap iff one contains the other's network address.
      EXPECT_FALSE(all[i].contains(all[j].network()) ||
                   all[j].contains(all[i].network()))
          << all[i].to_string() << " overlaps " << all[j].to_string();
    }
  }
}

TEST(StandardTopologyTest, MultipleForeignAses) {
  // The FOREIGN bucket aggregates several distinct ASes (different
  // countries), which matters for foreign<->foreign latencies.
  IspRegistry reg = IspRegistry::standard_topology();
  EXPECT_GE(reg.in_category(IspCategory::kForeign).size(), 3u);
}

TEST(StandardTopologyTest, UniqueAsns) {
  IspRegistry reg = IspRegistry::standard_topology();
  std::set<std::uint32_t> asns;
  for (const auto& isp : reg.all()) asns.insert(isp.asn);
  EXPECT_EQ(asns.size(), reg.size());
}

}  // namespace
}  // namespace ppsim::net
