#include "net/prefix_alloc.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace ppsim::net {
namespace {

TEST(PrefixAllocatorTest, AddressesComeFromIspPrefixes) {
  IspRegistry reg = IspRegistry::standard_topology();
  PrefixAllocator alloc(reg);
  for (const auto& isp : reg.all()) {
    for (int i = 0; i < 50; ++i) {
      IpAddress ip = alloc.allocate(isp.id);
      bool inside = false;
      for (const auto& p : isp.prefixes) inside |= p.contains(ip);
      EXPECT_TRUE(inside) << ip.to_string() << " not in " << isp.as_name;
    }
    EXPECT_EQ(alloc.allocated(isp.id), 50u);
  }
}

TEST(PrefixAllocatorTest, AddressesUnique) {
  IspRegistry reg = IspRegistry::standard_topology();
  PrefixAllocator alloc(reg);
  std::unordered_set<IpAddress> seen;
  for (const auto& isp : reg.all()) {
    for (int i = 0; i < 2000; ++i) {
      IpAddress ip = alloc.allocate(isp.id);
      EXPECT_TRUE(seen.insert(ip).second) << "duplicate " << ip.to_string();
    }
  }
}

TEST(PrefixAllocatorTest, SkipsNetworkAndBroadcastStyleEndings) {
  IspRegistry reg = IspRegistry::standard_topology();
  PrefixAllocator alloc(reg);
  for (int i = 0; i < 3000; ++i) {
    IpAddress ip = alloc.allocate(reg.all()[0].id);
    const auto last = ip.value() & 0xFF;
    EXPECT_NE(last, 0u);
    EXPECT_NE(last, 255u);
  }
}

TEST(PrefixAllocatorTest, SpreadsAcrossSlash24s) {
  // Consecutive subscribers should not all land in one /24.
  IspRegistry reg = IspRegistry::standard_topology();
  PrefixAllocator alloc(reg);
  std::unordered_set<std::uint32_t> slash24s;
  for (int i = 0; i < 100; ++i)
    slash24s.insert(alloc.allocate(reg.all()[0].id).value() >> 8);
  EXPECT_GT(slash24s.size(), 20u);
}

TEST(PrefixAllocatorTest, ThrowsWithoutPrefixes) {
  IspRegistry reg;
  IspId empty = reg.add("EMPTY", 1, IspCategory::kForeign);
  PrefixAllocator alloc(reg);
  EXPECT_THROW(alloc.allocate(empty), std::runtime_error);
}

TEST(PrefixAllocatorTest, ThrowsOnExhaustion) {
  IspRegistry reg;
  IspId tiny = reg.add("TINY", 1, IspCategory::kForeign);
  reg.add_prefix(tiny, Prefix(IpAddress(10, 0, 0, 0), 28));  // 16 addresses
  PrefixAllocator alloc(reg);
  EXPECT_THROW(
      {
        for (int i = 0; i < 100; ++i) alloc.allocate(tiny);
      },
      std::runtime_error);
}

}  // namespace
}  // namespace ppsim::net
