#include "net/bandwidth.h"

#include <gtest/gtest.h>

#include "sim/rng.h"
#include "sim/time.h"

namespace ppsim::net {
namespace {

TEST(LinkQueueTest, SerializationDelay) {
  LinkQueue q(8e6, sim::Time::seconds(2));  // 8 Mbps
  auto adm = q.enqueue(sim::Time::zero(), 1000);  // 8000 bits => 1 ms
  ASSERT_TRUE(adm.admitted);
  EXPECT_EQ(adm.departure, sim::Time::millis(1));
}

TEST(LinkQueueTest, BackToBackPacketsQueue) {
  LinkQueue q(8e6, sim::Time::seconds(2));
  auto a = q.enqueue(sim::Time::zero(), 1000);
  auto b = q.enqueue(sim::Time::zero(), 1000);
  ASSERT_TRUE(a.admitted && b.admitted);
  EXPECT_EQ(b.departure, sim::Time::millis(2));  // waits for the first
}

TEST(LinkQueueTest, IdleGapResetsQueue) {
  LinkQueue q(8e6, sim::Time::seconds(2));
  q.enqueue(sim::Time::zero(), 1000);
  auto b = q.enqueue(sim::Time::seconds(10), 1000);
  ASSERT_TRUE(b.admitted);
  EXPECT_EQ(b.departure, sim::Time::seconds(10) + sim::Time::millis(1));
}

TEST(LinkQueueTest, BacklogReflectsPending) {
  LinkQueue q(8e6, sim::Time::seconds(2));
  EXPECT_EQ(q.backlog(sim::Time::zero()), sim::Time::zero());
  q.enqueue(sim::Time::zero(), 10000);  // 10 ms
  EXPECT_EQ(q.backlog(sim::Time::zero()), sim::Time::millis(10));
  EXPECT_EQ(q.backlog(sim::Time::millis(4)), sim::Time::millis(6));
  EXPECT_EQ(q.backlog(sim::Time::millis(100)), sim::Time::zero());
}

TEST(LinkQueueTest, OverflowDrops) {
  LinkQueue q(8e3, sim::Time::millis(100));  // 1 byte/ms, tiny backlog cap
  auto a = q.enqueue(sim::Time::zero(), 200);  // 200 ms > cap after adding
  ASSERT_TRUE(a.admitted);                     // first packet always fits
  auto b = q.enqueue(sim::Time::zero(), 10);
  EXPECT_FALSE(b.admitted);  // would wait 200 ms > 100 ms cap
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.bytes_sent(), 200u);
}

TEST(LinkQueueTest, LoadGrowsDelay) {
  // The mechanism behind the paper's popular-channel latency inflation:
  // more concurrent transfers => later departures.
  LinkQueue q(1e6, sim::Time::seconds(10));
  sim::Time last = sim::Time::zero();
  for (int i = 0; i < 10; ++i) {
    auto adm = q.enqueue(sim::Time::zero(), 1250);  // 10 ms each
    ASSERT_TRUE(adm.admitted);
    EXPECT_GT(adm.departure, last);
    last = adm.departure;
  }
  EXPECT_EQ(last, sim::Time::millis(100));
}

class AccessProfileTest : public ::testing::TestWithParam<AccessClass> {};

TEST_P(AccessProfileTest, SampledWithinClassBounds) {
  sim::Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    AccessProfile p = AccessProfile::sample(GetParam(), rng);
    EXPECT_GT(p.down_bps, 0.0);
    EXPECT_GT(p.up_bps, 0.0);
    switch (GetParam()) {
      case AccessClass::kAdsl:
        EXPECT_LE(p.up_bps, 768e3);
        EXPECT_LT(p.up_bps, p.down_bps);  // asymmetric
        break;
      case AccessClass::kCable:
        EXPECT_LE(p.up_bps, 2e6);
        break;
      case AccessClass::kCampus:
        EXPECT_GE(p.up_bps, 10e6);
        break;
      case AccessClass::kDatacenter:
        EXPECT_GE(p.up_bps, 1e8);
        break;
      case AccessClass::kFiber:
        EXPECT_GE(p.up_bps, 2e6);
        EXPECT_LE(p.up_bps, 6e6);
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Classes, AccessProfileTest,
                         ::testing::Values(AccessClass::kAdsl,
                                           AccessClass::kCable,
                                           AccessClass::kCampus,
                                           AccessClass::kDatacenter,
                                           AccessClass::kFiber));

TEST(AccessLinkTest, IndependentDirections) {
  AccessProfile p{8e6, 1e6};
  AccessLink link(p, sim::Time::seconds(2));
  auto up = link.up().enqueue(sim::Time::zero(), 1000);    // 8 ms at 1 Mbps
  auto down = link.down().enqueue(sim::Time::zero(), 1000);  // 1 ms at 8 Mbps
  ASSERT_TRUE(up.admitted && down.admitted);
  EXPECT_EQ(up.departure, sim::Time::millis(8));
  EXPECT_EQ(down.departure, sim::Time::millis(1));
}

}  // namespace
}  // namespace ppsim::net
