#include "net/transport.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/isp.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace ppsim::net {
namespace {

using TestNetwork = Network<std::string>;

LatencyModel lossless_latency() {
  LatencyConfig cfg;
  cfg.intra_isp_loss = 0;
  cfg.china_cross_loss = 0;
  cfg.transoceanic_loss = 0;
  cfg.foreign_cross_loss = 0;
  cfg.packet_sigma = 0;   // deterministic propagation
  cfg.pair_sigma = 0;
  return LatencyModel(cfg);
}

class TransportTest : public ::testing::Test {
 protected:
  TransportTest() : network_(simulator_, lossless_latency(), sim::Rng(1)) {}

  void attach(IpAddress ip, IspCategory cat, std::uint32_t isp,
              std::vector<std::string>* inbox) {
    network_.attach(ip, IspId{isp}, cat, AccessProfile{100e6, 100e6},
                    [inbox](const TestNetwork::Delivery& d) {
                      if (inbox) inbox->push_back(d.payload);
                    });
  }

  sim::Simulator simulator_;
  TestNetwork network_;
};

TEST_F(TransportTest, DeliversPayload) {
  std::vector<std::string> inbox;
  attach(IpAddress(1, 0, 0, 1), IspCategory::kTele, 0, nullptr);
  attach(IpAddress(1, 0, 0, 2), IspCategory::kTele, 0, &inbox);
  EXPECT_TRUE(network_.send(IpAddress(1, 0, 0, 1), IpAddress(1, 0, 0, 2),
                            "hello", 100));
  simulator_.run();
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0], "hello");
  EXPECT_EQ(network_.stats().packets_delivered, 1u);
}

TEST_F(TransportTest, DeliveryCarriesMetadata) {
  TestNetwork::Delivery got;
  network_.attach(IpAddress(9), IspId{0}, IspCategory::kTele,
                  AccessProfile{100e6, 100e6},
                  [&](const TestNetwork::Delivery& d) { got = d; });
  attach(IpAddress(8), IspCategory::kCnc, 1, nullptr);
  network_.send(IpAddress(8), IpAddress(9), "x", 321);
  simulator_.run();
  EXPECT_EQ(got.from, IpAddress(8));
  EXPECT_EQ(got.to, IpAddress(9));
  EXPECT_EQ(got.wire_bytes, 321u);
  EXPECT_EQ(got.sent_at, sim::Time::zero());
}

TEST_F(TransportTest, UnknownSenderFails) {
  attach(IpAddress(2), IspCategory::kTele, 0, nullptr);
  EXPECT_FALSE(network_.send(IpAddress(1), IpAddress(2), "x", 10));
}

TEST_F(TransportTest, UnknownDestinationDropsSilently) {
  attach(IpAddress(1), IspCategory::kTele, 0, nullptr);
  EXPECT_TRUE(network_.send(IpAddress(1), IpAddress(2), "x", 10));
  simulator_.run();
  EXPECT_EQ(network_.stats().dead_destination_drops, 1u);
  EXPECT_EQ(network_.stats().packets_delivered, 0u);
}

TEST_F(TransportTest, DetachedDestinationDoesNotReceive) {
  std::vector<std::string> inbox;
  attach(IpAddress(1), IspCategory::kTele, 0, nullptr);
  attach(IpAddress(2), IspCategory::kTele, 0, &inbox);
  network_.send(IpAddress(1), IpAddress(2), "x", 10);
  network_.detach(IpAddress(2));  // leaves while the packet is in flight
  simulator_.run();
  EXPECT_TRUE(inbox.empty());
  EXPECT_EQ(network_.stats().dead_destination_drops, 1u);
}

TEST_F(TransportTest, ReattachedHostIsNewIncarnation) {
  // A packet addressed to the old incarnation must not reach the new one.
  std::vector<std::string> old_inbox, new_inbox;
  attach(IpAddress(1), IspCategory::kTele, 0, nullptr);
  attach(IpAddress(2), IspCategory::kTele, 0, &old_inbox);
  network_.send(IpAddress(1), IpAddress(2), "x", 10);
  network_.detach(IpAddress(2));
  attach(IpAddress(2), IspCategory::kTele, 0, &new_inbox);
  simulator_.run();
  EXPECT_TRUE(old_inbox.empty());
  EXPECT_TRUE(new_inbox.empty());
}

TEST_F(TransportTest, PropagationDelayMatchesModel) {
  attach(IpAddress(1), IspCategory::kTele, 0, nullptr);
  sim::Time arrival;
  network_.attach(IpAddress(2), IspId{1}, IspCategory::kCnc,
                  AccessProfile{100e6, 100e6},
                  [&](const TestNetwork::Delivery&) {
                    arrival = simulator_.now();
                  });
  network_.send(IpAddress(1), IpAddress(2), "x", 1000);
  simulator_.run();
  // one-way = rtt/2 (140 ms / 2 = 70 ms) + serialization on both links
  // (1000 B at 100 Mbps = 80 us each).
  const sim::Time expected =
      sim::Time::millis(70) + sim::Time::micros(80) + sim::Time::micros(80);
  EXPECT_EQ(arrival, expected);
}

TEST_F(TransportTest, TrueRttExposedForValidation) {
  attach(IpAddress(1), IspCategory::kTele, 0, nullptr);
  attach(IpAddress(2), IspCategory::kCnc, 1, nullptr);
  EXPECT_EQ(network_.true_rtt(IpAddress(1), IpAddress(2)),
            sim::Time::millis(140));
}

TEST_F(TransportTest, TapSeesBothDirections) {
  attach(IpAddress(1), IspCategory::kTele, 0, nullptr);
  attach(IpAddress(2), IspCategory::kTele, 0, nullptr);
  struct Seen {
    Direction dir;
    IpAddress local, remote;
  };
  std::vector<Seen> taps;
  network_.set_tap(IpAddress(1), [&](Direction dir, IpAddress local,
                                     IpAddress remote, const std::string&,
                                     std::uint64_t) {
    taps.push_back({dir, local, remote});
  });
  network_.send(IpAddress(1), IpAddress(2), "out", 10);
  network_.send(IpAddress(2), IpAddress(1), "in", 10);
  simulator_.run();
  ASSERT_EQ(taps.size(), 2u);
  EXPECT_EQ(taps[0].dir, Direction::kOutgoing);
  EXPECT_EQ(taps[0].local, IpAddress(1));
  EXPECT_EQ(taps[0].remote, IpAddress(2));
  EXPECT_EQ(taps[1].dir, Direction::kIncoming);
  EXPECT_EQ(taps[1].local, IpAddress(1));
  EXPECT_EQ(taps[1].remote, IpAddress(2));
}

TEST_F(TransportTest, GlobalTapSeesDeliveries) {
  attach(IpAddress(1), IspCategory::kTele, 0, nullptr);
  attach(IpAddress(2), IspCategory::kCnc, 1, nullptr);
  int count = 0;
  network_.set_global_tap([&](const Endpoint& from, const Endpoint& to,
                              const std::string&, std::uint64_t) {
    EXPECT_EQ(from.category, IspCategory::kTele);
    EXPECT_EQ(to.category, IspCategory::kCnc);
    ++count;
  });
  network_.send(IpAddress(1), IpAddress(2), "x", 10);
  simulator_.run();
  EXPECT_EQ(count, 1);
}

TEST_F(TransportTest, UplinkSerializationOrdersDepartures) {
  // Slow uplink: second packet arrives later than twice the serialization.
  network_.attach(IpAddress(1), IspId{0}, IspCategory::kTele,
                  AccessProfile{100e6, 1e6}, nullptr);
  std::vector<sim::Time> arrivals;
  network_.attach(IpAddress(2), IspId{0}, IspCategory::kTele,
                  AccessProfile{100e6, 100e6},
                  [&](const TestNetwork::Delivery&) {
                    arrivals.push_back(simulator_.now());
                  });
  network_.send(IpAddress(1), IpAddress(2), "a", 12500);  // 100 ms at 1 Mbps
  network_.send(IpAddress(1), IpAddress(2), "b", 12500);
  simulator_.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_GE(arrivals[1] - arrivals[0], sim::Time::millis(100));
}

TEST_F(TransportTest, LossyPathDropsSome) {
  LatencyConfig cfg;
  cfg.transoceanic_loss = 0.5;
  TestNetwork lossy(simulator_, LatencyModel(cfg), sim::Rng(3));
  int received = 0;
  lossy.attach(IpAddress(1), IspId{0}, IspCategory::kTele,
               AccessProfile{100e6, 100e6}, nullptr);
  lossy.attach(IpAddress(2), IspId{9}, IspCategory::kForeign,
               AccessProfile{100e6, 100e6},
               [&](const TestNetwork::Delivery&) { ++received; });
  for (int i = 0; i < 500; ++i)
    lossy.send(IpAddress(1), IpAddress(2), "x", 10);
  simulator_.run();
  EXPECT_GT(received, 150);
  EXPECT_LT(received, 350);
  EXPECT_EQ(lossy.stats().core_drops + static_cast<std::uint64_t>(received),
            500u);
}

TEST_F(TransportTest, HostCountTracksAttachDetach) {
  EXPECT_EQ(network_.host_count(), 0u);
  attach(IpAddress(1), IspCategory::kTele, 0, nullptr);
  attach(IpAddress(2), IspCategory::kTele, 0, nullptr);
  EXPECT_EQ(network_.host_count(), 2u);
  EXPECT_TRUE(network_.attached(IpAddress(1)));
  network_.detach(IpAddress(1));
  EXPECT_FALSE(network_.attached(IpAddress(1)));
  EXPECT_EQ(network_.host_count(), 1u);
}

}  // namespace
}  // namespace ppsim::net
