#include "core/experiment.h"

#include <gtest/gtest.h>

#include "core/report.h"
#include "workload/scenario.h"

namespace ppsim::core {
namespace {

/// Small, fast configuration used by the integration tests.
ExperimentConfig small_config(std::uint64_t seed) {
  ExperimentConfig config;
  config.scenario = workload::popular_channel();
  config.scenario.viewers = 80;
  config.scenario.duration = sim::Time::minutes(6);
  config.scenario.arrival_ramp = sim::Time::seconds(45);
  config.scenario.seed = seed;
  config.probes = {tele_probe()};
  config.probe_join_at = sim::Time::seconds(60);
  return config;
}

TEST(ExperimentTest, ProducesProbeResults) {
  auto result = run_experiment(small_config(3));
  ASSERT_EQ(result.probes.size(), 1u);
  const auto& probe = result.probes[0];
  EXPECT_EQ(probe.label, "TELE");
  EXPECT_EQ(probe.category, net::IspCategory::kTele);
  EXPECT_GT(probe.analysis.data_transmissions.total(), 100u);
  EXPECT_GT(probe.analysis.returned_addresses.total(), 50u);
  EXPECT_GT(probe.counters.chunks_played, 0u);
}

TEST(ExperimentTest, DeterministicForSeed) {
  auto r1 = run_experiment(small_config(11));
  auto r2 = run_experiment(small_config(11));
  EXPECT_EQ(r1.swarm.events_executed, r2.swarm.events_executed);
  EXPECT_EQ(r1.traffic.total(), r2.traffic.total());
  EXPECT_EQ(r1.probes[0].analysis.data_transmissions.total(),
            r2.probes[0].analysis.data_transmissions.total());
  EXPECT_EQ(r1.probes[0].analysis.data_bytes.total(),
            r2.probes[0].analysis.data_bytes.total());
  EXPECT_EQ(r1.probes[0].ip, r2.probes[0].ip);
}

TEST(ExperimentTest, SeedsChangeOutcome) {
  auto r1 = run_experiment(small_config(1));
  auto r2 = run_experiment(small_config(2));
  EXPECT_NE(r1.swarm.events_executed, r2.swarm.events_executed);
}

TEST(ExperimentTest, LocalityExceedsPopulationShare) {
  // The paper's headline: locality is an *emergent* amplification — the
  // probe downloads a larger same-ISP share than the audience mix alone
  // would explain.
  auto config = small_config(7);
  auto result = run_experiment(config);
  const double tele_share =
      config.scenario.mix[net::IspCategory::kTele];  // 0.58 of the audience
  const double locality =
      result.probes[0].analysis.byte_locality(net::IspCategory::kTele);
  EXPECT_GT(locality, tele_share + 0.10);
}

TEST(ExperimentTest, SwarmTrafficMatrixConsistent) {
  auto result = run_experiment(small_config(5));
  EXPECT_GT(result.traffic.total(), 0u);
  EXPECT_GE(result.traffic.total(), result.traffic.intra_isp());
  EXPECT_GT(result.traffic.locality(), 0.0);
  EXPECT_LE(result.traffic.locality(), 1.0);
}

TEST(ExperimentTest, ViewersAchievePlayback) {
  auto result = run_experiment(small_config(9));
  EXPECT_GT(result.swarm.avg_continuity, 0.7);
  EXPECT_GT(result.swarm.peers_spawned, 50u);
}

TEST(ExperimentTest, MultipleProbes) {
  auto config = small_config(13);
  config.probes = {tele_probe(), cnc_probe(), mason_probe()};
  auto result = run_experiment(config);
  ASSERT_EQ(result.probes.size(), 3u);
  EXPECT_EQ(result.probes[0].category, net::IspCategory::kTele);
  EXPECT_EQ(result.probes[1].category, net::IspCategory::kCnc);
  EXPECT_EQ(result.probes[2].category, net::IspCategory::kForeign);
  for (const auto& p : result.probes)
    EXPECT_GT(p.analysis.data_bytes.total(), 0u);
}

TEST(ExperimentTest, LatencyMechanismsProduceSwarmLocality) {
  // The ablation behind the paper's core claim: removing the latency-driven
  // mechanisms (connect-on-arrival racing + latency retention) must reduce
  // locality. Probe-side numbers are noisy at this tiny scale, so compare
  // swarm-wide ground truth summed over a few seeds.
  double pplive_acc = 0, norush_acc = 0;
  for (std::uint64_t seed : {21u, 22u, 25u}) {
    auto config = small_config(seed);
    pplive_acc += run_experiment(config).traffic.locality();
    config.strategy = baseline::Strategy::kNoRush;
    norush_acc += run_experiment(config).traffic.locality();
  }
  EXPECT_GT(pplive_acc, norush_acc);
}

TEST(ExperimentTest, IspBiasedOracleHighlyLocal) {
  auto config = small_config(23);
  config.strategy = baseline::Strategy::kIspBiased;
  auto result = run_experiment(config);
  EXPECT_GT(result.probes[0].analysis.byte_locality(net::IspCategory::kTele),
            0.6);
}

TEST(ExperimentTest, ProtocolCountersSane) {
  auto result = run_experiment(small_config(31));
  const auto& c = result.probes[0].counters;
  EXPECT_GT(c.tracker_queries_sent, 0u);
  EXPECT_GT(c.gossip_queries_sent, 0u);
  EXPECT_GT(c.connects_attempted, 0u);
  EXPECT_GE(c.connects_attempted,
            c.connects_accepted + c.connects_rejected);
  // The trace analyzer matches a subset of what the client actually saw.
  EXPECT_LE(result.probes[0].analysis.data_transmissions.total(),
            c.data_replies_received);
  EXPECT_GE(c.bytes_downloaded, result.probes[0].analysis.data_bytes.total() -
                                    c.duplicate_chunks * 11040);
}

TEST(TrafficMatrixTest, Accessors) {
  TrafficMatrix m;
  m.bytes[0][0] = 70;
  m.bytes[0][1] = 20;
  m.bytes[1][1] = 10;
  EXPECT_EQ(m.total(), 100u);
  EXPECT_EQ(m.intra_isp(), 80u);
  EXPECT_EQ(m.cross_isp(), 20u);
  EXPECT_DOUBLE_EQ(m.locality(), 0.8);
}

TEST(TrafficMatrixTest, EmptyLocality) {
  TrafficMatrix m;
  EXPECT_DOUBLE_EQ(m.locality(), 0.0);
}

TEST(ReportTest, PctFormat) {
  EXPECT_EQ(pct(0.873), "87.3%");
  EXPECT_EQ(pct(0.0), "0.0%");
  EXPECT_EQ(pct(1.0), "100.0%");
}

}  // namespace
}  // namespace ppsim::core
