#include "net/interconnect.h"

#include <gtest/gtest.h>

#include <string>

#include "net/transport.h"
#include "sim/simulator.h"

namespace ppsim::net {
namespace {

TEST(InterconnectFabricTest, DisabledAdmitsInstantly) {
  InterconnectFabric fabric(InterconnectConfig{});  // default_bps = 0
  auto adm = fabric.cross(IspCategory::kTele, IspCategory::kCnc,
                          sim::Time::seconds(3), 100000);
  EXPECT_TRUE(adm.admitted);
  EXPECT_EQ(adm.departure, sim::Time::seconds(3));
  EXPECT_EQ(fabric.crossings(), 0u);
}

TEST(InterconnectFabricTest, SameCategoryNeverQueues) {
  InterconnectConfig config;
  config.default_bps = 1e3;  // tiny
  InterconnectFabric fabric(config);
  auto adm = fabric.cross(IspCategory::kTele, IspCategory::kTele,
                          sim::Time::zero(), 1 << 20);
  EXPECT_TRUE(adm.admitted);
  EXPECT_EQ(adm.departure, sim::Time::zero());
  EXPECT_EQ(fabric.crossings(), 0u);
}

TEST(InterconnectFabricTest, CrossTrafficSerializes) {
  InterconnectConfig config;
  config.default_bps = 8e6;  // 1 kB/ms
  InterconnectFabric fabric(config);
  auto a = fabric.cross(IspCategory::kTele, IspCategory::kCnc,
                        sim::Time::zero(), 1000);
  auto b = fabric.cross(IspCategory::kTele, IspCategory::kCnc,
                        sim::Time::zero(), 1000);
  ASSERT_TRUE(a.admitted && b.admitted);
  EXPECT_EQ(a.departure, sim::Time::millis(1));
  EXPECT_EQ(b.departure, sim::Time::millis(2));  // shared pipe
  EXPECT_EQ(fabric.crossings(), 2u);
  EXPECT_EQ(fabric.pair_bytes(IspCategory::kTele, IspCategory::kCnc), 2000u);
}

TEST(InterconnectFabricTest, PairsAreIndependent) {
  InterconnectConfig config;
  config.default_bps = 8e6;
  InterconnectFabric fabric(config);
  fabric.cross(IspCategory::kTele, IspCategory::kCnc, sim::Time::zero(),
               100000);
  auto other = fabric.cross(IspCategory::kTele, IspCategory::kForeign,
                            sim::Time::zero(), 1000);
  EXPECT_EQ(other.departure, sim::Time::millis(1));  // no crosstalk
}

TEST(InterconnectFabricTest, SymmetricPairKey) {
  InterconnectConfig config;
  config.default_bps = 8e6;
  InterconnectFabric fabric(config);
  fabric.cross(IspCategory::kTele, IspCategory::kCnc, sim::Time::zero(), 500);
  fabric.cross(IspCategory::kCnc, IspCategory::kTele, sim::Time::zero(), 500);
  // Both directions share the same pipe.
  EXPECT_EQ(fabric.pair_bytes(IspCategory::kCnc, IspCategory::kTele), 1000u);
}

TEST(InterconnectFabricTest, OverridesApply) {
  InterconnectConfig config;
  config.default_bps = 8e6;
  config.overrides.push_back({IspCategory::kTele, IspCategory::kCnc, 0});
  InterconnectFabric fabric(config);
  // The overridden pair is unlimited...
  auto a = fabric.cross(IspCategory::kTele, IspCategory::kCnc,
                        sim::Time::zero(), 1 << 20);
  EXPECT_EQ(a.departure, sim::Time::zero());
  // ...but other pairs still queue.
  fabric.cross(IspCategory::kTele, IspCategory::kForeign, sim::Time::zero(),
               100000);
  auto b = fabric.cross(IspCategory::kTele, IspCategory::kForeign,
                        sim::Time::zero(), 1000);
  EXPECT_GT(b.departure, sim::Time::millis(99));
}

TEST(InterconnectFabricTest, OverflowDrops) {
  InterconnectConfig config;
  config.default_bps = 8e3;
  config.max_backlog = sim::Time::millis(50);
  InterconnectFabric fabric(config);
  EXPECT_TRUE(fabric
                  .cross(IspCategory::kTele, IspCategory::kCnc,
                         sim::Time::zero(), 1000)  // 1 s of backlog
                  .admitted);
  auto b = fabric.cross(IspCategory::kTele, IspCategory::kCnc,
                        sim::Time::zero(), 10);
  EXPECT_FALSE(b.admitted);
  EXPECT_EQ(fabric.drops(), 1u);
}

TEST(InterconnectTransportTest, CrossTrafficDelayedIntraUnaffected) {
  sim::Simulator simulator;
  LatencyConfig lc;
  lc.packet_sigma = 0;
  lc.pair_sigma = 0;
  lc.intra_isp_loss = 0;
  lc.china_cross_loss = 0;
  Network<std::string> network(simulator, LatencyModel(lc), sim::Rng(1));
  InterconnectConfig ic;
  ic.default_bps = 80e3;  // 10 bytes/ms: 1000-byte packet = 100 ms
  network.set_interconnects(ic);

  network.attach(IpAddress(1), IspId{0}, IspCategory::kTele,
                 AccessProfile{1e9, 1e9}, nullptr);
  sim::Time cross_arrival, intra_arrival;
  network.attach(IpAddress(2), IspId{1}, IspCategory::kCnc,
                 AccessProfile{1e9, 1e9},
                 [&](const Network<std::string>::Delivery&) {
                   cross_arrival = simulator.now();
                 });
  network.attach(IpAddress(3), IspId{0}, IspCategory::kTele,
                 AccessProfile{1e9, 1e9},
                 [&](const Network<std::string>::Delivery&) {
                   intra_arrival = simulator.now();
                 });
  network.send(IpAddress(1), IpAddress(2), "cross", 1000);
  network.send(IpAddress(1), IpAddress(3), "intra", 1000);
  simulator.run();
  // Cross: 100 ms pipe + 70 ms propagation (140/2); intra: 9 ms + tiny.
  EXPECT_GT(cross_arrival, sim::Time::millis(165));
  EXPECT_LT(intra_arrival, sim::Time::millis(15));
  ASSERT_NE(network.interconnects(), nullptr);
  EXPECT_EQ(network.interconnects()->crossings(), 1u);
}

}  // namespace
}  // namespace ppsim::net
