#include "capture/trace.h"

#include <gtest/gtest.h>

#include "proto_testutil.h"

namespace ppsim::capture {
namespace {

using proto::testing::MiniWorld;

TEST(SnifferTest, RecordsBothDirectionsWithTimestamps) {
  MiniWorld world;
  auto identity = world.identity(net::IspCategory::kTele);
  world.network().attach(identity.ip, identity.isp, identity.category,
                         identity.profile, nullptr);
  auto trace = attach_sniffer(world.network(), identity.ip);

  proto::Message query{proto::TrackerQuery{1}};
  world.network().send(identity.ip, world.tracker().ip(), query,
                       proto::wire_size(query));
  world.simulator().run_until(sim::Time::seconds(1));

  // Outgoing query + incoming reply, timestamps non-decreasing.
  ASSERT_GE(trace->size(), 2u);
  EXPECT_EQ((*trace)[0].direction, net::Direction::kOutgoing);
  EXPECT_EQ((*trace)[0].remote, world.tracker().ip());
  EXPECT_EQ(proto::message_name((*trace)[0].payload), "TrackerQuery");
  bool saw_reply = false;
  sim::Time last = sim::Time::zero();
  for (const auto& rec : *trace) {
    EXPECT_GE(rec.time, last);
    last = rec.time;
    EXPECT_EQ(rec.local, identity.ip);
    if (rec.direction == net::Direction::kIncoming &&
        proto::message_name(rec.payload) == "TrackerReply")
      saw_reply = true;
  }
  EXPECT_TRUE(saw_reply);
}

TEST(SnifferTest, TraceSurvivesHostDetach) {
  MiniWorld world;
  auto identity = world.identity(net::IspCategory::kTele);
  world.network().attach(identity.ip, identity.isp, identity.category,
                         identity.profile, nullptr);
  auto trace = attach_sniffer(world.network(), identity.ip);
  proto::Message query{proto::TrackerQuery{1}};
  world.network().send(identity.ip, world.tracker().ip(), query,
                       proto::wire_size(query));
  world.simulator().run_until(sim::Time::seconds(1));
  const std::size_t count = trace->size();
  ASSERT_GT(count, 0u);
  world.network().detach(identity.ip);
  // The shared_ptr keeps the records alive after the host is gone.
  EXPECT_EQ(trace->size(), count);
  EXPECT_EQ((*trace)[0].local, identity.ip);
}

TEST(SnifferTest, WireBytesMatchMessageSize) {
  MiniWorld world;
  auto identity = world.identity(net::IspCategory::kCnc);
  world.network().attach(identity.ip, identity.isp, identity.category,
                         identity.profile, nullptr);
  auto trace = attach_sniffer(world.network(), identity.ip);
  proto::Message query{proto::DataQuery{1, 42}};
  const auto bytes = proto::wire_size(query);
  world.network().send(identity.ip, world.source().ip(), query, bytes);
  world.simulator().run_until(sim::Time::millis(100));
  ASSERT_FALSE(trace->empty());
  EXPECT_EQ(trace->front().wire_bytes, bytes);
}

}  // namespace
}  // namespace ppsim::capture
