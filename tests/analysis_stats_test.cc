#include "analysis/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ppsim::analysis {
namespace {

TEST(StatsTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{4.0}), 4.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{1, 2, 3, 4}), 2.5);
}

TEST(StatsTest, SumBasics) {
  EXPECT_DOUBLE_EQ(sum(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(sum(std::vector<double>{1.5, 2.5}), 4.0);
}

TEST(StatsTest, StddevKnownValue) {
  // Sample stddev of {2,4,4,4,5,5,7,9} is ~2.138 (n-1 denominator).
  std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(stddev(xs), 2.1381, 1e-3);
}

TEST(StatsTest, StddevDegenerate) {
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{5.0}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{3, 3, 3}), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25);
  EXPECT_DOUBLE_EQ(median(xs), 25);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 17.5);
}

TEST(StatsTest, PercentileUnsortedInput) {
  std::vector<double> xs = {40, 10, 30, 20};
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> neg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(StatsTest, PearsonUncorrelated) {
  std::vector<double> xs = {1, 2, 3, 4};
  std::vector<double> ys = {1, -1, 1, -1};
  EXPECT_NEAR(pearson(xs, ys), 0.0, 0.5);
}

TEST(StatsTest, PearsonDegenerate) {
  std::vector<double> xs = {1, 1, 1};
  std::vector<double> ys = {1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);  // constant side => undefined => 0
  EXPECT_DOUBLE_EQ(pearson(std::vector<double>{1.0}, std::vector<double>{2.0}),
                   0.0);
}

TEST(StatsTest, LogTransformClampsNonPositive) {
  auto out = log_transform(std::vector<double>{std::exp(1.0), 0.0, -5.0}, 1.0);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_NEAR(out[0], 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(out[1], 0.0);  // clamped to log(1)
  EXPECT_DOUBLE_EQ(out[2], 0.0);
}

}  // namespace
}  // namespace ppsim::analysis
