#include "proto/peer.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "proto_testutil.h"

namespace ppsim::proto {
namespace {

using testing::MiniWorld;

TEST(PeerTest, JoinReachesPlayback) {
  MiniWorld world;
  Peer& peer = world.add_peer(net::IspCategory::kTele);
  peer.join();
  world.simulator().run_until(sim::Time::minutes(3));
  EXPECT_TRUE(peer.playback_started());
  EXPECT_GT(peer.neighbor_count(), 0u);
  EXPECT_GT(peer.counters().chunks_played, 0u);
  EXPECT_GT(peer.counters().bytes_downloaded, 0u);
  // A lone peer downloads everything from the source; continuity should be
  // essentially perfect once started.
  EXPECT_GT(peer.counters().continuity(), 0.9);
}

TEST(PeerTest, TwoPeersExchangeData) {
  MiniWorld world;
  Peer& a = world.add_peer(net::IspCategory::kTele);
  Peer& b = world.add_peer(net::IspCategory::kTele);
  a.join();
  world.simulator().schedule(sim::Time::seconds(30), [&] { b.join(); });
  world.simulator().run_until(sim::Time::minutes(4));
  EXPECT_TRUE(b.playback_started());
  // b discovered a (via tracker or source referral) and vice versa.
  auto b_neighbors = b.neighbor_ips();
  EXPECT_TRUE(std::find(b_neighbors.begin(), b_neighbors.end(), a.ip()) !=
              b_neighbors.end());
  // At least some of the swarm's data flows peer-to-peer.
  EXPECT_GT(a.counters().data_requests_served +
                b.counters().data_requests_served,
            0u);
}

TEST(PeerTest, GossipRunsAtConfiguredPeriod) {
  MiniWorld world;
  PeerConfig config;
  Peer& a = world.add_peer(net::IspCategory::kTele, config);
  Peer& b = world.add_peer(net::IspCategory::kTele, config);
  a.join();
  b.join();
  world.simulator().run_until(sim::Time::minutes(5));
  // Every 20 s with fanout 2 but only ~2 neighbors: expect roughly
  // (300 s / 20 s) * min(fanout, neighbors) probes, plus the per-connect
  // immediate queries. Just check the order of magnitude and that replies
  // flow.
  EXPECT_GE(a.counters().gossip_queries_sent, 10u);
  EXPECT_GT(a.counters().gossip_replies_received, 5u);
  EXPECT_GT(b.counters().gossip_queries_answered, 5u);
}

TEST(PeerTest, TrackerQueryDecaysWhenHealthy) {
  // Paper: once playback is satisfactory, tracker queries drop to one per
  // five minutes. With healthy_neighbors=1 a single source connection makes
  // the peer "healthy" almost immediately.
  MiniWorld world;
  PeerConfig config;
  config.healthy_neighbors = 1;
  Peer& peer = world.add_peer(net::IspCategory::kTele, config);
  peer.join();
  world.simulator().run_until(sim::Time::minutes(21));
  // Initial sweep (1 tracker in MiniWorld) + ~4 steady 5-minute queries.
  EXPECT_LE(peer.counters().tracker_queries_sent, 8u);
  EXPECT_GE(peer.counters().tracker_queries_sent, 3u);
}

TEST(PeerTest, UnhealthyPeerQueriesTrackersFrequently) {
  MiniWorld world;
  PeerConfig config;
  config.healthy_neighbors = 50;  // unattainable in this tiny world
  Peer& peer = world.add_peer(net::IspCategory::kTele, config);
  peer.join();
  world.simulator().run_until(sim::Time::minutes(10));
  // Every 30 s for 10 minutes => ~20 rounds.
  EXPECT_GE(peer.counters().tracker_queries_sent, 15u);
}

TEST(PeerTest, PeerListCappedAtSixty) {
  MiniWorld world;
  PeerConfig config;
  config.max_neighbors = 100;
  std::vector<Peer*> peers;
  for (int i = 0; i < 70; ++i)
    peers.push_back(&world.add_peer(net::IspCategory::kTele, config));
  for (auto* p : peers) p->join();
  world.simulator().run_until(sim::Time::minutes(3));
  // No referral list on the wire may exceed 60 entries: verified via a tap
  // recording every PeerListReply/Query.
  bool saw_list = false;
  bool violated = false;
  world.network().set_global_tap(
      [&](const net::Endpoint&, const net::Endpoint&, const Message& m,
          std::uint64_t) {
        if (const auto* r = std::get_if<PeerListReply>(&m)) {
          saw_list = true;
          if (r->peers.size() > 60) violated = true;
        }
        if (const auto* q = std::get_if<PeerListQuery>(&m)) {
          if (q->my_peers.size() > 60) violated = true;
        }
      });
  world.simulator().run_until(sim::Time::minutes(5));
  EXPECT_TRUE(saw_list);
  EXPECT_FALSE(violated);
}

TEST(PeerTest, LeaveSendsGoodbyeAndDetaches) {
  MiniWorld world;
  Peer& a = world.add_peer(net::IspCategory::kTele);
  Peer& b = world.add_peer(net::IspCategory::kTele);
  a.join();
  b.join();
  world.simulator().run_until(sim::Time::minutes(2));
  ASSERT_GT(b.neighbor_count(), 0u);
  const auto b_neighbors_before = b.neighbor_ips();
  ASSERT_TRUE(std::find(b_neighbors_before.begin(), b_neighbors_before.end(),
                        a.ip()) != b_neighbors_before.end());

  a.leave();
  EXPECT_FALSE(a.alive());
  EXPECT_FALSE(world.network().attached(a.ip()));
  world.simulator().run_until(sim::Time::minutes(2) + sim::Time::seconds(5));
  const auto b_neighbors_after = b.neighbor_ips();
  EXPECT_TRUE(std::find(b_neighbors_after.begin(), b_neighbors_after.end(),
                        a.ip()) == b_neighbors_after.end());
}

TEST(PeerTest, LeaveIsIdempotent) {
  MiniWorld world;
  Peer& a = world.add_peer(net::IspCategory::kTele);
  a.join();
  world.simulator().run_until(sim::Time::seconds(30));
  a.leave();
  a.leave();
  EXPECT_FALSE(a.alive());
}

TEST(PeerTest, SimulationContinuesAfterLeave) {
  MiniWorld world;
  Peer& a = world.add_peer(net::IspCategory::kTele);
  Peer& b = world.add_peer(net::IspCategory::kTele);
  a.join();
  b.join();
  world.simulator().run_until(sim::Time::minutes(1));
  a.leave();
  world.simulator().run_until(sim::Time::minutes(4));
  // b keeps streaming from the source after a departs.
  EXPECT_GT(b.counters().continuity(), 0.8);
}

TEST(PeerTest, NeighborLatencyEstimatesTracked) {
  MiniWorld world;
  Peer& a = world.add_peer(net::IspCategory::kTele);
  a.join();
  world.simulator().run_until(sim::Time::minutes(2));
  ASSERT_GT(a.neighbor_count(), 0u);
  for (const auto& ip : a.neighbor_ips()) {
    EXPECT_GT(a.neighbor_latency_estimate(ip), 0.0);
    EXPECT_LT(a.neighbor_latency_estimate(ip), 5.0);
  }
  EXPECT_LT(a.neighbor_latency_estimate(net::IpAddress(1, 2, 3, 4)), 0.0);
}

TEST(PeerTest, DuplicateDataCounted) {
  // Duplicates can arise from timeout-retries; ensure the counter exists
  // and stays small relative to the download volume.
  MiniWorld world;
  Peer& a = world.add_peer(net::IspCategory::kTele);
  a.join();
  world.simulator().run_until(sim::Time::minutes(3));
  EXPECT_LE(a.counters().duplicate_chunks,
            a.counters().data_replies_received / 4 + 5);
}

TEST(PeerTest, CandidatePoolBounded) {
  MiniWorld world;
  PeerConfig config;
  config.candidate_pool_limit = 10;
  Peer& a = world.add_peer(net::IspCategory::kTele, config);
  for (int i = 0; i < 30; ++i)
    world.add_peer(net::IspCategory::kTele).join();
  a.join();
  world.simulator().run_until(sim::Time::minutes(3));
  EXPECT_LE(a.candidate_pool_size(), 10u);
}

TEST(PeerTest, PlaybackLagsLiveEdge) {
  MiniWorld world;
  Peer& a = world.add_peer(net::IspCategory::kTele);
  a.join();
  world.simulator().run_until(sim::Time::minutes(3));
  ASSERT_TRUE(a.playback_started());
  // Playback never runs ahead of the peer's knowledge of the edge...
  EXPECT_LE(a.playback_position(), a.live_edge_estimate() + 1);
  // ...and the true live edge (known only to the source) stays ahead.
  EXPECT_GT(world.source().chunks_produced(), a.playback_position());
}

TEST(PeerTest, WindowNeverRequestsBeyondLiveEdge) {
  MiniWorld world;
  Peer& a = world.add_peer(net::IspCategory::kTele);
  ChunkSeq max_requested = 0;
  world.network().set_global_tap(
      [&](const net::Endpoint&, const net::Endpoint&, const Message& m,
          std::uint64_t) {
        if (const auto* q = std::get_if<DataQuery>(&m))
          max_requested = std::max(max_requested, q->chunk);
      });
  a.join();
  world.simulator().run_until(sim::Time::minutes(2));
  EXPECT_LE(max_requested, world.source().chunks_produced());
}

}  // namespace
}  // namespace ppsim::proto
