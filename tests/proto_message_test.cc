#include "proto/message.h"

#include <gtest/gtest.h>

namespace ppsim::proto {
namespace {

TEST(MessageTest, WireSizeIncludesHeader) {
  // Every message carries at least an IP+UDP header (28 bytes).
  EXPECT_GE(wire_size(Message{ChannelListQuery{}}), 28u);
  EXPECT_GE(wire_size(Message{Goodbye{1}}), 28u);
}

TEST(MessageTest, ListSizeGrowsWithEntries) {
  PeerListReply small{1, {net::IpAddress(1), net::IpAddress(2)}};
  PeerListReply big{1, std::vector<net::IpAddress>(60, net::IpAddress(1))};
  EXPECT_LT(wire_size(Message{small}), wire_size(Message{big}));
  // 6 bytes per listed address (IP + port), like a compact tracker reply.
  EXPECT_EQ(wire_size(Message{big}) - wire_size(Message{small}), 58u * 6u);
}

TEST(MessageTest, TrackerReplySized) {
  TrackerReply reply{1, std::vector<net::IpAddress>(10, net::IpAddress(1))};
  EXPECT_EQ(wire_size(Message{reply}), 28u + 12u + 60u);
}

TEST(MessageTest, DataReplyDominatedByPayload) {
  DataReply r{1, 7, 8, 11040};
  const auto size = wire_size(Message{r});
  EXPECT_GT(size, 11040u);
  // 8 sub-piece packets => 7 extra IP+UDP headers beyond the first.
  EXPECT_EQ(size, 28u + 11040u + 12u + 7u * 28u);
}

TEST(MessageTest, DataReplySingleSubpieceNoExtraHeaders) {
  DataReply r{1, 7, 1, 1380};
  EXPECT_EQ(wire_size(Message{r}), 28u + 1380u + 12u);
}

TEST(MessageTest, BufferMapSizedByBits) {
  BufferMapAnnounce small{1, BufferMap{0, std::vector<bool>(8, true)}};
  BufferMapAnnounce big{1, BufferMap{0, std::vector<bool>(64, true)}};
  EXPECT_EQ(wire_size(Message{big}) - wire_size(Message{small}), 7u);
}

TEST(MessageTest, Names) {
  EXPECT_EQ(message_name(Message{DataQuery{}}), "DataQuery");
  EXPECT_EQ(message_name(Message{DataReply{}}), "DataReply");
  EXPECT_EQ(message_name(Message{PeerListQuery{}}), "PeerListQuery");
  EXPECT_EQ(message_name(Message{PeerListReply{}}), "PeerListReply");
  EXPECT_EQ(message_name(Message{TrackerQuery{}}), "TrackerQuery");
  EXPECT_EQ(message_name(Message{TrackerReply{}}), "TrackerReply");
  EXPECT_EQ(message_name(Message{ConnectQuery{}}), "ConnectQuery");
  EXPECT_EQ(message_name(Message{ConnectReply{}}), "ConnectReply");
  EXPECT_EQ(message_name(Message{BufferMapAnnounce{}}), "BufferMapAnnounce");
  EXPECT_EQ(message_name(Message{Goodbye{}}), "Goodbye");
  EXPECT_EQ(message_name(Message{JoinQuery{}}), "JoinQuery");
  EXPECT_EQ(message_name(Message{JoinReply{}}), "JoinReply");
  EXPECT_EQ(message_name(Message{ChannelListQuery{}}), "ChannelListQuery");
  EXPECT_EQ(message_name(Message{ChannelListReply{}}), "ChannelListReply");
}

TEST(ChannelSpecTest, ChunkGeometry) {
  ChannelSpec spec{1, "c", 400e3, 1380, 8};
  EXPECT_EQ(spec.chunk_bytes(), 11040u);
  // 11040 B * 8 bit / 400 kbps = 220.8 ms of stream per chunk.
  EXPECT_NEAR(spec.chunk_duration().as_seconds(), 0.2208, 1e-6);
}

TEST(ChannelSpecTest, HalfSubpieces) {
  // The paper mentions 690-byte sub-pieces as the alternative framing.
  ChannelSpec spec{1, "c", 400e3, 690, 16};
  EXPECT_EQ(spec.chunk_bytes(), 11040u);
  EXPECT_NEAR(spec.chunk_duration().as_seconds(), 0.2208, 1e-6);
}

}  // namespace
}  // namespace ppsim::proto
