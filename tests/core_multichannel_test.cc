#include <gtest/gtest.h>

#include "core/experiment.h"
#include "workload/scenario.h"

namespace ppsim::core {
namespace {

MultiChannelConfig two_channel_config(std::uint64_t seed) {
  MultiChannelConfig config;
  auto popular = workload::popular_channel();
  popular.viewers = 70;
  auto unpopular = workload::unpopular_channel();
  unpopular.viewers = 40;
  config.channels.push_back(ChannelPlan{popular, {tele_probe()}});
  config.channels.push_back(ChannelPlan{unpopular, {tele_probe()}});
  config.duration = sim::Time::minutes(6);
  config.seed = seed;
  return config;
}

TEST(MultiChannelTest, BothChannelsServeTheirProbes) {
  auto result = run_multi_channel(two_channel_config(5));
  ASSERT_EQ(result.probes.size(), 2u);
  EXPECT_EQ(result.probes[0].channel, workload::popular_channel().channel.id);
  EXPECT_EQ(result.probes[1].channel,
            workload::unpopular_channel().channel.id);
  for (const auto& probe : result.probes) {
    EXPECT_GT(probe.analysis.data_bytes.total(), 0u)
        << "probe on channel " << probe.channel << " got no data";
    EXPECT_GT(probe.counters.continuity(), 0.5);
  }
}

TEST(MultiChannelTest, SessionsTaggedByChannel) {
  auto result = run_multi_channel(two_channel_config(6));
  std::uint64_t ch1 = 0, ch2 = 0;
  for (const auto& s : result.sessions) {
    if (s.channel == 1) ++ch1;
    if (s.channel == 2) ++ch2;
  }
  EXPECT_GE(ch1, 70u);
  EXPECT_GE(ch2, 40u);
  EXPECT_EQ(ch1 + ch2, result.sessions.size());
}

TEST(MultiChannelTest, SingleChannelMatchesRunExperiment) {
  // The multi-channel runner with one channel must be bit-identical to the
  // single-channel entry point.
  ExperimentConfig single;
  single.scenario = workload::popular_channel();
  single.scenario.viewers = 60;
  single.scenario.duration = sim::Time::minutes(5);
  single.scenario.seed = 11;
  single.probes = {tele_probe()};

  MultiChannelConfig multi;
  multi.channels.push_back(ChannelPlan{single.scenario, single.probes});
  multi.duration = single.scenario.duration;
  multi.seed = single.scenario.seed;

  auto a = run_experiment(single);
  auto b = run_multi_channel(multi);
  EXPECT_EQ(a.swarm.events_executed, b.swarm.events_executed);
  EXPECT_EQ(a.traffic.total(), b.traffic.total());
  EXPECT_EQ(a.probes[0].analysis.data_bytes.total(),
            b.probes[0].analysis.data_bytes.total());
  EXPECT_EQ(a.probes[0].ip, b.probes[0].ip);
}

TEST(MultiChannelTest, SurfingMovesViewersBetweenChannels) {
  auto config = two_channel_config(7);
  config.surf_probability = 1.0;  // every departure surfs
  // Short sessions so surfing actually happens within the run.
  for (auto& ch : config.channels)
    ch.scenario.mean_session = sim::Time::minutes(2);
  auto result = run_multi_channel(config);

  // Replacement viewers spawned on the *other* channel: channel-2 sessions
  // exceed its initial audience only if surfers arrived from channel 1.
  std::uint64_t ch1_sessions = 0, ch2_sessions = 0;
  for (const auto& s : result.sessions) {
    if (s.channel == 1) ++ch1_sessions;
    if (s.channel == 2) ++ch2_sessions;
  }
  EXPECT_GT(result.swarm.departures, 10u);
  // With surf=1.0 and asymmetric audiences (70 vs 40), channel 2 gains
  // far more arrivals than its own departures can explain.
  EXPECT_GT(ch2_sessions, 45u);
  (void)ch1_sessions;
}

TEST(MultiChannelTest, ChannelsShareTrackersWithoutCrosstalk) {
  auto result = run_multi_channel(two_channel_config(9));
  // The probe on the unpopular channel must have received only peers of
  // its own (much smaller) swarm: its unique listed IPs are bounded by
  // that channel's population, not the union.
  const auto& unpopular_probe = result.probes[1];
  EXPECT_LT(unpopular_probe.analysis.unique_listed_ips, 70u);
  EXPECT_GT(unpopular_probe.analysis.unique_listed_ips, 5u);
}

TEST(MultiChannelTest, DeterministicForSeed) {
  auto r1 = run_multi_channel(two_channel_config(42));
  auto r2 = run_multi_channel(two_channel_config(42));
  EXPECT_EQ(r1.swarm.events_executed, r2.swarm.events_executed);
  EXPECT_EQ(r1.traffic.total(), r2.traffic.total());
}

}  // namespace
}  // namespace ppsim::core
