#include <gtest/gtest.h>

#include "capture/analyzer.h"

namespace ppsim::capture {
namespace {

TraceAnalysis make_analysis(int scale) {
  TraceAnalysis a;
  a.returned_addresses.add(net::IspCategory::kTele,
                           static_cast<std::uint64_t>(10 * scale));
  a.unique_listed_ips = static_cast<std::uint64_t>(5 * scale);
  a.lists_from_peers = static_cast<std::uint64_t>(scale);
  a.lists_from_trackers = 1;
  a.list_requests_unanswered = 2;

  ListSourceRow row;
  row.replier_category = net::IspCategory::kCnc;
  row.replier_is_tracker = false;
  row.listed.add(net::IspCategory::kCnc, static_cast<std::uint64_t>(scale));
  a.list_sources.push_back(row);

  a.data_transmissions.add(net::IspCategory::kTele,
                           static_cast<std::uint64_t>(100 * scale));
  a.data_bytes.add(net::IspCategory::kTele,
                   static_cast<std::uint64_t>(1000 * scale));

  ResponseSample s;
  s.request_time = sim::Time::seconds(scale);
  s.response_seconds = 0.5;
  s.group = net::ResponseGroup::kTele;
  a.list_responses.push_back(s);
  a.data_responses.push_back(s);

  PeerActivity p;
  p.ip = net::IpAddress(static_cast<std::uint32_t>(scale));
  p.category = net::IspCategory::kTele;
  p.data_requests_matched = static_cast<std::uint64_t>(scale);
  p.bytes_contributed = static_cast<std::uint64_t>(scale * 10);
  p.min_response_seconds = 0.1;
  a.peers.push_back(p);
  a.unique_data_peers.add(p.category);
  return a;
}

TEST(MergeTest, CountsAdd) {
  TraceAnalysis dst = make_analysis(1);
  merge_into(dst, make_analysis(3));
  EXPECT_EQ(dst.returned_addresses.get(net::IspCategory::kTele), 40u);
  EXPECT_EQ(dst.unique_listed_ips, 20u);
  EXPECT_EQ(dst.lists_from_peers, 4u);
  EXPECT_EQ(dst.lists_from_trackers, 2u);
  EXPECT_EQ(dst.list_requests_unanswered, 4u);
  EXPECT_EQ(dst.data_transmissions.get(net::IspCategory::kTele), 400u);
  EXPECT_EQ(dst.data_bytes.get(net::IspCategory::kTele), 4000u);
  EXPECT_EQ(dst.unique_data_peers.total(), 2u);
}

TEST(MergeTest, ListSourceRowsCombineByKey) {
  TraceAnalysis dst = make_analysis(1);
  merge_into(dst, make_analysis(2));
  ASSERT_EQ(dst.list_sources.size(), 1u);
  EXPECT_EQ(dst.list_sources[0].listed.get(net::IspCategory::kCnc), 3u);

  // A row with a different key stays separate.
  TraceAnalysis other = make_analysis(1);
  other.list_sources[0].replier_is_tracker = true;
  merge_into(dst, other);
  EXPECT_EQ(dst.list_sources.size(), 2u);
}

TEST(MergeTest, SamplesConcatenateSorted) {
  TraceAnalysis dst = make_analysis(5);
  merge_into(dst, make_analysis(2));
  ASSERT_EQ(dst.list_responses.size(), 2u);
  EXPECT_LE(dst.list_responses[0].request_time,
            dst.list_responses[1].request_time);
  EXPECT_EQ(dst.list_responses[0].request_time, sim::Time::seconds(2));
}

TEST(MergeTest, PeersResortedByRequests) {
  TraceAnalysis dst = make_analysis(2);
  merge_into(dst, make_analysis(7));
  ASSERT_EQ(dst.peers.size(), 2u);
  EXPECT_EQ(dst.peers[0].data_requests_matched, 7u);
  EXPECT_EQ(dst.peers[1].data_requests_matched, 2u);
}

TEST(MergeTest, MergeWithEmpty) {
  TraceAnalysis dst = make_analysis(4);
  merge_into(dst, TraceAnalysis{});
  EXPECT_EQ(dst.returned_addresses.total(), 40u);
  TraceAnalysis empty;
  merge_into(empty, make_analysis(4));
  EXPECT_EQ(empty.returned_addresses.total(), 40u);
  EXPECT_EQ(empty.peers.size(), 1u);
}

TEST(MergeTest, LocalityStableUnderSelfMerge) {
  TraceAnalysis dst = make_analysis(3);
  const double before = dst.byte_locality(net::IspCategory::kTele);
  merge_into(dst, make_analysis(3));
  EXPECT_DOUBLE_EQ(dst.byte_locality(net::IspCategory::kTele), before);
}

}  // namespace
}  // namespace ppsim::capture
