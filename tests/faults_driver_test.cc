// FaultDriver unit tests against a mock FaultHost: windows apply and
// revert on the simulator clock, victim sampling is deterministic in the
// driver seed, and boundaries are observable through metrics and traces.

#include "faults/driver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace ppsim::faults {
namespace {

class MockHost : public FaultHost {
 public:
  void set_tracker_dark(int group, bool dark) override {
    tracker_calls.push_back({group, dark});
  }
  void set_bootstrap_dark(bool dark) override {
    bootstrap_calls.push_back(dark);
  }
  std::vector<net::IpAddress> alive_audience_ips() const override {
    return alive;
  }
  void crash_peer(net::IpAddress ip) override { crashed.push_back(ip); }

  std::vector<net::IpAddress> alive;
  std::vector<std::pair<int, bool>> tracker_calls;
  std::vector<bool> bootstrap_calls;
  std::vector<net::IpAddress> crashed;
};

FaultWindow window(FaultKind kind, int start_s, int end_s) {
  FaultWindow w;
  w.kind = kind;
  w.start = sim::Time::seconds(start_s);
  w.end = sim::Time::seconds(end_s);
  return w;
}

TEST(FaultDriverTest, TrackerOutageAppliesAndReverts) {
  sim::Simulator simulator;
  net::ImpairmentOverlay overlay;
  MockHost host;
  FaultPlan plan;
  auto w = window(FaultKind::kTrackerOutage, 10, 20);
  w.tracker_group = 2;
  plan.windows.push_back(w);

  FaultDriver driver(simulator, overlay, host, plan);
  driver.arm();
  simulator.run_until(sim::Time::seconds(15));
  ASSERT_EQ(host.tracker_calls.size(), 1u);
  EXPECT_EQ(host.tracker_calls[0], (std::pair<int, bool>{2, true}));
  EXPECT_EQ(driver.windows_applied(), 1u);
  EXPECT_EQ(driver.windows_reverted(), 0u);

  simulator.run_until(sim::Time::seconds(30));
  ASSERT_EQ(host.tracker_calls.size(), 2u);
  EXPECT_EQ(host.tracker_calls[1], (std::pair<int, bool>{2, false}));
  EXPECT_EQ(driver.windows_reverted(), 1u);
}

TEST(FaultDriverTest, BootstrapOutage) {
  sim::Simulator simulator;
  net::ImpairmentOverlay overlay;
  MockHost host;
  FaultPlan plan;
  plan.windows.push_back(window(FaultKind::kBootstrapOutage, 5, 8));
  FaultDriver driver(simulator, overlay, host, plan);
  driver.arm();
  simulator.run();
  ASSERT_EQ(host.bootstrap_calls.size(), 2u);
  EXPECT_TRUE(host.bootstrap_calls[0]);
  EXPECT_FALSE(host.bootstrap_calls[1]);
}

TEST(FaultDriverTest, LinkDegradeMutatesOverlayForWindowOnly) {
  sim::Simulator simulator;
  net::ImpairmentOverlay overlay;
  MockHost host;
  FaultPlan plan;
  auto w = window(FaultKind::kLinkDegrade, 10, 20);
  w.category_a = net::IspCategory::kTele;
  w.category_b = net::IspCategory::kCnc;
  w.loss = 0.4;
  w.added_rtt = sim::Time::millis(100);
  plan.windows.push_back(w);
  FaultDriver driver(simulator, overlay, host, plan);
  driver.arm();

  simulator.run_until(sim::Time::seconds(15));
  ASSERT_TRUE(overlay.active());
  const auto* d = overlay.pair_degradation(net::IspCategory::kTele,
                                           net::IspCategory::kCnc);
  ASSERT_NE(d, nullptr);
  EXPECT_DOUBLE_EQ(d->extra_loss, 0.4);
  // The plan speaks round-trip; each direction carries half.
  EXPECT_EQ(d->extra_one_way, sim::Time::millis(50));

  simulator.run_until(sim::Time::seconds(25));
  EXPECT_FALSE(overlay.active());
}

TEST(FaultDriverTest, BlackoutBlocksCategoryForWindowOnly) {
  sim::Simulator simulator;
  net::ImpairmentOverlay overlay;
  MockHost host;
  FaultPlan plan;
  auto w = window(FaultKind::kBlackout, 10, 20);
  w.category_a = net::IspCategory::kCer;
  plan.windows.push_back(w);
  FaultDriver driver(simulator, overlay, host, plan);
  driver.arm();
  simulator.run_until(sim::Time::seconds(15));
  EXPECT_TRUE(overlay.category_blocked(net::IspCategory::kCer));
  simulator.run_until(sim::Time::seconds(25));
  EXPECT_FALSE(overlay.category_blocked(net::IspCategory::kCer));
}

TEST(FaultDriverTest, ChurnBurstCrashesSampledFraction) {
  sim::Simulator simulator;
  net::ImpairmentOverlay overlay;
  MockHost host;
  for (std::uint32_t i = 1; i <= 20; ++i) host.alive.push_back(net::IpAddress(i));
  FaultPlan plan;
  auto w = window(FaultKind::kChurnBurst, 10, 10);
  w.fraction = 0.25;
  plan.windows.push_back(w);
  FaultDriver::Options options;
  options.seed = 7;
  FaultDriver driver(simulator, overlay, host, plan, options);
  driver.arm();
  simulator.run();

  ASSERT_EQ(host.crashed.size(), 5u);  // ceil(0.25 * 20)
  EXPECT_EQ(driver.peers_crashed(), 5u);
  // Victims arrive in ascending-IP order (deterministic event sequence).
  EXPECT_TRUE(std::is_sorted(host.crashed.begin(), host.crashed.end()));
  // Instantaneous windows never revert.
  EXPECT_EQ(driver.windows_applied(), 1u);
  EXPECT_EQ(driver.windows_reverted(), 0u);
}

TEST(FaultDriverTest, VictimSamplingDeterministicInSeed) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator simulator;
    net::ImpairmentOverlay overlay;
    MockHost host;
    for (std::uint32_t i = 1; i <= 50; ++i)
      host.alive.push_back(net::IpAddress(i));
    FaultPlan plan;
    auto w = window(FaultKind::kChurnBurst, 1, 1);
    w.fraction = 0.2;
    plan.windows.push_back(w);
    FaultDriver::Options options;
    options.seed = seed;
    FaultDriver driver(simulator, overlay, host, plan, options);
    driver.arm();
    simulator.run();
    return host.crashed;
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(run(1), run(2));
}

TEST(FaultDriverTest, BrownoutImpairsSampledUplinksForWindowOnly) {
  sim::Simulator simulator;
  net::ImpairmentOverlay overlay;
  MockHost host;
  for (std::uint32_t i = 1; i <= 10; ++i) host.alive.push_back(net::IpAddress(i));
  FaultPlan plan;
  auto w = window(FaultKind::kUplinkBrownout, 10, 20);
  w.fraction = 0.3;
  w.loss = 0.6;
  plan.windows.push_back(w);
  FaultDriver driver(simulator, overlay, host, plan);
  driver.arm();

  simulator.run_until(sim::Time::seconds(15));
  ASSERT_TRUE(overlay.active());
  int impaired = 0;
  for (std::uint32_t i = 1; i <= 10; ++i)
    if (overlay.uplink_loss(net::IpAddress(i)) > 0) ++impaired;
  EXPECT_EQ(impaired, 3);  // ceil(0.3 * 10)

  simulator.run_until(sim::Time::seconds(25));
  EXPECT_FALSE(overlay.active());
  for (std::uint32_t i = 1; i <= 10; ++i)
    EXPECT_EQ(overlay.uplink_loss(net::IpAddress(i)), 0.0);
}

TEST(FaultDriverTest, OverlappingWindowsComposeAndUnwindIndependently) {
  sim::Simulator simulator;
  net::ImpairmentOverlay overlay;
  MockHost host;
  FaultPlan plan;
  auto a = window(FaultKind::kBlackout, 10, 40);
  a.category_a = net::IspCategory::kCnc;
  plan.windows.push_back(a);
  auto b = window(FaultKind::kLinkDegrade, 20, 30);
  b.loss = 0.5;
  plan.windows.push_back(b);
  FaultDriver driver(simulator, overlay, host, plan);
  driver.arm();

  simulator.run_until(sim::Time::seconds(25));
  EXPECT_TRUE(overlay.category_blocked(net::IspCategory::kCnc));
  EXPECT_NE(overlay.pair_degradation(net::IspCategory::kTele,
                                     net::IspCategory::kCnc),
            nullptr);
  simulator.run_until(sim::Time::seconds(35));  // degrade lifted, blackout on
  EXPECT_TRUE(overlay.category_blocked(net::IspCategory::kCnc));
  EXPECT_TRUE(overlay.active());
  simulator.run_until(sim::Time::seconds(45));
  EXPECT_FALSE(overlay.active());
}

TEST(FaultDriverTest, EmitsTraceEventsAndMetrics) {
  sim::Simulator simulator;
  net::ImpairmentOverlay overlay;
  MockHost host;
  host.alive.push_back(net::IpAddress(1));
  FaultPlan plan;
  auto w = window(FaultKind::kTrackerOutage, 10, 20);
  w.label = "dark";
  plan.windows.push_back(w);
  auto burst = window(FaultKind::kChurnBurst, 15, 15);
  burst.fraction = 1.0;
  plan.windows.push_back(burst);

  std::ostringstream trace_text;
  obs::NdjsonTraceSink sink(trace_text);
  obs::MetricsRegistry metrics;
  FaultDriver::Options options;
  options.trace = &sink;
  options.metrics = &metrics;
  FaultDriver driver(simulator, overlay, host, plan, options);
  driver.arm();
  simulator.run();

  const std::string text = trace_text.str();
  EXPECT_NE(text.find("fault_begin"), std::string::npos);
  EXPECT_NE(text.find("fault_end"), std::string::npos);
  EXPECT_NE(text.find("tracker_outage"), std::string::npos);
  EXPECT_NE(text.find("churn_burst"), std::string::npos);
  EXPECT_NE(text.find("dark"), std::string::npos);

  const auto* applied = metrics.find_counter("fault_windows_applied");
  ASSERT_NE(applied, nullptr);
  EXPECT_EQ(applied->value(), 2u);
  const auto* reverted = metrics.find_counter("fault_windows_reverted");
  ASSERT_NE(reverted, nullptr);
  EXPECT_EQ(reverted->value(), 1u);
  const auto* crashed = metrics.find_counter("fault_peers_crashed");
  ASSERT_NE(crashed, nullptr);
  EXPECT_EQ(crashed->value(), 1u);
}

TEST(FaultDriverTest, ArmIsIdempotent) {
  sim::Simulator simulator;
  net::ImpairmentOverlay overlay;
  MockHost host;
  FaultPlan plan;
  plan.windows.push_back(window(FaultKind::kBootstrapOutage, 1, 2));
  FaultDriver driver(simulator, overlay, host, plan);
  driver.arm();
  driver.arm();
  simulator.run();
  EXPECT_EQ(host.bootstrap_calls.size(), 2u);  // one apply + one revert
}

}  // namespace
}  // namespace ppsim::faults
