#include "core/cli.h"

#include <gtest/gtest.h>

#include <vector>

namespace ppsim::core {
namespace {

CliParseResult parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"ppsim"};
  argv.insert(argv.end(), args.begin(), args.end());
  return parse_cli(static_cast<int>(argv.size()), argv.data());
}

TEST(CliParseTest, Defaults) {
  auto r = parse({});
  ASSERT_FALSE(r.error.has_value());
  EXPECT_EQ(r.options.channel, "popular");
  EXPECT_EQ(r.options.minutes, 10);
  EXPECT_EQ(r.options.probes, std::vector<std::string>{"tele"});
  EXPECT_EQ(r.options.strategy, "pplive");
  EXPECT_FALSE(r.options.smart_trackers);
  EXPECT_EQ(r.options.reports, std::vector<std::string>{"data"});
}

TEST(CliParseTest, AllFlags) {
  auto r = parse({"--channel", "unpopular", "--viewers", "120", "--minutes",
                  "30", "--seed", "99", "--probe", "mason", "--probe", "cnc",
                  "--strategy", "isp-biased", "--smart-trackers", "--report",
                  "all", "--dump-trace", "/tmp/x"});
  ASSERT_FALSE(r.error.has_value()) << *r.error;
  EXPECT_EQ(r.options.channel, "unpopular");
  EXPECT_EQ(r.options.viewers, 120);
  EXPECT_EQ(r.options.minutes, 30);
  EXPECT_EQ(r.options.seed, 99u);
  EXPECT_EQ(r.options.probes,
            (std::vector<std::string>{"mason", "cnc"}));
  EXPECT_EQ(r.options.strategy, "isp-biased");
  EXPECT_TRUE(r.options.smart_trackers);
  EXPECT_EQ(r.options.reports, std::vector<std::string>{"all"});
  EXPECT_EQ(r.options.dump_trace, "/tmp/x");
}

TEST(CliParseTest, RepeatedProbesReplaceDefault) {
  auto r = parse({"--probe", "cer"});
  ASSERT_FALSE(r.error.has_value());
  EXPECT_EQ(r.options.probes, std::vector<std::string>{"cer"});
}

TEST(CliParseTest, Help) {
  auto r = parse({"--help"});
  ASSERT_FALSE(r.error.has_value());
  EXPECT_TRUE(r.options.help);
  EXPECT_FALSE(cli_usage().empty());
}

TEST(CliParseTest, UnknownOption) {
  auto r = parse({"--bogus"});
  ASSERT_TRUE(r.error.has_value());
  EXPECT_NE(r.error->find("--bogus"), std::string::npos);
}

TEST(CliParseTest, MissingValue) {
  EXPECT_TRUE(parse({"--viewers"}).error.has_value());
  EXPECT_TRUE(parse({"--probe"}).error.has_value());
}

TEST(CliParseTest, RejectsBadValues) {
  EXPECT_TRUE(parse({"--channel", "mid"}).error.has_value());
  EXPECT_TRUE(parse({"--probe", "mars"}).error.has_value());
  EXPECT_TRUE(parse({"--strategy", "magic"}).error.has_value());
  EXPECT_TRUE(parse({"--report", "everything"}).error.has_value());
  EXPECT_TRUE(parse({"--viewers", "-5"}).error.has_value());
  EXPECT_TRUE(parse({"--minutes", "0"}).error.has_value());
}

TEST(CliParseTest, HealthAndPostmortemFlags) {
  auto r = parse({"--health-rules", "default", "--postmortem-dir", "/tmp/pm",
                  "--bench-json", "/tmp/b.json"});
  ASSERT_FALSE(r.error.has_value()) << *r.error;
  EXPECT_EQ(r.options.health_rules, "default");
  EXPECT_EQ(r.options.postmortem_dir, "/tmp/pm");
  EXPECT_EQ(r.options.bench_json, "/tmp/b.json");
}

TEST(CliParseTest, HealthAndPostmortemFlagsNeedValues) {
  EXPECT_TRUE(parse({"--health-rules"}).error.has_value());
  EXPECT_TRUE(parse({"--postmortem-dir"}).error.has_value());
  EXPECT_TRUE(parse({"--bench-json"}).error.has_value());
}

TEST(CliParseTest, PostmortemDirRequiresTriggerSource) {
  // A recorder with nothing that can trigger it would never dump.
  auto r = parse({"--postmortem-dir", "/tmp/pm"});
  ASSERT_TRUE(r.error.has_value());
  EXPECT_NE(r.error->find("--postmortem-dir"), std::string::npos);
  EXPECT_FALSE(
      parse({"--postmortem-dir", "/tmp/pm", "--health-rules", "default"})
          .error.has_value());
  EXPECT_FALSE(
      parse({"--postmortem-dir", "/tmp/pm", "--fault-plan", "/tmp/plan"})
          .error.has_value());
}

TEST(CliBuildTest, DefaultHealthRulesResolve) {
  auto r = parse({"--health-rules", "default"});
  ASSERT_FALSE(r.error.has_value());
  auto built = build_config(r.options);
  ASSERT_FALSE(built.error.has_value());
  EXPECT_EQ(built.health_rules.rules.size(),
            obs::default_health_rules().rules.size());
}

TEST(CliBuildTest, MissingHealthRulesFileIsAnError) {
  auto r = parse({"--health-rules", "/nonexistent/rules.txt"});
  ASSERT_FALSE(r.error.has_value());
  auto built = build_config(r.options);
  ASSERT_TRUE(built.error.has_value());
  EXPECT_NE(built.error->find("health rules"), std::string::npos);
}

TEST(CliBuildTest, BuildsExperimentConfig) {
  auto r = parse({"--channel", "unpopular", "--viewers", "70", "--minutes",
                  "7", "--seed", "5", "--probe", "mason", "--strategy",
                  "tracker-only", "--smart-trackers"});
  ASSERT_FALSE(r.error.has_value());
  auto built = build_config(r.options);
  ASSERT_FALSE(built.error.has_value());
  EXPECT_EQ(built.config.scenario.viewers, 70);
  EXPECT_EQ(built.config.scenario.duration, sim::Time::minutes(7));
  EXPECT_EQ(built.config.scenario.seed, 5u);
  ASSERT_EQ(built.config.probes.size(), 1u);
  EXPECT_EQ(built.config.probes[0].isp, net::IspCategory::kForeign);
  EXPECT_EQ(built.config.strategy, baseline::Strategy::kTrackerOnly);
  EXPECT_TRUE(built.config.locality_aware_trackers);
  EXPECT_FALSE(built.config.keep_traces);
}

TEST(CliBuildTest, DumpTraceEnablesKeepTraces) {
  auto r = parse({"--dump-trace", "/tmp/t"});
  ASSERT_FALSE(r.error.has_value());
  auto built = build_config(r.options);
  ASSERT_FALSE(built.error.has_value());
  EXPECT_TRUE(built.config.keep_traces);
}

TEST(CliBuildTest, DefaultViewersComeFromScenario) {
  auto r = parse({"--channel", "popular"});
  auto built = build_config(r.options);
  ASSERT_FALSE(built.error.has_value());
  EXPECT_EQ(built.config.scenario.viewers,
            workload::popular_channel().viewers);
}

}  // namespace
}  // namespace ppsim::core
