// Protocol-invariant sweeps: run small worlds under varied configurations
// and assert wire-level invariants via the global tap (list caps, no
// self-references, payload sizing, channel isolation).

#include <gtest/gtest.h>

#include <algorithm>

#include "proto_testutil.h"

namespace ppsim::proto {
namespace {

using testing::MiniWorld;

struct SweepParam {
  int max_neighbors;
  int gossip_fanout;
  int max_list_size;
};

class ProtocolInvariants : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ProtocolInvariants, WireLevelInvariantsHold) {
  const SweepParam param = GetParam();
  MiniWorld world(static_cast<std::uint64_t>(param.max_neighbors * 131 +
                                             param.gossip_fanout));
  PeerConfig config;
  config.max_neighbors = param.max_neighbors;
  config.min_neighbors = std::min(config.min_neighbors, param.max_neighbors);
  config.gossip_fanout = param.gossip_fanout;
  config.max_list_size = param.max_list_size;

  std::vector<Peer*> peers;
  for (int i = 0; i < 14; ++i)
    peers.push_back(&world.add_peer(net::IspCategory::kTele, config));

  bool list_cap_ok = true;
  bool no_self_reference = true;
  bool data_sized_ok = true;
  const auto chunk_bytes = world.channel().chunk_bytes();
  const net::IpAddress source_ip = world.source().ip();
  world.network().set_global_tap(
      [&](const net::Endpoint& from, const net::Endpoint&, const Message& m,
          std::uint64_t) {
        if (const auto* r = std::get_if<PeerListReply>(&m)) {
          // The source keeps the protocol's default cap (60), not the
          // sweep's client-side cap.
          if (from.ip != source_ip &&
              r->peers.size() > static_cast<std::size_t>(param.max_list_size))
            list_cap_ok = false;
          if (std::find(r->peers.begin(), r->peers.end(), from.ip) !=
              r->peers.end())
            no_self_reference = false;
        }
        if (const auto* q = std::get_if<PeerListQuery>(&m)) {
          if (q->my_peers.size() >
              static_cast<std::size_t>(param.max_list_size))
            list_cap_ok = false;
          if (std::find(q->my_peers.begin(), q->my_peers.end(), from.ip) !=
              q->my_peers.end())
            no_self_reference = false;
        }
        if (const auto* d = std::get_if<DataReply>(&m)) {
          if (d->payload_bytes != chunk_bytes) data_sized_ok = false;
        }
      });

  for (auto* p : peers) p->join();
  world.simulator().run_until(sim::Time::minutes(4));

  EXPECT_TRUE(list_cap_ok) << "a peer list exceeded the configured cap";
  EXPECT_TRUE(no_self_reference) << "a peer listed itself";
  EXPECT_TRUE(data_sized_ok) << "a data reply had the wrong payload size";

  // Neighborhood bound: max_neighbors plus the inbound slack of 4.
  for (auto* p : peers) {
    EXPECT_LE(p->neighbor_count(),
              static_cast<std::size_t>(param.max_neighbors) + 4u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProtocolInvariants,
    ::testing::Values(SweepParam{4, 1, 60}, SweepParam{8, 2, 60},
                      SweepParam{28, 2, 60}, SweepParam{8, 2, 5},
                      SweepParam{12, 4, 20}));

TEST(ChannelIsolationTest, NoCrossChannelData) {
  // Two channels in one world: no data reply of one channel may be emitted
  // by a peer of the other. MiniWorld builds one channel, so attach a
  // second source + viewer manually on channel 2 and watch the wire.
  MiniWorld world(77);
  Peer& viewer1 = world.add_peer(net::IspCategory::kTele);
  viewer1.join();

  bool isolation_ok = true;
  world.network().set_global_tap(
      [&](const net::Endpoint&, const net::Endpoint&, const Message& m,
          std::uint64_t) {
        if (const auto* d = std::get_if<DataReply>(&m)) {
          if (d->channel != world.channel().id) isolation_ok = false;
        }
      });
  world.simulator().run_until(sim::Time::minutes(2));
  EXPECT_TRUE(isolation_ok);
  EXPECT_GT(viewer1.counters().bytes_downloaded, 0u);
}

}  // namespace
}  // namespace ppsim::proto
