// Tests for on-demand (VoD) streaming mode: the program exists up front,
// viewers start at chunk 1, and staggered viewers can serve each other's
// earlier positions.

#include <gtest/gtest.h>

#include "proto_testutil.h"

namespace ppsim::proto {
namespace {

using testing::MiniWorld;

ChannelSpec vod_channel(ChunkSeq chunks = 600) {
  ChannelSpec spec{5, "vod-test", 400e3, 1380, 4};
  spec.mode = StreamMode::kVod;
  spec.vod_chunks = chunks;
  return spec;
}

TEST(VodTest, SourcePreProducesWholeProgram) {
  MiniWorld world(1, vod_channel(500));
  world.simulator().run_until(sim::Time::seconds(1));
  EXPECT_EQ(world.source().chunks_produced(), 500u);
  EXPECT_EQ(world.source().live_edge(), 500u);
  // Nothing more appears over time.
  world.simulator().run_until(sim::Time::minutes(2));
  EXPECT_EQ(world.source().chunks_produced(), 500u);
}

TEST(VodTest, ViewerStartsAtChunkOne) {
  MiniWorld world(2, vod_channel());
  PeerConfig config;
  config.chunk_retention = 4096;  // keep the whole program
  Peer& viewer = world.add_peer(net::IspCategory::kTele, config);
  viewer.join();
  world.simulator().run_until(sim::Time::minutes(1));
  ASSERT_TRUE(viewer.playback_started());
  // Playback began at the start of the program, not at a live edge.
  EXPECT_TRUE(viewer.store().has(1));
  EXPECT_GT(viewer.counters().chunks_played, 0u);
  EXPECT_GT(viewer.counters().continuity(), 0.9);
}

TEST(VodTest, PlaybackStopsAtProgramEnd) {
  // A short program: the viewer finishes it and stops counting.
  MiniWorld world(3, vod_channel(120));  // ~13 seconds of content
  PeerConfig config;
  config.chunk_retention = 4096;
  Peer& viewer = world.add_peer(net::IspCategory::kTele, config);
  viewer.join();
  world.simulator().run_until(sim::Time::minutes(3));
  EXPECT_LE(viewer.counters().chunks_played + viewer.counters().chunks_missed,
            120u);
  EXPECT_GT(viewer.counters().chunks_played, 100u);
  const auto played = viewer.counters().chunks_played;
  world.simulator().run_until(sim::Time::minutes(5));
  EXPECT_EQ(viewer.counters().chunks_played, played) << "kept playing past end";
}

TEST(VodTest, StaggeredViewersShareContent) {
  MiniWorld world(4, vod_channel());
  PeerConfig config;
  config.chunk_retention = 4096;
  Peer& early = world.add_peer(net::IspCategory::kTele, config);
  Peer& late = world.add_peer(net::IspCategory::kTele, config);
  early.join();
  world.simulator().schedule(sim::Time::minutes(1), [&] { late.join(); });
  world.simulator().run_until(sim::Time::minutes(4));
  ASSERT_TRUE(late.playback_started());
  EXPECT_GT(late.counters().continuity(), 0.85);
  // The early viewer (holding the whole prefix) serves the late one.
  EXPECT_GT(early.counters().data_requests_served, 0u);
}

TEST(VodTest, LiveModeUnaffected) {
  // Regression guard: the default channel stays live and edge-chasing.
  MiniWorld world;
  Peer& viewer = world.add_peer(net::IspCategory::kTele);
  viewer.join();
  world.simulator().run_until(sim::Time::minutes(2));
  ASSERT_TRUE(viewer.playback_started());
  // A live viewer's playback point is near the edge, far from chunk 1.
  EXPECT_GT(viewer.playback_position(), 100u);
}

}  // namespace
}  // namespace ppsim::proto
