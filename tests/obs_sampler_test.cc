#include "obs/sampler.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ppsim::obs {
namespace {

IspMatrix matrix_with(std::uint64_t diag, std::uint64_t off) {
  IspMatrix m{};
  for (std::size_t i = 0; i < m.size(); ++i)
    for (std::size_t j = 0; j < m.size(); ++j) m[i][j] = i == j ? diag : off;
  return m;
}

TEST(TrafficSampler, ComputesIntervalDeltasAndShares) {
  TrafficSampler sampler;
  // 5 ISPs: diag total 5*100, off-diag total 20*10 = 200 -> 700 cumulative.
  const auto first = sampler.record(sim::Time::seconds(10),
                                    matrix_with(100, 10), 0.25, 0.9, 7);
  EXPECT_EQ(first.interval_bytes, 700u);
  EXPECT_EQ(first.interval_same_isp_bytes, 500u);
  EXPECT_DOUBLE_EQ(first.same_isp_share_cum, 500.0 / 700.0);
  EXPECT_DOUBLE_EQ(first.same_isp_share_interval, 500.0 / 700.0);
  EXPECT_DOUBLE_EQ(first.neighbor_same_isp_share, 0.25);
  EXPECT_DOUBLE_EQ(first.avg_continuity, 0.9);
  EXPECT_EQ(first.alive_peers, 7u);

  // Second sample: only the diagonal grew (+50 per ISP = +250).
  const auto second = sampler.record(sim::Time::seconds(20),
                                     matrix_with(150, 10), 0.5, 0.95, 9);
  EXPECT_EQ(second.interval_bytes, 250u);
  EXPECT_EQ(second.interval_same_isp_bytes, 250u);
  EXPECT_DOUBLE_EQ(second.same_isp_share_interval, 1.0);
  EXPECT_DOUBLE_EQ(second.same_isp_share_cum, 750.0 / 950.0);
  ASSERT_EQ(sampler.samples().size(), 2u);
}

TEST(TrafficSampler, ZeroTrafficYieldsZeroShares) {
  TrafficSampler sampler;
  const auto s = sampler.record(sim::Time::seconds(1), IspMatrix{}, 0, 0, 0);
  EXPECT_EQ(s.interval_bytes, 0u);
  EXPECT_DOUBLE_EQ(s.same_isp_share_cum, 0.0);
  EXPECT_DOUBLE_EQ(s.same_isp_share_interval, 0.0);
}

TEST(SamplesNdjson, RoundTrips) {
  TrafficSampler sampler;
  sampler.record(sim::Time::seconds(10), matrix_with(100, 10), 0.25, 0.9, 7);
  sampler.record(sim::Time::seconds(20), matrix_with(150, 12), 0.5, 0.95, 9);

  std::ostringstream os;
  write_samples_ndjson(os, sampler.samples());

  std::istringstream is(os.str());
  std::size_t dropped = 0;
  const auto back = read_samples_ndjson(is, &dropped);
  EXPECT_EQ(dropped, 0u);
  ASSERT_EQ(back.size(), 2u);
  for (std::size_t i = 0; i < back.size(); ++i) {
    const auto& a = sampler.samples()[i];
    const auto& b = back[i];
    EXPECT_EQ(a.t.as_micros(), b.t.as_micros());
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.interval_bytes, b.interval_bytes);
    EXPECT_EQ(a.interval_same_isp_bytes, b.interval_same_isp_bytes);
    EXPECT_NEAR(a.same_isp_share_cum, b.same_isp_share_cum, 1e-9);
    EXPECT_NEAR(a.same_isp_share_interval, b.same_isp_share_interval, 1e-9);
    EXPECT_NEAR(a.neighbor_same_isp_share, b.neighbor_same_isp_share, 1e-9);
    EXPECT_NEAR(a.avg_continuity, b.avg_continuity, 1e-9);
    EXPECT_EQ(a.alive_peers, b.alive_peers);
  }
}

TEST(SamplesNdjson, WriteIsByteStable) {
  TrafficSampler sampler;
  sampler.record(sim::Time::seconds(10), matrix_with(3, 1), 0.1, 0.5, 2);
  std::ostringstream first, second;
  write_samples_ndjson(first, sampler.samples());
  write_samples_ndjson(second, sampler.samples());
  EXPECT_EQ(first.str(), second.str());
}

TEST(SamplesNdjson, CountsMalformedLines) {
  std::istringstream is("not json at all\n");
  std::size_t dropped = 0;
  const auto parsed = read_samples_ndjson(is, &dropped);
  EXPECT_TRUE(parsed.empty());
  EXPECT_EQ(dropped, 1u);
}

TEST(SamplesNdjson, RejectsDuplicateTimestampRows) {
  TrafficSampler sampler;
  sampler.record(sim::Time::seconds(10), matrix_with(3, 1), 0.1, 0.5, 2);
  std::ostringstream os;
  write_samples_ndjson(os, sampler.samples());
  write_samples_ndjson(os, sampler.samples());  // the same window twice

  std::istringstream is(os.str());
  std::size_t dropped = 0;
  std::string error;
  const auto parsed = read_samples_ndjson(is, &dropped, &error);
  EXPECT_TRUE(parsed.empty());
  EXPECT_NE(error.find("duplicate sample row"), std::string::npos) << error;
  EXPECT_NE(error.find("t=10"), std::string::npos) << error;
}

TEST(TrafficSamplerWindowed, StreamMatchesUnwindowedDumpByteForByte) {
  // Same sample sequence through both modes; the streamed file (periodic
  // flushes + final flush) must concatenate to exactly the end-of-run dump.
  TrafficSampler plain;
  TrafficSampler windowed;
  std::ostringstream stream;
  windowed.enable_windowing(
      {.window = sim::Time::seconds(30), .out = &stream, .retain = 4});

  for (int i = 1; i <= 10; ++i) {
    const auto t = sim::Time::seconds(10 * i);
    const auto m = matrix_with(100 * i, 10 * i);
    plain.record(t, m, 0.1 * i, 0.5, 2 + i);
    windowed.record(t, m, 0.1 * i, 0.5, 2 + i);
  }
  windowed.flush();

  std::ostringstream dump;
  write_samples_ndjson(dump, plain.samples());
  EXPECT_EQ(stream.str(), dump.str());
  EXPECT_EQ(windowed.samples_flushed(), 10u);
}

TEST(TrafficSamplerWindowed, KeepsOnlyBoundedTailInMemory) {
  TrafficSampler sampler;
  std::ostringstream stream;
  sampler.enable_windowing(
      {.window = sim::Time::seconds(20), .out = &stream, .retain = 3});
  for (int i = 1; i <= 12; ++i)
    sampler.record(sim::Time::seconds(10 * i), matrix_with(10 * i, i), 0.1,
                   0.5, 3);
  sampler.flush();

  // Everything was flushed; memory holds at most `retain` samples.
  EXPECT_EQ(sampler.samples_flushed(), 12u);
  EXPECT_TRUE(sampler.samples().empty());
  const auto tail = sampler.tail_samples();
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail.back().t.as_micros(),
            sim::Time::seconds(120).as_micros());
  EXPECT_EQ(tail.front().t.as_micros(),
            sim::Time::seconds(100).as_micros());
}

TEST(TrafficSamplerWindowed, SampleOnBoundaryFlushesPriorWindow) {
  TrafficSampler sampler;
  std::ostringstream stream;
  sampler.enable_windowing(
      {.window = sim::Time::seconds(30), .out = &stream, .retain = 8});
  sampler.record(sim::Time::seconds(10), matrix_with(1, 0), 0, 0.5, 1);
  sampler.record(sim::Time::seconds(20), matrix_with(2, 0), 0, 0.5, 1);
  EXPECT_EQ(sampler.samples_flushed(), 0u);  // window [0,30) still open
  // t=30 starts the next window; the first two rows flush first.
  sampler.record(sim::Time::seconds(30), matrix_with(3, 0), 0, 0.5, 1);
  EXPECT_EQ(sampler.samples_flushed(), 2u);
  EXPECT_EQ(sampler.samples().size(), 1u);  // the t=30 row, still pending
}

TEST(MatrixHelpers, TotalAndIntra) {
  const auto m = matrix_with(100, 10);
  EXPECT_EQ(matrix_total(m), 700u);
  EXPECT_EQ(matrix_intra_isp(m), 500u);
}

}  // namespace
}  // namespace ppsim::obs
