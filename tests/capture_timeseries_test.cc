#include <gtest/gtest.h>

#include "capture/analyzer.h"

namespace ppsim::capture {
namespace {

TraceAnalysis with_events(std::initializer_list<DataEvent> events) {
  TraceAnalysis a;
  a.data_events.assign(events);
  return a;
}

DataEvent ev(std::int64_t ms, net::IspCategory c, std::uint32_t bytes) {
  return DataEvent{sim::Time::millis(ms), c, bytes};
}

TEST(LocalityOverTimeTest, EmptyAnalysis) {
  TraceAnalysis a;
  EXPECT_TRUE(a.locality_over_time(net::IspCategory::kTele,
                                   sim::Time::seconds(10))
                  .empty());
}

TEST(LocalityOverTimeTest, SingleBin) {
  auto a = with_events({ev(0, net::IspCategory::kTele, 300),
                        ev(100, net::IspCategory::kCnc, 100)});
  auto series =
      a.locality_over_time(net::IspCategory::kTele, sim::Time::seconds(10));
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0].locality, 0.75);
  EXPECT_EQ(series[0].bytes, 400u);
}

TEST(LocalityOverTimeTest, MultipleBinsWithGap) {
  auto a = with_events({ev(0, net::IspCategory::kTele, 100),
                        ev(500, net::IspCategory::kTele, 100),
                        // bin 2 (1000-2000ms) empty
                        ev(2500, net::IspCategory::kCnc, 100)});
  auto series =
      a.locality_over_time(net::IspCategory::kTele, sim::Time::seconds(1));
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0].locality, 1.0);
  EXPECT_EQ(series[1].bytes, 0u);  // empty bin preserved
  EXPECT_DOUBLE_EQ(series[2].locality, 0.0);
  EXPECT_EQ(series[2].bin_start, series[0].bin_start + sim::Time::seconds(2));
}

TEST(LocalityOverTimeTest, BinBoundariesRelativeToFirstEvent) {
  auto a = with_events({ev(5000, net::IspCategory::kTele, 100),
                        ev(5999, net::IspCategory::kTele, 100),
                        ev(6000, net::IspCategory::kCnc, 100)});
  auto series =
      a.locality_over_time(net::IspCategory::kTele, sim::Time::seconds(1));
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].bytes, 200u);
  EXPECT_EQ(series[1].bytes, 100u);
}

TEST(LocalityOverTimeTest, InvalidBinRejected) {
  auto a = with_events({ev(0, net::IspCategory::kTele, 100)});
  EXPECT_TRUE(
      a.locality_over_time(net::IspCategory::kTele, sim::Time::zero())
          .empty());
}

TEST(LocalityOverTimeTest, AnalyzerPopulatesEvents) {
  // Matched request/reply pairs must surface as data events.
  net::AsnDatabase db;
  db.insert(net::Prefix(net::IpAddress(10, 0, 0, 0), 8), 1, "TELE",
            net::IspCategory::kTele);
  PacketTrace trace;
  auto add = [&](sim::Time t, net::Direction dir, proto::Message m) {
    trace.push_back(TraceRecord{t, dir, net::IpAddress(0x0A000001),
                                net::IpAddress(0x0A000002),
                                proto::wire_size(m), std::move(m)});
  };
  add(sim::Time::millis(100), net::Direction::kOutgoing,
      proto::Message{proto::DataQuery{1, 7}});
  add(sim::Time::millis(200), net::Direction::kIncoming,
      proto::Message{proto::DataReply{1, 7, 4, 5520}});
  auto analysis = analyze_trace(trace, db, net::IpAddress(0x0A000001), {});
  ASSERT_EQ(analysis.data_events.size(), 1u);
  EXPECT_EQ(analysis.data_events[0].request_time, sim::Time::millis(100));
  EXPECT_EQ(analysis.data_events[0].server, net::IspCategory::kTele);
  EXPECT_EQ(analysis.data_events[0].bytes, 5520u);
}

}  // namespace
}  // namespace ppsim::capture
