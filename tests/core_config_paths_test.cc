// Coverage for experiment-config paths not exercised elsewhere: the CER
// probe site, ISP-aware trackers end-to-end, and interconnects combined
// with the multi-channel runner.

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "workload/scenario.h"

namespace ppsim::core {
namespace {

TEST(ConfigPathsTest, CerProbeStreams) {
  ExperimentConfig config;
  config.scenario = workload::popular_channel();
  config.scenario.viewers = 70;
  config.scenario.duration = sim::Time::minutes(5);
  config.scenario.seed = 12;
  config.probes = {cer_probe()};
  auto result = run_experiment(config);
  ASSERT_EQ(result.probes.size(), 1u);
  EXPECT_EQ(result.probes[0].category, net::IspCategory::kCer);
  EXPECT_GT(result.probes[0].analysis.data_bytes.total(), 0u);
  EXPECT_GT(result.probes[0].counters.continuity(), 0.5);
}

TEST(ConfigPathsTest, SmartTrackersImproveEarlyLists) {
  // With ISP-aware trackers, the tracker rows of the probe's list-source
  // breakdown should be same-ISP enriched well beyond the audience mix.
  ExperimentConfig config;
  config.scenario = workload::popular_channel();
  config.scenario.viewers = 90;
  config.scenario.duration = sim::Time::minutes(5);
  config.scenario.seed = 14;
  config.probes = {cnc_probe()};  // minority ISP: enrichment is visible
  config.locality_aware_trackers = true;
  auto result = run_experiment(config);
  const auto& analysis = result.probes[0].analysis;
  double tracker_cnc = 0, tracker_total = 0;
  for (const auto& row : analysis.list_sources) {
    if (!row.replier_is_tracker) continue;
    tracker_cnc += static_cast<double>(row.listed.get(net::IspCategory::kCnc));
    tracker_total += static_cast<double>(row.listed.total());
  }
  ASSERT_GT(tracker_total, 0.0);
  // The audience is ~19% CNC; an ISP-aware tracker must return clearly
  // more (it runs out of CNC members at this audience size, so the reply
  // tops up with others rather than reaching 100%).
  EXPECT_GT(tracker_cnc / tracker_total, 0.28);
}

TEST(ConfigPathsTest, MultiChannelWithInterconnects) {
  MultiChannelConfig config;
  auto popular = workload::popular_channel();
  popular.viewers = 60;
  config.channels.push_back(ChannelPlan{popular, {tele_probe()}});
  config.duration = sim::Time::minutes(4);
  config.seed = 21;
  net::InterconnectConfig ic;
  ic.default_bps = 30e6;
  config.interconnects = ic;
  auto result = run_multi_channel(config);
  EXPECT_GT(result.probes[0].analysis.data_bytes.total(), 0u);
  // With a pipe this size at this scale, locality should be well above
  // the unthrottled swarm's ~0.5.
  EXPECT_GT(result.traffic.locality(), 0.7);
}

TEST(ConfigPathsTest, ProbeJoinTimeRespected) {
  ExperimentConfig config;
  config.scenario = workload::unpopular_channel();
  config.scenario.duration = sim::Time::minutes(5);
  config.scenario.seed = 23;
  config.probes = {tele_probe()};
  config.probe_join_at = sim::Time::minutes(2);
  auto result = run_experiment(config);
  const auto& analysis = result.probes[0].analysis;
  ASSERT_FALSE(analysis.data_events.empty());
  EXPECT_GE(analysis.data_events.front().request_time, sim::Time::minutes(2));
}

}  // namespace
}  // namespace ppsim::core
