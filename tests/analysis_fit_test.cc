#include "analysis/fit.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "sim/rng.h"

namespace ppsim::analysis {
namespace {

TEST(LeastSquaresTest, ExactLine) {
  std::vector<double> xs = {0, 1, 2, 3, 4};
  std::vector<double> ys = {1, 3, 5, 7, 9};  // y = 2x + 1
  auto fit = least_squares(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LeastSquaresTest, NoisyLineHighR2) {
  sim::Rng rng(3);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i - 5.0 + rng.normal(0, 2.0));
  }
  auto fit = least_squares(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 0.05);
  EXPECT_NEAR(fit.intercept, -5.0, 2.0);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(LeastSquaresTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(least_squares({}, {}).r2, 0.0);
  std::vector<double> one = {1.0};
  EXPECT_DOUBLE_EQ(least_squares(one, one).slope, 0.0);
  // Constant x: no slope defined.
  std::vector<double> xs = {2, 2, 2};
  std::vector<double> ys = {1, 2, 3};
  EXPECT_DOUBLE_EQ(least_squares(xs, ys).slope, 0.0);
  // Constant y: flat line fits perfectly.
  EXPECT_DOUBLE_EQ(least_squares(ys, xs).r2, 1.0);
  EXPECT_DOUBLE_EQ(least_squares(ys, xs).slope, 0.0);
}

TEST(ZipfFitTest, RecoversAlphaOnSyntheticZipf) {
  std::vector<double> ranked;
  for (int i = 1; i <= 500; ++i)
    ranked.push_back(1000.0 * std::pow(i, -0.8));
  auto fit = fit_zipf(ranked);
  EXPECT_NEAR(fit.alpha, 0.8, 1e-6);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(ZipfFitTest, SkipsNonPositive) {
  std::vector<double> ranked = {100, 10, 0, 0};
  auto fit = fit_zipf(ranked);
  EXPECT_GT(fit.alpha, 0.0);
}

TEST(StretchedExpSeriesTest, BoundaryConditionYnIsOne) {
  auto series = stretched_exponential_series(326, 0.35, 5.483);
  ASSERT_EQ(series.size(), 326u);
  EXPECT_NEAR(series.back(), 1.0, 1e-9);
  // Monotone non-increasing in rank.
  for (std::size_t i = 1; i < series.size(); ++i)
    EXPECT_LE(series[i], series[i - 1] + 1e-12);
}

TEST(StretchedExpSeriesTest, PaperEquation2) {
  // b = 1 + a log n (Eq. 2): check against the Fig 11(b) parameters.
  const double a = 5.483, c = 0.35;
  const std::size_t n = 326;
  const double b = 1.0 + a * std::log(static_cast<double>(n));
  EXPECT_NEAR(b, 32.7, 0.2);  // paper reports b = 32.069 for fitted data
  auto series = stretched_exponential_series(n, c, a);
  // y_1^c = b  =>  y_1 = b^(1/c).
  EXPECT_NEAR(series.front(), std::pow(b, 1.0 / c), 1e-6);
}

TEST(StretchedExpFitTest, PerfectDataPerfectFit) {
  auto series = stretched_exponential_series(300, 0.35, 5.0);
  auto fit = fit_stretched_exponential(series);
  EXPECT_NEAR(fit.c, 0.35, 0.051);  // grid resolution is 0.05
  EXPECT_GT(fit.r2, 0.999);
}

TEST(StretchedExpFitTest, PredictInvertsModel) {
  StretchedExpFit fit;
  fit.c = 0.4;
  fit.a = 10.0;
  fit.b = 58.0;
  // At rank 1: y = b^(1/c).
  EXPECT_NEAR(fit.predict(1), std::pow(58.0, 2.5), 1e-6);
  // Beyond the support (b - a log i < 0) the model clamps to 0.
  EXPECT_DOUBLE_EQ(fit.predict(1e9), 0.0);
}

TEST(StretchedExpFitTest, SeDataBeatsZipfModel) {
  // The paper's core fitting claim: request counts look SE, not Zipf. On
  // synthetic SE data, the SE fit's R2 must beat the log-log line's R2.
  auto series = stretched_exponential_series(300, 0.3, 6.0);
  auto se = fit_stretched_exponential(series);
  auto zipf = fit_zipf(series);
  EXPECT_GT(se.r2, zipf.r2);
  EXPECT_GT(se.r2, 0.99);
  EXPECT_LT(zipf.r2, 0.99);
}

TEST(StretchedExpFitTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(fit_stretched_exponential({}).r2, 0.0);
  std::vector<double> one = {5.0};
  EXPECT_DOUBLE_EQ(fit_stretched_exponential(one).r2, 0.0);
  std::vector<double> zeros = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(fit_stretched_exponential(zeros).r2, 0.0);
}

/// Property sweep: the SE fit recovers (c, a) over a realistic grid of
/// stretch exponents, slopes, and sizes (the paper's fits span c=0.2-0.4,
/// a=1.3-10.5, n=89-326).
class SeFitRecovery
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(SeFitRecovery, RecoversParameters) {
  const auto [c, a, n] = GetParam();
  auto series = stretched_exponential_series(static_cast<std::size_t>(n), c, a);
  auto fit = fit_stretched_exponential(series);
  EXPECT_NEAR(fit.c, c, 0.051) << "c not recovered";
  EXPECT_GT(fit.r2, 0.995);
  // When c lands on the grid exactly, a and b are recovered tightly.
  if (std::abs(fit.c - c) < 1e-9) {
    EXPECT_NEAR(fit.a, a, a * 0.02);
    const double b = 1.0 + a * std::log(n);
    EXPECT_NEAR(fit.b, b, b * 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SeFitRecovery,
    ::testing::Combine(::testing::Values(0.2, 0.3, 0.35, 0.4),
                       ::testing::Values(1.334, 5.483, 10.486),
                       ::testing::Values(89, 226, 326)));

TEST(StretchedExpFitTest, RobustToMildNoise) {
  sim::Rng rng(9);
  auto series = stretched_exponential_series(250, 0.35, 5.0);
  for (auto& y : series) y = std::max(0.5, y * rng.lognormal_median(1.0, 0.1));
  std::sort(series.begin(), series.end(), std::greater<>());
  auto fit = fit_stretched_exponential(series);
  EXPECT_GT(fit.r2, 0.95);  // the paper reports R2 ~0.95-0.99 on real data
  EXPECT_NEAR(fit.c, 0.35, 0.15);
}

}  // namespace
}  // namespace ppsim::analysis
