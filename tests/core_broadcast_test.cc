#include <gtest/gtest.h>

#include "core/experiment.h"
#include "workload/scenario.h"

namespace ppsim::core {
namespace {

ExperimentConfig broadcast_config(std::uint64_t seed) {
  ExperimentConfig config;
  config.scenario = workload::popular_channel();
  config.scenario.viewers = 80;
  config.scenario.duration = sim::Time::minutes(10);
  config.scenario.curve = workload::AudienceCurve::kBroadcastEvent;
  config.scenario.seed = seed;
  config.probes = {tele_probe()};
  return config;
}

TEST(BroadcastEventTest, ArrivalsConcentrateEarly) {
  auto result = run_experiment(broadcast_config(3));
  const double total = 600.0;  // seconds
  std::uint64_t early = 0;
  for (const auto& s : result.sessions) {
    if (s.joined.as_seconds() < 0.15 * total) ++early;
    // Nobody arrives after 60% of the program.
    EXPECT_LT(s.joined.as_seconds(), 0.61 * total);
  }
  EXPECT_GT(static_cast<double>(early) /
                static_cast<double>(result.sessions.size()),
            0.55);
}

TEST(BroadcastEventTest, AudienceDrains) {
  // No replacements: total sessions equals the configured audience.
  auto config = broadcast_config(5);
  auto result = run_experiment(config);
  EXPECT_EQ(result.sessions.size(),
            static_cast<std::size_t>(config.scenario.viewers));
}

TEST(BroadcastEventTest, MostViewersStayLate) {
  auto result = run_experiment(broadcast_config(7));
  const double total = 600.0;
  std::uint64_t stayed_late = 0;
  for (const auto& s : result.sessions) {
    if (s.left.as_seconds() > 0.8 * total) ++stayed_late;
  }
  EXPECT_GT(static_cast<double>(stayed_late) /
                static_cast<double>(result.sessions.size()),
            0.5);
}

TEST(BroadcastEventTest, ProbeStreamsThroughTheArc) {
  auto result = run_experiment(broadcast_config(9));
  const auto& probe = result.probes.front();
  EXPECT_GT(probe.counters.continuity(), 0.7);
  EXPECT_GT(probe.analysis.data_bytes.total(), 0u);
}

TEST(BroadcastEventTest, StationaryDefaultUnchanged) {
  // Regression guard: default scenarios still replace departures.
  ExperimentConfig config = broadcast_config(11);
  config.scenario.curve = workload::AudienceCurve::kStationary;
  config.scenario.mean_session = sim::Time::minutes(3);
  auto result = run_experiment(config);
  EXPECT_GT(result.sessions.size(),
            static_cast<std::size_t>(config.scenario.viewers));
}

}  // namespace
}  // namespace ppsim::core
