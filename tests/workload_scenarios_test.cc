#include <gtest/gtest.h>

#include <set>

#include "workload/scenario.h"

namespace ppsim::workload {
namespace {

TEST(ExtraScenariosTest, BroadcastEventShape) {
  ScenarioSpec s = broadcast_event();
  EXPECT_EQ(s.curve, AudienceCurve::kBroadcastEvent);
  EXPECT_GT(s.viewers, 200);
  EXPECT_NE(s.channel.id, popular_channel().channel.id);
}

TEST(ExtraScenariosTest, OvernightShape) {
  ScenarioSpec s = overnight_channel();
  EXPECT_LT(s.viewers, 50);
  EXPECT_LT(s.mean_session, unpopular_channel().mean_session);
  EXPECT_EQ(s.curve, AudienceCurve::kStationary);
}

TEST(ExtraScenariosTest, AllChannelIdsDistinct) {
  std::set<proto::ChannelId> ids = {
      popular_channel().channel.id, unpopular_channel().channel.id,
      broadcast_event().channel.id, overnight_channel().channel.id};
  EXPECT_EQ(ids.size(), 4u);
}

TEST(NatProbabilityTest, ResidentialHigherThanInfrastructure) {
  EXPECT_GT(nat_probability(net::AccessClass::kAdsl), 0.5);
  EXPECT_GT(nat_probability(net::AccessClass::kCable), 0.5);
  EXPECT_LT(nat_probability(net::AccessClass::kCampus), 0.3);
  EXPECT_LT(nat_probability(net::AccessClass::kFiber),
            nat_probability(net::AccessClass::kAdsl));
  EXPECT_DOUBLE_EQ(nat_probability(net::AccessClass::kDatacenter), 0.0);
}

}  // namespace
}  // namespace ppsim::workload
