#include "baseline/policies.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "net/asn_db.h"
#include "proto/selection.h"
#include "sim/rng.h"

namespace ppsim::baseline {
namespace {

std::vector<net::IpAddress> ips(std::initializer_list<std::uint32_t> vs) {
  std::vector<net::IpAddress> out;
  for (auto v : vs) out.emplace_back(v);
  return out;
}

TEST(ReferralSelectionTest, PrefersFreshList) {
  proto::ReferralSelection policy;
  sim::Rng rng(1);
  auto fresh = ips({1, 2, 3});
  auto pool = ips({10, 11, 12, 13});
  auto picked = policy.choose(fresh, pool, {}, 3, rng);
  ASSERT_EQ(picked.size(), 3u);
  for (const auto& ip : picked) EXPECT_LE(ip.value(), 3u);
}

TEST(ReferralSelectionTest, TopsUpFromPool) {
  proto::ReferralSelection policy;
  sim::Rng rng(1);
  auto fresh = ips({1});
  auto pool = ips({10, 11, 12});
  auto picked = policy.choose(fresh, pool, {}, 3, rng);
  EXPECT_EQ(picked.size(), 3u);
  EXPECT_TRUE(std::find(picked.begin(), picked.end(), net::IpAddress(1)) !=
              picked.end());
}

TEST(ReferralSelectionTest, RespectsExclusions) {
  proto::ReferralSelection policy;
  sim::Rng rng(1);
  auto fresh = ips({1, 2, 3});
  std::unordered_set<net::IpAddress> excluded = {net::IpAddress(1),
                                                 net::IpAddress(2)};
  auto picked = policy.choose(fresh, {}, excluded, 3, rng);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0], net::IpAddress(3));
}

TEST(ReferralSelectionTest, NoDuplicatesAcrossFreshAndPool) {
  proto::ReferralSelection policy;
  sim::Rng rng(1);
  auto fresh = ips({1, 2});
  auto pool = ips({1, 2, 3});
  auto picked = policy.choose(fresh, pool, {}, 5, rng);
  std::sort(picked.begin(), picked.end());
  EXPECT_TRUE(std::adjacent_find(picked.begin(), picked.end()) ==
              picked.end());
  EXPECT_EQ(picked.size(), 3u);
}

TEST(ReferralSelectionTest, DefaultFlags) {
  proto::ReferralSelection policy;
  EXPECT_TRUE(policy.use_neighbor_referral());
  EXPECT_TRUE(policy.connect_on_arrival());
}

TEST(TrackerOnlyPolicyTest, DisablesReferral) {
  TrackerOnlyPolicy policy;
  EXPECT_FALSE(policy.use_neighbor_referral());
  EXPECT_TRUE(policy.connect_on_arrival());
}

TEST(NoRushPolicyTest, IgnoresFreshList) {
  NoRushPolicy policy;
  EXPECT_FALSE(policy.connect_on_arrival());
  EXPECT_TRUE(policy.use_neighbor_referral());
  sim::Rng rng(1);
  auto fresh = ips({1, 2, 3});
  auto pool = ips({10, 11});
  auto picked = policy.choose(fresh, pool, {}, 5, rng);
  ASSERT_EQ(picked.size(), 2u);
  for (const auto& ip : picked) EXPECT_GE(ip.value(), 10u);
}

class IspBiasedTest : public ::testing::Test {
 protected:
  IspBiasedTest() {
    db_.insert(net::Prefix(net::IpAddress(10, 0, 0, 0), 8), 1, "TELE",
               net::IspCategory::kTele);
    db_.insert(net::Prefix(net::IpAddress(20, 0, 0, 0), 8), 2, "CNC",
               net::IspCategory::kCnc);
  }
  net::AsnDatabase db_;
};

TEST_F(IspBiasedTest, StrongBiasPrefersSameIsp) {
  IspBiasedPolicy policy(db_, net::IspCategory::kTele, /*bias=*/1.0);
  sim::Rng rng(1);
  std::vector<net::IpAddress> fresh;
  for (int i = 1; i <= 10; ++i) fresh.emplace_back(net::IpAddress(10, 0, 0, static_cast<std::uint8_t>(i)));
  for (int i = 1; i <= 10; ++i) fresh.emplace_back(net::IpAddress(20, 0, 0, static_cast<std::uint8_t>(i)));
  auto picked = policy.choose(fresh, {}, {}, 10, rng);
  ASSERT_EQ(picked.size(), 10u);
  for (const auto& ip : picked)
    EXPECT_EQ(db_.category_or_foreign(ip), net::IspCategory::kTele);
}

TEST_F(IspBiasedTest, FallsBackWhenSameIspExhausted) {
  IspBiasedPolicy policy(db_, net::IspCategory::kTele, /*bias=*/1.0);
  sim::Rng rng(1);
  auto fresh = ips({0x0A000001, 0x14000001, 0x14000002});
  auto picked = policy.choose(fresh, {}, {}, 3, rng);
  EXPECT_EQ(picked.size(), 3u);
}

TEST_F(IspBiasedTest, ZeroBiasStillReturnsRequested) {
  IspBiasedPolicy policy(db_, net::IspCategory::kTele, /*bias=*/0.0);
  sim::Rng rng(1);
  auto fresh = ips({0x0A000001, 0x0A000002, 0x14000001, 0x14000002});
  auto picked = policy.choose(fresh, {}, {}, 4, rng);
  EXPECT_EQ(picked.size(), 4u);
}

TEST_F(IspBiasedTest, RespectsExclusions) {
  IspBiasedPolicy policy(db_, net::IspCategory::kTele, 1.0);
  sim::Rng rng(1);
  auto fresh = ips({0x0A000001, 0x0A000002});
  std::unordered_set<net::IpAddress> excluded = {net::IpAddress(0x0A000001)};
  auto picked = policy.choose(fresh, {}, excluded, 2, rng);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0], net::IpAddress(0x0A000002));
}

TEST(PolicyFactoryTest, MakesAllStrategies) {
  net::AsnDatabase db;
  EXPECT_NE(make_policy(Strategy::kPplive), nullptr);
  EXPECT_NE(make_policy(Strategy::kTrackerOnly), nullptr);
  EXPECT_NE(make_policy(Strategy::kNoRush), nullptr);
  auto biased = make_policy(Strategy::kIspBiased, &db,
                            net::IspCategory::kTele);
  EXPECT_NE(biased, nullptr);
  // Without a database the oracle degrades to the default policy.
  auto degraded = make_policy(Strategy::kIspBiased, nullptr);
  EXPECT_TRUE(degraded->use_neighbor_referral());
}

TEST(PolicyFactoryTest, Names) {
  EXPECT_EQ(to_string(Strategy::kPplive), "pplive-referral");
  EXPECT_EQ(to_string(Strategy::kTrackerOnly), "tracker-only");
  EXPECT_EQ(to_string(Strategy::kIspBiased), "isp-biased-oracle");
  EXPECT_EQ(to_string(Strategy::kNoRush), "no-rush-referral");
}

}  // namespace
}  // namespace ppsim::baseline
