#include "proto/chunk_store.h"

#include <gtest/gtest.h>

namespace ppsim::proto {
namespace {

TEST(ChunkStoreTest, StartsEmpty) {
  ChunkStore store;
  EXPECT_TRUE(store.empty());
  EXPECT_FALSE(store.has(1));
  EXPECT_EQ(store.chunks_held(), 0u);
}

TEST(ChunkStoreTest, InsertAndQuery) {
  ChunkStore store;
  EXPECT_TRUE(store.insert(5));
  EXPECT_TRUE(store.has(5));
  EXPECT_FALSE(store.has(4));
  EXPECT_FALSE(store.has(6));
  EXPECT_EQ(store.highest(), 5u);
  EXPECT_EQ(store.base(), 5u);
}

TEST(ChunkStoreTest, DuplicateRejected) {
  ChunkStore store;
  EXPECT_TRUE(store.insert(5));
  EXPECT_FALSE(store.insert(5));
}

TEST(ChunkStoreTest, OutOfOrderInsert) {
  ChunkStore store;
  store.insert(10);
  store.insert(7);
  store.insert(13);
  EXPECT_TRUE(store.has(7));
  EXPECT_TRUE(store.has(10));
  EXPECT_TRUE(store.has(13));
  EXPECT_FALSE(store.has(8));
  EXPECT_EQ(store.chunks_held(), 3u);
}

TEST(ChunkStoreTest, InsertBelowBaseWithinRetention) {
  // A peer's first chunk need not be its lowest: the startup buffer is
  // filled behind the first-received chunk.
  ChunkStore store(/*retention=*/256);
  store.insert(100);
  EXPECT_TRUE(store.insert(50));
  EXPECT_TRUE(store.has(50));
  EXPECT_EQ(store.base(), 50u);
}

TEST(ChunkStoreTest, InsertBelowRetentionWindowRejected) {
  ChunkStore store(/*retention=*/10);
  store.insert(100);
  EXPECT_FALSE(store.insert(50));  // 50 <= 100 - 10: outside the window
  EXPECT_TRUE(store.insert(95));   // within the window
}

TEST(ChunkStoreTest, RetentionEvictsOld) {
  ChunkStore store(/*retention=*/10);
  for (ChunkSeq s = 1; s <= 30; ++s) store.insert(s);
  EXPECT_EQ(store.highest(), 30u);
  EXPECT_EQ(store.base(), 21u);
  EXPECT_FALSE(store.has(20));
  EXPECT_TRUE(store.has(21));
  EXPECT_TRUE(store.has(30));
  EXPECT_EQ(store.chunks_held(), 10u);
}

TEST(ChunkStoreTest, EvictedChunkCannotReinsert) {
  ChunkStore store(/*retention=*/10);
  for (ChunkSeq s = 1; s <= 30; ++s) store.insert(s);
  EXPECT_FALSE(store.insert(5));
}

TEST(ChunkStoreTest, SparseJumpEvicts) {
  ChunkStore store(/*retention=*/10);
  store.insert(1);
  store.insert(1000);
  EXPECT_FALSE(store.has(1));
  EXPECT_TRUE(store.has(1000));
  EXPECT_EQ(store.base(), 991u);
}

TEST(ChunkStoreTest, SnapshotCoversRange) {
  ChunkStore store;
  store.insert(5);
  store.insert(7);
  store.insert(9);
  BufferMap map = store.snapshot(5);
  EXPECT_EQ(map.base, 5u);
  EXPECT_TRUE(map.has(5));
  EXPECT_FALSE(map.has(6));
  EXPECT_TRUE(map.has(7));
  EXPECT_FALSE(map.has(8));
  EXPECT_TRUE(map.has(9));
  EXPECT_FALSE(map.has(10));
  EXPECT_EQ(map.highest(), 9u);
}

TEST(ChunkStoreTest, SnapshotFromBelowBaseClamps) {
  ChunkStore store(/*retention=*/5);
  for (ChunkSeq s = 1; s <= 20; ++s) store.insert(s);
  BufferMap map = store.snapshot(1);
  EXPECT_EQ(map.base, store.base());
  EXPECT_TRUE(map.has(20));
}

TEST(ChunkStoreTest, SnapshotOfEmptyStore) {
  ChunkStore store;
  BufferMap map = store.snapshot(0);
  EXPECT_TRUE(map.have.empty());
  EXPECT_EQ(map.highest(), 0u);
}

TEST(BufferMapTest, HasOutOfRange) {
  BufferMap map;
  map.base = 10;
  map.have = {true, false, true};
  EXPECT_FALSE(map.has(9));
  EXPECT_TRUE(map.has(10));
  EXPECT_FALSE(map.has(11));
  EXPECT_TRUE(map.has(12));
  EXPECT_FALSE(map.has(13));
}

TEST(BufferMapTest, HighestOfEmpty) {
  BufferMap map;
  EXPECT_EQ(map.highest(), 0u);
  map.base = 5;
  map.have = {false, false};
  EXPECT_EQ(map.highest(), 0u);
}

class ChunkStoreRetention : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ChunkStoreRetention, NeverHoldsMoreThanRetention) {
  ChunkStore store(GetParam());
  for (ChunkSeq s = 1; s <= 500; ++s) {
    store.insert(s);
    EXPECT_LE(store.chunks_held(), GetParam());
    EXPECT_LE(store.highest() - store.base() + 1, GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Retentions, ChunkStoreRetention,
                         ::testing::Values(1, 2, 10, 64, 256));

}  // namespace
}  // namespace ppsim::proto
