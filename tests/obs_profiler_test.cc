// Regression tests for RunProfiler's zero-sample handling: a category that
// was pre-registered but never executed must render placeholder quantiles
// ("-" in the table, null in NDJSON), never NaN/inf garbage.
#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/time.h"

namespace ppsim::obs {
namespace {

TEST(RunProfiler, ZeroSampleCategoryPrintsPlaceholderQuantiles) {
  RunProfiler profiler;
  profiler.preregister_category("never.fires");

  std::ostringstream os;
  profiler.print(os);
  const std::string table = os.str();

  ASSERT_NE(table.find("never.fires"), std::string::npos);
  // The NaN quantile of an empty histogram used to fall through the
  // +inf branch and print the overflow marker.
  EXPECT_EQ(table.find(">0.1s"), std::string::npos);
  EXPECT_EQ(table.find("nan"), std::string::npos);
  EXPECT_NE(table.find("-"), std::string::npos);
}

TEST(RunProfiler, ZeroSampleCategoryEmitsNullQuantilesInNdjson) {
  RunProfiler profiler;
  profiler.preregister_category("idle");

  std::ostringstream os;
  profiler.write_ndjson(os);
  const std::string dump = os.str();

  EXPECT_NE(
      dump.find(
          "{\"category\":\"idle\",\"events\":0,\"wall_s\":0,\"p50_s\":null,"
          "\"p99_s\":null}"),
      std::string::npos);
  EXPECT_EQ(dump.find("nan"), std::string::npos);
  EXPECT_EQ(dump.find("inf"), std::string::npos);
}

TEST(RunProfiler, MeasuredCategoryStillReportsQuantiles) {
  RunProfiler profiler;
  profiler.preregister_category("warm");
  profiler.on_event_begin(sim::Time::zero(), 1, "warm", 3);
  profiler.on_event_end(sim::Time::zero(), "warm");

  EXPECT_EQ(profiler.events_total(), 1u);
  const auto it = profiler.categories().find("warm");
  ASSERT_NE(it, profiler.categories().end());
  EXPECT_EQ(it->second.events, 1u);

  std::ostringstream os;
  profiler.print(os);
  // One real sample: the quantile column must show a bucket bound, not the
  // zero-sample placeholder (match the "<=" prefix).
  EXPECT_NE(os.str().find("<="), std::string::npos);
}

TEST(RunProfiler, PreregisterDoesNotResetMeasuredStats) {
  RunProfiler profiler;
  profiler.on_event_begin(sim::Time::zero(), 1, "cat", 0);
  profiler.on_event_end(sim::Time::zero(), "cat");
  profiler.preregister_category("cat");  // no-op on an existing entry
  const auto it = profiler.categories().find("cat");
  ASSERT_NE(it, profiler.categories().end());
  EXPECT_EQ(it->second.events, 1u);
}

}  // namespace
}  // namespace ppsim::obs
