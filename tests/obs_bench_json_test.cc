#include "obs/bench_json.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ppsim::obs {
namespace {

TEST(BenchJson, WritesSortedWithHeaderAndRoundTrips) {
  std::vector<BenchEntry> entries = {
      {"BM_Zeta/100", 10, 123.5, 99},
      {"BM_Alpha", 1000, 7.25, 0},
  };
  std::ostringstream out;
  write_bench_json(out, entries);

  const std::string text = out.str();
  EXPECT_EQ(text.find("{\"bench_schema\":\"ppsim-bench-v1\",\"benchmarks\":2}"),
            0u);
  // Sorted by name regardless of registration order.
  EXPECT_LT(text.find("BM_Alpha"), text.find("BM_Zeta"));

  std::istringstream in(text);
  std::size_t dropped = 0;
  const auto parsed = read_bench_json(in, &dropped);
  EXPECT_EQ(dropped, 0u);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].name, "BM_Alpha");
  EXPECT_EQ(parsed[0].iterations, 1000u);
  EXPECT_DOUBLE_EQ(parsed[0].ns_per_op, 7.25);
  EXPECT_EQ(parsed[1].name, "BM_Zeta/100");
  EXPECT_EQ(parsed[1].peak_queue_depth, 99u);
}

TEST(BenchJson, ReaderCountsMalformedLines) {
  std::istringstream in(
      "{\"bench_schema\":\"ppsim-bench-v1\",\"benchmarks\":1}\n"
      "{\"name\":\"BM_Ok\",\"iterations\":5,\"ns_per_op\":1,"
      "\"peak_queue_depth\":0}\n"
      "{\"iterations\":5}\n"
      "garbage\n");
  std::size_t dropped = 0;
  const auto parsed = read_bench_json(in, &dropped);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].name, "BM_Ok");
  EXPECT_EQ(dropped, 2u);
}

TEST(BenchJson, MacroFieldsWrittenOnlyWhenNonzeroAndRoundTrip) {
  BenchEntry micro;
  micro.name = "BM_Micro";
  micro.iterations = 10;
  micro.ns_per_op = 2.5;
  micro.peak_queue_depth = 3;

  BenchEntry macro;
  macro.name = "scale/peers:01000";
  macro.iterations = 100;
  macro.ns_per_op = 1500.0;
  macro.peak_queue_depth = 900;
  macro.rss_peak_bytes = 61489152;
  macro.wall_s = 25.5;

  std::ostringstream out;
  write_bench_json(out, {micro, macro});
  const std::string text = out.str();
  // Micro rows keep the exact historical layout — no macro keys at all.
  EXPECT_NE(
      text.find(
          "{\"name\":\"BM_Micro\",\"iterations\":10,\"ns_per_op\":2.5,"
          "\"peak_queue_depth\":3}\n"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("\"rss_peak_bytes\":61489152,\"wall_s\":25.5}"),
            std::string::npos)
      << text;

  std::istringstream in(text);
  const auto parsed = read_bench_json(in);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].rss_peak_bytes, 0u);  // BM_Micro sorts first
  EXPECT_DOUBLE_EQ(parsed[0].wall_s, 0.0);
  EXPECT_EQ(parsed[1].rss_peak_bytes, 61489152u);
  EXPECT_DOUBLE_EQ(parsed[1].wall_s, 25.5);
}

TEST(BenchJson, EmptyEntriesStillWriteHeader) {
  std::ostringstream out;
  write_bench_json(out, {});
  EXPECT_EQ(out.str(),
            "{\"bench_schema\":\"ppsim-bench-v1\",\"benchmarks\":0}\n");
  std::istringstream in(out.str());
  EXPECT_TRUE(read_bench_json(in).empty());
}

}  // namespace
}  // namespace ppsim::obs
