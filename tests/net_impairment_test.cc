// ImpairmentOverlay unit tests plus transport-level fault behaviour: what
// an active overlay does to the send path, and — the drop-accounting audit
// — that every lost packet lands in exactly one Stats category.

#include "net/impairment.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/transport.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace ppsim::net {
namespace {

using TestNetwork = Network<std::string>;

LatencyModel lossless_latency() {
  LatencyConfig cfg;
  cfg.intra_isp_loss = 0;
  cfg.china_cross_loss = 0;
  cfg.transoceanic_loss = 0;
  cfg.foreign_cross_loss = 0;
  cfg.packet_sigma = 0;
  cfg.pair_sigma = 0;
  return LatencyModel(cfg);
}

TEST(ImpairmentOverlayTest, DefaultIsInactive) {
  ImpairmentOverlay overlay;
  EXPECT_FALSE(overlay.active());
  EXPECT_FALSE(overlay.category_blocked(IspCategory::kTele));
  EXPECT_EQ(overlay.pair_degradation(IspCategory::kTele, IspCategory::kCnc),
            nullptr);
  EXPECT_EQ(overlay.uplink_loss(IpAddress(1)), 0.0);
}

TEST(ImpairmentOverlayTest, ActivityTracksContents) {
  ImpairmentOverlay overlay;
  overlay.set_category_blocked(IspCategory::kCnc, true);
  EXPECT_TRUE(overlay.active());
  overlay.set_category_blocked(IspCategory::kCnc, false);
  EXPECT_FALSE(overlay.active());

  overlay.set_pair_degradation(IspCategory::kTele, IspCategory::kCnc,
                               {0.5, sim::Time::millis(10)});
  EXPECT_TRUE(overlay.active());
  overlay.clear_pair_degradation(IspCategory::kTele, IspCategory::kCnc);
  EXPECT_FALSE(overlay.active());

  overlay.set_uplink_loss(IpAddress(7), 0.3);
  EXPECT_TRUE(overlay.active());
  overlay.clear_uplink_loss(IpAddress(7));
  EXPECT_FALSE(overlay.active());
}

TEST(ImpairmentOverlayTest, PairDegradationIsUnordered) {
  ImpairmentOverlay overlay;
  overlay.set_pair_degradation(IspCategory::kCnc, IspCategory::kTele,
                               {0.25, sim::Time::millis(75)});
  const auto* d =
      overlay.pair_degradation(IspCategory::kTele, IspCategory::kCnc);
  ASSERT_NE(d, nullptr);
  EXPECT_DOUBLE_EQ(d->extra_loss, 0.25);
  EXPECT_EQ(d->extra_one_way, sim::Time::millis(75));
}

TEST(ImpairmentOverlayTest, UplinkLossClampsAndErases) {
  ImpairmentOverlay overlay;
  overlay.set_uplink_loss(IpAddress(1), 2.0);
  EXPECT_DOUBLE_EQ(overlay.uplink_loss(IpAddress(1)), 1.0);
  overlay.set_uplink_loss(IpAddress(1), 0.0);  // <= 0 erases
  EXPECT_FALSE(overlay.active());
}

TEST(ImpairmentOverlayTest, ClearAllReverts) {
  ImpairmentOverlay overlay;
  overlay.set_category_blocked(IspCategory::kTele, true);
  overlay.set_pair_degradation(IspCategory::kTele, IspCategory::kCnc,
                               {0.5, sim::Time::zero()});
  overlay.set_uplink_loss(IpAddress(1), 0.5);
  overlay.clear_all();
  EXPECT_FALSE(overlay.active());
}

class ImpairedTransportTest : public ::testing::Test {
 protected:
  ImpairedTransportTest()
      : network_(simulator_, lossless_latency(), sim::Rng(1)) {
    network_.set_impairments(&overlay_);
  }

  void attach(IpAddress ip, IspCategory cat, std::uint32_t isp,
              std::vector<std::string>* inbox) {
    network_.attach(ip, IspId{isp}, cat, AccessProfile{100e6, 100e6},
                    [inbox](const TestNetwork::Delivery& d) {
                      if (inbox) inbox->push_back(d.payload);
                    });
  }

  sim::Simulator simulator_;
  ImpairmentOverlay overlay_;
  TestNetwork network_;
};

TEST_F(ImpairedTransportTest, InactiveOverlayChangesNothing) {
  std::vector<std::string> inbox;
  attach(IpAddress(1), IspCategory::kTele, 0, nullptr);
  attach(IpAddress(2), IspCategory::kTele, 0, &inbox);
  EXPECT_TRUE(network_.send(IpAddress(1), IpAddress(2), "x", 100));
  simulator_.run();
  EXPECT_EQ(inbox.size(), 1u);
  EXPECT_EQ(network_.stats().blackout_drops, 0u);
}

TEST_F(ImpairedTransportTest, BlackoutDropsBothDirections) {
  std::vector<std::string> tele_inbox, cnc_inbox;
  attach(IpAddress(1), IspCategory::kTele, 0, &tele_inbox);
  attach(IpAddress(2), IspCategory::kCnc, 1, &cnc_inbox);
  overlay_.set_category_blocked(IspCategory::kCnc, true);
  // send() still reports true: the packet left the sender, the network ate
  // it — like real packet loss, the sender cannot tell.
  EXPECT_TRUE(network_.send(IpAddress(1), IpAddress(2), "to", 100));
  EXPECT_TRUE(network_.send(IpAddress(2), IpAddress(1), "from", 100));
  simulator_.run();
  EXPECT_TRUE(tele_inbox.empty());
  EXPECT_TRUE(cnc_inbox.empty());
  EXPECT_EQ(network_.stats().blackout_drops, 2u);

  overlay_.set_category_blocked(IspCategory::kCnc, false);
  network_.send(IpAddress(1), IpAddress(2), "after", 100);
  simulator_.run();
  EXPECT_EQ(cnc_inbox.size(), 1u);
}

TEST_F(ImpairedTransportTest, BlackoutLeavesOtherPairsAlone) {
  std::vector<std::string> inbox;
  attach(IpAddress(1), IspCategory::kTele, 0, nullptr);
  attach(IpAddress(2), IspCategory::kTele, 0, &inbox);
  overlay_.set_category_blocked(IspCategory::kCer, true);
  network_.send(IpAddress(1), IpAddress(2), "x", 100);
  simulator_.run();
  EXPECT_EQ(inbox.size(), 1u);
  EXPECT_EQ(network_.stats().blackout_drops, 0u);
}

TEST_F(ImpairedTransportTest, FullBrownoutDropsEveryUplinkPacket) {
  std::vector<std::string> inbox;
  attach(IpAddress(1), IspCategory::kTele, 0, nullptr);
  attach(IpAddress(2), IspCategory::kTele, 0, &inbox);
  overlay_.set_uplink_loss(IpAddress(1), 1.0);
  for (int i = 0; i < 20; ++i)
    network_.send(IpAddress(1), IpAddress(2), "x", 100);
  // The other direction is not browned out.
  network_.send(IpAddress(2), IpAddress(1), "y", 100);
  simulator_.run();
  EXPECT_TRUE(inbox.empty());
  EXPECT_EQ(network_.stats().brownout_drops, 20u);
  EXPECT_EQ(network_.stats().packets_delivered, 1u);
}

TEST_F(ImpairedTransportTest, PartialBrownoutDropsSome) {
  int received = 0;
  attach(IpAddress(1), IspCategory::kTele, 0, nullptr);
  network_.attach(IpAddress(2), IspId{0}, IspCategory::kTele,
                  AccessProfile{100e6, 100e6},
                  [&](const TestNetwork::Delivery&) { ++received; });
  overlay_.set_uplink_loss(IpAddress(1), 0.5);
  for (int i = 0; i < 500; ++i)
    network_.send(IpAddress(1), IpAddress(2), "x", 10);
  simulator_.run();
  EXPECT_GT(received, 150);
  EXPECT_LT(received, 350);
  EXPECT_EQ(network_.stats().brownout_drops +
                static_cast<std::uint64_t>(received),
            500u);
}

TEST_F(ImpairedTransportTest, DegradedPairLosesAndSlows) {
  attach(IpAddress(1), IspCategory::kTele, 0, nullptr);
  std::vector<sim::Time> arrivals;
  network_.attach(IpAddress(2), IspId{1}, IspCategory::kCnc,
                  AccessProfile{100e6, 100e6},
                  [&](const TestNetwork::Delivery&) {
                    arrivals.push_back(simulator_.now());
                  });
  // Pure-delay degradation first: same path as the baseline test in
  // net_transport_test (70 ms one-way + 2x 80 us serialization), plus the
  // overlay's extra one-way.
  overlay_.set_pair_degradation(IspCategory::kTele, IspCategory::kCnc,
                                {0.0, sim::Time::millis(75)});
  network_.send(IpAddress(1), IpAddress(2), "x", 1000);
  simulator_.run();
  ASSERT_EQ(arrivals.size(), 1u);
  const sim::Time expected = sim::Time::millis(70 + 75) +
                             sim::Time::micros(80) + sim::Time::micros(80);
  EXPECT_EQ(arrivals.front(), expected);

  // Total-loss degradation: nothing arrives, degrade_drops accounts it.
  overlay_.set_pair_degradation(IspCategory::kTele, IspCategory::kCnc,
                                {1.0, sim::Time::zero()});
  for (int i = 0; i < 10; ++i)
    network_.send(IpAddress(1), IpAddress(2), "y", 1000);
  simulator_.run();
  EXPECT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(network_.stats().degrade_drops, 10u);
}

TEST_F(ImpairedTransportTest, DegradationDoesNotTouchIntraIspTraffic) {
  std::vector<std::string> inbox;
  attach(IpAddress(1), IspCategory::kTele, 0, nullptr);
  attach(IpAddress(2), IspCategory::kTele, 0, &inbox);
  overlay_.set_pair_degradation(IspCategory::kTele, IspCategory::kCnc,
                                {1.0, sim::Time::seconds(1)});
  network_.send(IpAddress(1), IpAddress(2), "x", 100);
  simulator_.run();
  EXPECT_EQ(inbox.size(), 1u);
  EXPECT_EQ(network_.stats().degrade_drops, 0u);
}

// --- drop-accounting audit -------------------------------------------------
// Every packet handed to send() must end in exactly one bucket:
// delivered, or one of the drop categories. The categories are disjoint by
// construction (a drop ends the packet); these tests pin the bookkeeping.

using AuditNetwork = Network<int>;

TEST(TransportDropAccountingTest, EveryPacketLandsInExactlyOneBucket) {
  sim::Simulator simulator;
  LatencyConfig cfg;
  cfg.china_cross_loss = 0.2;  // some baseline core loss
  cfg.packet_sigma = 0;
  cfg.pair_sigma = 0;
  AuditNetwork network(simulator, LatencyModel(cfg), sim::Rng(5));
  ImpairmentOverlay overlay;
  network.set_impairments(&overlay);
  overlay.set_pair_degradation(IspCategory::kTele, IspCategory::kCnc,
                               {0.2, sim::Time::zero()});
  overlay.set_uplink_loss(IpAddress(1), 0.2);

  network.attach(IpAddress(1), IspId{0}, IspCategory::kTele,
                 AccessProfile{100e6, 1e6}, nullptr);  // slow uplink
  network.attach(IpAddress(2), IspId{1}, IspCategory::kCnc,
                 AccessProfile{1e6, 100e6},  // slow downlink
                 [](const AuditNetwork::Delivery&) {});

  for (int i = 0; i < 2000; ++i) network.send(IpAddress(1), IpAddress(2), i, 1400);
  // A few to a dead destination as well — from the uncongested host, so the
  // uplink queue cannot eat them before the destination lookup.
  for (int i = 0; i < 10; ++i) network.send(IpAddress(2), IpAddress(9), i, 100);
  simulator.run();

  const auto& s = network.stats();
  EXPECT_EQ(s.packets_sent,
            s.packets_delivered + s.uplink_drops + s.core_drops +
                s.downlink_drops + s.dead_destination_drops +
                s.blackout_drops + s.brownout_drops + s.degrade_drops);
  // The scenario exercises the interesting buckets.
  EXPECT_GT(s.packets_delivered, 0u);
  EXPECT_GT(s.uplink_drops, 0u);
  EXPECT_GT(s.core_drops, 0u);
  EXPECT_GT(s.brownout_drops, 0u);
  EXPECT_GT(s.degrade_drops, 0u);
  EXPECT_EQ(s.dead_destination_drops, 10u);
}

TEST(TransportDropAccountingTest, DeadDestinationCountedOncePerPacket) {
  // Three dead-destination paths share one accounting helper: unknown at
  // send, detached during transit, re-attached (epoch mismatch) at the
  // downlink exit. Each packet is counted exactly once.
  sim::Simulator simulator;
  LatencyConfig cfg;
  cfg.intra_isp_loss = 0;
  cfg.packet_sigma = 0;
  cfg.pair_sigma = 0;
  AuditNetwork network(simulator, LatencyModel(cfg), sim::Rng(1));
  auto attach2 = [&] {
    network.attach(IpAddress(2), IspId{0}, IspCategory::kTele,
                   AccessProfile{100e6, 100e6},
                   [](const AuditNetwork::Delivery&) {});
  };
  network.attach(IpAddress(1), IspId{0}, IspCategory::kTele,
                 AccessProfile{100e6, 100e6}, nullptr);

  network.send(IpAddress(1), IpAddress(9), 0, 100);  // unknown at send time
  simulator.run();
  EXPECT_EQ(network.stats().dead_destination_drops, 1u);

  attach2();
  network.send(IpAddress(1), IpAddress(2), 1, 100);
  network.detach(IpAddress(2));  // gone during transit
  simulator.run();
  EXPECT_EQ(network.stats().dead_destination_drops, 2u);

  attach2();
  network.send(IpAddress(1), IpAddress(2), 2, 100);
  network.detach(IpAddress(2));
  attach2();  // new incarnation: epoch mismatch at delivery
  simulator.run();
  EXPECT_EQ(network.stats().dead_destination_drops, 3u);
  EXPECT_EQ(network.stats().packets_delivered, 0u);
  EXPECT_EQ(network.stats().packets_sent, 3u);
}

}  // namespace
}  // namespace ppsim::net
