// Model-based property test: ChunkStore against a reference implementation
// (an std::set with explicit retention), under random insert/query streams.

#include <gtest/gtest.h>

#include <set>

#include "proto/chunk_store.h"
#include "sim/rng.h"

namespace ppsim::proto {
namespace {

/// Reference semantics: a set of chunks; after each insert, everything
/// below highest - retention + 1 is evicted, and inserts below that bound
/// are rejected.
class ReferenceStore {
 public:
  explicit ReferenceStore(std::uint32_t retention) : retention_(retention) {}

  bool insert(ChunkSeq seq) {
    if (!chunks_.empty() && highest_ >= retention_ &&
        seq <= highest_ - retention_)
      return false;
    if (chunks_.contains(seq)) return false;
    chunks_.insert(seq);
    highest_ = std::max(highest_, seq);
    if (highest_ >= retention_) {
      const ChunkSeq bound = highest_ - retention_ + 1;
      while (!chunks_.empty() && *chunks_.begin() < bound)
        chunks_.erase(chunks_.begin());
    }
    return true;
  }

  bool has(ChunkSeq seq) const { return chunks_.contains(seq); }
  std::uint64_t count() const { return chunks_.size(); }
  ChunkSeq highest() const { return chunks_.empty() ? 0 : highest_; }

 private:
  std::uint32_t retention_;
  std::set<ChunkSeq> chunks_;
  ChunkSeq highest_ = 0;
};

class ChunkStoreProperty
    : public ::testing::TestWithParam<std::pair<std::uint64_t, std::uint32_t>> {
};

TEST_P(ChunkStoreProperty, AgreesWithReference) {
  const auto [seed, retention] = GetParam();
  sim::Rng rng(seed);
  ChunkStore store(retention);
  ReferenceStore reference(retention);

  ChunkSeq cursor = 1;
  for (int op = 0; op < 3000; ++op) {
    // A mix of near-cursor inserts (normal operation), occasional jumps
    // (rejoin after stall), and old-chunk retries.
    ChunkSeq seq;
    const double r = rng.uniform();
    if (r < 0.7) {
      seq = cursor + static_cast<ChunkSeq>(rng.uniform_int(0, 20));
      cursor = std::max(cursor, seq);
    } else if (r < 0.85) {
      const auto back = static_cast<ChunkSeq>(
          rng.uniform_int(0, static_cast<std::int64_t>(retention) * 2));
      seq = cursor > back ? cursor - back : 1;
    } else {
      seq = cursor + static_cast<ChunkSeq>(rng.uniform_int(50, 400));
      cursor = seq;
    }

    ASSERT_EQ(store.insert(seq), reference.insert(seq))
        << "insert(" << seq << ") diverged at op " << op;

    // Spot-check membership around the cursor.
    for (int probe = 0; probe < 5; ++probe) {
      const auto back = static_cast<ChunkSeq>(
          rng.uniform_int(0, static_cast<std::int64_t>(retention) + 10));
      const ChunkSeq q = cursor > back ? cursor - back : 1;
      ASSERT_EQ(store.has(q), reference.has(q)) << "has(" << q << ")";
    }
    ASSERT_EQ(store.chunks_held(), reference.count());
    ASSERT_EQ(store.highest(), reference.highest());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ChunkStoreProperty,
    ::testing::Values(std::make_pair(1ull, 16u), std::make_pair(2ull, 64u),
                      std::make_pair(3ull, 256u), std::make_pair(4ull, 7u),
                      std::make_pair(5ull, 1000u)));

TEST(ChunkStoreSnapshotProperty, SnapshotMatchesMembership) {
  sim::Rng rng(9);
  ChunkStore store(128);
  for (int i = 0; i < 500; ++i)
    store.insert(static_cast<ChunkSeq>(rng.uniform_int(1, 600)));
  const BufferMap map = store.snapshot(store.base());
  for (ChunkSeq seq = store.base(); seq <= store.highest(); ++seq) {
    EXPECT_EQ(map.has(seq), store.has(seq)) << seq;
  }
  EXPECT_EQ(map.highest(), store.highest());
}

}  // namespace
}  // namespace ppsim::proto
