// wire::NodeRunner shutdown ordering (docs/WIRE.md): a node stopped
// mid-run (the SIGTERM path — signal handlers set a flag the run loop
// polls, exactly what the `stop` callback models) must ship its closing
// telemetry snapshot and flush the metrics/samples sinks before the final
// report, so the collector's view and the node's own sink files agree.

#include "wire/node.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/telemetry.h"
#include "wire/clock.h"
#include "wire/collector.h"

namespace ppsim::wire {
namespace {

/// Binds a UDP socket on `ip`:0 and returns {fd, chosen port}.
std::pair<int, std::uint16_t> bind_udp(net::IpAddress ip) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = 0;
  sa.sin_addr.s_addr = htonl(ip.value());
  EXPECT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa), 0);
  socklen_t len = sizeof sa;
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len), 0);
  return {fd, ntohs(sa.sin_port)};
}

std::string registry_ndjson(const obs::MetricsRegistry& registry) {
  std::ostringstream os;
  registry.write_ndjson(os);
  return os.str();
}

TEST(WireNodeShutdown, ClosingSnapshotAndSinksAgreeAfterMidRunStop) {
  // A collector-side receiver socket on its own loopback address.
  const net::IpAddress collect_ip(127, 0, 0, 77);
  const auto [rx_fd, rx_port] = bind_udp(collect_ip);

  // A free shared deployment port for the (single-node) deployment.
  const net::IpAddress node_ip(127, 77, 0, 10);
  const auto [probe_fd, node_port] = bind_udp(node_ip);
  ::close(probe_fd);

  const std::string dir = ::testing::TempDir();
  NodeConfig config;
  config.role = NodeRole::kPeer;
  config.ip = node_ip;
  config.bootstrap = net::IpAddress(127, 77, 0, 1);  // nobody home — fine
  config.tracker = net::IpAddress(127, 77, 0, 2);
  config.source = net::IpAddress(127, 77, 0, 3);
  config.port = node_port;
  config.duration = sim::Time::zero();  // run until stop() fires
  config.metrics_out = dir + "wire_node_shutdown_metrics.ndjson";
  config.samples_out = dir + "wire_node_shutdown_samples.ndjson";
  config.sample_period = sim::Time::millis(100);
  config.telemetry_to =
      collect_ip.to_string() + ":" + std::to_string(rx_port);
  config.telemetry_period = sim::Time::millis(100);

  // Stop mid-run after ~350 ms of wall time — past a few telemetry and
  // sample periods, the way a SIGTERM lands between loop iterations.
  WallClock clock;
  const NodeReport report = run_node(
      config, [&clock] { return clock.now() >= sim::Time::millis(350); });

  EXPECT_GT(report.telemetry_datagrams, 0u);
  EXPECT_GT(report.telemetry_seq, 0u);
  EXPECT_GT(report.samples_recorded, 0u);

  // Drain everything the node sent into a Collector.
  Collector collector(Collector::Config{});
  char buf[65536];
  std::uint64_t received = 0;
  for (;;) {
    const ssize_t n = ::recv(rx_fd, buf, sizeof buf, MSG_DONTWAIT);
    if (n < 0) break;
    ++received;
    collector.ingest(std::string(buf, static_cast<std::size_t>(n)),
                     sim::Time::seconds(1));
  }
  ::close(rx_fd);
  EXPECT_EQ(received, report.telemetry_datagrams);

  // The closing snapshot arrived: node closed, and the collector's
  // last_seq is exactly the report's telemetry_seq — the shutdown pin.
  ASSERT_EQ(collector.node_count(), 1u);
  ASSERT_EQ(collector.closed_count(), 1u);
  std::ostringstream nodes;
  collector.write_node_reports(nodes);
  EXPECT_NE(nodes.str().find("node=" + node_ip.to_string() +
                             " role=peer status=closed last_seq=" +
                             std::to_string(report.telemetry_seq)),
            std::string::npos);

  // The sinks were flushed after the closing snapshot was built from the
  // same live registry, so the offline fold of the node's own files is
  // byte-identical to the collector's fold.
  obs::MetricsRegistry from_sink;
  std::ifstream metrics_in(config.metrics_out);
  ASSERT_TRUE(metrics_in.good());
  std::size_t skipped = 0;
  EXPECT_GT(obs::read_metrics_ndjson(metrics_in, &from_sink, &skipped), 0u);
  EXPECT_EQ(skipped, 0u);

  obs::MetricsRegistry live, offline;
  collector.fold_closed_metrics(&live);
  fold_fleet_metrics({{node_ip, &from_sink}}, &offline);
  EXPECT_EQ(registry_ndjson(live), registry_ndjson(offline));

  std::ifstream samples_in(config.samples_out);
  ASSERT_TRUE(samples_in.good());
  const std::vector<obs::TrafficSample> samples =
      obs::read_samples_ndjson(samples_in);
  ASSERT_FALSE(samples.empty());
  EXPECT_EQ(samples.size(), report.samples_recorded);

  obs::TrafficSample live_m, offline_m;
  ASSERT_TRUE(collector.fold_closed_matrix(&live_m));
  ASSERT_TRUE(
      fold_fleet_matrix({{node_ip, &samples.back()}}, &offline_m));
  std::ostringstream live_row, offline_row;
  obs::write_sample_ndjson(live_row, live_m);
  obs::write_sample_ndjson(offline_row, offline_m);
  EXPECT_EQ(live_row.str(), offline_row.str());
}

TEST(WireNodeShutdown, TelemetryDisabledReportsZeroSeq) {
  const net::IpAddress node_ip(127, 78, 0, 10);
  const auto [probe_fd, node_port] = bind_udp(node_ip);
  ::close(probe_fd);

  NodeConfig config;
  config.role = NodeRole::kPeer;
  config.ip = node_ip;
  config.bootstrap = net::IpAddress(127, 78, 0, 1);
  config.tracker = net::IpAddress(127, 78, 0, 2);
  config.source = net::IpAddress(127, 78, 0, 3);
  config.port = node_port;
  config.duration = sim::Time::millis(80);

  const NodeReport report = run_node(config, [] { return false; });
  EXPECT_EQ(report.telemetry_seq, 0u);
  EXPECT_EQ(report.telemetry_datagrams, 0u);
}

}  // namespace
}  // namespace ppsim::wire
