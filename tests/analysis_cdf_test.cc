#include "analysis/cdf.h"

#include <gtest/gtest.h>

#include <vector>

namespace ppsim::analysis {
namespace {

TEST(CdfTest, EmpiricalCdfMonotone) {
  std::vector<double> xs = {5, 1, 3, 2, 4};
  auto cdf = empirical_cdf(xs);
  ASSERT_EQ(cdf.size(), 5u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GT(cdf[i].value, cdf[i - 1].value);
    EXPECT_GT(cdf[i].fraction, cdf[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  EXPECT_DOUBLE_EQ(cdf.front().fraction, 0.2);
}

TEST(CdfTest, TiesCollapse) {
  std::vector<double> xs = {1, 1, 1, 2};
  auto cdf = empirical_cdf(xs);
  ASSERT_EQ(cdf.size(), 2u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].fraction, 0.75);
  EXPECT_DOUBLE_EQ(cdf[1].fraction, 1.0);
}

TEST(CdfTest, EmptyInput) {
  EXPECT_TRUE(empirical_cdf({}).empty());
  EXPECT_TRUE(cumulative_share({}).empty());
  EXPECT_DOUBLE_EQ(top_share({}, 0.1), 0.0);
}

TEST(CumulativeShareTest, SortsDescendingAndNormalizes) {
  std::vector<double> xs = {1, 7, 2};
  auto curve = cumulative_share(xs);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[0], 0.7);
  EXPECT_DOUBLE_EQ(curve[1], 0.9);
  EXPECT_DOUBLE_EQ(curve[2], 1.0);
}

TEST(CumulativeShareTest, AllZeroContributions) {
  std::vector<double> xs = {0, 0, 0};
  auto curve = cumulative_share(xs);
  for (double v : curve) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(TopShareTest, TopTenPercent) {
  // 10 peers; the single top peer contributes 91/100.
  std::vector<double> xs = {91, 1, 1, 1, 1, 1, 1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(top_share(xs, 0.10), 0.91);
}

TEST(TopShareTest, RoundsUpPeerCount) {
  // 15 peers, top 10% => ceil(1.5) = 2 peers.
  std::vector<double> xs(15, 1.0);
  xs[0] = 10;
  xs[1] = 5;
  const double expected = 15.0 / (15.0 + 13.0);
  EXPECT_NEAR(top_share(xs, 0.10), expected, 1e-12);
}

TEST(TopShareTest, FullFractionIsEverything) {
  std::vector<double> xs = {3, 2, 1};
  EXPECT_DOUBLE_EQ(top_share(xs, 1.0), 1.0);
}

TEST(TopShareTest, UniformContributionsAreProportional) {
  std::vector<double> xs(100, 2.0);
  EXPECT_NEAR(top_share(xs, 0.10), 0.10, 1e-12);
  EXPECT_NEAR(top_share(xs, 0.50), 0.50, 1e-12);
}

}  // namespace
}  // namespace ppsim::analysis
