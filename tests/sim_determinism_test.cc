// Runtime half of the determinism guarantee (the static half is the
// ppsim-audit framework, tools/lint/): the same seed must produce a bit-identical event
// stream. Each scenario is run twice and the full delivered-datagram
// stream — timestamps, endpoints, sizes, payload kinds, in order — is
// folded into a hash; the runs must agree exactly. Distinct seeds must
// diverge, proving the hash actually covers the stream.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "obs/trace.h"
#include "proto_testutil.h"
#include "sim/rng.h"
#include "workload/scenario.h"

namespace ppsim {
namespace {

using proto::testing::MiniWorld;

/// Runs a small swarm (one source, one tracker, five clients across three
/// ISP categories) and hashes every delivered datagram through the
/// network's global tap.
std::uint64_t mini_world_stream_hash(std::uint64_t seed) {
  MiniWorld world{seed};
  std::uint64_t h = 0x9E3779B97F4A7C15ULL;
  world.network().set_global_tap(
      [&](const net::Endpoint& from, const net::Endpoint& to,
          const proto::Message& m, std::uint64_t bytes) {
        h = sim::hash_combine(
            h, static_cast<std::uint64_t>(world.network().now().as_micros()));
        h = sim::hash_combine(h, from.ip.value());
        h = sim::hash_combine(h, to.ip.value());
        h = sim::hash_combine(h, static_cast<std::uint64_t>(m.index()));
        h = sim::hash_combine(h, bytes);
      });
  std::vector<proto::Peer*> peers;
  peers.push_back(&world.add_peer(net::IspCategory::kTele));
  peers.push_back(&world.add_peer(net::IspCategory::kTele));
  peers.push_back(&world.add_peer(net::IspCategory::kCnc));
  peers.push_back(&world.add_peer(net::IspCategory::kCnc));
  peers.push_back(&world.add_peer(net::IspCategory::kForeign));
  for (auto* p : peers) p->join();
  world.simulator().run_until(sim::Time::minutes(2));
  // Fold in end-state observables so divergence after the last datagram
  // would be caught too.
  for (auto* p : peers) {
    h = sim::hash_combine(h, p->counters().bytes_downloaded);
    h = sim::hash_combine(h, p->counters().chunks_played);
    for (const auto& ip : p->neighbor_ips())
      h = sim::hash_combine(h, ip.value());
  }
  h = sim::hash_combine(h, world.simulator().events_executed());
  return h;
}

TEST(DeterminismTest, IdenticalSeedsProduceIdenticalStreams) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const std::uint64_t first = mini_world_stream_hash(seed);
    const std::uint64_t second = mini_world_stream_hash(seed);
    EXPECT_EQ(first, second) << "seed " << seed
                             << ": repeated run diverged — the event core "
                                "leaked non-determinism";
  }
}

TEST(DeterminismTest, DistinctSeedsProduceDistinctStreams) {
  // Guards against a degenerate hash (or a seed that never reaches the
  // RNG): every pair of seeds 1..5 must disagree.
  std::vector<std::uint64_t> hashes;
  for (std::uint64_t seed = 1; seed <= 5; ++seed)
    hashes.push_back(mini_world_stream_hash(seed));
  for (std::size_t i = 0; i < hashes.size(); ++i)
    for (std::size_t j = i + 1; j < hashes.size(); ++j)
      EXPECT_NE(hashes[i], hashes[j])
          << "seeds " << i + 1 << " and " << j + 1 << " collided";
}

/// Hash of everything run_experiment reports: the swarm ground truth, the
/// probe's trace analysis inputs, and every session record.
std::uint64_t experiment_hash(std::uint64_t seed) {
  core::ExperimentConfig config;
  config.scenario = workload::popular_channel();
  config.scenario.viewers = 40;
  config.scenario.duration = sim::Time::minutes(3);
  config.scenario.seed = seed;
  config.probes = {core::tele_probe()};
  const auto result = core::run_experiment(config);

  std::uint64_t h = 0;
  for (const auto& row : result.traffic.bytes)
    for (const auto b : row) h = sim::hash_combine(h, b);
  h = sim::hash_combine(h, result.swarm.events_executed);
  h = sim::hash_combine(h, result.swarm.packets_delivered);
  h = sim::hash_combine(h, result.swarm.peers_spawned);
  for (const auto& probe : result.probes) {
    h = sim::hash_combine(h, probe.ip.value());
    h = sim::hash_combine(h, probe.counters.bytes_downloaded);
    h = sim::hash_combine(h, probe.counters.data_requests_sent);
  }
  for (const auto& s : result.sessions) {
    h = sim::hash_combine(h,
                          static_cast<std::uint64_t>(s.joined.as_micros()));
    h = sim::hash_combine(h, s.bytes_downloaded);
  }
  return h;
}

TEST(DeterminismTest, NeighborTraversalIsIpOrdered) {
  // Regression for the unordered→ordered container switch in proto: peer
  // neighbor state iterates in IP order, never hash order, so peer lists,
  // buffer-map fanout, and victim selection are independent of the standard
  // library's hash seed. neighbor_ips() surfaces the traversal order
  // directly — it must come back sorted.
  MiniWorld world{3};
  std::vector<proto::Peer*> peers;
  for (int i = 0; i < 6; ++i)
    peers.push_back(&world.add_peer(i % 2 == 0 ? net::IspCategory::kTele
                                               : net::IspCategory::kCnc));
  for (auto* p : peers) p->join();
  world.simulator().run_until(sim::Time::minutes(2));
  std::size_t checked = 0;
  for (auto* p : peers) {
    const auto ips = p->neighbor_ips();
    if (ips.size() >= 2) ++checked;
    EXPECT_TRUE(std::is_sorted(ips.begin(), ips.end()));
  }
  ASSERT_GT(checked, 0u) << "no peer built a multi-neighbor view to check";
}

TEST(DeterminismTest, FullExperimentIsSeedReproducible) {
  // The whole stack — workload generation, churn, capture, analysis —
  // must be a pure function of the seed.
  EXPECT_EQ(experiment_hash(7), experiment_hash(7));
  EXPECT_NE(experiment_hash(7), experiment_hash(8));
}

/// Serialized NDJSON trace of a seeded experiment: every protocol event
/// from every peer, tracker, and source, in execution order.
std::string experiment_trace(std::uint64_t seed) {
  core::ExperimentConfig config;
  config.scenario = workload::unpopular_channel();
  config.scenario.viewers = 25;
  config.scenario.duration = sim::Time::minutes(2);
  config.scenario.seed = seed;
  config.probes = {core::tele_probe()};
  std::ostringstream os;
  obs::NdjsonTraceSink sink(os);
  config.observability.trace = &sink;
  core::run_experiment(config);
  return os.str();
}

TEST(DeterminismTest, TraceIsByteIdenticalAcrossSameSeedRuns) {
  // The trace carries sim-timestamps, IPs, and chunk numbers but no
  // wall-clock and no addresses, so two same-seed runs must serialize to
  // exactly the same bytes — the strongest observable determinism check:
  // any divergence anywhere in the event stream lands in some line.
  const std::string first = experiment_trace(7);
  const std::string second = experiment_trace(7);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "same-seed traces diverged";
}

TEST(DeterminismTest, TraceDivergesAcrossSeeds) {
  // Proves the trace actually covers the run (a constant or empty trace
  // would pass the identity check vacuously).
  EXPECT_NE(experiment_trace(7), experiment_trace(8));
}

}  // namespace
}  // namespace ppsim
