#include "capture/analyzer.h"

#include <gtest/gtest.h>

#include "net/asn_db.h"

namespace ppsim::capture {
namespace {

constexpr std::uint32_t kTeleBase = 0x0A000000;     // 10.0.0.0/8
constexpr std::uint32_t kCncBase = 0x14000000;      // 20.0.0.0/8
constexpr std::uint32_t kForeignBase = 0x1E000000;  // 30.0.0.0/8

net::IpAddress tele(std::uint32_t i) { return net::IpAddress(kTeleBase + i); }
net::IpAddress cnc(std::uint32_t i) { return net::IpAddress(kCncBase + i); }
net::IpAddress foreign(std::uint32_t i) {
  return net::IpAddress(kForeignBase + i);
}

class AnalyzerTest : public ::testing::Test {
 protected:
  AnalyzerTest() {
    db_.insert(net::Prefix(net::IpAddress(10, 0, 0, 0), 8), 1, "TELE",
               net::IspCategory::kTele);
    db_.insert(net::Prefix(net::IpAddress(20, 0, 0, 0), 8), 2, "CNC",
               net::IspCategory::kCnc);
    db_.insert(net::Prefix(net::IpAddress(30, 0, 0, 0), 8), 3, "FOREIGN",
               net::IspCategory::kForeign);
    probe_ = tele(99);
  }

  void out(sim::Time t, net::IpAddress remote, proto::Message m) {
    trace_.push_back(TraceRecord{t, net::Direction::kOutgoing, probe_, remote,
                                 proto::wire_size(m), std::move(m)});
  }
  void in(sim::Time t, net::IpAddress remote, proto::Message m) {
    trace_.push_back(TraceRecord{t, net::Direction::kIncoming, probe_, remote,
                                 proto::wire_size(m), std::move(m)});
  }

  TraceAnalysis analyze() {
    return analyze_trace(trace_, db_, probe_, trackers_);
  }

  net::AsnDatabase db_;
  net::IpAddress probe_;
  std::unordered_set<net::IpAddress> trackers_;
  PacketTrace trace_;
};

TEST_F(AnalyzerTest, EmptyTrace) {
  auto a = analyze();
  EXPECT_EQ(a.returned_addresses.total(), 0u);
  EXPECT_EQ(a.data_transmissions.total(), 0u);
  EXPECT_TRUE(a.peers.empty());
  EXPECT_DOUBLE_EQ(a.byte_locality(net::IspCategory::kTele), 0.0);
}

TEST_F(AnalyzerTest, ReturnedAddressesKeepDuplicates) {
  // Two replies listing overlapping peers: duplicates count (Fig 2a), and
  // the unique count is tracked separately.
  in(sim::Time::seconds(1), tele(1),
     proto::Message{proto::PeerListReply{1, {tele(2), tele(3), cnc(1)}}});
  in(sim::Time::seconds(2), tele(1),
     proto::Message{proto::PeerListReply{1, {tele(2), cnc(1)}}});
  auto a = analyze();
  EXPECT_EQ(a.returned_addresses.total(), 5u);
  EXPECT_EQ(a.returned_addresses.get(net::IspCategory::kTele), 3u);
  EXPECT_EQ(a.returned_addresses.get(net::IspCategory::kCnc), 2u);
  EXPECT_EQ(a.unique_listed_ips, 3u);
  EXPECT_EQ(a.lists_from_peers, 2u);
}

TEST_F(AnalyzerTest, TrackerAndPeerListsSeparated) {
  trackers_.insert(cnc(50));
  in(sim::Time::seconds(1), cnc(50),
     proto::Message{proto::TrackerReply{1, {tele(1), cnc(1)}}});
  in(sim::Time::seconds(2), tele(7),
     proto::Message{proto::PeerListReply{1, {tele(2)}}});
  auto a = analyze();
  EXPECT_EQ(a.lists_from_trackers, 1u);
  EXPECT_EQ(a.lists_from_peers, 1u);
  // Rows: CNC tracker and TELE peer.
  ASSERT_EQ(a.list_sources.size(), 2u);
  bool saw_tracker_row = false, saw_peer_row = false;
  for (const auto& row : a.list_sources) {
    if (row.replier_is_tracker) {
      saw_tracker_row = true;
      EXPECT_EQ(row.replier_category, net::IspCategory::kCnc);
      EXPECT_EQ(row.listed.total(), 2u);
    } else {
      saw_peer_row = true;
      EXPECT_EQ(row.replier_category, net::IspCategory::kTele);
      EXPECT_EQ(row.listed.total(), 1u);
    }
  }
  EXPECT_TRUE(saw_tracker_row);
  EXPECT_TRUE(saw_peer_row);
}

TEST_F(AnalyzerTest, DataMatchingByRemoteAndChunk) {
  out(sim::Time::millis(1000), tele(1), proto::Message{proto::DataQuery{1, 5}});
  out(sim::Time::millis(1100), cnc(1), proto::Message{proto::DataQuery{1, 6}});
  in(sim::Time::millis(1200), tele(1),
     proto::Message{proto::DataReply{1, 5, 8, 11040}});
  // Reply from the wrong peer for chunk 6 is ignored.
  in(sim::Time::millis(1300), tele(1),
     proto::Message{proto::DataReply{1, 6, 8, 11040}});
  auto a = analyze();
  EXPECT_EQ(a.data_transmissions.total(), 1u);
  EXPECT_EQ(a.data_transmissions.get(net::IspCategory::kTele), 1u);
  EXPECT_EQ(a.data_bytes.get(net::IspCategory::kTele), 11040u);
  ASSERT_EQ(a.data_responses.size(), 1u);
  EXPECT_NEAR(a.data_responses[0].response_seconds, 0.2, 1e-9);
}

TEST_F(AnalyzerTest, ByteLocalityComputed) {
  out(sim::Time::millis(0), tele(1), proto::Message{proto::DataQuery{1, 1}});
  in(sim::Time::millis(10), tele(1),
     proto::Message{proto::DataReply{1, 1, 8, 3000}});
  out(sim::Time::millis(20), cnc(1), proto::Message{proto::DataQuery{1, 2}});
  in(sim::Time::millis(30), cnc(1),
     proto::Message{proto::DataReply{1, 2, 8, 1000}});
  auto a = analyze();
  EXPECT_DOUBLE_EQ(a.byte_locality(net::IspCategory::kTele), 0.75);
  EXPECT_DOUBLE_EQ(a.transmission_locality(net::IspCategory::kTele), 0.5);
}

TEST_F(AnalyzerTest, PeerListResponseMatchedToLatestRequest) {
  // Paper methodology: a reply matches the latest outstanding request to
  // the same IP; the overwritten earlier request counts as unanswered.
  out(sim::Time::seconds(1), tele(1), proto::Message{proto::PeerListQuery{1, {}}});
  out(sim::Time::seconds(5), tele(1), proto::Message{proto::PeerListQuery{1, {}}});
  in(sim::Time::seconds(6), tele(1),
     proto::Message{proto::PeerListReply{1, {}}});
  auto a = analyze();
  ASSERT_EQ(a.list_responses.size(), 1u);
  EXPECT_NEAR(a.list_responses[0].response_seconds, 1.0, 1e-9);
  EXPECT_EQ(a.list_requests_unanswered, 1u);
}

TEST_F(AnalyzerTest, UnansweredOutstandingCounted) {
  out(sim::Time::seconds(1), tele(1), proto::Message{proto::PeerListQuery{1, {}}});
  out(sim::Time::seconds(1), cnc(1), proto::Message{proto::PeerListQuery{1, {}}});
  in(sim::Time::seconds(2), tele(1),
     proto::Message{proto::PeerListReply{1, {}}});
  auto a = analyze();
  EXPECT_EQ(a.list_requests_unanswered, 1u);
}

TEST_F(AnalyzerTest, ResponseGroupsUseThreeWaySplit) {
  out(sim::Time::seconds(1), tele(1), proto::Message{proto::PeerListQuery{1, {}}});
  in(sim::Time::seconds(2), tele(1), proto::Message{proto::PeerListReply{1, {}}});
  out(sim::Time::seconds(3), cnc(1), proto::Message{proto::PeerListQuery{1, {}}});
  in(sim::Time::seconds(4), cnc(1), proto::Message{proto::PeerListReply{1, {}}});
  out(sim::Time::seconds(5), foreign(1),
      proto::Message{proto::PeerListQuery{1, {}}});
  in(sim::Time::seconds(7), foreign(1),
     proto::Message{proto::PeerListReply{1, {}}});
  auto a = analyze();
  EXPECT_DOUBLE_EQ(a.avg_list_response(net::ResponseGroup::kTele), 1.0);
  EXPECT_DOUBLE_EQ(a.avg_list_response(net::ResponseGroup::kCnc), 1.0);
  EXPECT_DOUBLE_EQ(a.avg_list_response(net::ResponseGroup::kOther), 2.0);
  EXPECT_EQ(a.response_count(a.list_responses, net::ResponseGroup::kTele), 1u);
}

TEST_F(AnalyzerTest, PeerActivityAggregates) {
  for (int i = 0; i < 5; ++i) {
    out(sim::Time::millis(i * 100), tele(1),
        proto::Message{proto::DataQuery{1, static_cast<proto::ChunkSeq>(i)}});
    in(sim::Time::millis(i * 100 + 50), tele(1),
       proto::Message{
           proto::DataReply{1, static_cast<proto::ChunkSeq>(i), 8, 1000}});
  }
  out(sim::Time::seconds(1), cnc(1), proto::Message{proto::DataQuery{1, 100}});
  in(sim::Time::seconds(2), cnc(1),
     proto::Message{proto::DataReply{1, 100, 8, 1000}});
  auto a = analyze();
  ASSERT_EQ(a.peers.size(), 2u);
  // Sorted by matched requests, descending.
  EXPECT_EQ(a.peers[0].ip, tele(1));
  EXPECT_EQ(a.peers[0].data_requests_matched, 5u);
  EXPECT_EQ(a.peers[0].bytes_contributed, 5000u);
  EXPECT_NEAR(a.peers[0].min_response_seconds, 0.05, 1e-9);
  EXPECT_EQ(a.peers[1].data_requests_matched, 1u);
  EXPECT_EQ(a.unique_data_peers.total(), 2u);
  EXPECT_EQ(a.unique_data_peers.get(net::IspCategory::kTele), 1u);
}

TEST_F(AnalyzerTest, RankSeriesAndShares) {
  // Three peers: 8, 1, 1 matched transmissions.
  auto feed = [&](net::IpAddress ip, int n, proto::ChunkSeq base) {
    for (int i = 0; i < n; ++i) {
      out(sim::Time::millis(base * 10 + i), ip,
          proto::Message{proto::DataQuery{1, base + static_cast<proto::ChunkSeq>(i)}});
      in(sim::Time::millis(base * 10 + i + 5), ip,
         proto::Message{proto::DataReply{
             1, base + static_cast<proto::ChunkSeq>(i), 8, 100}});
    }
  };
  feed(tele(1), 8, 0);
  feed(cnc(1), 1, 1000);
  feed(foreign(1), 1, 2000);
  auto a = analyze();
  auto ranked = a.request_rank_series();
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_DOUBLE_EQ(ranked[0], 8.0);
  EXPECT_DOUBLE_EQ(ranked[1], 1.0);
  // Top 1/3 of peers (= the top peer, ceil(0.34*3)=2? no: 0.34*3=1.02 =>
  // ceil=2)... use exact: top_share with fraction 1/3 picks ceil(1)=1 peer.
  EXPECT_NEAR(a.top_request_share(1.0 / 3.0), 0.8, 1e-9);
}

TEST_F(AnalyzerTest, RttCorrelationNegativeWhenFastPeersGetMore) {
  // Construct: peers with smaller response times receive more requests.
  for (int p = 1; p <= 10; ++p) {
    const auto ip = tele(static_cast<std::uint32_t>(p));
    const int requests = 2 + (10 - p) * 5;  // p=1 fastest & most requested
    for (int i = 0; i < requests; ++i) {
      const auto chunk =
          static_cast<proto::ChunkSeq>(p * 1000 + i);
      const auto t0 = sim::Time::millis(p * 10000 + i * 10);
      out(t0, ip, proto::Message{proto::DataQuery{1, chunk}});
      in(t0 + sim::Time::millis(p * 5), ip,
         proto::Message{proto::DataReply{1, chunk, 8, 100}});
    }
  }
  auto a = analyze();
  EXPECT_LT(a.rtt_request_correlation(), -0.7);
}

TEST_F(AnalyzerTest, UnknownIpFallsBackToForeign) {
  const net::IpAddress unknown(0x7F000001);
  in(sim::Time::seconds(1), tele(1),
     proto::Message{proto::PeerListReply{1, {unknown}}});
  auto a = analyze();
  EXPECT_EQ(a.returned_addresses.get(net::IspCategory::kForeign), 1u);
}

TEST(IspHistogramTest, Shares) {
  IspHistogram h;
  h.add(net::IspCategory::kTele, 3);
  h.add(net::IspCategory::kCnc);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.share(net::IspCategory::kTele), 0.75);
  EXPECT_DOUBLE_EQ(h.share(net::IspCategory::kCer), 0.0);
}

}  // namespace
}  // namespace ppsim::capture
