#include "analysis/goodness.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/stats.h"
#include "sim/rng.h"

namespace ppsim::analysis {
namespace {

TEST(WeibullTest, CdfBasics) {
  Weibull w{2.0, 1.0};  // exponential with mean 2
  EXPECT_DOUBLE_EQ(w.cdf(0), 0.0);
  EXPECT_DOUBLE_EQ(w.cdf(-1), 0.0);
  EXPECT_NEAR(w.cdf(2.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(w.ccdf(2.0), std::exp(-1.0), 1e-12);
}

TEST(WeibullTest, QuantileInvertsCdf) {
  Weibull w{3.5, 0.6};
  for (double p : {0.01, 0.25, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(w.cdf(w.quantile(p)), p, 1e-10);
  }
}

TEST(WeibullTest, QuantileMonotone) {
  Weibull w{1.0, 2.0};
  double last = 0;
  for (double p = 0.05; p < 1.0; p += 0.05) {
    const double q = w.quantile(p);
    EXPECT_GT(q, last);
    last = q;
  }
}

class WeibullFitRecovery
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(WeibullFitRecovery, RecoversParameters) {
  const auto [lambda, k] = GetParam();
  sim::Rng rng(31);
  std::vector<double> samples;
  samples.reserve(20000);
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.weibull(lambda, k));
  auto fit = fit_weibull(samples);
  EXPECT_NEAR(fit.dist.k, k, k * 0.05);
  EXPECT_NEAR(fit.dist.lambda, lambda, lambda * 0.05);
  EXPECT_GT(fit.r2, 0.98);
  // And the fitted distribution passes a KS check against the data.
  EXPECT_LT(ks_statistic(samples, fit.dist), 0.02);
}

INSTANTIATE_TEST_SUITE_P(Params, WeibullFitRecovery,
                         ::testing::Values(std::make_pair(1.0, 0.6),
                                           std::make_pair(5.0, 1.0),
                                           std::make_pair(2.0, 2.0),
                                           std::make_pair(10.0, 0.35)));

TEST(WeibullFitTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(fit_weibull({}).r2, 0.0);
  std::vector<double> two = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(fit_weibull(two).r2, 0.0);
  std::vector<double> negatives = {-1.0, -2.0, -3.0, -4.0};
  EXPECT_DOUBLE_EQ(fit_weibull(negatives).r2, 0.0);
}

TEST(KsTest, DetectsWrongDistribution) {
  sim::Rng rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(rng.weibull(1.0, 0.5));
  Weibull right{1.0, 0.5};
  Weibull wrong{1.0, 2.0};
  EXPECT_LT(ks_statistic(samples, right), 0.03);
  EXPECT_GT(ks_statistic(samples, wrong), 0.2);
}

TEST(KsTest, EmptySamples) {
  EXPECT_DOUBLE_EQ(ks_statistic({}, Weibull{1, 1}), 0.0);
}

TEST(BootstrapTest, MeanIntervalCoversTruth) {
  sim::Rng rng(11);
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(rng.normal(10.0, 2.0));
  auto interval = bootstrap_mean(samples, rng);
  EXPECT_NEAR(interval.estimate, 10.0, 0.5);
  EXPECT_LT(interval.lo, interval.estimate);
  EXPECT_GT(interval.hi, interval.estimate);
  EXPECT_LT(interval.lo, 10.0);
  EXPECT_GT(interval.hi, 10.0);
  // The 95% interval for n=500, sd=2 is roughly +-0.18.
  EXPECT_LT(interval.hi - interval.lo, 0.8);
}

TEST(BootstrapTest, EmptySamples) {
  sim::Rng rng(1);
  auto interval = bootstrap_mean({}, rng);
  EXPECT_DOUBLE_EQ(interval.estimate, 0.0);
  EXPECT_DOUBLE_EQ(interval.lo, 0.0);
  EXPECT_DOUBLE_EQ(interval.hi, 0.0);
}

TEST(BootstrapTest, CustomStatistic) {
  sim::Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 400; ++i) samples.push_back(rng.uniform(0.0, 1.0));
  auto interval = bootstrap_statistic(samples, rng, &median);
  EXPECT_NEAR(interval.estimate, 0.5, 0.1);
  EXPECT_LE(interval.lo, interval.estimate);
  EXPECT_GE(interval.hi, interval.estimate);
}

TEST(BootstrapTest, DeterministicGivenRng) {
  std::vector<double> samples = {1, 2, 3, 4, 5, 6, 7, 8};
  sim::Rng a(5), b(5);
  auto ia = bootstrap_mean(samples, a);
  auto ib = bootstrap_mean(samples, b);
  EXPECT_DOUBLE_EQ(ia.lo, ib.lo);
  EXPECT_DOUBLE_EQ(ia.hi, ib.hi);
}

}  // namespace
}  // namespace ppsim::analysis
