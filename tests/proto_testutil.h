#pragma once

// Shared fixture for protocol-level tests: a tiny deterministic world with
// one bootstrap server, one tracker, one stream source, and helpers to add
// clients. The latency model is made lossless/jitter-free so tests can
// reason about exact behaviour.

#include <memory>
#include <vector>

#include "net/latency.h"
#include "net/prefix_alloc.h"
#include "net/transport.h"
#include "proto/bootstrap.h"
#include "proto/peer.h"
#include "proto/source.h"
#include "proto/tracker.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace ppsim::proto::testing {

inline net::LatencyModel quiet_latency() {
  net::LatencyConfig cfg;
  cfg.intra_isp_loss = 0;
  cfg.china_cross_loss = 0;
  cfg.transoceanic_loss = 0;
  cfg.foreign_cross_loss = 0;
  cfg.packet_sigma = 0;
  cfg.pair_sigma = 0;
  return net::LatencyModel(cfg);
}

class MiniWorld {
 public:
  explicit MiniWorld(std::uint64_t seed = 1,
                     ChannelSpec channel = ChannelSpec{1, "test", 400e3, 1380,
                                                       8})
      : rng_(seed),
        registry_(net::IspRegistry::standard_topology()),
        allocator_(registry_),
        network_(simulator_, quiet_latency(), rng_.fork(0)),
        channel_(channel) {
    bootstrap_ = std::make_unique<BootstrapServer>(
        simulator_, network_, identity(net::IspCategory::kTele));
    auto tracker_identity = identity(net::IspCategory::kTele);
    tracker_ = std::make_unique<TrackerServer>(simulator_, network_,
                                               tracker_identity, rng_.fork(1));
    auto source_identity = identity(net::IspCategory::kTele);
    source_identity.profile = net::AccessProfile{1e9, 1e9};
    source_ = std::make_unique<StreamSource>(
        simulator_, network_, source_identity, channel_,
        std::vector<net::IpAddress>{tracker_->ip()}, rng_.fork(2));

    BootstrapServer::ChannelEntry entry;
    entry.channel = channel_.id;
    entry.source = source_->ip();
    entry.tracker_groups = {{tracker_->ip()}};
    bootstrap_->register_channel(std::move(entry));
    source_->start();
  }

  HostIdentity identity(net::IspCategory category) {
    const auto ids = registry_.in_category(category);
    const net::IspId isp = ids.front();
    net::AccessProfile profile{50e6, 50e6};
    return HostIdentity{allocator_.allocate(isp), isp, category, profile};
  }

  Peer& add_peer(net::IspCategory category, PeerConfig config = {},
                 std::unique_ptr<SelectionPolicy> policy = nullptr) {
    auto id = identity(category);
    peers_.push_back(std::make_unique<Peer>(
        simulator_, network_, id, channel_, bootstrap_->ip(),
        rng_.fork(100 + peers_.size()), config, std::move(policy)));
    return *peers_.back();
  }

  sim::Simulator& simulator() { return simulator_; }
  PeerNetwork& network() { return network_; }
  BootstrapServer& bootstrap() { return *bootstrap_; }
  TrackerServer& tracker() { return *tracker_; }
  StreamSource& source() { return *source_; }
  const ChannelSpec& channel() const { return channel_; }

 private:
  sim::Rng rng_;
  net::IspRegistry registry_;
  net::PrefixAllocator allocator_;
  sim::Simulator simulator_;
  PeerNetwork network_;
  ChannelSpec channel_;
  std::unique_ptr<BootstrapServer> bootstrap_;
  std::unique_ptr<TrackerServer> tracker_;
  std::unique_ptr<StreamSource> source_;
  std::vector<std::unique_ptr<Peer>> peers_;
};

}  // namespace ppsim::proto::testing
