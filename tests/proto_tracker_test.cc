#include "proto/tracker.h"

#include <gtest/gtest.h>

#include <set>

#include "proto_testutil.h"

namespace ppsim::proto {
namespace {

using testing::MiniWorld;

/// Bare client that records tracker replies.
class RecordingClient {
 public:
  RecordingClient(MiniWorld& world, net::IspCategory cat)
      : world_(world), identity_(world.identity(cat)) {
    world_.network().attach(identity_.ip, identity_.isp, identity_.category,
                            identity_.profile,
                            [this](const PeerNetwork::Delivery& d) {
                              if (const auto* r =
                                      std::get_if<TrackerReply>(&d.payload))
                                replies_.push_back(*r);
                            });
  }

  void query(ChannelId channel) {
    Message m{TrackerQuery{channel}};
    world_.network().send(identity_.ip, world_.tracker().ip(), m,
                          wire_size(m));
  }

  net::IpAddress ip() const { return identity_.ip; }
  const std::vector<TrackerReply>& replies() const { return replies_; }

 private:
  MiniWorld& world_;
  HostIdentity identity_;
  std::vector<TrackerReply> replies_;
};

TEST(TrackerTest, QueryRegistersAndReturnsOthers) {
  MiniWorld world;
  RecordingClient a(world, net::IspCategory::kTele);
  RecordingClient b(world, net::IspCategory::kCnc);

  a.query(1);
  world.simulator().run_until(sim::Time::seconds(1));
  // First querier sees only previously announced members (the source).
  ASSERT_EQ(a.replies().size(), 1u);
  EXPECT_EQ(world.tracker().member_count(1), 2u);  // source + a

  b.query(1);
  world.simulator().run_until(sim::Time::seconds(2));
  ASSERT_EQ(b.replies().size(), 1u);
  std::set<net::IpAddress> listed(b.replies()[0].peers.begin(),
                                  b.replies()[0].peers.end());
  EXPECT_TRUE(listed.contains(a.ip()));
  EXPECT_FALSE(listed.contains(b.ip())) << "client must not be told itself";
}

TEST(TrackerTest, PerChannelIsolation) {
  MiniWorld world;
  RecordingClient a(world, net::IspCategory::kTele);
  RecordingClient b(world, net::IspCategory::kTele);
  a.query(1);
  b.query(2);
  world.simulator().run_until(sim::Time::seconds(1));
  EXPECT_EQ(world.tracker().member_count(2), 1u);
  ASSERT_EQ(b.replies().size(), 1u);
  EXPECT_TRUE(b.replies()[0].peers.empty());
}

TEST(TrackerTest, EntriesExpire) {
  MiniWorld world;
  RecordingClient a(world, net::IspCategory::kTele);
  a.query(1);
  world.simulator().run_until(sim::Time::seconds(1));
  EXPECT_EQ(world.tracker().member_count(1), 2u);
  // Stop the source's refresh so everything can expire.
  world.source().stop();
  world.simulator().run_until(sim::Time::minutes(10));
  EXPECT_EQ(world.tracker().member_count(1), 0u);
}

TEST(TrackerTest, RefreshKeepsEntryAlive) {
  MiniWorld world;
  RecordingClient a(world, net::IspCategory::kTele);
  for (int i = 0; i < 10; ++i) {
    world.simulator().schedule(sim::Time::minutes(i), [&] { a.query(1); });
  }
  world.simulator().run_until(sim::Time::minutes(9));
  EXPECT_GE(world.tracker().member_count(1), 1u);
}

TEST(TrackerTest, ReplyCapped) {
  TrackerServer::Config cfg;
  cfg.max_reply_peers = 5;
  MiniWorld world;
  // Build a dedicated capped tracker.
  auto identity = world.identity(net::IspCategory::kCnc);
  TrackerServer capped(world.simulator(), world.network(), identity,
                       sim::Rng(9), cfg);
  std::vector<RecordingClient> clients;
  clients.reserve(10);
  for (int i = 0; i < 10; ++i)
    clients.emplace_back(world, net::IspCategory::kTele);
  // Announce all ten to the capped tracker.
  for (auto& c : clients) {
    Message m{TrackerQuery{1}};
    world.network().send(c.ip(), capped.ip(), m, wire_size(m));
  }
  world.simulator().run_until(sim::Time::seconds(2));
  RecordingClient probe(world, net::IspCategory::kTele);
  Message m{TrackerQuery{1}};
  world.network().send(probe.ip(), capped.ip(), m, wire_size(m));
  world.simulator().run_until(sim::Time::seconds(4));
  ASSERT_EQ(probe.replies().size(), 1u);
  EXPECT_EQ(probe.replies()[0].peers.size(), 5u);
}

TEST(TrackerTest, LocalityAwareTrackerPrefersSameIsp) {
  MiniWorld world;
  net::IspRegistry registry = net::IspRegistry::standard_topology();
  net::AsnDatabase db = net::AsnDatabase::from_registry(registry);
  TrackerServer::Config cfg;
  cfg.locality_db = &db;
  cfg.max_reply_peers = 3;
  auto identity = world.identity(net::IspCategory::kCnc);
  TrackerServer aware(world.simulator(), world.network(), identity,
                      sim::Rng(3), cfg);

  // Register 4 TELE members and 4 CNC members.
  std::vector<RecordingClient> clients;
  clients.reserve(8);
  for (int i = 0; i < 4; ++i)
    clients.emplace_back(world, net::IspCategory::kTele);
  for (int i = 0; i < 4; ++i)
    clients.emplace_back(world, net::IspCategory::kCnc);
  for (auto& c : clients) {
    Message m{TrackerQuery{1}};
    world.network().send(c.ip(), aware.ip(), m, wire_size(m));
  }
  world.simulator().run_until(sim::Time::seconds(2));

  // A fresh CNC requester must be offered CNC members only (4 available,
  // reply capped at 3).
  RecordingClient probe(world, net::IspCategory::kCnc);
  Message m{TrackerQuery{1}};
  world.network().send(probe.ip(), aware.ip(), m, wire_size(m));
  world.simulator().run_until(sim::Time::seconds(4));
  ASSERT_EQ(probe.replies().size(), 1u);
  ASSERT_EQ(probe.replies()[0].peers.size(), 3u);
  for (const auto& ip : probe.replies()[0].peers) {
    EXPECT_EQ(db.category_or_foreign(ip), net::IspCategory::kCnc)
        << ip.to_string();
  }
}

TEST(TrackerTest, LocalityAwareTrackerFillsWithOthers) {
  MiniWorld world;
  net::IspRegistry registry = net::IspRegistry::standard_topology();
  net::AsnDatabase db = net::AsnDatabase::from_registry(registry);
  TrackerServer::Config cfg;
  cfg.locality_db = &db;
  cfg.max_reply_peers = 5;
  auto identity = world.identity(net::IspCategory::kCnc);
  TrackerServer aware(world.simulator(), world.network(), identity,
                      sim::Rng(3), cfg);
  std::vector<RecordingClient> clients;
  clients.reserve(3);
  clients.emplace_back(world, net::IspCategory::kCnc);
  clients.emplace_back(world, net::IspCategory::kTele);
  clients.emplace_back(world, net::IspCategory::kTele);
  for (auto& c : clients) {
    Message m{TrackerQuery{1}};
    world.network().send(c.ip(), aware.ip(), m, wire_size(m));
  }
  world.simulator().run_until(sim::Time::seconds(2));
  RecordingClient probe(world, net::IspCategory::kCnc);
  Message m{TrackerQuery{1}};
  world.network().send(probe.ip(), aware.ip(), m, wire_size(m));
  world.simulator().run_until(sim::Time::seconds(4));
  ASSERT_EQ(probe.replies().size(), 1u);
  // Only one CNC member exists; the reply tops up with TELE members.
  EXPECT_EQ(probe.replies()[0].peers.size(), 3u);
  EXPECT_EQ(db.category_or_foreign(probe.replies()[0].peers[0]),
            net::IspCategory::kCnc);
}

TEST(TrackerTest, IgnoresNonTrackerMessages) {
  MiniWorld world;
  RecordingClient a(world, net::IspCategory::kTele);
  world.simulator().run_until(sim::Time::seconds(1));
  const auto before = world.tracker().queries_served();  // source refreshes
  Message m{DataQuery{1, 5}};
  world.network().send(a.ip(), world.tracker().ip(), m, wire_size(m));
  world.simulator().run_until(sim::Time::seconds(2));
  EXPECT_EQ(world.tracker().queries_served(), before);
  EXPECT_TRUE(a.replies().empty());
}

}  // namespace
}  // namespace ppsim::proto
