// End-to-end verification of the paper's central mechanism using only
// public APIs: a probe's *neighborhood* (not just its traffic) becomes
// same-ISP enriched relative to the audience mix, and the enrichment is
// produced by the latency-driven machinery (disabling it removes the
// effect). Seeds are averaged because single runs are day-samples.

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "net/asn_db.h"
#include "workload/scenario.h"

namespace ppsim::core {
namespace {

/// Returns the probe's same-ISP share of matched data *transmissions*
/// (membership-weighted, less top-heavy than bytes).
double transmission_locality(std::uint64_t seed, bool latency_mechanisms) {
  ExperimentConfig config;
  config.scenario = workload::popular_channel();
  config.scenario.viewers = 90;
  config.scenario.duration = sim::Time::minutes(6);
  config.scenario.seed = seed;
  config.probes = {tele_probe()};
  if (!latency_mechanisms) {
    config.peer_config.optimize_period = sim::Time::hours(10);
    config.peer_config.latency_selectivity = 0.0;
  }
  auto result = run_experiment(config);
  return result.probes[0].analysis.transmission_locality(
      net::IspCategory::kTele);
}

TEST(EmergenceTest, LatencyMechanismsCreateTheEnrichment) {
  double with = 0, without = 0;
  for (std::uint64_t seed : {31u, 32u, 33u}) {
    with += transmission_locality(seed, true);
    without += transmission_locality(seed, false);
  }
  with /= 3;
  without /= 3;
  // With the mechanisms: clearly above the 56% audience mix. Without:
  // near (or below) it. The gap is the paper's emergent locality.
  EXPECT_GT(with, 0.6);
  EXPECT_GT(with, without + 0.05);
}

TEST(EmergenceTest, UniqueDataPeersAreSameIspEnriched) {
  // Figure 11(a)'s claim, at our scale: the set of peers actually used for
  // data is more TELE-heavy than the audience. Aggregated over capture
  // days (single days can concentrate on a handful of peers).
  capture::IspHistogram unique;
  double mix_share = 0;
  for (std::uint64_t seed : {41u, 42u, 43u}) {
    ExperimentConfig config;
    config.scenario = workload::popular_channel();
    config.scenario.viewers = 120;
    config.scenario.duration = sim::Time::minutes(8);
    config.scenario.seed = seed;
    config.probes = {tele_probe()};
    mix_share = config.scenario.mix[net::IspCategory::kTele];
    auto result = run_experiment(config);
    for (std::size_t i = 0; i < net::kNumIspCategories; ++i)
      unique.counts[i] +=
          result.probes[0].analysis.unique_data_peers.counts[i];
  }
  ASSERT_GT(unique.total(), 10u);
  EXPECT_GT(unique.share(net::IspCategory::kTele), mix_share);
}

}  // namespace
}  // namespace ppsim::core
