#include <gtest/gtest.h>

#include "proto/bootstrap.h"
#include "proto/source.h"
#include "proto_testutil.h"

namespace ppsim::proto {
namespace {

using testing::MiniWorld;

/// Bare client that records bootstrap/source traffic.
class RawClient {
 public:
  RawClient(MiniWorld& world, net::IspCategory cat)
      : world_(world), identity_(world.identity(cat)) {
    world_.network().attach(
        identity_.ip, identity_.isp, identity_.category, identity_.profile,
        [this](const PeerNetwork::Delivery& d) { inbox_.push_back(d); });
  }

  void send(net::IpAddress to, Message m) {
    const auto bytes = wire_size(m);
    world_.network().send(identity_.ip, to, std::move(m), bytes);
  }

  template <typename T>
  std::vector<T> received() const {
    std::vector<T> out;
    for (const auto& d : inbox_)
      if (const auto* m = std::get_if<T>(&d.payload)) out.push_back(*m);
    return out;
  }

  net::IpAddress ip() const { return identity_.ip; }

 private:
  MiniWorld& world_;
  HostIdentity identity_;
  std::vector<PeerNetwork::Delivery> inbox_;
};

TEST(BootstrapTest, ChannelListReturned) {
  MiniWorld world;
  RawClient c(world, net::IspCategory::kTele);
  c.send(world.bootstrap().ip(), Message{ChannelListQuery{}});
  world.simulator().run_until(sim::Time::seconds(1));
  auto replies = c.received<ChannelListReply>();
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_EQ(replies[0].channels.size(), 1u);
  EXPECT_EQ(replies[0].channels[0], world.channel().id);
}

TEST(BootstrapTest, JoinReturnsPlaylinkAndTrackers) {
  MiniWorld world;
  RawClient c(world, net::IspCategory::kCnc);
  c.send(world.bootstrap().ip(), Message{JoinQuery{world.channel().id}});
  world.simulator().run_until(sim::Time::seconds(1));
  auto replies = c.received<JoinReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].source, world.source().ip());
  ASSERT_EQ(replies[0].trackers.size(), 1u);
  EXPECT_EQ(replies[0].trackers[0], world.tracker().ip());
  EXPECT_EQ(world.bootstrap().joins_served(), 1u);
}

TEST(BootstrapTest, UnknownChannelIgnored) {
  MiniWorld world;
  RawClient c(world, net::IspCategory::kTele);
  c.send(world.bootstrap().ip(), Message{JoinQuery{999}});
  world.simulator().run_until(sim::Time::seconds(1));
  EXPECT_TRUE(c.received<JoinReply>().empty());
  EXPECT_EQ(world.bootstrap().joins_served(), 0u);
}

TEST(BootstrapTest, TrackerGroupRotation) {
  MiniWorld world;
  // Register a second channel with a two-server group.
  BootstrapServer::ChannelEntry entry;
  entry.channel = 7;
  entry.source = world.source().ip();
  entry.tracker_groups = {{net::IpAddress(9, 0, 0, 1), net::IpAddress(9, 0, 0, 2)}};
  world.bootstrap().register_channel(std::move(entry));

  RawClient c(world, net::IspCategory::kTele);
  c.send(world.bootstrap().ip(), Message{JoinQuery{7}});
  c.send(world.bootstrap().ip(), Message{JoinQuery{7}});
  world.simulator().run_until(sim::Time::seconds(1));
  auto replies = c.received<JoinReply>();
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_NE(replies[0].trackers[0], replies[1].trackers[0]);
}

TEST(SourceTest, ProducesChunksAtStreamRate) {
  MiniWorld world;
  const double chunk_s = world.channel().chunk_duration().as_seconds();
  world.simulator().run_until(sim::Time::seconds(60));
  const auto produced = world.source().chunks_produced();
  EXPECT_NEAR(static_cast<double>(produced), 60.0 / chunk_s + 1, 2.0);
  EXPECT_EQ(world.source().live_edge(), produced);
}

TEST(SourceTest, AcceptsConnectAndServesData) {
  MiniWorld world;
  RawClient c(world, net::IspCategory::kTele);
  world.simulator().run_until(sim::Time::seconds(10));

  c.send(world.source().ip(), Message{ConnectQuery{world.channel().id}});
  world.simulator().run_until(sim::Time::seconds(11));
  auto accepts = c.received<ConnectReply>();
  ASSERT_EQ(accepts.size(), 1u);
  EXPECT_TRUE(accepts[0].accepted);
  const ChunkSeq available = accepts[0].map.highest();
  ASSERT_GT(available, 0u);

  c.send(world.source().ip(), Message{DataQuery{world.channel().id, available}});
  world.simulator().run_until(sim::Time::seconds(12));
  auto data = c.received<DataReply>();
  ASSERT_EQ(data.size(), 1u);
  EXPECT_EQ(data[0].chunk, available);
  EXPECT_EQ(data[0].payload_bytes, world.channel().chunk_bytes());
  EXPECT_EQ(world.source().requests_served(), 1u);
}

TEST(SourceTest, DoesNotServeUnproducedChunk) {
  MiniWorld world;
  RawClient c(world, net::IspCategory::kTele);
  world.simulator().run_until(sim::Time::seconds(5));
  c.send(world.source().ip(), Message{DataQuery{world.channel().id, 1000000}});
  world.simulator().run_until(sim::Time::seconds(6));
  EXPECT_TRUE(c.received<DataReply>().empty());
}

TEST(SourceTest, RepliesWithPeerList) {
  MiniWorld world;
  RawClient a(world, net::IspCategory::kTele);
  RawClient b(world, net::IspCategory::kCnc);
  a.send(world.source().ip(), Message{ConnectQuery{world.channel().id}});
  b.send(world.source().ip(), Message{ConnectQuery{world.channel().id}});
  world.simulator().run_until(sim::Time::seconds(1));

  a.send(world.source().ip(),
         Message{PeerListQuery{world.channel().id, {}}});
  world.simulator().run_until(sim::Time::seconds(2));
  auto lists = a.received<PeerListReply>();
  ASSERT_EQ(lists.size(), 1u);
  ASSERT_EQ(lists[0].peers.size(), 1u);
  EXPECT_EQ(lists[0].peers[0], b.ip());  // never lists the requester itself
}

TEST(SourceTest, RegistersWithTracker) {
  MiniWorld world;
  world.simulator().run_until(sim::Time::seconds(5));
  EXPECT_GE(world.tracker().member_count(world.channel().id), 1u);
}

TEST(SourceTest, GoodbyeRemovesNeighbor) {
  MiniWorld world;
  RawClient a(world, net::IspCategory::kTele);
  a.send(world.source().ip(), Message{ConnectQuery{world.channel().id}});
  world.simulator().run_until(sim::Time::seconds(1));
  EXPECT_EQ(world.source().neighbor_count(), 1u);
  a.send(world.source().ip(), Message{Goodbye{world.channel().id}});
  world.simulator().run_until(sim::Time::seconds(2));
  EXPECT_EQ(world.source().neighbor_count(), 0u);
}

TEST(SourceTest, StopHaltsProduction) {
  MiniWorld world;
  world.simulator().run_until(sim::Time::seconds(5));
  world.source().stop();
  const auto frozen = world.source().chunks_produced();
  world.simulator().run_until(sim::Time::seconds(30));
  EXPECT_EQ(world.source().chunks_produced(), frozen);
}

}  // namespace
}  // namespace ppsim::proto
