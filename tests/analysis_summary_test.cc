#include "analysis/summary.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

namespace ppsim::analysis {
namespace {

TEST(SummaryTest, EmptySample) {
  Summary s = describe({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(SummaryTest, KnownValues) {
  std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  Summary s = describe(xs);
  EXPECT_EQ(s.n, 9u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.p25, 3.0);
  EXPECT_DOUBLE_EQ(s.p75, 7.0);
  EXPECT_NEAR(s.stddev, 2.7386, 1e-3);
}

TEST(SummaryTest, StringRendering) {
  std::vector<double> xs = {2.0, 4.0};
  Summary s = describe(xs);
  const std::string text = to_string(s);
  EXPECT_NE(text.find("n=2"), std::string::npos);
  EXPECT_NE(text.find("mean=3"), std::string::npos);
  std::ostringstream os;
  os << s;
  EXPECT_EQ(os.str(), text);
}

TEST(SummaryTest, OrderInvariant) {
  std::vector<double> a = {5, 1, 3};
  std::vector<double> b = {3, 5, 1};
  EXPECT_EQ(to_string(describe(a)), to_string(describe(b)));
}

}  // namespace
}  // namespace ppsim::analysis
