// End-to-end coverage of the CLI driver's run path (tiny configurations so
// the whole thing stays fast).

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/cli.h"

namespace ppsim::core {
namespace {

CliOptions tiny_options() {
  CliOptions options;
  options.channel = "unpopular";
  options.viewers = 40;
  options.minutes = 3;
  options.seed = 8;
  options.probes = {"tele"};
  options.reports = {"data"};
  return options;
}

TEST(RunCliTest, HelpPrintsUsage) {
  CliOptions options;
  options.help = true;
  std::ostringstream out;
  EXPECT_EQ(run_cli(options, out), 0);
  EXPECT_NE(out.str().find("usage: ppsim"), std::string::npos);
}

TEST(RunCliTest, DataReportEndToEnd) {
  std::ostringstream out;
  EXPECT_EQ(run_cli(tiny_options(), out), 0);
  const std::string text = out.str();
  EXPECT_NE(text.find("channel=unpopular"), std::string::npos);
  EXPECT_NE(text.find("== probe TELE"), std::string::npos);
  EXPECT_NE(text.find("Downloaded bytes by ISP"), std::string::npos);
  EXPECT_NE(text.find("locality:"), std::string::npos);
}

TEST(RunCliTest, AllSectionsPrint) {
  auto options = tiny_options();
  options.reports = {"all"};
  std::ostringstream out;
  EXPECT_EQ(run_cli(options, out), 0);
  const std::string text = out.str();
  EXPECT_NE(text.find("Returned peer addresses"), std::string::npos);
  EXPECT_NE(text.find("replier class"), std::string::npos);
  EXPECT_NE(text.find("Peer-list response times"), std::string::npos);
  EXPECT_NE(text.find("stretched-exponential"), std::string::npos);
  EXPECT_NE(text.find("correlation coefficient"), std::string::npos);
  EXPECT_NE(text.find("traffic matrix"), std::string::npos);
}

TEST(RunCliTest, DumpTraceWritesFile) {
  auto options = tiny_options();
  options.dump_trace = ::testing::TempDir() + "/ppsim_cli_test";
  std::ostringstream out;
  EXPECT_EQ(run_cli(options, out), 0);
  EXPECT_NE(out.str().find("trace written:"), std::string::npos);
  std::ifstream check(options.dump_trace + "-TELE.trace");
  EXPECT_TRUE(check.good());
}

}  // namespace
}  // namespace ppsim::core
