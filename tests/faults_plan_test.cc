// FaultPlan text format: parsing, validation, round-tripping, and the
// canned demonstration schedule.

#include "faults/plan.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ppsim::faults {
namespace {

PlanParseResult parse(const std::string& text) {
  std::istringstream in(text);
  return parse_fault_plan(in);
}

TEST(FaultPlanTest, ParsesEveryKind) {
  auto result = parse(
      "# demo schedule\n"
      "window kind=tracker_outage start=120 end=240 group=0 label=tele-dark\n"
      "window kind=bootstrap_outage start=60 end=90\n"
      "window kind=link_degrade start=90 end=300 a=TELE b=CNC loss=0.25 "
      "added_rtt_ms=150\n"
      "window kind=blackout start=200 end=260 a=CNC\n"
      "window kind=churn_burst at=240 fraction=0.3\n"
      "window kind=uplink_brownout start=300 end=420 fraction=0.2 loss=0.5\n");
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_EQ(result.plan.windows.size(), 6u);

  // Sorted by start time, not textual order.
  EXPECT_EQ(result.plan.windows[0].kind, FaultKind::kBootstrapOutage);
  EXPECT_EQ(result.plan.windows[1].kind, FaultKind::kLinkDegrade);
  EXPECT_EQ(result.plan.windows[2].kind, FaultKind::kTrackerOutage);

  const FaultWindow& outage = result.plan.windows[2];
  EXPECT_EQ(outage.start, sim::Time::seconds(120));
  EXPECT_EQ(outage.end, sim::Time::seconds(240));
  EXPECT_EQ(outage.tracker_group, 0);
  EXPECT_EQ(outage.label, "tele-dark");

  const FaultWindow& degrade = result.plan.windows[1];
  EXPECT_EQ(degrade.category_a, net::IspCategory::kTele);
  EXPECT_EQ(degrade.category_b, net::IspCategory::kCnc);
  EXPECT_DOUBLE_EQ(degrade.loss, 0.25);
  EXPECT_EQ(degrade.added_rtt, sim::Time::millis(150));

  // Sorted order: bootstrap(60), degrade(90), tracker(120), blackout(200),
  // churn(240), brownout(300).
  const FaultWindow& burst = result.plan.windows[4];
  EXPECT_EQ(burst.kind, FaultKind::kChurnBurst);
  EXPECT_EQ(burst.start, burst.end);
  EXPECT_DOUBLE_EQ(burst.fraction, 0.3);
}

TEST(FaultPlanTest, BlankLinesAndCommentsIgnored) {
  auto result = parse("\n  # nothing here\n\nwindow kind=blackout start=1 "
                      "end=2 a=TELE # trailing\n");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.plan.windows.size(), 1u);
}

TEST(FaultPlanTest, RejectsMalformedInput) {
  EXPECT_FALSE(parse("widnow kind=blackout start=1 end=2\n").ok());
  EXPECT_FALSE(parse("window kind=nope start=1 end=2\n").ok());
  EXPECT_FALSE(parse("window kind=blackout start=abc end=2\n").ok());
  EXPECT_FALSE(parse("window kind=blackout end=2\n").ok());       // no start
  EXPECT_FALSE(parse("window kind=blackout start=1\n").ok());     // no end
  EXPECT_FALSE(parse("window start=1 end=2\n").ok());             // no kind
  EXPECT_FALSE(parse("window kind=blackout start=1 end=2 x=1\n").ok());
  EXPECT_FALSE(parse("window kind=link_degrade start=1 end=2 a=MARS\n").ok());
  // Errors carry the line number.
  auto bad = parse("window kind=blackout start=1 end=2 a=TELE\n"
                   "window kind=blackout start=3\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error.find("line 2"), std::string::npos) << bad.error;
}

TEST(FaultPlanTest, ValidationRules) {
  EXPECT_FALSE(parse("window kind=blackout start=5 end=2 a=TELE\n").ok());
  EXPECT_FALSE(
      parse("window kind=link_degrade start=1 end=2 loss=1.5\n").ok());
  // A degrade that degrades nothing is a plan bug.
  EXPECT_FALSE(parse("window kind=link_degrade start=1 end=2\n").ok());
  EXPECT_FALSE(parse("window kind=churn_burst at=1 fraction=0\n").ok());
  EXPECT_FALSE(parse("window kind=churn_burst at=1 fraction=2\n").ok());
  EXPECT_FALSE(
      parse("window kind=churn_burst start=1 end=2 fraction=0.5\n").ok());
  EXPECT_FALSE(
      parse("window kind=uplink_brownout start=1 end=2 fraction=0.5\n").ok());
  EXPECT_FALSE(parse("window kind=tracker_outage start=1 end=2 group=-2\n")
                   .ok());
  // A failed parse returns an empty plan, never a partial one.
  auto bad = parse("window kind=blackout start=1 end=2 a=TELE\n"
                   "window kind=blackout start=5 end=2 a=CNC\n");
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.plan.empty());
}

TEST(FaultPlanTest, RoundTripsThroughText) {
  const FaultPlan original = tracker_blackout_throttle_plan();
  std::ostringstream os;
  write_fault_plan(os, original);
  auto reparsed = parse(os.str());
  ASSERT_TRUE(reparsed.ok()) << reparsed.error;
  ASSERT_EQ(reparsed.plan.windows.size(), original.windows.size());
  for (std::size_t i = 0; i < original.windows.size(); ++i) {
    const FaultWindow& a = original.windows[i];
    const FaultWindow& b = reparsed.plan.windows[i];
    EXPECT_EQ(a.kind, b.kind) << "window " << i;
    EXPECT_EQ(a.start, b.start) << "window " << i;
    EXPECT_EQ(a.end, b.end) << "window " << i;
    EXPECT_EQ(a.tracker_group, b.tracker_group) << "window " << i;
    EXPECT_EQ(a.category_a, b.category_a) << "window " << i;
    EXPECT_EQ(a.category_b, b.category_b) << "window " << i;
    EXPECT_DOUBLE_EQ(a.loss, b.loss) << "window " << i;
    EXPECT_EQ(a.added_rtt, b.added_rtt) << "window " << i;
    EXPECT_DOUBLE_EQ(a.fraction, b.fraction) << "window " << i;
    EXPECT_EQ(a.label, b.label) << "window " << i;
  }
}

TEST(FaultPlanTest, CannedPlanIsValidAndOrdered) {
  const FaultPlan plan = tracker_blackout_throttle_plan();
  EXPECT_TRUE(validate(plan).empty());
  ASSERT_EQ(plan.windows.size(), 3u);
  EXPECT_EQ(plan.windows[0].kind, FaultKind::kTrackerOutage);
  EXPECT_EQ(plan.windows[0].tracker_group, -1);
  EXPECT_EQ(plan.windows[1].kind, FaultKind::kLinkDegrade);
  EXPECT_EQ(plan.windows[2].kind, FaultKind::kChurnBurst);
  // The throttle overlaps the outage: that is the point of the scenario.
  EXPECT_LT(plan.windows[1].start, plan.windows[0].end);
}

TEST(FaultPlanTest, KindNamesRoundTrip) {
  for (FaultKind k :
       {FaultKind::kTrackerOutage, FaultKind::kBootstrapOutage,
        FaultKind::kLinkDegrade, FaultKind::kBlackout, FaultKind::kChurnBurst,
        FaultKind::kUplinkBrownout}) {
    FaultKind parsed;
    ASSERT_TRUE(parse_fault_kind(to_string(k), &parsed));
    EXPECT_EQ(parsed, k);
  }
  FaultKind unused;
  EXPECT_FALSE(parse_fault_kind("power_failure", &unused));
}

TEST(FaultPlanTest, LoadReportsMissingFile) {
  auto result = load_fault_plan("/nonexistent/plan.txt");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace ppsim::faults
