// Tests of the figure-bench harness helpers (flag parsing, the standard
// workload configs, and the multi-day merge runner).

#include <gtest/gtest.h>

#include <sstream>

#include "../bench/figures_common.h"

namespace ppsim::bench {
namespace {

Scale parse(std::initializer_list<const char*> args) {
  std::vector<char*> argv = {const_cast<char*>("bench")};
  for (const char* a : args) argv.push_back(const_cast<char*>(a));
  return parse_flags(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchFlagsTest, Defaults) {
  Scale scale = parse({});
  EXPECT_EQ(scale.popular_viewers, 300);
  EXPECT_EQ(scale.minutes, 10);
  EXPECT_GT(scale.unpopular_viewers, 30);
}

TEST(BenchFlagsTest, ViewersScalesUnpopularProportionally) {
  Scale scale = parse({"--viewers", "600"});
  EXPECT_EQ(scale.popular_viewers, 600);
  EXPECT_EQ(scale.unpopular_viewers, 600 * 64 / 300);
}

TEST(BenchFlagsTest, MinutesAndSeed) {
  Scale scale = parse({"--minutes", "25", "--seed", "777"});
  EXPECT_EQ(scale.minutes, 25);
  EXPECT_EQ(scale.seed, 777u);
}

TEST(BenchFlagsTest, UnknownFlagsIgnored) {
  Scale scale = parse({"--bogus", "1", "--minutes", "7"});
  EXPECT_EQ(scale.minutes, 7);
}

TEST(BenchConfigTest, PopularAndUnpopularDiffer) {
  Scale scale;
  scale.minutes = 4;
  auto popular = popular_config(scale, {core::tele_probe()});
  auto unpopular = unpopular_config(scale, {core::tele_probe()});
  EXPECT_GT(popular.scenario.viewers, unpopular.scenario.viewers);
  EXPECT_NE(popular.scenario.channel.id, unpopular.scenario.channel.id);
  EXPECT_NE(popular.scenario.seed, unpopular.scenario.seed);
  EXPECT_EQ(popular.scenario.duration, sim::Time::minutes(4));
}

TEST(BenchRunDaysTest, MergesAcrossDays) {
  Scale scale;
  scale.popular_viewers = 50;
  scale.minutes = 3;
  scale.seed = 4;
  auto merged = run_days(scale, /*popular=*/true, {core::tele_probe()},
                         /*days=*/2);
  ASSERT_EQ(merged.probes.size(), 1u);

  // The merged analysis covers both days: it has at least as many matched
  // transmissions as a single day.
  auto single = core::run_experiment(popular_config(scale, {core::tele_probe()}));
  EXPECT_GT(merged.probes[0].analysis.data_transmissions.total(),
            single.probes[0].analysis.data_transmissions.total());
  EXPECT_GT(merged.traffic.total(), single.traffic.total());
}

TEST(BenchBannerTest, MentionsScale) {
  Scale scale;
  std::ostringstream os;
  print_banner(os, "test banner", scale);
  EXPECT_NE(os.str().find("test banner"), std::string::npos);
  EXPECT_NE(os.str().find("viewers=300"), std::string::npos);
}

}  // namespace
}  // namespace ppsim::bench
