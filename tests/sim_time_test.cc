#include "sim/time.h"

#include <gtest/gtest.h>

namespace ppsim::sim {
namespace {

TEST(TimeTest, DefaultIsZero) {
  Time t;
  EXPECT_EQ(t.as_micros(), 0);
  EXPECT_TRUE(t.is_zero());
  EXPECT_FALSE(t.is_negative());
  EXPECT_EQ(t, Time::zero());
}

TEST(TimeTest, FactoryUnits) {
  EXPECT_EQ(Time::micros(5).as_micros(), 5);
  EXPECT_EQ(Time::millis(5).as_micros(), 5'000);
  EXPECT_EQ(Time::seconds(5).as_micros(), 5'000'000);
  EXPECT_EQ(Time::minutes(2).as_micros(), 120'000'000);
  EXPECT_EQ(Time::hours(1).as_micros(), 3'600'000'000LL);
}

TEST(TimeTest, FromSecondsRounding) {
  EXPECT_EQ(Time::from_seconds(1.5).as_micros(), 1'500'000);
  EXPECT_EQ(Time::from_seconds(0.0000005).as_micros(), 0);
  EXPECT_EQ(Time::from_seconds(-2.25).as_micros(), -2'250'000);
}

TEST(TimeTest, ConversionAccessors) {
  Time t = Time::millis(1500);
  EXPECT_DOUBLE_EQ(t.as_millis(), 1500.0);
  EXPECT_DOUBLE_EQ(t.as_seconds(), 1.5);
}

TEST(TimeTest, Arithmetic) {
  Time a = Time::seconds(3);
  Time b = Time::seconds(1);
  EXPECT_EQ((a + b).as_seconds(), 4);
  EXPECT_EQ((a - b).as_seconds(), 2);
  EXPECT_EQ((a * 3).as_seconds(), 9);
  EXPECT_EQ((a / 3).as_seconds(), 1);
  a += b;
  EXPECT_EQ(a, Time::seconds(4));
  a -= Time::seconds(2);
  EXPECT_EQ(a, Time::seconds(2));
}

TEST(TimeTest, NegativeDurations) {
  Time d = Time::seconds(1) - Time::seconds(3);
  EXPECT_TRUE(d.is_negative());
  EXPECT_EQ(d.as_micros(), -2'000'000);
}

TEST(TimeTest, Comparisons) {
  EXPECT_LT(Time::millis(1), Time::millis(2));
  EXPECT_GT(Time::seconds(1), Time::millis(999));
  EXPECT_LE(Time::zero(), Time::zero());
  EXPECT_NE(Time::micros(1), Time::micros(2));
}

TEST(TimeTest, ScaleByFactor) {
  EXPECT_EQ(scale(Time::seconds(2), 1.5), Time::seconds(3));
  EXPECT_EQ(scale(Time::millis(10), 0.5), Time::millis(5));
  EXPECT_EQ(scale(Time::zero(), 100.0), Time::zero());
}

TEST(TimeTest, ToStringPicksUnit) {
  EXPECT_EQ(Time::seconds(3).to_string(), "3s");
  EXPECT_EQ(Time::millis(250).to_string(), "250ms");
  EXPECT_EQ(Time::micros(42).to_string(), "42us");
}

}  // namespace
}  // namespace ppsim::sim
