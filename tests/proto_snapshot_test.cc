#include <gtest/gtest.h>

#include "proto_testutil.h"

namespace ppsim::proto {
namespace {

using testing::MiniWorld;

TEST(NeighborSnapshotTest, SortedByContribution) {
  MiniWorld world;
  Peer& viewer = world.add_peer(net::IspCategory::kTele);
  world.add_peer(net::IspCategory::kTele).join();
  world.add_peer(net::IspCategory::kTele).join();
  viewer.join();
  world.simulator().run_until(sim::Time::minutes(3));

  auto snapshots = viewer.neighbor_snapshots();
  ASSERT_EQ(snapshots.size(), viewer.neighbor_count());
  std::uint64_t total_bytes = 0;
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    if (i > 0) {
      EXPECT_LE(snapshots[i].bytes_from, snapshots[i - 1].bytes_from);
    }
    EXPECT_GT(snapshots[i].rtt_s, 0.0);
    EXPECT_GT(snapshots[i].service_s, 0.0);
    EXPECT_LE(snapshots[i].connected_at, world.simulator().now());
    total_bytes += snapshots[i].bytes_from;
  }
  // The top neighbor carries real traffic.
  ASSERT_FALSE(snapshots.empty());
  EXPECT_GT(total_bytes, 0u);
  // Snapshot totals reconcile with the client's own accounting (timed-out
  // and unmatched replies can make the counter differ slightly upward).
  EXPECT_LE(total_bytes, viewer.counters().bytes_downloaded +
                             viewer.counters().duplicate_chunks *
                                 world.channel().chunk_bytes());
}

TEST(NeighborSnapshotTest, EmptyBeforeJoin) {
  MiniWorld world;
  Peer& loner = world.add_peer(net::IspCategory::kTele);
  EXPECT_TRUE(loner.neighbor_snapshots().empty());
}

}  // namespace
}  // namespace ppsim::proto
