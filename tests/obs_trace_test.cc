#include "obs/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/simulator.h"

namespace ppsim::obs {
namespace {

TEST(NdjsonTraceSink, SerializesFieldsInEmissionOrder) {
  std::ostringstream os;
  NdjsonTraceSink sink(os);

  TraceEvent ev(sim::Time::millis(1500), "data_serve");
  ev.field("peer", "10.0.0.1")
      .field("chunk", std::uint64_t{42})
      .field("ok", true)
      .field("share", 0.5);
  sink.write(ev);

  EXPECT_EQ(os.str(),
            "{\"t\":1.500000,\"ev\":\"data_serve\",\"peer\":\"10.0.0.1\","
            "\"chunk\":42,\"ok\":true,\"share\":0.5}\n");
  EXPECT_EQ(sink.events_written(), 1u);
}

TEST(NdjsonTraceSink, EscapesStrings) {
  std::ostringstream os;
  NdjsonTraceSink sink(os);
  TraceEvent ev(sim::Time::zero(), "odd");
  ev.field("s", "a\"b\\c\nd");
  sink.write(ev);
  EXPECT_EQ(os.str(),
            "{\"t\":0.000000,\"ev\":\"odd\",\"s\":\"a\\\"b\\\\c\\nd\"}\n");
}

TEST(NdjsonTraceSink, NegativeAndSignedFields) {
  std::ostringstream os;
  NdjsonTraceSink sink(os);
  TraceEvent ev(sim::Time::seconds(2), "n");
  ev.field("delta", std::int64_t{-7}).field("i", -3);
  sink.write(ev);
  EXPECT_EQ(os.str(), "{\"t\":2.000000,\"ev\":\"n\",\"delta\":-7,\"i\":-3}\n");
}

TEST(CountingTraceSink, CountsPerName) {
  CountingTraceSink sink;
  sink.write(TraceEvent(sim::Time::zero(), "a"));
  sink.write(TraceEvent(sim::Time::zero(), "b"));
  sink.write(TraceEvent(sim::Time::zero(), "a"));
  EXPECT_EQ(sink.total(), 3u);
  EXPECT_EQ(sink.count("a"), 2u);
  EXPECT_EQ(sink.count("b"), 1u);
  EXPECT_EQ(sink.count("missing"), 0u);
}

TEST(SimEventTracer, EmitsOneRowPerExecutedEvent) {
  sim::Simulator simulator;
  std::ostringstream os;
  NdjsonTraceSink sink(os);
  SimEventTracer tracer(sink);
  simulator.add_observer(&tracer);

  simulator.schedule(sim::Time::seconds(1), [] {}, "cat.a");
  simulator.schedule(sim::Time::seconds(2), [] {});  // untagged
  simulator.run_until(sim::Time::seconds(5));

  EXPECT_EQ(sink.events_written(), 2u);
  const std::string dump = os.str();
  EXPECT_NE(dump.find("\"ev\":\"sim_event\""), std::string::npos);
  EXPECT_NE(dump.find("\"cat\":\"cat.a\""), std::string::npos);
  EXPECT_NE(dump.find("\"cat\":\"\""), std::string::npos);
}

}  // namespace
}  // namespace ppsim::obs
