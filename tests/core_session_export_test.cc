#include "core/session_export.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace ppsim::core {
namespace {

std::vector<SessionRecord> sample_sessions() {
  std::vector<SessionRecord> out;
  SessionRecord a;
  a.channel = 1;
  a.category = net::IspCategory::kTele;
  a.behind_nat = true;
  a.joined = sim::Time::seconds(10);
  a.left = sim::Time::seconds(130);
  a.completed = true;
  a.bytes_downloaded = 123456;
  a.bytes_uploaded = 7890;
  a.continuity = 0.97;
  out.push_back(a);

  SessionRecord b;
  b.channel = 2;
  b.category = net::IspCategory::kForeign;
  b.joined = sim::Time::seconds(50);
  b.left = sim::Time::seconds(600);
  b.completed = false;  // still watching at run end
  b.bytes_downloaded = 999;
  b.continuity = 0.5;
  out.push_back(b);
  return out;
}

TEST(SessionExportTest, RoundTrip) {
  auto original = sample_sessions();
  std::stringstream buffer;
  EXPECT_EQ(write_sessions_csv(buffer, original), original.size());

  std::size_t dropped = 1;
  auto restored = read_sessions_csv(buffer, &dropped);
  EXPECT_EQ(dropped, 0u);
  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(restored[i].channel, original[i].channel);
    EXPECT_EQ(restored[i].category, original[i].category);
    EXPECT_EQ(restored[i].behind_nat, original[i].behind_nat);
    EXPECT_EQ(restored[i].completed, original[i].completed);
    EXPECT_EQ(restored[i].bytes_downloaded, original[i].bytes_downloaded);
    EXPECT_EQ(restored[i].bytes_uploaded, original[i].bytes_uploaded);
    EXPECT_NEAR(restored[i].duration_seconds(),
                original[i].duration_seconds(), 1e-6);
    EXPECT_NEAR(restored[i].continuity, original[i].continuity, 1e-9);
  }
}

TEST(SessionExportTest, HeaderPresent) {
  std::stringstream buffer;
  write_sessions_csv(buffer, {});
  std::string header;
  std::getline(buffer, header);
  EXPECT_NE(header.find("channel,category"), std::string::npos);
}

TEST(SessionExportTest, MalformedRowsDropped) {
  std::stringstream buffer;
  buffer << "channel,category,nat,joined_s,left_s,completed,duration_s,"
            "bytes_down,bytes_up,continuity\n";
  buffer << "not,a,row\n";
  buffer << "1,99,0,0,1,1,1,0,0,1\n";  // category out of range
  buffer << "1,0,0,10,20,1,10,5,5,1\n";
  std::size_t dropped = 0;
  auto rows = read_sessions_csv(buffer, &dropped);
  EXPECT_EQ(rows.size(), 1u);
  EXPECT_EQ(dropped, 2u);
}

TEST(SessionExportTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ppsim_sessions.csv";
  EXPECT_TRUE(write_sessions_csv_file(path, sample_sessions()));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  auto rows = read_sessions_csv(in);
  EXPECT_EQ(rows.size(), 2u);
}

}  // namespace
}  // namespace ppsim::core
