#include "wire/codec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "proto/message.h"
#include "sim/rng.h"

namespace ppsim::wire {
namespace {

constexpr std::uint16_t kEpoch = 7;

std::vector<std::uint8_t> encode_ok(const proto::Message& m) {
  std::vector<std::uint8_t> out;
  EXPECT_EQ(encode_message(m, kEpoch, &out), WireError::kOk);
  return out;
}

/// Round-trip check without a Message operator==: decode the datagram and
/// re-encode the result; a correct codec reproduces the bytes exactly (the
/// format has a unique encoding per message value).
void expect_round_trip(const proto::Message& m) {
  const std::vector<std::uint8_t> wire = encode_ok(m);
  EXPECT_EQ(wire.size(), proto::wire_size(m) - kIpUdpHeader);
  const DecodeResult decoded = decode_message(wire.data(), wire.size(), kEpoch);
  ASSERT_EQ(decoded.error, WireError::kOk) << proto::message_name(m);
  EXPECT_EQ(decoded.message.index(), m.index());
  const std::vector<std::uint8_t> again = encode_ok(decoded.message);
  EXPECT_EQ(wire, again) << proto::message_name(m);
  // Spans are trace metadata and must never survive the wire.
  std::visit([](const auto& msg) {
    EXPECT_EQ(msg.span.id, 0u);
    EXPECT_EQ(msg.span.parent, 0u);
  }, decoded.message);
}

proto::BufferMap sample_map(proto::ChunkSeq base, std::size_t n) {
  proto::BufferMap map;
  map.base = base;
  for (std::size_t i = 0; i < n; ++i) map.have.push_back(i % 3 == 0);
  return map;
}

// --- one round-trip + encoded-size pin per Message variant ---

TEST(WireCodec, ChannelListQueryRoundTrip) {
  proto::ChannelListQuery m;
  m.span = {5, 6};  // must not be encoded
  EXPECT_EQ(encode_ok(m).size(), 8u);
  expect_round_trip(m);
}

TEST(WireCodec, ChannelListReplyRoundTrip) {
  proto::ChannelListReply m;
  m.channels = {1, 42, 0xFFFFFFFF};
  EXPECT_EQ(encode_ok(m).size(), 8u + 4 * 3);
  expect_round_trip(m);
  expect_round_trip(proto::ChannelListReply{});
}

TEST(WireCodec, JoinQueryRoundTrip) {
  const proto::JoinQuery m{77};
  EXPECT_EQ(encode_ok(m).size(), 12u);
  expect_round_trip(m);
}

TEST(WireCodec, JoinReplyRoundTrip) {
  proto::JoinReply m;
  m.channel = 9;
  m.source = net::IpAddress(127, 1, 0, 3);
  m.trackers = {net::IpAddress(127, 1, 0, 2), net::IpAddress(127, 2, 0, 2)};
  EXPECT_EQ(encode_ok(m).size(), 16u + 6 * 2);
  expect_round_trip(m);
}

TEST(WireCodec, TrackerQueryRoundTrip) {
  const proto::TrackerQuery m{3};
  EXPECT_EQ(encode_ok(m).size(), 16u);
  expect_round_trip(m);
}

TEST(WireCodec, TrackerReplyRoundTrip) {
  proto::TrackerReply m;
  m.channel = 3;
  for (std::uint8_t i = 1; i <= 60; ++i)
    m.peers.push_back(net::IpAddress(127, 2, 1, i));
  EXPECT_EQ(encode_ok(m).size(), 12u + 6 * 60);
  expect_round_trip(m);
}

TEST(WireCodec, PeerListQueryRoundTrip) {
  proto::PeerListQuery m;
  m.channel = 3;
  m.my_peers = {net::IpAddress(127, 5, 0, 1)};
  EXPECT_EQ(encode_ok(m).size(), 12u + 6);
  expect_round_trip(m);
}

TEST(WireCodec, PeerListReplyRoundTrip) {
  proto::PeerListReply m;
  m.channel = 3;
  m.peers = {net::IpAddress(127, 3, 0, 1), net::IpAddress(127, 4, 0, 1)};
  EXPECT_EQ(encode_ok(m).size(), 12u + 6 * 2);
  expect_round_trip(m);
}

TEST(WireCodec, ConnectQueryRoundTrip) {
  const proto::ConnectQuery m{11};
  EXPECT_EQ(encode_ok(m).size(), 16u);
  expect_round_trip(m);
}

TEST(WireCodec, ConnectReplyRoundTrip) {
  proto::ConnectReply m;
  m.channel = 11;
  m.accepted = true;
  m.map = sample_map(1000, 37);  // 37 % 8 == 5 trailing bits
  EXPECT_EQ(encode_ok(m).size(), 20u + (37 + 7) / 8);
  expect_round_trip(m);
  m.accepted = false;
  m.map = sample_map(0, 0);  // rejection with an empty map
  EXPECT_EQ(encode_ok(m).size(), 20u);
  expect_round_trip(m);
  m.map = sample_map(8, 16);  // exact byte multiple (trailing == 0)
  expect_round_trip(m);
}

TEST(WireCodec, BufferMapAnnounceRoundTrip) {
  proto::BufferMapAnnounce m;
  m.channel = 11;
  m.map = sample_map(123456789012345ull, 64);
  EXPECT_EQ(encode_ok(m).size(), 20u + 8);
  expect_round_trip(m);
}

TEST(WireCodec, DataQueryRoundTrip) {
  proto::DataQuery m;
  m.channel = 11;
  m.chunk = 0xDEADBEEFCAFEull;
  EXPECT_EQ(encode_ok(m).size(), 20u);
  expect_round_trip(m);
}

TEST(WireCodec, DataReplyRoundTrip) {
  proto::DataReply m;
  m.channel = 11;
  m.chunk = 99;
  m.subpieces = 4;
  m.payload_bytes = 5520;  // the default 1380 x 4 chunk
  EXPECT_EQ(encode_ok(m).size(), 5520u + 12 + 28 * 3);
  expect_round_trip(m);
}

TEST(WireCodec, GoodbyeRoundTrip) {
  const proto::Goodbye m{11};
  EXPECT_EQ(encode_ok(m).size(), 12u);
  expect_round_trip(m);
}

TEST(WireCodec, DegenerateDataReplyIsUnencodable) {
  // payload budget below the fixed fields: the protocol never produces
  // this shape, and v1 refuses it rather than lying about sizes.
  proto::DataReply m;
  m.subpieces = 1;
  m.payload_bytes = 0;
  std::vector<std::uint8_t> out;
  EXPECT_EQ(encode_message(m, kEpoch, &out), WireError::kUnencodable);
  EXPECT_TRUE(out.empty());
}

// --- malformed-packet rejection, one distinct error per failure shape ---

TEST(WireCodec, RejectsTruncatedHeader) {
  const std::vector<std::uint8_t> wire = encode_ok(proto::JoinQuery{1});
  for (std::size_t len = 0; len < kHeaderBytes; ++len)
    EXPECT_EQ(decode_message(wire.data(), len, kEpoch).error,
              WireError::kTruncated);
}

TEST(WireCodec, RejectsBadMagic) {
  std::vector<std::uint8_t> wire = encode_ok(proto::JoinQuery{1});
  wire[0] ^= 0xFF;
  EXPECT_EQ(decode_message(wire.data(), wire.size(), kEpoch).error,
            WireError::kBadMagic);
}

TEST(WireCodec, RejectsBadVersion) {
  std::vector<std::uint8_t> wire = encode_ok(proto::JoinQuery{1});
  wire[2] = kVersion + 1;
  EXPECT_EQ(decode_message(wire.data(), wire.size(), kEpoch).error,
            WireError::kBadVersion);
}

TEST(WireCodec, RejectsBadEpoch) {
  const std::vector<std::uint8_t> wire = encode_ok(proto::JoinQuery{1});
  EXPECT_EQ(decode_message(wire.data(), wire.size(), kEpoch + 1).error,
            WireError::kBadEpoch);
}

TEST(WireCodec, RejectsBadTag) {
  std::vector<std::uint8_t> wire = encode_ok(proto::JoinQuery{1});
  wire[3] = kNumTags;
  EXPECT_EQ(decode_message(wire.data(), wire.size(), kEpoch).error,
            WireError::kBadTag);
}

TEST(WireCodec, RejectsBadLength) {
  std::vector<std::uint8_t> wire = encode_ok(proto::TrackerReply{3, {}, {}});
  wire.push_back(0);  // 6-byte address entries can't cover 1 extra byte
  EXPECT_EQ(decode_message(wire.data(), wire.size(), kEpoch).error,
            WireError::kBadLength);
}

TEST(WireCodec, RejectsBadAux) {
  std::vector<std::uint8_t> wire = encode_ok(proto::JoinQuery{1});
  wire[7] = 1;  // JoinQuery defines no aux bits
  EXPECT_EQ(decode_message(wire.data(), wire.size(), kEpoch).error,
            WireError::kBadAux);
}

TEST(WireCodec, RejectsBadReserved) {
  std::vector<std::uint8_t> wire = encode_ok(proto::TrackerQuery{3});
  wire.back() = 1;  // reserved tail must be zero
  EXPECT_EQ(decode_message(wire.data(), wire.size(), kEpoch).error,
            WireError::kBadReserved);
  // Nonzero port slot in an address list.
  proto::TrackerReply r;
  r.channel = 1;
  r.peers = {net::IpAddress(127, 1, 0, 1)};
  wire = encode_ok(r);
  wire.back() = 9;
  EXPECT_EQ(decode_message(wire.data(), wire.size(), kEpoch).error,
            WireError::kBadReserved);
}

TEST(WireCodec, RejectsBitmapPaddingBits) {
  proto::BufferMapAnnounce m;
  m.channel = 1;
  m.map = sample_map(10, 3);  // one bitmap byte, 3 significant bits
  std::vector<std::uint8_t> wire = encode_ok(m);
  wire.back() |= 0x01;  // light up a padding bit
  EXPECT_EQ(decode_message(wire.data(), wire.size(), kEpoch).error,
            WireError::kBadReserved);
}

TEST(WireCodec, ErrorNamesAreDistinct) {
  const WireError all[] = {
      WireError::kOk,        WireError::kTruncated,  WireError::kBadMagic,
      WireError::kBadVersion, WireError::kBadEpoch,  WireError::kBadTag,
      WireError::kBadLength, WireError::kBadAux,     WireError::kBadReserved,
      WireError::kUnencodable};
  for (const auto a : all) {
    for (const auto b : all) {
      if (a != b) {
        EXPECT_NE(wire_error_name(a), wire_error_name(b));
      }
    }
  }
}

// --- seeded fuzz: decode must reject garbage gracefully, never crash ---

TEST(WireCodec, FuzzRandomBuffersNeverCrash) {
  sim::Rng rng(0xF0221);
  std::vector<std::uint8_t> buf;
  for (int iter = 0; iter < 4000; ++iter) {
    const std::size_t len = static_cast<std::size_t>(rng.next_below(600));
    buf.resize(len);
    for (auto& b : buf)
      b = static_cast<std::uint8_t>(rng.next_below(256));
    const DecodeResult r = decode_message(buf.data(), buf.size(), kEpoch);
    if (r.error == WireError::kOk) {
      // A random buffer that decodes must still satisfy the size identity.
      EXPECT_EQ(proto::wire_size(r.message), buf.size() + kIpUdpHeader);
    }
  }
}

TEST(WireCodec, FuzzMutatedValidPacketsNeverCrash) {
  sim::Rng rng(0xF0222);
  proto::TrackerReply tr;
  tr.channel = 5;
  for (std::uint8_t i = 1; i <= 20; ++i)
    tr.peers.push_back(net::IpAddress(127, 1, 0, i));
  proto::BufferMapAnnounce bma;
  bma.channel = 5;
  bma.map = sample_map(40, 100);
  proto::DataReply dr;
  dr.channel = 5;
  dr.chunk = 1;
  dr.subpieces = 4;
  dr.payload_bytes = 5520;
  const proto::Message seeds[] = {tr, bma, dr};
  for (const auto& seed : seeds) {
    const std::vector<std::uint8_t> clean = encode_ok(seed);
    for (int iter = 0; iter < 1000; ++iter) {
      std::vector<std::uint8_t> wire = clean;
      // Truncate, extend, or flip bytes at random.
      switch (rng.next_below(3)) {
        case 0:
          wire.resize(static_cast<std::size_t>(rng.next_below(wire.size())));
          break;
        case 1:
          wire.resize(wire.size() + 1 + rng.next_below(16), 0);
          break;
        default:
          for (int flips = 0; flips < 4; ++flips)
            wire[static_cast<std::size_t>(rng.next_below(wire.size()))] =
                static_cast<std::uint8_t>(rng.next_below(256));
          break;
      }
      const DecodeResult r = decode_message(wire.data(), wire.size(), kEpoch);
      if (r.error == WireError::kOk) {
        EXPECT_EQ(proto::wire_size(r.message), wire.size() + kIpUdpHeader);
      }
    }
  }
}

}  // namespace
}  // namespace ppsim::wire
