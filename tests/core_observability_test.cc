#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/experiment.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/progress.h"
#include "obs/resource_probe.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "workload/scenario.h"

namespace ppsim::core {
namespace {

ExperimentConfig small_config(std::uint64_t seed = 7) {
  ExperimentConfig config;
  config.scenario = workload::unpopular_channel();
  config.scenario.viewers = 25;
  config.scenario.duration = sim::Time::minutes(3);
  config.scenario.seed = seed;
  config.probes = {tele_probe()};
  return config;
}

TEST(Observability, MetricsMatrixReconcilesWithTrafficGroundTruth) {
  ExperimentConfig config = small_config();
  obs::MetricsRegistry metrics;
  config.observability.metrics = &metrics;

  const ExperimentResult result = run_experiment(config);
  ASSERT_GT(result.traffic.total(), 0u);

  // Every per-ISP-pair counter must equal the ground-truth matrix cell
  // exactly: both are incremented by the same global-tap delivery.
  for (const auto src : net::kAllIspCategories) {
    for (const auto dst : net::kAllIspCategories) {
      const obs::Counter* c = metrics.find_counter(
          "bytes_uploaded",
          {{"src_isp", std::string(net::to_string(src))},
           {"dst_isp", std::string(net::to_string(dst))}});
      ASSERT_NE(c, nullptr);
      EXPECT_EQ(c->value(),
                result.traffic.bytes[static_cast<std::size_t>(src)]
                                    [static_cast<std::size_t>(dst)])
          << net::to_string(src) << " -> " << net::to_string(dst);
    }
  }
}

TEST(Observability, CounterTotalsReconcileWithDeliveredBytes) {
  ExperimentConfig config = small_config();
  const ExperimentResult result = run_experiment(config);

  const std::uint64_t delivered = result.traffic.total();
  ASSERT_GT(delivered, 0u);
  // The two accountings bracket each other but are not identical: the
  // matrix counts every delivered DataReply (duplicates included) except
  // those whose sender churned out before delivery (the global tap cannot
  // attribute an ISP to a detached sender), while peers count a download
  // only on first insert. Both slippages are rare, so the totals must
  // agree closely without being equal.
  const double down = static_cast<double>(
      result.counter_totals.bytes_downloaded);
  EXPECT_GT(result.counter_totals.bytes_downloaded, 0u);
  EXPECT_GT(result.counter_totals.bytes_uploaded, 0u);
  EXPECT_NEAR(down / static_cast<double>(delivered), 1.0, 0.01);

  // Per-ISP splits sum to the totals, field by field.
  proto::PeerCounters recomposed;
  for (const auto& c : result.counters_by_isp) recomposed += c;
  for_each_field(recomposed, [&, i = std::size_t{0}](
                                 const char* name,
                                 const std::uint64_t& v) mutable {
    std::uint64_t total_v = 0;
    for_each_field(result.counter_totals,
                   [&, j = std::size_t{0}](const char*,
                                           const std::uint64_t& tv) mutable {
                     if (j == i) total_v = tv;
                     ++j;
                   });
    EXPECT_EQ(v, total_v) << name;
    ++i;
  });
}

TEST(Observability, SamplerProducesMonotoneBoundedSeries) {
  ExperimentConfig config = small_config();
  config.observability.sample_period = sim::Time::seconds(15);
  const ExperimentResult result = run_experiment(config);

  // 3 simulated minutes at 15 s cadence -> 12 samples (one at t=180 fires
  // exactly at the horizon).
  ASSERT_GE(result.samples.size(), 11u);
  sim::Time prev_t = sim::Time::zero();
  std::uint64_t prev_bytes = 0;
  for (const auto& s : result.samples) {
    EXPECT_GT(s.t, prev_t);
    prev_t = s.t;
    const std::uint64_t cum = obs::matrix_total(s.bytes);
    EXPECT_GE(cum, prev_bytes);
    prev_bytes = cum;
    EXPECT_GE(s.same_isp_share_cum, 0.0);
    EXPECT_LE(s.same_isp_share_cum, 1.0);
    EXPECT_GE(s.same_isp_share_interval, 0.0);
    EXPECT_LE(s.same_isp_share_interval, 1.0);
    EXPECT_GE(s.neighbor_same_isp_share, 0.0);
    EXPECT_LE(s.neighbor_same_isp_share, 1.0);
    EXPECT_GE(s.avg_continuity, 0.0);
    EXPECT_LE(s.avg_continuity, 1.0);
  }
  // The final cumulative snapshot cannot exceed the end-of-run matrix.
  EXPECT_LE(prev_bytes, result.traffic.total());
}

TEST(Observability, SamplingDoesNotPerturbTheSimulation) {
  ExperimentConfig plain = small_config();
  const ExperimentResult base = run_experiment(plain);

  ExperimentConfig sampled = small_config();
  obs::MetricsRegistry metrics;
  obs::CountingTraceSink trace;
  sampled.observability.metrics = &metrics;
  sampled.observability.trace = &trace;
  sampled.observability.sample_period = sim::Time::seconds(10);
  const ExperimentResult observed = run_experiment(sampled);

  // Observability is passive: the traffic matrix, counters, and session
  // list must be identical with and without it.
  EXPECT_EQ(base.traffic.bytes, observed.traffic.bytes);
  EXPECT_EQ(base.swarm.peers_spawned, observed.swarm.peers_spawned);
  EXPECT_EQ(base.swarm.departures, observed.swarm.departures);
  EXPECT_EQ(base.counter_totals.bytes_downloaded,
            observed.counter_totals.bytes_downloaded);
  EXPECT_EQ(base.counter_totals.data_requests_sent,
            observed.counter_totals.data_requests_sent);
  ASSERT_EQ(base.sessions.size(), observed.sessions.size());
  EXPECT_GT(trace.total(), 0u);
}

TEST(Observability, WindowedStreamingMatchesUnwindowedDumpByteForByte) {
  // The scale-observatory contract: a windowed run's streamed samples file
  // must be byte-identical to the end-of-run dump an unwindowed run writes,
  // while holding only a bounded tail in memory.
  ExperimentConfig plain = small_config();
  plain.observability.sample_period = sim::Time::seconds(15);
  const ExperimentResult base = run_experiment(plain);
  std::ostringstream dump;
  obs::write_samples_ndjson(dump, base.samples);

  ExperimentConfig windowed = small_config();
  std::ostringstream stream;
  windowed.observability.sample_period = sim::Time::seconds(15);
  windowed.observability.sample_window = sim::Time::seconds(30);
  windowed.observability.samples_stream = &stream;
  windowed.observability.sample_retain = 4;
  const ExperimentResult result = run_experiment(windowed);

  EXPECT_EQ(stream.str(), dump.str());
  EXPECT_EQ(result.samples_flushed, base.samples.size());
  // The in-memory series is the bounded tail, not the full run.
  EXPECT_LE(result.samples.size(), 4u);
  ASSERT_FALSE(result.samples.empty());
  EXPECT_EQ(result.samples.back().t.as_micros(),
            base.samples.back().t.as_micros());
  // Windowing is output plumbing only; the simulation is untouched.
  EXPECT_EQ(base.traffic.bytes, result.traffic.bytes);
}

TEST(Observability, ScaleObservatoryDoesNotPerturbTheSimulation) {
  ExperimentConfig plain = small_config();
  const ExperimentResult base = run_experiment(plain);

  // Arm the whole scale observatory: resource probe (with gauges), progress
  // heartbeat, and windowed streaming.
  ExperimentConfig observed_cfg = small_config();
  obs::MetricsRegistry metrics;
  obs::RunProfiler profiler;
  obs::ResourceProbe probe;
  probe.bind_metrics(&metrics);
  std::ostringstream heartbeat, stream;
  obs::ProgressMeter meter({.out = &heartbeat,
                            .profiler = &profiler,
                            .total = observed_cfg.scenario.duration});
  observed_cfg.observability.metrics = &metrics;
  observed_cfg.observability.profiler = &profiler;
  observed_cfg.observability.resource = &probe;
  observed_cfg.observability.progress = &meter;
  observed_cfg.observability.progress_period = sim::Time::seconds(30);
  observed_cfg.observability.sample_period = sim::Time::seconds(15);
  observed_cfg.observability.sample_window = sim::Time::seconds(30);
  observed_cfg.observability.samples_stream = &stream;
  const ExperimentResult observed = run_experiment(observed_cfg);

  EXPECT_EQ(base.traffic.bytes, observed.traffic.bytes);
  EXPECT_EQ(base.swarm.peers_spawned, observed.swarm.peers_spawned);
  EXPECT_EQ(base.counter_totals.bytes_downloaded,
            observed.counter_totals.bytes_downloaded);
  ASSERT_EQ(base.sessions.size(), observed.sessions.size());

  // The probe ticked on the sampler cadence and published every gauge.
  EXPECT_GT(probe.samples_taken(), 0u);
  for (const std::string_view name : obs::kResourceGaugeNames)
    EXPECT_NE(metrics.find_gauge(std::string(name)), nullptr) << name;
  // Deterministic scheduler gauges carry real readings.
  EXPECT_GT(metrics.find_gauge("live_peers")->value(), 0.0);
  // The heartbeat fired (180 s run / 30 s period, minus horizon effects).
  EXPECT_GE(meter.lines_written(), 4u);
  EXPECT_NE(heartbeat.str().find("[progress] t="), std::string::npos);
}

TEST(Observability, TraceCoversTheProtocolVocabulary) {
  ExperimentConfig config = small_config();
  obs::CountingTraceSink trace;
  config.observability.trace = &trace;
  run_experiment(config);

  EXPECT_GT(trace.count("peer_join"), 0u);
  EXPECT_GT(trace.count("tracker_query"), 0u);
  EXPECT_GT(trace.count("tracker_reply"), 0u);
  EXPECT_GT(trace.count("tracker_serve"), 0u);
  EXPECT_GT(trace.count("gossip_query"), 0u);
  EXPECT_GT(trace.count("gossip_reply"), 0u);
  EXPECT_GT(trace.count("connect_attempt"), 0u);
  EXPECT_GT(trace.count("connect_result"), 0u);
  EXPECT_GT(trace.count("data_request"), 0u);
  EXPECT_GT(trace.count("data_serve"), 0u);
  EXPECT_GT(trace.count("source_serve"), 0u);
  EXPECT_GT(trace.count("peer_leave"), 0u);
}

TEST(Observability, ProfilerSeesCategorizedEvents) {
  ExperimentConfig config = small_config();
  obs::RunProfiler profiler;
  config.observability.profiler = &profiler;
  const ExperimentResult result = run_experiment(config);

  EXPECT_EQ(profiler.events_total(), result.swarm.events_executed);
  EXPECT_GT(profiler.max_queue_depth(), 0u);
  // Never assert on wall-clock magnitudes — only on structure.
  EXPECT_GE(profiler.wall_seconds_total(), 0.0);
  const auto& cats = profiler.categories();
  EXPECT_TRUE(cats.count("net.deliver") == 1);
  EXPECT_TRUE(cats.count("peer.playback") == 1);
  std::uint64_t events_sum = 0;
  for (const auto& [name, stats] : cats) events_sum += stats.events;
  EXPECT_EQ(events_sum, profiler.events_total());

  std::ostringstream os;
  profiler.write_ndjson(os);
  EXPECT_NE(os.str().find("\"category\":\"total\""), std::string::npos);
}

TEST(Observability, HealthSummaryRidesTheResult) {
  ExperimentConfig config = small_config();
  const obs::HealthRuleSet rules = obs::default_health_rules();
  config.observability.health_rules = &rules;
  const ExperimentResult result = run_experiment(config);

  ASSERT_EQ(result.health.rules.size(), rules.rules.size());
  // --health-rules without an explicit period implies the 10 s default:
  // 3 simulated minutes -> 18 sampler ticks, each one monitor evaluation.
  std::uint64_t evaluations = 0;
  for (const auto& [rule, status] : result.health.rules)
    evaluations = std::max(evaluations, status.evaluations);
  EXPECT_GT(evaluations, 0u);
  EXPECT_LE(evaluations, 18u);
}

TEST(Observability, MonitoringDoesNotPerturbTheSimulation) {
  ExperimentConfig sampled = small_config();
  sampled.observability.sample_period = sim::Time::seconds(10);
  const ExperimentResult base = run_experiment(sampled);

  ExperimentConfig monitored = small_config();
  monitored.observability.sample_period = sim::Time::seconds(10);
  const obs::HealthRuleSet rules = obs::default_health_rules();
  obs::MetricsRegistry metrics;
  monitored.observability.health_rules = &rules;
  monitored.observability.metrics = &metrics;
  const ExperimentResult observed = run_experiment(monitored);

  // The monitor rides the existing sampling tick: same schedule sequence,
  // same event count, identical simulated trajectory.
  EXPECT_EQ(base.traffic.bytes, observed.traffic.bytes);
  EXPECT_EQ(base.swarm.events_executed, observed.swarm.events_executed);
  EXPECT_EQ(base.samples.size(), observed.samples.size());
}

TEST(Observability, SamplerTickStopsAtTheHorizon) {
  ExperimentConfig config = small_config();
  const obs::HealthRuleSet rules = obs::default_health_rules();
  config.observability.health_rules = &rules;
  // run_experiment returning at all proves the periodic chain stopped
  // re-arming; the series ending exactly at the horizon proves no tick
  // fired past it.
  const ExperimentResult result = run_experiment(config);
  ASSERT_EQ(result.samples.size(), 18u);
  EXPECT_EQ(result.samples.back().t, config.scenario.duration);
}

TEST(Observability, CriticalTripDumpsByteIdenticalPostmortems) {
  namespace fs = std::filesystem;
  const fs::path base =
      fs::temp_directory_path() / "ppsim_core_postmortem_test";
  fs::remove_all(base);

  // A queue-depth ceiling of 1 trips critical on the first evaluation of
  // any live run, so the dump path is exercised deterministically.
  obs::HealthRuleSet rules;
  obs::HealthRule rule;
  rule.kind = obs::HealthRuleKind::kQueueDepthCeiling;
  rule.warn = 1;
  rule.critical = 1;
  rule.label = "backlog";
  rules.rules.push_back(rule);

  auto run_once = [&](const fs::path& dir) {
    ExperimentConfig config = small_config();
    obs::FlightRecorder::Options options;
    options.dir = dir.string();
    obs::FlightRecorder recorder(options);
    config.observability.health_rules = &rules;
    config.observability.trace = &recorder;
    config.observability.recorder = &recorder;
    const ExperimentResult result = run_experiment(config);
    EXPECT_GE(result.postmortem_dumps, 1u);
    EXPECT_EQ(result.postmortem_dumps, recorder.dumps_written());
    EXPECT_EQ(result.health.worst, obs::HealthState::kCritical);
    return recorder.dump_paths();
  };
  const auto first = run_once(base / "a");
  const auto second = run_once(base / "b");

  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(fs::path(first[i]).filename(), fs::path(second[i]).filename());
    auto slurp = [](const std::string& path) {
      std::ifstream in(path);
      std::ostringstream ss;
      ss << in.rdbuf();
      return ss.str();
    };
    const std::string a = slurp(first[i]);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, slurp(second[i]));
  }
  fs::remove_all(base);
}

TEST(Observability, MultiChannelPlumbsObservabilityToo) {
  MultiChannelConfig config;
  workload::ScenarioSpec sc = workload::unpopular_channel();
  sc.viewers = 12;
  config.channels.push_back(ChannelPlan{sc, {}});
  workload::ScenarioSpec sc2 = workload::unpopular_channel();
  sc2.viewers = 12;
  sc2.channel.id = 2;
  config.channels.push_back(ChannelPlan{sc2, {}});
  config.duration = sim::Time::minutes(2);
  config.seed = 11;
  obs::MetricsRegistry metrics;
  config.observability.metrics = &metrics;
  config.observability.sample_period = sim::Time::seconds(30);

  const ExperimentResult result = run_multi_channel(config);
  EXPECT_GT(result.samples.size(), 0u);
  std::uint64_t matrix_metric_total = 0;
  for (const auto src : net::kAllIspCategories) {
    for (const auto dst : net::kAllIspCategories) {
      const obs::Counter* c = metrics.find_counter(
          "bytes_uploaded",
          {{"src_isp", std::string(net::to_string(src))},
           {"dst_isp", std::string(net::to_string(dst))}});
      ASSERT_NE(c, nullptr);
      matrix_metric_total += c->value();
    }
  }
  EXPECT_EQ(matrix_metric_total, result.traffic.total());
}

}  // namespace
}  // namespace ppsim::core
