// Reproduces Figures 11-14: per-peer connections and contributions for the
// four probe x channel combinations. Panels per figure:
//   (a) unique peers connected for data transfer, by ISP
//   (b) rank distribution of data requests: stretched-exponential fit
//       (c, a, b, R2 in SE scale) vs Zipf fit (R2 in log-log)
//   (c) CDF of traffic contributions: top-10% share
//
// Paper shapes: few unique data peers relative to listed IPs (<10-20% used);
// request counts fit a stretched exponential (R2 ~0.95-0.998), clearly not
// Zipf; top 10% of peers contribute ~67-86% of requests/traffic.
//   Fig 11 (TELE-pop):    326 peers, c=0.35 a=5.48 b=32.1 R2=0.956, top10 73%
//   Fig 12 (TELE-unpop):  226 peers, c=0.40 a=10.5 b=58.1 R2=0.987, top10 67%
//   Fig 13 (Mason-pop):   233 peers, c=0.20 a=1.33 b=8.24 R2=0.998, top10 82%
//   Fig 14 (Mason-unpop):  89 peers, c=0.30 a=6.35 b=29.1 R2=0.991, top10 77%

#include <iostream>

#include "core/report.h"
#include "figures_common.h"

namespace {

using namespace ppsim;

void report(const char* figure, const core::ProbeResult& probe) {
  std::cout << "--- " << figure << " ---\n";
  core::print_contributions(std::cout, probe.analysis);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Scale scale = bench::parse_flags(argc, argv);
  bench::print_banner(
      std::cout, "Figures 11-14: connections and contributions", scale);

  auto popular = bench::run_days(
      scale, /*popular=*/true, {core::tele_probe(), core::mason_probe()});
  auto unpopular = bench::run_days(
      scale, /*popular=*/false, {core::tele_probe(), core::mason_probe()});

  report("Fig 11: TELE probe, popular", popular.probes[0]);
  report("Fig 12: TELE probe, unpopular", unpopular.probes[0]);
  report("Fig 13: Mason probe, popular", popular.probes[1]);
  report("Fig 14: Mason probe, unpopular", unpopular.probes[1]);

  std::cout << "Expected shape: SE fit beats Zipf in every panel; top-10% "
               "share in the 50-90% band.\n";
  return 0;
}
