// Reproduces Figure 3: the China-TELE node viewing an unpopular program.
//
// Paper shapes: returned addresses from TELE and CNC are comparable (CNC a
// bit larger); yet ~55% of transmissions/bytes still come from TELE peers
// with CNC much smaller (~18%) — locality survives thin audiences.

#include <iostream>

#include "core/report.h"
#include "figures_common.h"

int main(int argc, char** argv) {
  using namespace ppsim;
  const bench::Scale scale = bench::parse_flags(argc, argv);
  bench::print_banner(std::cout,
                      "Figure 3: China-TELE node, unpopular program", scale);

  auto result = bench::run_days(
      scale, /*popular=*/false, {core::tele_probe()});
  const auto& probe = result.probes.front();

  std::cout << "--- Fig 3(a) ---\n";
  core::print_returned_addresses(std::cout, probe.analysis);
  std::cout << "\n--- Fig 3(b) ---\n";
  core::print_list_sources(std::cout, probe.analysis);
  std::cout << "\n--- Fig 3(c) ---\n";
  core::print_data_by_isp(std::cout, probe.analysis);
  std::cout << "\nHeadline: TELE serves "
            << core::pct(probe.analysis.byte_locality(net::IspCategory::kTele))
            << " of bytes vs CNC "
            << core::pct(probe.analysis.data_bytes.share(net::IspCategory::kCnc))
            << " (paper: ~55% vs ~18%)\n";
  return 0;
}
