// Interconnect ablation: what happens when cross-ISP capacity is an
// explicit shared bottleneck rather than a fixed latency penalty. This is
// the ISP-side motivation of the paper made concrete — if P2P selection is
// topology-blind, the cross-ISP pipes must carry the stream many times
// over; with PPLive's emergent locality they barely notice the swarm.
//
// Reports, for decreasing TELE<->CNC interconnect capacity, the probe's
// locality and continuity under the PPLive policy vs the tracker-only
// baseline. As the pipe shrinks, the baseline's viewers start to starve
// while the locality-forming policy keeps streaming.

#include <cstdio>
#include <iostream>

#include "figures_common.h"

namespace {

using namespace ppsim;

struct Row {
  double locality = 0;
  double continuity = 0;
  double cross_mb = 0;
};

Row run(const bench::Scale& scale, baseline::Strategy strategy,
        double pipe_bps) {
  auto config = bench::popular_config(scale, {core::tele_probe()});
  config.strategy = strategy;
  if (pipe_bps > 0) {
    net::InterconnectConfig ic;
    ic.default_bps = pipe_bps;
    config.interconnects = ic;
  }
  auto result = core::run_experiment(config);
  Row row;
  row.locality = result.probes.front().analysis.byte_locality(
      result.probes.front().category);
  row.continuity = result.swarm.avg_continuity;
  row.cross_mb = static_cast<double>(result.traffic.cross_isp()) / 1e6;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Scale scale = bench::parse_flags(argc, argv);
  scale.minutes = std::min(scale.minutes, 8);
  bench::print_banner(std::cout,
                      "Ablation: shared inter-ISP bottleneck capacity",
                      scale);

  constexpr double kPipes[] = {0, 100e6, 40e6, 15e6};
  std::printf("%-14s | %28s | %28s\n", "", "pplive-referral",
              "tracker-only");
  std::printf("%-14s | %9s %9s %8s | %9s %9s %8s\n", "pipe capacity", "loc",
              "contin", "crossMB", "loc", "contin", "crossMB");
  for (double pipe : kPipes) {
    Row pplive = run(scale, baseline::Strategy::kPplive, pipe);
    Row tracker = run(scale, baseline::Strategy::kTrackerOnly, pipe);
    char label[32];
    if (pipe == 0)
      std::snprintf(label, sizeof label, "unlimited");
    else
      std::snprintf(label, sizeof label, "%.0f Mbps", pipe / 1e6);
    std::printf("%-14s | %8.1f%% %8.1f%% %8.1f | %8.1f%% %8.1f%% %8.1f\n",
                label, 100 * pplive.locality, 100 * pplive.continuity,
                pplive.cross_mb, 100 * tracker.locality,
                100 * tracker.continuity, tracker.cross_mb);
  }
  std::printf(
      "\nExpected shape: with any finite pipe, cross-ISP data slows and\n"
      "drops, so the latency-driven mechanisms push locality to ~100%% and\n"
      "cross-ISP volume collapses by an order of magnitude — but viewers in\n"
      "ISPs with thin same-ISP supply pay for it in continuity. The swarm\n"
      "fragments into ISP islands: the regime ISP throttling (the paper's\n"
      "Comcast/BitTorrent example) pushes P2P systems into.\n");
  return 0;
}
