// Locality convergence (beyond the paper): how quickly the emergent
// clustering builds up after a probe joins. The paper's probes measured
// mature sessions; this bench shows the transient — the locality of the
// probe's downloaded bytes per minute since join, for the PPLive policy and
// the ablated variants. It is the calibration tool used to size the
// capture windows of the figure benches.

#include <cstdio>
#include <iostream>

#include "figures_common.h"

namespace {

using namespace ppsim;

void run_variant(const char* label, const bench::Scale& scale,
                 baseline::Strategy strategy) {
  auto config = bench::popular_config(scale, {core::tele_probe()});
  config.strategy = strategy;
  config.scenario.duration = sim::Time::minutes(scale.minutes);
  auto result = core::run_experiment(config);
  const auto& probe = result.probes.front();
  auto series = probe.analysis.locality_over_time(probe.category,
                                                  sim::Time::minutes(1));
  std::printf("%-20s", label);
  for (const auto& point : series) {
    if (point.bytes == 0)
      std::printf("    - ");
    else
      std::printf(" %4.0f%%", 100.0 * point.locality);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Scale scale = bench::parse_flags(argc, argv);
  scale.minutes = std::max(scale.minutes, 15);
  bench::print_banner(std::cout,
                      "Convergence: probe locality per minute since join",
                      scale);

  std::printf("%-20s minute-by-minute own-ISP share of downloaded bytes\n",
              "strategy");
  run_variant("pplive-referral", scale, baseline::Strategy::kPplive);
  run_variant("tracker-only", scale, baseline::Strategy::kTrackerOnly);
  run_variant("no-rush-referral", scale, baseline::Strategy::kNoRush);
  run_variant("isp-biased-oracle", scale, baseline::Strategy::kIspBiased);

  std::printf(
      "\nExpected shape: pplive-referral climbs toward the oracle within\n"
      "minutes (latency races + turnover compound); the ablations plateau\n"
      "near the audience mix.\n");
  return 0;
}
