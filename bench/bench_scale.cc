// BENCH_scale: the macro-bench that pins the simulator's scale trajectory
// (ROADMAP item 1). Sweeps peer counts over the multi-ISP popular channel
// and records, per sweep point, the whole-run wall clock, peak RSS, events
// executed, and events per wall second — written in the shared
// ppsim-bench-v1 schema (with the macro-only rss_peak_bytes / wall_s
// fields) so the committed bench/BENCH_scale.json diffs cleanly and CI can
// guard its coverage like BENCH_micro.json.
//
// Wall time and throughput come from an attached obs::RunProfiler — the
// sanctioned steady_clock island — so the measured configuration is the
// same observer-armed setup a profiled production run uses. Peak RSS is
// process-wide and monotone, which is why the sweep always runs in
// ascending peer order: each point's reading is attributable to the
// largest run so far, i.e. its own.
//
//   bench_scale [--peers N]... [--minutes M] [--seed S] [--bench-json F]
//
// Defaults: --peers 1000 5000 20000, 4 simulated minutes, seed 20081012.

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "figures_common.h"
#include "obs/bench_json.h"
#include "obs/profiler.h"
#include "obs/resource_probe.h"
#include "workload/scenario.h"

namespace {

struct ScaleFlags {
  std::vector<int> peers;
  int minutes = 4;
  std::uint64_t seed = 20081012;
  std::string bench_json;
};

ScaleFlags parse_scale_flags(int argc, char** argv) {
  ScaleFlags f;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--peers") {
      const int n = std::atoi(value());
      if (n <= 0) {
        std::fprintf(stderr, "--peers must be positive\n");
        std::exit(2);
      }
      f.peers.push_back(n);
    } else if (arg == "--minutes") {
      f.minutes = std::atoi(value());
    } else if (arg == "--seed") {
      f.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--bench-json") {
      f.bench_json = value();
    } else {
      std::fprintf(stderr,
                   "usage: bench_scale [--peers N]... [--minutes M] "
                   "[--seed S] [--bench-json F]\n");
      std::exit(2);
    }
  }
  if (f.peers.empty()) f.peers = {1000, 5000, 20000};
  std::sort(f.peers.begin(), f.peers.end());
  return f;
}

/// "scale/peers:01000" — zero-padded so the writer's sort-by-name order is
/// the numeric sweep order.
std::string row_name(int peers) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "scale/peers:%05d", peers);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const ScaleFlags flags = parse_scale_flags(argc, argv);

  std::printf("BENCH_scale: peer-count sweep, popular multi-ISP channel, "
              "%d sim-minutes, seed %" PRIu64 "\n\n",
              flags.minutes, flags.seed);
  std::printf("%8s %14s %9s %12s %10s %10s\n", "peers", "events", "wall_s",
              "events/s", "rss_peak", "queue_pk");

  std::vector<ppsim::obs::BenchEntry> entries;
  for (const int peers : flags.peers) {
    ppsim::core::ExperimentConfig config;
    config.scenario = ppsim::workload::popular_channel();
    config.scenario.viewers = peers;
    config.scenario.duration = ppsim::sim::Time::minutes(flags.minutes);
    config.scenario.seed = flags.seed;

    ppsim::obs::RunProfiler profiler;
    config.observability.profiler = &profiler;

    ppsim::core::ExperimentResult result =
        ppsim::core::run_experiment(config);
    (void)result;

    const double wall = profiler.wall_seconds_total();
    const std::uint64_t rss_peak =
        ppsim::obs::ResourceProbe::peak_rss_bytes();

    ppsim::obs::BenchEntry e;
    e.name = row_name(peers);
    e.iterations = profiler.events_total();
    e.ns_per_op = profiler.events_total() == 0
                      ? 0.0
                      : wall / static_cast<double>(profiler.events_total()) *
                            1e9;
    e.peak_queue_depth = profiler.max_queue_depth();
    e.rss_peak_bytes = rss_peak;
    e.wall_s = wall;
    entries.push_back(e);

    std::printf("%8d %14" PRIu64 " %9.2f %12.0f %8.1fMB %10" PRIu64 "\n",
                peers, e.iterations, wall, profiler.events_per_second(),
                static_cast<double>(rss_peak) / (1024.0 * 1024.0),
                e.peak_queue_depth);
  }

  std::printf("\n");
  if (!ppsim::bench::emit_bench_json(flags.bench_json, std::move(entries)))
    return 1;
  return 0;
}
