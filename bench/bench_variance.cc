// Robustness of the headline numbers: distribution of the probe-side
// locality over many independent capture days, with bootstrap confidence
// intervals. This quantifies how representative any single day (including
// the figure benches' default day and the paper's own measured days) is.

#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/goodness.h"
#include "analysis/stats.h"
#include "figures_common.h"

namespace {

using namespace ppsim;

void sweep(const char* label, const bench::Scale& scale, bool popular,
           core::ProbeSpec probe, net::IspCategory own, int days) {
  std::vector<double> locality;
  for (int day = 0; day < days; ++day) {
    bench::Scale day_scale = scale;
    day_scale.seed = scale.seed + static_cast<std::uint64_t>(day) * 29;
    auto config = popular ? bench::popular_config(day_scale, {probe})
                          : bench::unpopular_config(day_scale, {probe});
    auto result = core::run_experiment(config);
    locality.push_back(result.probes.front().analysis.byte_locality(own));
  }
  sim::Rng rng(7);
  const auto interval = analysis::bootstrap_mean(locality, rng);
  std::printf(
      "%-18s mean=%5.1f%%  sd=%5.1f%%  min=%5.1f%%  max=%5.1f%%  "
      "95%% CI of mean [%4.1f%%, %4.1f%%]\n",
      label, 100 * analysis::mean(locality), 100 * analysis::stddev(locality),
      100 * analysis::percentile(locality, 0),
      100 * analysis::percentile(locality, 100), 100 * interval.lo,
      100 * interval.hi);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Scale scale = bench::parse_flags(argc, argv);
  scale.minutes = std::min(scale.minutes, 8);  // many runs; keep each short
  bench::print_banner(std::cout,
                      "Variance: probe locality across capture days", scale);
  constexpr int kDays = 8;
  std::printf("(%d days per row)\n", kDays);
  sweep("TELE/popular", scale, true, core::tele_probe(),
        net::IspCategory::kTele, kDays);
  sweep("TELE/unpopular", scale, false, core::tele_probe(),
        net::IspCategory::kTele, kDays);
  sweep("Mason/popular", scale, true, core::mason_probe(),
        net::IspCategory::kForeign, kDays);
  sweep("Mason/unpopular", scale, false, core::mason_probe(),
        net::IspCategory::kForeign, kDays);
  std::printf(
      "\nExpected shape: China/popular tight and high; Mason spreads wide\n"
      "(the paper's Figure 6 observation, quantified).\n");
  return 0;
}
