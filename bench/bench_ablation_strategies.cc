// Strategy ablation (paper Sections 1 and 4): compares the measured PPLive
// policy against the comparators the paper discusses —
//   pplive-referral    the measured system (latency-based, neighbor referral)
//   tracker-only       BitTorrent-style membership (no gossip, no latency
//                      retention — optimistic-unchoke-style rotation)
//   isp-biased-oracle  Bindal/P4P-style explicit topology awareness
//   no-rush-referral   referral without connect-on-arrival or latency
//                      retention (ablates the latency race the paper
//                      credits for locality)
//
// For each strategy, reports probe-side locality (what a measurement study
// sees) and swarm-wide ground truth (intra-ISP share of all data bytes and
// total cross-ISP volume — what an ISP cares about), plus average playback
// continuity (what a user cares about). Single runs are noisy at this
// scale, so every cell is the mean over several seeds.

#include <cstdio>
#include <iostream>

#include "figures_common.h"

int main(int argc, char** argv) {
  using namespace ppsim;
  const bench::Scale scale = bench::parse_flags(argc, argv);
  bench::print_banner(std::cout, "Ablation: peer-selection strategies",
                      scale);

  struct Variant {
    const char* label;
    baseline::Strategy strategy;
    bool smart_trackers;
  };
  constexpr Variant kVariants[] = {
      {"pplive-referral", baseline::Strategy::kPplive, false},
      {"tracker-only", baseline::Strategy::kTrackerOnly, false},
      {"tracker-only+isp-trk", baseline::Strategy::kTrackerOnly, true},
      {"isp-biased-oracle", baseline::Strategy::kIspBiased, false},
      {"no-rush-referral", baseline::Strategy::kNoRush, false},
  };
  constexpr int kSeeds = 3;

  for (const char* channel : {"popular", "unpopular"}) {
    std::printf("%s channel (means over %d seeds):\n", channel, kSeeds);
    std::printf("%-22s %10s %12s %14s %12s\n", "strategy", "probe-loc",
                "swarm-loc", "crossISP-MB", "continuity");
    for (const auto& variant : kVariants) {
      double probe_loc = 0, swarm_loc = 0, cross_mb = 0, continuity = 0;
      for (int s = 0; s < kSeeds; ++s) {
        bench::Scale seeded = scale;
        seeded.seed = scale.seed + static_cast<std::uint64_t>(s) * 7919;
        auto config =
            std::string(channel) == "popular"
                ? bench::popular_config(seeded, {core::tele_probe()})
                : bench::unpopular_config(seeded, {core::tele_probe()});
        config.strategy = variant.strategy;
        config.locality_aware_trackers = variant.smart_trackers;
        auto result = core::run_experiment(config);
        const auto& probe = result.probes.front();
        probe_loc += probe.analysis.byte_locality(probe.category);
        swarm_loc += result.traffic.locality();
        cross_mb += static_cast<double>(result.traffic.cross_isp()) / 1e6;
        continuity += result.swarm.avg_continuity;
      }
      std::printf("%-22s %9.1f%% %11.1f%% %14.1f %11.1f%%\n", variant.label,
                  100.0 * probe_loc / kSeeds, 100.0 * swarm_loc / kSeeds,
                  cross_mb / kSeeds, 100.0 * continuity / kSeeds);
    }
    std::printf("\n");
  }
  std::printf(
      "Expected shape: pplive-referral approaches the oracle's locality\n"
      "without any topology information; tracker-only and no-rush lose\n"
      "locality (more cross-ISP bytes) at comparable continuity.\n");
  return 0;
}
