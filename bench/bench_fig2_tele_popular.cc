// Reproduces Figure 2: a China-TELE residential (ADSL) node viewing the
// popular live program. Panels:
//   (a) total returned peer addresses by ISP (duplicates kept)
//   (b) returned addresses split by replier class (peer vs tracker, per ISP)
//   (c) data transmissions and downloaded bytes by ISP
//
// Paper shapes: ~70% of returned IPs in TELE; most lists come from peers,
// not trackers; >85% of transmissions and bytes served by TELE peers.

#include <iostream>

#include "core/report.h"
#include "figures_common.h"

int main(int argc, char** argv) {
  using namespace ppsim;
  const bench::Scale scale = bench::parse_flags(argc, argv);
  bench::print_banner(std::cout, "Figure 2: China-TELE node, popular program",
                      scale);

  auto result =
      bench::run_days(scale, /*popular=*/true, {core::tele_probe()});
  const auto& probe = result.probes.front();

  std::cout << "--- Fig 2(a) ---\n";
  core::print_returned_addresses(std::cout, probe.analysis);
  std::cout << "\n--- Fig 2(b) ---\n";
  core::print_list_sources(std::cout, probe.analysis);
  std::cout << "\n--- Fig 2(c) ---\n";
  core::print_data_by_isp(std::cout, probe.analysis);
  std::cout << "\nHeadline: " << core::pct(probe.analysis.transmission_locality(
                                    net::IspCategory::kTele))
            << " of data transmissions and "
            << core::pct(probe.analysis.byte_locality(net::IspCategory::kTele))
            << " of downloaded bytes came from TELE peers (paper: >85%)\n";
  return 0;
}
