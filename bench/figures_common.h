#pragma once

// Shared harness for the figure-reproduction benches: flag parsing and the
// standard experiment configurations corresponding to the paper's probe
// deployments. Every bench accepts:
//
//   --viewers N     scale the popular channel's audience (default 300;
//                   the unpopular channel gets a proportional share)
//   --minutes M     capture duration in simulated minutes (default 10;
//                   the paper captured 2-hour sessions — pass 120 to match)
//   --seed S        reproducible run seed
//   --bench-json F  append-free machine-readable telemetry: write the
//                   run's BENCH entries to F (schema "ppsim-bench-v1",
//                   docs/OBSERVABILITY.md)

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/experiment.h"
#include "obs/bench_json.h"
#include "workload/scenario.h"

namespace ppsim::bench {

struct Scale {
  int popular_viewers = 300;
  int unpopular_viewers = 64;
  int minutes = 10;
  std::uint64_t seed = 20081012;  // a representative capture day (see Fig 6)
  std::string bench_json;         // telemetry output path; empty = off
};

Scale parse_flags(int argc, char** argv);

/// Shared --bench-json emitter: writes `entries` to `path` via
/// obs::write_bench_json and prints a confirmation line. Returns false (and
/// reports to stderr) when the file cannot be written. No-op returning true
/// when `path` is empty, so call sites can pass scale.bench_json verbatim.
bool emit_bench_json(const std::string& path,
                     std::vector<obs::BenchEntry> entries);

/// Experiment configs mirroring the paper's four headline workloads.
core::ExperimentConfig popular_config(const Scale& scale,
                                      std::vector<core::ProbeSpec> probes);
core::ExperimentConfig unpopular_config(const Scale& scale,
                                        std::vector<core::ProbeSpec> probes);

/// Runs the workload on `days` consecutive capture days (distinct seeds)
/// and merges each probe's analyses, like pooling several of the paper's
/// daily measurement sessions. Stabilizes single-day variance while
/// preserving every distributional shape. Traffic matrices are summed.
struct MultiDayResult {
  std::vector<core::ProbeResult> probes;  // analyses merged across days
  core::TrafficMatrix traffic;
};
MultiDayResult run_days(const Scale& scale, bool popular,
                        std::vector<core::ProbeSpec> probes, int days = 3);

/// Prints the standard run banner (workload, scale, seed).
void print_banner(std::ostream& os, const char* what, const Scale& scale);

}  // namespace ppsim::bench
