#pragma once

// Shared harness for the figure-reproduction benches: flag parsing and the
// standard experiment configurations corresponding to the paper's probe
// deployments. Every bench accepts:
//
//   --viewers N     scale the popular channel's audience (default 300;
//                   the unpopular channel gets a proportional share)
//   --minutes M     capture duration in simulated minutes (default 10;
//                   the paper captured 2-hour sessions — pass 120 to match)
//   --seed S        reproducible run seed

#include <cstdint>
#include <iosfwd>

#include "core/experiment.h"
#include "workload/scenario.h"

namespace ppsim::bench {

struct Scale {
  int popular_viewers = 300;
  int unpopular_viewers = 64;
  int minutes = 10;
  std::uint64_t seed = 20081012;  // a representative capture day (see Fig 6)
};

Scale parse_flags(int argc, char** argv);

/// Experiment configs mirroring the paper's four headline workloads.
core::ExperimentConfig popular_config(const Scale& scale,
                                      std::vector<core::ProbeSpec> probes);
core::ExperimentConfig unpopular_config(const Scale& scale,
                                        std::vector<core::ProbeSpec> probes);

/// Runs the workload on `days` consecutive capture days (distinct seeds)
/// and merges each probe's analyses, like pooling several of the paper's
/// daily measurement sessions. Stabilizes single-day variance while
/// preserving every distributional shape. Traffic matrices are summed.
struct MultiDayResult {
  std::vector<core::ProbeResult> probes;  // analyses merged across days
  core::TrafficMatrix traffic;
};
MultiDayResult run_days(const Scale& scale, bool popular,
                        std::vector<core::ProbeSpec> probes, int days = 3);

/// Prints the standard run banner (workload, scale, seed).
void print_banner(std::ostream& os, const char* what, const Scale& scale);

}  // namespace ppsim::bench
