// Reproduces Figure 6: traffic locality over a 28-day campaign, for the
// popular and unpopular programs, measured by probes in CNC, TELE, and
// Mason (two probes per site, averaged — as in the paper).
//
// Paper shapes: China probes are consistently high and fairly stable; the
// Mason probe swings wildly even for the popular program, because a program
// popular in China is not necessarily popular abroad.
//
// Day runs are scaled down (audience and duration) relative to the headline
// figures so the full campaign stays fast; pass --viewers/--minutes to
// re-run closer to paper scale.

#include <cstdio>
#include <iostream>

#include "analysis/stats.h"
#include "core/report.h"
#include "figures_common.h"
#include "workload/campaign.h"

namespace {

using namespace ppsim;

struct DayRow {
  double cnc = 0, tele = 0, mason = 0;
};

DayRow run_day(const workload::ScenarioSpec& scenario) {
  core::ExperimentConfig config;
  config.scenario = scenario;
  // Two probes per site, averaged, exactly like the paper's deployment.
  config.probes = {core::cnc_probe(),  core::cnc_probe(),
                   core::tele_probe(), core::tele_probe(),
                   core::mason_probe(), core::mason_probe()};
  auto result = core::run_experiment(config);
  auto avg = [&](std::size_t i, std::size_t j) {
    return (result.probes[i].analysis.byte_locality(result.probes[i].category) +
            result.probes[j].analysis.byte_locality(result.probes[j].category)) /
           2.0;
  };
  return DayRow{avg(0, 1), avg(2, 3), avg(4, 5)};
}

void run_campaign(const workload::ScenarioSpec& base, const char* title,
                  const bench::Scale& scale) {
  workload::CampaignConfig campaign;
  campaign.seed = scale.seed;
  std::printf("--- Fig 6(%s) ---\n", title);
  std::printf("day |  CNC   TELE  Mason  (%% of bytes from the probe's ISP)\n");
  std::vector<double> cnc, tele, mason;
  for (const auto& day_spec :
       workload::campaign_scenarios(base, campaign)) {
    DayRow row = run_day(day_spec);
    cnc.push_back(row.cnc * 100);
    tele.push_back(row.tele * 100);
    mason.push_back(row.mason * 100);
    std::printf("%3zu | %5.1f  %5.1f  %5.1f\n", cnc.size(), cnc.back(),
                tele.back(), mason.back());
  }
  std::printf(
      "summary: CNC mean=%.1f sd=%.1f | TELE mean=%.1f sd=%.1f | Mason "
      "mean=%.1f sd=%.1f\n",
      analysis::mean(cnc), analysis::stddev(cnc), analysis::mean(tele),
      analysis::stddev(tele), analysis::mean(mason), analysis::stddev(mason));
  std::printf(
      "(paper: China probes stable/high; Mason varies strongly day to day)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Scale scale = bench::parse_flags(argc, argv);
  bench::print_banner(std::cout, "Figure 6: traffic locality over 28 days",
                      scale);

  // Scaled-down day runs: half the headline audience, capped minutes.
  auto popular = workload::popular_channel();
  popular.viewers = std::max(80, scale.popular_viewers / 2);
  popular.duration = sim::Time::minutes(std::min(scale.minutes, 6));
  auto unpopular = workload::unpopular_channel();
  unpopular.viewers = std::max(48, scale.unpopular_viewers * 3 / 4);
  unpopular.duration = sim::Time::minutes(std::min(scale.minutes, 6));

  run_campaign(popular, "a: popular program", scale);
  run_campaign(unpopular, "b: unpopular program", scale);
  return 0;
}
