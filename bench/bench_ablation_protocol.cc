// Protocol ablation for the design decisions DESIGN.md calls out, plus a
// check of the reverse-engineered protocol constants (paper Section 2):
//
//   * tracker-query decay: once healthy, ~1 query per 5 minutes;
//   * gossip every 20 s, peer lists capped at 60 addresses;
//   * neighborhood optimization (latency-driven turnover);
//   * connect-on-arrival racing;
//   * scheduler latency selectivity.
//
// Every variant cell is the mean over a few seeds (single runs are noisy).

#include <cstdio>
#include <iostream>

#include "figures_common.h"

namespace {

using namespace ppsim;

constexpr int kSeeds = 3;

struct VariantResult {
  double locality = 0;
  double continuity = 0;
};

template <typename ConfigMutator>
VariantResult run_variant(const bench::Scale& scale, ConfigMutator mutate) {
  VariantResult out;
  for (int s = 0; s < kSeeds; ++s) {
    bench::Scale seeded = scale;
    seeded.seed = scale.seed + static_cast<std::uint64_t>(s) * 104729;
    auto config = bench::popular_config(seeded, {core::tele_probe()});
    mutate(config);
    auto result = core::run_experiment(config);
    out.locality += result.probes.front().analysis.byte_locality(
        result.probes.front().category);
    out.continuity += result.probes.front().counters.continuity();
  }
  out.locality /= kSeeds;
  out.continuity /= kSeeds;
  return out;
}

void print_row(const char* label, const VariantResult& r) {
  std::printf("%-44s %9.1f%% %11.1f%%\n", label, 100.0 * r.locality,
              100.0 * r.continuity);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Scale scale = bench::parse_flags(argc, argv);
  bench::print_banner(std::cout, "Ablation: protocol knobs", scale);

  // --- Protocol-constant check on a default run ---
  auto config = bench::popular_config(scale, {core::tele_probe()});
  auto result = core::run_experiment(config);
  const auto& counters = result.probes.front().counters;
  const double minutes = static_cast<double>(scale.minutes);
  std::printf("protocol constants (probe counters over %.0f sim-min):\n",
              minutes);
  std::printf("  tracker queries: %llu (%.2f/min; 5-min steady period => "
              "~%.2f/min + initial sweep)\n",
              static_cast<unsigned long long>(counters.tracker_queries_sent),
              static_cast<double>(counters.tracker_queries_sent) / minutes,
              1.0 / 5.0);
  std::printf("  gossip queries sent: %llu (%.2f/min; 20-s period x fanout "
              "2 => ~6/min + per-connect queries)\n",
              static_cast<unsigned long long>(counters.gossip_queries_sent),
              static_cast<double>(counters.gossip_queries_sent) / minutes);
  std::printf("  lists received from peers: %llu, from trackers: %llu "
              "(paper: mostly from peers)\n",
              static_cast<unsigned long long>(
                  result.probes.front().analysis.lists_from_peers),
              static_cast<unsigned long long>(
                  result.probes.front().analysis.lists_from_trackers));
  std::printf("  neighbor turnover: %llu optimized drops; handshake races "
              "lost: %llu\n\n",
              static_cast<unsigned long long>(
                  counters.neighbors_dropped_optimized),
              static_cast<unsigned long long>(counters.connects_lost_race));

  // --- Knob ablations (means over seeds) ---
  std::printf("%-44s %10s %12s\n", "variant (popular channel, TELE probe)",
              "probe-loc", "continuity");
  print_row("default (optimize 15s, selectivity 3.0)",
            run_variant(scale, [](core::ExperimentConfig&) {}));
  print_row("no neighborhood optimization",
            run_variant(scale, [](core::ExperimentConfig& c) {
              c.peer_config.optimize_period = sim::Time::hours(10);
            }));
  print_row("latency-blind request scheduling",
            run_variant(scale, [](core::ExperimentConfig& c) {
              c.peer_config.latency_selectivity = 0.0;
            }));
  print_row("no optimization + latency-blind scheduling",
            run_variant(scale, [](core::ExperimentConfig& c) {
              c.peer_config.optimize_period = sim::Time::hours(10);
              c.peer_config.latency_selectivity = 0.0;
            }));
  print_row("slow gossip (60s instead of 20s)",
            run_variant(scale, [](core::ExperimentConfig& c) {
              c.peer_config.gossip_period = sim::Time::seconds(60);
            }));

  std::printf(
      "\nExpected shape: the latency-driven mechanisms each contribute\n"
      "locality; disabling them moves the probe toward the audience mix\n"
      "(~56%% TELE) at similar continuity.\n");
  return 0;
}
