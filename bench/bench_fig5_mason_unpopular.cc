// Reproduces Figure 5: the USA-Mason node viewing the unpopular program.
//
// Paper shapes: with too few Foreign viewers on the channel, the Mason
// probe's data comes mainly from Chinese peers (CNC first, since the
// unpopular channel's audience skews CNC).

#include <iostream>

#include "core/report.h"
#include "figures_common.h"

int main(int argc, char** argv) {
  using namespace ppsim;
  const bench::Scale scale = bench::parse_flags(argc, argv);
  bench::print_banner(std::cout,
                      "Figure 5: USA-Mason node, unpopular program", scale);

  auto result = bench::run_days(
      scale, /*popular=*/false, {core::mason_probe()});
  const auto& probe = result.probes.front();

  std::cout << "--- Fig 5(a) ---\n";
  core::print_returned_addresses(std::cout, probe.analysis);
  std::cout << "\n--- Fig 5(b) ---\n";
  core::print_list_sources(std::cout, probe.analysis);
  std::cout << "\n--- Fig 5(c) ---\n";
  core::print_data_by_isp(std::cout, probe.analysis);

  const double foreign =
      probe.analysis.byte_locality(net::IspCategory::kForeign);
  const double chinese = 1.0 - foreign;
  std::cout << "\nHeadline: only " << core::pct(foreign)
            << " of bytes from Foreign peers; " << core::pct(chinese)
            << " from Chinese ISPs (paper: mostly CNC — too few Foreign "
               "viewers of this channel)\n";
  return 0;
}
