// Reproduces Figures 7-10: response time to the probe's peer-list requests,
// split by the replying peer's group (TELE / CNC / OTHER), for all four
// probe x channel combinations.
//
// Paper shapes (average response seconds):
//   Fig 7  TELE probe, popular:   TELE 1.15 < CNC 1.56 (OTHER 0.99)
//   Fig 8  TELE probe, unpopular: TELE 0.72 < CNC 0.85 < OTHER 0.91
//   Fig 9  Mason probe, popular:  OTHER 0.25 < TELE 0.34 < CNC 0.37
//   Fig 10 Mason probe, unpopular: OTHER 0.47 < TELE 0.51 < CNC 0.63
// i.e. same-group peers respond faster, and popular channels inflate
// everyone's latency through load.

#include <iostream>

#include "core/report.h"
#include "figures_common.h"

namespace {

using namespace ppsim;

void report(const char* figure, const core::ProbeResult& probe) {
  std::cout << "--- " << figure << " ---\n";
  core::print_response_times(std::cout, probe.analysis,
                             /*data_requests=*/false);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Scale scale = bench::parse_flags(argc, argv);
  bench::print_banner(std::cout,
                      "Figures 7-10: peer-list response times", scale);

  auto popular = bench::run_days(
      scale, /*popular=*/true, {core::tele_probe(), core::mason_probe()});
  auto unpopular = bench::run_days(
      scale, /*popular=*/false, {core::tele_probe(), core::mason_probe()});

  report("Fig 7: TELE probe, popular", popular.probes[0]);
  report("Fig 8: TELE probe, unpopular", unpopular.probes[0]);
  report("Fig 9: Mason probe, popular", popular.probes[1]);
  report("Fig 10: Mason probe, unpopular", unpopular.probes[1]);

  // Fig 7(a)'s *along-time* shape: the paper attributes the latency bump in
  // the middle of the popular program to audience growth after the program
  // started (and the drain near its end). Reproduce it with the
  // broadcast-event audience curve.
  {
    auto config = bench::popular_config(scale, {core::tele_probe()});
    config.scenario.curve = workload::AudienceCurve::kBroadcastEvent;
    config.scenario.duration = sim::Time::minutes(scale.minutes);
    auto arc = core::run_experiment(config);
    std::cout << "--- Fig 7(a) along-time arc (broadcast-event audience; "
                 "data requests carry enough samples to show it) ---\n";
    core::print_response_times(std::cout, arc.probes.front().analysis,
                               /*data_requests=*/true);
    std::cout << "(expected: TELE series rises through the middle of the "
                 "broadcast as the audience peaks, then falls toward the "
                 "end)\n\n";
  }

  std::cout << "Expected orderings: same-group repliers fastest at each "
               "probe; popular-channel load inflates response times.\n";
  return 0;
}
