// Reproduces Table 1: average response time (seconds) to the probe's DATA
// requests, per replying group, for the four probe x channel rows.
//
// Paper values (s):
//                      TELE peers  CNC peers  OTHER peers
//   TELE-Popular         0.7889     1.3155      0.7052
//   TELE-Unpopular       0.5165     0.6911      0.6610
//   Mason-Popular        0.1920     0.1681      0.1890
//   Mason-Unpopular      0.5805     0.3589      0.1913

#include <cstdio>
#include <iostream>

#include "figures_common.h"

namespace {

using namespace ppsim;

void row(const char* label, const core::ProbeResult& probe) {
  const auto& a = probe.analysis;
  std::printf("%-16s %10.4f %10.4f %10.4f   (n=%llu/%llu/%llu)\n", label,
              a.avg_data_response(net::ResponseGroup::kTele),
              a.avg_data_response(net::ResponseGroup::kCnc),
              a.avg_data_response(net::ResponseGroup::kOther),
              static_cast<unsigned long long>(
                  a.response_count(a.data_responses, net::ResponseGroup::kTele)),
              static_cast<unsigned long long>(
                  a.response_count(a.data_responses, net::ResponseGroup::kCnc)),
              static_cast<unsigned long long>(a.response_count(
                  a.data_responses, net::ResponseGroup::kOther)));
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Scale scale = bench::parse_flags(argc, argv);
  bench::print_banner(std::cout,
                      "Table 1: avg response time (s) to data requests",
                      scale);

  auto popular = bench::run_days(
      scale, /*popular=*/true, {core::tele_probe(), core::mason_probe()});
  auto unpopular = bench::run_days(
      scale, /*popular=*/false, {core::tele_probe(), core::mason_probe()});

  std::printf("%-16s %10s %10s %10s\n", "", "TELE", "CNC", "OTHER");
  row("TELE-Popular", popular.probes[0]);
  row("TELE-Unpopular", unpopular.probes[0]);
  row("Mason-Popular", popular.probes[1]);
  row("Mason-Unpopular", unpopular.probes[1]);
  std::printf(
      "\nExpected shape: same-ISP column smallest in each China row; the\n"
      "Mason rows favour OTHER; popular rows sit above unpopular rows.\n");
  return 0;
}
