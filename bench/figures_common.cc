#include "figures_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>

namespace ppsim::bench {

Scale parse_flags(int argc, char** argv) {
  Scale scale;
  for (int i = 1; i < argc; ++i) {
    auto intval = [&](const char* name) -> long {
      return (i + 1 < argc && std::strcmp(argv[i], name) == 0)
                 ? std::strtol(argv[++i], nullptr, 10)
                 : -1;
    };
    if (long v = intval("--viewers"); v > 0) {
      scale.popular_viewers = static_cast<int>(v);
      scale.unpopular_viewers = std::max(30, static_cast<int>(v * 64 / 300));
    } else if (long m = intval("--minutes"); m > 0) {
      scale.minutes = static_cast<int>(m);
    } else if (long s = intval("--seed"); s > 0) {
      scale.seed = static_cast<std::uint64_t>(s);
    } else if (std::strcmp(argv[i], "--bench-json") == 0 && i + 1 < argc) {
      scale.bench_json = argv[++i];
    }
  }
  return scale;
}

bool emit_bench_json(const std::string& path,
                     std::vector<obs::BenchEntry> entries) {
  if (path.empty()) return true;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write bench telemetry to %s\n",
                 path.c_str());
    return false;
  }
  obs::write_bench_json(out, std::move(entries));
  std::printf("bench telemetry written: %s\n", path.c_str());
  return true;
}

core::ExperimentConfig popular_config(const Scale& scale,
                                      std::vector<core::ProbeSpec> probes) {
  core::ExperimentConfig config;
  config.scenario = workload::popular_channel();
  config.scenario.viewers = scale.popular_viewers;
  config.scenario.duration = sim::Time::minutes(scale.minutes);
  config.scenario.seed = scale.seed;
  config.probes = std::move(probes);
  return config;
}

core::ExperimentConfig unpopular_config(const Scale& scale,
                                        std::vector<core::ProbeSpec> probes) {
  core::ExperimentConfig config;
  config.scenario = workload::unpopular_channel();
  config.scenario.viewers = scale.unpopular_viewers;
  config.scenario.duration = sim::Time::minutes(scale.minutes);
  config.scenario.seed = scale.seed + 1;
  config.probes = std::move(probes);
  return config;
}

MultiDayResult run_days(const Scale& scale, bool popular,
                        std::vector<core::ProbeSpec> probes, int days) {
  MultiDayResult out;
  for (int day = 0; day < days; ++day) {
    Scale day_scale = scale;
    day_scale.seed = scale.seed + static_cast<std::uint64_t>(day) * 1000003;
    auto config = popular ? popular_config(day_scale, probes)
                          : unpopular_config(day_scale, probes);
    auto result = core::run_experiment(config);
    for (std::size_t i = 0; i < net::kNumIspCategories; ++i)
      for (std::size_t j = 0; j < net::kNumIspCategories; ++j)
        out.traffic.bytes[i][j] += result.traffic.bytes[i][j];
    if (day == 0) {
      out.probes = std::move(result.probes);
    } else {
      for (std::size_t p = 0; p < out.probes.size(); ++p) {
        capture::merge_into(out.probes[p].analysis,
                            result.probes[p].analysis);
      }
    }
  }
  return out;
}

void print_banner(std::ostream& os, const char* what, const Scale& scale) {
  os << "=== " << what << " ===\n"
     << "(popular viewers=" << scale.popular_viewers
     << ", unpopular viewers=" << scale.unpopular_viewers
     << ", duration=" << scale.minutes << " sim-min, seed=" << scale.seed
     << "; paper scale: thousands of viewers, 120 min)\n\n";
}

}  // namespace ppsim::bench
