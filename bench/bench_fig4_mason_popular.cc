// Reproduces Figure 4: the USA-Mason campus node viewing the same popular
// program.
//
// Paper shapes: more Foreign addresses on the returned lists than for the
// China probes; CNC_p/TELE_p repliers return >75% same-ISP addresses; over
// 55% of the probe's transmissions and ~57% of bytes come from Foreign
// peers.

#include <iostream>

#include "core/report.h"
#include "figures_common.h"

int main(int argc, char** argv) {
  using namespace ppsim;
  const bench::Scale scale = bench::parse_flags(argc, argv);
  bench::print_banner(std::cout, "Figure 4: USA-Mason node, popular program",
                      scale);

  auto result = bench::run_days(
      scale, /*popular=*/true, {core::mason_probe()});
  const auto& probe = result.probes.front();

  std::cout << "--- Fig 4(a) ---\n";
  core::print_returned_addresses(std::cout, probe.analysis);
  std::cout << "\n--- Fig 4(b) ---\n";
  core::print_list_sources(std::cout, probe.analysis);
  std::cout << "\n--- Fig 4(c) ---\n";
  core::print_data_by_isp(std::cout, probe.analysis);
  std::cout << "\nHeadline: Foreign peers served "
            << core::pct(
                   probe.analysis.byte_locality(net::IspCategory::kForeign))
            << " of the Mason probe's bytes (paper: ~57%)\n";

  // Same-ISP referral bias of peer repliers (paper: >75%).
  for (const auto& row : probe.analysis.list_sources) {
    if (row.replier_is_tracker) continue;
    if (row.replier_category == net::IspCategory::kTele ||
        row.replier_category == net::IspCategory::kCnc) {
      std::cout << "  " << net::to_string(row.replier_category)
                << "_p repliers returned "
                << core::pct(row.listed.share(row.replier_category))
                << " same-ISP addresses\n";
    }
  }
  return 0;
}
