// Reproduces Figures 15-18: number of data requests vs RTT per connected
// peer, with the correlation coefficient between log(#requests) and
// log(RTT). RTT is estimated exactly as the paper does: the minimum
// application-level data response time observed for the peer.
//
// Paper correlation coefficients:
//   Fig 15 TELE-popular:   -0.654
//   Fig 16 TELE-unpopular: -0.396
//   Fig 17 Mason-popular:  -0.679
//   Fig 18 Mason-unpopular:-0.450
// i.e. top-connected peers have smaller RTT; the effect weakens on
// unpopular channels (fewer choices).

#include <iostream>

#include "core/report.h"
#include "figures_common.h"

namespace {

using namespace ppsim;

void report(const char* figure, const core::ProbeResult& probe) {
  std::cout << "--- " << figure << " ---\n";
  core::print_rtt_rank(std::cout, probe.analysis);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Scale scale = bench::parse_flags(argc, argv);
  bench::print_banner(std::cout,
                      "Figures 15-18: request count vs RTT correlation",
                      scale);

  auto popular = bench::run_days(
      scale, /*popular=*/true, {core::tele_probe(), core::mason_probe()});
  auto unpopular = bench::run_days(
      scale, /*popular=*/false, {core::tele_probe(), core::mason_probe()});

  report("Fig 15: TELE probe, popular (paper corr -0.654)",
         popular.probes[0]);
  report("Fig 16: TELE probe, unpopular (paper corr -0.396)",
         unpopular.probes[0]);
  report("Fig 17: Mason probe, popular (paper corr -0.679)",
         popular.probes[1]);
  report("Fig 18: Mason probe, unpopular (paper corr -0.450)",
         unpopular.probes[1]);

  std::cout << "Expected shape: negative correlation everywhere.\n";
  return 0;
}
