// Resilience under injected faults (beyond the paper): runs the canned
// "tracker blackout + cross-ISP throttling" plan against the popular
// channel and prints the per-window recovery timeline — continuity dip
// depth, time-to-recover, and the intra-ISP-share trajectory before /
// during / after each window. The paper measured PPLive on good days; this
// bench asks how the same emergent-locality swarm behaves on a bad one
// (docs/FAULTS.md).

#include <cstdio>
#include <iostream>

#include "faults/plan.h"
#include "faults/resilience.h"
#include "figures_common.h"

int main(int argc, char** argv) {
  using namespace ppsim;
  bench::Scale scale = bench::parse_flags(argc, argv);
  scale.minutes = std::max(scale.minutes, 6);
  bench::print_banner(std::cout,
                      "Resilience: tracker blackout + cross-ISP throttling",
                      scale);

  auto config = bench::popular_config(scale, {core::tele_probe()});
  config.scenario.duration = sim::Time::minutes(scale.minutes);
  config.faults.plan = faults::tracker_blackout_throttle_plan();
  config.observability.sample_period = sim::Time::seconds(10);

  auto result = core::run_experiment(config);

  std::printf("windows applied %llu, reverted %llu, peers crashed %llu\n",
              static_cast<unsigned long long>(result.fault_windows_applied),
              static_cast<unsigned long long>(result.fault_windows_reverted),
              static_cast<unsigned long long>(result.fault_peers_crashed));
  std::printf("swarm continuity %.1f%% over %llu viewers, %llu drops\n\n",
              100.0 * result.swarm.avg_continuity,
              static_cast<unsigned long long>(result.swarm.peers_spawned),
              static_cast<unsigned long long>(result.swarm.packets_dropped));

  const auto rows = faults::analyze_resilience(config.faults.plan,
                                               result.samples);
  faults::print_fault_timeline(std::cout, rows);

  std::printf(
      "\nExpected shape: continuity dips while the trackers are dark and\n"
      "the TELE<->CNC paths are throttled, then recovers within a couple of\n"
      "gossip periods once the windows lift — membership knowledge flows\n"
      "through neighbors, so the swarm outlives its infrastructure. The\n"
      "intra-ISP share *rises* during the throttle window: impaired\n"
      "cross-ISP paths lose the latency races even harder.\n");
  return 0;
}
