// Micro-benchmarks of the library's hot paths (google-benchmark): the
// event queue, the ASN longest-prefix-match trie, the latency model, and
// the distribution fitters. These bound the simulator's throughput and the
// analysis cost per capture.
//
// Besides google-benchmark's own flags, `--bench-json FILE` writes the
// non-aggregate results as machine-readable telemetry (schema
// "ppsim-bench-v1", docs/OBSERVABILITY.md): name, iterations, ns/op, and —
// for scheduler-shaped benches — the peak simulator queue depth, measured
// by an untimed replay so the timed loop stays observer-free.

#include <benchmark/benchmark.h>

#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "analysis/fit.h"
#include "figures_common.h"
#include "net/asn_db.h"
#include "net/impairment.h"
#include "net/latency.h"
#include "net/prefix_alloc.h"
#include "net/transport.h"
#include "obs/bench_json.h"
#include "obs/dispatch_stats.h"
#include "obs/health.h"
#include "obs/resource_probe.h"
#include "obs/span_tracker.h"
#include "proto/message.h"
#include "sim/observer.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "wire/codec.h"

namespace {

using namespace ppsim;

// Runs `build` once against a fresh simulator with a DispatchStats observer
// attached and reports the peak pending-queue depth. Used after the timed
// loop (google-benchmark user counter) so the measured iterations never pay
// for the observer.
double replay_peak_queue_depth(
    const std::function<void(sim::Simulator&)>& build) {
  sim::Simulator simulator;
  obs::DispatchStats stats;
  simulator.add_observer(&stats);
  build(simulator);
  simulator.run();
  return static_cast<double>(stats.peak_queue_depth());
}

void schedule_spread(sim::Simulator& simulator, int n, const char* category) {
  for (int i = 0; i < n; ++i) {
    simulator.schedule(sim::Time::micros((i * 7919) % 100000), [] {},
                       category);
  }
}

void BM_SimulatorScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    schedule_spread(simulator, n, nullptr);
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["peak_queue_depth"] = replay_peak_queue_depth(
      [n](sim::Simulator& s) { schedule_spread(s, n, nullptr); });
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1000)->Arg(100000);

void BM_SimulatorSelfScheduling(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    int remaining = 100000;
    std::function<void()> tick = [&] {
      if (--remaining > 0) simulator.schedule(sim::Time::micros(10), tick);
    };
    simulator.schedule(sim::Time::micros(10), tick);
    simulator.run();
  }
  state.SetItemsProcessed(state.iterations() * 100000);
  state.counters["peak_queue_depth"] = 1;  // chain: one pending event ever
}
BENCHMARK(BM_SimulatorSelfScheduling);

// Same loop as BM_SimulatorScheduleRun but with category-tagged events and
// no observer attached: the disabled-observability baseline. CI's bench
// guard compares this against the untagged variant — the two must be within
// noise of each other, because a disabled trace costs one pointer copy per
// schedule and one empty() check per event.
void BM_SimulatorScheduleRunCategorized(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    schedule_spread(simulator, n, "bench.cat");
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["peak_queue_depth"] = replay_peak_queue_depth(
      [n](sim::Simulator& s) { schedule_spread(s, n, "bench.cat"); });
}
BENCHMARK(BM_SimulatorScheduleRunCategorized)->Arg(1000)->Arg(100000);

// Upper bound of the enabled-observer cost: a do-nothing observer still
// pays both virtual hooks per event.
void BM_SimulatorScheduleRunObserved(benchmark::State& state) {
  class NoopObserver final : public sim::SimObserver {
   public:
    void on_event_begin(sim::Time, std::uint64_t, const char*,
                        std::size_t) override {}
  };
  const int n = static_cast<int>(state.range(0));
  NoopObserver observer;
  for (auto _ : state) {
    sim::Simulator simulator;
    simulator.add_observer(&observer);
    schedule_spread(simulator, n, "bench.cat");
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["peak_queue_depth"] = replay_peak_queue_depth(
      [n](sim::Simulator& s) { schedule_spread(s, n, "bench.cat"); });
}
BENCHMARK(BM_SimulatorScheduleRunObserved)->Arg(100000);

// The tagged workload with an idle HealthMonitor ticking on the standard
// "obs.sample" cadence: the steady state of every watchdog-monitored run.
// Healthy inputs mean no transitions and no trace/metric writes, so the
// whole cost is ten rule evaluations per simulated sample period. CI's
// bench guard compares this against BM_SimulatorScheduleRunCategorized —
// the two must stay within noise.
void BM_SimulatorScheduleRunIdleHealthMonitor(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto rules = obs::default_health_rules();
  // Workload events land in [0, 100ms); sample every 10ms. The tick must
  // stop itself past the horizon or Simulator::run() would never drain.
  const auto horizon = sim::Time::micros(100000);
  auto arm = [&](sim::Simulator& simulator, obs::HealthMonitor& monitor) {
    schedule_spread(simulator, n, "bench.cat");
    sim::schedule_periodic(
        simulator, sim::Time::micros(10000),
        [&simulator, &monitor, horizon] {
          if (simulator.now() >= horizon) return false;
          obs::HealthInput input;
          input.t = simulator.now();
          input.avg_continuity = 0.99;
          input.same_isp_share_interval = 0.8;
          input.interval_bytes = 1 << 20;
          input.alive_peers = 100;
          input.isolated_peers = 0;
          input.queue_depth = simulator.pending_events();
          monitor.evaluate(input);
          return true;
        },
        "obs.sample");
  };
  for (auto _ : state) {
    sim::Simulator simulator;
    obs::HealthMonitor monitor(rules);
    arm(simulator, monitor);
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
  // The monitor must outlive replay_peak_queue_depth's run() call — the
  // periodic tick holds a reference to it.
  obs::HealthMonitor replay_monitor(rules);
  state.counters["peak_queue_depth"] = replay_peak_queue_depth(
      [&](sim::Simulator& s) { arm(s, replay_monitor); });
}
BENCHMARK(BM_SimulatorScheduleRunIdleHealthMonitor)->Arg(100000);

// The tagged workload with a SpanTracker fed one non-milestone, span-free
// trace event per "obs.sample" tick: the steady state of a causal-traced
// run between protocol bursts. Such events fall straight through the
// milestone dispatch without growing any tracker state, so the whole cost
// is the name comparison chain. CI's bench guard compares this against
// BM_SimulatorScheduleRunCategorized — the two must stay within noise.
void BM_SimulatorScheduleRunIdleSpanTracker(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto horizon = sim::Time::micros(100000);
  auto arm = [&](sim::Simulator& simulator, obs::SpanTracker& tracker) {
    schedule_spread(simulator, n, "bench.cat");
    sim::schedule_periodic(
        simulator, sim::Time::micros(10000),
        [&simulator, &tracker, horizon] {
          if (simulator.now() >= horizon) return false;
          tracker.write(obs::TraceEvent(simulator.now(), "bench.tick")
                            .field("peer", "10.0.0.1"));
          return true;
        },
        "obs.sample");
  };
  for (auto _ : state) {
    sim::Simulator simulator;
    obs::SpanTracker tracker;
    arm(simulator, tracker);
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
  // The tracker must outlive replay_peak_queue_depth's run() call — the
  // periodic tick holds a reference to it.
  obs::SpanTracker replay_tracker;
  state.counters["peak_queue_depth"] = replay_peak_queue_depth(
      [&](sim::Simulator& s) { arm(s, replay_tracker); });
}
BENCHMARK(BM_SimulatorScheduleRunIdleSpanTracker)->Arg(100000);

// The tagged workload with a ResourceProbe sampling on the standard
// "obs.sample" cadence: the steady state of a scale-observatory run. Each
// tick reads /proc/self/status once and folds the scheduler gauges, so the
// whole cost is one small file read per simulated sample period — never
// per event. CI's bench guard compares this against
// BM_SimulatorScheduleRunCategorized — the two must stay within noise.
void BM_SimulatorScheduleRunIdleResourceProbe(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto horizon = sim::Time::micros(100000);
  auto arm = [&](sim::Simulator& simulator, obs::ResourceProbe& probe) {
    schedule_spread(simulator, n, "bench.cat");
    sim::schedule_periodic(
        simulator, sim::Time::micros(10000),
        [&simulator, &probe, horizon] {
          if (simulator.now() >= horizon) return false;
          obs::ResourceProbe::Inputs input;
          input.now = simulator.now();
          input.queue_depth = simulator.pending_events();
          input.event_horizon = sim::Time::micros(10000);
          input.events_executed = simulator.events_executed();
          input.queue_bytes = simulator.pending_events() * 64;
          input.live_peers = 100;
          input.live_peer_bytes = 1 << 20;
          probe.sample(input);
          return true;
        },
        "obs.sample");
  };
  for (auto _ : state) {
    sim::Simulator simulator;
    obs::ResourceProbe probe;
    arm(simulator, probe);
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
  // The probe must outlive replay_peak_queue_depth's run() call — the
  // periodic tick holds a reference to it.
  obs::ResourceProbe replay_probe;
  state.counters["peak_queue_depth"] = replay_peak_queue_depth(
      [&](sim::Simulator& s) { arm(s, replay_probe); });
}
BENCHMARK(BM_SimulatorScheduleRunIdleResourceProbe)->Arg(100000);

// Transport send+deliver throughput with no impairment overlay installed:
// the baseline every fault-free experiment runs at.
void transport_send_loop(benchmark::State& state,
                         const net::ImpairmentOverlay* overlay) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    net::Network<int> network(simulator, net::LatencyModel{}, sim::Rng(42));
    network.set_impairments(overlay);
    network.attach(net::IpAddress(1, 0, 0, 1), net::IspId{0},
                   net::IspCategory::kTele, net::AccessProfile{1e9, 1e9},
                   [](const net::Network<int>::Delivery&) {});
    network.attach(net::IpAddress(1, 0, 0, 2), net::IspId{0},
                   net::IspCategory::kTele, net::AccessProfile{1e9, 1e9},
                   [](const net::Network<int>::Delivery&) {});
    for (int i = 0; i < n; ++i) {
      network.send(net::IpAddress(1, 0, 0, 1), net::IpAddress(1, 0, 0, 2), i,
                   200);
    }
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_TransportSend(benchmark::State& state) {
  transport_send_loop(state, nullptr);
}
BENCHMARK(BM_TransportSend)->Arg(10000);

// Same loop with an installed-but-inactive overlay: the state every run
// with a fault plan spends outside its windows, and the worst case of a
// fault-capable build running fault-free. CI's bench guard compares this
// against BM_TransportSend — the two must stay within noise, because an
// inactive overlay costs one pointer test plus one bool load per send.
void BM_TransportSendIdleOverlay(benchmark::State& state) {
  net::ImpairmentOverlay overlay;  // no windows applied: active() == false
  transport_send_loop(state, &overlay);
}
BENCHMARK(BM_TransportSendIdleOverlay)->Arg(10000);

void BM_AsnLookup(benchmark::State& state) {
  auto registry = net::IspRegistry::standard_topology();
  auto db = net::AsnDatabase::from_registry(registry);
  net::PrefixAllocator alloc(registry);
  std::vector<net::IpAddress> ips;
  for (const auto& isp : registry.all())
    for (int i = 0; i < 100; ++i) ips.push_back(alloc.allocate(isp.id));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.lookup(ips[i++ % ips.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AsnLookup);

void BM_LatencySample(benchmark::State& state) {
  net::LatencyModel model;
  sim::Rng rng(1);
  net::Endpoint a{net::IpAddress(0x3D800001), net::IspId{0},
                  net::IspCategory::kTele};
  net::Endpoint b{net::IpAddress(0x14000001), net::IspId{1},
                  net::IspCategory::kCnc};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.sample_one_way(a, b, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatencySample);

void BM_StretchedExpFit(benchmark::State& state) {
  auto series = analysis::stretched_exponential_series(
      static_cast<std::size_t>(state.range(0)), 0.35, 5.483);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::fit_stretched_exponential(series));
  }
}
BENCHMARK(BM_StretchedExpFit)->Arg(326)->Arg(5000);

// ppsim-wire-v1 codec round-trip (docs/WIRE.md): encode + decode of a
// representative message per arg — 0: a small control packet (JoinReply),
// 1: a 120-chunk BufferMapAnnounce (the steady-state gossip load), 2: a
// default-chunk DataReply (the payload path). Bounds the per-datagram CPU
// cost a ppsim-node pays on top of the kernel's socket work.
void BM_WireEncodeDecode(benchmark::State& state) {
  proto::Message m;
  switch (state.range(0)) {
    case 0: {
      proto::JoinReply jr;
      jr.channel = 1;
      jr.source = net::IpAddress(127, 1, 0, 3);
      jr.trackers = {net::IpAddress(127, 1, 0, 2)};
      m = jr;
      break;
    }
    case 1: {
      proto::BufferMapAnnounce bma;
      bma.channel = 1;
      bma.map.base = 1000;
      for (int i = 0; i < 120; ++i) bma.map.have.push_back(i % 3 != 0);
      m = bma;
      break;
    }
    default: {
      proto::DataReply dr;
      dr.channel = 1;
      dr.chunk = 1000;
      dr.subpieces = 4;
      dr.payload_bytes = 5520;
      m = dr;
      break;
    }
  }
  std::vector<std::uint8_t> buf;
  for (auto _ : state) {
    wire::encode_message(m, /*epoch=*/1, &buf);
    auto decoded = wire::decode_message(buf.data(), buf.size(), /*epoch=*/1);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_WireEncodeDecode)->Arg(0)->Arg(1)->Arg(2);

void BM_RngFork(benchmark::State& state) {
  sim::Rng rng(7);
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto child = rng.fork(i++);
    benchmark::DoNotOptimize(child.next_u64());
  }
}
BENCHMARK(BM_RngFork);

// Console reporter that additionally collects every non-aggregate run as a
// BenchEntry, so `--bench-json` gets exactly what the console showed.
class JsonCollector final : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const auto& run : report) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      obs::BenchEntry entry;
      entry.name = run.benchmark_name();
      entry.iterations = static_cast<std::uint64_t>(run.iterations);
      entry.ns_per_op =
          run.iterations > 0
              ? run.real_accumulated_time /
                    static_cast<double>(run.iterations) * 1e9
              : 0.0;
      if (const auto it = run.counters.find("peak_queue_depth");
          it != run.counters.end()) {
        entry.peak_queue_depth =
            static_cast<std::uint64_t>(it->second.value);
      }
      entries_.push_back(std::move(entry));
    }
    benchmark::ConsoleReporter::ReportRuns(report);
  }

  std::vector<obs::BenchEntry> take() { return std::move(entries_); }

 private:
  std::vector<obs::BenchEntry> entries_;
};

}  // namespace

// BENCHMARK_MAIN with one extension: `--bench-json FILE` (filtered out of
// argv before google-benchmark sees it) writes the collected entries via
// the shared bench::emit_bench_json. Without the flag, behaviour — including
// --benchmark_format=json, which a custom reporter would override — is
// exactly stock.
int main(int argc, char** argv) {
  std::string bench_json;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bench-json") == 0 && i + 1 < argc) {
      bench_json = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data()))
    return 1;
  if (bench_json.empty()) {
    benchmark::RunSpecifiedBenchmarks();
  } else {
    JsonCollector collector;
    benchmark::RunSpecifiedBenchmarks(&collector);
    if (!ppsim::bench::emit_bench_json(bench_json, collector.take()))
      return 1;
  }
  benchmark::Shutdown();
  return 0;
}
