// Micro-benchmarks of the library's hot paths (google-benchmark): the
// event queue, the ASN longest-prefix-match trie, the latency model, and
// the distribution fitters. These bound the simulator's throughput and the
// analysis cost per capture.

#include <benchmark/benchmark.h>

#include "analysis/fit.h"
#include "net/asn_db.h"
#include "net/impairment.h"
#include "net/latency.h"
#include "net/prefix_alloc.h"
#include "net/transport.h"
#include "sim/observer.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace {

using namespace ppsim;

void BM_SimulatorScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    for (int i = 0; i < n; ++i) {
      simulator.schedule(sim::Time::micros((i * 7919) % 100000), [] {});
    }
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1000)->Arg(100000);

void BM_SimulatorSelfScheduling(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    int remaining = 100000;
    std::function<void()> tick = [&] {
      if (--remaining > 0) simulator.schedule(sim::Time::micros(10), tick);
    };
    simulator.schedule(sim::Time::micros(10), tick);
    simulator.run();
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_SimulatorSelfScheduling);

// Same loop as BM_SimulatorScheduleRun but with category-tagged events and
// no observer attached: the disabled-observability baseline. CI's bench
// guard compares this against the untagged variant — the two must be within
// noise of each other, because a disabled trace costs one pointer copy per
// schedule and one empty() check per event.
void BM_SimulatorScheduleRunCategorized(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    for (int i = 0; i < n; ++i) {
      simulator.schedule(sim::Time::micros((i * 7919) % 100000), [] {},
                         "bench.cat");
    }
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimulatorScheduleRunCategorized)->Arg(1000)->Arg(100000);

// Upper bound of the enabled-observer cost: a do-nothing observer still
// pays both virtual hooks per event.
void BM_SimulatorScheduleRunObserved(benchmark::State& state) {
  class NoopObserver final : public sim::SimObserver {
   public:
    void on_event_begin(sim::Time, std::uint64_t, const char*,
                        std::size_t) override {}
  };
  const int n = static_cast<int>(state.range(0));
  NoopObserver observer;
  for (auto _ : state) {
    sim::Simulator simulator;
    simulator.add_observer(&observer);
    for (int i = 0; i < n; ++i) {
      simulator.schedule(sim::Time::micros((i * 7919) % 100000), [] {},
                         "bench.cat");
    }
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimulatorScheduleRunObserved)->Arg(100000);

// Transport send+deliver throughput with no impairment overlay installed:
// the baseline every fault-free experiment runs at.
void transport_send_loop(benchmark::State& state,
                         const net::ImpairmentOverlay* overlay) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    net::Network<int> network(simulator, net::LatencyModel{}, sim::Rng(42));
    network.set_impairments(overlay);
    network.attach(net::IpAddress(1, 0, 0, 1), net::IspId{0},
                   net::IspCategory::kTele, net::AccessProfile{1e9, 1e9},
                   [](const net::Network<int>::Delivery&) {});
    network.attach(net::IpAddress(1, 0, 0, 2), net::IspId{0},
                   net::IspCategory::kTele, net::AccessProfile{1e9, 1e9},
                   [](const net::Network<int>::Delivery&) {});
    for (int i = 0; i < n; ++i) {
      network.send(net::IpAddress(1, 0, 0, 1), net::IpAddress(1, 0, 0, 2), i,
                   200);
    }
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_TransportSend(benchmark::State& state) {
  transport_send_loop(state, nullptr);
}
BENCHMARK(BM_TransportSend)->Arg(10000);

// Same loop with an installed-but-inactive overlay: the state every run
// with a fault plan spends outside its windows, and the worst case of a
// fault-capable build running fault-free. CI's bench guard compares this
// against BM_TransportSend — the two must stay within noise, because an
// inactive overlay costs one pointer test plus one bool load per send.
void BM_TransportSendIdleOverlay(benchmark::State& state) {
  net::ImpairmentOverlay overlay;  // no windows applied: active() == false
  transport_send_loop(state, &overlay);
}
BENCHMARK(BM_TransportSendIdleOverlay)->Arg(10000);

void BM_AsnLookup(benchmark::State& state) {
  auto registry = net::IspRegistry::standard_topology();
  auto db = net::AsnDatabase::from_registry(registry);
  net::PrefixAllocator alloc(registry);
  std::vector<net::IpAddress> ips;
  for (const auto& isp : registry.all())
    for (int i = 0; i < 100; ++i) ips.push_back(alloc.allocate(isp.id));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.lookup(ips[i++ % ips.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AsnLookup);

void BM_LatencySample(benchmark::State& state) {
  net::LatencyModel model;
  sim::Rng rng(1);
  net::Endpoint a{net::IpAddress(0x3D800001), net::IspId{0},
                  net::IspCategory::kTele};
  net::Endpoint b{net::IpAddress(0x14000001), net::IspId{1},
                  net::IspCategory::kCnc};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.sample_one_way(a, b, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatencySample);

void BM_StretchedExpFit(benchmark::State& state) {
  auto series = analysis::stretched_exponential_series(
      static_cast<std::size_t>(state.range(0)), 0.35, 5.483);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::fit_stretched_exponential(series));
  }
}
BENCHMARK(BM_StretchedExpFit)->Arg(326)->Arg(5000);

void BM_RngFork(benchmark::State& state) {
  sim::Rng rng(7);
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto child = rng.fork(i++);
    benchmark::DoNotOptimize(child.next_u64());
  }
}
BENCHMARK(BM_RngFork);

}  // namespace

BENCHMARK_MAIN();
