# Shared warning / sanitizer / hardening flags for every ppsim target.
#
# Every library, test, bench, tool, and example links `ppsim_options`
# (PRIVATE), so one knob here reconfigures the whole tree:
#
#   PPSIM_WERROR=ON            -Werror (CI keeps the tree warning-clean)
#   PPSIM_SANITIZE=address;undefined   ASan + UBSan
#   PPSIM_SANITIZE=thread      TSan (for future parallel sweep backends)
#
# Use the presets in CMakePresets.json rather than spelling these by hand:
#   cmake --preset asan-ubsan && cmake --build --preset asan-ubsan

option(PPSIM_WERROR "Treat compiler warnings as errors" OFF)
set(PPSIM_SANITIZE "" CACHE STRING
    "Semicolon-separated sanitizer list: address;undefined, thread, or empty")

add_library(ppsim_options INTERFACE)

target_compile_options(ppsim_options INTERFACE -Wall -Wextra)

if(PPSIM_WERROR)
  target_compile_options(ppsim_options INTERFACE -Werror)
endif()

if(PPSIM_SANITIZE)
  if("thread" IN_LIST PPSIM_SANITIZE AND "address" IN_LIST PPSIM_SANITIZE)
    message(FATAL_ERROR "PPSIM_SANITIZE: 'thread' cannot be combined with "
                        "'address' (TSan and ASan are mutually exclusive)")
  endif()
  string(REPLACE ";" "," _ppsim_sanitize_csv "${PPSIM_SANITIZE}")
  target_compile_options(ppsim_options INTERFACE
    -fsanitize=${_ppsim_sanitize_csv}
    -fno-omit-frame-pointer
    -fno-sanitize-recover=all
    -g)
  target_link_options(ppsim_options INTERFACE
    -fsanitize=${_ppsim_sanitize_csv})
  unset(_ppsim_sanitize_csv)
endif()
