file(REMOVE_RECURSE
  "CMakeFiles/bench_common_tests.dir/__/bench/figures_common.cc.o"
  "CMakeFiles/bench_common_tests.dir/__/bench/figures_common.cc.o.d"
  "CMakeFiles/bench_common_tests.dir/bench_common_test.cc.o"
  "CMakeFiles/bench_common_tests.dir/bench_common_test.cc.o.d"
  "bench_common_tests"
  "bench_common_tests.pdb"
  "bench_common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
