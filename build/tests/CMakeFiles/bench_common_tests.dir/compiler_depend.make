# Empty compiler generated dependencies file for bench_common_tests.
# This may be replaced when dependencies are built.
