file(REMOVE_RECURSE
  "CMakeFiles/net_tests.dir/net_asn_db_test.cc.o"
  "CMakeFiles/net_tests.dir/net_asn_db_test.cc.o.d"
  "CMakeFiles/net_tests.dir/net_bandwidth_test.cc.o"
  "CMakeFiles/net_tests.dir/net_bandwidth_test.cc.o.d"
  "CMakeFiles/net_tests.dir/net_interconnect_test.cc.o"
  "CMakeFiles/net_tests.dir/net_interconnect_test.cc.o.d"
  "CMakeFiles/net_tests.dir/net_ip_test.cc.o"
  "CMakeFiles/net_tests.dir/net_ip_test.cc.o.d"
  "CMakeFiles/net_tests.dir/net_isp_test.cc.o"
  "CMakeFiles/net_tests.dir/net_isp_test.cc.o.d"
  "CMakeFiles/net_tests.dir/net_latency_test.cc.o"
  "CMakeFiles/net_tests.dir/net_latency_test.cc.o.d"
  "CMakeFiles/net_tests.dir/net_prefix_alloc_test.cc.o"
  "CMakeFiles/net_tests.dir/net_prefix_alloc_test.cc.o.d"
  "CMakeFiles/net_tests.dir/net_transport_property_test.cc.o"
  "CMakeFiles/net_tests.dir/net_transport_property_test.cc.o.d"
  "CMakeFiles/net_tests.dir/net_transport_test.cc.o"
  "CMakeFiles/net_tests.dir/net_transport_test.cc.o.d"
  "net_tests"
  "net_tests.pdb"
  "net_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
