file(REMOVE_RECURSE
  "CMakeFiles/proto_tests.dir/proto_bootstrap_source_test.cc.o"
  "CMakeFiles/proto_tests.dir/proto_bootstrap_source_test.cc.o.d"
  "CMakeFiles/proto_tests.dir/proto_chunk_store_property_test.cc.o"
  "CMakeFiles/proto_tests.dir/proto_chunk_store_property_test.cc.o.d"
  "CMakeFiles/proto_tests.dir/proto_chunk_store_test.cc.o"
  "CMakeFiles/proto_tests.dir/proto_chunk_store_test.cc.o.d"
  "CMakeFiles/proto_tests.dir/proto_failure_test.cc.o"
  "CMakeFiles/proto_tests.dir/proto_failure_test.cc.o.d"
  "CMakeFiles/proto_tests.dir/proto_invariants_test.cc.o"
  "CMakeFiles/proto_tests.dir/proto_invariants_test.cc.o.d"
  "CMakeFiles/proto_tests.dir/proto_mechanisms_test.cc.o"
  "CMakeFiles/proto_tests.dir/proto_mechanisms_test.cc.o.d"
  "CMakeFiles/proto_tests.dir/proto_message_test.cc.o"
  "CMakeFiles/proto_tests.dir/proto_message_test.cc.o.d"
  "CMakeFiles/proto_tests.dir/proto_peer_test.cc.o"
  "CMakeFiles/proto_tests.dir/proto_peer_test.cc.o.d"
  "CMakeFiles/proto_tests.dir/proto_snapshot_test.cc.o"
  "CMakeFiles/proto_tests.dir/proto_snapshot_test.cc.o.d"
  "CMakeFiles/proto_tests.dir/proto_tracker_test.cc.o"
  "CMakeFiles/proto_tests.dir/proto_tracker_test.cc.o.d"
  "CMakeFiles/proto_tests.dir/proto_vod_test.cc.o"
  "CMakeFiles/proto_tests.dir/proto_vod_test.cc.o.d"
  "proto_tests"
  "proto_tests.pdb"
  "proto_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proto_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
