# Empty compiler generated dependencies file for capture_tests.
# This may be replaced when dependencies are built.
