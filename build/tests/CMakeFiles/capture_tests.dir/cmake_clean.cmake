file(REMOVE_RECURSE
  "CMakeFiles/capture_tests.dir/capture_analyzer_test.cc.o"
  "CMakeFiles/capture_tests.dir/capture_analyzer_test.cc.o.d"
  "CMakeFiles/capture_tests.dir/capture_merge_test.cc.o"
  "CMakeFiles/capture_tests.dir/capture_merge_test.cc.o.d"
  "CMakeFiles/capture_tests.dir/capture_sniffer_test.cc.o"
  "CMakeFiles/capture_tests.dir/capture_sniffer_test.cc.o.d"
  "CMakeFiles/capture_tests.dir/capture_timeseries_test.cc.o"
  "CMakeFiles/capture_tests.dir/capture_timeseries_test.cc.o.d"
  "CMakeFiles/capture_tests.dir/capture_trace_io_test.cc.o"
  "CMakeFiles/capture_tests.dir/capture_trace_io_test.cc.o.d"
  "capture_tests"
  "capture_tests.pdb"
  "capture_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capture_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
