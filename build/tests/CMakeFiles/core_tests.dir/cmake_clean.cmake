file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core_broadcast_test.cc.o"
  "CMakeFiles/core_tests.dir/core_broadcast_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core_cli_test.cc.o"
  "CMakeFiles/core_tests.dir/core_cli_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core_config_paths_test.cc.o"
  "CMakeFiles/core_tests.dir/core_config_paths_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core_emergence_test.cc.o"
  "CMakeFiles/core_tests.dir/core_emergence_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core_experiment_test.cc.o"
  "CMakeFiles/core_tests.dir/core_experiment_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core_multichannel_test.cc.o"
  "CMakeFiles/core_tests.dir/core_multichannel_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core_report_test.cc.o"
  "CMakeFiles/core_tests.dir/core_report_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core_run_cli_test.cc.o"
  "CMakeFiles/core_tests.dir/core_run_cli_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core_session_export_test.cc.o"
  "CMakeFiles/core_tests.dir/core_session_export_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core_sessions_test.cc.o"
  "CMakeFiles/core_tests.dir/core_sessions_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
