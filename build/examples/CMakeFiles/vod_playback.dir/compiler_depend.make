# Empty compiler generated dependencies file for vod_playback.
# This may be replaced when dependencies are built.
