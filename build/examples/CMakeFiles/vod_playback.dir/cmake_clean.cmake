file(REMOVE_RECURSE
  "CMakeFiles/vod_playback.dir/vod_playback.cpp.o"
  "CMakeFiles/vod_playback.dir/vod_playback.cpp.o.d"
  "vod_playback"
  "vod_playback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vod_playback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
