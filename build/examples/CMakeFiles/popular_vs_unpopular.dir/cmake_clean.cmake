file(REMOVE_RECURSE
  "CMakeFiles/popular_vs_unpopular.dir/popular_vs_unpopular.cpp.o"
  "CMakeFiles/popular_vs_unpopular.dir/popular_vs_unpopular.cpp.o.d"
  "popular_vs_unpopular"
  "popular_vs_unpopular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/popular_vs_unpopular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
