# Empty dependencies file for popular_vs_unpopular.
# This may be replaced when dependencies are built.
