file(REMOVE_RECURSE
  "CMakeFiles/ppsim.dir/ppsim_cli.cc.o"
  "CMakeFiles/ppsim.dir/ppsim_cli.cc.o.d"
  "ppsim"
  "ppsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
