# Empty compiler generated dependencies file for ppsim-analyze.
# This may be replaced when dependencies are built.
