file(REMOVE_RECURSE
  "CMakeFiles/ppsim-analyze.dir/ppsim_analyze.cc.o"
  "CMakeFiles/ppsim-analyze.dir/ppsim_analyze.cc.o.d"
  "ppsim-analyze"
  "ppsim-analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppsim-analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
