file(REMOVE_RECURSE
  "../bench/bench_ablation_protocol"
  "../bench/bench_ablation_protocol.pdb"
  "CMakeFiles/bench_ablation_protocol.dir/bench_ablation_protocol.cc.o"
  "CMakeFiles/bench_ablation_protocol.dir/bench_ablation_protocol.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
