# Empty compiler generated dependencies file for bench_fig11_14_contributions.
# This may be replaced when dependencies are built.
