file(REMOVE_RECURSE
  "../bench/bench_fig11_14_contributions"
  "../bench/bench_fig11_14_contributions.pdb"
  "CMakeFiles/bench_fig11_14_contributions.dir/bench_fig11_14_contributions.cc.o"
  "CMakeFiles/bench_fig11_14_contributions.dir/bench_fig11_14_contributions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_14_contributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
