# Empty dependencies file for bench_fig2_tele_popular.
# This may be replaced when dependencies are built.
