# Empty dependencies file for bench_fig5_mason_unpopular.
# This may be replaced when dependencies are built.
