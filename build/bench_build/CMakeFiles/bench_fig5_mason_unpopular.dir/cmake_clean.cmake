file(REMOVE_RECURSE
  "../bench/bench_fig5_mason_unpopular"
  "../bench/bench_fig5_mason_unpopular.pdb"
  "CMakeFiles/bench_fig5_mason_unpopular.dir/bench_fig5_mason_unpopular.cc.o"
  "CMakeFiles/bench_fig5_mason_unpopular.dir/bench_fig5_mason_unpopular.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_mason_unpopular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
