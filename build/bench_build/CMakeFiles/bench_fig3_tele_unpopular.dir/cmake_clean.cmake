file(REMOVE_RECURSE
  "../bench/bench_fig3_tele_unpopular"
  "../bench/bench_fig3_tele_unpopular.pdb"
  "CMakeFiles/bench_fig3_tele_unpopular.dir/bench_fig3_tele_unpopular.cc.o"
  "CMakeFiles/bench_fig3_tele_unpopular.dir/bench_fig3_tele_unpopular.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_tele_unpopular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
