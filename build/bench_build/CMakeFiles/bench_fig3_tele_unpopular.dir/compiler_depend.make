# Empty compiler generated dependencies file for bench_fig3_tele_unpopular.
# This may be replaced when dependencies are built.
