# Empty dependencies file for bench_fig15_18_rtt_rank.
# This may be replaced when dependencies are built.
