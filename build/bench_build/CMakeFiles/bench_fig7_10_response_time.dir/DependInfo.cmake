
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_10_response_time.cc" "bench_build/CMakeFiles/bench_fig7_10_response_time.dir/bench_fig7_10_response_time.cc.o" "gcc" "bench_build/CMakeFiles/bench_fig7_10_response_time.dir/bench_fig7_10_response_time.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench_build/CMakeFiles/ppsim_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ppsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ppsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/capture/CMakeFiles/ppsim_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ppsim_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/ppsim_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ppsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ppsim_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ppsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
