# Empty dependencies file for bench_fig7_10_response_time.
# This may be replaced when dependencies are built.
