# Empty compiler generated dependencies file for bench_fig6_four_weeks.
# This may be replaced when dependencies are built.
