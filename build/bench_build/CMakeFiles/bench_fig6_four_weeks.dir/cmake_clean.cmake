file(REMOVE_RECURSE
  "../bench/bench_fig6_four_weeks"
  "../bench/bench_fig6_four_weeks.pdb"
  "CMakeFiles/bench_fig6_four_weeks.dir/bench_fig6_four_weeks.cc.o"
  "CMakeFiles/bench_fig6_four_weeks.dir/bench_fig6_four_weeks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_four_weeks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
