# Empty dependencies file for bench_fig4_mason_popular.
# This may be replaced when dependencies are built.
