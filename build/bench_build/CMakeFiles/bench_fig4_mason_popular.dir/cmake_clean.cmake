file(REMOVE_RECURSE
  "../bench/bench_fig4_mason_popular"
  "../bench/bench_fig4_mason_popular.pdb"
  "CMakeFiles/bench_fig4_mason_popular.dir/bench_fig4_mason_popular.cc.o"
  "CMakeFiles/bench_fig4_mason_popular.dir/bench_fig4_mason_popular.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_mason_popular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
