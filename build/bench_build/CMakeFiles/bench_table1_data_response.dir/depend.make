# Empty dependencies file for bench_table1_data_response.
# This may be replaced when dependencies are built.
