file(REMOVE_RECURSE
  "../bench/bench_table1_data_response"
  "../bench/bench_table1_data_response.pdb"
  "CMakeFiles/bench_table1_data_response.dir/bench_table1_data_response.cc.o"
  "CMakeFiles/bench_table1_data_response.dir/bench_table1_data_response.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_data_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
