file(REMOVE_RECURSE
  "libppsim_bench_common.a"
)
