# Empty compiler generated dependencies file for ppsim_bench_common.
# This may be replaced when dependencies are built.
