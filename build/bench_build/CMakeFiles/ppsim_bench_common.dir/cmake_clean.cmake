file(REMOVE_RECURSE
  "CMakeFiles/ppsim_bench_common.dir/figures_common.cc.o"
  "CMakeFiles/ppsim_bench_common.dir/figures_common.cc.o.d"
  "libppsim_bench_common.a"
  "libppsim_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppsim_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
