file(REMOVE_RECURSE
  "libppsim_proto.a"
)
