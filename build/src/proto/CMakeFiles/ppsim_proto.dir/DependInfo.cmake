
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/bootstrap.cc" "src/proto/CMakeFiles/ppsim_proto.dir/bootstrap.cc.o" "gcc" "src/proto/CMakeFiles/ppsim_proto.dir/bootstrap.cc.o.d"
  "/root/repo/src/proto/chunk_store.cc" "src/proto/CMakeFiles/ppsim_proto.dir/chunk_store.cc.o" "gcc" "src/proto/CMakeFiles/ppsim_proto.dir/chunk_store.cc.o.d"
  "/root/repo/src/proto/message.cc" "src/proto/CMakeFiles/ppsim_proto.dir/message.cc.o" "gcc" "src/proto/CMakeFiles/ppsim_proto.dir/message.cc.o.d"
  "/root/repo/src/proto/peer.cc" "src/proto/CMakeFiles/ppsim_proto.dir/peer.cc.o" "gcc" "src/proto/CMakeFiles/ppsim_proto.dir/peer.cc.o.d"
  "/root/repo/src/proto/selection.cc" "src/proto/CMakeFiles/ppsim_proto.dir/selection.cc.o" "gcc" "src/proto/CMakeFiles/ppsim_proto.dir/selection.cc.o.d"
  "/root/repo/src/proto/source.cc" "src/proto/CMakeFiles/ppsim_proto.dir/source.cc.o" "gcc" "src/proto/CMakeFiles/ppsim_proto.dir/source.cc.o.d"
  "/root/repo/src/proto/tracker.cc" "src/proto/CMakeFiles/ppsim_proto.dir/tracker.cc.o" "gcc" "src/proto/CMakeFiles/ppsim_proto.dir/tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ppsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ppsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
