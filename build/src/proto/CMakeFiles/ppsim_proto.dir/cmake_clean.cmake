file(REMOVE_RECURSE
  "CMakeFiles/ppsim_proto.dir/bootstrap.cc.o"
  "CMakeFiles/ppsim_proto.dir/bootstrap.cc.o.d"
  "CMakeFiles/ppsim_proto.dir/chunk_store.cc.o"
  "CMakeFiles/ppsim_proto.dir/chunk_store.cc.o.d"
  "CMakeFiles/ppsim_proto.dir/message.cc.o"
  "CMakeFiles/ppsim_proto.dir/message.cc.o.d"
  "CMakeFiles/ppsim_proto.dir/peer.cc.o"
  "CMakeFiles/ppsim_proto.dir/peer.cc.o.d"
  "CMakeFiles/ppsim_proto.dir/selection.cc.o"
  "CMakeFiles/ppsim_proto.dir/selection.cc.o.d"
  "CMakeFiles/ppsim_proto.dir/source.cc.o"
  "CMakeFiles/ppsim_proto.dir/source.cc.o.d"
  "CMakeFiles/ppsim_proto.dir/tracker.cc.o"
  "CMakeFiles/ppsim_proto.dir/tracker.cc.o.d"
  "libppsim_proto.a"
  "libppsim_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppsim_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
