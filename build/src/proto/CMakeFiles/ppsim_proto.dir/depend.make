# Empty dependencies file for ppsim_proto.
# This may be replaced when dependencies are built.
