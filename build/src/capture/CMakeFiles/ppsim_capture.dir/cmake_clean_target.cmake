file(REMOVE_RECURSE
  "libppsim_capture.a"
)
