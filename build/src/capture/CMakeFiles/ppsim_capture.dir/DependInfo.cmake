
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/capture/analyzer.cc" "src/capture/CMakeFiles/ppsim_capture.dir/analyzer.cc.o" "gcc" "src/capture/CMakeFiles/ppsim_capture.dir/analyzer.cc.o.d"
  "/root/repo/src/capture/trace.cc" "src/capture/CMakeFiles/ppsim_capture.dir/trace.cc.o" "gcc" "src/capture/CMakeFiles/ppsim_capture.dir/trace.cc.o.d"
  "/root/repo/src/capture/trace_io.cc" "src/capture/CMakeFiles/ppsim_capture.dir/trace_io.cc.o" "gcc" "src/capture/CMakeFiles/ppsim_capture.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proto/CMakeFiles/ppsim_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ppsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ppsim_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ppsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
