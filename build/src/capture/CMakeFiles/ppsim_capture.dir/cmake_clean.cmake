file(REMOVE_RECURSE
  "CMakeFiles/ppsim_capture.dir/analyzer.cc.o"
  "CMakeFiles/ppsim_capture.dir/analyzer.cc.o.d"
  "CMakeFiles/ppsim_capture.dir/trace.cc.o"
  "CMakeFiles/ppsim_capture.dir/trace.cc.o.d"
  "CMakeFiles/ppsim_capture.dir/trace_io.cc.o"
  "CMakeFiles/ppsim_capture.dir/trace_io.cc.o.d"
  "libppsim_capture.a"
  "libppsim_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppsim_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
