# Empty dependencies file for ppsim_capture.
# This may be replaced when dependencies are built.
