file(REMOVE_RECURSE
  "CMakeFiles/ppsim_core.dir/cli.cc.o"
  "CMakeFiles/ppsim_core.dir/cli.cc.o.d"
  "CMakeFiles/ppsim_core.dir/experiment.cc.o"
  "CMakeFiles/ppsim_core.dir/experiment.cc.o.d"
  "CMakeFiles/ppsim_core.dir/report.cc.o"
  "CMakeFiles/ppsim_core.dir/report.cc.o.d"
  "CMakeFiles/ppsim_core.dir/session_export.cc.o"
  "CMakeFiles/ppsim_core.dir/session_export.cc.o.d"
  "libppsim_core.a"
  "libppsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
