file(REMOVE_RECURSE
  "libppsim_core.a"
)
