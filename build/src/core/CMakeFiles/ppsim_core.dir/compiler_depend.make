# Empty compiler generated dependencies file for ppsim_core.
# This may be replaced when dependencies are built.
