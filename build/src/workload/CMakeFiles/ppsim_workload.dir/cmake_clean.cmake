file(REMOVE_RECURSE
  "CMakeFiles/ppsim_workload.dir/campaign.cc.o"
  "CMakeFiles/ppsim_workload.dir/campaign.cc.o.d"
  "CMakeFiles/ppsim_workload.dir/scenario.cc.o"
  "CMakeFiles/ppsim_workload.dir/scenario.cc.o.d"
  "libppsim_workload.a"
  "libppsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
