file(REMOVE_RECURSE
  "libppsim_workload.a"
)
