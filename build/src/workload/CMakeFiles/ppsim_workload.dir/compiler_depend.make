# Empty compiler generated dependencies file for ppsim_workload.
# This may be replaced when dependencies are built.
