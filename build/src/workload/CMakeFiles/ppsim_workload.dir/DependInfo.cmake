
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/campaign.cc" "src/workload/CMakeFiles/ppsim_workload.dir/campaign.cc.o" "gcc" "src/workload/CMakeFiles/ppsim_workload.dir/campaign.cc.o.d"
  "/root/repo/src/workload/scenario.cc" "src/workload/CMakeFiles/ppsim_workload.dir/scenario.cc.o" "gcc" "src/workload/CMakeFiles/ppsim_workload.dir/scenario.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proto/CMakeFiles/ppsim_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ppsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ppsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
