file(REMOVE_RECURSE
  "libppsim_baseline.a"
)
