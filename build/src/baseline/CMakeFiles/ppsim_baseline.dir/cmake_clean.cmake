file(REMOVE_RECURSE
  "CMakeFiles/ppsim_baseline.dir/policies.cc.o"
  "CMakeFiles/ppsim_baseline.dir/policies.cc.o.d"
  "libppsim_baseline.a"
  "libppsim_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppsim_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
