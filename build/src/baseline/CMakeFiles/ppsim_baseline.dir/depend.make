# Empty dependencies file for ppsim_baseline.
# This may be replaced when dependencies are built.
