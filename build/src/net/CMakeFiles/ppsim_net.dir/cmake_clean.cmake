file(REMOVE_RECURSE
  "CMakeFiles/ppsim_net.dir/asn_db.cc.o"
  "CMakeFiles/ppsim_net.dir/asn_db.cc.o.d"
  "CMakeFiles/ppsim_net.dir/bandwidth.cc.o"
  "CMakeFiles/ppsim_net.dir/bandwidth.cc.o.d"
  "CMakeFiles/ppsim_net.dir/interconnect.cc.o"
  "CMakeFiles/ppsim_net.dir/interconnect.cc.o.d"
  "CMakeFiles/ppsim_net.dir/ip.cc.o"
  "CMakeFiles/ppsim_net.dir/ip.cc.o.d"
  "CMakeFiles/ppsim_net.dir/isp.cc.o"
  "CMakeFiles/ppsim_net.dir/isp.cc.o.d"
  "CMakeFiles/ppsim_net.dir/latency.cc.o"
  "CMakeFiles/ppsim_net.dir/latency.cc.o.d"
  "CMakeFiles/ppsim_net.dir/prefix_alloc.cc.o"
  "CMakeFiles/ppsim_net.dir/prefix_alloc.cc.o.d"
  "libppsim_net.a"
  "libppsim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppsim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
