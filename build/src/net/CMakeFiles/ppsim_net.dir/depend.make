# Empty dependencies file for ppsim_net.
# This may be replaced when dependencies are built.
