file(REMOVE_RECURSE
  "libppsim_net.a"
)
