
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/asn_db.cc" "src/net/CMakeFiles/ppsim_net.dir/asn_db.cc.o" "gcc" "src/net/CMakeFiles/ppsim_net.dir/asn_db.cc.o.d"
  "/root/repo/src/net/bandwidth.cc" "src/net/CMakeFiles/ppsim_net.dir/bandwidth.cc.o" "gcc" "src/net/CMakeFiles/ppsim_net.dir/bandwidth.cc.o.d"
  "/root/repo/src/net/interconnect.cc" "src/net/CMakeFiles/ppsim_net.dir/interconnect.cc.o" "gcc" "src/net/CMakeFiles/ppsim_net.dir/interconnect.cc.o.d"
  "/root/repo/src/net/ip.cc" "src/net/CMakeFiles/ppsim_net.dir/ip.cc.o" "gcc" "src/net/CMakeFiles/ppsim_net.dir/ip.cc.o.d"
  "/root/repo/src/net/isp.cc" "src/net/CMakeFiles/ppsim_net.dir/isp.cc.o" "gcc" "src/net/CMakeFiles/ppsim_net.dir/isp.cc.o.d"
  "/root/repo/src/net/latency.cc" "src/net/CMakeFiles/ppsim_net.dir/latency.cc.o" "gcc" "src/net/CMakeFiles/ppsim_net.dir/latency.cc.o.d"
  "/root/repo/src/net/prefix_alloc.cc" "src/net/CMakeFiles/ppsim_net.dir/prefix_alloc.cc.o" "gcc" "src/net/CMakeFiles/ppsim_net.dir/prefix_alloc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ppsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
