# Empty dependencies file for ppsim_analysis.
# This may be replaced when dependencies are built.
