file(REMOVE_RECURSE
  "libppsim_analysis.a"
)
