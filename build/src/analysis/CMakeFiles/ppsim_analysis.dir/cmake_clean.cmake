file(REMOVE_RECURSE
  "CMakeFiles/ppsim_analysis.dir/cdf.cc.o"
  "CMakeFiles/ppsim_analysis.dir/cdf.cc.o.d"
  "CMakeFiles/ppsim_analysis.dir/fit.cc.o"
  "CMakeFiles/ppsim_analysis.dir/fit.cc.o.d"
  "CMakeFiles/ppsim_analysis.dir/goodness.cc.o"
  "CMakeFiles/ppsim_analysis.dir/goodness.cc.o.d"
  "CMakeFiles/ppsim_analysis.dir/stats.cc.o"
  "CMakeFiles/ppsim_analysis.dir/stats.cc.o.d"
  "CMakeFiles/ppsim_analysis.dir/summary.cc.o"
  "CMakeFiles/ppsim_analysis.dir/summary.cc.o.d"
  "libppsim_analysis.a"
  "libppsim_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppsim_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
