# Empty dependencies file for ppsim_sim.
# This may be replaced when dependencies are built.
