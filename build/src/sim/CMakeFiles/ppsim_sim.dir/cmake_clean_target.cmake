file(REMOVE_RECURSE
  "libppsim_sim.a"
)
