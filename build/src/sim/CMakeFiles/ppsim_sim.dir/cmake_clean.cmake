file(REMOVE_RECURSE
  "CMakeFiles/ppsim_sim.dir/rng.cc.o"
  "CMakeFiles/ppsim_sim.dir/rng.cc.o.d"
  "CMakeFiles/ppsim_sim.dir/simulator.cc.o"
  "CMakeFiles/ppsim_sim.dir/simulator.cc.o.d"
  "libppsim_sim.a"
  "libppsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
