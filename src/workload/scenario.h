#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "net/bandwidth.h"
#include "net/isp.h"
#include "proto/channel.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace ppsim::workload {

/// Fraction of a channel's audience in each reporting ISP. Does not need to
/// sum to 1; it is normalized when sampled.
struct IspMix {
  std::array<double, net::kNumIspCategories> weights{};

  double& operator[](net::IspCategory c) {
    return weights[static_cast<std::size_t>(c)];
  }
  double operator[](net::IspCategory c) const {
    return weights[static_cast<std::size_t>(c)];
  }

  net::IspCategory sample(sim::Rng& rng) const;
};

/// How the audience size evolves over the run.
enum class AudienceCurve : std::uint8_t {
  /// Stationary population: departures are replaced, size is roughly
  /// constant (the regime of most of the paper's analysis windows).
  kStationary = 0,
  /// Broadcast event: the audience floods in around the program start,
  /// grows through the first half, and drains toward the end — the arc
  /// behind the load-driven response-time inflation of Figure 7(a).
  kBroadcastEvent = 1,
};

/// Full description of one simulated viewing session of the swarm: who
/// watches (population + ISP mix), what they watch (channel), and how the
/// audience churns.
struct ScenarioSpec {
  std::string name;
  proto::ChannelSpec channel;

  /// Steady-state audience size, excluding probe hosts.
  int viewers = 300;
  IspMix mix;

  /// Audience arrives over this ramp at the start of the run (the probes
  /// join an already-warm swarm, like the paper's measurements of ongoing
  /// broadcasts).
  sim::Time arrival_ramp = sim::Time::seconds(90);

  /// Mean viewer session length; sessions are Weibull(k=0.6) shaped —
  /// media-session lengths are heavy-tailed (many zappers, few stayers).
  /// A departing viewer is replaced after an exponential think time so the
  /// population stays roughly stationary.
  sim::Time mean_session = sim::Time::minutes(25);
  sim::Time mean_rejoin_gap = sim::Time::seconds(20);

  /// Total simulated time.
  sim::Time duration = sim::Time::minutes(20);

  AudienceCurve curve = AudienceCurve::kStationary;

  std::uint64_t seed = 1;
};

/// The popular live channel of the paper's figures: audience concentrated
/// in ChinaTelecom (Figure 2(a): ~70% of returned addresses are TELE),
/// with a modest foreign audience.
ScenarioSpec popular_channel();

/// The unpopular channel: a much smaller audience in which CNC viewers
/// slightly outnumber TELE (Figure 3(a)) and foreign viewers are scarce
/// (the paper's explanation for the Mason probe's poor locality, Fig 5).
ScenarioSpec unpopular_channel();

/// A prime-time broadcast event: a popular-channel audience that floods in
/// at the program start and drains at its end (AudienceCurve::
/// kBroadcastEvent) — the workload behind Figure 7(a)'s along-time arc.
ScenarioSpec broadcast_event();

/// An overnight/long-tail audience: tiny, churn-heavy, CNC-leaning. Useful
/// as a stress case for same-ISP supply scarcity.
ScenarioSpec overnight_channel();

/// Maps a viewer's ISP to a plausible access technology (ADSL for Chinese
/// residential ISPs, campus Ethernet for CERNET, cable/campus abroad).
net::AccessClass access_class_for(net::IspCategory c, sim::Rng& rng);

/// Probability that a viewer on this access technology sits behind a NAT
/// that drops unsolicited inbound connections (2008-era residential CPE).
double nat_probability(net::AccessClass c);

}  // namespace ppsim::workload
