#include "workload/campaign.h"

#include <algorithm>
#include <cmath>

#include "sim/rng.h"

namespace ppsim::workload {

ScenarioSpec day_scenario(const ScenarioSpec& base,
                          const CampaignConfig& config, int day) {
  // Deterministic per-day stream, independent of call order.
  sim::Rng rng(sim::hash_combine(config.seed,
                                 sim::hash_combine(base.seed,
                                                   static_cast<std::uint64_t>(day))));
  ScenarioSpec s = base;
  s.name = base.name + "-day" + std::to_string(day);
  s.seed = sim::hash_combine(base.seed, static_cast<std::uint64_t>(day) * 7919);

  double scale = rng.lognormal_median(1.0, config.audience_sigma);
  const int dow = (day - 1) % 7;  // 0 = Monday
  if (dow >= 5) scale *= config.weekend_boost;
  s.viewers = std::max(30, static_cast<int>(std::lround(base.viewers * scale)));

  // Foreign audience swings independently of the Chinese audience.
  const double foreign_mult = rng.lognormal_median(1.0, config.foreign_sigma);
  s.mix[net::IspCategory::kForeign] = std::clamp(
      base.mix[net::IspCategory::kForeign] * foreign_mult, 0.002, 0.45);

  return s;
}

std::vector<ScenarioSpec> campaign_scenarios(const ScenarioSpec& base,
                                             const CampaignConfig& config) {
  std::vector<ScenarioSpec> out;
  out.reserve(static_cast<std::size_t>(config.days));
  for (int day = 1; day <= config.days; ++day)
    out.push_back(day_scenario(base, config, day));
  return out;
}

}  // namespace ppsim::workload
