#include "workload/scenario.h"

namespace ppsim::workload {

net::IspCategory IspMix::sample(sim::Rng& rng) const {
  std::vector<double> w(weights.begin(), weights.end());
  return static_cast<net::IspCategory>(rng.weighted_index(w));
}

ScenarioSpec popular_channel() {
  ScenarioSpec s;
  s.name = "popular";
  s.channel = proto::ChannelSpec{1, "popular-live", 400e3, 1380, 4};
  s.viewers = 420;
  s.mix[net::IspCategory::kTele] = 0.56;
  s.mix[net::IspCategory::kCnc] = 0.19;
  s.mix[net::IspCategory::kCer] = 0.02;
  s.mix[net::IspCategory::kOtherCn] = 0.11;
  s.mix[net::IspCategory::kForeign] = 0.12;
  s.mean_session = sim::Time::minutes(30);
  return s;
}

ScenarioSpec unpopular_channel() {
  ScenarioSpec s;
  s.name = "unpopular";
  s.channel = proto::ChannelSpec{2, "unpopular-live", 400e3, 1380, 4};
  s.viewers = 64;
  s.mix[net::IspCategory::kTele] = 0.37;
  s.mix[net::IspCategory::kCnc] = 0.45;
  s.mix[net::IspCategory::kCer] = 0.02;
  s.mix[net::IspCategory::kOtherCn] = 0.14;
  s.mix[net::IspCategory::kForeign] = 0.004;
  // Short zappy sessions: a thin channel churns hard, which is what keeps
  // its same-ISP peer supply scarce (the paper's explanation for the worse
  // locality of unpopular programs).
  s.mean_session = sim::Time::minutes(12);
  return s;
}

ScenarioSpec broadcast_event() {
  ScenarioSpec s = popular_channel();
  s.name = "broadcast-event";
  s.channel.id = 3;
  s.channel.name = "broadcast-event-live";
  s.curve = AudienceCurve::kBroadcastEvent;
  return s;
}

ScenarioSpec overnight_channel() {
  ScenarioSpec s = unpopular_channel();
  s.name = "overnight";
  s.channel.id = 4;
  s.channel.name = "overnight-live";
  s.viewers = 36;
  s.mean_session = sim::Time::minutes(7);
  return s;
}

net::AccessClass access_class_for(net::IspCategory c, sim::Rng& rng) {
  switch (c) {
    case net::IspCategory::kCer:
      return net::AccessClass::kCampus;
    case net::IspCategory::kForeign:
      // Mostly residential cable abroad, a few campus users.
      return rng.chance(0.12) ? net::AccessClass::kCampus
                              : net::AccessClass::kCable;
    default:
      // Chinese commercial ISPs circa 2008: predominantly residential ADSL,
      // plus a meaningful tier of better-provisioned endpoints (internet
      // cafés, FTTB business fiber) that act as the swarm's strong servers
      // *within each ISP* — strong, but not bottomless, so same-ISP supply
      // can still run out on thin channels.
      return rng.chance(0.10) ? net::AccessClass::kFiber
                              : net::AccessClass::kAdsl;
  }
}

double nat_probability(net::AccessClass c) {
  switch (c) {
    case net::AccessClass::kAdsl:
      return 0.65;
    case net::AccessClass::kCable:
      return 0.70;
    case net::AccessClass::kCampus:
      return 0.15;
    case net::AccessClass::kFiber:
      return 0.30;
    case net::AccessClass::kDatacenter:
      return 0.0;
  }
  return 0.0;
}

}  // namespace ppsim::workload
