#pragma once

#include <cstdint>
#include <vector>

#include "workload/scenario.h"

namespace ppsim::workload {

/// Day-to-day modulation of a channel's audience over a multi-day
/// measurement campaign (paper Figure 6: 28 daily measurements).
///
/// Two effects drive the variance the paper observes:
///  - the overall audience breathes (weekday/weekend, program schedule);
///  - the *foreign* share of a Chinese channel swings wildly, because a
///    program popular in China is not necessarily popular abroad — this is
///    the paper's explanation for the Mason probe's unstable locality.
struct CampaignConfig {
  int days = 28;
  /// Log-space sigma of the day's overall audience scale factor.
  double audience_sigma = 0.18;
  /// Log-space sigma of the day's foreign-share multiplier (large on
  /// purpose; see above).
  double foreign_sigma = 0.85;
  /// Weekend audiences are this much larger (day 1 = Monday).
  double weekend_boost = 1.25;
  std::uint64_t seed = 42;
};

/// Derives the concrete scenario measured on `day` (1-based) from the base
/// scenario. Deterministic in (config.seed, day).
ScenarioSpec day_scenario(const ScenarioSpec& base,
                          const CampaignConfig& config, int day);

/// All 28 (or config.days) daily scenarios.
std::vector<ScenarioSpec> campaign_scenarios(const ScenarioSpec& base,
                                             const CampaignConfig& config);

}  // namespace ppsim::workload
