#include "obs/health.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace ppsim::obs {

namespace {

bool split_kv(std::string_view token, std::string_view* key,
              std::string_view* value) {
  const auto eq = token.find('=');
  if (eq == std::string_view::npos || eq == 0) return false;
  *key = token.substr(0, eq);
  *value = token.substr(eq + 1);
  return true;
}

bool parse_double(std::string_view s, double* out) {
  try {
    std::size_t used = 0;
    *out = std::stod(std::string(s), &used);
    return used == s.size();
  } catch (...) {
    return false;
  }
}

bool parse_int(std::string_view s, int* out) {
  try {
    std::size_t used = 0;
    *out = std::stoi(std::string(s), &used);
    return used == s.size();
  } catch (...) {
    return false;
  }
}

std::string line_error(int line_no, const std::string& what) {
  std::ostringstream os;
  os << "health rules line " << line_no << ": " << what;
  return os.str();
}

}  // namespace

std::string_view to_string(HealthRuleKind k) {
  switch (k) {
    case HealthRuleKind::kContinuityFloor: return "continuity_floor";
    case HealthRuleKind::kPeerIsolation: return "peer_isolation";
    case HealthRuleKind::kIspShareDrift: return "isp_share_drift";
    case HealthRuleKind::kStartupDelaySlo: return "startup_delay_slo";
    case HealthRuleKind::kQueueDepthCeiling: return "queue_depth_ceiling";
  }
  return "unknown";
}

bool parse_health_rule_kind(std::string_view s, HealthRuleKind* out) {
  for (HealthRuleKind k :
       {HealthRuleKind::kContinuityFloor, HealthRuleKind::kPeerIsolation,
        HealthRuleKind::kIspShareDrift, HealthRuleKind::kStartupDelaySlo,
        HealthRuleKind::kQueueDepthCeiling}) {
    if (s == to_string(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

bool is_floor(HealthRuleKind k) {
  return k == HealthRuleKind::kContinuityFloor;
}

std::string HealthRule::display_name() const {
  return label.empty() ? std::string(to_string(kind)) : label;
}

std::string_view to_string(HealthState s) {
  switch (s) {
    case HealthState::kOk: return "ok";
    case HealthState::kWarn: return "warn";
    case HealthState::kCritical: return "critical";
  }
  return "unknown";
}

HealthRulesParseResult parse_health_rules(std::istream& in) {
  HealthRulesParseResult result;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.resize(hash);
    std::istringstream tokens(line);
    std::string first;
    if (!(tokens >> first)) continue;  // blank / comment-only line
    if (first != "rule") {
      result.error =
          line_error(line_no, "expected 'rule', got '" + first + "'");
      return result;
    }
    HealthRule r;
    bool have_kind = false, have_warn = false, have_critical = false;
    std::string token;
    while (tokens >> token) {
      std::string_view key, value;
      if (!split_kv(token, &key, &value)) {
        result.error = line_error(line_no, "malformed token '" + token + "'");
        return result;
      }
      double d = 0;
      int i = 0;
      if (key == "kind") {
        if (!parse_health_rule_kind(value, &r.kind)) {
          result.error =
              line_error(line_no, "unknown kind '" + std::string(value) + "'");
          return result;
        }
        have_kind = true;
      } else if (key == "warn") {
        if (!parse_double(value, &d)) {
          result.error = line_error(line_no, "bad warn");
          return result;
        }
        r.warn = d;
        have_warn = true;
      } else if (key == "critical") {
        if (!parse_double(value, &d)) {
          result.error = line_error(line_no, "bad critical");
          return result;
        }
        r.critical = d;
        have_critical = true;
      } else if (key == "after") {
        if (!parse_double(value, &d) || d < 0) {
          result.error = line_error(line_no, "bad after");
          return result;
        }
        r.after = sim::Time::from_seconds(d);
      } else if (key == "trailing") {
        if (!parse_int(value, &i)) {
          result.error = line_error(line_no, "bad trailing");
          return result;
        }
        r.trailing = i;
      } else if (key == "slo_s") {
        if (!parse_double(value, &d)) {
          result.error = line_error(line_no, "bad slo_s");
          return result;
        }
        r.slo_s = d;
      } else if (key == "label") {
        r.label = std::string(value);
      } else {
        result.error =
            line_error(line_no, "unknown key '" + std::string(key) + "'");
        return result;
      }
    }
    if (!have_kind) {
      result.error = line_error(line_no, "missing kind=");
      return result;
    }
    if (!have_warn) {
      result.error = line_error(line_no, "missing warn=");
      return result;
    }
    if (!have_critical) {
      result.error = line_error(line_no, "missing critical=");
      return result;
    }
    result.rules.rules.push_back(std::move(r));
  }
  result.error = validate(result.rules);
  if (!result.error.empty()) result.rules.rules.clear();
  return result;
}

HealthRulesParseResult load_health_rules(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    HealthRulesParseResult result;
    result.error = "cannot open health rules '" + path + "'";
    return result;
  }
  return parse_health_rules(in);
}

std::string validate(const HealthRuleSet& rules) {
  for (std::size_t i = 0; i < rules.rules.size(); ++i) {
    const HealthRule& r = rules.rules[i];
    std::ostringstream os;
    os << "rule " << i << " (" << to_string(r.kind) << "): ";
    if (is_floor(r.kind)) {
      if (r.critical > r.warn) {
        os << "critical must be <= warn for a floor";
        return os.str();
      }
    } else {
      if (r.critical < r.warn) {
        os << "critical must be >= warn for a ceiling";
        return os.str();
      }
    }
    switch (r.kind) {
      case HealthRuleKind::kContinuityFloor:
        if (r.warn < 0 || r.warn > 1 || r.critical < 0) {
          os << "thresholds must be in [0,1]";
          return os.str();
        }
        break;
      case HealthRuleKind::kIspShareDrift:
        if (r.warn < 0 || r.critical > 1) {
          os << "drift thresholds must be in [0,1]";
          return os.str();
        }
        if (r.trailing < 2) {
          os << "trailing must be >= 2 samples";
          return os.str();
        }
        break;
      case HealthRuleKind::kStartupDelaySlo:
        if (r.slo_s <= 0) {
          os << "slo_s must be > 0";
          return os.str();
        }
        [[fallthrough]];
      case HealthRuleKind::kPeerIsolation:
      case HealthRuleKind::kQueueDepthCeiling:
        if (r.warn < 0) {
          os << "count thresholds must be >= 0";
          return os.str();
        }
        break;
    }
  }
  return {};
}

void write_health_rules(std::ostream& os, const HealthRuleSet& rules) {
  char buf[64];
  const auto num = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return std::string(buf);
  };
  os << "# ppsim health rules (docs/OBSERVABILITY.md)\n";
  for (const HealthRule& r : rules.rules) {
    os << "rule kind=" << to_string(r.kind) << " warn=" << num(r.warn)
       << " critical=" << num(r.critical);
    if (r.after != sim::Time::zero())
      os << " after=" << num(r.after.as_seconds());
    if (r.kind == HealthRuleKind::kIspShareDrift)
      os << " trailing=" << r.trailing;
    if (r.kind == HealthRuleKind::kStartupDelaySlo)
      os << " slo_s=" << num(r.slo_s);
    if (!r.label.empty()) os << " label=" << r.label;
    os << "\n";
  }
}

HealthRuleSet default_health_rules() {
  HealthRuleSet rules;
  {
    HealthRule r;
    r.kind = HealthRuleKind::kContinuityFloor;
    r.warn = 0.90;
    r.critical = 0.75;
    r.after = sim::Time::seconds(45);
    r.label = "continuity";
    rules.rules.push_back(r);
  }
  {
    HealthRule r;
    r.kind = HealthRuleKind::kPeerIsolation;
    r.warn = 3;
    r.critical = 8;
    r.after = sim::Time::seconds(30);
    r.label = "isolation";
    rules.rules.push_back(r);
  }
  {
    HealthRule r;
    r.kind = HealthRuleKind::kIspShareDrift;
    r.warn = 0.35;
    r.critical = 0.60;
    r.after = sim::Time::seconds(45);
    r.trailing = 4;
    r.label = "locality-drift";
    rules.rules.push_back(r);
  }
  {
    HealthRule r;
    r.kind = HealthRuleKind::kStartupDelaySlo;
    r.warn = 3;
    r.critical = 10;
    r.after = sim::Time::seconds(45);
    r.slo_s = 30;
    r.label = "startup-slo";
    rules.rules.push_back(r);
  }
  {
    HealthRule r;
    r.kind = HealthRuleKind::kQueueDepthCeiling;
    r.warn = 20000;
    r.critical = 50000;
    r.label = "scheduler-backlog";
    rules.rules.push_back(r);
  }
  return rules;
}

HealthMonitor::HealthMonitor(HealthRuleSet rules, Options options)
    : rules_(std::move(rules)), options_(options) {
  states_.resize(rules_.rules.size());
}

bool HealthMonitor::signal(std::size_t i, const HealthInput& input,
                           double* value) {
  const HealthRule& rule = rules_.rules[i];
  RuleState& state = states_[i];
  if (input.t < rule.after) return false;
  switch (rule.kind) {
    case HealthRuleKind::kContinuityFloor:
      *value = input.avg_continuity;
      return true;
    case HealthRuleKind::kPeerIsolation:
      *value = static_cast<double>(input.isolated_peers);
      return true;
    case HealthRuleKind::kIspShareDrift: {
      // Drift = relative drop of the current interval share below its
      // trailing-window mean; idle intervals carry no share information.
      if (input.interval_bytes == 0) return false;
      const double share = input.same_isp_share_interval;
      bool have = false;
      if (state.trailing.size() >= static_cast<std::size_t>(rule.trailing)) {
        double sum = 0;
        for (const double s : state.trailing) sum += s;
        const double mean = sum / static_cast<double>(state.trailing.size());
        if (mean > 0) {
          *value = std::max(0.0, (mean - share) / mean);
          have = true;
        }
      }
      state.trailing.push_back(share);
      while (state.trailing.size() > static_cast<std::size_t>(rule.trailing))
        state.trailing.pop_front();
      return have;
    }
    case HealthRuleKind::kStartupDelaySlo: {
      std::uint64_t late = 0;
      for (const double w : input.startup_waits_s)
        if (w > rule.slo_s) ++late;
      *value = static_cast<double>(late);
      return true;
    }
    case HealthRuleKind::kQueueDepthCeiling:
      *value = static_cast<double>(input.queue_depth);
      return true;
  }
  return false;
}

void HealthMonitor::evaluate(const HealthInput& input) {
  ++evaluations_;
  for (std::size_t i = 0; i < rules_.rules.size(); ++i) {
    const HealthRule& rule = rules_.rules[i];
    RuleState& state = states_[i];
    double value = 0;
    if (!signal(i, input, &value)) continue;
    ++state.status.evaluations;
    state.status.last_value = value;
    HealthState target = HealthState::kOk;
    if (is_floor(rule.kind)) {
      if (value < rule.critical) target = HealthState::kCritical;
      else if (value < rule.warn) target = HealthState::kWarn;
    } else {
      if (value >= rule.critical) target = HealthState::kCritical;
      else if (value >= rule.warn) target = HealthState::kWarn;
    }
    if (target != state.status.state) transition(i, input.t, target, value);
    if (target != HealthState::kOk && state.status.trips > 0) {
      // "More extreme" depends on direction: deeper for floors, higher
      // for ceilings. transition() seeded worst_value on the first trip.
      const bool more_extreme = is_floor(rule.kind)
                                    ? value < state.status.worst_value
                                    : value > state.status.worst_value;
      if (more_extreme) state.status.worst_value = value;
    }
  }
}

void HealthMonitor::transition(std::size_t i, sim::Time t, HealthState to,
                               double value) {
  const HealthRule& rule = rules_.rules[i];
  RuleState& state = states_[i];
  const HealthState from = state.status.state;
  state.status.state = to;
  state.status.worst = std::max(state.status.worst, to);
  const char* event = nullptr;
  const char* counter = nullptr;
  if (to == HealthState::kOk) {
    ++state.status.clears;
    event = "health.clear";
    counter = "health_clears";
  } else {
    if (from == HealthState::kOk) {
      if (state.status.trips == 0) {
        state.status.first_trip = t;
        state.status.worst_value = value;
      }
      ++state.status.trips;
      if (options_.metrics != nullptr)
        options_.metrics
            ->counter("health_trips", {{"rule", rule.display_name()}})
            .inc();
    }
    if (to == HealthState::kCritical) {
      ++state.status.criticals;
      event = "health.critical";
      counter = "health_criticals";
    } else {
      event = "health.warn";
      counter = "health_warns";
    }
  }
  if (options_.metrics != nullptr)
    options_.metrics->counter(counter, {{"rule", rule.display_name()}}).inc();
  emit(i, t, event, from, to, value);
  if (to == HealthState::kCritical && critical_hook_)
    critical_hook_(t, rule, value);
}

void HealthMonitor::emit(std::size_t i, sim::Time t, const char* event,
                         HealthState from, HealthState to, double value) {
  if (options_.trace == nullptr) return;
  const HealthRule& rule = rules_.rules[i];
  TraceEvent e(t, event);
  e.field("rule", static_cast<std::uint64_t>(i))
      .field("kind", to_string(rule.kind))
      .field("label", rule.display_name())
      .field("from", to_string(from))
      .field("to", to_string(to))
      .field("value", value)
      .field("warn", rule.warn)
      .field("critical", rule.critical);
  options_.trace->write(e);
}

HealthSummary HealthMonitor::summary() const {
  HealthSummary s;
  s.rules.reserve(rules_.rules.size());
  for (std::size_t i = 0; i < rules_.rules.size(); ++i) {
    s.worst = std::max(s.worst, states_[i].status.worst);
    s.rules.emplace_back(rules_.rules[i], states_[i].status);
  }
  return s;
}

namespace {

bool find_number(const std::string& line, const char* key, double* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const char* start = line.c_str() + pos + needle.size();
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return false;
  *out = v;
  return true;
}

bool find_string(const std::string& line, const char* key, std::string* out) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const std::size_t start = pos + needle.size();
  const std::size_t close = line.find('"', start);
  if (close == std::string::npos) return false;
  *out = line.substr(start, close - start);
  return true;
}

bool parse_state(const std::string& s, HealthState* out) {
  for (HealthState st :
       {HealthState::kOk, HealthState::kWarn, HealthState::kCritical}) {
    if (s == to_string(st)) {
      *out = st;
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<HealthTransition> read_health_events_ndjson(std::istream& is,
                                                        std::size_t* dropped) {
  std::vector<HealthTransition> out;
  if (dropped != nullptr) *dropped = 0;
  std::string line;
  while (std::getline(is, line)) {
    std::string ev;
    if (!find_string(line, "ev", &ev)) continue;
    if (ev != "health.warn" && ev != "health.critical" && ev != "health.clear")
      continue;
    HealthTransition tr;
    double t = 0, rule = 0, value = 0;
    std::string kind, from, to;
    const bool ok = find_number(line, "t", &t) &&
                    find_number(line, "rule", &rule) &&
                    find_string(line, "kind", &kind) &&
                    parse_health_rule_kind(kind, &tr.kind) &&
                    find_string(line, "label", &tr.label) &&
                    find_string(line, "from", &from) &&
                    parse_state(from, &tr.from) &&
                    find_string(line, "to", &to) && parse_state(to, &tr.to) &&
                    find_number(line, "value", &value);
    if (!ok) {
      if (dropped != nullptr) ++*dropped;
      continue;
    }
    tr.t = sim::Time::from_seconds(t);
    tr.rule = static_cast<std::size_t>(rule);
    tr.value = value;
    out.push_back(std::move(tr));
  }
  return out;
}

std::vector<HealthRuleTimeline> analyze_health_timeline(
    const std::vector<HealthTransition>& transitions) {
  std::vector<HealthRuleTimeline> rows;
  const auto row_for = [&](const HealthTransition& tr) -> HealthRuleTimeline& {
    for (auto& r : rows)
      if (r.rule == tr.rule) return r;
    HealthRuleTimeline r;
    r.rule = tr.rule;
    r.kind = tr.kind;
    r.label = tr.label;
    rows.push_back(std::move(r));
    return rows.back();
  };
  for (const HealthTransition& tr : transitions) {
    HealthRuleTimeline& row = row_for(tr);
    if (tr.to == HealthState::kOk) {
      ++row.clears;
      row.last_clear = tr.t;
    } else {
      if (tr.from == HealthState::kOk) {
        if (row.trips == 0) row.first_trip = tr.t;
        ++row.trips;
      }
      if (tr.to == HealthState::kCritical) ++row.criticals;
      const bool more_extreme =
          !row.has_worst || (is_floor(tr.kind) ? tr.value < row.worst_value
                                               : tr.value > row.worst_value);
      if (more_extreme) {
        row.worst_value = tr.value;
        row.has_worst = true;
      }
    }
    row.final_state = tr.to;
  }
  std::sort(rows.begin(), rows.end(),
            [](const HealthRuleTimeline& a, const HealthRuleTimeline& b) {
              return a.rule < b.rule;
            });
  return rows;
}

void print_health_timeline(std::ostream& os,
                           const std::vector<HealthRuleTimeline>& rows) {
  os << "Health timeline (watchdog trips & clears per rule)\n";
  char line[192];
  std::snprintf(line, sizeof(line),
                "%4s  %-20s %-20s %6s %6s %6s  %11s %11s  %8s  %s\n", "rule",
                "kind", "label", "trips", "crit", "clear", "first-trip",
                "last-clear", "worst", "final");
  os << line;
  for (const HealthRuleTimeline& r : rows) {
    char first[24], last[24], worst[24];
    if (r.trips > 0)
      std::snprintf(first, sizeof(first), "%.0fs", r.first_trip.as_seconds());
    else
      std::snprintf(first, sizeof(first), "%s", "-");
    if (r.clears > 0)
      std::snprintf(last, sizeof(last), "%.0fs", r.last_clear.as_seconds());
    else
      std::snprintf(last, sizeof(last), "%s", "-");
    if (r.has_worst)
      std::snprintf(worst, sizeof(worst), "%.3g", r.worst_value);
    else
      std::snprintf(worst, sizeof(worst), "%s", "-");
    std::snprintf(line, sizeof(line),
                  "%4zu  %-20s %-20s %6llu %6llu %6llu  %11s %11s  %8s  %s\n",
                  r.rule, std::string(to_string(r.kind)).c_str(),
                  r.label.empty() ? "-" : r.label.c_str(),
                  static_cast<unsigned long long>(r.trips),
                  static_cast<unsigned long long>(r.criticals),
                  static_cast<unsigned long long>(r.clears), first, last,
                  worst, std::string(to_string(r.final_state)).c_str());
    os << line;
  }
}

}  // namespace ppsim::obs
