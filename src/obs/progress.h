#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "sim/time.h"

namespace ppsim::obs {

class RunProfiler;

/// Live-progress heartbeat for long runs: one stderr line per period with
/// sim time, wall time, event throughput, peers alive, RSS, and an ETA.
///
/// Wall-clock numbers come from a borrowed RunProfiler — the sanctioned
/// steady_clock island — so the meter itself never reads a clock; with no
/// profiler attached the wall/throughput/ETA columns render as "-". The
/// meter only writes to its own stream: it cannot perturb the run, and a
/// disarmed meter costs nothing (the runner doesn't even schedule the
/// tick).
///
/// Line format (kept in sync with docs/OBSERVABILITY.md):
///   [progress] t=120.0s/360s (33.3%) wall=4.1s events=804905 (195.2k/s)
///   peers=121 queue=5417 rss=512.3MB eta=8.2s
class ProgressMeter {
 public:
  struct Options {
    std::ostream* out = nullptr;            // heartbeat destination (borrowed)
    const RunProfiler* profiler = nullptr;  // wall-clock source (may be null)
    sim::Time total = sim::Time::zero();    // planned run length (for %, ETA)
  };

  /// Snapshot the runner gathers on the progress tick.
  struct State {
    sim::Time now;
    std::uint64_t events_executed = 0;
    std::uint64_t peers_alive = 0;
    std::size_t queue_depth = 0;
    std::uint64_t rss_bytes = 0;
  };

  explicit ProgressMeter(const Options& options) : options_(options) {}

  void tick(const State& state);

  std::uint64_t lines_written() const { return lines_; }

  /// The formatted heartbeat for one snapshot (no trailing newline);
  /// exposed for tests and for callers that want the line elsewhere.
  std::string format_line(const State& state) const;

 private:
  Options options_;
  std::uint64_t lines_ = 0;
};

}  // namespace ppsim::obs
