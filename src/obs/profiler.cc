#include "obs/profiler.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <vector>

#include "obs/json.h"

namespace ppsim::obs {

std::vector<double> RunProfiler::dispatch_time_bounds() {
  return {1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1};
}

void RunProfiler::on_event_begin(sim::Time /*now*/, std::uint64_t /*seq*/,
                                 const char* /*category*/,
                                 std::size_t queue_depth) {
  max_queue_depth_ = std::max(max_queue_depth_, queue_depth);
  event_begin_ = Clock::now();
}

void RunProfiler::on_event_end(sim::Time /*now*/, const char* category) {
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - event_begin_).count();
  auto it = stats_.find(std::string_view(category));
  if (it == stats_.end()) it = stats_.emplace(category, CategoryStats{}).first;
  ++it->second.events;
  it->second.wall_seconds += elapsed;
  it->second.dispatch_time.observe(elapsed);
  ++events_total_;
  wall_seconds_total_ += elapsed;
}

void RunProfiler::write_ndjson(std::ostream& os) const {
  // Quantiles come from bucketed histograms; the overflow bucket reports
  // +inf, which JSON cannot carry — emit null there.
  const auto write_quantile = [&os](double v) {
    if (std::isfinite(v))
      write_json_double(os, v);
    else
      os << "null";
  };
  for (const auto& [name, cs] : stats_) {
    os << "{\"category\":";
    write_json_string(os, name.empty() ? "(untagged)" : name);
    os << ",\"events\":" << cs.events << ",\"wall_s\":";
    write_json_double(os, cs.wall_seconds);
    os << ",\"p50_s\":";
    write_quantile(cs.dispatch_time.quantile(0.5));
    os << ",\"p99_s\":";
    write_quantile(cs.dispatch_time.quantile(0.99));
    os << "}\n";
  }
  os << "{\"category\":\"total\",\"events\":" << events_total_
     << ",\"wall_s\":";
  write_json_double(os, wall_seconds_total_);
  os << ",\"events_per_s\":";
  write_json_double(os, events_per_second());
  os << ",\"max_queue_depth\":" << max_queue_depth_ << "}\n";
}

void RunProfiler::print(std::ostream& os) const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "run profile: %llu events in %.3f s wall (%.0f events/s), "
                "max queue depth %zu\n",
                static_cast<unsigned long long>(events_total_),
                wall_seconds_total_, events_per_second(), max_queue_depth_);
  os << buf;
  std::vector<std::pair<std::string, CategoryStats>> rows(stats_.begin(),
                                                          stats_.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.wall_seconds != b.second.wall_seconds)
      return a.second.wall_seconds > b.second.wall_seconds;
    return a.first < b.first;
  });
  std::snprintf(buf, sizeof buf, "  %-24s %12s %12s %6s %10s %10s\n",
                "category", "events", "wall_s", "%", "p50", "p99");
  os << buf;
  const auto quantile_us = [](const Histogram& h, double q, char* out,
                              std::size_t n) {
    if (h.count() == 0) {
      // Empty histogram (pre-registered category that never fired):
      // quantile() is NaN, which must not leak into the table.
      std::snprintf(out, n, "%s", "-");
      return;
    }
    const double v = h.quantile(q);
    if (std::isfinite(v))
      std::snprintf(out, n, "<=%.3gus", v * 1e6);
    else
      std::snprintf(out, n, "%s", ">0.1s");
  };
  for (const auto& [name, cs] : rows) {
    char p50[16], p99[16];
    quantile_us(cs.dispatch_time, 0.5, p50, sizeof p50);
    quantile_us(cs.dispatch_time, 0.99, p99, sizeof p99);
    std::snprintf(buf, sizeof buf, "  %-24s %12llu %12.4f %5.1f%% %10s %10s\n",
                  name.empty() ? "(untagged)" : name.c_str(),
                  static_cast<unsigned long long>(cs.events), cs.wall_seconds,
                  wall_seconds_total_ <= 0
                      ? 0.0
                      : 100.0 * cs.wall_seconds / wall_seconds_total_,
                  p50, p99);
    os << buf;
  }
}

}  // namespace ppsim::obs
