#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace ppsim::obs {

/// A TraceSink tee with memory: forwards every event to an optional
/// downstream sink and keeps the last `ring_capacity` events *per event
/// name* in bounded rings (so rare control events like fault_begin are not
/// evicted by high-volume data events). On a trigger — a critical watchdog
/// trip via HealthMonitor's hook, a `peer_crash`, or a `fault_begin`, all
/// auto-detected from the event stream — it dumps a post-mortem NDJSON
/// bundle to `dir`: buffered events in arrival order, the trailing sampler
/// window, and a metrics snapshot. Everything in the bundle is stamped with
/// sim time only, so same-seed dumps are byte-identical.
class FlightRecorder final : public TraceSink {
 public:
  struct Options {
    std::size_t ring_capacity = 64;  // buffered events per event name
    std::size_t sample_window = 16;  // trailing TrafficSamples kept
    std::size_t max_dumps = 16;      // bundles per run, then triggers no-op
    /// Cap on events *written per event name* in one bundle, bounding the
    /// per-dump cost when rings are sized up for big runs. A ring holding
    /// more contributes only its newest max_dump_per_category events, and
    /// the bundle's events section carries one explicit
    /// {"truncated":name,"kept":K,"dropped":D} marker row per capped ring.
    std::size_t max_dump_per_category = 64;
    sim::Time min_dump_gap = sim::Time::seconds(30);  // sim-time debounce
    std::string dir;                 // bundle directory; empty = dumps off
    TraceSink* downstream = nullptr;  // forwarded every event; borrowed
    MetricsRegistry* metrics = nullptr;  // postmortem_dumps counter; borrowed
  };

  explicit FlightRecorder(Options options);

  /// TraceSink: buffer, forward, and auto-trigger on peer_crash/fault_begin.
  void write(const TraceEvent& event) override;

  /// Feeds the trailing sampler window (the runner calls this right after
  /// TrafficSampler::record on each sampling tick).
  void note_sample(const TrafficSample& sample);

  /// Requests a post-mortem dump at sim time `now`. Honors the debounce gap
  /// and the per-run dump budget; no-op without a configured dir. Returns
  /// true when a bundle was written.
  bool trigger(sim::Time now, std::string_view reason);

  /// Arms a periodic self-sampling tick ("obs.sample" category) that calls
  /// `capture` every `period` and feeds the result to note_sample. Used when
  /// the recorder runs standalone (tests, tools) rather than riding the
  /// experiment runner's sampler tick. The chain re-arms itself, so the
  /// recorder keeps its own stop flag per the schedule_periodic contract:
  /// stop_sampling() makes the next tick return false and also cancels the
  /// first firing if it has not fired yet.
  void start_sampling(sim::Simulator& simulator, sim::Time period,
                      std::function<TrafficSample()> capture);
  void stop_sampling();
  bool sampling_active() const { return sampling_; }

  std::uint64_t dumps_written() const { return dumps_written_; }
  std::uint64_t dump_failures() const { return dump_failures_; }
  const std::vector<std::string>& dump_paths() const { return dump_paths_; }
  /// Events currently buffered across all rings.
  std::size_t events_buffered() const { return events_buffered_; }

 private:
  struct Buffered {
    std::uint64_t order;  // global arrival index, merges rings back in order
    TraceEvent event;
  };

  void dump(sim::Time now, std::string_view reason);

  Options options_;
  std::map<std::string, std::deque<Buffered>> rings_;
  std::deque<TrafficSample> samples_;
  std::uint64_t arrival_ = 0;
  std::size_t events_buffered_ = 0;
  std::uint64_t dumps_written_ = 0;
  std::uint64_t dump_failures_ = 0;
  bool has_last_dump_ = false;
  sim::Time last_dump_;
  std::vector<std::string> dump_paths_;
  bool sampling_ = false;
  sim::Simulator* sampling_sim_ = nullptr;
  sim::TimerHandle sampling_first_;
};

}  // namespace ppsim::obs
