#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace ppsim::obs {

namespace {

/// File-name-safe version of a trigger reason ("health:continuity" ->
/// "health-continuity"); anything outside [a-zA-Z0-9_-] becomes '-'.
std::string sanitize(std::string_view reason) {
  std::string out;
  out.reserve(reason.size());
  for (const char c : reason) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    out.push_back(ok ? c : '-');
  }
  return out.empty() ? std::string("trigger") : out;
}

}  // namespace

FlightRecorder::FlightRecorder(Options options)
    : options_(std::move(options)) {
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
  if (options_.max_dump_per_category == 0) options_.max_dump_per_category = 1;
}

void FlightRecorder::write(const TraceEvent& event) {
  auto& ring = rings_[event.name()];
  ring.push_back(Buffered{arrival_++, event});
  ++events_buffered_;
  while (ring.size() > options_.ring_capacity) {
    ring.pop_front();
    --events_buffered_;
  }
  if (options_.downstream != nullptr) options_.downstream->write(event);
  // Anomaly markers from the fault layer double as dump triggers: capture
  // the swarm state around every crash and at each fault-window onset.
  if (event.name() == "peer_crash" || event.name() == "fault_begin")
    trigger(event.time(), event.name());
}

void FlightRecorder::note_sample(const TrafficSample& sample) {
  samples_.push_back(sample);
  while (samples_.size() > options_.sample_window) samples_.pop_front();
}

bool FlightRecorder::trigger(sim::Time now, std::string_view reason) {
  if (options_.dir.empty()) return false;
  if (dumps_written_ + dump_failures_ >= options_.max_dumps) return false;
  if (has_last_dump_ && now < last_dump_ + options_.min_dump_gap) return false;
  has_last_dump_ = true;
  last_dump_ = now;
  dump(now, reason);
  return true;
}

void FlightRecorder::dump(sim::Time now, std::string_view reason) {
  const std::uint64_t index = dumps_written_ + dump_failures_;
  char name[128];
  std::snprintf(name, sizeof(name), "postmortem-%03llu-%s-t%lld.ndjson",
                static_cast<unsigned long long>(index),
                sanitize(reason).c_str(),
                static_cast<long long>(now.as_micros()));
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  const std::string path =
      (std::filesystem::path(options_.dir) / name).string();
  std::ofstream os(path);
  if (!os) {
    ++dump_failures_;
    return;
  }

  // Header, then three marked sections so the bundle self-describes for
  // ppsim-analyze --postmortem. Events replay in global arrival order by
  // merging the per-name rings on their arrival index. Each ring
  // contributes at most max_dump_per_category (newest) events so a single
  // bundle's size stays bounded even when rings are sized up for scale
  // runs; capped rings are declared with explicit truncated marker rows
  // rather than silently shrinking.
  struct Truncation {
    std::string_view name;
    std::size_t kept;
    std::size_t dropped;
  };
  std::vector<const Buffered*> ordered;
  ordered.reserve(events_buffered_);
  std::vector<Truncation> truncated;  // rings_ is a map: sorted by name
  for (const auto& [ev_name, ring] : rings_) {
    const std::size_t keep =
        std::min(ring.size(), options_.max_dump_per_category);
    if (keep < ring.size())
      truncated.push_back(Truncation{ev_name, keep, ring.size() - keep});
    for (std::size_t i = ring.size() - keep; i < ring.size(); ++i)
      ordered.push_back(&ring[i]);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const Buffered* a, const Buffered* b) {
              return a->order < b->order;
            });

  os << "{\"postmortem\":";
  write_json_string(os, reason);
  os << ",\"t\":";
  write_json_sim_time(os, now);
  os << ",\"dump\":" << index << ",\"events\":" << ordered.size()
     << ",\"samples\":" << samples_.size() << "}\n";

  os << "{\"section\":\"events\",\"count\":" << ordered.size();
  // Only stamped when something was cut, so uncapped bundles keep their
  // exact pre-existing byte layout.
  if (!truncated.empty()) os << ",\"truncated\":" << truncated.size();
  os << "}\n";
  // Marker rows lead the section (deterministic name order) so a reader
  // knows up front which categories are partial. They carry no "ev" key,
  // and ppsim-analyze --postmortem recognizes the "truncated" key, so they
  // never pollute the per-event tally.
  for (const Truncation& t : truncated) {
    os << "{\"truncated\":";
    write_json_string(os, t.name);
    os << ",\"kept\":" << t.kept << ",\"dropped\":" << t.dropped << "}\n";
  }
  NdjsonTraceSink events_sink(os);
  for (const Buffered* b : ordered) events_sink.write(b->event);

  os << "{\"section\":\"samples\",\"count\":" << samples_.size() << "}\n";
  write_samples_ndjson(
      os, std::vector<TrafficSample>(samples_.begin(), samples_.end()));

  std::size_t metric_count = 0;
  if (options_.metrics != nullptr) metric_count = options_.metrics->size();
  os << "{\"section\":\"metrics\",\"count\":" << metric_count << "}\n";
  if (options_.metrics != nullptr) options_.metrics->write_ndjson(os);

  if (!os) {
    ++dump_failures_;
    return;
  }
  ++dumps_written_;
  dump_paths_.push_back(path);
  if (options_.metrics != nullptr)
    options_.metrics->counter("postmortem_dumps").inc();
}

void FlightRecorder::start_sampling(sim::Simulator& simulator, sim::Time period,
                                    std::function<TrafficSample()> capture) {
  stop_sampling();
  sampling_ = true;
  sampling_sim_ = &simulator;
  sampling_first_ = sim::schedule_periodic(
      simulator, period,
      [this, capture = std::move(capture)]() {
        if (!sampling_) return false;
        note_sample(capture());
        return true;
      },
      "obs.sample");
}

void FlightRecorder::stop_sampling() {
  if (!sampling_) return;
  sampling_ = false;
  // Cancelling the first firing covers the pre-first-tick window; after
  // that the chain re-arms under fresh handles and the flag stops it.
  if (sampling_sim_ != nullptr) sampling_sim_->cancel(sampling_first_);
  sampling_sim_ = nullptr;
  sampling_first_ = sim::TimerHandle();
}

}  // namespace ppsim::obs
