#include "obs/telemetry.h"

#include <cstdlib>
#include <istream>
#include <sstream>
#include <string>

namespace ppsim::obs {

namespace {

/// Reads a JSON string starting at raw[pos] (which must be '"'), undoing
/// the write_json_escaped escapes. Returns false on malformed input;
/// advances pos past the closing quote on success.
bool read_json_string(const std::string& raw, std::size_t* pos,
                      std::string* out) {
  std::size_t i = *pos;
  if (i >= raw.size() || raw[i] != '"') return false;
  ++i;
  out->clear();
  while (i < raw.size()) {
    const char c = raw[i];
    if (c == '"') {
      *pos = i + 1;
      return true;
    }
    if (c == '\\') {
      if (i + 1 >= raw.size()) return false;
      const char esc = raw[i + 1];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (i + 5 >= raw.size()) return false;
          const std::string hex = raw.substr(i + 2, 4);
          char* end = nullptr;
          const long code = std::strtol(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4 || code < 0 || code > 0x7f) return false;
          out->push_back(static_cast<char>(code));
          i += 4;
          break;
        }
        default: return false;
      }
      i += 2;
      continue;
    }
    out->push_back(c);
    ++i;
  }
  return false;  // unterminated
}

}  // namespace

std::vector<std::string> MetricsDeltaTracker::collect_impl(
    const MetricsRegistry& registry, bool full) {
  std::vector<std::string> rows;
  registry.for_each([&](const MetricsRegistry::EntryView& e) {
    std::ostringstream os;
    write_entry_ndjson(os, e);
    std::string row = os.str();
    if (!row.empty() && row.back() == '\n') row.pop_back();
    auto [it, inserted] = last_.emplace(e.key, row);
    if (!inserted) {
      if (!full && it->second == row) return;
      it->second = row;
    }
    rows.push_back(std::move(row));
  });
  return rows;
}

std::vector<std::string> MetricsDeltaTracker::collect(
    const MetricsRegistry& registry) {
  return collect_impl(registry, /*full=*/false);
}

std::vector<std::string> MetricsDeltaTracker::collect_full(
    const MetricsRegistry& registry) {
  return collect_impl(registry, /*full=*/true);
}

bool parse_metric_ndjson(const std::string& line, ParsedMetric* out) {
  *out = ParsedMetric{};
  std::size_t pos = line.find("{\"metric\":");
  if (pos != 0) return false;
  pos += 10;
  if (!read_json_string(line, &pos, &out->name)) return false;

  const std::size_t type_pos = line.find(",\"type\":\"", pos);
  if (type_pos == std::string::npos) return false;
  std::size_t p = type_pos + 8;
  std::string type;
  if (!read_json_string(line, &p, &type)) return false;

  const std::size_t labels_pos = line.find(",\"labels\":{", p);
  if (labels_pos == std::string::npos) return false;
  p = labels_pos + 11;
  out->labels.clear();
  if (p < line.size() && line[p] != '}') {
    while (true) {
      std::string k, v;
      if (!read_json_string(line, &p, &k)) return false;
      if (p >= line.size() || line[p] != ':') return false;
      ++p;
      if (!read_json_string(line, &p, &v)) return false;
      out->labels.emplace_back(std::move(k), std::move(v));
      if (p < line.size() && line[p] == ',') {
        ++p;
        continue;
      }
      break;
    }
  }
  if (p >= line.size() || line[p] != '}') return false;
  ++p;

  if (type == "histogram") {
    out->kind = ParsedMetric::Kind::kSkipped;
    return true;
  }
  if (line.compare(p, 9, ",\"value\":") != 0) return false;
  p += 9;
  const char* start = line.c_str() + p;
  char* end = nullptr;
  if (type == "counter") {
    out->kind = ParsedMetric::Kind::kCounter;
    out->counter_value =
        static_cast<std::uint64_t>(std::strtoull(start, &end, 10));
  } else if (type == "gauge") {
    out->kind = ParsedMetric::Kind::kGauge;
    out->gauge_value = std::strtod(start, &end);
  } else {
    return false;
  }
  return end != start;
}

bool apply_metric(const ParsedMetric& m, MetricsRegistry* registry) {
  switch (m.kind) {
    case ParsedMetric::Kind::kCounter: {
      Counter& c = registry->counter(m.name, m.labels);
      if (m.counter_value > c.value()) c.inc(m.counter_value - c.value());
      return true;
    }
    case ParsedMetric::Kind::kGauge:
      registry->gauge(m.name, m.labels).set(m.gauge_value);
      return true;
    case ParsedMetric::Kind::kSkipped:
      return false;
  }
  return false;
}

std::size_t read_metrics_ndjson(std::istream& is, MetricsRegistry* registry,
                                std::size_t* skipped) {
  std::size_t applied = 0;
  if (skipped != nullptr) *skipped = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ParsedMetric m;
    if (parse_metric_ndjson(line, &m) && apply_metric(m, registry)) {
      ++applied;
    } else if (skipped != nullptr) {
      ++*skipped;
    }
  }
  return applied;
}

}  // namespace ppsim::obs
