#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <ostream>

#include "obs/json.h"

namespace ppsim::obs {

namespace {

Labels sorted_labels(const Labels& labels) {
  Labels out = labels;
  std::sort(out.begin(), out.end());
  return out;
}

/// Serialized identity: name{k="v",...} with labels already sorted.
std::string identity_key(std::string_view name, const Labels& sorted) {
  std::string key(name);
  if (sorted.empty()) return key;
  key += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ',';
    key += sorted[i].first;
    key += "=\"";
    key += sorted[i].second;
    key += '"';
  }
  key += '}';
  return key;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      counts_(upper_bounds_.size() + 1, 0) {
  assert(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()));
}

void Histogram::observe(double v) {
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - upper_bounds_.begin())];
  ++count_;
  sum_ += v;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the wanted observation, 1-based. ceil() so that e.g. the median
  // of two observations is the first (rank 1), matching the "tightest upper
  // bound" contract; q=0 still lands on rank 1, q=1 on rank count.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) {
      return i < upper_bounds_.size()
                 ? upper_bounds_[i]
                 : std::numeric_limits<double>::infinity();
    }
  }
  return std::numeric_limits<double>::infinity();
}

void Histogram::merge(const Histogram& other) {
  assert(upper_bounds_ == other.upper_bounds_ &&
         "histogram merge requires identical bucket bounds");
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

MetricsRegistry::Entry& MetricsRegistry::entry(std::string_view name,
                                               const Labels& labels,
                                               Kind kind) {
  Labels sorted = sorted_labels(labels);
  std::string key = identity_key(name, sorted);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    assert(it->second.kind == kind && "metric re-registered as another type");
    return it->second;
  }
  Entry e;
  e.name = std::string(name);
  e.labels = std::move(sorted);
  e.kind = kind;
  return entries_.emplace(std::move(key), std::move(e)).first->second;
}

const MetricsRegistry::Entry* MetricsRegistry::find(std::string_view name,
                                                    const Labels& labels,
                                                    Kind kind) const {
  const auto it = entries_.find(identity_key(name, sorted_labels(labels)));
  if (it == entries_.end() || it->second.kind != kind) return nullptr;
  return &it->second;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  const Labels& labels) {
  Entry& e = entry(name, labels, Kind::kCounter);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, const Labels& labels) {
  Entry& e = entry(name, labels, Kind::kGauge);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds,
                                      const Labels& labels) {
  Entry& e = entry(name, labels, Kind::kHistogram);
  if (!e.histogram)
    e.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  return *e.histogram;
}

const Counter* MetricsRegistry::find_counter(std::string_view name,
                                             const Labels& labels) const {
  const Entry* e = find(name, labels, Kind::kCounter);
  return e == nullptr ? nullptr : e->counter.get();
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name,
                                         const Labels& labels) const {
  const Entry* e = find(name, labels, Kind::kGauge);
  return e == nullptr ? nullptr : e->gauge.get();
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name,
                                                 const Labels& labels) const {
  const Entry* e = find(name, labels, Kind::kHistogram);
  return e == nullptr ? nullptr : e->histogram.get();
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [key, theirs] : other.entries_) {
    switch (theirs.kind) {
      case Kind::kCounter:
        counter(theirs.name, theirs.labels).inc(theirs.counter->value());
        break;
      case Kind::kGauge:
        gauge(theirs.name, theirs.labels).set(theirs.gauge->value());
        break;
      case Kind::kHistogram:
        histogram(theirs.name, theirs.histogram->upper_bounds(), theirs.labels)
            .merge(*theirs.histogram);
        break;
    }
  }
}

void MetricsRegistry::for_each(
    const std::function<void(const EntryView&)>& fn) const {
  for (const auto& [key, e] : entries_) {
    EntryView view{key, e.name, e.labels,
                   e.kind == Kind::kCounter ? e.counter.get() : nullptr,
                   e.kind == Kind::kGauge ? e.gauge.get() : nullptr,
                   e.kind == Kind::kHistogram ? e.histogram.get() : nullptr};
    fn(view);
  }
}

void MetricsRegistry::write_ndjson(std::ostream& os) const {
  for_each([&os](const EntryView& e) { write_entry_ndjson(os, e); });
}

void write_entry_ndjson(std::ostream& os,
                        const MetricsRegistry::EntryView& e) {
  os << "{\"metric\":";
  write_json_string(os, e.name);
  os << ",\"type\":";
  if (e.counter != nullptr)
    os << "\"counter\"";
  else if (e.gauge != nullptr)
    os << "\"gauge\"";
  else
    os << "\"histogram\"";
  os << ",\"labels\":{";
  for (std::size_t i = 0; i < e.labels.size(); ++i) {
    if (i > 0) os << ',';
    write_json_string(os, e.labels[i].first);
    os << ':';
    write_json_string(os, e.labels[i].second);
  }
  os << '}';
  if (e.counter != nullptr) {
    os << ",\"value\":" << e.counter->value();
  } else if (e.gauge != nullptr) {
    os << ",\"value\":";
    write_json_double(os, e.gauge->value());
  } else {
    const Histogram& h = *e.histogram;
    os << ",\"count\":" << h.count() << ",\"sum\":";
    write_json_double(os, h.sum());
    os << ",\"buckets\":[";
    for (std::size_t i = 0; i < h.bucket_counts().size(); ++i) {
      if (i > 0) os << ',';
      os << "{\"le\":";
      if (i < h.upper_bounds().size())
        write_json_double(os, h.upper_bounds()[i]);
      else
        os << "\"+inf\"";
      os << ",\"count\":" << h.bucket_counts()[i] << '}';
    }
    os << ']';
  }
  os << "}\n";
}

MetricsWindowRing::MetricsWindowRing(std::size_t capacity)
    : capacity_(capacity), current_(std::make_unique<MetricsRegistry>()) {
  assert(capacity_ > 0);
}

void MetricsWindowRing::rotate(std::string label) {
  windows_.push_back({std::move(label), std::move(current_)});
  if (windows_.size() > capacity_) windows_.erase(windows_.begin());
  current_ = std::make_unique<MetricsRegistry>();
  ++sealed_;
}

void MetricsWindowRing::merged(MetricsRegistry* out) const {
  for (const auto& w : windows_) out->merge_from(*w.registry);
  out->merge_from(*current_);
}

}  // namespace ppsim::obs
