#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ppsim::obs {

/// One benchmark's machine-readable result, the unit of the BENCH_*.json
/// perf trajectory (schema "ppsim-bench-v1", docs/OBSERVABILITY.md).
struct BenchEntry {
  std::string name;
  std::uint64_t iterations = 0;
  double ns_per_op = 0;
  /// Peak simulator queue depth for scheduler-shaped benches; 0 when the
  /// bench has no simulator underneath.
  std::uint64_t peak_queue_depth = 0;
  /// Macro-bench resource telemetry (the BENCH_scale sweep). Written only
  /// when nonzero so entries from micro-benches — and every pre-existing
  /// BENCH file — keep their exact byte layout.
  std::uint64_t rss_peak_bytes = 0;
  double wall_s = 0;  // whole-run wall clock, not per-op
};

/// NDJSON: a header line {"bench_schema":"ppsim-bench-v1","benchmarks":N}
/// followed by one entry per line, sorted by name so files diff cleanly
/// across runs regardless of registration order.
void write_bench_json(std::ostream& os, std::vector<BenchEntry> entries);

/// Parses files written by write_bench_json. Malformed lines are skipped
/// and counted in *dropped (when non-null); the header line is not an entry.
std::vector<BenchEntry> read_bench_json(std::istream& is,
                                        std::size_t* dropped = nullptr);

}  // namespace ppsim::obs
