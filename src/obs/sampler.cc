#include "obs/sampler.h"

#include <cassert>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <set>
#include <string>

#include "obs/json.h"

namespace ppsim::obs {

std::uint64_t matrix_total(const IspMatrix& m) {
  std::uint64_t t = 0;
  for (const auto& row : m)
    for (const auto b : row) t += b;
  return t;
}

std::uint64_t matrix_intra_isp(const IspMatrix& m) {
  std::uint64_t t = 0;
  for (std::size_t i = 0; i < m.size(); ++i) t += m[i][i];
  return t;
}

void TrafficSampler::enable_windowing(const WindowOptions& options) {
  assert(options.window > sim::Time::zero() && options.out != nullptr);
  assert(samples_.empty() && flushed_ == 0 &&
         "windowing must be configured before the first sample");
  window_ = options.window;
  window_end_ = options.window;
  out_ = options.out;
  retain_ = options.retain;
}

void TrafficSampler::flush() {
  if (!windowed()) return;
  for (const auto& s : samples_) {
    write_sample_ndjson(*out_, s);
    retained_.push_back(s);
    while (retained_.size() > retain_) retained_.pop_front();
    ++flushed_;
  }
  samples_.clear();
}

std::vector<TrafficSample> TrafficSampler::tail_samples() const {
  std::vector<TrafficSample> out(retained_.begin(), retained_.end());
  out.insert(out.end(), samples_.begin(), samples_.end());
  return out;
}

const TrafficSample& TrafficSampler::record(sim::Time now,
                                            const IspMatrix& cumulative,
                                            double neighbor_same_isp_share,
                                            double avg_continuity,
                                            std::uint64_t alive_peers) {
  if (windowed() && now >= window_end_) {
    flush();
    while (window_end_ <= now) window_end_ += window_;
  }
  TrafficSample s;
  s.t = now;
  s.bytes = cumulative;
  const std::uint64_t total = matrix_total(cumulative);
  const std::uint64_t intra = matrix_intra_isp(cumulative);
  s.interval_bytes = total - matrix_total(prev_);
  s.interval_same_isp_bytes = intra - matrix_intra_isp(prev_);
  s.same_isp_share_cum =
      total == 0 ? 0.0
                 : static_cast<double>(intra) / static_cast<double>(total);
  s.same_isp_share_interval =
      s.interval_bytes == 0
          ? 0.0
          : static_cast<double>(s.interval_same_isp_bytes) /
                static_cast<double>(s.interval_bytes);
  s.neighbor_same_isp_share = neighbor_same_isp_share;
  s.avg_continuity = avg_continuity;
  s.alive_peers = alive_peers;
  prev_ = cumulative;
  samples_.push_back(s);
  return samples_.back();
}

void write_sample_ndjson(std::ostream& os, const TrafficSample& s) {
  os << "{\"t\":";
  write_json_sim_time(os, s.t);
  os << ",\"alive\":" << s.alive_peers << ",\"continuity\":";
  write_json_double(os, s.avg_continuity);
  os << ",\"neighbor_same_isp\":";
  write_json_double(os, s.neighbor_same_isp_share);
  os << ",\"same_isp_cum\":";
  write_json_double(os, s.same_isp_share_cum);
  os << ",\"same_isp_interval\":";
  write_json_double(os, s.same_isp_share_interval);
  os << ",\"interval_bytes\":" << s.interval_bytes
     << ",\"interval_same_isp_bytes\":" << s.interval_same_isp_bytes
     << ",\"bytes\":[";
  for (std::size_t i = 0; i < s.bytes.size(); ++i) {
    if (i > 0) os << ',';
    os << '[';
    for (std::size_t j = 0; j < s.bytes[i].size(); ++j) {
      if (j > 0) os << ',';
      os << s.bytes[i][j];
    }
    os << ']';
  }
  os << "]}\n";
}

void write_samples_ndjson(std::ostream& os,
                          const std::vector<TrafficSample>& samples) {
  for (const auto& s : samples) write_sample_ndjson(os, s);
}

namespace {

/// Finds `"key":` in `line` and parses the number that follows. Tolerant
/// scanning parser for our own fixed emission format, not general JSON.
bool find_number(const std::string& line, const char* key, double* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const char* start = line.c_str() + pos + needle.size();
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return false;
  *out = v;
  return true;
}

bool parse_matrix(const std::string& line, IspMatrix* out) {
  const std::size_t pos = line.find("\"bytes\":[");
  if (pos == std::string::npos) return false;
  const char* p = line.c_str() + pos + 9;
  for (auto& row : *out) {
    while (*p == ',' || *p == ' ') ++p;
    if (*p != '[') return false;
    ++p;
    for (auto& cell : row) {
      while (*p == ',' || *p == ' ') ++p;
      char* end = nullptr;
      cell = std::strtoull(p, &end, 10);
      if (end == p) return false;
      p = end;
    }
    while (*p == ' ') ++p;
    if (*p != ']') return false;
    ++p;
  }
  return true;
}

}  // namespace

std::vector<TrafficSample> read_samples_ndjson(std::istream& is,
                                               std::size_t* dropped,
                                               std::string* error) {
  std::vector<TrafficSample> out;
  if (dropped != nullptr) *dropped = 0;
  if (error != nullptr) error->clear();
  std::set<std::int64_t> seen_micros;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    TrafficSample s;
    double t = 0, alive = 0, continuity = 0, nbr = 0, cum = 0, interval = 0,
           ib = 0, isb = 0;
    const bool ok = find_number(line, "t", &t) &&
                    find_number(line, "alive", &alive) &&
                    find_number(line, "continuity", &continuity) &&
                    find_number(line, "neighbor_same_isp", &nbr) &&
                    find_number(line, "same_isp_cum", &cum) &&
                    find_number(line, "same_isp_interval", &interval) &&
                    find_number(line, "interval_bytes", &ib) &&
                    find_number(line, "interval_same_isp_bytes", &isb) &&
                    parse_matrix(line, &s.bytes);
    if (!ok) {
      if (dropped != nullptr) ++*dropped;
      continue;
    }
    s.t = sim::Time::from_seconds(t);
    if (!seen_micros.insert(s.t.as_micros()).second) {
      // Each row holds the full (src_isp, dst_isp) matrix for its time, so
      // a repeated t duplicates every pair cell — the file is corrupt (e.g.
      // a windowed flush was concatenated twice). Reject it outright.
      if (error != nullptr)
        *error = "duplicate sample row at t=" + s.t.to_string() +
                 " (same time, src_isp, dst_isp cells already present)";
      return {};
    }
    s.alive_peers = static_cast<std::uint64_t>(alive);
    s.avg_continuity = continuity;
    s.neighbor_same_isp_share = nbr;
    s.same_isp_share_cum = cum;
    s.same_isp_share_interval = interval;
    s.interval_bytes = static_cast<std::uint64_t>(ib);
    s.interval_same_isp_bytes = static_cast<std::uint64_t>(isb);
    out.push_back(s);
  }
  return out;
}

}  // namespace ppsim::obs
