#pragma once

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string_view>

#include "sim/time.h"

namespace ppsim::obs {

/// Formatting primitives shared by every NDJSON emitter in the
/// observability layer. All output routed through these helpers is
/// deterministic: fixed-width sim-time, locale-independent numbers, and a
/// canonical escape set — so byte-identical runs produce byte-identical
/// files (the property tests/sim_determinism_test.cc pins).

/// Writes `s` JSON-escaped, without surrounding quotes.
inline void write_json_escaped(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

/// Writes `s` as a JSON string, quotes included.
inline void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  write_json_escaped(os, s);
  os << '"';
}

/// Writes a double as a JSON number ("%.9g": enough digits to be stable,
/// few enough to stay readable; never locale-dependent).
inline void write_json_double(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  os << buf;
}

/// Writes a sim::Time as seconds with microsecond precision ("12.345678"),
/// the canonical "t" field of every NDJSON row.
inline void write_json_sim_time(std::ostream& os, sim::Time t) {
  const std::int64_t us = t.as_micros();
  char buf[40];
  std::snprintf(buf, sizeof buf, "%lld.%06lld",
                static_cast<long long>(us / 1'000'000),
                static_cast<long long>(us % 1'000'000));
  os << buf;
}

}  // namespace ppsim::obs
