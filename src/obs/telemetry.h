#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace ppsim::obs {

/// Snapshot/delta export of a MetricsRegistry, the node side of the fleet
/// telemetry plane (docs/OBSERVABILITY.md, "Fleet telemetry").
///
/// The unit shipped is the *serialized row* — the exact bytes
/// write_entry_ndjson emits. A tracker remembers the last row shipped per
/// identity and collects only the rows whose bytes changed, so a periodic
/// snapshot costs O(changed instances), and a full collect (the closing
/// snapshot of a graceful shutdown) re-ships everything. Because rows
/// carry cumulative values, a lost delta datagram is self-healing: the
/// next snapshot that touches the instance converges the receiver.
class MetricsDeltaTracker {
 public:
  /// Rows (write_entry_ndjson lines, trailing newline stripped) whose
  /// bytes changed since the previous collect/collect_full call, in
  /// identity order. Updates the tracking state.
  std::vector<std::string> collect(const MetricsRegistry& registry);

  /// Every row, unconditionally; still updates the tracking state.
  std::vector<std::string> collect_full(const MetricsRegistry& registry);

 private:
  std::vector<std::string> collect_impl(const MetricsRegistry& registry,
                                        bool full);
  std::map<std::string, std::string> last_;  // identity key -> last row
};

/// One metrics-NDJSON row, parsed back. Histogram rows are recognized but
/// not decoded (kSkipped): the telemetry plane folds counters and gauges;
/// wire nodes publish no histograms and the collector counts any skipped
/// row it receives.
struct ParsedMetric {
  enum class Kind { kCounter, kGauge, kSkipped };
  Kind kind = Kind::kSkipped;
  std::string name;
  Labels labels;                    // as listed (writer emits them sorted)
  std::uint64_t counter_value = 0;  // kCounter
  double gauge_value = 0;           // kGauge
};

/// Parses a row written by write_entry_ndjson / write_ndjson. Returns
/// false when the line is not a metric row at all; histogram rows return
/// true with kind == kSkipped. Tolerant scanning parser for our own fixed
/// emission format, like read_samples_ndjson — not general JSON.
bool parse_metric_ndjson(const std::string& line, ParsedMetric* out);

/// Applies one parsed row to `registry`: counters converge on the row's
/// cumulative value (monotonic clamp, so replayed or reordered snapshots
/// can only raise a counter, never rewind it), gauges last-write-wins.
/// Returns false for kSkipped rows. The value round-trips byte-stably:
/// re-serializing an applied row reproduces the input bytes ("%.9g" is
/// strtod-stable), which is what makes collector-side aggregates
/// byte-comparable to the per-node sink files.
bool apply_metric(const ParsedMetric& m, MetricsRegistry* registry);

/// Reads a whole metrics-NDJSON stream into `registry` via apply_metric.
/// Returns rows applied; malformed and histogram rows count into *skipped
/// (when non-null).
std::size_t read_metrics_ndjson(std::istream& is, MetricsRegistry* registry,
                                std::size_t* skipped = nullptr);

}  // namespace ppsim::obs
