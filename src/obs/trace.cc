#include "obs/trace.h"

#include <algorithm>
#include <ostream>

#include "obs/json.h"

namespace ppsim::obs {

void NdjsonTraceSink::write(const TraceEvent& event) {
  os_ << "{\"t\":";
  write_json_sim_time(os_, event.time());
  os_ << ",\"ev\":";
  write_json_string(os_, event.name());
  for (const auto& f : event.fields()) {
    os_ << ',';
    write_json_string(os_, f.key);
    os_ << ':';
    std::visit(
        [&](const auto& v) {
          using T = std::decay_t<decltype(v)>;
          if constexpr (std::is_same_v<T, std::string>) {
            write_json_string(os_, v);
          } else if constexpr (std::is_same_v<T, bool>) {
            os_ << (v ? "true" : "false");
          } else if constexpr (std::is_same_v<T, double>) {
            write_json_double(os_, v);
          } else {
            os_ << v;
          }
        },
        f.value);
  }
  os_ << "}\n";
  ++events_written_;
}

void CountingTraceSink::write(const TraceEvent& event) {
  ++total_;
  const auto it = std::lower_bound(
      counts_.begin(), counts_.end(), event.name(),
      [](const auto& entry, const std::string& name) {
        return entry.first < name;
      });
  if (it != counts_.end() && it->first == event.name()) {
    ++it->second;
  } else {
    counts_.insert(it, {event.name(), 1});
  }
}

std::uint64_t CountingTraceSink::count(std::string_view name) const {
  const auto it = std::lower_bound(
      counts_.begin(), counts_.end(), name,
      [](const auto& entry, std::string_view n) { return entry.first < n; });
  return it != counts_.end() && it->first == name ? it->second : 0;
}

void SimEventTracer::on_event_begin(sim::Time now, std::uint64_t seq,
                                    const char* category,
                                    std::size_t queue_depth) {
  TraceEvent ev(now, "sim_event");
  ev.field("seq", seq)
      .field("cat", category)
      .field("qdepth", static_cast<std::uint64_t>(queue_depth));
  sink_.write(ev);
}

}  // namespace ppsim::obs
