#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"
#include "sim/time.h"

namespace ppsim::obs {

/// Causal tracing (docs/OBSERVABILITY.md, "Causal tracing"): when the
/// protocol entities run with set_causal_tracing(true), their trace events
/// carry span/parent ids allocated from the simulator's monotonic counter.
/// SpanTracker is a TraceSink — a peer of the flight recorder, typically
/// teed off the same stream — that reconstructs the span trees online and
/// distils the two artifacts the locality analysis needs:
///
///  * referral lineage: for every established neighbor, which entity
///    introduced it (bootstrap / tracker / gossiping peer / inbound
///    handshake) and whether referrer and referee share an ISP, aggregated
///    into a same-ISP-referral-fraction time series; and
///  * startup-delay critical paths: per peer, the named stages
///    bootstrap_wait / tracker_rtt / list_arrival / first_connect /
///    first_chunk / buffer_fill, which by construction sum *exactly* to the
///    measured startup delay (playback start minus join).
///
/// Deterministic by design: all state lives in ordered containers keyed on
/// span ids and IP strings, so same-seed runs serialize byte-identically.
/// Memory is O(spans observed); causal runs are experiment-scale and
/// opt-in, so no eviction is attempted.

/// Names of the startup critical-path stages, in order. The stages are
/// deltas between consecutive (monotonically clamped) milestones, so they
/// telescope: their sum is exactly playback_start - join.
inline constexpr std::array<const char*, 6> kStartupStageNames = {
    "bootstrap_wait", "tracker_rtt",  "list_arrival",
    "first_connect",  "first_chunk",  "buffer_fill"};

/// One established-neighbor referral, taken from an accepted
/// connect_result event.
struct ReferralRecord {
  sim::Time t;
  std::string peer;        // the accepting peer (handshake initiator)
  std::string neighbor;    // the neighbor that was established
  std::string via;         // bootstrap | tracker | gossip | inbound | unknown
  std::string introducer;  // IP of the referring entity
  std::string peer_isp;
  std::string introducer_isp;
  bool same_isp = false;
};

/// One bucket of the same-ISP-referral-fraction time series.
struct ReferralShareBucket {
  sim::Time t_start;
  sim::Time t_end;
  std::uint64_t referrals = 0;
  std::uint64_t same_isp = 0;
  double share() const {
    return referrals == 0
               ? 0.0
               : static_cast<double>(same_isp) / static_cast<double>(referrals);
  }
};

/// Referral counts grouped by introduction channel.
struct LineageSummary {
  struct ViaStats {
    std::uint64_t referrals = 0;
    std::uint64_t same_isp = 0;
    double share() const {
      return referrals == 0 ? 0.0
                            : static_cast<double>(same_isp) /
                                  static_cast<double>(referrals);
    }
  };
  std::map<std::string, ViaStats> by_via;
  ViaStats total;
};

/// One peer's startup-delay decomposition. stages follows
/// kStartupStageNames order; the entries sum exactly to `startup`.
struct CriticalPath {
  std::string peer;
  std::string isp;
  sim::Time t_join;
  sim::Time startup;  // playback_start - join
  std::array<sim::Time, 6> stages{};
};

LineageSummary summarize_lineage(const std::vector<ReferralRecord>& referrals);
std::vector<ReferralShareBucket> referral_share_series(
    const std::vector<ReferralRecord>& referrals, sim::Time bucket);

class SpanTracker final : public TraceSink {
 public:
  struct Options {
    /// Resolves an IP (dotted-quad text, as carried in trace fields) to an
    /// ISP label for lineage records; empty result means "unresolvable".
    /// Must be a pure deterministic function. Unset disables ISP
    /// resolution (every referral reports empty ISPs, same_isp=false).
    std::function<std::string(std::string_view ip)> isp_of;
    /// Width of the same-ISP-referral-fraction time-series buckets.
    sim::Time share_bucket = sim::Time::seconds(60);
  };

  SpanTracker();
  explicit SpanTracker(Options options);

  /// TraceSink hook: consumes span-bearing events (and the startup
  /// milestone events), ignores everything else cheaply.
  void write(const TraceEvent& event) override;

  std::uint64_t events_observed() const { return events_observed_; }
  std::size_t span_count() const { return spans_.size(); }
  /// Parent span of `span`, or 0 when the span is a root or unknown.
  std::uint64_t parent_of(std::uint64_t span) const;
  /// Chain from `span` up to its root (inclusive, starting at `span`).
  std::vector<std::uint64_t> ancestry(std::uint64_t span) const;

  const std::vector<ReferralRecord>& referrals() const { return referrals_; }
  std::vector<ReferralShareBucket> referral_share_series() const {
    return obs::referral_share_series(referrals_, options_.share_bucket);
  }
  LineageSummary lineage() const { return summarize_lineage(referrals_); }

  /// Startup critical paths for every peer that reached playback, in peer
  /// (string) order. Raw milestones are clamped monotonically between join
  /// and playback start, so missing or out-of-order milestones produce
  /// zero-length stages — never negative ones — and the exact-sum property
  /// holds unconditionally.
  std::vector<CriticalPath> critical_paths() const;

  /// Serializes the ppsim-spans-v1 NDJSON: a header line, then one row per
  /// referral, share bucket, and critical path (docs/OBSERVABILITY.md).
  void write_ndjson(std::ostream& os) const;

 private:
  struct SpanNode {
    std::uint64_t parent = 0;
    sim::Time t;
  };
  /// First-occurrence timestamps of one peer's startup milestones.
  struct Milestones {
    std::string isp;
    sim::Time join;
    sim::Time join_reply;
    sim::Time tracker_reply;
    sim::Time connect_attempt;
    sim::Time connected;
    sim::Time first_chunk;
    sim::Time playback;
    bool has_join = false;
    bool has_join_reply = false;
    bool has_tracker_reply = false;
    bool has_connect_attempt = false;
    bool has_connected = false;
    bool has_first_chunk = false;
    bool has_playback = false;
  };

  std::string resolve_isp(std::string_view ip) const;

  Options options_;
  std::uint64_t events_observed_ = 0;
  std::map<std::uint64_t, SpanNode> spans_;
  std::map<std::string, Milestones> milestones_;  // keyed by peer IP string
  std::vector<ReferralRecord> referrals_;
};

/// Parsed contents of a ppsim-spans-v1 file (ppsim-analyze --spans).
struct SpanFileData {
  std::uint64_t header_spans = 0;
  std::vector<ReferralRecord> referrals;
  std::vector<CriticalPath> paths;
};

/// Reads a spans NDJSON stream. Returns false (with `error` set, if given)
/// on a missing/foreign header or a malformed row. Share-series rows are
/// skipped: the series is recomputed from the referral rows.
bool read_spans_ndjson(std::istream& is, SpanFileData* out,
                       std::string* error = nullptr);

}  // namespace ppsim::obs
