#include "obs/span_tracker.h"

#include <algorithm>
#include <cstdlib>
#include <istream>
#include <ostream>

#include "obs/json.h"

namespace ppsim::obs {

namespace {

const TraceEvent::Value* find_field(const TraceEvent& e,
                                    std::string_view key) {
  for (const auto& f : e.fields()) {
    if (f.key == key) return &f.value;
  }
  return nullptr;
}

std::uint64_t u64_field(const TraceEvent& e, std::string_view key) {
  const auto* v = find_field(e, key);
  if (v == nullptr) return 0;
  if (const auto* u = std::get_if<std::uint64_t>(v)) return *u;
  if (const auto* i = std::get_if<std::int64_t>(v))
    return *i < 0 ? 0 : static_cast<std::uint64_t>(*i);
  return 0;
}

std::string_view str_field(const TraceEvent& e, std::string_view key) {
  const auto* v = find_field(e, key);
  if (v == nullptr) return {};
  if (const auto* s = std::get_if<std::string>(v)) return *s;
  return {};
}

/// Extracts the raw value of `key` from an NDJSON line: unquotes and
/// unescapes strings, returns bare tokens (numbers, booleans) verbatim.
bool find_raw(const std::string& line, std::string_view key,
              std::string* out) {
  std::string needle;
  needle.reserve(key.size() + 3);
  needle.push_back('"');
  needle.append(key);
  needle.append("\":");
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  std::size_t i = pos + needle.size();
  if (i < line.size() && line[i] == '"') {
    ++i;
    std::string v;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\' && i + 1 < line.size()) {
        v.push_back(line[i + 1]);
        i += 2;
      } else {
        v.push_back(line[i++]);
      }
    }
    *out = std::move(v);
    return true;
  }
  std::size_t j = i;
  while (j < line.size() && line[j] != ',' && line[j] != '}') ++j;
  *out = line.substr(i, j - i);
  return true;
}

/// Parses the canonical "<secs>.<micros>" sim-time text back to micros
/// exactly (no double round-trip, so exact-sum survives serialization).
sim::Time parse_sim_time(const std::string& s) {
  const auto dot = s.find('.');
  const long long secs = std::atoll(s.substr(0, dot).c_str());
  long long micros = 0;
  if (dot != std::string::npos) {
    std::string frac = s.substr(dot + 1);
    frac.resize(6, '0');
    micros = std::atoll(frac.c_str());
  }
  return sim::Time::micros(secs * 1'000'000 + micros);
}

}  // namespace

LineageSummary summarize_lineage(
    const std::vector<ReferralRecord>& referrals) {
  LineageSummary s;
  for (const auto& r : referrals) {
    auto& via = s.by_via[r.via.empty() ? "unknown" : r.via];
    ++via.referrals;
    ++s.total.referrals;
    if (r.same_isp) {
      ++via.same_isp;
      ++s.total.same_isp;
    }
  }
  return s;
}

std::vector<ReferralShareBucket> referral_share_series(
    const std::vector<ReferralRecord>& referrals, sim::Time bucket) {
  std::vector<ReferralShareBucket> out;
  const std::int64_t width = bucket.as_micros();
  if (referrals.empty() || width <= 0) return out;
  std::map<std::int64_t, ReferralShareBucket> buckets;
  for (const auto& r : referrals) {
    const std::int64_t idx = r.t.as_micros() / width;
    auto& b = buckets[idx];
    b.t_start = sim::Time::micros(idx * width);
    b.t_end = sim::Time::micros((idx + 1) * width);
    ++b.referrals;
    if (r.same_isp) ++b.same_isp;
  }
  out.reserve(buckets.size());
  for (const auto& [idx, b] : buckets) out.push_back(b);
  return out;
}

SpanTracker::SpanTracker() : SpanTracker(Options()) {}

SpanTracker::SpanTracker(Options options) : options_(std::move(options)) {}

std::string SpanTracker::resolve_isp(std::string_view ip) const {
  if (!options_.isp_of || ip.empty() || ip == "0.0.0.0") return {};
  return options_.isp_of(ip);
}

void SpanTracker::write(const TraceEvent& event) {
  ++events_observed_;

  // Span-tree node: any span-bearing event registers its span. A span can
  // surface in two events (the sender's serve event and the receiver's
  // reply event); the first occurrence wins and both agree on the parent.
  const std::uint64_t span = u64_field(event, "span");
  if (span != 0) {
    spans_.emplace(span, SpanNode{u64_field(event, "parent"), event.time()});
  }

  const std::string_view peer = str_field(event, "peer");
  if (peer.empty()) return;
  const std::string& name = event.name();
  const auto milestone = [&](bool Milestones::*has,
                             sim::Time Milestones::*at) {
    Milestones& m = milestones_[std::string(peer)];
    if (!(m.*has)) {
      m.*has = true;
      m.*at = event.time();
    }
  };

  if (name == "peer_join") {
    Milestones& m = milestones_[std::string(peer)];
    if (!m.has_join) {
      m.has_join = true;
      m.join = event.time();
      m.isp = std::string(str_field(event, "isp"));
    }
  } else if (name == "join_reply") {
    milestone(&Milestones::has_join_reply, &Milestones::join_reply);
  } else if (name == "tracker_reply") {
    milestone(&Milestones::has_tracker_reply, &Milestones::tracker_reply);
  } else if (name == "connect_attempt") {
    milestone(&Milestones::has_connect_attempt,
              &Milestones::connect_attempt);
  } else if (name == "connect_result") {
    if (str_field(event, "outcome") == "accepted") {
      milestone(&Milestones::has_connected, &Milestones::connected);
      ReferralRecord r;
      r.t = event.time();
      r.peer = std::string(peer);
      r.neighbor = std::string(str_field(event, "from"));
      r.via = std::string(str_field(event, "via"));
      if (r.via.empty()) r.via = "unknown";
      r.introducer = std::string(str_field(event, "introducer"));
      auto it = milestones_.find(r.peer);
      r.peer_isp = (it != milestones_.end() && !it->second.isp.empty())
                       ? it->second.isp
                       : resolve_isp(r.peer);
      r.introducer_isp = resolve_isp(r.introducer);
      r.same_isp = !r.peer_isp.empty() && r.peer_isp == r.introducer_isp;
      referrals_.push_back(std::move(r));
    }
  } else if (name == "chunk_delivered") {
    milestone(&Milestones::has_first_chunk, &Milestones::first_chunk);
  } else if (name == "playback_start") {
    milestone(&Milestones::has_playback, &Milestones::playback);
  }
}

std::uint64_t SpanTracker::parent_of(std::uint64_t span) const {
  auto it = spans_.find(span);
  return it == spans_.end() ? 0 : it->second.parent;
}

std::vector<std::uint64_t> SpanTracker::ancestry(std::uint64_t span) const {
  std::vector<std::uint64_t> chain;
  while (span != 0 && chain.size() < 1024) {
    auto it = spans_.find(span);
    if (it == spans_.end()) break;
    chain.push_back(span);
    span = it->second.parent;
  }
  return chain;
}

std::vector<CriticalPath> SpanTracker::critical_paths() const {
  std::vector<CriticalPath> out;
  for (const auto& [peer, m] : milestones_) {
    if (!m.has_join || !m.has_playback) continue;
    CriticalPath cp;
    cp.peer = peer;
    cp.isp = m.isp;
    cp.t_join = m.join;
    cp.startup = m.playback - m.join;
    struct Raw {
      bool has;
      sim::Time t;
    };
    const std::array<Raw, 5> raw = {{
        {m.has_join_reply, m.join_reply},
        {m.has_tracker_reply, m.tracker_reply},
        {m.has_connect_attempt, m.connect_attempt},
        {m.has_connected, m.connected},
        {m.has_first_chunk, m.first_chunk},
    }};
    // Clamp each milestone into [previous, playback]: a missing milestone
    // collapses its stage to zero, an out-of-order one (e.g. a top-up
    // connect fired before the first tracker reply) never yields a
    // negative stage, and the telescoping sum stays exact.
    sim::Time prev = m.join;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      sim::Time cur = raw[i].has ? raw[i].t : prev;
      cur = std::max(prev, std::min(cur, m.playback));
      cp.stages[i] = cur - prev;
      prev = cur;
    }
    cp.stages[5] = m.playback - prev;
    out.push_back(std::move(cp));
  }
  return out;
}

void SpanTracker::write_ndjson(std::ostream& os) const {
  const auto paths = critical_paths();
  const auto shares = referral_share_series();
  os << "{\"spans_schema\":\"ppsim-spans-v1\",\"events\":" << events_observed_
     << ",\"spans\":" << spans_.size()
     << ",\"referrals\":" << referrals_.size()
     << ",\"critical_paths\":" << paths.size() << "}\n";
  for (const auto& r : referrals_) {
    os << "{\"kind\":\"referral\",\"t\":";
    write_json_sim_time(os, r.t);
    os << ",\"peer\":";
    write_json_string(os, r.peer);
    os << ",\"neighbor\":";
    write_json_string(os, r.neighbor);
    os << ",\"via\":";
    write_json_string(os, r.via);
    os << ",\"introducer\":";
    write_json_string(os, r.introducer);
    os << ",\"peer_isp\":";
    write_json_string(os, r.peer_isp);
    os << ",\"introducer_isp\":";
    write_json_string(os, r.introducer_isp);
    os << ",\"same_isp\":" << (r.same_isp ? "true" : "false") << "}\n";
  }
  for (const auto& b : shares) {
    os << "{\"kind\":\"referral_share\",\"t_start\":";
    write_json_sim_time(os, b.t_start);
    os << ",\"t_end\":";
    write_json_sim_time(os, b.t_end);
    os << ",\"referrals\":" << b.referrals << ",\"same_isp\":" << b.same_isp
       << ",\"share\":";
    write_json_double(os, b.share());
    os << "}\n";
  }
  for (const auto& p : paths) {
    os << "{\"kind\":\"critical_path\",\"peer\":";
    write_json_string(os, p.peer);
    os << ",\"isp\":";
    write_json_string(os, p.isp);
    os << ",\"t_join\":";
    write_json_sim_time(os, p.t_join);
    os << ",\"startup_s\":";
    write_json_sim_time(os, p.startup);
    for (std::size_t i = 0; i < p.stages.size(); ++i) {
      os << ",\"" << kStartupStageNames[i] << "_s\":";
      write_json_sim_time(os, p.stages[i]);
    }
    os << "}\n";
  }
}

bool read_spans_ndjson(std::istream& is, SpanFileData* out,
                       std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  std::string line;
  if (!std::getline(is, line) ||
      line.find("\"spans_schema\":\"ppsim-spans-v1\"") == std::string::npos)
    return fail("not a ppsim-spans-v1 file (missing header)");
  std::string raw;
  if (find_raw(line, "spans", &raw))
    out->header_spans = static_cast<std::uint64_t>(std::atoll(raw.c_str()));
  int lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::string kind;
    if (!find_raw(line, "kind", &kind))
      return fail("line " + std::to_string(lineno) + ": missing kind");
    if (kind == "referral") {
      ReferralRecord r;
      if (find_raw(line, "t", &raw)) r.t = parse_sim_time(raw);
      find_raw(line, "peer", &r.peer);
      find_raw(line, "neighbor", &r.neighbor);
      find_raw(line, "via", &r.via);
      find_raw(line, "introducer", &r.introducer);
      find_raw(line, "peer_isp", &r.peer_isp);
      find_raw(line, "introducer_isp", &r.introducer_isp);
      if (find_raw(line, "same_isp", &raw)) r.same_isp = raw == "true";
      out->referrals.push_back(std::move(r));
    } else if (kind == "critical_path") {
      CriticalPath p;
      find_raw(line, "peer", &p.peer);
      find_raw(line, "isp", &p.isp);
      if (find_raw(line, "t_join", &raw)) p.t_join = parse_sim_time(raw);
      if (find_raw(line, "startup_s", &raw)) p.startup = parse_sim_time(raw);
      for (std::size_t i = 0; i < kStartupStageNames.size(); ++i) {
        const std::string key = std::string(kStartupStageNames[i]) + "_s";
        if (find_raw(line, key, &raw)) p.stages[i] = parse_sim_time(raw);
      }
      out->paths.push_back(std::move(p));
    } else if (kind != "referral_share") {
      return fail("line " + std::to_string(lineno) + ": unknown kind " +
                  kind);
    }
  }
  return true;
}

}  // namespace ppsim::obs
