#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.h"
#include "sim/observer.h"

namespace ppsim::obs {

/// Deterministic scheduler telemetry: counts executed events per category
/// and tracks the peak pending-queue depth, with no clock reads at all —
/// unlike RunProfiler this observer is safe anywhere the determinism lint
/// looks, and its exported metrics are byte-stable per seed.
class DispatchStats final : public sim::SimObserver {
 public:
  void on_event_begin(sim::Time now, std::uint64_t seq, const char* category,
                      std::size_t queue_depth) override;
  void on_event_end(sim::Time now, const char* category) override;

  const std::map<std::string, std::uint64_t>& events_by_category() const {
    return events_by_category_;
  }
  std::uint64_t events_dispatched() const { return events_dispatched_; }
  std::size_t peak_queue_depth() const { return peak_queue_depth_; }

  /// Writes sim_events_dispatched{category=...} counters and the
  /// sim_peak_queue_depth gauge into `registry`.
  void export_metrics(MetricsRegistry& registry) const;

 private:
  std::map<std::string, std::uint64_t> events_by_category_;
  std::uint64_t events_dispatched_ = 0;
  std::size_t peak_queue_depth_ = 0;
};

}  // namespace ppsim::obs
