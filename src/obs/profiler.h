#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/observer.h"

namespace ppsim::obs {

/// Wall-clock run profiler: per-event-category execution time and events
/// per second, gathered through the simulator's observer hook.
///
/// This is the one component of the observability layer that reads the
/// host's clock — which is why it lives here in src/obs, outside the event
/// core the determinism linter guards. It only *measures* the run; nothing
/// it records feeds back into the simulation, so determinism is preserved.
/// Its numbers are machine- and load-dependent: never diff them across
/// runs, never assert on them in tests beyond "non-negative".
class RunProfiler final : public sim::SimObserver {
 public:
  /// Bucket bounds (seconds) of the per-category dispatch-time histograms:
  /// decades from 100ns to 100ms, covering a trivial callback through a
  /// pathological one.
  static std::vector<double> dispatch_time_bounds();

  struct CategoryStats {
    std::uint64_t events = 0;
    double wall_seconds = 0;
    /// Per-event dispatch wall time; quantiles via Histogram::quantile.
    Histogram dispatch_time{dispatch_time_bounds()};
  };

  void on_event_begin(sim::Time now, std::uint64_t seq, const char* category,
                      std::size_t queue_depth) override;
  void on_event_end(sim::Time now, const char* category) override;

  /// Pre-registers a category so it shows up in print()/write_ndjson() even
  /// if no event of that kind ever executes. Zero-sample rows report "-"
  /// (text) / null (NDJSON) quantiles rather than garbage.
  void preregister_category(std::string_view category) {
    stats_.try_emplace(std::string(category));
  }

  const std::map<std::string, CategoryStats, std::less<>>& categories()
      const {
    return stats_;
  }
  std::uint64_t events_total() const { return events_total_; }
  double wall_seconds_total() const { return wall_seconds_total_; }
  double events_per_second() const {
    return wall_seconds_total_ <= 0
               ? 0.0
               : static_cast<double>(events_total_) / wall_seconds_total_;
  }
  std::size_t max_queue_depth() const { return max_queue_depth_; }

  /// One {"category":...,"events":...,"wall_s":...} object per line, plus a
  /// final "total" row. Wall-clock values: inherently non-deterministic.
  void write_ndjson(std::ostream& os) const;

  /// Human-readable summary table, categories by descending wall time.
  void print(std::ostream& os) const;

 private:
  using Clock = std::chrono::steady_clock;

  std::map<std::string, CategoryStats, std::less<>> stats_;
  Clock::time_point event_begin_{};
  std::uint64_t events_total_ = 0;
  double wall_seconds_total_ = 0;
  std::size_t max_queue_depth_ = 0;
};

}  // namespace ppsim::obs
