#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/isp.h"
#include "sim/time.h"

namespace ppsim::obs {

/// Per-ISP-pair byte matrix; [i][j] = bytes flowing from category i to
/// category j (same layout as core::TrafficMatrix::bytes).
using IspMatrix =
    std::array<std::array<std::uint64_t, net::kNumIspCategories>,
               net::kNumIspCategories>;

/// One periodic snapshot of the swarm, the unit of the Figure-6-style
/// time-series: how much of the traffic stayed inside an ISP during this
/// interval and cumulatively, how local the neighborhoods look, and how
/// well playback is doing.
struct TrafficSample {
  sim::Time t;
  IspMatrix bytes{};  // cumulative delivered payload bytes as of t

  std::uint64_t interval_bytes = 0;          // delivered since last sample
  std::uint64_t interval_same_isp_bytes = 0;

  double same_isp_share_cum = 0;       // intra-ISP share of all bytes so far
  double same_isp_share_interval = 0;  // intra-ISP share of this interval
  double neighbor_same_isp_share = 0;  // same-ISP share of neighbor links
  double avg_continuity = 0;           // mean playback continuity, viewers
  std::uint64_t alive_peers = 0;
};

std::uint64_t matrix_total(const IspMatrix& m);
std::uint64_t matrix_intra_isp(const IspMatrix& m);

/// Turns successive cumulative matrices into interval samples. The caller
/// (the experiment runner's schedule_periodic tick) supplies the swarm
/// snapshot; the sampler handles the deltas and share arithmetic.
///
/// Two storage modes. By default every sample is kept in memory for the
/// whole run (`samples()`), which is what the figure benches want but is
/// O(run length). `enable_windowing()` switches to a streaming rollup:
/// samples accumulate only until sim time crosses the next window boundary,
/// at which point the window's rows are flushed to the configured stream
/// (same row format as write_samples_ndjson, so the flushed file is
/// byte-identical to an end-of-run dump) and only a bounded tail is
/// retained in memory — O(window + retain), independent of run length.
class TrafficSampler {
 public:
  struct WindowOptions {
    sim::Time window = sim::Time::zero();  // flush cadence in sim time (> 0)
    std::ostream* out = nullptr;           // flush destination (borrowed)
    std::size_t retain = 16;               // flushed samples kept in memory
  };

  /// Must be called before the first record(). Windows end at multiples of
  /// `window`: a sample at t belongs to the window [k*w, (k+1)*w) and is
  /// flushed when a later sample lands at or past (k+1)*w, or by flush().
  void enable_windowing(const WindowOptions& options);
  bool windowed() const { return window_ > sim::Time::zero(); }

  const TrafficSample& record(sim::Time now, const IspMatrix& cumulative,
                              double neighbor_same_isp_share,
                              double avg_continuity,
                              std::uint64_t alive_peers);

  /// Windowed mode only: write out any samples still pending in the open
  /// window. Call once at end of run so the stream matches the unwindowed
  /// dump exactly.
  void flush();

  /// All samples so far. In windowed mode this is only the samples of the
  /// still-open window (flushed rows have left memory — see tail_samples()).
  const std::vector<TrafficSample>& samples() const { return samples_; }

  /// The bounded in-memory tail: the last `retain` flushed samples plus the
  /// open window. This is what windowed runs hand to ExperimentResult in
  /// place of the full series.
  std::vector<TrafficSample> tail_samples() const;

  std::size_t samples_flushed() const { return flushed_; }

 private:
  IspMatrix prev_{};
  std::vector<TrafficSample> samples_;  // unwindowed: all; windowed: pending
  sim::Time window_ = sim::Time::zero();
  sim::Time window_end_ = sim::Time::zero();
  std::ostream* out_ = nullptr;
  std::size_t retain_ = 0;
  std::deque<TrafficSample> retained_;  // flushed tail, bounded by retain_
  std::size_t flushed_ = 0;
};

/// One JSON object per sample per line, keys in a fixed order — byte-stable
/// for a given sample sequence (see docs/OBSERVABILITY.md).
void write_sample_ndjson(std::ostream& os, const TrafficSample& sample);
void write_samples_ndjson(std::ostream& os,
                          const std::vector<TrafficSample>& samples);

/// Parses rows written by write_samples_ndjson. Malformed lines are
/// skipped and counted in *dropped (when non-null). A duplicate timestamp —
/// two rows carrying the same t, and therefore the same (time, src_isp,
/// dst_isp) matrix cells — means the file was assembled wrong (e.g. a
/// windowed flush concatenated twice); the whole file is rejected: the
/// reader returns an empty vector and describes the offending row in
/// *error (when non-null).
std::vector<TrafficSample> read_samples_ndjson(std::istream& is,
                                               std::size_t* dropped = nullptr,
                                               std::string* error = nullptr);

}  // namespace ppsim::obs
