#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "net/isp.h"
#include "sim/time.h"

namespace ppsim::obs {

/// Per-ISP-pair byte matrix; [i][j] = bytes flowing from category i to
/// category j (same layout as core::TrafficMatrix::bytes).
using IspMatrix =
    std::array<std::array<std::uint64_t, net::kNumIspCategories>,
               net::kNumIspCategories>;

/// One periodic snapshot of the swarm, the unit of the Figure-6-style
/// time-series: how much of the traffic stayed inside an ISP during this
/// interval and cumulatively, how local the neighborhoods look, and how
/// well playback is doing.
struct TrafficSample {
  sim::Time t;
  IspMatrix bytes{};  // cumulative delivered payload bytes as of t

  std::uint64_t interval_bytes = 0;          // delivered since last sample
  std::uint64_t interval_same_isp_bytes = 0;

  double same_isp_share_cum = 0;       // intra-ISP share of all bytes so far
  double same_isp_share_interval = 0;  // intra-ISP share of this interval
  double neighbor_same_isp_share = 0;  // same-ISP share of neighbor links
  double avg_continuity = 0;           // mean playback continuity, viewers
  std::uint64_t alive_peers = 0;
};

std::uint64_t matrix_total(const IspMatrix& m);
std::uint64_t matrix_intra_isp(const IspMatrix& m);

/// Turns successive cumulative matrices into interval samples. The caller
/// (the experiment runner's schedule_periodic tick) supplies the swarm
/// snapshot; the sampler handles the deltas and share arithmetic.
class TrafficSampler {
 public:
  const TrafficSample& record(sim::Time now, const IspMatrix& cumulative,
                              double neighbor_same_isp_share,
                              double avg_continuity,
                              std::uint64_t alive_peers);

  const std::vector<TrafficSample>& samples() const { return samples_; }

 private:
  IspMatrix prev_{};
  std::vector<TrafficSample> samples_;
};

/// One JSON object per sample per line, keys in a fixed order — byte-stable
/// for a given sample sequence (see docs/OBSERVABILITY.md).
void write_samples_ndjson(std::ostream& os,
                          const std::vector<TrafficSample>& samples);

/// Parses rows written by write_samples_ndjson. Malformed lines are
/// skipped and counted in *dropped (when non-null).
std::vector<TrafficSample> read_samples_ndjson(std::istream& is,
                                               std::size_t* dropped = nullptr);

}  // namespace ppsim::obs
