#include "obs/progress.h"

#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "obs/profiler.h"

namespace ppsim::obs {

namespace {

/// 1234 -> "1.2k", 1234567 -> "1.2M"; plain digits below 1000.
std::string human_rate(double per_second) {
  char buf[32];
  if (per_second >= 1e6)
    std::snprintf(buf, sizeof(buf), "%.1fM", per_second / 1e6);
  else if (per_second >= 1e3)
    std::snprintf(buf, sizeof(buf), "%.1fk", per_second / 1e3);
  else
    std::snprintf(buf, sizeof(buf), "%.0f", per_second);
  return buf;
}

std::string human_bytes(std::uint64_t bytes) {
  char buf[32];
  const double b = static_cast<double>(bytes);
  if (b >= 1024.0 * 1024.0 * 1024.0)
    std::snprintf(buf, sizeof(buf), "%.1fGB", b / (1024.0 * 1024.0 * 1024.0));
  else
    std::snprintf(buf, sizeof(buf), "%.1fMB", b / (1024.0 * 1024.0));
  return buf;
}

}  // namespace

std::string ProgressMeter::format_line(const State& state) const {
  char buf[96];
  std::string line = "[progress] t=";
  std::snprintf(buf, sizeof(buf), "%.1fs", state.now.as_seconds());
  line += buf;
  if (options_.total > sim::Time::zero()) {
    std::snprintf(buf, sizeof(buf), "/%.0fs (%.1f%%)",
                  options_.total.as_seconds(),
                  100.0 * state.now.as_seconds() /
                      options_.total.as_seconds());
    line += buf;
  }

  const RunProfiler* prof = options_.profiler;
  const double wall = prof == nullptr ? 0.0 : prof->wall_seconds_total();
  if (prof != nullptr) {
    std::snprintf(buf, sizeof(buf), " wall=%.1fs", wall);
    line += buf;
  } else {
    line += " wall=-";
  }

  std::snprintf(buf, sizeof(buf), " events=%" PRIu64, state.events_executed);
  line += buf;
  if (prof != nullptr && wall > 0) {
    line += " (" +
            human_rate(static_cast<double>(state.events_executed) / wall) +
            "/s)";
  } else {
    line += " (-/s)";
  }

  std::snprintf(buf, sizeof(buf), " peers=%" PRIu64 " queue=%zu",
                state.peers_alive, state.queue_depth);
  line += buf;
  line += " rss=" + (state.rss_bytes > 0 ? human_bytes(state.rss_bytes)
                                         : std::string("-"));

  // ETA: wall seconds per sim second so far, extrapolated over what's left.
  if (prof != nullptr && wall > 0 && options_.total > state.now &&
      state.now > sim::Time::zero()) {
    const double per_sim = wall / state.now.as_seconds();
    std::snprintf(buf, sizeof(buf), " eta=%.1fs",
                  per_sim * (options_.total - state.now).as_seconds());
    line += buf;
  } else {
    line += " eta=-";
  }
  return line;
}

void ProgressMeter::tick(const State& state) {
  if (options_.out == nullptr) return;
  *options_.out << format_line(state) << '\n';
  options_.out->flush();
  ++lines_;
}

}  // namespace ppsim::obs
