#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "sim/observer.h"
#include "sim/time.h"

namespace ppsim::obs {

/// One traced protocol/simulator event: a sim-timestamp, an event name, and
/// an ordered list of typed fields. Field order is the emission order, so a
/// given emitter always serializes identically — trace files from same-seed
/// runs are byte-identical (no wall-clock, no addresses, no hash order).
class TraceEvent {
 public:
  using Value = std::variant<std::uint64_t, std::int64_t, double, bool,
                             std::string>;
  struct Field {
    std::string key;
    Value value;
  };

  TraceEvent(sim::Time t, std::string_view name) : t_(t), name_(name) {}

  TraceEvent& field(std::string_view key, std::uint64_t value) {
    return push(key, Value(std::in_place_type<std::uint64_t>, value));
  }
  TraceEvent& field(std::string_view key, std::int64_t value) {
    return push(key, Value(std::in_place_type<std::int64_t>, value));
  }
  TraceEvent& field(std::string_view key, int value) {
    return field(key, static_cast<std::int64_t>(value));
  }
  TraceEvent& field(std::string_view key, unsigned value) {
    return field(key, static_cast<std::uint64_t>(value));
  }
  TraceEvent& field(std::string_view key, double value) {
    return push(key, Value(std::in_place_type<double>, value));
  }
  TraceEvent& field(std::string_view key, bool value) {
    return push(key, Value(std::in_place_type<bool>, value));
  }
  TraceEvent& field(std::string_view key, std::string_view value) {
    return push(key, Value(std::in_place_type<std::string>, value));
  }
  TraceEvent& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }

  sim::Time time() const { return t_; }
  const std::string& name() const { return name_; }
  const std::vector<Field>& fields() const { return fields_; }

 private:
  TraceEvent& push(std::string_view key, Value value) {
    fields_.push_back(Field{std::string(key), std::move(value)});
    return *this;
  }

  sim::Time t_;
  std::string name_;
  std::vector<Field> fields_;
};

/// Receiver of trace events. Emitters hold a TraceSink* that is nullptr by
/// default, so a disabled trace costs one branch per would-be event.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void write(const TraceEvent& event) = 0;
};

/// Serializes events as NDJSON: one {"t":<sim-seconds>,"ev":<name>,...}
/// object per line, fields in emission order (see docs/OBSERVABILITY.md).
class NdjsonTraceSink final : public TraceSink {
 public:
  explicit NdjsonTraceSink(std::ostream& os) : os_(os) {}
  void write(const TraceEvent& event) override;
  std::uint64_t events_written() const { return events_written_; }

 private:
  std::ostream& os_;
  std::uint64_t events_written_ = 0;
};

/// Fans one event stream out to several sinks in a fixed order. Sinks are
/// borrowed, not owned; null entries are skipped. This is how the flight
/// recorder / NDJSON sink and the span tracker share one emission stream —
/// every sink observes the exact same event sequence, a property the sink-
/// composition tests pin byte-for-byte.
class TeeTraceSink final : public TraceSink {
 public:
  TeeTraceSink(std::initializer_list<TraceSink*> sinks) : sinks_(sinks) {}
  void write(const TraceEvent& event) override {
    for (TraceSink* sink : sinks_) {
      if (sink != nullptr) sink->write(event);
    }
  }

 private:
  std::vector<TraceSink*> sinks_;
};

/// Counts events per name (std::map, deterministic order); used by tests
/// and as a cheap volume summary.
class CountingTraceSink final : public TraceSink {
 public:
  void write(const TraceEvent& event) override;
  std::uint64_t total() const { return total_; }
  std::uint64_t count(std::string_view name) const;

 private:
  std::vector<std::pair<std::string, std::uint64_t>> counts_;  // sorted
  std::uint64_t total_ = 0;
};

/// Adapter from the simulator's observer hook to a TraceSink: emits one
/// "sim_event" row per executed event (sequence number, category, queue
/// depth). High volume — opt-in separately from protocol tracing.
class SimEventTracer final : public sim::SimObserver {
 public:
  explicit SimEventTracer(TraceSink& sink) : sink_(sink) {}
  void on_event_begin(sim::Time now, std::uint64_t seq, const char* category,
                      std::size_t queue_depth) override;

 private:
  TraceSink& sink_;
};

}  // namespace ppsim::obs
