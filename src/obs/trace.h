#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "sim/observer.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace ppsim::obs {

/// TraceEvent and the abstract TraceSink moved down to sim/trace.h so the
/// protocol layer can emit events without an upward proto -> obs include
/// (the lint layering pass enforces the module DAG). Re-exported here under
/// their historical names; observability code keeps saying obs::TraceEvent.
using TraceEvent = sim::TraceEvent;
using TraceSink = sim::TraceSink;

/// Serializes events as NDJSON: one {"t":<sim-seconds>,"ev":<name>,...}
/// object per line, fields in emission order (see docs/OBSERVABILITY.md).
class NdjsonTraceSink final : public TraceSink {
 public:
  explicit NdjsonTraceSink(std::ostream& os) : os_(os) {}
  void write(const TraceEvent& event) override;
  std::uint64_t events_written() const { return events_written_; }

 private:
  std::ostream& os_;
  std::uint64_t events_written_ = 0;
};

/// Fans one event stream out to several sinks in a fixed order. Sinks are
/// borrowed, not owned; null entries are skipped. This is how the flight
/// recorder / NDJSON sink and the span tracker share one emission stream —
/// every sink observes the exact same event sequence, a property the sink-
/// composition tests pin byte-for-byte.
class TeeTraceSink final : public TraceSink {
 public:
  TeeTraceSink(std::initializer_list<TraceSink*> sinks) : sinks_(sinks) {}
  void write(const TraceEvent& event) override {
    for (TraceSink* sink : sinks_) {
      if (sink != nullptr) sink->write(event);
    }
  }

 private:
  std::vector<TraceSink*> sinks_;
};

/// Counts events per name (std::map, deterministic order); used by tests
/// and as a cheap volume summary.
class CountingTraceSink final : public TraceSink {
 public:
  void write(const TraceEvent& event) override;
  std::uint64_t total() const { return total_; }
  std::uint64_t count(std::string_view name) const;

 private:
  std::vector<std::pair<std::string, std::uint64_t>> counts_;  // sorted
  std::uint64_t total_ = 0;
};

/// Adapter from the simulator's observer hook to a TraceSink: emits one
/// "sim_event" row per executed event (sequence number, category, queue
/// depth). High volume — opt-in separately from protocol tracing.
class SimEventTracer final : public sim::SimObserver {
 public:
  explicit SimEventTracer(TraceSink& sink) : sink_(sink) {}
  void on_event_begin(sim::Time now, std::uint64_t seq, const char* category,
                      std::size_t queue_depth) override;

 private:
  TraceSink& sink_;
};

}  // namespace ppsim::obs
