#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ppsim::obs {

/// Metric labels: key/value pairs that distinguish instances of the same
/// metric name (e.g. bytes_uploaded{src_isp="TELE",dst_isp="CNC"}). Sorted
/// by key at registration so the instance identity — and every dump — is
/// independent of the order the caller listed them in.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bucket histogram. Bucket bounds are upper edges (inclusive),
/// strictly increasing; one implicit overflow bucket catches everything
/// above the last bound. Counts are per-bucket, not cumulative.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// size() == upper_bounds().size() + 1; last entry is the overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }

  /// Upper bound of the bucket holding the q-quantile observation (q
  /// clamped to [0,1]; rank = max(1, ceil(q * count)) so q=0 is the first
  /// observation and q=1 the last). A histogram only knows buckets, so this
  /// is the tightest upper bound, not an interpolated value: an observation
  /// landing exactly on a bucket bound reports that bound. Returns NaN when
  /// empty and +infinity when the rank falls in the overflow bucket.
  double quantile(double q) const;

  /// Fold another histogram into this one. Both must have identical bucket
  /// bounds (asserted). Bucket counts and the observation count add as
  /// integers; the sums add as `this += other`, so merging a sequence of
  /// windows is a left fold in caller order — callers that need the merged
  /// sum byte-stable must merge windows in their time order, which is the
  /// only order the windowed rollup ever produces them in.
  void merge(const Histogram& other);

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
};

/// Registry of named, labelled metric instances.
///
/// counter()/gauge()/histogram() register on first use and return the same
/// instance on every later call with the same (name, labels); references
/// stay valid for the registry's lifetime, so hot paths resolve once and
/// then touch a plain integer. Registering the same identity under two
/// different types is a programming error (asserted).
///
/// The registry is storage only: it never samples anything by itself, and
/// an unused registry costs nothing — exactly what "sinks default off"
/// requires of the experiment wiring.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds,
                       const Labels& labels = {});

  const Counter* find_counter(std::string_view name,
                              const Labels& labels = {}) const;
  const Gauge* find_gauge(std::string_view name,
                          const Labels& labels = {}) const;
  const Histogram* find_histogram(std::string_view name,
                                  const Labels& labels = {}) const;

  std::size_t size() const { return entries_.size(); }

  /// Read-only view of one registered instance. Exactly one of the three
  /// pointers is non-null. `key` is the serialized identity
  /// name{k="v",...} the registry sorts by — stable across processes, so
  /// it doubles as the change-tracking key of the telemetry delta encoder.
  struct EntryView {
    const std::string& key;
    const std::string& name;
    const Labels& labels;  // sorted by key
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };

  /// Visits every instance in lexicographic identity order — the exact
  /// order write_ndjson emits rows in.
  void for_each(const std::function<void(const EntryView&)>& fn) const;

  /// One JSON object per line, instances in lexicographic identity order,
  /// keys in a fixed order — byte-stable for a given registry state. See
  /// docs/OBSERVABILITY.md for the schema.
  void write_ndjson(std::ostream& os) const;

  /// Fold another registry into this one, instance by instance, in the
  /// other registry's (deterministic) identity order. Counters add, gauges
  /// take the other's value (the other registry is the newer window, so
  /// last-write-wins carries over), histograms merge bucket-wise (bounds
  /// must match; instances missing here are created with the other's
  /// bounds). Re-registering an identity as a different type asserts, same
  /// as the accessors.
  void merge_from(const MetricsRegistry& other);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Labels labels;  // sorted by key
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry(std::string_view name, const Labels& labels, Kind kind);
  const Entry* find(std::string_view name, const Labels& labels,
                    Kind kind) const;

  // Keyed by the serialized identity name{k="v",...}; std::map so dumps
  // come out in a deterministic order.
  std::map<std::string, Entry> entries_;
};

/// Fixed-size ring of per-window metric registries, the bounded-memory
/// rollup counterpart to the sampler's windowed mode. Callers record into
/// current(); rotate(label) seals the open window under a label (its window
/// end, say) and evicts the oldest once `capacity` windows are held, so
/// memory is O(capacity × instances) no matter how long the run is.
/// merged() folds the held windows oldest→newest with merge_from — the
/// pinned left-fold order, so the merged sums are deterministic.
class MetricsWindowRing {
 public:
  explicit MetricsWindowRing(std::size_t capacity);

  MetricsRegistry& current() { return *current_; }
  const MetricsRegistry& current() const { return *current_; }

  void rotate(std::string label);

  std::size_t capacity() const { return capacity_; }
  /// Sealed windows currently held, oldest first (≤ capacity).
  std::size_t size() const { return windows_.size(); }
  std::uint64_t windows_sealed() const { return sealed_; }
  const std::string& label(std::size_t i) const { return windows_[i].label; }
  const MetricsRegistry& window(std::size_t i) const {
    return *windows_[i].registry;
  }

  /// Sealed windows + the open window, folded oldest→newest.
  void merged(MetricsRegistry* out) const;

 private:
  struct Window {
    std::string label;
    std::unique_ptr<MetricsRegistry> registry;
  };
  std::size_t capacity_;
  std::vector<Window> windows_;  // oldest first
  std::unique_ptr<MetricsRegistry> current_;
  std::uint64_t sealed_ = 0;
};

/// Writes the one-line NDJSON row for a single instance — byte-identical
/// to the row write_ndjson emits for it (trailing newline included). The
/// telemetry delta encoder ships these rows verbatim, which is what makes
/// a collector-side fold byte-comparable to the node's own sink file.
void write_entry_ndjson(std::ostream& os,
                        const MetricsRegistry::EntryView& e);

}  // namespace ppsim::obs
