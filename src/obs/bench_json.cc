#include "obs/bench_json.h"

#include <algorithm>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <string>

#include "obs/json.h"

namespace ppsim::obs {

void write_bench_json(std::ostream& os, std::vector<BenchEntry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const BenchEntry& a, const BenchEntry& b) {
              return a.name < b.name;
            });
  os << "{\"bench_schema\":\"ppsim-bench-v1\",\"benchmarks\":"
     << entries.size() << "}\n";
  for (const BenchEntry& e : entries) {
    os << "{\"name\":";
    write_json_string(os, e.name);
    os << ",\"iterations\":" << e.iterations << ",\"ns_per_op\":";
    write_json_double(os, e.ns_per_op);
    os << ",\"peak_queue_depth\":" << e.peak_queue_depth;
    if (e.rss_peak_bytes > 0) os << ",\"rss_peak_bytes\":" << e.rss_peak_bytes;
    if (e.wall_s > 0) {
      os << ",\"wall_s\":";
      write_json_double(os, e.wall_s);
    }
    os << "}\n";
  }
}

namespace {

bool find_number(const std::string& line, const char* key, double* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const char* start = line.c_str() + pos + needle.size();
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return false;
  *out = v;
  return true;
}

bool find_string(const std::string& line, const char* key, std::string* out) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const std::size_t start = pos + needle.size();
  const std::size_t close = line.find('"', start);
  if (close == std::string::npos) return false;
  *out = line.substr(start, close - start);
  return true;
}

}  // namespace

std::vector<BenchEntry> read_bench_json(std::istream& is,
                                        std::size_t* dropped) {
  std::vector<BenchEntry> out;
  if (dropped != nullptr) *dropped = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line.find("\"bench_schema\"") != std::string::npos) continue;
    BenchEntry e;
    double iters = 0, ns = 0, depth = 0;
    const bool ok = find_string(line, "name", &e.name) &&
                    find_number(line, "iterations", &iters) &&
                    find_number(line, "ns_per_op", &ns) &&
                    find_number(line, "peak_queue_depth", &depth);
    if (!ok) {
      if (dropped != nullptr) ++*dropped;
      continue;
    }
    e.iterations = static_cast<std::uint64_t>(iters);
    e.ns_per_op = ns;
    e.peak_queue_depth = static_cast<std::uint64_t>(depth);
    double rss = 0, wall = 0;  // optional macro-bench fields
    if (find_number(line, "rss_peak_bytes", &rss))
      e.rss_peak_bytes = static_cast<std::uint64_t>(rss);
    if (find_number(line, "wall_s", &wall)) e.wall_s = wall;
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace ppsim::obs
