#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string_view>

#include "obs/metrics.h"
#include "sim/time.h"

namespace ppsim::obs {

/// Host-resource and scheduler telemetry for large runs: RSS / peak RSS of
/// the process, scheduler queue depth and event horizon, per-module
/// live-object/byte counters, and events-per-wall-second throughput.
///
/// The probe never reads a clock. Wall-clock inputs come from the caller —
/// in practice `RunProfiler::wall_seconds_total()`, the one sanctioned
/// steady_clock island — so the determinism linter's wall-clock wall around
/// src/obs stays intact. RSS comes from /proc/self/status (VmRSS / VmHWM),
/// which is a file read, not a clock; on non-Linux hosts both report 0.
///
/// Like the profiler, the probe is purely passive: nothing it records feeds
/// back into the simulation. The scheduler/live-peer gauges are
/// deterministic per seed; the RSS and wall-throughput gauges are
/// machine-dependent (never diff them across runs).
class ResourceProbe {
 public:
  /// Everything a sample needs, gathered by the runner on its sampling
  /// tick. Wall seconds may be 0 when no profiler is attached; the
  /// throughput gauge then stays 0 rather than inventing a clock.
  struct Inputs {
    sim::Time now;
    std::size_t queue_depth = 0;
    sim::Time event_horizon = sim::Time::zero();
    std::uint64_t events_executed = 0;
    std::uint64_t queue_bytes = 0;
    std::uint64_t live_peers = 0;
    std::uint64_t live_peer_bytes = 0;
    double wall_seconds = 0;
  };

  struct Sample {
    sim::Time t;
    std::uint64_t rss_bytes = 0;
    std::uint64_t peak_rss_bytes = 0;
    std::size_t queue_depth = 0;
    double event_horizon_s = 0;
    std::uint64_t events_executed = 0;
    std::uint64_t queue_bytes = 0;
    std::uint64_t live_peers = 0;
    std::uint64_t live_peer_bytes = 0;
    double events_per_wall_s = 0;  // over the interval since the last sample
  };

  /// Samples kept in the in-memory ring (oldest evicted) — bounded, like
  /// everything else in the scale observatory.
  explicit ResourceProbe(std::size_t retain = 64) : retain_(retain) {}

  /// Mirror every sample into gauges on this registry (borrowed; may be
  /// null). Gauge names are `kResourceGaugeNames`, inventoried in
  /// docs/OBSERVABILITY.md and cross-checked by the ppsim-audit
  /// completeness pass.
  void bind_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  const Sample& sample(const Inputs& in);

  const std::deque<Sample>& samples() const { return samples_; }
  std::uint64_t samples_taken() const { return samples_taken_; }
  std::uint64_t peak_rss_bytes_seen() const { return peak_rss_seen_; }

  /// Current / peak resident set of this process in bytes (0 when the
  /// platform offers no /proc/self/status).
  static std::uint64_t current_rss_bytes();
  static std::uint64_t peak_rss_bytes();

 private:
  std::size_t retain_;
  MetricsRegistry* metrics_ = nullptr;
  std::deque<Sample> samples_;
  std::uint64_t samples_taken_ = 0;
  std::uint64_t peak_rss_seen_ = 0;
  std::uint64_t prev_events_ = 0;
  double prev_wall_seconds_ = 0;
};

/// The probe's gauge inventory, in the order the docs table lists them.
/// ppsim-audit's completeness pass cross-checks this array against the
/// "Scale observatory" table in docs/OBSERVABILITY.md.
inline constexpr std::array<std::string_view, 8> kResourceGaugeNames = {
    "resource_rss_bytes",        "resource_peak_rss_bytes",
    "sched_queue_depth",         "sched_event_horizon_s",
    "sched_queue_bytes",         "sched_events_per_wall_s",
    "live_peers",                "live_peer_bytes",
};

}  // namespace ppsim::obs
