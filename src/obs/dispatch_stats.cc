#include "obs/dispatch_stats.h"

#include <algorithm>

namespace ppsim::obs {

void DispatchStats::on_event_begin(sim::Time /*now*/, std::uint64_t /*seq*/,
                                   const char* /*category*/,
                                   std::size_t queue_depth) {
  peak_queue_depth_ = std::max(peak_queue_depth_, queue_depth);
}

void DispatchStats::on_event_end(sim::Time /*now*/, const char* category) {
  ++events_dispatched_;
  ++events_by_category_[category == nullptr || *category == '\0'
                            ? "(untagged)"
                            : category];
}

void DispatchStats::export_metrics(MetricsRegistry& registry) const {
  for (const auto& [category, events] : events_by_category_)
    registry.counter("sim_events_dispatched", {{"category", category}})
        .inc(events);
  registry.gauge("sim_peak_queue_depth")
      .set(static_cast<double>(peak_queue_depth_));
}

}  // namespace ppsim::obs
