#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/time.h"

namespace ppsim::obs {

/// The health signals a watchdog rule can bind to. Each maps onto one
/// quantity the experiment runner already measures on the sampler tick:
/// floors watch a value that must stay high (playback continuity),
/// ceilings watch a value that must stay low (isolated peers, stalled
/// startups, scheduler backlog); the drift rule compares the intra-ISP
/// traffic share against its own trailing window.
enum class HealthRuleKind : std::uint8_t {
  kContinuityFloor = 0,    // floor on mean playback continuity
  kPeerIsolation = 1,      // ceiling on alive peers with zero neighbors
  kIspShareDrift = 2,      // ceiling on the drop of the intra-ISP interval
                           // share vs its trailing-window mean
  kStartupDelaySlo = 3,    // ceiling on peers past the startup budget
  kQueueDepthCeiling = 4,  // ceiling on the scheduler's pending events
};

std::string_view to_string(HealthRuleKind k);
/// Accepts the rule-file spelling ("continuity_floor", "peer_isolation", ...).
bool parse_health_rule_kind(std::string_view s, HealthRuleKind* out);

/// Whether breaching means dropping below (floor) or rising above (ceiling).
bool is_floor(HealthRuleKind k);

/// One declarative watchdog rule. `warn` and `critical` are thresholds on
/// the rule's signal: for floors critical <= warn (deeper dip is worse),
/// for ceilings critical >= warn. Kind-specific knobs keep their defaults
/// when unused.
struct HealthRule {
  HealthRuleKind kind = HealthRuleKind::kContinuityFloor;
  double warn = 0;
  double critical = 0;
  /// Evaluation starts only after this much sim time, so ramp-up noise
  /// (empty buffers, unstarted playback) cannot trip a fresh run.
  sim::Time after;
  /// kIspShareDrift: trailing-window length in samples; the rule stays
  /// silent until the window has filled.
  int trailing = 6;
  /// kStartupDelaySlo: per-peer startup budget in seconds.
  double slo_s = 30.0;
  /// Free-form tag carried into traces, metrics labels, and the timeline.
  std::string label;

  /// The label when set, the kind spelling otherwise.
  std::string display_name() const;
};

struct HealthRuleSet {
  std::vector<HealthRule> rules;
  bool empty() const { return rules.empty(); }
};

/// Rule text format (docs/OBSERVABILITY.md): one rule per line, '#'
/// comments, thresholds in the rule's own unit —
///
///   rule kind=continuity_floor    warn=0.90 critical=0.75 after=45 label=continuity
///   rule kind=peer_isolation      warn=3 critical=8
///   rule kind=isp_share_drift     warn=0.35 critical=0.6 trailing=4
///   rule kind=startup_delay_slo   warn=3 critical=10 slo_s=30
///   rule kind=queue_depth_ceiling warn=20000 critical=50000
struct HealthRulesParseResult {
  HealthRuleSet rules;
  std::string error;  // empty on success
  bool ok() const { return error.empty(); }
};

HealthRulesParseResult parse_health_rules(std::istream& in);
HealthRulesParseResult load_health_rules(const std::string& path);

/// Structural validation (threshold orderings, ranges). Empty string when
/// valid; parse_health_rules already runs this.
std::string validate(const HealthRuleSet& rules);

/// Serializes in the parseable text format (round-trips through
/// parse_health_rules).
void write_health_rules(std::ostream& os, const HealthRuleSet& rules);

/// The canned rule set the CI smoke runs against the tracker-blackout
/// fault plan: one rule of every kind, thresholds tuned so the canned
/// plan trips the continuity watchdog and a healthy run trips nothing.
HealthRuleSet default_health_rules();

/// Per-rule severity, ordered: comparisons with < are meaningful.
enum class HealthState : std::uint8_t { kOk = 0, kWarn = 1, kCritical = 2 };
std::string_view to_string(HealthState s);

/// One evaluation's worth of signals, supplied by the sampler tick.
struct HealthInput {
  sim::Time t;
  double avg_continuity = 0;
  double same_isp_share_interval = 0;
  std::uint64_t interval_bytes = 0;  // drift is skipped on idle intervals
  std::uint64_t alive_peers = 0;
  std::uint64_t isolated_peers = 0;  // alive with zero neighbors
  /// Seconds each alive-but-not-yet-playing viewer has waited since join.
  std::vector<double> startup_waits_s;
  std::uint64_t queue_depth = 0;  // scheduler pending events
};

/// Where one rule's state machine ended up, plus its trip history.
struct HealthRuleStatus {
  HealthState state = HealthState::kOk;   // state after the last evaluation
  HealthState worst = HealthState::kOk;   // worst state ever reached
  std::uint64_t trips = 0;                // ok -> warn|critical transitions
  std::uint64_t criticals = 0;            // entries into critical
  std::uint64_t clears = 0;               // warn|critical -> ok transitions
  sim::Time first_trip;                   // meaningful when trips > 0
  double last_value = 0;                  // signal at the last evaluation
  double worst_value = 0;                 // most extreme signal while tripped
  std::uint64_t evaluations = 0;
};

/// End-of-run digest attached to core::ExperimentResult.
struct HealthSummary {
  HealthState worst = HealthState::kOk;
  /// Parallel to the configured rule set, in rule order.
  std::vector<std::pair<HealthRule, HealthRuleStatus>> rules;

  bool ever_tripped() const {
    for (const auto& [rule, status] : rules)
      if (status.trips > 0) return true;
    return false;
  }
};

/// Declarative watchdog engine: evaluate() runs every rule's ok -> warn ->
/// critical -> clear state machine against one HealthInput, emitting
/// "health.warn" / "health.critical" / "health.clear" trace events and
/// health_* counters on transitions. Purely observational — it reads no
/// RNG and mutates nothing outside itself, so an attached monitor cannot
/// change the simulated trajectory.
class HealthMonitor {
 public:
  struct Options {
    TraceSink* trace = nullptr;        // transition events; borrowed
    MetricsRegistry* metrics = nullptr;  // trip counters; borrowed
  };
  using CriticalHook =
      std::function<void(sim::Time, const HealthRule&, double value)>;

  explicit HealthMonitor(HealthRuleSet rules)
      : HealthMonitor(std::move(rules), Options{}) {}
  HealthMonitor(HealthRuleSet rules, Options options);

  void evaluate(const HealthInput& input);

  /// Invoked on every entry into critical (the flight recorder's dump
  /// trigger). At most one hook.
  void set_critical_hook(CriticalHook hook) { critical_hook_ = std::move(hook); }

  const HealthRuleSet& rules() const { return rules_; }
  HealthSummary summary() const;
  std::uint64_t evaluations() const { return evaluations_; }

 private:
  struct RuleState {
    HealthRuleStatus status;
    std::deque<double> trailing;  // kIspShareDrift share history
  };

  /// Computes rule i's signal; false when the rule abstains this tick
  /// (warm-up, unfilled trailing window, idle interval).
  bool signal(std::size_t i, const HealthInput& input, double* value);
  void transition(std::size_t i, sim::Time t, HealthState to, double value);
  void emit(std::size_t i, sim::Time t, const char* event, HealthState from,
            HealthState to, double value);

  HealthRuleSet rules_;
  Options options_;
  CriticalHook critical_hook_;
  std::vector<RuleState> states_;
  std::uint64_t evaluations_ = 0;
};

/// One health.* transition parsed back out of a trace NDJSON (the
/// offline half: ppsim-analyze --health).
struct HealthTransition {
  sim::Time t;
  std::size_t rule = 0;
  HealthRuleKind kind = HealthRuleKind::kContinuityFloor;
  std::string label;
  HealthState from = HealthState::kOk;
  HealthState to = HealthState::kOk;
  double value = 0;
};

/// Scans a trace NDJSON for health.warn/health.critical/health.clear rows.
/// Non-health lines are skipped silently; malformed health lines are
/// counted in *dropped (when non-null).
std::vector<HealthTransition> read_health_events_ndjson(
    std::istream& is, std::size_t* dropped = nullptr);

/// Per-rule timeline digest of a transition stream.
struct HealthRuleTimeline {
  std::size_t rule = 0;
  HealthRuleKind kind = HealthRuleKind::kContinuityFloor;
  std::string label;
  std::uint64_t trips = 0;
  std::uint64_t criticals = 0;
  std::uint64_t clears = 0;
  sim::Time first_trip;
  sim::Time last_clear;
  double worst_value = 0;     // most extreme value carried by a transition
  bool has_worst = false;
  HealthState final_state = HealthState::kOk;
};

std::vector<HealthRuleTimeline> analyze_health_timeline(
    const std::vector<HealthTransition>& transitions);

/// Fixed-width table in the print_fault_timeline style, so watchdog runs
/// and fault-plan runs read side by side.
void print_health_timeline(std::ostream& os,
                           const std::vector<HealthRuleTimeline>& rows);

}  // namespace ppsim::obs
