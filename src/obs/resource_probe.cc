#include "obs/resource_probe.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ppsim::obs {

namespace {

/// Reads one "VmRSS:  123 kB"-style field out of /proc/self/status.
/// Returns 0 when the file or the field is unavailable (non-Linux hosts).
std::uint64_t proc_status_kb(const char* field) {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  const std::size_t field_len = std::strlen(field);
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 &&
        line[field_len] == ':') {
      kb = std::strtoull(line + field_len + 1, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
#else
  (void)field;
  return 0;
#endif
}

}  // namespace

std::uint64_t ResourceProbe::current_rss_bytes() {
  return proc_status_kb("VmRSS") * 1024;
}

std::uint64_t ResourceProbe::peak_rss_bytes() {
  return proc_status_kb("VmHWM") * 1024;
}

const ResourceProbe::Sample& ResourceProbe::sample(const Inputs& in) {
  Sample s;
  s.t = in.now;
  s.rss_bytes = current_rss_bytes();
  s.peak_rss_bytes = peak_rss_bytes();
  s.queue_depth = in.queue_depth;
  s.event_horizon_s = in.event_horizon.as_seconds();
  s.events_executed = in.events_executed;
  s.queue_bytes = in.queue_bytes;
  s.live_peers = in.live_peers;
  s.live_peer_bytes = in.live_peer_bytes;
  const std::uint64_t events_delta = in.events_executed - prev_events_;
  const double wall_delta = in.wall_seconds - prev_wall_seconds_;
  s.events_per_wall_s =
      wall_delta > 0 ? static_cast<double>(events_delta) / wall_delta : 0.0;
  prev_events_ = in.events_executed;
  prev_wall_seconds_ = in.wall_seconds;
  if (s.peak_rss_bytes > peak_rss_seen_) peak_rss_seen_ = s.peak_rss_bytes;

  if (metrics_ != nullptr) {
    // Same order as kResourceGaugeNames / the docs table.
    metrics_->gauge("resource_rss_bytes")
        .set(static_cast<double>(s.rss_bytes));
    metrics_->gauge("resource_peak_rss_bytes")
        .set(static_cast<double>(s.peak_rss_bytes));
    metrics_->gauge("sched_queue_depth")
        .set(static_cast<double>(s.queue_depth));
    metrics_->gauge("sched_event_horizon_s").set(s.event_horizon_s);
    metrics_->gauge("sched_queue_bytes")
        .set(static_cast<double>(s.queue_bytes));
    metrics_->gauge("sched_events_per_wall_s").set(s.events_per_wall_s);
    metrics_->gauge("live_peers").set(static_cast<double>(s.live_peers));
    metrics_->gauge("live_peer_bytes")
        .set(static_cast<double>(s.live_peer_bytes));
  }

  samples_.push_back(s);
  while (samples_.size() > retain_) samples_.pop_front();
  ++samples_taken_;
  return samples_.back();
}

}  // namespace ppsim::obs
