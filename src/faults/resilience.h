#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "faults/plan.h"
#include "obs/sampler.h"
#include "sim/time.h"

namespace ppsim::faults {

/// Resilience verdict for one fault window, computed from the obs layer's
/// traffic time-series (obs::TrafficSample): how deep playback continuity
/// dipped, how long the swarm took to climb back to its pre-fault level,
/// and what the intra-ISP traffic share did before/during/after the window
/// — the paper's locality metric under stress.
struct WindowResilience {
  std::size_t index = 0;
  FaultKind kind = FaultKind::kTrackerOutage;
  sim::Time start;
  sim::Time end;
  std::string label;

  bool has_samples = false;     // false when the series doesn't cover the window
  double baseline_continuity = 0;  // mean over the lookback before start
  double min_continuity = 0;       // worst sample from start until recovery
  double dip_depth = 0;            // baseline - min (clamped at 0)
  bool recovered = false;
  /// Seconds from window end until continuity first reached
  /// recover_fraction * baseline (0 when it never dipped below it).
  double time_to_recover_s = 0;

  /// Intra-ISP share of interval traffic (same_isp_share_interval), averaged
  /// over the lookback before, the window itself, and the lookback after.
  double share_before = 0;
  double share_during = 0;
  double share_after = 0;
};

struct ResilienceOptions {
  /// Averaging horizon before the window (baseline) and after it (the
  /// "after" share column).
  sim::Time lookback = sim::Time::seconds(60);
  /// Recovery threshold relative to baseline continuity.
  double recover_fraction = 0.95;
};

/// Lines each plan window up against the sampled time-series. Samples must
/// be in time order (as written by the sampler / read_samples_ndjson).
std::vector<WindowResilience> analyze_resilience(
    const FaultPlan& plan, const std::vector<obs::TrafficSample>& samples,
    const ResilienceOptions& options = {});

/// The ppsim-analyze fault-timeline table: one row per window.
void print_fault_timeline(std::ostream& os,
                          const std::vector<WindowResilience>& rows);

}  // namespace ppsim::faults
