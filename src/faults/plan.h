#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "net/isp.h"
#include "sim/time.h"

namespace ppsim::faults {

/// The impairment families a fault plan can schedule. Each maps onto one
/// injection seam: tracker/bootstrap outages flip the servers' dark bit
/// (proto), link degradation / blackouts / brownouts mutate the network's
/// ImpairmentOverlay (net), churn bursts crash a fraction of the audience
/// through the experiment runner (core).
enum class FaultKind : std::uint8_t {
  kTrackerOutage = 0,    // a tracker group (or all) stops answering
  kBootstrapOutage = 1,  // the bootstrap/channel server goes dark
  kLinkDegrade = 2,      // cross-ISP link: extra loss + added RTT
  kBlackout = 3,         // an entire ISP category drops off the network
  kChurnBurst = 4,       // instantaneous correlated crash of a peer fraction
  kUplinkBrownout = 5,   // a fraction of peers' uplinks turn lossy
};

std::string_view to_string(FaultKind k);
/// Accepts the plan-file spelling ("tracker_outage", "link_degrade", ...).
bool parse_fault_kind(std::string_view s, FaultKind* out);
/// Accepts the reporting spelling used everywhere else ("TELE", "CNC", ...).
bool parse_isp_category(std::string_view s, net::IspCategory* out);

/// One scheduled impairment window on the simulator clock. Fields beyond
/// kind/start/end are kind-specific; unused ones keep their defaults.
struct FaultWindow {
  FaultKind kind = FaultKind::kTrackerOutage;
  sim::Time start;  // window opens (impairment applied)
  sim::Time end;    // window closes (impairment reverted); == start for
                    // instantaneous kinds (churn bursts)

  /// kTrackerOutage: tracker group index, or -1 for every group.
  int tracker_group = -1;
  /// kLinkDegrade: the two endpoint categories. kBlackout: category_a.
  net::IspCategory category_a = net::IspCategory::kTele;
  net::IspCategory category_b = net::IspCategory::kCnc;
  /// kLinkDegrade: extra drop probability. kUplinkBrownout: uplink loss.
  double loss = 0.0;
  /// kLinkDegrade: added round-trip time (applied half per direction).
  sim::Time added_rtt;
  /// kChurnBurst: fraction of alive audience peers crashed.
  /// kUplinkBrownout: fraction of alive audience peers browned out.
  double fraction = 0.0;
  /// Free-form tag carried into traces and the timeline table.
  std::string label;
};

struct FaultPlan {
  std::vector<FaultWindow> windows;
  bool empty() const { return windows.empty(); }
};

/// Plan text format (docs/FAULTS.md): one window per line, '#' comments,
/// times in simulated seconds —
///
///   window kind=tracker_outage  start=120 end=240 group=0 label=tele-dark
///   window kind=bootstrap_outage start=60 end=90
///   window kind=link_degrade    start=90 end=300 a=TELE b=CNC loss=0.25 added_rtt_ms=150
///   window kind=blackout        start=200 end=260 a=CNC
///   window kind=churn_burst     at=240 fraction=0.3
///   window kind=uplink_brownout start=300 end=420 fraction=0.2 loss=0.5
struct PlanParseResult {
  FaultPlan plan;
  std::string error;  // empty on success
  bool ok() const { return error.empty(); }
};

PlanParseResult parse_fault_plan(std::istream& in);
PlanParseResult load_fault_plan(const std::string& path);

/// Structural validation (ranges, orderings). Empty string when valid;
/// parse_fault_plan already runs this.
std::string validate(const FaultPlan& plan);

/// Serializes in the parseable text format (round-trips through
/// parse_fault_plan).
void write_fault_plan(std::ostream& os, const FaultPlan& plan);

/// The canned demonstration schedule from the issue: a tracker-group
/// blackout overlapping TELE<->CNC cross-ISP throttling, followed by a
/// churn burst — the scenario bench_resilience and the CI smoke step run.
FaultPlan tracker_blackout_throttle_plan();

}  // namespace ppsim::faults
