#include "faults/driver.h"

#include <algorithm>
#include <cmath>

namespace ppsim::faults {

FaultDriver::FaultDriver(sim::Simulator& simulator,
                         net::ImpairmentOverlay& overlay, FaultHost& host,
                         FaultPlan plan, Options options)
    : simulator_(simulator),
      overlay_(overlay),
      host_(host),
      plan_(std::move(plan)),
      options_(options),
      rng_(options.seed),
      browned_out_(plan_.windows.size()) {}

void FaultDriver::arm() {
  if (armed_) return;
  armed_ = true;
  for (std::size_t i = 0; i < plan_.windows.size(); ++i) {
    const FaultWindow& w = plan_.windows[i];
    simulator_.schedule_at(w.start, [this, i] { apply(i); }, "fault.begin");
    // Instantaneous windows (churn bursts) have nothing to revert.
    if (w.end > w.start)
      simulator_.schedule_at(w.end, [this, i] { revert(i); }, "fault.end");
  }
}

std::vector<net::IpAddress> FaultDriver::sample_peers(double fraction) {
  const std::vector<net::IpAddress> alive = host_.alive_audience_ips();
  const auto want = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(alive.size())));
  std::vector<net::IpAddress> picked = rng_.sample(alive, want);
  // sample() randomizes order; apply in ascending-IP order so the event
  // sequence of a burst is deterministic and readable in traces.
  std::sort(picked.begin(), picked.end());
  return picked;
}

void FaultDriver::apply(std::size_t index) {
  const FaultWindow& w = plan_.windows[index];
  std::uint64_t affected = 0;
  switch (w.kind) {
    case FaultKind::kTrackerOutage:
      host_.set_tracker_dark(w.tracker_group, true);
      break;
    case FaultKind::kBootstrapOutage:
      host_.set_bootstrap_dark(true);
      break;
    case FaultKind::kLinkDegrade: {
      net::ImpairmentOverlay::PairDegradation d;
      d.extra_loss = w.loss;
      // The plan speaks round-trip; the overlay impairs each direction.
      d.extra_one_way = sim::scale(w.added_rtt, 0.5);
      overlay_.set_pair_degradation(w.category_a, w.category_b, d);
      break;
    }
    case FaultKind::kBlackout:
      overlay_.set_category_blocked(w.category_a, true);
      break;
    case FaultKind::kChurnBurst: {
      const auto victims = sample_peers(w.fraction);
      for (const auto& ip : victims) host_.crash_peer(ip);
      affected = victims.size();
      peers_crashed_ += affected;
      break;
    }
    case FaultKind::kUplinkBrownout: {
      auto victims = sample_peers(w.fraction);
      for (const auto& ip : victims) overlay_.set_uplink_loss(ip, w.loss);
      affected = victims.size();
      browned_out_[index] = std::move(victims);
      break;
    }
  }
  ++windows_applied_;
  if (options_.metrics != nullptr)
    options_.metrics->counter("fault_windows_applied").inc();
  if (w.kind == FaultKind::kChurnBurst && options_.metrics != nullptr)
    options_.metrics->counter("fault_peers_crashed").inc(affected);
  emit("fault_begin", index, affected);
}

void FaultDriver::revert(std::size_t index) {
  const FaultWindow& w = plan_.windows[index];
  std::uint64_t affected = 0;
  switch (w.kind) {
    case FaultKind::kTrackerOutage:
      host_.set_tracker_dark(w.tracker_group, false);
      break;
    case FaultKind::kBootstrapOutage:
      host_.set_bootstrap_dark(false);
      break;
    case FaultKind::kLinkDegrade:
      overlay_.clear_pair_degradation(w.category_a, w.category_b);
      break;
    case FaultKind::kBlackout:
      overlay_.set_category_blocked(w.category_a, false);
      break;
    case FaultKind::kChurnBurst:
      break;  // never scheduled (instantaneous), kept for -Wswitch
    case FaultKind::kUplinkBrownout:
      for (const auto& ip : browned_out_[index])
        overlay_.clear_uplink_loss(ip);
      affected = browned_out_[index].size();
      browned_out_[index].clear();
      break;
  }
  ++windows_reverted_;
  if (options_.metrics != nullptr)
    options_.metrics->counter("fault_windows_reverted").inc();
  emit("fault_end", index, affected);
}

void FaultDriver::emit(const char* event, std::size_t index,
                       std::uint64_t affected) {
  if (options_.trace == nullptr) return;
  const FaultWindow& w = plan_.windows[index];
  obs::TraceEvent ev(simulator_.now(), event);
  ev.field("window", static_cast<std::uint64_t>(index))
      .field("kind", to_string(w.kind))
      .field("start_s", w.start.as_seconds())
      .field("end_s", w.end.as_seconds());
  switch (w.kind) {
    case FaultKind::kTrackerOutage:
      ev.field("group", w.tracker_group);
      break;
    case FaultKind::kBootstrapOutage:
      break;
    case FaultKind::kLinkDegrade:
      ev.field("a", net::to_string(w.category_a))
          .field("b", net::to_string(w.category_b))
          .field("loss", w.loss)
          .field("added_rtt_ms", w.added_rtt.as_seconds() * 1000.0);
      break;
    case FaultKind::kBlackout:
      ev.field("a", net::to_string(w.category_a));
      break;
    case FaultKind::kChurnBurst:
    case FaultKind::kUplinkBrownout:
      ev.field("fraction", w.fraction).field("affected", affected);
      break;
  }
  if (!w.label.empty()) ev.field("label", w.label);
  options_.trace->write(ev);
}

}  // namespace ppsim::faults
