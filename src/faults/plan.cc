#include "faults/plan.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace ppsim::faults {

namespace {

/// Parses "key=value" into its parts; returns false on malformed tokens.
bool split_kv(std::string_view token, std::string_view* key,
              std::string_view* value) {
  const auto eq = token.find('=');
  if (eq == std::string_view::npos || eq == 0) return false;
  *key = token.substr(0, eq);
  *value = token.substr(eq + 1);
  return true;
}

bool parse_double(std::string_view s, double* out) {
  try {
    std::size_t used = 0;
    *out = std::stod(std::string(s), &used);
    return used == s.size();
  } catch (...) {
    return false;
  }
}

bool parse_int(std::string_view s, int* out) {
  try {
    std::size_t used = 0;
    *out = std::stoi(std::string(s), &used);
    return used == s.size();
  } catch (...) {
    return false;
  }
}

std::string line_error(int line_no, const std::string& what) {
  std::ostringstream os;
  os << "fault plan line " << line_no << ": " << what;
  return os.str();
}

}  // namespace

std::string_view to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kTrackerOutage: return "tracker_outage";
    case FaultKind::kBootstrapOutage: return "bootstrap_outage";
    case FaultKind::kLinkDegrade: return "link_degrade";
    case FaultKind::kBlackout: return "blackout";
    case FaultKind::kChurnBurst: return "churn_burst";
    case FaultKind::kUplinkBrownout: return "uplink_brownout";
  }
  return "unknown";
}

bool parse_fault_kind(std::string_view s, FaultKind* out) {
  for (FaultKind k :
       {FaultKind::kTrackerOutage, FaultKind::kBootstrapOutage,
        FaultKind::kLinkDegrade, FaultKind::kBlackout, FaultKind::kChurnBurst,
        FaultKind::kUplinkBrownout}) {
    if (s == to_string(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

bool parse_isp_category(std::string_view s, net::IspCategory* out) {
  for (net::IspCategory c : net::kAllIspCategories) {
    if (s == net::to_string(c)) {
      *out = c;
      return true;
    }
  }
  return false;
}

PlanParseResult parse_fault_plan(std::istream& in) {
  PlanParseResult result;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and surrounding whitespace.
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.resize(hash);
    std::istringstream tokens(line);
    std::string first;
    if (!(tokens >> first)) continue;  // blank / comment-only line
    if (first != "window") {
      result.error = line_error(line_no, "expected 'window', got '" + first +
                                             "'");
      return result;
    }
    FaultWindow w;
    bool have_kind = false, have_start = false, have_end = false;
    std::string token;
    while (tokens >> token) {
      std::string_view key, value;
      if (!split_kv(token, &key, &value)) {
        result.error = line_error(line_no, "malformed token '" + token + "'");
        return result;
      }
      double d = 0;
      int i = 0;
      if (key == "kind") {
        if (!parse_fault_kind(value, &w.kind)) {
          result.error = line_error(
              line_no, "unknown kind '" + std::string(value) + "'");
          return result;
        }
        have_kind = true;
      } else if (key == "start") {
        if (!parse_double(value, &d) || d < 0) {
          result.error = line_error(line_no, "bad start");
          return result;
        }
        w.start = sim::Time::from_seconds(d);
        have_start = true;
      } else if (key == "end") {
        if (!parse_double(value, &d) || d < 0) {
          result.error = line_error(line_no, "bad end");
          return result;
        }
        w.end = sim::Time::from_seconds(d);
        have_end = true;
      } else if (key == "at") {
        // Instantaneous window: start == end.
        if (!parse_double(value, &d) || d < 0) {
          result.error = line_error(line_no, "bad at");
          return result;
        }
        w.start = w.end = sim::Time::from_seconds(d);
        have_start = have_end = true;
      } else if (key == "group") {
        if (!parse_int(value, &i)) {
          result.error = line_error(line_no, "bad group");
          return result;
        }
        w.tracker_group = i;
      } else if (key == "a") {
        if (!parse_isp_category(value, &w.category_a)) {
          result.error = line_error(
              line_no, "unknown category '" + std::string(value) + "'");
          return result;
        }
      } else if (key == "b") {
        if (!parse_isp_category(value, &w.category_b)) {
          result.error = line_error(
              line_no, "unknown category '" + std::string(value) + "'");
          return result;
        }
      } else if (key == "loss") {
        if (!parse_double(value, &d)) {
          result.error = line_error(line_no, "bad loss");
          return result;
        }
        w.loss = d;
      } else if (key == "added_rtt_ms") {
        if (!parse_double(value, &d) || d < 0) {
          result.error = line_error(line_no, "bad added_rtt_ms");
          return result;
        }
        w.added_rtt = sim::Time::from_seconds(d / 1000.0);
      } else if (key == "fraction") {
        if (!parse_double(value, &d)) {
          result.error = line_error(line_no, "bad fraction");
          return result;
        }
        w.fraction = d;
      } else if (key == "label") {
        w.label = std::string(value);
      } else {
        result.error = line_error(line_no,
                                  "unknown key '" + std::string(key) + "'");
        return result;
      }
    }
    if (!have_kind) {
      result.error = line_error(line_no, "missing kind=");
      return result;
    }
    if (!have_start) {
      result.error = line_error(line_no, "missing start= (or at=)");
      return result;
    }
    if (!have_end && w.kind != FaultKind::kChurnBurst) {
      result.error = line_error(line_no, "missing end=");
      return result;
    }
    if (!have_end) w.end = w.start;
    result.plan.windows.push_back(std::move(w));
  }
  // Time-ordered schedule: sort by (start, end) and keep the textual order
  // for ties, so the driver applies windows in a well-defined sequence.
  std::stable_sort(result.plan.windows.begin(), result.plan.windows.end(),
                   [](const FaultWindow& a, const FaultWindow& b) {
                     if (a.start != b.start) return a.start < b.start;
                     return a.end < b.end;
                   });
  result.error = validate(result.plan);
  if (!result.error.empty()) result.plan.windows.clear();
  return result;
}

PlanParseResult load_fault_plan(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    PlanParseResult result;
    result.error = "cannot open fault plan '" + path + "'";
    return result;
  }
  return parse_fault_plan(in);
}

std::string validate(const FaultPlan& plan) {
  for (std::size_t i = 0; i < plan.windows.size(); ++i) {
    const FaultWindow& w = plan.windows[i];
    std::ostringstream os;
    os << "window " << i << " (" << to_string(w.kind) << "): ";
    if (w.end < w.start) {
      os << "end before start";
      return os.str();
    }
    switch (w.kind) {
      case FaultKind::kTrackerOutage:
        if (w.tracker_group < -1) {
          os << "group must be >= 0 (or -1 for all)";
          return os.str();
        }
        break;
      case FaultKind::kBootstrapOutage:
        break;
      case FaultKind::kLinkDegrade:
        if (w.loss < 0 || w.loss > 1) {
          os << "loss must be in [0,1]";
          return os.str();
        }
        if (w.loss == 0 && w.added_rtt == sim::Time::zero()) {
          os << "needs loss and/or added_rtt_ms";
          return os.str();
        }
        break;
      case FaultKind::kBlackout:
        break;
      case FaultKind::kChurnBurst:
        if (w.fraction <= 0 || w.fraction > 1) {
          os << "fraction must be in (0,1]";
          return os.str();
        }
        if (w.end != w.start) {
          os << "churn bursts are instantaneous (use at=)";
          return os.str();
        }
        break;
      case FaultKind::kUplinkBrownout:
        if (w.fraction <= 0 || w.fraction > 1) {
          os << "fraction must be in (0,1]";
          return os.str();
        }
        if (w.loss <= 0 || w.loss > 1) {
          os << "loss must be in (0,1]";
          return os.str();
        }
        break;
    }
  }
  return {};
}

void write_fault_plan(std::ostream& os, const FaultPlan& plan) {
  char buf[64];
  const auto secs = [&](sim::Time t) {
    std::snprintf(buf, sizeof(buf), "%.6g", t.as_seconds());
    return std::string(buf);
  };
  os << "# ppsim fault plan (docs/FAULTS.md)\n";
  for (const FaultWindow& w : plan.windows) {
    os << "window kind=" << to_string(w.kind);
    if (w.kind == FaultKind::kChurnBurst) {
      os << " at=" << secs(w.start);
    } else {
      os << " start=" << secs(w.start) << " end=" << secs(w.end);
    }
    switch (w.kind) {
      case FaultKind::kTrackerOutage:
        os << " group=" << w.tracker_group;
        break;
      case FaultKind::kBootstrapOutage:
        break;
      case FaultKind::kLinkDegrade:
        os << " a=" << net::to_string(w.category_a)
           << " b=" << net::to_string(w.category_b);
        if (w.loss > 0) os << " loss=" << w.loss;
        if (w.added_rtt != sim::Time::zero()) {
          std::snprintf(buf, sizeof(buf), "%.6g",
                        w.added_rtt.as_seconds() * 1000.0);
          os << " added_rtt_ms=" << buf;
        }
        break;
      case FaultKind::kBlackout:
        os << " a=" << net::to_string(w.category_a);
        break;
      case FaultKind::kChurnBurst:
        os << " fraction=" << w.fraction;
        break;
      case FaultKind::kUplinkBrownout:
        os << " fraction=" << w.fraction << " loss=" << w.loss;
        break;
    }
    if (!w.label.empty()) os << " label=" << w.label;
    os << "\n";
  }
}

FaultPlan tracker_blackout_throttle_plan() {
  FaultPlan plan;
  {
    FaultWindow w;
    w.kind = FaultKind::kTrackerOutage;
    w.start = sim::Time::seconds(60);
    w.end = sim::Time::seconds(150);
    w.tracker_group = -1;
    w.label = "all-trackers-dark";
    plan.windows.push_back(w);
  }
  {
    FaultWindow w;
    w.kind = FaultKind::kLinkDegrade;
    w.start = sim::Time::seconds(75);
    w.end = sim::Time::seconds(150);
    w.category_a = net::IspCategory::kTele;
    w.category_b = net::IspCategory::kCnc;
    w.loss = 0.3;
    w.added_rtt = sim::Time::millis(150);
    w.label = "tele-cnc-throttle";
    plan.windows.push_back(w);
  }
  {
    FaultWindow w;
    w.kind = FaultKind::kChurnBurst;
    w.start = w.end = sim::Time::seconds(105);
    w.fraction = 0.2;
    w.label = "crash-burst";
    plan.windows.push_back(w);
  }
  return plan;
}

}  // namespace ppsim::faults
