#include "faults/resilience.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace ppsim::faults {

namespace {

/// Mean of `field` over samples with t in [from, to]; `fallback` when the
/// range holds no samples.
template <typename Get>
double mean_over(const std::vector<obs::TrafficSample>& samples,
                 sim::Time from, sim::Time to, Get get, double fallback,
                 bool* any = nullptr) {
  double sum = 0;
  std::size_t n = 0;
  for (const auto& s : samples) {
    if (s.t < from || s.t > to) continue;
    sum += get(s);
    ++n;
  }
  if (any != nullptr) *any = n > 0;
  return n == 0 ? fallback : sum / static_cast<double>(n);
}

}  // namespace

std::vector<WindowResilience> analyze_resilience(
    const FaultPlan& plan, const std::vector<obs::TrafficSample>& samples,
    const ResilienceOptions& options) {
  std::vector<WindowResilience> rows;
  rows.reserve(plan.windows.size());
  const auto continuity = [](const obs::TrafficSample& s) {
    return s.avg_continuity;
  };
  const auto share = [](const obs::TrafficSample& s) {
    return s.same_isp_share_interval;
  };
  for (std::size_t i = 0; i < plan.windows.size(); ++i) {
    const FaultWindow& w = plan.windows[i];
    WindowResilience r;
    r.index = i;
    r.kind = w.kind;
    r.start = w.start;
    r.end = w.end;
    r.label = w.label;

    bool have_baseline = false;
    r.baseline_continuity =
        mean_over(samples, w.start - options.lookback, w.start, continuity,
                  /*fallback=*/0.0, &have_baseline);
    r.share_before = mean_over(samples, w.start - options.lookback, w.start,
                               share, 0.0);
    r.share_during = mean_over(samples, w.start, w.end, share, 0.0);
    r.share_after =
        mean_over(samples, w.end, w.end + options.lookback, share, 0.0);

    // Walk forward from the window start: track the worst continuity until
    // the series climbs back over the recovery threshold after the window
    // closed.
    const double threshold = options.recover_fraction * r.baseline_continuity;
    double worst = 2.0;
    bool any_in_flight = false;
    for (const auto& s : samples) {
      if (s.t < w.start) continue;
      any_in_flight = true;
      worst = std::min(worst, s.avg_continuity);
      if (s.t >= w.end && s.avg_continuity >= threshold) {
        r.recovered = true;
        r.time_to_recover_s = (s.t - w.end).as_seconds();
        break;
      }
    }
    r.has_samples = have_baseline && any_in_flight;
    r.min_continuity = any_in_flight ? worst : 0.0;
    r.dip_depth = std::max(0.0, r.baseline_continuity - r.min_continuity);
    rows.push_back(std::move(r));
  }
  return rows;
}

void print_fault_timeline(std::ostream& os,
                          const std::vector<WindowResilience>& rows) {
  os << "Fault timeline (continuity dip & recovery per window; intra-ISP "
        "share before/during/after)\n";
  char line[192];
  std::snprintf(line, sizeof(line),
                "%3s  %-16s %-20s %13s  %6s %6s %6s  %9s  %s\n", "#", "kind",
                "label", "window[s]", "base", "min", "dip", "recover",
                "share b/d/a");
  os << line;
  for (const WindowResilience& r : rows) {
    char window[32];
    std::snprintf(window, sizeof(window), "%.0f-%.0f", r.start.as_seconds(),
                  r.end.as_seconds());
    char recover[16];
    if (!r.has_samples)
      std::snprintf(recover, sizeof(recover), "%s", "n/a");
    else if (r.recovered)
      std::snprintf(recover, sizeof(recover), "%.0fs", r.time_to_recover_s);
    else
      std::snprintf(recover, sizeof(recover), "%s", "never");
    std::snprintf(line, sizeof(line),
                  "%3zu  %-16s %-20s %13s  %5.1f%% %5.1f%% %5.1f%%  %9s  "
                  "%.0f/%.0f/%.0f%%\n",
                  r.index, std::string(to_string(r.kind)).c_str(),
                  r.label.empty() ? "-" : r.label.c_str(), window,
                  100 * r.baseline_continuity, 100 * r.min_continuity,
                  100 * r.dip_depth, recover, 100 * r.share_before,
                  100 * r.share_during, 100 * r.share_after);
    os << line;
  }
}

}  // namespace ppsim::faults
