#pragma once

#include <cstdint>
#include <vector>

#include "faults/plan.h"
#include "net/impairment.h"
#include "net/ip.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace ppsim::faults {

/// The driver's view of the world it injects faults into. The experiment
/// runner implements this; tests substitute a mock. Everything here must be
/// deterministic: alive_audience_ips() returns IPs in ascending order so
/// the driver's own RNG is the only source of randomness in a fault run.
class FaultHost {
 public:
  virtual ~FaultHost() = default;

  /// Turns a tracker group dark (it silently drops queries) or lights it
  /// back up. group == -1 addresses every group.
  virtual void set_tracker_dark(int group, bool dark) = 0;

  /// Turns the bootstrap/channel server dark.
  virtual void set_bootstrap_dark(bool dark) = 0;

  /// Alive audience peers (never probes or infrastructure), ascending IPs.
  virtual std::vector<net::IpAddress> alive_audience_ips() const = 0;

  /// Crashes one peer: an abrupt departure with no goodbyes (the churn
  /// burst's unit of work). The host decides bookkeeping (session records,
  /// respawns).
  virtual void crash_peer(net::IpAddress ip) = 0;
};

/// Optional knobs and sinks for a FaultDriver (namespace-scope so it can be
/// a brace-initialized default argument; GCC rejects that for nested types
/// with member initializers).
struct FaultDriverOptions {
  /// Seeds the driver's private RNG (peer sampling for churn bursts and
  /// brownouts). The caller derives it from the run seed when the user
  /// didn't pin one, so same (seed, plan) => same victims.
  std::uint64_t seed = 0;
  obs::TraceSink* trace = nullptr;          // may be nullptr
  obs::MetricsRegistry* metrics = nullptr;  // may be nullptr
};

/// Arms a FaultPlan on the simulator clock and applies/reverts each window
/// through the impairment overlay and the FaultHost seams. All scheduling
/// happens up front in arm(), so a driven run stays a pure function of
/// (run seed, fault seed, plan).
///
/// Every window boundary emits a "fault_begin"/"fault_end" trace event and
/// bumps the fault metrics (when sinks are wired), so recovery analysis can
/// line the obs time-series up against the schedule.
class FaultDriver {
 public:
  using Options = FaultDriverOptions;

  FaultDriver(sim::Simulator& simulator, net::ImpairmentOverlay& overlay,
              FaultHost& host, FaultPlan plan, Options options = {});

  FaultDriver(const FaultDriver&) = delete;
  FaultDriver& operator=(const FaultDriver&) = delete;

  /// Schedules every window's begin/end on the simulator. Call once,
  /// before running; windows already in the past fire immediately on the
  /// next run step (schedule clamps to now).
  void arm();

  const FaultPlan& plan() const { return plan_; }
  std::uint64_t windows_applied() const { return windows_applied_; }
  std::uint64_t windows_reverted() const { return windows_reverted_; }
  std::uint64_t peers_crashed() const { return peers_crashed_; }

 private:
  void apply(std::size_t index);
  void revert(std::size_t index);
  /// Samples ceil(fraction * alive) audience peers, ascending-IP result.
  std::vector<net::IpAddress> sample_peers(double fraction);
  void emit(const char* event, std::size_t index, std::uint64_t affected);

  sim::Simulator& simulator_;
  net::ImpairmentOverlay& overlay_;
  FaultHost& host_;
  FaultPlan plan_;
  Options options_;
  sim::Rng rng_;
  bool armed_ = false;
  std::uint64_t windows_applied_ = 0;
  std::uint64_t windows_reverted_ = 0;
  std::uint64_t peers_crashed_ = 0;
  /// Per-window brownout victims, remembered so revert clears exactly the
  /// uplinks this window impaired.
  std::vector<std::vector<net::IpAddress>> browned_out_;
};

}  // namespace ppsim::faults
