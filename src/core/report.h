#pragma once

#include <iosfwd>
#include <string>

#include "capture/analyzer.h"
#include "core/experiment.h"

namespace ppsim::core {

/// Text renderers for the paper's figures and tables. Each prints the same
/// rows/series the corresponding figure plots, so a bench binary's output
/// can be compared against the paper side by side.

/// Figure (a) panels: returned addresses by ISP (duplicates kept).
void print_returned_addresses(std::ostream& os,
                              const capture::TraceAnalysis& a);

/// Figure (b) panels: returned addresses split by replier class
/// ("CNC_p", "CNC_s", ...), each row broken down by listed-address ISP.
void print_list_sources(std::ostream& os, const capture::TraceAnalysis& a);

/// Figure (c) panels: data transmissions (up) and bytes (down) by ISP.
void print_data_by_isp(std::ostream& os, const capture::TraceAnalysis& a);

/// Figures 7-10: response-time summary per responder group (count, mean),
/// plus a coarse time-binned series of means for shape comparison.
void print_response_times(std::ostream& os, const capture::TraceAnalysis& a,
                          bool data_requests);

/// Figures 11-14: unique connected peers by ISP, SE vs Zipf fit of the
/// request rank distribution, and contribution concentration.
void print_contributions(std::ostream& os, const capture::TraceAnalysis& a);

/// Figures 15-18: request-count vs RTT correlation and the top/bottom of
/// the ranked table.
void print_rtt_rank(std::ostream& os, const capture::TraceAnalysis& a);

/// Strategy-ablation summary row.
void print_traffic_matrix(std::ostream& os, const TrafficMatrix& m);

/// Swarm-wide aggregated protocol counters (one row per PeerCounters
/// field, via for_each_field — new fields show up automatically).
void print_peer_counters(std::ostream& os, const proto::PeerCounters& c);

/// Figure-6-style time series: same-ISP traffic share, neighbor
/// composition, and continuity per sample (see obs::TrafficSampler).
void print_locality_timeseries(std::ostream& os,
                               const std::vector<obs::TrafficSample>& samples);

/// Watchdog digest: worst state plus one row per rule (state, trips,
/// criticals, clears, first-trip time, last/worst value). See
/// obs::HealthMonitor and docs/OBSERVABILITY.md.
void print_health_summary(std::ostream& os, const obs::HealthSummary& health);

/// Causal-tracing lineage: one row per introduction channel (bootstrap /
/// tracker / gossip / inbound) with referral counts and same-ISP share,
/// plus the same-ISP-referral-fraction time series when non-empty.
void print_referral_lineage(
    std::ostream& os, const obs::LineageSummary& lineage,
    const std::vector<obs::ReferralShareBucket>& share);

/// Causal-tracing startup critical paths: per-stage p50/p90/p99/mean over
/// every peer that reached playback. Stage rows telescope — their per-peer
/// values sum exactly to the measured startup delay.
void print_critical_paths(std::ostream& os,
                          const std::vector<obs::CriticalPath>& paths);

/// Percentage with one decimal, e.g. "87.3%".
std::string pct(double fraction);

}  // namespace ppsim::core
