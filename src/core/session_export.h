#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.h"

namespace ppsim::core {

/// CSV export of viewer sessions (one row per session), the workload-
/// characterization artifact the paper motivates ("a basis to generate
/// practical P2P streaming workloads"). Columns:
///
///   channel,category,nat,joined_s,left_s,completed,duration_s,
///   bytes_down,bytes_up,continuity
std::size_t write_sessions_csv(std::ostream& os,
                               const std::vector<SessionRecord>& sessions);

bool write_sessions_csv_file(const std::string& path,
                             const std::vector<SessionRecord>& sessions);

/// Parses rows written by write_sessions_csv (header tolerated/skipped).
std::vector<SessionRecord> read_sessions_csv(std::istream& is,
                                             std::size_t* dropped = nullptr);

}  // namespace ppsim::core
