#pragma once

#include <array>
#include <memory>
#include <vector>

#include "baseline/policies.h"
#include "capture/analyzer.h"
#include "faults/plan.h"
#include "net/interconnect.h"
#include "net/asn_db.h"
#include "net/isp.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/progress.h"
#include "obs/resource_probe.h"
#include "obs/sampler.h"
#include "obs/span_tracker.h"
#include "obs/trace.h"
#include "proto/counters.h"
#include "proto/peer_config.h"
#include "workload/scenario.h"

namespace ppsim::core {

/// Opt-in observability sinks for a run. Every pointer is borrowed (the
/// caller owns the sink and must keep it alive through run_experiment) and
/// defaults to off; a default-constructed config costs the run nothing.
struct ObservabilityConfig {
  /// Filled during and at the end of the run: per-ISP-pair
  /// bytes_uploaded{src_isp,dst_isp} counters (live, from the network's
  /// global tap), aggregated peer_* counters per ISP, swarm gauges and
  /// session histograms (at result assembly).
  obs::MetricsRegistry* metrics = nullptr;
  /// Protocol event stream (tracker/gossip/connect/data events from every
  /// peer, tracker, and source). Sim-timestamps only: same seed, same
  /// config => byte-identical trace.
  obs::TraceSink* trace = nullptr;
  /// Additionally emit one "sim_event" row per executed simulator event to
  /// `trace` (sequence, category, queue depth). High volume.
  bool trace_sim_events = false;
  /// Wall-clock per-category profile of the run (see obs::RunProfiler).
  obs::RunProfiler* profiler = nullptr;
  /// When positive, snapshot the traffic matrix / neighbor composition /
  /// continuity every sample_period into ExperimentResult::samples.
  /// Defaulted to 10s when health rules or a flight recorder are attached
  /// and no period was chosen (the watchdogs ride the sampling tick).
  sim::Time sample_period = sim::Time::zero();
  /// Watchdog rules evaluated on every sampling tick (obs::HealthMonitor);
  /// nullptr/empty disables the monitor. The summary lands on
  /// ExperimentResult::health.
  const obs::HealthRuleSet* health_rules = nullptr;
  /// Flight recorder for post-mortem bundles. When set, the runner feeds it
  /// every sampling tick's TrafficSample and wires the health monitor's
  /// critical hook to FlightRecorder::trigger. To also capture the protocol
  /// event stream, point `trace` at the recorder (it tees downstream).
  obs::FlightRecorder* recorder = nullptr;
  /// Attach a deterministic obs::DispatchStats observer and export
  /// sim_events_dispatched{category} / sim_peak_queue_depth into `metrics`
  /// at run end. No-op without `metrics`.
  bool dispatch_metrics = false;
  /// Causal tracing (docs/OBSERVABILITY.md): every protocol entity
  /// allocates span ids for its outgoing discovery/data messages, trace
  /// events gain span/parent (and referral-provenance) fields, and the
  /// startup milestone events (join_reply, chunk_delivered,
  /// playback_start, bootstrap_serve) are emitted. Off by default so runs
  /// without it stay byte-identical to builds that predate causal tracing.
  bool causal_trace = false;
  /// Online span-tree consumer. When set, the runner enables causal_trace
  /// implicitly and tees the span tracker behind `trace` (if any), so both
  /// sinks observe the identical event sequence. Its lineage /
  /// referral-share / critical-path summaries land on ExperimentResult.
  obs::SpanTracker* spans = nullptr;
  /// Scale observatory (docs/OBSERVABILITY.md "Scale observatory").
  /// When sample_window is positive the sampler runs in its windowed
  /// streaming mode: each time sim time crosses a window boundary the
  /// window's samples are flushed to `samples_stream` (which must be set)
  /// and only the last `sample_retain` samples stay in memory, so
  /// ExperimentResult::samples holds the bounded tail instead of the whole
  /// series. The flushed stream is byte-identical to the end-of-run dump an
  /// unwindowed run would have written.
  sim::Time sample_window = sim::Time::zero();
  std::ostream* samples_stream = nullptr;
  std::size_t sample_retain = 16;
  /// Host-resource / scheduler telemetry, sampled on the sampling tick
  /// (requires sample_period, or it defaults to 10s like the watchdogs).
  /// Wall-clock inputs are read from `profiler` when one is attached.
  obs::ResourceProbe* resource = nullptr;
  /// Live stderr heartbeat, emitted every progress_period of sim time
  /// (defaulted to 30s when a meter is attached without a period).
  obs::ProgressMeter* progress = nullptr;
  sim::Time progress_period = sim::Time::zero();
};

/// Declarative fault schedule for a run (src/faults, docs/FAULTS.md).
/// Empty by default — a config without a plan runs byte-identically to
/// builds that predate the fault subsystem.
struct FaultPlanConfig {
  faults::FaultPlan plan;
  /// Seeds the fault driver's private RNG (victim sampling for churn
  /// bursts / brownouts). 0 (the default) derives one deterministically
  /// from the run seed, so same (seed, plan) => same fault trajectory; a
  /// nonzero value varies the victims while holding the run seed fixed.
  std::uint64_t fault_seed = 0;
};

/// A probe host: an instrumented client in a chosen ISP, equivalent to the
/// paper's Wireshark-monitored deployments (2x TELE, 2x CNC, 2x CERNET in
/// China; 2x university hosts in the USA).
struct ProbeSpec {
  net::IspCategory isp = net::IspCategory::kTele;
  net::AccessClass access = net::AccessClass::kAdsl;
  std::string label;
};

ProbeSpec tele_probe();
ProbeSpec cnc_probe();
ProbeSpec cer_probe();
ProbeSpec mason_probe();  // US campus host ("Mason" in the paper)

/// One channel of a multi-channel deployment: its audience scenario and
/// the probes watching it.
struct ChannelPlan {
  workload::ScenarioSpec scenario;
  std::vector<ProbeSpec> probes;
};

/// Configuration of a multi-channel world: shared bootstrap/trackers, one
/// stream source per channel, independent audiences, optional
/// channel-surfing on departure. PPLive served 150+ channels from shared
/// infrastructure; this is the same shape at simulation scale.
struct MultiChannelConfig {
  std::vector<ChannelPlan> channels;
  baseline::Strategy strategy = baseline::Strategy::kPplive;
  proto::PeerConfig peer_config;
  bool locality_aware_trackers = false;
  bool keep_traces = false;
  sim::Time probe_join_at = sim::Time::seconds(100);
  /// Total simulated time (channels' scenario durations are ignored).
  sim::Time duration = sim::Time::minutes(10);
  std::uint64_t seed = 1;
  /// Probability that a departing viewer immediately re-joins a *different*
  /// channel (channel surfing) instead of being replaced on its own.
  double surf_probability = 0.0;
  /// Optional shared inter-ISP bottlenecks (see ExperimentConfig).
  std::optional<net::InterconnectConfig> interconnects;
  /// Opt-in metrics/trace/sampling/profiling sinks; off by default.
  ObservabilityConfig observability;
  /// Scheduled impairments; empty (no faults) by default.
  FaultPlanConfig faults;
};

struct ExperimentConfig {
  workload::ScenarioSpec scenario;
  std::vector<ProbeSpec> probes;
  /// Selection strategy applied to every client (probes included);
  /// kPplive reproduces the measured system, the others are ablations.
  baseline::Strategy strategy = baseline::Strategy::kPplive;
  proto::PeerConfig peer_config;
  /// Makes the trackers ISP-aware (same-ISP-first replies) — the
  /// infrastructure-assisted design of the paper's related work, for
  /// comparison against the emergent locality. Off in the reproduction.
  bool locality_aware_trackers = false;
  /// Retain each probe's raw packet trace in the result (for archival or
  /// custom analysis); off by default to keep results lean.
  bool keep_traces = false;
  /// Probes join after the audience ramp so they measure a warm swarm.
  sim::Time probe_join_at = sim::Time::seconds(100);
  /// Optional shared inter-ISP bottlenecks (emergent cross-ISP congestion);
  /// unset in the calibrated reproduction.
  std::optional<net::InterconnectConfig> interconnects;
  /// Opt-in metrics/trace/sampling/profiling sinks; off by default.
  ObservabilityConfig observability;
  /// Scheduled impairments; empty (no faults) by default.
  FaultPlanConfig faults;
};

/// Swarm-wide ground truth gathered through the network's global tap —
/// unavailable to a real measurement study, used here for validation and
/// for the strategy ablation.
struct TrafficMatrix {
  // bytes[i][j]: DataReply payload bytes flowing from ISP i to ISP j.
  std::array<std::array<std::uint64_t, net::kNumIspCategories>,
             net::kNumIspCategories>
      bytes{};

  std::uint64_t total() const;
  std::uint64_t intra_isp() const;
  std::uint64_t cross_isp() const { return total() - intra_isp(); }
  double locality() const;
};

struct ProbeResult {
  std::string label;
  net::IpAddress ip;
  proto::ChannelId channel = 0;  // which channel this probe watched
  net::IspCategory category = net::IspCategory::kTele;
  capture::TraceAnalysis analysis;
  proto::PeerCounters counters;
  /// Raw capture, kept only when ExperimentConfig::keep_traces is set
  /// (e.g. for archival via capture::write_trace_file).
  std::shared_ptr<capture::PacketTrace> trace;
};

struct SwarmStats {
  std::uint64_t peers_spawned = 0;
  std::uint64_t departures = 0;
  double avg_continuity = 0;  // mean playback continuity over all viewers
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t events_executed = 0;
};

/// One viewer's session, for churn/workload characterization (the paper
/// positions its measurements as "a basis to generate practical P2P
/// streaming workloads"; these records are that basis from the simulated
/// side).
struct SessionRecord {
  proto::ChannelId channel = 0;
  net::IspCategory category = net::IspCategory::kTele;
  bool behind_nat = false;
  sim::Time joined;
  sim::Time left;            // == run end for sessions still active
  bool completed = false;    // left before the run ended
  std::uint64_t bytes_downloaded = 0;
  std::uint64_t bytes_uploaded = 0;
  double continuity = 0;

  double duration_seconds() const { return (left - joined).as_seconds(); }
};

struct ExperimentResult {
  std::vector<ProbeResult> probes;
  TrafficMatrix traffic;  // data-plane ground truth
  SwarmStats swarm;
  std::vector<SessionRecord> sessions;  // one per audience viewer
  /// Swarm-wide counter aggregates (every peer, probes included), summed
  /// with PeerCounters::operator+= so no field can be silently dropped.
  proto::PeerCounters counter_totals;
  std::array<proto::PeerCounters, net::kNumIspCategories> counters_by_isp{};
  /// Periodic swarm snapshots; empty unless observability.sample_period
  /// was set (the Figure-6-style time-series source). In windowed mode
  /// (observability.sample_window) this is only the bounded in-memory tail;
  /// the full series lives in the flushed samples_stream.
  std::vector<obs::TrafficSample> samples;
  /// Samples flushed to observability.samples_stream (windowed mode only).
  std::uint64_t samples_flushed = 0;
  /// Fault-driver summary; all zero when no fault plan was configured.
  std::uint64_t fault_windows_applied = 0;
  std::uint64_t fault_windows_reverted = 0;
  std::uint64_t fault_peers_crashed = 0;
  /// Watchdog digest; empty (worst=ok, no rules) unless
  /// observability.health_rules was set.
  obs::HealthSummary health;
  /// Post-mortem bundles written by observability.recorder this run.
  std::uint64_t postmortem_dumps = 0;
  /// Causal-tracing summaries; all empty unless observability.spans was
  /// set. critical_paths decompose each playback-reaching peer's startup
  /// delay into stages that sum exactly to the measured delay.
  obs::LineageSummary lineage;
  std::vector<obs::ReferralShareBucket> referral_share;
  std::vector<obs::CriticalPath> critical_paths;
};

/// Builds the topology, servers, audience, and probes; runs the simulation
/// for scenario.duration; returns per-probe trace analyses plus swarm
/// ground truth. Deterministic in scenario.seed.
ExperimentResult run_experiment(const ExperimentConfig& config);

/// Multi-channel variant: shared bootstrap/trackers, one source and one
/// audience per channel, optional channel surfing. A single-channel
/// MultiChannelConfig is bit-identical to run_experiment with the same
/// seed. Deterministic in config.seed.
ExperimentResult run_multi_channel(const MultiChannelConfig& config);

}  // namespace ppsim::core
