#include "core/cli.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "capture/trace_io.h"
#include "core/session_export.h"
#include "core/report.h"
#include "faults/plan.h"
#include "faults/resilience.h"
#include "obs/bench_json.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "workload/scenario.h"

namespace ppsim::core {

namespace {

bool is_one_of(const std::string& v, std::initializer_list<const char*> set) {
  return std::any_of(set.begin(), set.end(),
                     [&](const char* s) { return v == s; });
}

std::optional<ProbeSpec> probe_by_name(const std::string& name) {
  if (name == "tele") return tele_probe();
  if (name == "cnc") return cnc_probe();
  if (name == "cer") return cer_probe();
  if (name == "mason") return mason_probe();
  return std::nullopt;
}

std::optional<baseline::Strategy> strategy_by_name(const std::string& name) {
  if (name == "pplive") return baseline::Strategy::kPplive;
  if (name == "tracker-only") return baseline::Strategy::kTrackerOnly;
  if (name == "isp-biased") return baseline::Strategy::kIspBiased;
  if (name == "no-rush") return baseline::Strategy::kNoRush;
  return std::nullopt;
}

}  // namespace

std::string cli_usage() {
  return
      "ppsim — P2P live streaming traffic-locality experiments\n"
      "\n"
      "usage: ppsim [options]\n"
      "  --channel popular|unpopular   workload scenario (default popular)\n"
      "  --viewers N                   audience size (default: scenario's)\n"
      "  --minutes M                   simulated duration (default 10)\n"
      "  --seed S                      run seed (default 1)\n"
      "  --probe tele|cnc|cer|mason    probe site; repeatable (default tele)\n"
      "  --strategy pplive|tracker-only|isp-biased|no-rush\n"
      "  --smart-trackers              ISP-aware tracker replies\n"
      "  --report SECTION              repeatable; sections: returned,\n"
      "                                sources, data, response, contrib,\n"
      "                                rtt, swarm, all (default data)\n"
      "  --dump-trace PREFIX           write each probe's capture to\n"
      "                                PREFIX-<label>.trace\n"
      "  --dump-sessions FILE          write viewer sessions as CSV\n"
      "  --metrics-out FILE            write the metrics registry as NDJSON\n"
      "  --trace-out FILE              write the protocol event trace as\n"
      "                                NDJSON (deterministic per seed)\n"
      "  --trace-sim-events            also trace every simulator event\n"
      "                                (high volume; needs --trace-out)\n"
      "  --samples-out FILE            write periodic swarm snapshots as\n"
      "                                NDJSON (Figure-6-style time series)\n"
      "  --sample-period SEC           snapshot cadence in sim-seconds\n"
      "                                (default 10; needs --samples-out)\n"
      "  --sample-window SEC           stream samples to --samples-out in\n"
      "                                sim-time windows of SEC seconds\n"
      "                                (bounded obs memory; the file is\n"
      "                                byte-identical to the end-of-run\n"
      "                                dump)\n"
      "  --progress[=SEC]              stderr heartbeat every SEC\n"
      "                                sim-seconds (default 30): sim/wall\n"
      "                                time, events/s, peers alive, RSS,\n"
      "                                ETA; arms the resource probe\n"
      "  --profile                     print a per-event-category wall-clock\n"
      "                                profile after the run\n"
      "  --fault-plan FILE             arm a fault-injection plan\n"
      "                                (docs/FAULTS.md); prints a per-window\n"
      "                                resilience timeline when sampling is\n"
      "                                also enabled\n"
      "  --fault-seed S                victim-sampling seed for churn/\n"
      "                                brownout windows (default: derived\n"
      "                                from --seed)\n"
      "  --health-rules FILE|default   arm watchdog rules evaluated on every\n"
      "                                sampling tick; 'default' uses the\n"
      "                                built-in rule set\n"
      "                                (docs/OBSERVABILITY.md)\n"
      "  --postmortem-dir DIR          flight recorder: dump a post-mortem\n"
      "                                NDJSON bundle on critical watchdog\n"
      "                                trips, peer crashes, and fault-window\n"
      "                                onsets (needs --health-rules or\n"
      "                                --fault-plan)\n"
      "  --bench-json FILE             write per-category run telemetry in\n"
      "                                the BENCH json format (implies\n"
      "                                profiling)\n"
      "  --causal-trace                causal tracing: span/parent ids on\n"
      "                                trace events, referral provenance,\n"
      "                                and a lineage + startup-critical-path\n"
      "                                report section\n"
      "  --spans-out FILE              write referral lineage and startup\n"
      "                                critical paths as NDJSON (implies\n"
      "                                --causal-trace)\n"
      "  --help\n";
}

CliParseResult parse_cli(int argc, const char* const* argv) {
  CliParseResult out;
  CliOptions& o = out.options;
  bool probes_cleared = false;
  bool reports_cleared = false;

  auto need_value = [&](int& i, const char* flag) -> std::optional<std::string> {
    if (i + 1 >= argc) {
      out.error = std::string("missing value for ") + flag;
      return std::nullopt;
    }
    return std::string(argv[++i]);
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      o.help = true;
    } else if (arg == "--channel") {
      auto v = need_value(i, "--channel");
      if (!v) return out;
      if (!is_one_of(*v, {"popular", "unpopular"})) {
        out.error = "unknown channel: " + *v;
        return out;
      }
      o.channel = *v;
    } else if (arg == "--viewers") {
      auto v = need_value(i, "--viewers");
      if (!v) return out;
      o.viewers = std::atoi(v->c_str());
      if (o.viewers <= 0) {
        out.error = "viewers must be positive";
        return out;
      }
    } else if (arg == "--minutes") {
      auto v = need_value(i, "--minutes");
      if (!v) return out;
      o.minutes = std::atoi(v->c_str());
      if (o.minutes <= 0) {
        out.error = "minutes must be positive";
        return out;
      }
    } else if (arg == "--seed") {
      auto v = need_value(i, "--seed");
      if (!v) return out;
      o.seed = std::strtoull(v->c_str(), nullptr, 10);
    } else if (arg == "--probe") {
      auto v = need_value(i, "--probe");
      if (!v) return out;
      if (!probe_by_name(*v)) {
        out.error = "unknown probe site: " + *v;
        return out;
      }
      if (!probes_cleared) {
        o.probes.clear();
        probes_cleared = true;
      }
      o.probes.push_back(*v);
    } else if (arg == "--strategy") {
      auto v = need_value(i, "--strategy");
      if (!v) return out;
      if (!strategy_by_name(*v)) {
        out.error = "unknown strategy: " + *v;
        return out;
      }
      o.strategy = *v;
    } else if (arg == "--smart-trackers") {
      o.smart_trackers = true;
    } else if (arg == "--report") {
      auto v = need_value(i, "--report");
      if (!v) return out;
      if (!is_one_of(*v, {"returned", "sources", "data", "response",
                          "contrib", "rtt", "swarm", "all"})) {
        out.error = "unknown report section: " + *v;
        return out;
      }
      if (!reports_cleared) {
        o.reports.clear();
        reports_cleared = true;
      }
      o.reports.push_back(*v);
    } else if (arg == "--dump-trace") {
      auto v = need_value(i, "--dump-trace");
      if (!v) return out;
      o.dump_trace = *v;
    } else if (arg == "--dump-sessions") {
      auto v = need_value(i, "--dump-sessions");
      if (!v) return out;
      o.dump_sessions = *v;
    } else if (arg == "--metrics-out") {
      auto v = need_value(i, "--metrics-out");
      if (!v) return out;
      o.metrics_out = *v;
    } else if (arg == "--trace-out") {
      auto v = need_value(i, "--trace-out");
      if (!v) return out;
      o.trace_out = *v;
    } else if (arg == "--trace-sim-events") {
      o.trace_sim_events = true;
    } else if (arg == "--samples-out") {
      auto v = need_value(i, "--samples-out");
      if (!v) return out;
      o.samples_out = *v;
    } else if (arg == "--sample-period") {
      auto v = need_value(i, "--sample-period");
      if (!v) return out;
      o.sample_period_s = std::atoi(v->c_str());
      if (o.sample_period_s <= 0) {
        out.error = "sample period must be positive";
        return out;
      }
    } else if (arg == "--sample-window") {
      auto v = need_value(i, "--sample-window");
      if (!v) return out;
      o.sample_window_s = std::atoi(v->c_str());
      if (o.sample_window_s <= 0) {
        out.error = "sample window must be positive";
        return out;
      }
    } else if (arg == "--progress") {
      o.progress = true;
    } else if (arg.rfind("--progress=", 0) == 0) {
      o.progress = true;
      o.progress_period_s = std::atoi(arg.c_str() + 11);
      if (o.progress_period_s <= 0) {
        out.error = "progress period must be positive";
        return out;
      }
    } else if (arg == "--profile") {
      o.profile = true;
    } else if (arg == "--fault-plan") {
      auto v = need_value(i, "--fault-plan");
      if (!v) return out;
      o.fault_plan = *v;
    } else if (arg == "--fault-seed") {
      auto v = need_value(i, "--fault-seed");
      if (!v) return out;
      o.fault_seed = std::strtoull(v->c_str(), nullptr, 10);
    } else if (arg == "--health-rules") {
      auto v = need_value(i, "--health-rules");
      if (!v) return out;
      o.health_rules = *v;
    } else if (arg == "--postmortem-dir") {
      auto v = need_value(i, "--postmortem-dir");
      if (!v) return out;
      o.postmortem_dir = *v;
    } else if (arg == "--bench-json") {
      auto v = need_value(i, "--bench-json");
      if (!v) return out;
      o.bench_json = *v;
    } else if (arg == "--causal-trace") {
      o.causal_trace = true;
    } else if (arg == "--spans-out") {
      auto v = need_value(i, "--spans-out");
      if (!v) return out;
      o.spans_out = *v;
      o.causal_trace = true;
    } else {
      out.error = "unknown option: " + arg;
      return out;
    }
  }
  if (o.sample_period_s > 0 && o.samples_out.empty()) {
    out.error = "--sample-period requires --samples-out";
    return out;
  }
  if (o.sample_window_s > 0 && o.samples_out.empty()) {
    out.error = "--sample-window requires --samples-out";
    return out;
  }
  if (o.trace_sim_events && o.trace_out.empty()) {
    out.error = "--trace-sim-events requires --trace-out";
    return out;
  }
  if (o.fault_seed != 0 && o.fault_plan.empty()) {
    out.error = "--fault-seed requires --fault-plan";
    return out;
  }
  // Without a fault plan or watchdogs nothing can trigger a dump, so a
  // lone --postmortem-dir is a configuration mistake, not a quiet no-op.
  if (!o.postmortem_dir.empty() && o.health_rules.empty() &&
      o.fault_plan.empty()) {
    out.error = "--postmortem-dir requires --health-rules or --fault-plan";
    return out;
  }
  return out;
}

CliConfigResult build_config(const CliOptions& options) {
  CliConfigResult out;
  ExperimentConfig& config = out.config;

  config.scenario = options.channel == "popular"
                        ? workload::popular_channel()
                        : workload::unpopular_channel();
  if (options.viewers > 0) config.scenario.viewers = options.viewers;
  config.scenario.duration = sim::Time::minutes(options.minutes);
  config.scenario.seed = options.seed;

  for (const auto& name : options.probes) {
    auto probe = probe_by_name(name);
    if (!probe) {
      out.error = "unknown probe site: " + name;
      return out;
    }
    config.probes.push_back(*probe);
  }
  auto strategy = strategy_by_name(options.strategy);
  if (!strategy) {
    out.error = "unknown strategy: " + options.strategy;
    return out;
  }
  config.strategy = *strategy;
  config.locality_aware_trackers = options.smart_trackers;
  config.keep_traces = !options.dump_trace.empty();

  if (!options.fault_plan.empty()) {
    faults::PlanParseResult plan = faults::load_fault_plan(options.fault_plan);
    if (!plan.ok()) {
      out.error = "fault plan " + options.fault_plan + ": " + plan.error;
      return out;
    }
    config.faults.plan = std::move(plan.plan);
    config.faults.fault_seed = options.fault_seed;
  }

  if (!options.health_rules.empty()) {
    if (options.health_rules == "default") {
      out.health_rules = obs::default_health_rules();
    } else {
      obs::HealthRulesParseResult rules =
          obs::load_health_rules(options.health_rules);
      if (!rules.ok()) {
        out.error = "health rules " + options.health_rules + ": " + rules.error;
        return out;
      }
      out.health_rules = std::move(rules.rules);
    }
  }
  return out;
}

int run_cli(const CliOptions& options) {
  return run_cli(options, std::cout);
}

int run_cli(const CliOptions& options, std::ostream& out) {
  if (options.help) {
    out << cli_usage();
    return 0;
  }
  auto built = build_config(options);
  if (built.error) {
    std::cerr << "error: " << *built.error << "\n" << cli_usage();
    return 2;
  }

  out << "channel=" << options.channel
            << " viewers=" << built.config.scenario.viewers
            << " minutes=" << options.minutes << " seed=" << options.seed
            << " strategy=" << options.strategy
            << (options.smart_trackers ? " smart-trackers" : "") << "\n\n";

  // Observability sinks live on the stack for the duration of the run; the
  // experiment borrows them through config.observability.
  obs::MetricsRegistry metrics;
  obs::RunProfiler profiler;
  std::ofstream trace_file;
  std::optional<obs::NdjsonTraceSink> trace_sink;
  if (!options.trace_out.empty()) {
    trace_file.open(options.trace_out);
    if (!trace_file) {
      std::cerr << "error: could not open " << options.trace_out << "\n";
      return 1;
    }
    trace_sink.emplace(trace_file);
  }
  ObservabilityConfig& ob = built.config.observability;
  if (!options.metrics_out.empty()) ob.metrics = &metrics;
  if (trace_sink.has_value()) ob.trace = &*trace_sink;
  ob.trace_sim_events = options.trace_sim_events;
  if (options.profile || !options.bench_json.empty() || options.progress)
    ob.profiler = &profiler;
  if (!options.samples_out.empty())
    ob.sample_period = sim::Time::seconds(
        options.sample_period_s > 0 ? options.sample_period_s : 10);
  // Windowed streaming: the samples file must be open for the whole run so
  // each window can flush into it; the end-of-run write path is skipped.
  std::ofstream samples_file;
  if (options.sample_window_s > 0) {
    samples_file.open(options.samples_out);
    if (!samples_file) {
      std::cerr << "error: could not write " << options.samples_out << "\n";
      return 1;
    }
    ob.sample_window = sim::Time::seconds(options.sample_window_s);
    ob.samples_stream = &samples_file;
  }
  if (!options.health_rules.empty()) {
    // Watchdogs make the registry meaningful even without --metrics-out
    // (trip counters, dispatch telemetry, the post-mortem snapshot).
    ob.health_rules = &built.health_rules;
    ob.metrics = &metrics;
    ob.dispatch_metrics = true;
  }
  std::optional<obs::SpanTracker> span_tracker;
  if (options.causal_trace) {
    // ISP resolver over the same standard topology the runner builds, so
    // lineage labels match the rest of the report.
    auto asn_db = std::make_shared<net::AsnDatabase>(
        net::AsnDatabase::from_registry(net::IspRegistry::standard_topology()));
    obs::SpanTracker::Options span_options;
    span_options.isp_of = [asn_db](std::string_view ip) -> std::string {
      const auto parsed = net::IpAddress::parse(std::string(ip));
      if (!parsed.has_value()) return {};
      return std::string(net::to_string(asn_db->category_or_foreign(*parsed)));
    };
    span_tracker.emplace(std::move(span_options));
    ob.spans = &*span_tracker;
    ob.causal_trace = true;
  }
  std::optional<obs::FlightRecorder> recorder;
  if (!options.postmortem_dir.empty()) {
    obs::FlightRecorder::Options recorder_options;
    recorder_options.dir = options.postmortem_dir;
    // The recorder tees in front of the NDJSON sink (or stands alone when
    // no --trace-out was given) so it sees every protocol event.
    recorder_options.downstream =
        trace_sink.has_value() ? &*trace_sink : nullptr;
    recorder_options.metrics = &metrics;
    recorder.emplace(recorder_options);
    ob.trace = &*recorder;
    ob.recorder = &*recorder;
    ob.metrics = &metrics;
  }
  // Scale observatory: --progress arms the heartbeat and the resource
  // probe. The probe's gauges land in the registry only when metrics are
  // armed too (note: the RSS / wall-throughput gauges are host-dependent,
  // so a --metrics-out dump from a --progress run is no longer comparable
  // across machines — docs/OBSERVABILITY.md, "Scale observatory").
  obs::ResourceProbe resource_probe;
  std::optional<obs::ProgressMeter> progress_meter;
  if (options.progress) {
    resource_probe.bind_metrics(ob.metrics);
    ob.resource = &resource_probe;
    obs::ProgressMeter::Options meter_options;
    meter_options.out = &std::cerr;
    meter_options.profiler = &profiler;
    meter_options.total = built.config.scenario.duration;
    progress_meter.emplace(meter_options);
    ob.progress = &*progress_meter;
    if (options.progress_period_s > 0)
      ob.progress_period = sim::Time::seconds(options.progress_period_s);
  }

  ExperimentResult result = run_experiment(built.config);

  auto wants = [&](const char* section) {
    return std::any_of(options.reports.begin(), options.reports.end(),
                       [&](const std::string& r) {
                         return r == section || r == "all";
                       });
  };

  for (const auto& probe : result.probes) {
    out << "== probe " << probe.label << " ("
              << net::to_string(probe.category) << ", "
              << probe.ip.to_string() << ") ==\n";
    if (wants("returned")) print_returned_addresses(out, probe.analysis);
    if (wants("sources")) print_list_sources(out, probe.analysis);
    if (wants("data")) {
      print_data_by_isp(out, probe.analysis);
      out << "locality: "
                << pct(probe.analysis.byte_locality(probe.category))
                << " of bytes from " << net::to_string(probe.category)
                << " peers; continuity "
                << pct(probe.counters.continuity()) << "\n";
    }
    if (wants("response")) {
      print_response_times(out, probe.analysis, false);
      print_response_times(out, probe.analysis, true);
    }
    if (wants("contrib")) print_contributions(out, probe.analysis);
    if (wants("rtt")) print_rtt_rank(out, probe.analysis);

    if (!options.dump_trace.empty() && probe.trace) {
      const std::string path =
          options.dump_trace + "-" + probe.label + ".trace";
      if (capture::write_trace_file(path, *probe.trace)) {
        out << "trace written: " << path << " (" << probe.trace->size()
                  << " records)\n";
      } else {
        std::cerr << "error: could not write " << path << "\n";
        return 1;
      }
    }
    out << "\n";
  }
  if (wants("swarm")) {
    print_traffic_matrix(out, result.traffic);
    print_peer_counters(out, result.counter_totals);
  }
  if (!built.config.faults.plan.empty()) {
    out << "faults: windows applied " << result.fault_windows_applied
        << ", reverted " << result.fault_windows_reverted
        << ", peers crashed " << result.fault_peers_crashed << "\n";
    if (!result.samples.empty()) {
      const auto rows =
          faults::analyze_resilience(built.config.faults.plan, result.samples);
      faults::print_fault_timeline(out, rows);
    }
    out << "\n";
  }
  if (!options.health_rules.empty()) {
    print_health_summary(out, result.health);
    out << "\n";
  }
  if (span_tracker.has_value()) {
    print_referral_lineage(out, result.lineage, result.referral_share);
    print_critical_paths(out, result.critical_paths);
    out << "\n";
  }
  if (recorder.has_value()) {
    out << "post-mortems written: " << result.postmortem_dumps;
    if (recorder->dump_failures() > 0)
      out << " (" << recorder->dump_failures() << " failed)";
    if (result.postmortem_dumps > 0) out << " in " << options.postmortem_dir;
    out << "\n";
  }
  if (!options.dump_sessions.empty()) {
    if (write_sessions_csv_file(options.dump_sessions, result.sessions)) {
      out << "sessions written: " << options.dump_sessions << " ("
          << result.sessions.size() << " rows)\n";
    } else {
      std::cerr << "error: could not write " << options.dump_sessions
                << "\n";
      return 1;
    }
  }
  if (!options.metrics_out.empty()) {
    std::ofstream f(options.metrics_out);
    if (!f) {
      std::cerr << "error: could not write " << options.metrics_out << "\n";
      return 1;
    }
    metrics.write_ndjson(f);
    out << "metrics written: " << options.metrics_out << " ("
        << metrics.size() << " series)\n";
  }
  if (trace_sink.has_value()) {
    out << "trace written: " << options.trace_out << " ("
        << trace_sink->events_written() << " events)\n";
  }
  if (options.sample_window_s > 0) {
    samples_file.close();
    out << "samples streamed: " << options.samples_out << " ("
        << result.samples_flushed << " samples, "
        << options.sample_window_s << "s windows)\n";
  } else if (!options.samples_out.empty()) {
    std::ofstream f(options.samples_out);
    if (!f) {
      std::cerr << "error: could not write " << options.samples_out << "\n";
      return 1;
    }
    obs::write_samples_ndjson(f, result.samples);
    out << "samples written: " << options.samples_out << " ("
        << result.samples.size() << " samples)\n";
  }
  if (!options.spans_out.empty()) {
    std::ofstream f(options.spans_out);
    if (!f) {
      std::cerr << "error: could not write " << options.spans_out << "\n";
      return 1;
    }
    span_tracker->write_ndjson(f);
    out << "spans written: " << options.spans_out << " ("
        << span_tracker->span_count() << " spans, "
        << span_tracker->referrals().size() << " referrals, "
        << result.critical_paths.size() << " critical paths)\n";
  }
  if (options.profile) profiler.print(out);
  if (!options.bench_json.empty()) {
    // Per-category run telemetry in the shared BENCH schema: one entry per
    // event category plus a "run.total" row carrying the peak queue depth.
    std::vector<obs::BenchEntry> entries;
    for (const auto& [category, cs] : profiler.categories()) {
      obs::BenchEntry e;
      e.name = "run." + (category.empty() ? std::string("untagged") : category);
      e.iterations = cs.events;
      e.ns_per_op = cs.events == 0
                        ? 0.0
                        : cs.wall_seconds / static_cast<double>(cs.events) * 1e9;
      entries.push_back(std::move(e));
    }
    obs::BenchEntry total;
    total.name = "run.total";
    total.iterations = profiler.events_total();
    total.ns_per_op =
        profiler.events_total() == 0
            ? 0.0
            : profiler.wall_seconds_total() /
                  static_cast<double>(profiler.events_total()) * 1e9;
    total.peak_queue_depth = profiler.max_queue_depth();
    entries.push_back(std::move(total));
    std::ofstream f(options.bench_json);
    if (!f) {
      std::cerr << "error: could not write " << options.bench_json << "\n";
      return 1;
    }
    obs::write_bench_json(f, std::move(entries));
    out << "bench telemetry written: " << options.bench_json << "\n";
  }
  return 0;
}

}  // namespace ppsim::core
