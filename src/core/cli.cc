#include "core/cli.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "capture/trace_io.h"
#include "core/session_export.h"
#include "core/report.h"
#include "workload/scenario.h"

namespace ppsim::core {

namespace {

bool is_one_of(const std::string& v, std::initializer_list<const char*> set) {
  return std::any_of(set.begin(), set.end(),
                     [&](const char* s) { return v == s; });
}

std::optional<ProbeSpec> probe_by_name(const std::string& name) {
  if (name == "tele") return tele_probe();
  if (name == "cnc") return cnc_probe();
  if (name == "cer") return cer_probe();
  if (name == "mason") return mason_probe();
  return std::nullopt;
}

std::optional<baseline::Strategy> strategy_by_name(const std::string& name) {
  if (name == "pplive") return baseline::Strategy::kPplive;
  if (name == "tracker-only") return baseline::Strategy::kTrackerOnly;
  if (name == "isp-biased") return baseline::Strategy::kIspBiased;
  if (name == "no-rush") return baseline::Strategy::kNoRush;
  return std::nullopt;
}

}  // namespace

std::string cli_usage() {
  return
      "ppsim — P2P live streaming traffic-locality experiments\n"
      "\n"
      "usage: ppsim [options]\n"
      "  --channel popular|unpopular   workload scenario (default popular)\n"
      "  --viewers N                   audience size (default: scenario's)\n"
      "  --minutes M                   simulated duration (default 10)\n"
      "  --seed S                      run seed (default 1)\n"
      "  --probe tele|cnc|cer|mason    probe site; repeatable (default tele)\n"
      "  --strategy pplive|tracker-only|isp-biased|no-rush\n"
      "  --smart-trackers              ISP-aware tracker replies\n"
      "  --report SECTION              repeatable; sections: returned,\n"
      "                                sources, data, response, contrib,\n"
      "                                rtt, swarm, all (default data)\n"
      "  --dump-trace PREFIX           write each probe's capture to\n"
      "                                PREFIX-<label>.trace\n"
      "  --dump-sessions FILE          write viewer sessions as CSV\n"
      "  --help\n";
}

CliParseResult parse_cli(int argc, const char* const* argv) {
  CliParseResult out;
  CliOptions& o = out.options;
  bool probes_cleared = false;
  bool reports_cleared = false;

  auto need_value = [&](int& i, const char* flag) -> std::optional<std::string> {
    if (i + 1 >= argc) {
      out.error = std::string("missing value for ") + flag;
      return std::nullopt;
    }
    return std::string(argv[++i]);
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      o.help = true;
    } else if (arg == "--channel") {
      auto v = need_value(i, "--channel");
      if (!v) return out;
      if (!is_one_of(*v, {"popular", "unpopular"})) {
        out.error = "unknown channel: " + *v;
        return out;
      }
      o.channel = *v;
    } else if (arg == "--viewers") {
      auto v = need_value(i, "--viewers");
      if (!v) return out;
      o.viewers = std::atoi(v->c_str());
      if (o.viewers <= 0) {
        out.error = "viewers must be positive";
        return out;
      }
    } else if (arg == "--minutes") {
      auto v = need_value(i, "--minutes");
      if (!v) return out;
      o.minutes = std::atoi(v->c_str());
      if (o.minutes <= 0) {
        out.error = "minutes must be positive";
        return out;
      }
    } else if (arg == "--seed") {
      auto v = need_value(i, "--seed");
      if (!v) return out;
      o.seed = std::strtoull(v->c_str(), nullptr, 10);
    } else if (arg == "--probe") {
      auto v = need_value(i, "--probe");
      if (!v) return out;
      if (!probe_by_name(*v)) {
        out.error = "unknown probe site: " + *v;
        return out;
      }
      if (!probes_cleared) {
        o.probes.clear();
        probes_cleared = true;
      }
      o.probes.push_back(*v);
    } else if (arg == "--strategy") {
      auto v = need_value(i, "--strategy");
      if (!v) return out;
      if (!strategy_by_name(*v)) {
        out.error = "unknown strategy: " + *v;
        return out;
      }
      o.strategy = *v;
    } else if (arg == "--smart-trackers") {
      o.smart_trackers = true;
    } else if (arg == "--report") {
      auto v = need_value(i, "--report");
      if (!v) return out;
      if (!is_one_of(*v, {"returned", "sources", "data", "response",
                          "contrib", "rtt", "swarm", "all"})) {
        out.error = "unknown report section: " + *v;
        return out;
      }
      if (!reports_cleared) {
        o.reports.clear();
        reports_cleared = true;
      }
      o.reports.push_back(*v);
    } else if (arg == "--dump-trace") {
      auto v = need_value(i, "--dump-trace");
      if (!v) return out;
      o.dump_trace = *v;
    } else if (arg == "--dump-sessions") {
      auto v = need_value(i, "--dump-sessions");
      if (!v) return out;
      o.dump_sessions = *v;
    } else {
      out.error = "unknown option: " + arg;
      return out;
    }
  }
  return out;
}

CliConfigResult build_config(const CliOptions& options) {
  CliConfigResult out;
  ExperimentConfig& config = out.config;

  config.scenario = options.channel == "popular"
                        ? workload::popular_channel()
                        : workload::unpopular_channel();
  if (options.viewers > 0) config.scenario.viewers = options.viewers;
  config.scenario.duration = sim::Time::minutes(options.minutes);
  config.scenario.seed = options.seed;

  for (const auto& name : options.probes) {
    auto probe = probe_by_name(name);
    if (!probe) {
      out.error = "unknown probe site: " + name;
      return out;
    }
    config.probes.push_back(*probe);
  }
  auto strategy = strategy_by_name(options.strategy);
  if (!strategy) {
    out.error = "unknown strategy: " + options.strategy;
    return out;
  }
  config.strategy = *strategy;
  config.locality_aware_trackers = options.smart_trackers;
  config.keep_traces = !options.dump_trace.empty();
  return out;
}

int run_cli(const CliOptions& options) {
  return run_cli(options, std::cout);
}

int run_cli(const CliOptions& options, std::ostream& out) {
  if (options.help) {
    out << cli_usage();
    return 0;
  }
  auto built = build_config(options);
  if (built.error) {
    std::cerr << "error: " << *built.error << "\n" << cli_usage();
    return 2;
  }

  out << "channel=" << options.channel
            << " viewers=" << built.config.scenario.viewers
            << " minutes=" << options.minutes << " seed=" << options.seed
            << " strategy=" << options.strategy
            << (options.smart_trackers ? " smart-trackers" : "") << "\n\n";

  ExperimentResult result = run_experiment(built.config);

  auto wants = [&](const char* section) {
    return std::any_of(options.reports.begin(), options.reports.end(),
                       [&](const std::string& r) {
                         return r == section || r == "all";
                       });
  };

  for (const auto& probe : result.probes) {
    out << "== probe " << probe.label << " ("
              << net::to_string(probe.category) << ", "
              << probe.ip.to_string() << ") ==\n";
    if (wants("returned")) print_returned_addresses(out, probe.analysis);
    if (wants("sources")) print_list_sources(out, probe.analysis);
    if (wants("data")) {
      print_data_by_isp(out, probe.analysis);
      out << "locality: "
                << pct(probe.analysis.byte_locality(probe.category))
                << " of bytes from " << net::to_string(probe.category)
                << " peers; continuity "
                << pct(probe.counters.continuity()) << "\n";
    }
    if (wants("response")) {
      print_response_times(out, probe.analysis, false);
      print_response_times(out, probe.analysis, true);
    }
    if (wants("contrib")) print_contributions(out, probe.analysis);
    if (wants("rtt")) print_rtt_rank(out, probe.analysis);

    if (!options.dump_trace.empty() && probe.trace) {
      const std::string path =
          options.dump_trace + "-" + probe.label + ".trace";
      if (capture::write_trace_file(path, *probe.trace)) {
        out << "trace written: " << path << " (" << probe.trace->size()
                  << " records)\n";
      } else {
        std::cerr << "error: could not write " << path << "\n";
        return 1;
      }
    }
    out << "\n";
  }
  if (wants("swarm")) print_traffic_matrix(out, result.traffic);
  if (!options.dump_sessions.empty()) {
    if (write_sessions_csv_file(options.dump_sessions, result.sessions)) {
      out << "sessions written: " << options.dump_sessions << " ("
          << result.sessions.size() << " rows)\n";
    } else {
      std::cerr << "error: could not write " << options.dump_sessions
                << "\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace ppsim::core
