#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.h"

namespace ppsim::core {

/// Options of the `ppsim` command-line driver. Parsing is factored out of
/// the binary so it is unit-testable.
struct CliOptions {
  std::string channel = "popular";  // popular | unpopular
  int viewers = 0;                  // 0 = scenario default
  int minutes = 10;
  std::uint64_t seed = 1;
  std::vector<std::string> probes = {"tele"};  // tele|cnc|cer|mason
  std::string strategy = "pplive";  // pplive|tracker-only|isp-biased|no-rush
  bool smart_trackers = false;
  std::string dump_trace;     // path prefix; empty = no dump
  std::string dump_sessions;  // CSV path; empty = no dump
  /// Report sections: any of returned, sources, data, response, contrib,
  /// rtt, swarm — or "all".
  std::vector<std::string> reports = {"data"};
  // Observability sinks (docs/OBSERVABILITY.md); all off by default.
  std::string metrics_out;    // metrics NDJSON path; empty = off
  std::string trace_out;      // protocol-event trace NDJSON path; empty = off
  std::string samples_out;    // time-series samples NDJSON path; empty = off
  int sample_period_s = 0;    // 0 = default (10s) when samples_out is set
  /// Scale observatory (docs/OBSERVABILITY.md): stream samples to
  /// samples_out every sample_window_s sim-seconds instead of dumping at
  /// run end (bounded obs memory). 0 = unwindowed.
  int sample_window_s = 0;
  bool progress = false;      // stderr heartbeat; arms the resource probe
  int progress_period_s = 0;  // 0 = default (30s) when progress is set
  bool trace_sim_events = false;  // add per-sim-event rows to trace_out
  bool profile = false;           // print per-category wall-clock profile
  // Fault injection (docs/FAULTS.md); off by default.
  std::string fault_plan;         // plan file path; empty = no faults
  std::uint64_t fault_seed = 0;   // 0 = derive from the run seed
  // Health watchdogs & post-mortems (docs/OBSERVABILITY.md); off by default.
  std::string health_rules;    // rule file path, or "default"; empty = off
  std::string postmortem_dir;  // flight-recorder bundle dir; empty = off
  std::string bench_json;      // run-telemetry BENCH json path; empty = off
  // Causal tracing (docs/OBSERVABILITY.md); off by default.
  bool causal_trace = false;  // span ids + provenance + lineage report
  std::string spans_out;      // spans NDJSON path; implies causal_trace
  bool help = false;
};

/// Parses argv; returns an error message on invalid input.
struct CliParseResult {
  CliOptions options;
  std::optional<std::string> error;
};
CliParseResult parse_cli(int argc, const char* const* argv);

/// Usage text for --help.
std::string cli_usage();

/// Builds the ExperimentConfig the options describe; error when names do
/// not resolve (unknown probe/strategy/channel).
struct CliConfigResult {
  ExperimentConfig config;
  /// Storage for --health-rules; config.observability.health_rules is wired
  /// to this by run_cli (the config only borrows the rule set).
  obs::HealthRuleSet health_rules;
  std::optional<std::string> error;
};
CliConfigResult build_config(const CliOptions& options);

/// Runs the experiment and prints the requested report sections to `out`
/// (std::cout in the binary). Returns a process exit code.
int run_cli(const CliOptions& options, std::ostream& out);
int run_cli(const CliOptions& options);

}  // namespace ppsim::core
